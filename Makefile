# BENCH_JSON is where `make bench` drops its machine-readable results;
# CI uploads it as an artifact so the perf trajectory is recorded per PR.
# BENCH_BASELINE is what `make bench-compare` diffs against.
BENCH_JSON ?= BENCH_PR10.json
BENCH_BASELINE ?= BENCH_PR9.json

.PHONY: build test race crash replication-crash cover hypo hypo-full bench bench-compare

build:
	go build ./...

test: build
	go test ./...

race:
	go test -race ./...

crash:
	go test -run 'Crash|Trial' -count=5 ./internal/wal/ ./internal/crashprop/ ./qbets/

# replication-crash repeats the replicated-serving fault trials (leader
# power cut, partition-and-heal, epoch-fenced failover, snapshot
# catch-up, three-follower fan-out, K-of-N commit quorum, and a torn
# mid-chunk snapshot transfer) race-enabled: timing-rich code, so
# -count=5 -race is the tier that shakes out interleavings a single run
# would miss.
replication-crash:
	go test -count=5 -race ./internal/repl/
	go test -run 'Crash|Repl' -count=5 -race ./internal/crashprop/

# cover writes a per-package coverage profile and prints the function
# summary; CI uploads both as the coverage artifact.
cover:
	go test -cover -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out | tail -1

# hypo runs the hypothesis smoke grid (the CI tier: H-Coverage, H-Trim,
# H-Durability, H-FollowerConsistency, H-SLOSizing on a small
# representative grid). hypo-full is the nightly
# grid — every queue, (q,C) pair, and policy combination — run twice with
# byte-identical verdicts enforced. See docs/TESTING.md.
hypo:
	go run ./cmd/qbets-hypo run -grid smoke

hypo-full:
	go run ./cmd/qbets-hypo run -grid full -out verdict-full.json
	go run ./cmd/qbets-hypo run -grid full -out verdict-full-2.json
	cmp verdict-full.json verdict-full-2.json
	@echo "full grid deterministic and green: verdict-full.json"

# bench runs the key hot-path benchmarks (prediction latency, service
# observe with and without a WAL, the batched HTTP ingest path, and the
# lock-free read plane against its RWMutex baselines) and emits
# $(BENCH_JSON): one entry per benchmark with ns/op, B/op, allocs/op,
# cpus, and any custom metrics such as records/s. The read-plane benches
# run at -cpu 1,4 so contention behaviour is on record alongside the
# single-threaded numbers. The replication set records the shipping
# plane: ShipThroughput fans out to 1/2/4/8 followers (aggregate
# records/s proves frame-once/ship-many), and SnapshotCatchup times a
# chunked 4 MiB catch-up one-shot-style at -benchtime=20x. The scale benches (million-stream registry,
# stream-creation churn) are sized one-shot runs, so they go at
# -benchtime=1x; their custom metrics (create-ns/stream, heapB/stream,
# read-p50/p99-ns) land in "metrics". The what-if set (kernel replay,
# typed run heap, 64-scenario grid) records the simulation plane: the
# grid entry doubles as the "64 scenarios under a second" acceptance
# record.
bench:
	@set -e; \
	out=$$(mktemp); \
	go test -run '^$$' -bench PredictionLatency -benchmem . >> $$out; \
	go test -run '^$$' -bench 'ServiceObserve|ServerObserveBatch' -count=3 -benchmem ./qbets/ >> $$out; \
	go test -run '^$$' -bench 'ServiceForecast|ServiceProfile|ServiceReadWhileIngest|ServerForecast|FollowerForecast' -cpu 1,4 -benchmem ./qbets/ >> $$out; \
	go test -run '^$$' -bench 'ShipThroughput' -count=3 -benchmem ./internal/repl/ >> $$out; \
	go test -run '^$$' -bench 'SnapshotCatchup' -benchtime=20x -benchmem ./internal/repl/ >> $$out; \
	go test -run '^$$' -bench 'SchedulerRun|RunHeap' -benchmem ./internal/scheduler/ >> $$out; \
	go test -run '^$$' -bench 'WhatifGrid' -benchmem ./internal/whatif/ >> $$out; \
	go test -run '^$$' -bench 'MillionStreams|StreamCreationChurn' -benchtime=1x -timeout 30m ./qbets/ >> $$out; \
	go run ./cmd/benchjson < $$out > $(BENCH_JSON); \
	rm -f $$out; \
	echo "wrote $(BENCH_JSON)"

# bench-compare diffs the fresh results against the recorded baseline and
# fails if an allowlisted write-path benchmark regressed more than 25%.
# Read benches with sub-20ns baselines and the one-shot scale benches are
# reported but advisory — they are too noisy to gate on.
bench-compare:
	go run ./cmd/benchjson -compare $(BENCH_BASELINE) $(BENCH_JSON)
