# BENCH_JSON is where `make bench` drops its machine-readable results;
# CI uploads it as an artifact so the perf trajectory is recorded per PR.
BENCH_JSON ?= BENCH_PR5.json

.PHONY: build test race crash bench

build:
	go build ./...

test: build
	go test ./...

race:
	go test -race ./...

crash:
	go test -run Crash -count=5 ./internal/wal/ ./qbets/

# bench runs the key hot-path benchmarks (prediction latency, service
# observe with and without a WAL, the batched HTTP ingest path, and the
# lock-free read plane against its RWMutex baselines) and emits
# $(BENCH_JSON): one entry per benchmark with ns/op, B/op, allocs/op,
# cpus, and any custom metrics such as records/s. The read-plane benches
# run at -cpu 1,4 so contention behaviour is on record alongside the
# single-threaded numbers.
bench:
	@set -e; \
	out=$$(mktemp); \
	go test -run '^$$' -bench PredictionLatency -benchmem . >> $$out; \
	go test -run '^$$' -bench 'ServiceObserve|ServerObserveBatch' -benchmem ./qbets/ >> $$out; \
	go test -run '^$$' -bench 'ServiceForecast|ServiceProfile|ServiceReadWhileIngest|ServerForecast' -cpu 1,4 -benchmem ./qbets/ >> $$out; \
	go run ./cmd/benchjson < $$out > $(BENCH_JSON); \
	rm -f $$out; \
	echo "wrote $(BENCH_JSON)"
