// Package obs provides zero-dependency observability primitives for the
// serving layer: atomic counters, gauges, and histograms, a rolling
// hit-rate tracker for the paper's online correctness metric, and a
// Registry that renders everything in the Prometheus text exposition
// format (version 0.0.4).
//
// The package deliberately implements a small subset of what a metrics
// library offers — exactly what a BMBP deployment needs to observe itself:
// request counts, prediction latency, and whether the quoted bounds are
// holding at the configured confidence. All primitives are safe for
// concurrent use and allocation-free on the update path.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge's value.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat accumulates a float64 sum with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }
