package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatal("gauge lost +Inf")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 1e6} {
		h.Observe(v)
	}
	// le semantics: a value equal to an upper bound lands in that bucket.
	cum := h.snapshot()
	want := []uint64{2, 4, 6, 7} // <=1: {0.5, 1}; <=10: +{1.5, 10}; <=100: +{99, 100}; +Inf: +{1e6}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(0.5+1+1.5+10+99+100+1e6)) > 1e-9 {
		t.Errorf("sum = %g", got)
	}
}

func TestHistogramDedupsAndSortsBuckets(t *testing.T) {
	h := newHistogram([]float64{10, 1, 10, 5})
	if len(h.upper) != 3 || h.upper[0] != 1 || h.upper[2] != 10 {
		t.Fatalf("buckets = %v", h.upper)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("buckets = %v", b)
		}
	}
}

func TestRollingRateWindow(t *testing.T) {
	r := NewRollingRate(4)
	if rate, n := r.Rate(); rate != 0 || n != 0 {
		t.Fatalf("empty rate = %g/%d", rate, n)
	}
	for _, hit := range []bool{true, true, false, true} {
		r.Record(hit)
	}
	if rate, n := r.Rate(); n != 4 || rate != 0.75 {
		t.Fatalf("rate = %g/%d, want 0.75/4", rate, n)
	}
	// Four misses push every hit out of the window.
	for i := 0; i < 4; i++ {
		r.Record(false)
	}
	if rate, n := r.Rate(); n != 4 || rate != 0 {
		t.Fatalf("rate after misses = %g/%d, want 0/4", rate, n)
	}
	if hits, total := r.Lifetime(); hits != 3 || total != 8 {
		t.Fatalf("lifetime = %d/%d, want 3/8", hits, total)
	}
}

func TestRollingRateTinyWindow(t *testing.T) {
	r := NewRollingRate(0) // clamped to 1
	r.Record(true)
	r.Record(false)
	if rate, n := r.Rate(); n != 1 || rate != 0 {
		t.Fatalf("rate = %g/%d", rate, n)
	}
}

func TestLabelsSortedAndEscaped(t *testing.T) {
	got := Labels("queue", `no"rm\al`, "bucket", "1-4")
	want := `bucket="1-4",queue="no\"rm\\al"`
	if got != want {
		t.Fatalf("labels = %s, want %s", got, want)
	}
	if Labels() != "" {
		t.Fatal("empty labels should render empty")
	}
}

func TestConcurrentPrimitives(t *testing.T) {
	var c Counter
	var g Gauge
	h := newHistogram([]float64{1, 2, 4})
	r := NewRollingRate(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				r.Record(i%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %g", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
	if _, total := r.Lifetime(); total != 8000 {
		t.Errorf("rolling total = %d", total)
	}
}

func TestRegistryRendering(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_requests_total", "requests served")
	c.Add(3)
	g := reg.NewGauge("test_depth", "queue depth")
	g.Set(1.5)
	h := reg.NewHistogram("test_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := reg.NewCounterVec("test_codes_total", "status codes", "endpoint", "code")
	v.With("observe", "204").Add(2)
	v.With("forecast", "200").Inc()
	reg.RegisterGaugeFunc("test_streams", "per-stream depth", func(emit func(string, float64)) {
		emit(Labels("stream", "normal/1-4"), 42)
	})

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_requests_total requests served",
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"test_depth 1.5",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.55",
		"test_latency_seconds_count 3",
		`test_codes_total{code="204",endpoint="observe"} 2`,
		`test_codes_total{code="200",endpoint="forecast"} 1`,
		`test_streams{stream="normal/1-4"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestRegisterExistingMetrics(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	var g Gauge
	reg.RegisterCounter("ext_events_total", "events owned elsewhere", &c)
	reg.RegisterGauge("ext_mode", "mode owned elsewhere", &g)
	c.Add(7)
	g.Set(1)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE ext_events_total counter",
		"ext_events_total 7",
		"# TYPE ext_mode gauge",
		"ext_mode 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}

	// Updates after registration show up on the next scrape: the registry
	// reads the caller's metric, it does not copy it.
	c.Inc()
	g.Set(0)
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, "ext_events_total 8") || !strings.Contains(out, "ext_mode 0") {
		t.Errorf("registered metrics did not track owner updates:\n%s", out)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.NewCounter("dup", "")
}

func TestCounterVecWrongArity(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewCounterVec("arity_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestRegistryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("scrape_total", "")
	v := reg.NewCounterVec("scrape_codes_total", "", "code")
	h := reg.NewHistogram("scrape_lat", "", ExponentialBuckets(1e-6, 4, 8))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				v.With("200").Inc()
				v.With("404").Inc()
				h.Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 2000 {
		t.Errorf("counter = %d", c.Value())
	}
}
