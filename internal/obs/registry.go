package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric creation is expected at setup time; updates
// and scrapes may happen concurrently from any goroutine.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	names   map[string]bool
}

// entry is one metric family: a fixed name/help/type plus a collector that
// emits samples at scrape time. suffix extends the family name
// ("_bucket", "_sum", ...); labels is a pre-rendered `k="v",...` list.
type entry struct {
	name, help, typ string
	collect         func(emit func(suffix, labels string, value float64))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[e.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", e.name))
	}
	r.names[e.name] = true
	r.entries = append(r.entries, e)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(&entry{name: name, help: help, typ: "counter",
		collect: func(emit func(string, string, float64)) {
			emit("", "", float64(c.Value()))
		}})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&entry{name: name, help: help, typ: "gauge",
		collect: func(emit func(string, string, float64)) {
			emit("", "", g.Value())
		}})
	return g
}

// NewHistogram registers and returns a histogram over the given bucket
// upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.add(&entry{name: name, help: help, typ: "histogram",
		collect: func(emit func(string, string, float64)) {
			cum := h.snapshot()
			for i, upper := range h.upper {
				emit("_bucket", Labels("le", formatFloat(upper)), float64(cum[i]))
			}
			emit("_bucket", Labels("le", "+Inf"), float64(cum[len(cum)-1]))
			emit("_sum", "", h.Sum())
			emit("_count", "", float64(h.Count()))
		}})
	return h
}

// RegisterCounter registers an existing Counter under name — the shape for
// metrics owned by another layer (e.g. the durability counters the Service
// maintains whether or not a metrics registry exists).
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.add(&entry{name: name, help: help, typ: "counter",
		collect: func(emit func(string, string, float64)) {
			emit("", "", float64(c.Value()))
		}})
}

// RegisterGauge registers an existing Gauge under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.add(&entry{name: name, help: help, typ: "gauge",
		collect: func(emit func(string, string, float64)) {
			emit("", "", g.Value())
		}})
}

// NewCounterVec registers a counter family keyed by label values. Children
// are created on first use and live forever; keep label cardinality small.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	v := &CounterVec{labelNames: labelNames, children: make(map[string]*Counter)}
	r.add(&entry{name: name, help: help, typ: "counter",
		collect: func(emit func(string, string, float64)) {
			v.mu.RLock()
			keys := make([]string, 0, len(v.children))
			for k := range v.children {
				keys = append(keys, k)
			}
			v.mu.RUnlock()
			sort.Strings(keys)
			for _, k := range keys {
				v.mu.RLock()
				c := v.children[k]
				v.mu.RUnlock()
				emit("", k, float64(c.Value()))
			}
		}})
	return v
}

// RegisterGaugeFunc registers a gauge family whose samples are produced at
// scrape time by collect — the natural shape for per-stream state that
// lives elsewhere (depth, hit rate) and would be wasteful to mirror into
// dedicated gauges on every update.
func (r *Registry) RegisterGaugeFunc(name, help string, collect func(emit func(labels string, value float64))) {
	r.add(&entry{name: name, help: help, typ: "gauge",
		collect: func(emit func(string, string, float64)) {
			collect(func(labels string, v float64) { emit("", labels, v) })
		}})
}

// RegisterCounterFunc is RegisterGaugeFunc for monotone families collected
// at scrape time (e.g. per-stream trim totals held by the streams).
func (r *Registry) RegisterCounterFunc(name, help string, collect func(emit func(labels string, value float64))) {
	r.add(&entry{name: name, help: help, typ: "counter",
		collect: func(emit func(string, string, float64)) {
			collect(func(labels string, v float64) { emit("", labels, v) })
		}})
}

// WritePrometheus renders every registered metric in exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	var err error
	for _, e := range entries {
		if _, werr := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, e.typ); werr != nil && err == nil {
			err = werr
		}
		e.collect(func(suffix, labels string, v float64) {
			var werr error
			if labels == "" {
				_, werr = fmt.Fprintf(w, "%s%s %s\n", e.name, suffix, formatFloat(v))
			} else {
				_, werr = fmt.Fprintf(w, "%s%s{%s} %s\n", e.name, suffix, labels, formatFloat(v))
			}
			if werr != nil && err == nil {
				err = werr
			}
		})
	}
	return err
}

// Handler returns an http.Handler serving the registry — mount it at
// /metrics and point a Prometheus scraper at it.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	labelNames []string
	mu         sync.RWMutex
	children   map[string]*Counter
}

// With returns the child counter for the given label values (one per label
// name, in registration order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if len(labelValues) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(labelValues), len(v.labelNames)))
	}
	kv := make([]string, 0, 2*len(labelValues))
	for i, val := range labelValues {
		kv = append(kv, v.labelNames[i], val)
	}
	key := Labels(kv...)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c = &Counter{}
	v.children[key] = c
	return c
}

// Labels renders alternating key, value pairs as a Prometheus label list
// (`k1="v1",k2="v2"`), escaping values. Keys are sorted so equal label sets
// render identically regardless of argument order.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labels requires key, value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
