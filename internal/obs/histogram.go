package obs

import (
	"sort"
	"sync/atomic"
)

// Histogram counts observations in fixed buckets, Prometheus-style: bucket
// i holds observations v with v <= upper[i], plus an implicit +Inf bucket.
// Updates are lock-free; a scrape reads a consistent-enough snapshot (each
// field is individually atomic, which is the standard exposition contract).
type Histogram struct {
	upper  []float64 // sorted upper bounds, excluding +Inf
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// newHistogram returns a histogram over the given bucket upper bounds. The
// bounds are sorted and deduplicated; an empty slice leaves only +Inf.
func newHistogram(buckets []float64) *Histogram {
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	dedup := up[:0]
	for i, b := range up {
		if i == 0 || b != up[i-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{upper: dedup, counts: make([]atomic.Uint64, len(dedup)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; len(upper) selects +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// snapshot returns cumulative bucket counts aligned with upper (the last
// entry is the +Inf bucket, equal to the total count at snapshot time).
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// ExponentialBuckets returns n upper bounds starting at start, each factor
// times the previous — the usual latency-histogram shape.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets covers 1µs to ~4s, suiting microsecond-scale prediction
// paths with room for degenerate tail behavior.
func LatencyBuckets() []float64 { return ExponentialBuckets(1e-6, 2, 22) }

// SizeBuckets covers request batch sizes from single-item to the
// practical maximum in a 1-2-5 progression — the natural shape for
// "how big are the batches clients send" histograms.
func SizeBuckets() []float64 {
	return []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
}
