package obs

import "sync"

// RollingRate tracks the hit rate of a boolean outcome stream over a
// sliding window of the most recent outcomes, plus lifetime totals. It is
// the online form of the paper's correctness metric (Tables 3–7): each
// resolved prediction — a job whose quoted bound can now be compared with
// its actual wait — records one outcome, and the windowed rate is compared
// against the target confidence to tell whether the bounds are holding
// *now*, not just on average since startup.
type RollingRate struct {
	mu     sync.Mutex
	size   int
	window []bool // allocated on first Record: most streams never resolve
	idx    int
	filled int
	hits   int

	lifetimeN    uint64
	lifetimeHits uint64
}

// NewRollingRate returns a tracker over a window of the last n outcomes.
// n < 1 is treated as 1. The window itself is allocated lazily on the
// first Record — a registry of mostly-idle streams pays nothing for
// trackers that never resolve a prediction.
func NewRollingRate(n int) *RollingRate {
	if n < 1 {
		n = 1
	}
	return &RollingRate{size: n}
}

// Record adds one outcome.
func (r *RollingRate) Record(hit bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.window == nil {
		r.window = make([]bool, r.size)
	}
	if r.filled == len(r.window) {
		if r.window[r.idx] {
			r.hits--
		}
	} else {
		r.filled++
	}
	r.window[r.idx] = hit
	if hit {
		r.hits++
	}
	r.idx = (r.idx + 1) % len(r.window)
	r.lifetimeN++
	if hit {
		r.lifetimeHits++
	}
}

// Rate returns the hit rate over the current window and the number of
// outcomes in it. With no outcomes yet, it returns (0, 0).
func (r *RollingRate) Rate() (rate float64, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled == 0 {
		return 0, 0
	}
	return float64(r.hits) / float64(r.filled), r.filled
}

// Lifetime returns the total hits and outcomes since creation.
func (r *RollingRate) Lifetime() (hits, total uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lifetimeHits, r.lifetimeN
}
