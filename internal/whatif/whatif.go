// Package whatif is the capacity-planning plane: it answers "what would
// the C-confidence bound on queuing delay be IF the arrival rate rose 20%,
// the machine shrank to 64 processors, or backfilling were turned off" by
// replaying a calibrated scheduler simulation per scenario and reading the
// bound off the simulated wait distribution with the same order-statistic
// machinery the live predictor uses (internal/core).
//
// The plane is built for query-time use — dozens of scenarios inside one
// HTTP request — which shapes the whole design:
//
//   - every scenario replays ONE common-random-numbers base trace
//     (scheduler.BaseTrace) under a perturbation, so per-scenario workload
//     generation costs no RNG work and cross-scenario deltas are
//     low-variance;
//   - replays run on pooled scheduler.Kernels, one per worker, fanned out
//     over internal/parallel — steady-state scenario evaluation allocates
//     only the outcome records;
//   - outcomes are memoized in a fingerprint-keyed cache: the fingerprint
//     identifies the model snapshot the planner is calibrated against, so
//     a refit (new fingerprint) invalidates every cached scenario at once.
package whatif

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/scheduler"
)

// Scenario is one hypothetical to evaluate against the base workload. The
// zero value replays the base system unchanged.
type Scenario struct {
	// Name labels the scenario in responses (optional, not part of the
	// cache identity).
	Name string `json:"name,omitempty"`
	// RateMultiplier scales the arrival rate; 1.2 means 20% more load
	// (0 = 1, unchanged).
	RateMultiplier float64 `json:"rate_multiplier,omitempty"`
	// Procs resizes the machine (0 = base size). Job requests and queue
	// ceilings are capped to fit, mirroring how operators shrink a
	// machine's advertised limits with it.
	Procs int `json:"procs,omitempty"`
	// Policy overrides the scheduling discipline: "fcfs", "easy",
	// "conservative" ("" = base policy).
	Policy string `json:"policy,omitempty"`
}

// key is the cache identity of a scenario: its semantic parameters with
// defaults resolved, without the display name.
func (sc Scenario) key() Scenario {
	sc.Name = ""
	if sc.RateMultiplier == 0 {
		sc.RateMultiplier = 1
	}
	return sc
}

// Outcome is the simulated result of one scenario.
type Outcome struct {
	Scenario Scenario `json:"scenario"`
	// BoundSeconds is the level-C upper confidence bound on the target
	// quantile of simulated waits (valid when BoundOK).
	BoundSeconds float64 `json:"bound_seconds"`
	BoundOK      bool    `json:"bound_ok"`
	// Jobs is how many simulated waits fed the bound (after queue filter).
	Jobs int `json:"jobs"`
	// MeanWaitSeconds and MaxWaitSeconds summarize the same distribution.
	MeanWaitSeconds float64 `json:"mean_wait_seconds"`
	MaxWaitSeconds  float64 `json:"max_wait_seconds"`
	// Utilization and Backfilled echo the machine-level run statistics.
	Utilization float64 `json:"utilization"`
	Backfilled  int     `json:"backfilled"`
	// Cached reports the outcome was served from the scenario cache.
	Cached bool `json:"cached"`
	// Error is set when the scenario could not be simulated (e.g. an
	// unknown policy name); the other fields are then zero.
	Error string `json:"error,omitempty"`
}

// Sizing is the answer to "how much load keeps the bound under target":
// the largest arrival-rate multiplier whose simulated bound meets the SLO.
type Sizing struct {
	Scenario Scenario `json:"scenario"`
	// TargetSeconds is the SLO on the bound.
	TargetSeconds float64 `json:"target_seconds"`
	// MaxRateMultiplier is the largest feasible multiplier found in
	// [MinRateMultiplier, MaxRateMultiplier] (valid when OK).
	MaxRateMultiplier float64 `json:"max_rate_multiplier"`
	// BoundSeconds is the simulated bound at MaxRateMultiplier.
	BoundSeconds float64 `json:"bound_seconds"`
	// OK is false when even the search floor violates the target (or the
	// floor scenario failed to produce a bound).
	OK bool `json:"ok"`
	// Evaluations counts simulated scenarios the search spent (cache hits
	// included).
	Evaluations int `json:"evaluations"`
}

// Config parameterizes a Planner.
type Config struct {
	// Workload is the base synthetic workload (the CRN trace is sampled
	// from it once, at planner construction).
	Workload scheduler.WorkloadConfig
	// Machine is the base machine description.
	Machine scheduler.Config
	// Queue filters which simulated waits feed the bound ("" = all jobs).
	Queue string
	// Quantile and Confidence select the bound, defaulting to the paper's
	// 0.95/0.95.
	Quantile, Confidence float64
}

func (c Config) withDefaults() Config {
	if c.Quantile == 0 {
		c.Quantile = 0.95
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Machine.Procs == 0 {
		c.Machine = scheduler.DefaultMachine()
	}
	return c
}

// Planner evaluates scenario grids against one base workload. Safe for
// concurrent use; hold one per served stream or machine profile.
type Planner struct {
	cfg Config
	bt  *scheduler.BaseTrace

	workers sync.Pool // *worker

	mu    sync.Mutex
	fp    uint64
	cache map[Scenario]Outcome

	hits, misses atomic.Uint64
}

// worker is the per-goroutine replay state: a pooled kernel plus scratch.
type worker struct {
	k      *scheduler.Kernel
	waits  []float64
	queues []scheduler.QueueClass
}

// NewPlanner samples the base trace for cfg and returns a planner with an
// empty cache.
func NewPlanner(cfg Config) *Planner {
	cfg = cfg.withDefaults()
	p := &Planner{
		cfg:   cfg,
		bt:    scheduler.NewBaseTrace(cfg.Workload),
		cache: make(map[Scenario]Outcome),
	}
	p.workers.New = func() any { return &worker{k: scheduler.NewKernel()} }
	return p
}

// Config returns the planner's resolved configuration.
func (p *Planner) Config() Config { return p.cfg }

// CacheHits and CacheMisses report cumulative scenario-cache traffic.
func (p *Planner) CacheHits() uint64   { return p.hits.Load() }
func (p *Planner) CacheMisses() uint64 { return p.misses.Load() }

// CacheSize reports the number of memoized scenarios.
func (p *Planner) CacheSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cache)
}

// Evaluate simulates every scenario and returns outcomes in input order.
// fingerprint identifies the model snapshot the caller is planning
// against; when it changes, the scenario cache is invalidated wholesale
// (the cached bounds described a model that no longer exists).
func (p *Planner) Evaluate(fingerprint uint64, scenarios []Scenario) []Outcome {
	outs := make([]Outcome, len(scenarios))
	miss := make([]int, 0, len(scenarios))

	p.mu.Lock()
	if p.fp != fingerprint {
		p.fp = fingerprint
		clear(p.cache)
	}
	for i, sc := range scenarios {
		if o, ok := p.cache[sc.key()]; ok {
			o.Cached = true
			o.Scenario.Name = sc.Name
			outs[i] = o
		} else {
			miss = append(miss, i)
		}
	}
	p.mu.Unlock()
	p.hits.Add(uint64(len(scenarios) - len(miss)))
	p.misses.Add(uint64(len(miss)))

	parallel.ForEachIndex(len(miss), func(mi int) {
		i := miss[mi]
		outs[i] = p.simulate(scenarios[i])
	})

	p.mu.Lock()
	// Publish under the fingerprint we computed for; a concurrent refit
	// may have swapped it, in which case these outcomes are already stale.
	if p.fp == fingerprint {
		for _, i := range miss {
			o := outs[i]
			o.Scenario.Name = ""
			p.cache[scenarios[i].key()] = o
		}
	}
	p.mu.Unlock()
	return outs
}

// simulate replays one scenario on a pooled worker kernel.
func (p *Planner) simulate(sc Scenario) Outcome {
	out := Outcome{Scenario: sc}
	norm := sc.key()

	w := p.workers.Get().(*worker)
	defer p.workers.Put(w)

	machine := p.cfg.Machine
	if sc.Policy != "" {
		pol, err := scheduler.ParsePolicy(sc.Policy)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		machine.Policy = pol
	}
	var pert scheduler.Perturbation
	pert.RateMultiplier = norm.RateMultiplier
	if sc.Procs > 0 {
		if sc.Procs < machine.Procs {
			machine.Procs = sc.Procs
		}
		pert.MaxProcs = machine.Procs
		// Shrink queue ceilings with the machine so the workload stays
		// admissible.
		w.queues = w.queues[:0]
		for _, q := range p.cfg.Machine.Queues {
			if q.MaxProcs == 0 || q.MaxProcs > machine.Procs {
				q.MaxProcs = machine.Procs
			}
			w.queues = append(w.queues, q)
		}
		machine.Queues = w.queues
	}

	p.bt.Fill(w.k.Jobs(p.bt.Len()), pert)
	res, err := w.k.Run(machine)
	if err != nil {
		out.Error = fmt.Sprintf("whatif: scenario %+v: %v", norm, err)
		return out
	}

	w.waits = w.waits[:0]
	var sum, max float64
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if p.cfg.Queue != "" && j.Queue != p.cfg.Queue {
			continue
		}
		wt := j.Wait()
		w.waits = append(w.waits, wt)
		sum += wt
		if wt > max {
			max = wt
		}
	}
	sort.Float64s(w.waits)
	out.Jobs = len(w.waits)
	if out.Jobs > 0 {
		out.MeanWaitSeconds = sum / float64(out.Jobs)
		out.MaxWaitSeconds = max
	}
	out.BoundSeconds, out.BoundOK = core.UpperBound(w.waits, p.cfg.Quantile, p.cfg.Confidence, core.ModeAuto)
	out.Utilization = res.Utilization
	out.Backfilled = res.Backfilled
	return out
}

// Sizing search space and precision. The bounds are generous — a machine
// that can absorb 8x its base arrival rate within SLO is not the case
// operators ask about — and 12 bisection steps resolve the multiplier to
// (hi-lo)/4096 < 0.2% of the range.
const (
	sizingLoMul = 1.0 / 8
	sizingHiMul = 8.0
	sizingIters = 12
)

// SizeToSLO binary-searches the largest arrival-rate multiplier (within
// [1/8, 8]) whose simulated bound stays at or under targetSeconds, holding
// the rest of base fixed. It assumes the bound is monotone non-decreasing
// in the arrival rate — the H-SLOSizing invariant exercised in CI. Every
// probe lands in the same fingerprint-keyed cache Evaluate uses, so
// repeated sizing queries against one model snapshot converge to cache
// hits.
func (p *Planner) SizeToSLO(fingerprint uint64, base Scenario, targetSeconds float64) Sizing {
	s := Sizing{Scenario: base, TargetSeconds: targetSeconds}
	probe := func(mul float64) Outcome {
		sc := base
		sc.RateMultiplier = mul
		s.Evaluations++
		return p.Evaluate(fingerprint, []Scenario{sc})[0]
	}

	lo, hi := sizingLoMul, sizingHiMul
	oLo := probe(lo)
	if !oLo.BoundOK || oLo.BoundSeconds > targetSeconds {
		// Even the floor violates the SLO (or cannot produce a bound).
		s.BoundSeconds = oLo.BoundSeconds
		return s
	}
	s.OK = true
	s.MaxRateMultiplier = lo
	s.BoundSeconds = oLo.BoundSeconds
	if oHi := probe(hi); oHi.BoundOK && oHi.BoundSeconds <= targetSeconds {
		s.MaxRateMultiplier = hi
		s.BoundSeconds = oHi.BoundSeconds
		return s
	}
	for i := 0; i < sizingIters; i++ {
		mid := (lo + hi) / 2
		if o := probe(mid); o.BoundOK && o.BoundSeconds <= targetSeconds {
			lo = mid
			s.MaxRateMultiplier = mid
			s.BoundSeconds = o.BoundSeconds
		} else {
			hi = mid
		}
	}
	return s
}
