package whatif

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/scheduler"
)

func testPlanner(jobs int) *Planner {
	return NewPlanner(Config{
		Workload: scheduler.WorkloadConfig{Jobs: jobs, Seed: 42},
	})
}

func TestEvaluateBaseline(t *testing.T) {
	p := testPlanner(2000)
	outs := p.Evaluate(1, []Scenario{{Name: "base"}})
	o := outs[0]
	if o.Error != "" {
		t.Fatalf("baseline errored: %s", o.Error)
	}
	if !o.BoundOK {
		t.Fatal("baseline produced no bound")
	}
	if o.Jobs != 2000 {
		t.Fatalf("baseline evaluated %d jobs, want 2000", o.Jobs)
	}
	if o.BoundSeconds < o.MeanWaitSeconds {
		t.Errorf("0.95-quantile bound %.1f below mean wait %.1f", o.BoundSeconds, o.MeanWaitSeconds)
	}
	if o.BoundSeconds > o.MaxWaitSeconds {
		t.Errorf("bound %.1f above max wait %.1f", o.BoundSeconds, o.MaxWaitSeconds)
	}
	if o.Scenario.Name != "base" {
		t.Errorf("scenario name lost: %+v", o.Scenario)
	}
}

func TestEvaluateDeterministicAcrossWorkers(t *testing.T) {
	grid := make([]Scenario, 16)
	for i := range grid {
		grid[i].RateMultiplier = 0.5 + float64(i)*0.1
	}
	a := testPlanner(1000).Evaluate(1, grid)
	b := testPlanner(1000).Evaluate(1, grid)
	for i := range a {
		a[i].Cached, b[i].Cached = false, false
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("parallel grid evaluation is not deterministic")
	}
}

func TestLoadAndCapacityDirections(t *testing.T) {
	p := testPlanner(2000)
	outs := p.Evaluate(1, []Scenario{
		{Name: "half-load", RateMultiplier: 0.5},
		{Name: "base"},
		{Name: "double-load", RateMultiplier: 2},
		{Name: "half-machine", Procs: 64},
	})
	for _, o := range outs {
		if o.Error != "" || !o.BoundOK {
			t.Fatalf("scenario %q failed: %+v", o.Scenario.Name, o)
		}
	}
	half, base, double, shrunk := outs[0], outs[1], outs[2], outs[3]
	if half.BoundSeconds > base.BoundSeconds {
		t.Errorf("halving load raised the bound: %.1f > %.1f", half.BoundSeconds, base.BoundSeconds)
	}
	if double.BoundSeconds < base.BoundSeconds {
		t.Errorf("doubling load lowered the bound: %.1f < %.1f", double.BoundSeconds, base.BoundSeconds)
	}
	if shrunk.BoundSeconds < base.BoundSeconds {
		t.Errorf("halving the machine lowered the bound: %.1f < %.1f", shrunk.BoundSeconds, base.BoundSeconds)
	}
}

func TestPolicyOverride(t *testing.T) {
	p := testPlanner(2000)
	outs := p.Evaluate(1, []Scenario{
		{Name: "fcfs", Policy: "fcfs"},
		{Name: "easy", Policy: "easy"},
		{Name: "bogus", Policy: "gang"},
	})
	if outs[0].Backfilled != 0 {
		t.Errorf("fcfs backfilled %d jobs", outs[0].Backfilled)
	}
	if outs[1].Backfilled == 0 {
		t.Error("easy backfilled nothing")
	}
	if outs[0].BoundSeconds < outs[1].BoundSeconds {
		t.Errorf("disabling backfill lowered the bound: %.1f < %.1f", outs[0].BoundSeconds, outs[1].BoundSeconds)
	}
	if outs[2].Error == "" {
		t.Error("unknown policy did not error")
	}
}

func TestScenarioCacheAndInvalidation(t *testing.T) {
	p := testPlanner(500)
	grid := []Scenario{{RateMultiplier: 1}, {RateMultiplier: 2}}

	first := p.Evaluate(7, grid)
	if first[0].Cached || first[1].Cached {
		t.Fatal("cold cache reported hits")
	}
	if got := p.CacheMisses(); got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}

	second := p.Evaluate(7, grid)
	for i := range second {
		if !second[i].Cached {
			t.Fatalf("warm scenario %d not served from cache", i)
		}
		second[i].Cached = false
		if !reflect.DeepEqual(second[i], first[i]) {
			t.Fatalf("cached outcome diverged: %+v vs %+v", second[i], first[i])
		}
	}
	if got := p.CacheHits(); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}

	// A rate_multiplier of 0 and 1 are the same scenario.
	if o := p.Evaluate(7, []Scenario{{}})[0]; !o.Cached {
		t.Error("default-rate scenario missed the normalized cache key")
	}

	// Refit: new fingerprint drops everything.
	third := p.Evaluate(8, grid)
	if third[0].Cached || third[1].Cached {
		t.Fatal("fingerprint change did not invalidate the cache")
	}
	if p.CacheSize() != 2 {
		t.Fatalf("cache size = %d, want 2", p.CacheSize())
	}
}

func TestSizeToSLOMeetsTargetAndIsMonotone(t *testing.T) {
	p := testPlanner(2000)
	base := p.Evaluate(1, []Scenario{{}})[0]
	if !base.BoundOK {
		t.Fatal("no baseline bound")
	}

	targets := []float64{base.BoundSeconds * 0.5, base.BoundSeconds, base.BoundSeconds * 2}
	var prev float64
	for i, target := range targets {
		s := p.SizeToSLO(1, Scenario{}, target)
		if !s.OK {
			t.Fatalf("target %.1fs: no feasible rate", target)
		}
		if s.BoundSeconds > target {
			t.Errorf("target %.1fs: returned rate %.3f has bound %.1fs over target",
				target, s.MaxRateMultiplier, s.BoundSeconds)
		}
		// Verify the answer independently: re-simulate at the returned rate.
		check := p.Evaluate(1, []Scenario{{RateMultiplier: s.MaxRateMultiplier}})[0]
		if !check.BoundOK || check.BoundSeconds > target {
			t.Errorf("target %.1fs: re-simulation at %.3f gives %.1fs", target, s.MaxRateMultiplier, check.BoundSeconds)
		}
		if i > 0 && s.MaxRateMultiplier < prev {
			t.Errorf("sizing not monotone: target %.1fs allows %.3f < %.3f", target, s.MaxRateMultiplier, prev)
		}
		prev = s.MaxRateMultiplier
	}

	// A target no simulated bound can meet (bounds are non-negative) is
	// infeasible even at the search floor.
	if s := p.SizeToSLO(1, Scenario{}, -1); s.OK {
		t.Errorf("impossible target reported OK: %+v", s)
	}
}

// BenchmarkWhatifGrid is the acceptance benchmark: a 64-scenario grid over
// rate multipliers and machine sizes, evaluated cold (cache cleared via a
// fresh fingerprint each iteration) on a 2000-job base trace.
func BenchmarkWhatifGrid(b *testing.B) {
	p := testPlanner(2000)
	grid := make([]Scenario, 0, 64)
	for _, procs := range []int{0, 96, 64, 32} {
		for i := 0; i < 16; i++ {
			grid = append(grid, Scenario{
				Name:           fmt.Sprintf("p%d-r%d", procs, i),
				RateMultiplier: 0.25 + float64(i)*0.25,
				Procs:          procs,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs := p.Evaluate(uint64(i+1), grid)
		for _, o := range outs {
			if o.Error != "" {
				b.Fatal(o.Error)
			}
		}
	}
}
