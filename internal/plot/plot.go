// Package plot renders time-series line charts as PNG images using only
// the standard library's image packages. It exists so the reproduction of
// the paper's Figure 1 and Figure 2 can be emitted as actual figures —
// log-scale bound series over a day or a month — not just CSV and
// terminal sparklines.
package plot

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/report"
)

// Config controls chart geometry.
type Config struct {
	Width, Height int  // pixels (defaults 900x420)
	LogY          bool // log-scale the value axis (the paper's figures do)
	Title         string
}

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 900
	}
	if c.Height == 0 {
		c.Height = 420
	}
	return c
}

// Chart geometry constants.
const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 30
	marginBottom = 40
)

var (
	colBackground = color.RGBA{255, 255, 255, 255}
	colAxis       = color.RGBA{60, 60, 60, 255}
	colGrid       = color.RGBA{225, 225, 225, 255}
	colText       = color.RGBA{40, 40, 40, 255}
	// Series palette: black then grays, matching the paper's black/gray
	// two-series figures, extended for more series.
	palette = []color.RGBA{
		{0, 0, 0, 255},
		{150, 150, 150, 255},
		{200, 60, 60, 255},
		{60, 60, 200, 255},
	}
)

// Render draws the series as a line chart and writes a PNG to w.
func Render(w io.Writer, cfg Config, series ...report.Series) error {
	cfg = cfg.withDefaults()
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	img := image.NewRGBA(image.Rect(0, 0, cfg.Width, cfg.Height))
	fill(img, colBackground)

	// Data ranges.
	tMin, tMax := int64(math.MaxInt64), int64(math.MinInt64)
	vMin, vMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i, ts := range s.Times {
			v := s.Values[i]
			if math.IsNaN(v) {
				continue
			}
			if cfg.LogY && v <= 0 {
				continue
			}
			if ts < tMin {
				tMin = ts
			}
			if ts > tMax {
				tMax = ts
			}
			if v < vMin {
				vMin = v
			}
			if v > vMax {
				vMax = v
			}
		}
	}
	if tMin > tMax || vMin > vMax {
		return fmt.Errorf("plot: series contain no drawable points")
	}
	if tMin == tMax {
		tMax = tMin + 1
	}
	if vMin == vMax {
		vMax = vMin * 1.1
		if vMax == vMin {
			vMax = vMin + 1
		}
	}
	yOf := func(v float64) int {
		var frac float64
		if cfg.LogY {
			frac = (math.Log(v) - math.Log(vMin)) / (math.Log(vMax) - math.Log(vMin))
		} else {
			frac = (v - vMin) / (vMax - vMin)
		}
		return cfg.Height - marginBottom - int(frac*float64(cfg.Height-marginTop-marginBottom))
	}
	xOf := func(ts int64) int {
		frac := float64(ts-tMin) / float64(tMax-tMin)
		return marginLeft + int(frac*float64(cfg.Width-marginLeft-marginRight))
	}

	drawGridAndAxes(img, cfg, vMin, vMax, tMin, tMax, xOf, yOf)

	// Series lines.
	for si, s := range series {
		col := palette[si%len(palette)]
		prevOK := false
		var px, py int
		for i, ts := range s.Times {
			v := s.Values[i]
			if math.IsNaN(v) || (cfg.LogY && v <= 0) {
				prevOK = false
				continue
			}
			x, y := xOf(ts), yOf(v)
			if prevOK {
				line(img, px, py, x, y, col)
				line(img, px, py+1, x, y+1, col) // 2px stroke
			}
			px, py, prevOK = x, y, true
		}
		// Legend swatch + label.
		lx := marginLeft + 10
		ly := marginTop + 6 + 14*si
		for dx := 0; dx < 18; dx++ {
			img.SetRGBA(lx+dx, ly, col)
			img.SetRGBA(lx+dx, ly+1, col)
		}
		drawString(img, lx+24, ly-3, s.Label, colText)
	}
	if cfg.Title != "" {
		drawString(img, marginLeft, 10, cfg.Title, colText)
	}
	return png.Encode(w, img)
}

// RenderFile renders to a PNG file.
func RenderFile(path string, cfg Config, series ...report.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Render(f, cfg, series...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func drawGridAndAxes(img *image.RGBA, cfg Config, vMin, vMax float64, tMin, tMax int64, xOf func(int64) int, yOf func(float64) int) {
	// Horizontal gridlines at decade (log) or even (linear) ticks.
	ticks := yTicks(cfg.LogY, vMin, vMax)
	for _, v := range ticks {
		y := yOf(v)
		for x := marginLeft; x < cfg.Width-marginRight; x++ {
			img.SetRGBA(x, y, colGrid)
		}
		drawString(img, 4, y-4, formatTick(v), colText)
	}
	// Time ticks: 5 evenly spaced timestamps.
	for i := 0; i <= 4; i++ {
		ts := tMin + int64(i)*(tMax-tMin)/4
		x := xOf(ts)
		for y := marginTop; y < cfg.Height-marginBottom; y++ {
			img.SetRGBA(x, y, colGrid)
		}
		label := time.Unix(ts, 0).UTC().Format("01-02 15:04")
		drawString(img, x-30, cfg.Height-marginBottom+8, label, colText)
	}
	// Axes.
	for x := marginLeft; x < cfg.Width-marginRight; x++ {
		img.SetRGBA(x, cfg.Height-marginBottom, colAxis)
	}
	for y := marginTop; y <= cfg.Height-marginBottom; y++ {
		img.SetRGBA(marginLeft, y, colAxis)
	}
}

// yTicks picks tick values: powers of ten in log mode, five even steps
// otherwise.
func yTicks(logY bool, vMin, vMax float64) []float64 {
	var out []float64
	if logY {
		lo := math.Ceil(math.Log10(vMin))
		hi := math.Floor(math.Log10(vMax))
		for e := lo; e <= hi; e++ {
			out = append(out, math.Pow(10, e))
		}
		if len(out) == 0 {
			out = append(out, vMin, vMax)
		}
		return out
	}
	for i := 0; i <= 4; i++ {
		out = append(out, vMin+float64(i)*(vMax-vMin)/4)
	}
	return out
}

func formatTick(v float64) string {
	switch {
	case v >= 86400:
		return fmt.Sprintf("%.1fd", v/86400)
	case v >= 3600:
		return fmt.Sprintf("%.0fh", v/3600)
	case v >= 60:
		return fmt.Sprintf("%.0fm", v/60)
	default:
		return fmt.Sprintf("%.0fs", v)
	}
}

func fill(img *image.RGBA, c color.RGBA) {
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			img.SetRGBA(x, y, c)
		}
	}
}

// line draws with Bresenham's algorithm.
func line(img *image.RGBA, x0, y0, x1, y1 int, c color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		img.SetRGBA(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
