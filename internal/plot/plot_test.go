package plot

import (
	"bytes"
	"image/png"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/report"
)

func twoSeries() []report.Series {
	a := report.Series{Label: "fast-site"}
	b := report.Series{Label: "slow-site"}
	for i := 0; i < 100; i++ {
		ts := int64(1_100_000_000 + i*300)
		a.Times = append(a.Times, ts)
		a.Values = append(a.Values, 10+float64(i%7))
		b.Times = append(b.Times, ts)
		b.Values = append(b.Values, 100000+1000*float64(i))
	}
	return []report.Series{a, b}
}

func TestRenderProducesValidPNG(t *testing.T) {
	var buf bytes.Buffer
	s := twoSeries()
	if err := Render(&buf, Config{LogY: true, Title: "figure 1"}, s...); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bounds := img.Bounds()
	if bounds.Dx() != 900 || bounds.Dy() != 420 {
		t.Fatalf("bounds = %v", bounds)
	}
	// The image is not blank: count non-background pixels.
	nonWhite := 0
	for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
		for x := bounds.Min.X; x < bounds.Max.X; x++ {
			r, g, b, _ := img.At(x, y).RGBA()
			if r != 0xffff || g != 0xffff || b != 0xffff {
				nonWhite++
			}
		}
	}
	if nonWhite < 2000 {
		t.Errorf("only %d drawn pixels", nonWhite)
	}
}

func TestRenderFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig.png")
	if err := RenderFile(path, Config{Width: 300, Height: 200}, twoSeries()...); err != nil {
		t.Fatal(err)
	}
	// Re-render to a bad path fails cleanly.
	if err := RenderFile(filepath.Join(t.TempDir(), "no/such/dir/x.png"), Config{}, twoSeries()...); err == nil {
		t.Error("bad path should fail")
	}
}

func TestRenderDegenerateInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Config{}); err == nil {
		t.Error("no series should fail")
	}
	empty := report.Series{Label: "x", Times: []int64{1}, Values: []float64{math.NaN()}}
	if err := Render(&buf, Config{}, empty); err == nil {
		t.Error("all-NaN series should fail")
	}
	// A single point and a constant series still render.
	one := report.Series{Label: "p", Times: []int64{5}, Values: []float64{3}}
	if err := Render(&buf, Config{}, one); err != nil {
		t.Errorf("single point: %v", err)
	}
	flat := report.Series{Label: "f", Times: []int64{1, 2, 3}, Values: []float64{7, 7, 7}}
	if err := Render(&buf, Config{LogY: true}, flat); err != nil {
		t.Errorf("constant series: %v", err)
	}
	// Non-positive values under LogY are skipped, not fatal, as long as
	// something remains drawable.
	mixed := report.Series{Label: "m", Times: []int64{1, 2, 3}, Values: []float64{0, 5, 50}}
	if err := Render(&buf, Config{LogY: true}, mixed); err != nil {
		t.Errorf("mixed series: %v", err)
	}
}

func TestYTicks(t *testing.T) {
	log := yTicks(true, 5, 50000)
	if len(log) != 4 { // 10, 100, 1000, 10000
		t.Errorf("log ticks = %v", log)
	}
	lin := yTicks(false, 0, 100)
	if len(lin) != 5 || lin[0] != 0 || lin[4] != 100 {
		t.Errorf("linear ticks = %v", lin)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		30:     "30s",
		120:    "2m",
		7200:   "2h",
		172800: "2.0d",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", v, got, want)
		}
	}
}
