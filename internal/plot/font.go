package plot

import (
	"image"
	"image/color"
	"strings"
)

// A minimal 3x5 pixel font covering the characters chart labels use.
// Each glyph is 5 rows of 3 bits, most significant bit leftmost.
var glyphs = map[rune][5]uint8{
	'0': {0b111, 0b101, 0b101, 0b101, 0b111},
	'1': {0b010, 0b110, 0b010, 0b010, 0b111},
	'2': {0b111, 0b001, 0b111, 0b100, 0b111},
	'3': {0b111, 0b001, 0b111, 0b001, 0b111},
	'4': {0b101, 0b101, 0b111, 0b001, 0b001},
	'5': {0b111, 0b100, 0b111, 0b001, 0b111},
	'6': {0b111, 0b100, 0b111, 0b101, 0b111},
	'7': {0b111, 0b001, 0b010, 0b010, 0b010},
	'8': {0b111, 0b101, 0b111, 0b101, 0b111},
	'9': {0b111, 0b101, 0b111, 0b001, 0b111},
	'a': {0b010, 0b101, 0b111, 0b101, 0b101},
	'b': {0b110, 0b101, 0b110, 0b101, 0b110},
	'c': {0b011, 0b100, 0b100, 0b100, 0b011},
	'd': {0b110, 0b101, 0b101, 0b101, 0b110},
	'e': {0b111, 0b100, 0b110, 0b100, 0b111},
	'f': {0b111, 0b100, 0b110, 0b100, 0b100},
	'g': {0b011, 0b100, 0b101, 0b101, 0b011},
	'h': {0b101, 0b101, 0b111, 0b101, 0b101},
	'i': {0b111, 0b010, 0b010, 0b010, 0b111},
	'j': {0b001, 0b001, 0b001, 0b101, 0b010},
	'k': {0b101, 0b110, 0b100, 0b110, 0b101},
	'l': {0b100, 0b100, 0b100, 0b100, 0b111},
	'm': {0b101, 0b111, 0b111, 0b101, 0b101},
	'n': {0b101, 0b111, 0b111, 0b111, 0b101},
	'o': {0b010, 0b101, 0b101, 0b101, 0b010},
	'p': {0b110, 0b101, 0b110, 0b100, 0b100},
	'q': {0b010, 0b101, 0b101, 0b011, 0b001},
	'r': {0b110, 0b101, 0b110, 0b101, 0b101},
	's': {0b011, 0b100, 0b010, 0b001, 0b110},
	't': {0b111, 0b010, 0b010, 0b010, 0b010},
	'u': {0b101, 0b101, 0b101, 0b101, 0b111},
	'v': {0b101, 0b101, 0b101, 0b101, 0b010},
	'w': {0b101, 0b101, 0b111, 0b111, 0b101},
	'x': {0b101, 0b101, 0b010, 0b101, 0b101},
	'y': {0b101, 0b101, 0b010, 0b010, 0b010},
	'z': {0b111, 0b001, 0b010, 0b100, 0b111},
	'-': {0b000, 0b000, 0b111, 0b000, 0b000},
	'+': {0b000, 0b010, 0b111, 0b010, 0b000},
	'.': {0b000, 0b000, 0b000, 0b000, 0b010},
	':': {0b000, 0b010, 0b000, 0b010, 0b000},
	'/': {0b001, 0b001, 0b010, 0b100, 0b100},
	',': {0b000, 0b000, 0b000, 0b010, 0b100},
	'(': {0b001, 0b010, 0b010, 0b010, 0b001},
	')': {0b100, 0b010, 0b010, 0b010, 0b100},
	'%': {0b101, 0b001, 0b010, 0b100, 0b101},
	' ': {0, 0, 0, 0, 0},
}

// drawString renders text at (x, y) in the tiny built-in font. Uppercase
// maps to lowercase; unknown runes render as blank cells.
func drawString(img *image.RGBA, x, y int, text string, c color.RGBA) {
	cx := x
	for _, r := range strings.ToLower(text) {
		g, ok := glyphs[r]
		if ok {
			for row := 0; row < 5; row++ {
				for col := 0; col < 3; col++ {
					if g[row]&(1<<(2-col)) != 0 {
						img.SetRGBA(cx+col, y+row, c)
					}
				}
			}
		}
		cx += 4
	}
}
