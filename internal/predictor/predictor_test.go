package predictor

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
)

func TestStandardOrderAndNames(t *testing.T) {
	preds := Standard(0.95, 0.95, 1)
	if len(preds) != 3 {
		t.Fatalf("len = %d", len(preds))
	}
	want := []string{"bmbp", "logn-notrim", "logn-trim"}
	for i, p := range preds {
		if p.Name() != want[i] {
			t.Errorf("preds[%d] = %q, want %q", i, p.Name(), want[i])
		}
	}
}

func TestLogNormalBoundOnTrueLogNormalData(t *testing.T) {
	// On genuinely log-normal data the parametric bound should sit just
	// above the true 0.95 quantile — and be tighter than wildly above it.
	ln := NewLogNormal(LogNormalConfig{})
	rng := rand.New(rand.NewSource(6))
	const mu, sigma = 3.0, 1.5
	for i := 0; i < 20000; i++ {
		ln.Observe(math.Exp(mu+sigma*rng.NormFloat64()), false)
	}
	ln.Refit()
	bound, ok := ln.Bound()
	if !ok {
		t.Fatal("no bound")
	}
	trueQ := math.Exp(mu + sigma*stats.StdNormalQuantile(0.95))
	// A single large sample pins the bound near the true quantile (the
	// guarantee is 95% coverage over repeated samples, so allow sampling
	// slack on one draw).
	if bound < trueQ*0.97 {
		t.Errorf("bound %g far below true q95 %g", bound, trueQ)
	}
	if bound > trueQ*1.25 {
		t.Errorf("bound %g too conservative vs true q95 %g", bound, trueQ)
	}
}

func TestLogNormalCoverageOverRepeatedSamples(t *testing.T) {
	// The defining K' property on genuinely log-normal data: the bound
	// exceeds the true quantile in about 95% of repeated size-n samples.
	// The population stays above one second so the log transform's
	// 1-second clamp (shared with the evaluation pipeline) is inert.
	rng := rand.New(rand.NewSource(77))
	const n, trials = 200, 1500
	trueQ := math.Exp(6 + 1.5*stats.StdNormalQuantile(0.95))
	covered := 0
	for tr := 0; tr < trials; tr++ {
		ln := NewLogNormal(LogNormalConfig{})
		for i := 0; i < n; i++ {
			ln.Observe(math.Exp(6+1.5*rng.NormFloat64()), false)
		}
		ln.Refit()
		if b, ok := ln.Bound(); ok && b >= trueQ {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.93 || frac > 0.985 {
		t.Errorf("coverage %.3f, want ~0.95", frac)
	}
}

func TestLogNormalNoBoundBeforeMinHistory(t *testing.T) {
	ln := NewLogNormal(LogNormalConfig{})
	for i := 0; i < 58; i++ {
		ln.Observe(float64(i+1), false)
	}
	if _, ok := ln.Bound(); ok {
		t.Fatal("bound before 59 observations")
	}
	ln.Observe(60, false)
	if _, ok := ln.Bound(); !ok {
		t.Fatal("bound unavailable at 59")
	}
}

func TestLogNormalTrimBehaviour(t *testing.T) {
	ln := NewLogNormal(LogNormalConfig{Trim: true, FixedRareThreshold: 3})
	for i := 0; i < 300; i++ {
		ln.Observe(10, false)
	}
	ln.Observe(1e6, true)
	ln.Observe(1e6, true)
	ln.Observe(1e6, true)
	if ln.Trims() != 1 {
		t.Fatalf("Trims = %d, want 1", ln.Trims())
	}
	if got := ln.HistoryLen(); got != 59 {
		t.Fatalf("history = %d, want 59", got)
	}
	// The untrimmed variant never trims.
	nt := NewLogNormal(LogNormalConfig{Trim: false, FixedRareThreshold: 3})
	for i := 0; i < 300; i++ {
		nt.Observe(10, false)
	}
	for i := 0; i < 10; i++ {
		nt.Observe(1e6, true)
	}
	if nt.Trims() != 0 {
		t.Fatal("NoTrim variant trimmed")
	}
}

func TestLogNormalTrimRecomputesMoments(t *testing.T) {
	ln := NewLogNormal(LogNormalConfig{Trim: true, FixedRareThreshold: 2})
	for i := 0; i < 500; i++ {
		ln.Observe(1, false)
	}
	ln.Observe(math.Exp(10), true)
	ln.Observe(math.Exp(10), true)
	if ln.Trims() != 1 {
		t.Fatal("no trim")
	}
	// After the trim the window is 57 ones and two huge values: the fitted
	// mean must reflect the window, not the full history.
	ln.Refit()
	bound, _ := ln.Bound()
	// Window logs: 57 zeros, two tens -> mean ~0.339, sd ~1.86.
	wantMean := 20.0 / 59
	k := stats.ToleranceFactor(59, 0.95, 0.95)
	sd := math.Sqrt((2*(10-wantMean)*(10-wantMean) + 57*wantMean*wantMean) / 58)
	want := math.Exp(wantMean + k*sd)
	if math.Abs(math.Log(bound)-math.Log(want)) > 1e-6 {
		t.Errorf("post-trim bound %g, want %g", bound, want)
	}
}

func TestLogNormalUndercoversOnBimodalData(t *testing.T) {
	// The paper's central negative result: a log-normal fit undercovers
	// when the data has a separated high mode (episode contamination).
	// 7% of mass sits at e^10, the body at e^0; the fitted bound lands
	// between the modes, below the true 0.95 quantile.
	ln := NewLogNormal(LogNormalConfig{})
	rng := rand.New(rand.NewSource(30))
	var data []float64
	for i := 0; i < 20000; i++ {
		v := math.Exp(0.3 * rng.NormFloat64())
		if rng.Float64() < 0.07 {
			v = math.Exp(10 + 0.3*rng.NormFloat64())
		}
		ln.Observe(v, false)
		data = append(data, v)
	}
	ln.Refit()
	bound, _ := ln.Bound()
	sort.Float64s(data)
	empQ95 := stats.QuantileSorted(data, 0.95)
	if bound >= empQ95 {
		t.Errorf("expected undercoverage: bound %g >= empirical q95 %g", bound, empQ95)
	}
}

func TestRunningMaxBaseline(t *testing.T) {
	rm := NewRunningMax(0.95, 0.95)
	if rm.Name() != "running-max" {
		t.Error("name")
	}
	for i := 1; i <= 58; i++ {
		rm.Observe(float64(i), false)
	}
	if _, ok := rm.Bound(); ok {
		t.Error("bound before min history")
	}
	rm.Observe(1000, false)
	rm.Observe(5, false)
	b, ok := rm.Bound()
	if !ok || b != 1000 {
		t.Errorf("bound = %g ok=%v", b, ok)
	}
	rm.FinishTraining()
	rm.Refit() // no-ops
}

func TestEmpiricalBaseline(t *testing.T) {
	e := NewEmpirical(0.95, 0.95, 1)
	if e.Name() != "empirical" {
		t.Error("name")
	}
	for i := 1; i <= 100; i++ {
		e.Observe(float64(i), false)
	}
	e.Refit()
	b, ok := e.Bound()
	if !ok {
		t.Fatal("no bound")
	}
	// Sample 0.95 quantile of 1..100 is the 95th value.
	if b != 95 {
		t.Errorf("bound = %g, want 95", b)
	}
	// The empirical baseline is less conservative than BMBP by
	// construction: same history, no confidence margin.
	bm := NewBMBP(0.95, 0.95, 1)
	for i := 1; i <= 100; i++ {
		bm.Observe(float64(i), false)
	}
	bb, _ := bm.Bound()
	if bb <= b {
		t.Errorf("BMBP bound %g should exceed empirical %g", bb, b)
	}
}
