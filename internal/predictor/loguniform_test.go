package predictor

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogUniformQuantileOnTrueLogUniform(t *testing.T) {
	// On genuinely log-uniform data the fitted quantile converges to the
	// true quantile: ln W ~ U[2, 8], q95 at exp(2 + 0.95*6).
	lu := NewLogUniform(LogUniformConfig{})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		lu.Observe(math.Exp(2+6*rng.Float64()), false)
	}
	lu.Refit()
	bound, ok := lu.Bound()
	if !ok {
		t.Fatal("no bound")
	}
	want := math.Exp(2 + 0.95*6)
	if math.Abs(math.Log(bound)-math.Log(want)) > 0.02 {
		t.Errorf("bound %g, want %g", bound, want)
	}
}

func TestLogUniformUndercoversOnLogNormal(t *testing.T) {
	// The paper's implicit point: on heavy-tailed (log-normal) waits the
	// log-uniform q95 is a point estimate with no confidence margin. Over
	// repeated prediction it cannot achieve the 95% coverage BMBP
	// guarantees: measure live coverage on the same stream for both.
	rng := rand.New(rand.NewSource(2))
	lu := NewLogUniform(LogUniformConfig{})
	bm := NewBMBP(0.95, 0.95, 1)
	scored, luOK, bmOK := 0, 0, 0
	for i := 0; i < 30000; i++ {
		w := math.Exp(4 + 2*rng.NormFloat64())
		lb, ok1 := lu.Bound()
		bb, ok2 := bm.Bound()
		if ok1 && ok2 && i > 500 {
			scored++
			if w <= lb {
				luOK++
			}
			if w <= bb {
				bmOK++
			}
		}
		lu.Observe(w, ok1 && w > lb)
		bm.Observe(w, ok2 && w > bb)
	}
	luFrac := float64(luOK) / float64(scored)
	bmFrac := float64(bmOK) / float64(scored)
	if bmFrac < 0.95 {
		t.Errorf("BMBP live coverage %.3f", bmFrac)
	}
	// The log-uniform's sample-extreme fit actually over-covers wildly on
	// log-normal data (the max keeps growing), making it uselessly
	// conservative rather than calibrated; either direction of
	// miscalibration is a failure against the 0.95 target.
	if math.Abs(luFrac-0.95) < math.Abs(bmFrac-0.95) {
		t.Errorf("log-uniform (%.3f) should be less calibrated than BMBP (%.3f)", luFrac, bmFrac)
	}
}

func TestLogUniformTrimVariant(t *testing.T) {
	lu := NewLogUniform(LogUniformConfig{Trim: true})
	if lu.Name() != "loguniform-trim" {
		t.Error("name")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		lu.Observe(math.Exp(2+rng.Float64()), false)
	}
	lu.FinishTraining()
	for i := 0; i < 30; i++ {
		lu.Observe(math.Exp(12+rng.Float64()), true)
	}
	if lu.Trims() == 0 {
		t.Fatal("no trim after a sustained regime change")
	}
	// Post-trim bound reflects the new regime's range.
	lu.Refit()
	b, _ := lu.Bound()
	if b < math.Exp(11) {
		t.Errorf("post-trim bound %g too low", b)
	}
	// Untrimmed variant keeps the old minimum, dragging its quantile down.
	nt := NewLogUniform(LogUniformConfig{})
	if nt.Name() != "loguniform" {
		t.Error("name")
	}
}

func TestLogUniformMinHistory(t *testing.T) {
	lu := NewLogUniform(LogUniformConfig{})
	for i := 0; i < 58; i++ {
		lu.Observe(10, false)
	}
	if _, ok := lu.Bound(); ok {
		t.Fatal("bound before minimum history")
	}
	lu.Observe(10, false)
	if b, ok := lu.Bound(); !ok || math.Abs(b-10) > 1e-9 {
		t.Fatalf("constant history bound = %g ok=%v", b, ok)
	}
}
