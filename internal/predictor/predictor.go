// Package predictor defines the prediction interface the evaluation
// simulator drives, and implements the paper's comparator methods: the
// parametric log-normal MLE predictor (Section 4.2), with and without
// BMBP's history-trimming scheme, plus two naive baselines used in
// ablation benchmarks. BMBP itself lives in internal/core and satisfies
// the same interface.
package predictor

import (
	"repro/internal/core"
)

// Predictor is a queue-delay bound predictor driven by the evaluation
// simulator (or a live deployment feeding it scheduler-log dumps).
//
// Observations arrive in the order waits become visible (job release
// order). missed reports whether the bound this predictor quoted for that
// job at submission turned out to be below the actual wait; predictors that
// adapt to change points use it to count consecutive misses.
type Predictor interface {
	// Name identifies the method in result tables.
	Name() string
	// Observe records a released job's wait.
	Observe(wait float64, missed bool)
	// FinishTraining is called once when the warm-up fraction of a trace
	// has been replayed, letting the method calibrate anything it derives
	// from the training period (BMBP's rare-event threshold).
	FinishTraining()
	// Refit recomputes the quoted bound from current history; the
	// simulator calls it on epoch boundaries.
	Refit()
	// Bound returns the current upper bound on the configured quantile.
	// ok is false while the history is too short to support the bound.
	Bound() (bound float64, ok bool)
}

// Interface conformance checks.
var (
	_ Predictor = (*core.BMBP)(nil)
	_ Predictor = (*LogNormal)(nil)
	_ Predictor = (*RunningMax)(nil)
	_ Predictor = (*Empirical)(nil)
)

// NewBMBP returns the paper's predictor configured for quantile q at
// confidence c.
func NewBMBP(q, c float64, seed int64) *core.BMBP {
	return core.New(core.Config{Quantile: q, Confidence: c, Seed: seed})
}

// Standard constructs the three methods the paper compares in Tables 3-7,
// in table column order: BMBP, log-normal without trimming, log-normal with
// trimming.
func Standard(q, c float64, seed int64) []Predictor {
	return []Predictor{
		NewBMBP(q, c, seed),
		NewLogNormal(LogNormalConfig{Quantile: q, Confidence: c, Trim: false}),
		NewLogNormal(LogNormalConfig{Quantile: q, Confidence: c, Trim: true}),
	}
}
