package predictor

import (
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// LogUniform implements the related-work baseline from Downey (paper
// references [5, 6]): model waits as log-uniform — ln W uniform on
// [lo, hi] — and predict the q quantile of the fitted distribution,
// exp(lo + q·(hi − lo)). Downey used the model for head-of-queue delay;
// the paper cites it as the principal prior attempt at quantitative queue
// prediction. Unlike BMBP it carries no confidence machinery (the natural
// endpoint estimators are the sample extremes), which is exactly the
// contrast the paper draws: a point estimate of a quantile versus a bound
// with a stated confidence.
type LogUniform struct {
	quantile   float64
	minHistory int

	hist []float64
	lo   float64
	hi   float64

	trim          bool
	rareTable     core.RareEventTable
	rareThreshold int
	consecMisses  int
	trims         int

	bound   float64
	boundOK bool
	stale   bool
}

// LogUniformConfig parameterizes the baseline.
type LogUniformConfig struct {
	// Quantile is the quantile to predict (default 0.95).
	Quantile float64
	// Confidence only sets the minimum-history threshold so the baseline
	// quotes bounds for the same jobs as BMBP (default 0.95).
	Confidence float64
	// Trim enables BMBP's history-trimming scheme.
	Trim bool
}

// NewLogUniform returns a log-uniform quantile predictor.
func NewLogUniform(cfg LogUniformConfig) *LogUniform {
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.95
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.95
	}
	return &LogUniform{
		quantile:   cfg.Quantile,
		minHistory: core.MinSampleSize(cfg.Quantile, cfg.Confidence),
		lo:         math.Inf(1),
		hi:         math.Inf(-1),
		trim:       cfg.Trim,
		rareTable:  core.DefaultRareEventTable,
		stale:      true,
	}
}

// Name identifies the method in result tables.
func (l *LogUniform) Name() string {
	if l.trim {
		return "loguniform-trim"
	}
	return "loguniform"
}

// Trims returns how many change points the predictor acted on.
func (l *LogUniform) Trims() int { return l.trims }

// Observe records a released job's wait.
func (l *LogUniform) Observe(wait float64, missed bool) {
	l.hist = append(l.hist, wait)
	lw := stats.SafeLog(wait)
	if lw < l.lo {
		l.lo = lw
	}
	if lw > l.hi {
		l.hi = lw
	}
	l.stale = true
	if !l.trim {
		return
	}
	if missed {
		l.consecMisses++
	} else {
		l.consecMisses = 0
	}
	if l.rareThreshold == 0 && len(l.hist) >= l.minHistory {
		l.rareThreshold = l.rareTable.Lookup(stats.Autocorrelation(l.hist, 1))
	}
	if l.rareThreshold > 0 && l.consecMisses >= l.rareThreshold {
		l.doTrim()
	}
}

func (l *LogUniform) doTrim() {
	if len(l.hist) <= l.minHistory {
		l.consecMisses = 0
		return
	}
	keep := l.hist[len(l.hist)-l.minHistory:]
	l.hist = append(make([]float64, 0, l.minHistory*2), keep...)
	l.lo, l.hi = math.Inf(1), math.Inf(-1)
	for _, w := range l.hist {
		lw := stats.SafeLog(w)
		if lw < l.lo {
			l.lo = lw
		}
		if lw > l.hi {
			l.hi = lw
		}
	}
	l.consecMisses = 0
	l.trims++
	l.stale = true
}

// FinishTraining calibrates the rare-event threshold (trimming variant).
func (l *LogUniform) FinishTraining() {
	if l.trim && len(l.hist) > 2 {
		l.rareThreshold = l.rareTable.Lookup(stats.Autocorrelation(l.hist, 1))
	}
}

// Refit recomputes the fitted quantile.
func (l *LogUniform) Refit() {
	if !l.stale {
		return
	}
	if len(l.hist) < l.minHistory {
		l.boundOK = false
		l.stale = false
		return
	}
	l.bound = math.Exp(l.lo + l.quantile*(l.hi-l.lo))
	l.boundOK = true
	l.stale = false
}

// Bound returns the fitted log-uniform quantile.
func (l *LogUniform) Bound() (float64, bool) {
	if l.stale {
		l.Refit()
	}
	return l.bound, l.boundOK
}

var _ Predictor = (*LogUniform)(nil)
