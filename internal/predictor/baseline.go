package predictor

import (
	"repro/internal/core"
	"repro/internal/ostat"
)

// RunningMax is the degenerate "astronomically conservative" baseline the
// paper's Section 5 discusses: it predicts the maximum wait ever observed.
// It is correct nearly always and nearly useless, which is what the
// accuracy (median-ratio) metric exists to expose.
type RunningMax struct {
	max   float64
	seen  int
	minOK int
}

// NewRunningMax returns a running-max baseline that starts quoting bounds
// after the same minimum history as BMBP at (q, c), so its correctness is
// scored over the same jobs.
func NewRunningMax(q, c float64) *RunningMax {
	return &RunningMax{minOK: core.MinSampleSize(q, c)}
}

// Name identifies the method in result tables.
func (r *RunningMax) Name() string { return "running-max" }

// Observe records a released job's wait.
func (r *RunningMax) Observe(wait float64, missed bool) {
	r.seen++
	if wait > r.max {
		r.max = wait
	}
}

// FinishTraining is a no-op.
func (r *RunningMax) FinishTraining() {}

// Refit is a no-op; the running max is always current.
func (r *RunningMax) Refit() {}

// Bound returns the maximum wait observed so far.
func (r *RunningMax) Bound() (float64, bool) {
	return r.max, r.seen >= r.minOK
}

// Empirical predicts the plain sample q quantile with no confidence
// margin. Comparing it with BMBP isolates the value of the binomial
// confidence machinery: the empirical quantile is correct only about q of
// the time on stationary data and degrades badly under nonstationarity.
type Empirical struct {
	q     float64
	set   *ostat.Multiset
	minOK int
	bound float64
	ok    bool
	stale bool
}

// NewEmpirical returns an empirical-quantile baseline for quantile q,
// quoting bounds after the same minimum history as BMBP at (q, c).
func NewEmpirical(q, c float64, seed int64) *Empirical {
	return &Empirical{
		q:     q,
		set:   ostat.New(seed + 17),
		minOK: core.MinSampleSize(q, c),
		stale: true,
	}
}

// Name identifies the method in result tables.
func (e *Empirical) Name() string { return "empirical" }

// Observe records a released job's wait.
func (e *Empirical) Observe(wait float64, missed bool) {
	e.set.Insert(wait)
	e.stale = true
}

// FinishTraining is a no-op.
func (e *Empirical) FinishTraining() {}

// Refit recomputes the sample quantile.
func (e *Empirical) Refit() {
	if !e.stale {
		return
	}
	n := e.set.Len()
	if n < e.minOK {
		e.ok = false
		e.stale = false
		return
	}
	k := int(float64(n)*e.q + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	e.bound, e.ok = e.set.Select(k)
	e.stale = false
}

// Bound returns the current sample quantile.
func (e *Empirical) Bound() (float64, bool) {
	if e.stale {
		e.Refit()
	}
	return e.bound, e.ok
}
