package predictor

import (
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// LogNormalConfig parameterizes the parametric comparator.
type LogNormalConfig struct {
	// Quantile is the population quantile to bound (default 0.95).
	Quantile float64
	// Confidence is the bound's confidence level (default 0.95).
	Confidence float64
	// Trim enables BMBP's history-trimming scheme (the paper's third
	// column); false reproduces the full-history variant.
	Trim bool
	// RareTable overrides the rare-event lookup used when Trim is set.
	RareTable core.RareEventTable
	// FixedRareThreshold, when positive, bypasses the autocorrelation
	// lookup (ablation).
	FixedRareThreshold int
}

func (c LogNormalConfig) withDefaults() LogNormalConfig {
	if c.Quantile == 0 {
		c.Quantile = 0.95
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.RareTable == nil {
		c.RareTable = core.DefaultRareEventTable
	}
	return c
}

// LogNormal implements the paper's Section 4.2 comparator: it assumes
// waits are log-normal, fits a normal to the log-waits by maximum
// likelihood, and produces a level-C upper confidence bound on the q
// quantile using the K' tolerance-factor machinery for normal populations
// (Guttman Table 4.6, computed from the noncentral t rather than looked
// up). With Trim set it additionally adopts BMBP's change-point detection
// and history truncation.
type LogNormal struct {
	cfg        LogNormalConfig
	minHistory int

	hist    []float64 // raw waits in observation order (trim + ACF need them)
	moments stats.RunningMoments

	rareThreshold int
	consecMisses  int
	trims         int

	// tolCache memoizes exact tolerance factors by sample size; beyond
	// the exact regime the Natrella approximation is O(1) and uncached.
	tolCache map[int]float64

	bound   float64
	boundOK bool
	stale   bool
}

// NewLogNormal returns a log-normal comparator predictor.
func NewLogNormal(cfg LogNormalConfig) *LogNormal {
	cfg = cfg.withDefaults()
	return &LogNormal{
		cfg: cfg,
		// Use the same minimum history as BMBP so the two methods quote
		// bounds for exactly the same jobs, keeping the comparison
		// apples-to-apples.
		minHistory: core.MinSampleSize(cfg.Quantile, cfg.Confidence),
		tolCache:   make(map[int]float64),
		stale:      true,
	}
}

// Name identifies the method in result tables.
func (l *LogNormal) Name() string {
	if l.cfg.Trim {
		return "logn-trim"
	}
	return "logn-notrim"
}

// Trims returns how many change points the predictor has acted on.
func (l *LogNormal) Trims() int { return l.trims }

// HistoryLen returns the current history length.
func (l *LogNormal) HistoryLen() int { return len(l.hist) }

// Observe records a released job's wait.
func (l *LogNormal) Observe(wait float64, missed bool) {
	l.hist = append(l.hist, wait)
	l.moments.Add(stats.SafeLog(wait))
	l.stale = true
	if !l.cfg.Trim {
		return
	}
	if missed {
		l.consecMisses++
	} else {
		l.consecMisses = 0
	}
	if l.rareThreshold == 0 && len(l.hist) >= l.minHistory {
		l.calibrate()
	}
	if l.rareThreshold > 0 && l.consecMisses >= l.rareThreshold {
		l.trim()
	}
}

// FinishTraining calibrates the rare-event threshold from the training
// history (no-op for the untrimmed variant).
func (l *LogNormal) FinishTraining() {
	if l.cfg.Trim {
		l.calibrate()
	}
}

func (l *LogNormal) calibrate() {
	if l.cfg.FixedRareThreshold > 0 {
		l.rareThreshold = l.cfg.FixedRareThreshold
		return
	}
	l.rareThreshold = l.cfg.RareTable.Lookup(stats.Autocorrelation(l.hist, 1))
}

func (l *LogNormal) trim() {
	if len(l.hist) <= l.minHistory {
		l.consecMisses = 0
		return
	}
	keep := l.hist[len(l.hist)-l.minHistory:]
	l.hist = append(make([]float64, 0, l.minHistory*2), keep...)
	l.moments.Reset()
	for _, w := range l.hist {
		l.moments.Add(stats.SafeLog(w))
	}
	l.consecMisses = 0
	l.trims++
	l.stale = true
}

// Refit recomputes the bound from the current MLE fit.
func (l *LogNormal) Refit() {
	if !l.stale {
		return
	}
	n := l.moments.N()
	if n < l.minHistory {
		l.boundOK = false
		l.stale = false
		return
	}
	mean := l.moments.Mean()
	sd := l.moments.StdDev()
	k := l.toleranceFactor(n)
	l.bound = math.Exp(mean + k*sd)
	l.boundOK = true
	l.stale = false
}

// Bound returns the current upper confidence bound.
func (l *LogNormal) Bound() (float64, bool) {
	if l.stale {
		l.Refit()
	}
	return l.bound, l.boundOK
}

// toleranceFactor returns the one-sided normal tolerance factor for sample
// size n, memoizing the exact small-sample computations.
func (l *LogNormal) toleranceFactor(n int) float64 {
	if k, ok := l.tolCache[n]; ok {
		return k
	}
	k := stats.ToleranceFactor(n, l.cfg.Quantile, l.cfg.Confidence)
	// Only the exact regime is worth caching; the approximation is O(1).
	if len(l.tolCache) < 1<<16 {
		l.tolCache[n] = k
	}
	return k
}
