package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("title", "a", "bb", "ccc")
	tbl.AddRow("1", "2", "3")
	tbl.AddRow("longer", "x", "y")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a ") || !strings.Contains(lines[1], "bb") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule = %q", lines[2])
	}
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Columns align: "2" starts where "bb" starts.
	if strings.Index(lines[3], "2") != strings.Index(lines[1], "bb") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestFracFormats(t *testing.T) {
	if got := Frac(0.97, 0.95); got != "0.97" {
		t.Errorf("Frac = %q", got)
	}
	if got := Frac(0.9349, 0.95); got != "0.93*" {
		t.Errorf("Frac failing = %q", got)
	}
	if got := FracOrDash(math.NaN(), 0.95); got != "-" {
		t.Errorf("FracOrDash NaN = %q", got)
	}
	if got := FracOrDash(0.96, 0.95); got != "0.96" {
		t.Errorf("FracOrDash = %q", got)
	}
}

func TestSciAndSeconds(t *testing.T) {
	if got := Sci(0.0455); got != "4.55e-02" {
		t.Errorf("Sci = %q", got)
	}
	if Sci(0) != "-" || Sci(math.NaN()) != "-" {
		t.Error("Sci degenerate")
	}
	if got := Seconds(159844.4); got != "159844" {
		t.Errorf("Seconds = %q", got)
	}
	if Seconds(math.NaN()) != "-" {
		t.Error("Seconds NaN")
	}
}

func TestRenderSeries(t *testing.T) {
	s1 := Series{Label: "a", Times: []int64{10, 20}, Values: []float64{1, 2}}
	s2 := Series{Label: "b", Times: []int64{10, 20}, Values: []float64{3, math.NaN()}}
	var sb strings.Builder
	if err := RenderSeries(&sb, "t", s1, s2); err != nil {
		t.Fatal(err)
	}
	want := "t\nunix_time,a,b\n10,1,3\n20,2,-\n"
	if sb.String() != want {
		t.Errorf("got %q, want %q", sb.String(), want)
	}
	// Empty input is a no-op.
	var sb2 strings.Builder
	if err := RenderSeries(&sb2, "t"); err != nil || sb2.Len() != 0 {
		t.Error("empty series")
	}
}

func TestSparkline(t *testing.T) {
	out := Sparkline([]float64{1, 10, 100, 1000})
	if len([]rune(out)) != 4 {
		t.Fatalf("len = %d", len([]rune(out)))
	}
	runes := []rune(out)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline = %q", out)
	}
	// Log scale: equal ratios get equal steps.
	if runes[1] == runes[0] || runes[2] == runes[1] {
		t.Errorf("log steps collapsed: %q", out)
	}
	// NaN and non-positive values render as spaces.
	out2 := Sparkline([]float64{math.NaN(), 5, -1})
	r2 := []rune(out2)
	if r2[0] != ' ' || r2[2] != ' ' {
		t.Errorf("degenerate cells: %q", out2)
	}
	// All-invalid input.
	if got := Sparkline([]float64{0, -1}); got != "  " {
		t.Errorf("all-invalid = %q", got)
	}
	// Constant series does not divide by zero.
	if got := Sparkline([]float64{7, 7, 7}); len([]rune(got)) != 3 {
		t.Errorf("constant = %q", got)
	}
}
