// Package report renders evaluation results as fixed-width text tables and
// simple time-series listings, matching the layout of the paper's tables so
// reproduced output can be compared against the published values at a
// glance.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows for fixed-width rendering.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Frac formats a correctness fraction the way the paper prints it: two
// decimals, with a trailing '*' marking failure to reach the target level.
func Frac(v, target float64) string {
	s := fmt.Sprintf("%.2f", v)
	if v < target {
		s += "*"
	}
	return s
}

// FracOrDash is Frac, with NaN rendered as the paper's "-" (cell dropped for
// insufficient jobs).
func FracOrDash(v, target float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return Frac(v, target)
}

// Sci formats a ratio in the paper's scientific notation (e.g. 4.55e-02).
func Sci(v float64) string {
	if math.IsNaN(v) || v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2e", v)
}

// Seconds formats a duration in seconds the way Table 8 prints quantile
// bounds: integral seconds.
func Seconds(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

// Series is a labeled time series (Figures 1 and 2).
type Series struct {
	Label  string
	Times  []int64
	Values []float64
}

// RenderSeries writes aligned columns: timestamp then one value column per
// series (values matched by index; series must be sampled on the same
// grid). Missing values (NaN) render as "-".
func RenderSeries(w io.Writer, title string, series ...Series) error {
	if len(series) == 0 {
		return nil
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	b.WriteString("unix_time")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Label)
	}
	b.WriteByte('\n')
	for i, ts := range series[0].Times {
		fmt.Fprintf(&b, "%d", ts)
		for _, s := range series {
			if i < len(s.Values) && !math.IsNaN(s.Values[i]) {
				fmt.Fprintf(&b, ",%.0f", s.Values[i])
			} else {
				b.WriteString(",-")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Sparkline renders values as a one-line unicode sparkline on a log scale,
// used to eyeball the Figure 1/2 series in terminal output.
func Sparkline(values []float64) string {
	const ticks = "▁▂▃▄▅▆▇█"
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || v <= 0 {
			continue
		}
		l := math.Log(v)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || v <= 0 {
			b.WriteByte(' ')
			continue
		}
		idx := int((math.Log(v) - lo) / span * 7)
		if idx > 7 {
			idx = 7
		}
		b.WriteRune([]rune(ticks)[idx])
	}
	return b.String()
}
