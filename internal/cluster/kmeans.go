// Package cluster implements deterministic k-means clustering over small
// feature vectors. The paper fixes its processor-count categories to the
// four ranges TACC's administrators suggested (Section 6.2); the authors'
// follow-up system (QBETS) instead learns job categories from the
// workload. This package provides that machinery: cluster the observed job
// shapes, then give each cluster its own predictor (see qbets.AutoService).
package cluster

import (
	"math"
	"math/rand"
)

// Result is a clustering of points into k centers.
type Result struct {
	// Centers holds the k cluster centroids.
	Centers [][]float64
	// Assign maps each input point to its center index.
	Assign []int
	// Inertia is the total squared distance of points to their centers.
	Inertia float64
}

// KMeans clusters points (each a feature vector of equal length) into k
// clusters with Lloyd's algorithm and k-means++ seeding. The run is
// deterministic in seed. k is clamped to the number of distinct points;
// the result may therefore have fewer than k centers.
func KMeans(points [][]float64, k int, seed int64, maxIter int) Result {
	if len(points) == 0 || k < 1 {
		return Result{}
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	distinct := countDistinct(points)
	if k > distinct {
		k = distinct
	}
	rng := rand.New(rand.NewSource(seed))
	centers := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			c := nearest(centers, p)
			if c != assign[i] {
				assign[i] = c
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		dims := len(points[0])
		sums := make([][]float64, len(centers))
		counts := make([]int, len(centers))
		for i := range sums {
			sums[i] = make([]float64, dims)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Empty cluster: re-seed it at the point farthest from its
				// center to keep k populated clusters.
				centers[c] = append([]float64(nil), farthestPoint(points, centers, assign)...)
				continue
			}
			for d := range centers[c] {
				centers[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	// Final assignment + inertia.
	inertia := 0.0
	for i, p := range points {
		assign[i] = nearest(centers, p)
		inertia += sqDist(centers[assign[i]], p)
	}
	return Result{Centers: centers, Assign: assign, Inertia: inertia}
}

// Nearest returns the index of the center closest to p.
func (r *Result) Nearest(p []float64) int {
	return nearest(r.Centers, p)
}

// Standardize rescales each feature dimension to zero mean and unit
// variance (constant dimensions are left centered only), returning the
// scaled copies along with the transform so new points can be mapped the
// same way.
func Standardize(points [][]float64) (scaled [][]float64, means, sds []float64) {
	if len(points) == 0 {
		return nil, nil, nil
	}
	dims := len(points[0])
	means = make([]float64, dims)
	sds = make([]float64, dims)
	for _, p := range points {
		for d, v := range p {
			means[d] += v
		}
	}
	for d := range means {
		means[d] /= float64(len(points))
	}
	for _, p := range points {
		for d, v := range p {
			dv := v - means[d]
			sds[d] += dv * dv
		}
	}
	for d := range sds {
		sds[d] = math.Sqrt(sds[d] / float64(len(points)))
		if sds[d] == 0 {
			sds[d] = 1
		}
	}
	scaled = make([][]float64, len(points))
	for i, p := range points {
		q := make([]float64, dims)
		for d, v := range p {
			q[d] = (v - means[d]) / sds[d]
		}
		scaled[i] = q
	}
	return scaled, means, sds
}

// Apply maps a raw point through a Standardize transform.
func Apply(p, means, sds []float64) []float64 {
	q := make([]float64, len(p))
	for d, v := range p {
		q[d] = (v - means[d]) / sds[d]
	}
	return q
}

// seedPlusPlus picks initial centers with the k-means++ rule: the first
// uniformly, each next with probability proportional to its squared
// distance from the nearest chosen center.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centers = append(centers, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centers) < k {
		total := 0.0
		for i, p := range points {
			d2[i] = sqDist(centers[len(centers)-1], p)
			if len(centers) > 1 {
				prev := sqDistToNearest(centers[:len(centers)-1], p)
				if prev < d2[i] {
					d2[i] = prev
				}
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with centers.
			break
		}
		u := rng.Float64() * total
		idx := 0
		for i, w := range d2 {
			u -= w
			if u <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), points[idx]...))
	}
	return centers
}

func nearest(centers [][]float64, p []float64) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range centers {
		if d := sqDist(c, p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func sqDistToNearest(centers [][]float64, p []float64) float64 {
	best := math.Inf(1)
	for _, c := range centers {
		if d := sqDist(c, p); d < best {
			best = d
		}
	}
	return best
}

func farthestPoint(points, centers [][]float64, assign []int) []float64 {
	best, bestD := points[0], -1.0
	for i, p := range points {
		if d := sqDist(centers[assign[i]], p); d > bestD {
			best, bestD = p, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func countDistinct(points [][]float64) int {
	seen := make(map[string]struct{}, len(points))
	buf := make([]byte, 0, 64)
	for _, p := range points {
		buf = buf[:0]
		for _, v := range p {
			bits := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				buf = append(buf, byte(bits>>s))
			}
		}
		seen[string(buf)] = struct{}{}
	}
	return len(seen)
}
