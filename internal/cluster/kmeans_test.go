package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func blobs(t *testing.T, seed int64) ([][]float64, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 5}}
	var points [][]float64
	var truth []int
	for c, ctr := range centers {
		for i := 0; i < 200; i++ {
			points = append(points, []float64{
				ctr[0] + rng.NormFloat64(),
				ctr[1] + rng.NormFloat64(),
			})
			truth = append(truth, c)
		}
	}
	return points, truth
}

func TestKMeansSeparatedBlobs(t *testing.T) {
	points, truth := blobs(t, 1)
	res := KMeans(points, 3, 7, 100)
	if len(res.Centers) != 3 {
		t.Fatalf("centers = %d", len(res.Centers))
	}
	// Every true blob maps to exactly one cluster label.
	label := map[int]int{}
	for i, a := range res.Assign {
		if prev, ok := label[truth[i]]; ok {
			if prev != a {
				t.Fatalf("blob %d split across clusters", truth[i])
			}
		} else {
			label[truth[i]] = a
		}
	}
	if len(label) != 3 {
		t.Fatalf("blobs merged: %v", label)
	}
	// Inertia should be about 2 per point (two unit-variance dims).
	perPoint := res.Inertia / float64(len(points))
	if perPoint > 3 {
		t.Errorf("inertia per point = %g", perPoint)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	points, _ := blobs(t, 2)
	a := KMeans(points, 3, 9, 100)
	b := KMeans(points, 3, 9, 100)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignments differ across identical runs")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("inertia differs")
	}
}

func TestKMeansDegenerateInputs(t *testing.T) {
	if r := KMeans(nil, 3, 1, 10); len(r.Centers) != 0 {
		t.Error("empty input")
	}
	// More clusters than distinct points: k collapses.
	pts := [][]float64{{1}, {1}, {1}, {2}}
	r := KMeans(pts, 5, 1, 50)
	if len(r.Centers) > 2 {
		t.Errorf("k not clamped: %d centers", len(r.Centers))
	}
	if r.Inertia > 1e-9 {
		t.Errorf("two distinct values should cluster exactly, inertia %g", r.Inertia)
	}
	// k=1 returns the centroid.
	one := KMeans([][]float64{{0}, {4}}, 1, 1, 50)
	if math.Abs(one.Centers[0][0]-2) > 1e-12 {
		t.Errorf("k=1 centroid = %v", one.Centers)
	}
}

func TestNearest(t *testing.T) {
	res := Result{Centers: [][]float64{{0}, {10}}}
	if res.Nearest([]float64{2}) != 0 || res.Nearest([]float64{8}) != 1 {
		t.Error("nearest lookup")
	}
}

func TestStandardize(t *testing.T) {
	pts := [][]float64{{0, 100}, {2, 100}, {4, 100}}
	scaled, means, sds := Standardize(pts)
	if means[0] != 2 || means[1] != 100 {
		t.Errorf("means = %v", means)
	}
	// Constant dimension gets sd 1 (centered only).
	if sds[1] != 1 {
		t.Errorf("constant-dim sd = %g", sds[1])
	}
	// Scaled first dimension has mean 0 and sd 1.
	var m, v float64
	for _, p := range scaled {
		m += p[0]
	}
	m /= 3
	for _, p := range scaled {
		v += (p[0] - m) * (p[0] - m)
	}
	v = math.Sqrt(v / 3)
	if math.Abs(m) > 1e-12 || math.Abs(v-1) > 1e-12 {
		t.Errorf("scaled mean %g sd %g", m, v)
	}
	// Apply maps consistently.
	q := Apply([]float64{2, 100}, means, sds)
	if q[0] != 0 || q[1] != 0 {
		t.Errorf("Apply = %v", q)
	}
	if s, _, _ := Standardize(nil); s != nil {
		t.Error("empty standardize")
	}
}
