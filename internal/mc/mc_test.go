package mc

import (
	"testing"

	"repro/internal/core"
)

func smallBuild(t *testing.T, phis []float64) []Point {
	t.Helper()
	return Build(Config{Phis: phis, Steps: 300_000, Seed: 1})
}

func TestIndependentSeriesThresholdIsThree(t *testing.T) {
	// Section 4.1's i.i.d. intuition: three consecutive exceedances of the
	// 0.95 quantile are a rare event (two in a row has probability 0.0025).
	pts := smallBuild(t, []float64{0})
	if pts[0].Threshold != 3 {
		t.Fatalf("iid threshold = %d, want 3", pts[0].Threshold)
	}
	// Exceedance probability itself is ~5%.
	if p := pts[0].RunProbs[0]; p < 0.045 || p > 0.055 {
		t.Errorf("P(exceed) = %g, want ~0.05", p)
	}
	// Two in a row ~0.0025.
	if p := pts[0].RunProbs[1]; p < 0.0015 || p > 0.0035 {
		t.Errorf("P(2-run) = %g, want ~0.0025", p)
	}
}

func TestThresholdsMonotoneInDependence(t *testing.T) {
	pts := smallBuild(t, []float64{0, 0.5, 0.9})
	for i := 1; i < len(pts); i++ {
		if pts[i].Threshold < pts[i-1].Threshold {
			t.Errorf("thresholds not monotone: %v -> %v", pts[i-1], pts[i])
		}
		if pts[i].RawACF <= pts[i-1].RawACF {
			t.Errorf("raw ACF not increasing: %g -> %g", pts[i-1].RawACF, pts[i].RawACF)
		}
	}
	if pts[2].Threshold <= pts[0].Threshold {
		t.Error("strong dependence should raise the threshold")
	}
}

func TestRunProbabilitiesDecreasing(t *testing.T) {
	pts := smallBuild(t, []float64{0.6})
	probs := pts[0].RunProbs
	for i := 1; i < 12; i++ {
		if probs[i] > probs[i-1] {
			t.Fatalf("run probabilities must decrease: %v", probs[:12])
		}
	}
}

func TestTableFromPoints(t *testing.T) {
	pts := []Point{
		{RawACF: 0.0, Threshold: 3},
		{RawACF: 0.2, Threshold: 4},
		{RawACF: 0.6, Threshold: 7},
	}
	tbl := TableFromPoints(pts)
	if len(tbl) != 3 {
		t.Fatalf("len = %d", len(tbl))
	}
	if tbl[0].MaxAutocorr != 0.1 || tbl[1].MaxAutocorr != 0.4 {
		t.Errorf("bucket edges: %+v", tbl)
	}
	if tbl[2].MaxAutocorr != 1.01 {
		t.Errorf("last bucket should be open-ended: %+v", tbl[2])
	}
	if tbl.Lookup(0.05) != 3 || tbl.Lookup(0.3) != 4 || tbl.Lookup(0.99) != 7 {
		t.Error("lookup through generated table")
	}
}

func TestDefaultTableMatchesMonteCarlo(t *testing.T) {
	// The shipped core.DefaultRareEventTable was produced by this builder
	// (seed 1, 2e6 steps). A smaller rerun must reproduce each bucket's
	// threshold within ±1 and the overall range.
	if testing.Short() {
		t.Skip("short mode")
	}
	pts := Build(Config{Steps: 500_000, Seed: 3})
	for _, p := range pts {
		want := core.DefaultRareEventTable.Lookup(p.RawACF)
		diff := p.Threshold - want
		if diff < -2 || diff > 2 {
			t.Errorf("phi=%.2f acf=%.3f: threshold %d, shipped table %d", p.Phi, p.RawACF, p.Threshold, want)
		}
	}
	if pts[0].Threshold != 3 {
		t.Errorf("iid anchor = %d", pts[0].Threshold)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(Config{Phis: []float64{0.3}, Steps: 100_000, Seed: 5})
	b := Build(Config{Phis: []float64{0.3}, Steps: 100_000, Seed: 5})
	if a[0].RawACF != b[0].RawACF || a[0].Threshold != b[0].Threshold {
		t.Fatal("Build not deterministic for a fixed seed")
	}
}
