// Package mc implements the Monte Carlo simulation the paper uses to
// calibrate BMBP's nonstationarity detector (Section 4.1): for log-normal
// series with varying first autocorrelation, it measures how improbable a
// run of consecutive above-0.95-quantile observations is, and derives the
// run length that constitutes a "rare event" at each autocorrelation level.
//
// The resulting table is shipped precomputed as core.DefaultRareEventTable;
// this package exists so the table can be regenerated and so tests can
// verify the shipped values.
package mc

import (
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Config parameterizes the rare-event table build.
type Config struct {
	// Phis are the log-space AR(1) coefficients to simulate. Empty uses
	// DefaultPhis.
	Phis []float64
	// Sigma is the log-space standard deviation of the simulated series
	// (the paper notes queue waits are heavy-tailed; 2.0 in log space is
	// typical of the Table 1 traces). Zero uses 2.0.
	Sigma float64
	// Quantile is the exceedance quantile (zero uses 0.95).
	Quantile float64
	// Cutoff is the probability below which a run is deemed a rare event.
	// Zero uses 0.002, which reproduces the paper's i.i.d. intuition that
	// three consecutive misses of a 0.95 bound are near-certain evidence
	// of a change point (two in a row has probability 2.5e-3).
	Cutoff float64
	// Steps is the simulated series length per phi (zero uses 2e6).
	Steps int
	// MaxRun bounds the search (zero uses 64).
	MaxRun int
	// Seed seeds the simulation PRNG.
	Seed int64
}

// DefaultPhis spans independence to very strong log-space dependence.
var DefaultPhis = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}

func (c Config) withDefaults() Config {
	if len(c.Phis) == 0 {
		c.Phis = DefaultPhis
	}
	if c.Sigma == 0 {
		c.Sigma = 2.0
	}
	if c.Quantile == 0 {
		c.Quantile = 0.95
	}
	if c.Cutoff == 0 {
		c.Cutoff = 0.002
	}
	if c.Steps == 0 {
		c.Steps = 2_000_000
	}
	if c.MaxRun == 0 {
		c.MaxRun = 64
	}
	return c
}

// Point is one simulated (autocorrelation, threshold) calibration point.
type Point struct {
	Phi       float64 // log-space AR(1) coefficient simulated
	RawACF    float64 // measured lag-1 autocorrelation of the raw series
	Threshold int     // rare-event run length at this dependence level
	RunProbs  []float64
}

// Build runs the Monte Carlo and returns one calibration point per phi,
// ordered as given. The phis fan out over the shared bounded worker pool;
// each index derives its own PRNG from the seed, so results are
// deterministic regardless of scheduling.
func Build(cfg Config) []Point {
	cfg = cfg.withDefaults()
	points := make([]Point, len(cfg.Phis))
	parallel.ForEachIndex(len(cfg.Phis), func(i int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1_000_003))
		points[i] = simulate(cfg, cfg.Phis[i], rng)
	})
	return points
}

func simulate(cfg Config, phi float64, rng *rand.Rand) Point {
	proc := stats.AR1LogNormal{Phi: phi, Mu: 0, Sigma: cfg.Sigma}
	series := proc.Generate(rng, make([]float64, 0, cfg.Steps), cfg.Steps)
	threshold := proc.Quantile(cfg.Quantile)

	// exceed[t] marks observations above the marginal quantile. Runs of
	// exceedances are what consecutive missed BMBP predictions look like
	// for a stationary series.
	runProbs := runStartProbabilities(series, threshold, cfg.MaxRun)
	rare := cfg.MaxRun
	for r := 1; r <= cfg.MaxRun; r++ {
		if runProbs[r-1] < cfg.Cutoff {
			rare = r
			break
		}
	}
	return Point{
		Phi:       phi,
		RawACF:    robustACF(series),
		Threshold: rare,
		RunProbs:  runProbs,
	}
}

// robustACF estimates the lag-1 autocorrelation as the median over
// sub-series. A heavy-tailed series' single-shot ACF is dominated by its
// few largest values and wobbles wildly between runs; the median of eight
// window estimates is stable enough to key a lookup table on.
func robustACF(series []float64) float64 {
	const windows = 8
	n := len(series)
	if n < windows*16 {
		return stats.Autocorrelation(series, 1)
	}
	estimates := make([]float64, 0, windows)
	size := n / windows
	for w := 0; w < windows; w++ {
		estimates = append(estimates, stats.Autocorrelation(series[w*size:(w+1)*size], 1))
	}
	return stats.Median(estimates)
}

// runStartProbabilities returns, for r = 1..maxRun, the probability that a
// randomly chosen position starts a run of at least r consecutive
// observations above threshold.
func runStartProbabilities(series []float64, threshold float64, maxRun int) []float64 {
	counts := make([]int, maxRun)
	run := 0
	for _, x := range series {
		if x > threshold {
			run++
			if run > maxRun {
				run = maxRun
			}
			// A run of current length `run` contributes one new start for
			// each suffix length 1..run ending here: position t ends runs
			// of length 1..run that started at t-run+1..t. Equivalent and
			// simpler: each position with k consecutive exceedances ending
			// at it is the end of exactly one run of each length <= k, so
			// count run-length occurrences by the ending position.
			for r := 1; r <= run; r++ {
				counts[r-1]++
			}
		} else {
			run = 0
		}
	}
	probs := make([]float64, maxRun)
	n := float64(len(series))
	for i, c := range counts {
		probs[i] = float64(c) / n
	}
	return probs
}

// TableFromPoints converts calibration points into a lookup table keyed by
// measured raw autocorrelation. Points are ordered by measured ACF first
// (simulation noise can reorder adjacent phis); bucket edges are midpoints
// between adjacent measured autocorrelations, with the final bucket
// open-ended.
func TableFromPoints(points []Point) core.RareEventTable {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RawACF < sorted[j].RawACF })
	table := make(core.RareEventTable, 0, len(sorted))
	for i, p := range sorted {
		edge := 1.01
		if i+1 < len(sorted) {
			edge = (p.RawACF + sorted[i+1].RawACF) / 2
		}
		thr := p.Threshold
		// Keep thresholds monotone in ACF even under residual noise.
		if i > 0 && thr < table[i-1].Threshold {
			thr = table[i-1].Threshold
		}
		table = append(table, core.RareEventEntry{MaxAutocorr: edge, Threshold: thr})
	}
	return table
}
