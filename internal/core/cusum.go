package core

import "math"

// CUSUM change detection — an alternative to the paper's rare-event
// run-length rule, provided for ablation. The paper detects a change point
// when a run of consecutive missed predictions reaches a threshold
// calibrated to the series' autocorrelation; a Bernoulli CUSUM instead
// accumulates log-likelihood-ratio evidence across ALL recent outcomes, so
// it also catches sustained-but-interleaved degradation (miss rates of,
// say, 20% that never produce long runs).
//
// For a bound with nominal miss probability p0 = 1 − q tested against a
// degraded rate p1 > p0, each outcome updates
//
//	S ← max(0, S + w),  w = ln(p1/p0)            on a miss
//	                    w = ln((1−p1)/(1−p0))    on a hit
//
// and a change is signaled when S exceeds the decision interval H. The
// classic run rule is the special case where hits reset S to zero
// entirely.

// CUSUMDetector accumulates evidence that a bound's miss rate has risen
// above its design level.
type CUSUMDetector struct {
	missWeight float64
	hitWeight  float64
	h          float64
	s          float64
}

// NewCUSUMDetector builds a detector for a bound on quantile q (nominal
// miss rate 1−q), tuned to flag a degradation to miss rate p1 with
// decision interval h (in units of log-likelihood; 3–6 are typical —
// larger means fewer false alarms and slower detection).
func NewCUSUMDetector(q, p1, h float64) *CUSUMDetector {
	p0 := 1 - q
	if p0 <= 0 || p0 >= 1 || p1 <= p0 || p1 >= 1 {
		// Degenerate tuning: fall back to a detector that never fires.
		return &CUSUMDetector{h: math.Inf(1)}
	}
	return &CUSUMDetector{
		missWeight: math.Log(p1 / p0),
		hitWeight:  math.Log((1 - p1) / (1 - p0)),
		h:          h,
	}
}

// Observe folds in one prediction outcome and reports whether the
// accumulated evidence crosses the decision interval. On a signal the
// detector resets.
func (c *CUSUMDetector) Observe(missed bool) (signal bool) {
	w := c.hitWeight
	if missed {
		w = c.missWeight
	}
	c.s += w
	if c.s < 0 {
		c.s = 0
	}
	if c.s >= c.h {
		c.s = 0
		return true
	}
	return false
}

// Level returns the current accumulated evidence (0 when quiescent).
func (c *CUSUMDetector) Level() float64 { return c.s }

// Reset clears accumulated evidence.
func (c *CUSUMDetector) Reset() { c.s = 0 }

// NewWithCUSUM returns a BMBP variant whose change-point detector is a
// Bernoulli CUSUM instead of the paper's consecutive-miss rule. All other
// behavior (trim-to-minimum on signal, bound computation) is unchanged.
// p1 and h tune the detector as in NewCUSUMDetector.
func NewWithCUSUM(cfg Config, p1, h float64) *BMBPCUSUM {
	cfg = cfg.withDefaults()
	inner := New(cfg)
	// Disable the inner run-length rule; the CUSUM owns detection.
	inner.cfg.NoTrim = true
	return &BMBPCUSUM{
		inner:    inner,
		detector: NewCUSUMDetector(cfg.Quantile, p1, h),
	}
}

// BMBPCUSUM wraps BMBP with CUSUM-driven trimming.
type BMBPCUSUM struct {
	inner    *BMBP
	detector *CUSUMDetector
	trims    int
}

// Name identifies the variant in result tables.
func (b *BMBPCUSUM) Name() string { return "bmbp-cusum" }

// Observe records a released job's wait and runs the detector.
func (b *BMBPCUSUM) Observe(wait float64, missed bool) {
	b.inner.Observe(wait, missed)
	if b.detector.Observe(missed) && b.inner.HistoryLen() > b.inner.MinHistory() {
		b.trimToMinimum()
	}
}

func (b *BMBPCUSUM) trimToMinimum() {
	hist := b.inner.History()
	keep := hist[len(hist)-b.inner.MinHistory():]
	fresh := New(b.inner.cfg)
	for _, v := range keep {
		fresh.Observe(v, false)
	}
	b.inner = fresh
	b.trims++
}

// FinishTraining is a no-op: the CUSUM needs no calibration period.
func (b *BMBPCUSUM) FinishTraining() {}

// Refit recomputes the current bound.
func (b *BMBPCUSUM) Refit() { b.inner.Refit() }

// Bound returns the current upper confidence bound.
func (b *BMBPCUSUM) Bound() (float64, bool) { return b.inner.Bound() }

// Trims returns how many change points the detector acted on.
func (b *BMBPCUSUM) Trims() int { return b.trims }
