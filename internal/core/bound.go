// Package core implements BMBP, the Brevik Method Batch Predictor: a
// nonparametric, distribution-free method for predicting bounds, with
// quantitative confidence levels, on the queuing delay an individual job
// will experience in a space-shared (batch scheduled) computing system.
//
// The method treats each historical wait time as a Bernoulli trial relative
// to the unknown population quantile X_q: an observation is below X_q with
// probability q. With n observations, the probability that the k-th order
// statistic exceeds X_q is the binomial tail probability
// P(Bin(n, q) <= k-1); choosing the smallest k that pushes that probability
// to at least the desired confidence C makes the k-th smallest observed wait
// a level-C upper confidence bound on X_q. Because batch systems are
// nonstationary — administrators retune schedulers, priorities shift — BMBP
// watches for runs of consecutive missed predictions (a "rare event" whose
// length threshold is calibrated to the history's autocorrelation) and, on
// detecting one, trims its history to the minimum statistically meaningful
// length and starts over.
package core

import (
	"math"

	"repro/internal/stats"
)

// BoundMode selects how the order-statistic index for a bound is computed.
type BoundMode int

const (
	// ModeAuto uses the exact binomial computation for small samples and
	// the central-limit normal approximation once the expected numbers of
	// successes and failures both reach 10 (the paper's rule).
	ModeAuto BoundMode = iota
	// ModeExact always uses the exact binomial computation.
	ModeExact
	// ModeApprox always uses the normal approximation (falling back to
	// exact only when the approximate index exceeds the sample size).
	ModeApprox
)

func (m BoundMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeExact:
		return "exact"
	case ModeApprox:
		return "approx"
	default:
		return "unknown"
	}
}

// MinSampleSize returns the smallest history length from which a level-c
// upper confidence bound on the q quantile can be produced at all: the
// smallest n with 1 − q^n >= c. For q = c = 0.95 this is 59, the figure the
// paper trims to after a change point.
func MinSampleSize(q, c float64) int {
	if q <= 0 || q >= 1 || c <= 0 || c >= 1 {
		return 0
	}
	n := int(math.Ceil(math.Log(1-c) / math.Log(q)))
	if n < 1 {
		n = 1
	}
	// Guard against floating-point edge cases by verifying directly.
	for 1-math.Pow(q, float64(n)) < c {
		n++
	}
	for n > 1 && 1-math.Pow(q, float64(n-1)) >= c {
		n--
	}
	return n
}

// MinSampleSizeLower is the analogue of MinSampleSize for lower bounds: the
// smallest n with 1 − (1−q)^n >= c, i.e. the smallest history from which a
// level-c lower confidence bound on the q quantile exists.
func MinSampleSizeLower(q, c float64) int {
	return MinSampleSize(1-q, c)
}

// UpperBoundIndex returns the 1-based order-statistic index k such that the
// k-th smallest of n i.i.d. observations is a level-c upper confidence bound
// for the q quantile, following mode. ok is false when no such index exists
// (n below MinSampleSize).
func UpperBoundIndex(n int, q, c float64, mode BoundMode) (k int, ok bool) {
	if n < minSampleSizeCached(q, c) {
		return 0, false
	}
	switch mode {
	case ModeExact:
		return upperIndexExact(n, q, c), true
	case ModeApprox:
		k = upperIndexApprox(n, q, c)
		if k > n {
			k = upperIndexExact(n, q, c)
		}
		return k, true
	default:
		if (stats.Binomial{N: n, P: q}).NormalApproxOK() {
			k = upperIndexApprox(n, q, c)
			if k > n {
				k = upperIndexExact(n, q, c)
			}
			return k, true
		}
		return upperIndexExact(n, q, c), true
	}
}

// upperIndexExact finds the smallest k in [1, n] with
// P(Bin(n, q) <= k−1) >= c by binary search (the CDF is nondecreasing in k).
// The caller guarantees such k exists.
func upperIndexExact(n int, q, c float64) int {
	b := stats.Binomial{N: n, P: q}
	lo, hi := 1, n
	for lo < hi {
		mid := (lo + hi) / 2
		if b.CDF(mid-1) >= c {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// upperIndexApprox computes the paper's Appendix approximation: take the q
// quantile of the sample and move up a further z_c·sqrt(n·q·(1−q)) order
// statistics, rounding everything up to stay conservative.
func upperIndexApprox(n int, q, c float64) int {
	z := stdNormalQuantileCached(c)
	k := int(math.Ceil(float64(n)*q + z*math.Sqrt(float64(n)*q*(1-q))))
	if k < 1 {
		k = 1
	}
	return k
}

// LowerBoundIndex returns the 1-based order-statistic index k such that the
// k-th smallest of n observations is a level-c lower confidence bound for
// the q quantile. ok is false when no such index exists.
func LowerBoundIndex(n int, q, c float64, mode BoundMode) (k int, ok bool) {
	if n < minSampleSizeLowerCached(q, c) {
		return 0, false
	}
	switch mode {
	case ModeExact:
		return lowerIndexExact(n, q, c), true
	case ModeApprox:
		k = lowerIndexApprox(n, q, c)
		if k < 1 {
			k = lowerIndexExact(n, q, c)
		}
		return k, true
	default:
		if (stats.Binomial{N: n, P: q}).NormalApproxOK() {
			k = lowerIndexApprox(n, q, c)
			if k < 1 {
				k = lowerIndexExact(n, q, c)
			}
			return k, true
		}
		return lowerIndexExact(n, q, c), true
	}
}

// lowerIndexExact finds the largest k in [1, n] with
// P(Bin(n, q) >= k) >= c, i.e. P(Bin(n,q) <= k−1) <= 1−c. The caller
// guarantees k = 1 qualifies.
func lowerIndexExact(n int, q, c float64) int {
	b := stats.Binomial{N: n, P: q}
	lo, hi := 1, n
	// b.CDF(k-1) is nondecreasing in k; we need the largest k with
	// CDF(k-1) <= 1-c.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if b.CDF(mid-1) <= 1-c {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// lowerIndexApprox mirrors upperIndexApprox in the downward direction,
// rounding down to stay conservative.
func lowerIndexApprox(n int, q, c float64) int {
	z := stdNormalQuantileCached(c)
	k := int(math.Floor(float64(n)*q - z*math.Sqrt(float64(n)*q*(1-q))))
	if k > n {
		k = n
	}
	return k
}

// UpperBound returns the level-c upper confidence bound for the q quantile
// from a sorted (ascending) sample, or ok=false when the sample is too
// small.
func UpperBound(sorted []float64, q, c float64, mode BoundMode) (bound float64, ok bool) {
	k, ok := UpperBoundIndex(len(sorted), q, c, mode)
	if !ok {
		return 0, false
	}
	return sorted[k-1], true
}

// LowerBound returns the level-c lower confidence bound for the q quantile
// from a sorted (ascending) sample, or ok=false when the sample is too
// small.
func LowerBound(sorted []float64, q, c float64, mode BoundMode) (bound float64, ok bool) {
	k, ok := LowerBoundIndex(len(sorted), q, c, mode)
	if !ok {
		return 0, false
	}
	return sorted[k-1], true
}
