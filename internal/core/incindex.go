package core

import (
	"math"
	"sync"

	"repro/internal/stats"
)

// This file holds the O(1) refit machinery: memoized per-(q, C) constants
// and an incremental maintainer for the upper bound-index k(n).
//
// The incremental invariant. Let F_n be the CDF of Bin(n, q) and
// k(n) = min{k : F_n(k−1) >= C} the exact upper bound index. Conditioning
// on the (n+1)-th trial gives the recurrence
//
//	F_{n+1}(k) = q·F_n(k−1) + (1−q)·F_n(k).
//
// The right side is a convex combination of values that bracket F_n(k),
// so F_n(k−1) <= F_{n+1}(k) <= F_n(k). Taking k = k(n)−2 gives
// F_{n+1}(k(n)−2) <= F_n(k(n)−2) < C (minimality of k(n)), so k(n+1) >=
// k(n); taking k = k(n) gives F_{n+1}(k(n)) >= F_n(k(n)−1) >= C, so
// k(n+1) <= k(n)+1. Therefore
//
//	k(n+1) − k(n) ∈ {0, 1},
//
// and a single CDF evaluation — F_{n+1}(k(n)−1) >= C ? — decides which.

// pairKey keys the per-(q, C) memo tables.
type pairKey struct{ q, c float64 }

var (
	minSampleMemo      sync.Map // pairKey -> int
	minSampleLowerMemo sync.Map // pairKey -> int
	zQuantileMemo      sync.Map // float64 -> float64
)

// minSampleSizeCached memoizes MinSampleSize per (q, c). The computation
// runs a Pow-loop verification, which is far too heavy to repeat on every
// bound-index query.
func minSampleSizeCached(q, c float64) int {
	key := pairKey{q, c}
	if v, ok := minSampleMemo.Load(key); ok {
		return v.(int)
	}
	n := MinSampleSize(q, c)
	minSampleMemo.Store(key, n)
	return n
}

// minSampleSizeLowerCached memoizes MinSampleSizeLower per (q, c).
func minSampleSizeLowerCached(q, c float64) int {
	key := pairKey{q, c}
	if v, ok := minSampleLowerMemo.Load(key); ok {
		return v.(int)
	}
	n := MinSampleSizeLower(q, c)
	minSampleLowerMemo.Store(key, n)
	return n
}

// stdNormalQuantileCached memoizes stats.StdNormalQuantile per confidence
// level. Predictors query the same handful of levels millions of times.
func stdNormalQuantileCached(c float64) float64 {
	if v, ok := zQuantileMemo.Load(c); ok {
		return v.(float64)
	}
	z := stats.StdNormalQuantile(c)
	zQuantileMemo.Store(c, z)
	return z
}

// IncrementalIndex maintains the upper bound-index k(n) for a history that
// mostly grows one observation at a time. For a +1 step in the exact
// region it performs at most one binomial-CDF evaluation (versus a fresh
// MinSampleSize check plus an O(log n) CDF binary search); in the normal
// approximation region the index is a closed form with a memoized normal
// quantile. Any other change of n (trim, window, deserialization) falls
// back to a full recomputation and re-primes the cache.
//
// Index(n) returns exactly what UpperBoundIndex(n, q, c, mode) returns for
// every n — the differential test in incindex_test.go asserts this for all
// n up to 200k across a (q, C) grid.
//
// An IncrementalIndex is not safe for concurrent use.
type IncrementalIndex struct {
	q, c float64
	mode BoundMode
	minN int
	z    float64

	// Cached exact-path state: k = upperIndexExact(n, q, c), valid when
	// primed. The approximation path never touches it.
	primed bool
	n      int
	k      int
}

// NewIncrementalIndex returns an index maintainer for the given quantile,
// confidence, and bound mode.
func NewIncrementalIndex(q, c float64, mode BoundMode) *IncrementalIndex {
	return &IncrementalIndex{
		q:    q,
		c:    c,
		mode: mode,
		minN: minSampleSizeCached(q, c),
		z:    stdNormalQuantileCached(c),
	}
}

// MinHistory returns the smallest n for which Index reports ok.
func (x *IncrementalIndex) MinHistory() int { return x.minN }

// Index returns the 1-based upper bound-index for a history of length n,
// equal to UpperBoundIndex(n, x.q, x.c, x.mode). ok is false when n is
// below the minimum sample size.
func (x *IncrementalIndex) Index(n int) (k int, ok bool) {
	if n < x.minN {
		return 0, false
	}
	approx := false
	switch x.mode {
	case ModeApprox:
		approx = true
	case ModeAuto:
		nf := float64(n)
		approx = nf*x.q >= 10 && nf*(1-x.q) >= 10
	}
	if approx {
		k = int(math.Ceil(float64(n)*x.q + x.z*math.Sqrt(float64(n)*x.q*(1-x.q))))
		if k < 1 {
			k = 1
		}
		if k > n {
			// Same fallback as UpperBoundIndex: the approximation can
			// overshoot the sample only near the minimum history.
			k = x.exactAt(n)
		}
		return k, true
	}
	return x.exactAt(n), true
}

// exactAt returns upperIndexExact(n, x.q, x.c), stepping the cached index
// with one CDF evaluation when n advanced by exactly one.
func (x *IncrementalIndex) exactAt(n int) int {
	switch {
	case x.primed && n == x.n:
		return x.k
	case x.primed && n == x.n+1:
		// k(n+1) ∈ {k(n), k(n)+1}; one evaluation decides.
		if (stats.Binomial{N: n, P: x.q}).CDF(x.k-1) < x.c {
			x.k++
		}
	default:
		x.k = upperIndexExact(n, x.q, x.c)
		x.primed = true
	}
	x.n = n
	return x.k
}

// Invalidate discards the cached state so the next Index call recomputes
// from scratch. Callers use it after bulk history replacement.
func (x *IncrementalIndex) Invalidate() { x.primed = false }
