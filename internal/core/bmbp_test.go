package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestBMBPDefaults(t *testing.T) {
	b := New(Config{})
	cfg := b.Config()
	if cfg.Quantile != 0.95 || cfg.Confidence != 0.95 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if b.MinHistory() != 59 {
		t.Fatalf("MinHistory = %d", b.MinHistory())
	}
	if b.Name() != "bmbp" {
		t.Fatal("name")
	}
}

func TestBMBPNoBoundBeforeMinHistory(t *testing.T) {
	b := New(Config{})
	for i := 0; i < 58; i++ {
		b.Observe(float64(i), false)
		if _, ok := b.Bound(); ok {
			t.Fatalf("bound available at %d observations", i+1)
		}
	}
	b.Observe(58, false)
	bound, ok := b.Bound()
	if !ok {
		t.Fatal("bound unavailable at 59 observations")
	}
	// With exactly 59 observations the bound is the maximum (k = 59).
	if bound != 58 {
		t.Fatalf("bound = %g, want max observation 58", bound)
	}
}

func TestBMBPBoundIsOrderStatistic(t *testing.T) {
	b := New(Config{Mode: ModeExact})
	rng := rand.New(rand.NewSource(4))
	var hist []float64
	for i := 0; i < 500; i++ {
		v := math.Exp(rng.NormFloat64())
		b.Observe(v, false)
		hist = append(hist, v)
	}
	bound, ok := b.Bound()
	if !ok {
		t.Fatal("no bound")
	}
	// Cross-check against the pure-function path on the same history.
	sorted := append([]float64(nil), hist...)
	sortFloats(sorted)
	want, _ := UpperBound(sorted, 0.95, 0.95, ModeExact)
	if bound != want {
		t.Fatalf("bound %g != pure computation %g", bound, want)
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestBMBPTrimOnConsecutiveMisses(t *testing.T) {
	b := New(Config{FixedRareThreshold: 3})
	for i := 0; i < 200; i++ {
		b.Observe(1, false)
	}
	if b.Trims() != 0 {
		t.Fatal("unexpected trim")
	}
	// A change point: three consecutive misses trigger a trim to 59.
	b.Observe(100, true)
	b.Observe(100, true)
	if b.Trims() != 0 {
		t.Fatal("trimmed too early")
	}
	b.Observe(100, true)
	if b.Trims() != 1 {
		t.Fatalf("Trims = %d, want 1", b.Trims())
	}
	if got := b.HistoryLen(); got != 59 {
		t.Fatalf("history after trim = %d, want 59", got)
	}
	// The trimmed history ends with the three new-regime values.
	h := b.History()
	if h[len(h)-1] != 100 || h[len(h)-2] != 100 || h[len(h)-3] != 100 {
		t.Fatal("trim did not keep the most recent values")
	}
	// Bound reflects the post-trim window maximum.
	if bound, ok := b.Bound(); !ok || bound != 100 {
		t.Fatalf("post-trim bound = %g ok=%v", bound, ok)
	}
}

func TestBMBPMissRunResetByHit(t *testing.T) {
	b := New(Config{FixedRareThreshold: 3})
	for i := 0; i < 100; i++ {
		b.Observe(1, false)
	}
	b.Observe(50, true)
	b.Observe(50, true)
	b.Observe(1, false) // run broken
	b.Observe(50, true)
	b.Observe(50, true)
	if b.Trims() != 0 {
		t.Fatal("interrupted miss runs must not trim")
	}
}

func TestBMBPNoTrimConfig(t *testing.T) {
	b := New(Config{NoTrim: true, FixedRareThreshold: 3})
	for i := 0; i < 100; i++ {
		b.Observe(1, false)
	}
	for i := 0; i < 10; i++ {
		b.Observe(100, true)
	}
	if b.Trims() != 0 {
		t.Fatal("NoTrim predictor trimmed")
	}
	if b.HistoryLen() != 110 {
		t.Fatalf("history = %d", b.HistoryLen())
	}
}

func TestBMBPMaxHistory(t *testing.T) {
	b := New(Config{MaxHistory: 100, NoTrim: true})
	for i := 0; i < 250; i++ {
		b.Observe(float64(i), false)
	}
	if got := b.HistoryLen(); got != 100 {
		t.Fatalf("history = %d, want 100", got)
	}
	h := b.History()
	if h[0] != 150 || h[99] != 249 {
		t.Fatalf("wrong window retained: first=%g last=%g", h[0], h[99])
	}
}

func TestBMBPCalibrationFromACF(t *testing.T) {
	// Uncorrelated history lands in the lowest rare-event bucket.
	b := New(Config{})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		b.Observe(rng.Float64(), false)
	}
	b.FinishTraining()
	if got := b.RareThreshold(); got != DefaultRareEventTable[0].Threshold {
		t.Errorf("iid threshold = %d, want %d", got, DefaultRareEventTable[0].Threshold)
	}
	// Strongly autocorrelated history lands in a higher bucket.
	b2 := New(Config{})
	x := 0.0
	for i := 0; i < 2000; i++ {
		x = 0.98*x + 0.2*rng.NormFloat64()
		b2.Observe(x+10, false)
	}
	b2.FinishTraining()
	if b2.RareThreshold() <= b.RareThreshold() {
		t.Errorf("autocorrelated threshold %d should exceed iid %d", b2.RareThreshold(), b.RareThreshold())
	}
}

func TestBMBPObserveAuto(t *testing.T) {
	b := New(Config{FixedRareThreshold: 3})
	for i := 0; i < 100; i++ {
		b.ObserveAuto(1)
	}
	// Jumps beyond the current (adapting) bound count as misses
	// automatically; the values grow so each one outruns the bound.
	b.ObserveAuto(100)
	b.ObserveAuto(200)
	b.ObserveAuto(300)
	if b.Trims() != 1 {
		t.Fatalf("ObserveAuto did not feed the miss run: trims = %d", b.Trims())
	}
}

func TestBMBPBoundFor(t *testing.T) {
	b := New(Config{})
	for i := 1; i <= 1000; i++ {
		b.Observe(float64(i), false)
	}
	up95, ok := b.BoundFor(0.95, 0.95, Upper)
	if !ok {
		t.Fatal("upper bound unavailable")
	}
	lo25, ok := b.BoundFor(0.25, 0.95, Lower)
	if !ok {
		t.Fatal("lower bound unavailable")
	}
	med, ok := b.BoundFor(0.5, 0.95, Upper)
	if !ok {
		t.Fatal("median bound unavailable")
	}
	if !(lo25 < med && med < up95) {
		t.Fatalf("bounds not ordered: %g %g %g", lo25, med, up95)
	}
	// Upper 0.95 bound on 1..1000 sits a margin above the 950th value.
	if up95 < 950 || up95 > 975 {
		t.Errorf("up95 = %g out of expected range", up95)
	}
	if lo25 > 250 || lo25 < 215 {
		t.Errorf("lo25 = %g out of expected range", lo25)
	}
}

func TestBMBPLiveCoverageOnStationaryStream(t *testing.T) {
	// End-to-end self-check: predict-then-observe over an i.i.d. stream;
	// the fraction of covered observations must be at least ~0.95.
	b := New(Config{})
	rng := rand.New(rand.NewSource(21))
	warm := 200
	covered, scored := 0, 0
	for i := 0; i < 20000; i++ {
		v := math.Exp(2 * rng.NormFloat64())
		bound, ok := b.Bound()
		if i >= warm && ok {
			scored++
			if v <= bound {
				covered++
			}
		}
		b.Observe(v, ok && v > bound)
	}
	frac := float64(covered) / float64(scored)
	if frac < 0.945 {
		t.Errorf("live coverage %.4f below 0.95", frac)
	}
	if frac > 0.995 {
		t.Errorf("live coverage %.4f suspiciously conservative", frac)
	}
}

func TestRareEventTableLookup(t *testing.T) {
	tbl := DefaultRareEventTable
	if got := tbl.Lookup(-0.2); got != tbl[0].Threshold {
		t.Errorf("negative ACF -> first bucket, got %d", got)
	}
	if got := tbl.Lookup(math.NaN()); got != tbl[len(tbl)-1].Threshold {
		// NaN compares false everywhere, so it falls through to the last
		// bucket — the conservative end.
		t.Errorf("NaN ACF = %d", got)
	}
	if got := tbl.Lookup(2); got != tbl[len(tbl)-1].Threshold {
		t.Errorf("huge ACF -> last bucket, got %d", got)
	}
	// Monotone nondecreasing thresholds.
	for i := 1; i < len(tbl); i++ {
		if tbl[i].Threshold < tbl[i-1].Threshold {
			t.Errorf("table not monotone at %d", i)
		}
		if tbl[i].MaxAutocorr <= tbl[i-1].MaxAutocorr {
			t.Errorf("bucket edges not increasing at %d", i)
		}
	}
	// Empty table falls back to defaults.
	var empty RareEventTable
	if got := empty.Lookup(0); got != DefaultRareEventTable.Lookup(0) {
		t.Error("empty table fallback")
	}
}

func TestProfile(t *testing.T) {
	hist := make([]float64, 1000)
	for i := range hist {
		hist[i] = float64(i + 1)
	}
	entries := Profile(hist, Table8Specs, ModeAuto)
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i, e := range entries {
		if !e.OK {
			t.Fatalf("entry %d not OK", i)
		}
	}
	// Ordered: lower .25 <= upper .5 <= upper .75 <= upper .95.
	for i := 1; i < len(entries); i++ {
		if entries[i].Bound < entries[i-1].Bound {
			t.Fatalf("profile not ordered: %v", entries)
		}
	}
	// Too-short history yields OK=false.
	short := Profile([]float64{1, 2, 3}, Table8Specs, ModeAuto)
	for _, e := range short {
		if e.OK {
			t.Fatal("short history should not produce bounds")
		}
	}
}

func TestProfileOfMatchesProfile(t *testing.T) {
	b := New(Config{})
	hist := make([]float64, 500)
	rng := rand.New(rand.NewSource(17))
	for i := range hist {
		hist[i] = rng.Float64() * 100
		b.Observe(hist[i], false)
	}
	want := Profile(hist, Table8Specs, ModeAuto)
	got := ProfileOf(b, Table8Specs)
	for i := range want {
		if got[i].Bound != want[i].Bound || got[i].OK != want[i].OK {
			t.Fatalf("entry %d: live %+v vs pure %+v", i, got[i], want[i])
		}
	}
}
