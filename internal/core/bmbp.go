package core

import (
	"fmt"
	"sort"

	"repro/internal/ostat"
	"repro/internal/stats"
)

// Config parameterizes a BMBP predictor. The zero value means: 0.95
// quantile, 95% confidence, automatic exact/approximate index selection,
// change-point trimming enabled with the default rare-event table, and
// unbounded history.
type Config struct {
	// Quantile is the population quantile q to bound (default 0.95).
	Quantile float64
	// Confidence is the confidence level C of the bound (default 0.95).
	Confidence float64
	// Mode selects exact vs normal-approximate index computation.
	Mode BoundMode
	// NoTrim disables nonstationarity detection and history trimming
	// (used for ablation; the paper's BMBP always trims).
	NoTrim bool
	// RareTable overrides the autocorrelation → rare-event-run-length
	// table; nil uses DefaultRareEventTable.
	RareTable RareEventTable
	// FixedRareThreshold, when positive, bypasses the autocorrelation
	// lookup and uses a constant consecutive-miss threshold (ablation).
	FixedRareThreshold int
	// MaxHistory, when positive, caps the history length by discarding the
	// oldest observation once the cap is exceeded. The paper does not cap;
	// this exists for memory-constrained deployments.
	MaxHistory int
	// Seed seeds the internal order-statistic structure's balancing
	// randomness. Any fixed value gives reproducible structure.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Quantile == 0 {
		c.Quantile = 0.95
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.RareTable == nil {
		c.RareTable = DefaultRareEventTable
	}
	return c
}

// BMBP is the Brevik Method Batch Predictor for a single queue (or
// queue × processor-count category). It consumes wait-time observations in
// the order they become visible and produces, on demand, an upper confidence
// bound on the configured quantile of the next job's wait.
//
// BMBP is not safe for concurrent use; wrap it in a mutex if shared.
type BMBP struct {
	cfg        Config
	minHistory int
	idx        *IncrementalIndex

	// hist[histStart:] is the live history in observation order (oldest
	// first). With MaxHistory set, evictions advance histStart instead of
	// re-slicing — the dead prefix is compacted in place once it reaches
	// the window length, so the backing array stops growing at roughly
	// twice the window.
	hist      []float64
	histStart int
	set       *ostat.Multiset // same multiset of values, ordered by value

	scratch []float64 // sort buffer reused across trims/rebuilds

	rareThreshold int // 0 until calibrated
	consecMisses  int

	bound   float64
	boundOK bool
	stale   bool

	trims        int
	observations int
}

// New returns a BMBP predictor with the given configuration.
func New(cfg Config) *BMBP {
	cfg = cfg.withDefaults()
	idx := NewIncrementalIndex(cfg.Quantile, cfg.Confidence, cfg.Mode)
	return &BMBP{
		cfg:        cfg,
		minHistory: idx.MinHistory(),
		idx:        idx,
		set:        ostat.New(cfg.Seed + 1),
		stale:      true,
	}
}

// window returns the live history slice.
func (b *BMBP) window() []float64 { return b.hist[b.histStart:] }

// Name identifies the predictor in evaluation output.
func (b *BMBP) Name() string { return "bmbp" }

// Config returns the (defaulted) configuration the predictor runs with.
func (b *BMBP) Config() Config { return b.cfg }

// MinHistory returns the minimum history length from which the configured
// bound can be produced (59 for the paper's q = C = 0.95).
func (b *BMBP) MinHistory() int { return b.minHistory }

// HistoryLen returns the current history length.
func (b *BMBP) HistoryLen() int { return len(b.hist) - b.histStart }

// Trims returns how many change points the predictor has acted on.
func (b *BMBP) Trims() int { return b.trims }

// RareThreshold returns the consecutive-miss count currently treated as a
// change point, or 0 if not yet calibrated.
func (b *BMBP) RareThreshold() int { return b.rareThreshold }

// Observe records a completed wait observation. missed reports whether the
// bound quoted to this job when it was submitted turned out to be below its
// actual wait; pass false when no bound was quoted. Observations must arrive
// in the order waits become visible (job release order), which is what makes
// consecutive-miss runs meaningful.
func (b *BMBP) Observe(wait float64, missed bool) {
	b.observations++
	b.hist = append(b.hist, wait)
	b.set.Insert(wait)
	b.stale = true
	if b.cfg.MaxHistory > 0 && len(b.hist)-b.histStart > b.cfg.MaxHistory {
		b.set.Delete(b.hist[b.histStart])
		b.histStart++
		if b.histStart >= b.cfg.MaxHistory {
			// Dead prefix caught up with the live window: slide the window
			// to the front. Sizing the array at twice the window makes the
			// steady state allocation-free — appends consume the second
			// half while the first half goes dead, then compaction resets.
			live := b.hist[b.histStart:]
			if cap(b.hist) < 2*b.cfg.MaxHistory {
				b.hist = append(make([]float64, 0, 2*b.cfg.MaxHistory), live...)
			} else {
				b.hist = b.hist[:copy(b.hist, live)]
			}
			b.histStart = 0
		}
	}
	if b.cfg.NoTrim {
		return
	}
	if missed {
		b.consecMisses++
	} else {
		b.consecMisses = 0
	}
	if b.rareThreshold == 0 && len(b.hist)-b.histStart >= b.minHistory {
		// Standalone use without an explicit training phase: calibrate as
		// soon as a meaningful history exists.
		b.calibrate()
	}
	if b.rareThreshold > 0 && b.consecMisses >= b.rareThreshold {
		b.trim()
	}
}

// ObserveAuto is Observe for callers that do not track per-job quoted
// bounds: the observation is scored against the predictor's current bound.
func (b *BMBP) ObserveAuto(wait float64) {
	bound, ok := b.Bound()
	b.Observe(wait, ok && wait > bound)
}

// FinishTraining calibrates the rare-event threshold from the lag-1
// autocorrelation of the history accumulated so far, mirroring the paper's
// use of the training period. Calling it again recalibrates.
func (b *BMBP) FinishTraining() {
	b.calibrate()
}

func (b *BMBP) calibrate() {
	if b.cfg.FixedRareThreshold > 0 {
		b.rareThreshold = b.cfg.FixedRareThreshold
		return
	}
	acf := stats.Autocorrelation(b.window(), 1)
	b.rareThreshold = b.cfg.RareTable.Lookup(acf)
}

// trim implements the paper's change-point response: keep only the most
// recent MinHistory observations — the longest history that is clearly
// relevant — and reset the miss run.
func (b *BMBP) trim() {
	w := b.window()
	if len(w) <= b.minHistory {
		b.consecMisses = 0
		return
	}
	keep := w[len(w)-b.minHistory:]
	// Rebuild the order statistics in O(n) from a sorted copy instead of
	// n individual inserts.
	if cap(b.scratch) < len(keep) {
		b.scratch = make([]float64, 0, 2*len(keep))
	}
	b.scratch = append(b.scratch[:0], keep...)
	sort.Float64s(b.scratch)
	b.set.BuildFromSorted(b.scratch)
	// Copy to release the large backing array.
	b.hist = append(make([]float64, 0, b.minHistory*2), keep...)
	b.histStart = 0
	b.consecMisses = 0
	b.trims++
	b.stale = true
}

// Refit recomputes the current bound from the history. The evaluation
// simulator calls this on its epoch ticks (every 300 s in the paper); it is
// also called lazily by Bound when the history changed since the last refit.
func (b *BMBP) Refit() {
	n := len(b.hist) - b.histStart
	k, ok := b.idx.Index(n)
	if !ok {
		b.boundOK = false
		b.stale = false
		return
	}
	v, ok := b.set.Select(k)
	if !ok {
		// Select can only fail if k > n, which UpperBoundIndex prevents.
		panic(fmt.Sprintf("core: order statistic %d of %d unavailable", k, n))
	}
	b.bound = v
	b.boundOK = true
	b.stale = false
}

// Bound returns the current upper confidence bound on the configured
// quantile. ok is false while the history is shorter than MinHistory.
func (b *BMBP) Bound() (float64, bool) {
	if b.stale {
		b.Refit()
	}
	return b.bound, b.boundOK
}

// BoundFor computes a one-off bound at a different quantile/confidence from
// the same history, without disturbing the predictor's own state. side
// selects an upper or lower bound. ok is false when the history is too
// short for that (q, c) pair.
func (b *BMBP) BoundFor(q, c float64, side Side) (float64, bool) {
	n := len(b.hist) - b.histStart
	var k int
	var ok bool
	if side == Lower {
		k, ok = LowerBoundIndex(n, q, c, b.cfg.Mode)
	} else {
		k, ok = UpperBoundIndex(n, q, c, b.cfg.Mode)
	}
	if !ok {
		return 0, false
	}
	return b.set.Select(k)
}

// History returns a copy of the current history in observation order.
func (b *BMBP) History() []float64 {
	w := b.window()
	out := make([]float64, len(w))
	copy(out, w)
	return out
}

// Side selects which side of a confidence bound is requested.
type Side int

const (
	// Upper requests an upper confidence bound on the quantile.
	Upper Side = iota
	// Lower requests a lower confidence bound on the quantile.
	Lower
)

func (s Side) String() string {
	if s == Lower {
		return "lower"
	}
	return "upper"
}
