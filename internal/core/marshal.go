package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/ostat"
)

// Binary state serialization, so a deployed predictor can survive process
// restarts without retraining: the paper's deployment model feeds the
// predictor five-minute scheduler-log dumps, and losing a year of history
// to a restart would reset the bound to its minimum-history conservatism.
//
// The format is versioned and self-contained: configuration, calibration
// state, and the observation-ordered history (the order statistics are
// rebuilt on load).

const (
	marshalMagic   = "BMBP"
	marshalVersion = 1
)

// MarshalBinary encodes the predictor's full state.
func (b *BMBP) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(marshalMagic)
	w := func(v interface{}) {
		// bytes.Buffer writes never fail.
		_ = binary.Write(&buf, binary.LittleEndian, v)
	}
	w(uint16(marshalVersion))
	w(b.cfg.Quantile)
	w(b.cfg.Confidence)
	w(int32(b.cfg.Mode))
	w(b.cfg.NoTrim)
	w(int64(b.cfg.FixedRareThreshold))
	w(int64(b.cfg.MaxHistory))
	w(b.cfg.Seed)

	w(int64(b.rareThreshold))
	w(int64(b.consecMisses))
	w(int64(b.trims))
	w(int64(b.observations))

	w(int64(len(b.cfg.RareTable)))
	for _, e := range b.cfg.RareTable {
		w(e.MaxAutocorr)
		w(int64(e.Threshold))
	}

	win := b.window()
	w(int64(len(win)))
	for _, v := range win {
		w(v)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a predictor serialized by MarshalBinary,
// replacing the receiver's state entirely.
func (b *BMBP) UnmarshalBinary(data []byte) error {
	buf := bytes.NewReader(data)
	magic := make([]byte, len(marshalMagic))
	if _, err := buf.Read(magic); err != nil || string(magic) != marshalMagic {
		return fmt.Errorf("core: not a BMBP state blob")
	}
	var version uint16
	r := func(v interface{}) error {
		return binary.Read(buf, binary.LittleEndian, v)
	}
	if err := r(&version); err != nil {
		return fmt.Errorf("core: truncated state: %v", err)
	}
	if version != marshalVersion {
		return fmt.Errorf("core: unsupported state version %d", version)
	}

	var cfg Config
	var mode int32
	var fixedRare, maxHistory int64
	if err := firstErr(
		r(&cfg.Quantile), r(&cfg.Confidence), r(&mode), r(&cfg.NoTrim),
		r(&fixedRare), r(&maxHistory), r(&cfg.Seed),
	); err != nil {
		return fmt.Errorf("core: truncated config: %v", err)
	}
	cfg.Mode = BoundMode(mode)
	cfg.FixedRareThreshold = int(fixedRare)
	cfg.MaxHistory = int(maxHistory)
	// Written as positive conditions so NaN (all comparisons false) is
	// rejected too.
	if !(cfg.Quantile > 0 && cfg.Quantile < 1 && cfg.Confidence > 0 && cfg.Confidence < 1) {
		return fmt.Errorf("core: corrupt state: quantile %g confidence %g", cfg.Quantile, cfg.Confidence)
	}

	var rareThreshold, consecMisses, trims, observations int64
	if err := firstErr(r(&rareThreshold), r(&consecMisses), r(&trims), r(&observations)); err != nil {
		return fmt.Errorf("core: truncated calibration: %v", err)
	}

	var tableLen int64
	if err := r(&tableLen); err != nil {
		return fmt.Errorf("core: truncated table: %v", err)
	}
	if tableLen < 0 || tableLen > 1024 {
		return fmt.Errorf("core: corrupt table length %d", tableLen)
	}
	table := make(RareEventTable, tableLen)
	for i := range table {
		var thr int64
		if err := firstErr(r(&table[i].MaxAutocorr), r(&thr)); err != nil {
			return fmt.Errorf("core: truncated table entry: %v", err)
		}
		table[i].Threshold = int(thr)
	}
	cfg.RareTable = table

	var histLen int64
	if err := r(&histLen); err != nil {
		return fmt.Errorf("core: truncated history length: %v", err)
	}
	if histLen < 0 || histLen > 1<<31 {
		return fmt.Errorf("core: corrupt history length %d", histLen)
	}
	hist := make([]float64, histLen)
	for i := range hist {
		if err := r(&hist[i]); err != nil {
			return fmt.Errorf("core: truncated history: %v", err)
		}
		if math.IsNaN(hist[i]) || hist[i] < 0 {
			return fmt.Errorf("core: corrupt history value %g", hist[i])
		}
	}

	// Rebuild derived structures. The order statistics come back via an
	// O(n) bulk build from a sorted copy rather than n re-inserts.
	b.cfg = cfg
	b.idx = NewIncrementalIndex(cfg.Quantile, cfg.Confidence, cfg.Mode)
	b.minHistory = b.idx.MinHistory()
	b.hist = hist
	b.histStart = 0
	b.set = ostat.New(cfg.Seed + 1)
	if len(hist) > 0 {
		sorted := make([]float64, len(hist))
		copy(sorted, hist)
		sort.Float64s(sorted)
		b.set.BuildFromSorted(sorted)
	}
	b.rareThreshold = int(rareThreshold)
	b.consecMisses = int(consecMisses)
	b.trims = int(trims)
	b.observations = int(observations)
	b.stale = true
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
