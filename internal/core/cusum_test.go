package core

import (
	"math/rand"
	"testing"
)

func TestCUSUMDetectorSignalsOnSustainedDegradation(t *testing.T) {
	det := NewCUSUMDetector(0.95, 0.3, 6)
	// At the nominal 5% miss rate the detector fires rarely (each alarm
	// needs ~4 misses in a short window).
	rng := rand.New(rand.NewSource(1))
	fired := 0
	for i := 0; i < 20000; i++ {
		if det.Observe(rng.Float64() < 0.05) {
			fired++
		}
	}
	if fired > 5 {
		t.Errorf("false alarms at nominal rate: %d in 20k", fired)
	}
	// At a 30% miss rate it fires fast.
	det.Reset()
	steps := 0
	for {
		steps++
		if det.Observe(rng.Float64() < 0.30) {
			break
		}
		if steps > 500 {
			t.Fatal("no signal after 500 degraded outcomes")
		}
	}
	if steps > 120 {
		t.Errorf("slow detection: %d steps", steps)
	}
}

func TestCUSUMCatchesInterleavedMisses(t *testing.T) {
	// A deterministic miss pattern with no run longer than 2 — invisible
	// to the paper's run rule at threshold 3 — but a 33% miss rate, which
	// the CUSUM flags.
	run := New(Config{FixedRareThreshold: 3})
	cus := NewCUSUMDetector(0.95, 0.3, 4)
	cusFired := false
	for i := 0; i < 300; i++ {
		missed := i%3 != 2 // miss, miss, hit, miss, miss, hit...
		// Feed the run-rule predictor (values irrelevant here).
		run.Observe(1, missed)
		if cus.Observe(missed) {
			cusFired = true
		}
	}
	if run.Trims() != 0 {
		t.Error("run rule should NOT fire on interleaved misses (runs of 2)")
	}
	if !cusFired {
		t.Error("CUSUM should fire on a sustained 67% miss rate")
	}
}

func TestCUSUMDegenerateTuning(t *testing.T) {
	det := NewCUSUMDetector(0.95, 0.01, 4) // p1 below nominal: never fires
	for i := 0; i < 1000; i++ {
		if det.Observe(true) {
			t.Fatal("degenerate detector fired")
		}
	}
	if det.Level() != 0 && det.Level() > 0 {
		// Level may stay 0 or grow; firing is what matters. Reset works.
		det.Reset()
		if det.Level() != 0 {
			t.Fatal("reset")
		}
	}
}

func TestBMBPCUSUMAdaptsToChangePoint(t *testing.T) {
	b := NewWithCUSUM(Config{Seed: 1}, 0.5, 3)
	if b.Name() != "bmbp-cusum" {
		t.Error("name")
	}
	for i := 0; i < 500; i++ {
		b.Observe(10, false)
	}
	before, _ := b.Bound()
	// Regime change: persistent misses, sometimes interleaved with hits.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 80; i++ {
		missed := rng.Float64() < 0.7
		w := 10.0
		if missed {
			w = 5000 + 100*float64(i)
		}
		b.Observe(w, missed)
	}
	if b.Trims() == 0 {
		t.Fatal("no CUSUM trim after a sustained regime change")
	}
	after, ok := b.Bound()
	if !ok || after <= before {
		t.Errorf("bound did not adapt upward: %g -> %g", before, after)
	}
	b.FinishTraining() // no-op
	b.Refit()
}

func TestBMBPCUSUMLiveCoverage(t *testing.T) {
	// The CUSUM variant must preserve the coverage property on a
	// stationary stream.
	b := NewWithCUSUM(Config{Seed: 3}, 0.3, 4)
	rng := rand.New(rand.NewSource(3))
	scored, covered := 0, 0
	for i := 0; i < 20000; i++ {
		v := rng.Float64() * 1000
		bound, ok := b.Bound()
		missed := ok && v > bound
		if i > 200 && ok {
			scored++
			if !missed {
				covered++
			}
		}
		b.Observe(v, missed)
	}
	if frac := float64(covered) / float64(scored); frac < 0.945 {
		t.Errorf("coverage %.4f", frac)
	}
}
