package core

import "sort"

// QuantileSpec names one bound in a quantile profile: the quantile, the
// confidence level, and which side of the bound is wanted.
type QuantileSpec struct {
	Q    float64
	C    float64
	Side Side
}

// ProfileEntry is one computed bound of a quantile profile.
type ProfileEntry struct {
	Spec  QuantileSpec
	Bound float64
	OK    bool
}

// Table8Specs is the quantile profile the paper's Table 8 reports for the
// "day in the life" of the datastar/normal queue: a 95%-confidence lower
// bound on the 0.25 quantile and 95%-confidence upper bounds on the 0.5,
// 0.75, and 0.95 quantiles.
var Table8Specs = []QuantileSpec{
	{Q: 0.25, C: 0.95, Side: Lower},
	{Q: 0.50, C: 0.95, Side: Upper},
	{Q: 0.75, C: 0.95, Side: Upper},
	{Q: 0.95, C: 0.95, Side: Upper},
}

// Profile computes all requested bounds from a single history (any order;
// it sorts a copy). Entries whose history is too short come back with
// OK=false.
func Profile(history []float64, specs []QuantileSpec, mode BoundMode) []ProfileEntry {
	sorted := make([]float64, len(history))
	copy(sorted, history)
	sort.Float64s(sorted)
	out := make([]ProfileEntry, len(specs))
	for i, s := range specs {
		var bound float64
		var ok bool
		if s.Side == Lower {
			bound, ok = LowerBound(sorted, s.Q, s.C, mode)
		} else {
			bound, ok = UpperBound(sorted, s.Q, s.C, mode)
		}
		out[i] = ProfileEntry{Spec: s, Bound: bound, OK: ok}
	}
	return out
}

// ProfileOf computes a quantile profile from a live predictor's current
// history.
func ProfileOf(b *BMBP, specs []QuantileSpec) []ProfileEntry {
	out := make([]ProfileEntry, len(specs))
	for i, s := range specs {
		bound, ok := b.BoundFor(s.Q, s.C, s.Side)
		out[i] = ProfileEntry{Spec: s, Bound: bound, OK: ok}
	}
	return out
}
