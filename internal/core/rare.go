package core

// Rare-event run-length thresholds (Section 4.1, "Nonstationarity").
//
// A single miss of a 0.95-quantile bound happens 5% of the time by design.
// For i.i.d. data, r consecutive misses happens with probability 0.05^r, so
// three in a row (1.25e-4) is practically certain evidence of a change
// point. Autocorrelated data produces longer excursions above the quantile,
// so the run length that constitutes a "rare event" must grow with the
// series' first autocorrelation. The paper calibrates this with a Monte
// Carlo over AR(1) log-normal series; internal/mc contains that simulation
// (runnable via cmd/mctable), and DefaultRareEventTable below is its output
// (seed 1, 2e6 steps per rho, rare-event probability cutoff 0.002 — just
// under the i.i.d. two-in-a-row probability of 0.0025 the paper calls
// "extremely rare", so that i.i.d. series get the paper's three-in-a-row
// threshold).

// RareEventEntry maps a first-autocorrelation upper edge to the consecutive
// miss count that constitutes a rare event for series at or below that
// autocorrelation.
type RareEventEntry struct {
	MaxAutocorr float64 // entries apply to ACF <= MaxAutocorr
	Threshold   int     // consecutive misses that signal a change point
}

// RareEventTable is a coarse-grained lookup from a history's lag-1
// autocorrelation to its rare-event run-length threshold.
type RareEventTable []RareEventEntry

// DefaultRareEventTable is the precomputed table used when a predictor is
// not given one explicitly. Regenerate with internal/mc (see
// TestDefaultTableMatchesMonteCarlo, which checks the builder reproduces
// these values).
// Raw-series autocorrelations are much lower than the log-space AR(1)
// coefficients that generate them (the heavy tail dilutes linear
// correlation), which is why the buckets concentrate below 0.75.
var DefaultRareEventTable = RareEventTable{
	{MaxAutocorr: 0.10, Threshold: 3},
	{MaxAutocorr: 0.26, Threshold: 4},
	{MaxAutocorr: 0.41, Threshold: 5},
	{MaxAutocorr: 0.59, Threshold: 7},
	{MaxAutocorr: 0.76, Threshold: 12},
	{MaxAutocorr: 1.01, Threshold: 22},
}

// Lookup returns the rare-event threshold for a series with the given lag-1
// autocorrelation. Autocorrelations at or below zero (or NaN) fall into the
// first bucket; values above every bucket use the last entry.
func (t RareEventTable) Lookup(acf float64) int {
	if len(t) == 0 {
		return DefaultRareEventTable.Lookup(acf)
	}
	for _, e := range t {
		if acf <= e.MaxAutocorr {
			return e.Threshold
		}
	}
	return t[len(t)-1].Threshold
}
