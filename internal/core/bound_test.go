package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
)

func TestMinSampleSizePaperValue(t *testing.T) {
	// Section 4.1: 59 observations are the minimum for a 95%-confidence
	// bound on the 0.95 quantile.
	if got := MinSampleSize(0.95, 0.95); got != 59 {
		t.Fatalf("MinSampleSize(.95,.95) = %d, want 59", got)
	}
}

func TestMinSampleSizeDefinition(t *testing.T) {
	for _, c := range []struct{ q, conf float64 }{
		{0.5, 0.95}, {0.75, 0.9}, {0.9, 0.99}, {0.95, 0.95}, {0.99, 0.8},
	} {
		n := MinSampleSize(c.q, c.conf)
		if n < 1 {
			t.Fatalf("MinSampleSize(%g,%g) = %d", c.q, c.conf, n)
		}
		if cov := 1 - math.Pow(c.q, float64(n)); cov < c.conf {
			t.Errorf("n=%d does not reach confidence: %g < %g", n, cov, c.conf)
		}
		if n > 1 {
			if cov := 1 - math.Pow(c.q, float64(n-1)); cov >= c.conf {
				t.Errorf("n-1=%d already reaches confidence %g", n-1, cov)
			}
		}
	}
	if MinSampleSize(0, 0.95) != 0 || MinSampleSize(0.95, 1) != 0 {
		t.Error("invalid parameters should return 0")
	}
}

func TestMinSampleSizeLower(t *testing.T) {
	// Lower bound on the 0.25 quantile at 95% confidence needs 11 samples:
	// smallest n with 1 - 0.75^n >= 0.95.
	if got := MinSampleSizeLower(0.25, 0.95); got != 11 {
		t.Fatalf("MinSampleSizeLower(.25,.95) = %d, want 11", got)
	}
}

// bruteUpperIndex is the by-definition search the binary search must match.
func bruteUpperIndex(n int, q, c float64) int {
	b := stats.Binomial{N: n, P: q}
	for k := 1; k <= n; k++ {
		if b.CDF(k-1) >= c {
			return k
		}
	}
	return -1
}

func bruteLowerIndex(n int, q, c float64) int {
	b := stats.Binomial{N: n, P: q}
	best := -1
	for k := 1; k <= n; k++ {
		if b.CDF(k-1) <= 1-c {
			best = k
		}
	}
	return best
}

func TestUpperBoundIndexExactMatchesBruteForce(t *testing.T) {
	for _, q := range []float64{0.5, 0.9, 0.95} {
		for _, n := range []int{59, 60, 75, 100, 150, 237} {
			if n < MinSampleSize(q, 0.95) {
				continue
			}
			got, ok := UpperBoundIndex(n, q, 0.95, ModeExact)
			want := bruteUpperIndex(n, q, 0.95)
			if !ok || got != want {
				t.Errorf("n=%d q=%g: exact index %d ok=%v, brute %d", n, q, got, ok, want)
			}
		}
	}
}

func TestLowerBoundIndexExactMatchesBruteForce(t *testing.T) {
	for _, q := range []float64{0.25, 0.5, 0.75} {
		for _, n := range []int{15, 40, 99, 200} {
			if n < MinSampleSizeLower(q, 0.95) {
				continue
			}
			got, ok := LowerBoundIndex(n, q, 0.95, ModeExact)
			want := bruteLowerIndex(n, q, 0.95)
			if !ok || got != want {
				t.Errorf("n=%d q=%g: exact lower index %d ok=%v, brute %d", n, q, got, ok, want)
			}
		}
	}
}

func TestUpperBoundIndexBelowMinimum(t *testing.T) {
	if _, ok := UpperBoundIndex(58, 0.95, 0.95, ModeExact); ok {
		t.Error("58 samples should not support the bound")
	}
	if _, ok := UpperBoundIndex(58, 0.95, 0.95, ModeAuto); ok {
		t.Error("auto mode must refuse too")
	}
}

func TestApproxIndexNearExact(t *testing.T) {
	// The paper's Appendix example: n=1000, q=.9, C=.95 gives index 916.
	k, ok := UpperBoundIndex(1000, 0.9, 0.95, ModeApprox)
	if !ok || k != 916 {
		t.Errorf("appendix example: k=%d ok=%v, want 916", k, ok)
	}
	// Exact and approximate indices agree within 2 order statistics where
	// the approximation's preconditions hold.
	for _, n := range []int{300, 1000, 5000, 50000} {
		for _, q := range []float64{0.5, 0.9, 0.95} {
			if !(stats.Binomial{N: n, P: q}).NormalApproxOK() {
				continue
			}
			ke, _ := UpperBoundIndex(n, q, 0.95, ModeExact)
			ka, _ := UpperBoundIndex(n, q, 0.95, ModeApprox)
			// The paper's ceil-everything recipe has no continuity
			// correction, so it can land one order statistic either side
			// of the exact index.
			if d := ka - ke; d < -1 || d > 2 {
				t.Errorf("n=%d q=%g: exact %d approx %d", n, q, ke, ka)
			}
		}
	}
}

func TestAutoModeSelectsByRule(t *testing.T) {
	// At q=.95, n=100 has only 5 expected failures: auto must equal exact.
	ke, _ := UpperBoundIndex(100, 0.95, 0.95, ModeExact)
	ka, _ := UpperBoundIndex(100, 0.95, 0.95, ModeAuto)
	if ke != ka {
		t.Errorf("auto %d != exact %d for small expected failures", ka, ke)
	}
	// At n=10000, the approximation applies.
	kap, _ := UpperBoundIndex(10000, 0.95, 0.95, ModeApprox)
	kauto, _ := UpperBoundIndex(10000, 0.95, 0.95, ModeAuto)
	if kap != kauto {
		t.Errorf("auto %d != approx %d for large n", kauto, kap)
	}
}

func TestUpperBoundCoverageMonteCarlo(t *testing.T) {
	// The defining property of the method (paper Section 4): across
	// repeated i.i.d. samples, the produced bound is >= the true quantile
	// in at least a fraction C of samples.
	const (
		n      = 80
		trials = 3000
		q, c   = 0.95, 0.95
	)
	trueQ := math.Exp(stats.StdNormalQuantile(q)) // log-normal population
	rng := rand.New(rand.NewSource(12))
	covered := 0
	sample := make([]float64, n)
	for tr := 0; tr < trials; tr++ {
		for i := range sample {
			sample[i] = math.Exp(rng.NormFloat64())
		}
		sort.Float64s(sample)
		bound, ok := UpperBound(sample, q, c, ModeExact)
		if !ok {
			t.Fatal("bound unavailable")
		}
		if bound >= trueQ {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < c-0.012 {
		t.Errorf("coverage %.3f below confidence %.2f", frac, c)
	}
}

func TestLowerBoundCoverageMonteCarlo(t *testing.T) {
	const (
		n      = 100
		trials = 3000
		q, c   = 0.25, 0.95
	)
	trueQ := stats.StdNormalQuantile(q)
	rng := rand.New(rand.NewSource(13))
	covered := 0
	sample := make([]float64, n)
	for tr := 0; tr < trials; tr++ {
		for i := range sample {
			sample[i] = rng.NormFloat64()
		}
		sort.Float64s(sample)
		bound, ok := LowerBound(sample, q, c, ModeExact)
		if !ok {
			t.Fatal("bound unavailable")
		}
		if bound <= trueQ {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < c-0.012 {
		t.Errorf("lower coverage %.3f below confidence %.2f", frac, c)
	}
}

func TestBoundConvergesTowardQuantile(t *testing.T) {
	// Appendix: as n grows the bound converges to the sample quantile
	// itself — the index fraction k/n approaches q from above.
	prev := 1.0
	for _, n := range []int{100, 1000, 10000, 100000} {
		k, ok := UpperBoundIndex(n, 0.9, 0.95, ModeAuto)
		if !ok {
			t.Fatal("bound unavailable")
		}
		frac := float64(k) / float64(n)
		if frac < 0.9 {
			t.Errorf("n=%d: index fraction %.4f below quantile", n, frac)
		}
		if frac > prev {
			t.Errorf("n=%d: index fraction %.4f not shrinking (prev %.4f)", n, frac, prev)
		}
		prev = frac
	}
	if prev > 0.905 {
		t.Errorf("final index fraction %.4f should be close to 0.9", prev)
	}
}

func TestBoundModeString(t *testing.T) {
	if ModeAuto.String() != "auto" || ModeExact.String() != "exact" || ModeApprox.String() != "approx" {
		t.Error("mode strings")
	}
	if Upper.String() != "upper" || Lower.String() != "lower" {
		t.Error("side strings")
	}
}
