package core

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// Property-based invariants of the bound index machinery, checked with
// testing/quick over randomized (n, q, C).

func quantileFrom(u16 uint16) float64 {
	// q in [0.5, 0.99].
	return 0.5 + 0.49*float64(u16)/65535
}

func confFrom(u16 uint16) float64 {
	// C in [0.8, 0.99].
	return 0.8 + 0.19*float64(u16)/65535
}

func TestQuickUpperIndexIsValidBound(t *testing.T) {
	// Defining property: at the returned k, P(Bin(n,q) <= k-1) >= C, and
	// at k-1 it is below C (minimality).
	f := func(n16, q16, c16 uint16) bool {
		n := int(n16)%3000 + 1
		q := quantileFrom(q16)
		c := confFrom(c16)
		k, ok := UpperBoundIndex(n, q, c, ModeExact)
		if !ok {
			return n < MinSampleSize(q, c)
		}
		if k < 1 || k > n {
			return false
		}
		b := stats.Binomial{N: n, P: q}
		if b.CDF(k-1) < c {
			return false
		}
		if k > 1 && b.CDF(k-2) >= c {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickLowerIndexIsValidBound(t *testing.T) {
	f := func(n16, q16, c16 uint16) bool {
		n := int(n16)%3000 + 1
		q := 0.1 + 0.5*float64(q16)/65535 // lower bounds for low-to-mid quantiles
		c := confFrom(c16)
		k, ok := LowerBoundIndex(n, q, c, ModeExact)
		if !ok {
			return n < MinSampleSizeLower(q, c)
		}
		if k < 1 || k > n {
			return false
		}
		b := stats.Binomial{N: n, P: q}
		// P(x_(k) < X_q) = P(Bin >= k) >= C.
		if b.Survival(k-1) < c {
			return false
		}
		// Maximality: k+1 would not qualify.
		if k < n && b.Survival(k) >= c {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIndexMonotoneInConfidence(t *testing.T) {
	// More confidence demands a higher order statistic.
	f := func(n16, q16 uint16) bool {
		n := int(n16)%2000 + 100
		q := quantileFrom(q16)
		prev := 0
		for _, c := range []float64{0.8, 0.9, 0.95, 0.99} {
			k, ok := UpperBoundIndex(n, q, c, ModeExact)
			if !ok {
				continue
			}
			if k < prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickIndexMonotoneInQuantile(t *testing.T) {
	f := func(n16 uint16) bool {
		n := int(n16)%2000 + 200
		prev := 0
		for _, q := range []float64{0.5, 0.75, 0.9, 0.95} {
			k, ok := UpperBoundIndex(n, q, 0.95, ModeExact)
			if !ok {
				continue
			}
			if k < prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickIndexFractionShrinksWithN(t *testing.T) {
	// Conservatism k/n decreases toward q as n grows (the Appendix's
	// convergence observation), for any (q, C).
	f := func(q16, c16 uint16) bool {
		q := quantileFrom(q16)
		c := confFrom(c16)
		prev := 1.0
		for _, n := range []int{200, 2000, 20000} {
			k, ok := UpperBoundIndex(n, q, c, ModeAuto)
			if !ok {
				continue
			}
			frac := float64(k) / float64(n)
			if frac < q {
				return false // never below the quantile itself
			}
			if frac > prev+1e-9 {
				return false
			}
			prev = frac
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickProfileOrdering(t *testing.T) {
	// For any history, the Table 8 profile entries are nondecreasing.
	f := func(raw []uint32) bool {
		if len(raw) < 80 {
			return true
		}
		hist := make([]float64, len(raw))
		for i, v := range raw {
			hist[i] = float64(v % 100000)
		}
		entries := Profile(hist, Table8Specs, ModeAuto)
		prev := -1.0
		for _, e := range entries {
			if !e.OK {
				continue
			}
			if e.Bound < prev {
				return false
			}
			prev = e.Bound
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
