package core

import "testing"

// FuzzUnmarshalBinary: state restoration must never panic or accept
// structurally invalid blobs silently.
func FuzzUnmarshalBinary(f *testing.F) {
	valid := func() []byte {
		b := New(Config{})
		for i := 0; i < 100; i++ {
			b.Observe(float64(i), false)
		}
		blob, _ := b.MarshalBinary()
		return blob
	}()
	f.Add(valid)
	f.Add([]byte("BMBP"))
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		b := New(Config{})
		if err := b.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted blobs must leave a usable predictor.
		if b.MinHistory() < 1 {
			t.Fatal("restored predictor has invalid minimum history")
		}
		b.Observe(1, false)
		b.Refit()
		b.Bound()
		// And re-serialize cleanly.
		if _, err := b.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}
