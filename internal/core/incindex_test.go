package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestIncrementalIndexDifferential drives an IncrementalIndex one
// observation at a time and asserts it returns exactly what the from-scratch
// computation returns for every n up to 200k, across a grid of (q, C) and
// both bound modes BMBP uses. This is the proof that the O(1) stepping rule
// (k grows by 0 or 1 per observation, decided by one CDF evaluation) agrees
// with upperIndexExact/UpperBoundIndex not just mathematically but on the
// concrete floating-point CDF both paths share.
func TestIncrementalIndexDifferential(t *testing.T) {
	const maxN = 200_000
	grid := []struct{ q, c float64 }{
		{0.95, 0.95}, // the paper's headline setting
		{0.50, 0.95}, // median
		{0.90, 0.99},
		{0.99, 0.90},
	}
	for _, g := range grid {
		g := g
		t.Run("", func(t *testing.T) {
			t.Parallel()
			exact := NewIncrementalIndex(g.q, g.c, ModeExact)
			auto := NewIncrementalIndex(g.q, g.c, ModeAuto)
			minN := MinSampleSize(g.q, g.c)
			// In the normal-approximation region ModeAuto is a closed form
			// on both sides, so spot-checking it sparsely is enough; the
			// exact path is verified at every single n.
			autoStride := 1
			for n := 1; n <= maxN; n++ {
				ki, oki := exact.Index(n)
				if n < minN {
					if oki {
						t.Fatalf("q=%g c=%g n=%d: ok below MinSampleSize", g.q, g.c, n)
					}
					continue
				}
				if !oki {
					t.Fatalf("q=%g c=%g n=%d: not ok at/above MinSampleSize %d", g.q, g.c, n, minN)
				}
				if want := upperIndexExact(n, g.q, g.c); ki != want {
					t.Fatalf("q=%g c=%g n=%d: incremental exact k=%d, upperIndexExact=%d", g.q, g.c, n, ki, want)
				}
				if n%autoStride == 0 {
					ka, oka := auto.Index(n)
					kw, okw := UpperBoundIndex(n, g.q, g.c, ModeAuto)
					if ka != kw || oka != okw {
						t.Fatalf("q=%g c=%g n=%d: auto k=%d ok=%v, UpperBoundIndex k=%d ok=%v", g.q, g.c, n, ka, oka, kw, okw)
					}
				}
				if n == 4096 {
					autoStride = 17 // prime stride keeps coverage spread out
				}
			}
		})
	}
}

// TestIncrementalIndexRandomWalk exercises the non-sequential paths: trims
// (n drops), windows (n constant), and jumps, interleaved with +1 steps.
func TestIncrementalIndexRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mode := range []BoundMode{ModeExact, ModeAuto, ModeApprox} {
		x := NewIncrementalIndex(0.95, 0.95, mode)
		n := 0
		for step := 0; step < 4000; step++ {
			switch rng.Intn(10) {
			case 0:
				n = MinSampleSize(0.95, 0.95) // trim
			case 1:
				n = rng.Intn(5000) // arbitrary jump
			case 2:
				// window steady state: n unchanged
			default:
				n++
			}
			k, ok := x.Index(n)
			kw, okw := UpperBoundIndex(n, 0.95, 0.95, mode)
			if k != kw || ok != okw {
				t.Fatalf("mode=%v n=%d: incremental k=%d ok=%v, want k=%d ok=%v", mode, n, k, ok, kw, okw)
			}
		}
	}
}

// TestSteadyStateObserveRefitBoundAllocs asserts the full per-job hot path
// (Observe + Refit + Bound) allocates nothing once a MaxHistory window is in
// steady state: the history buffer compacts in place, the order-statistic
// arena recycles nodes through its free lists, and the bound index is a
// closed form with memoized constants.
func TestSteadyStateObserveRefitBoundAllocs(t *testing.T) {
	b := New(Config{Seed: 1, MaxHistory: 20000, NoTrim: true})
	rng := rand.New(rand.NewSource(7))
	next := func() float64 { return math.Exp(rng.NormFloat64()*2 + 5) }
	// Warm well past several window turnovers so the arena and the
	// compaction cycle reach their fixed points.
	for i := 0; i < 8*20000; i++ {
		b.Observe(next(), false)
		b.Refit()
		b.Bound()
	}
	allocs := testing.AllocsPerRun(5000, func() {
		b.Observe(next(), false)
		b.Refit()
		if _, ok := b.Bound(); !ok {
			t.Fatal("bound unavailable in steady state")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe+Refit+Bound allocates %g allocs/op, want 0", allocs)
	}
}

// TestHistoryWindowCompaction pins the MaxHistory backing-array fix: the
// live window must stay correct across compactions and the backing array
// must stop growing at about twice the window.
func TestHistoryWindowCompaction(t *testing.T) {
	const window = 500
	b := New(Config{Seed: 1, MaxHistory: window, NoTrim: true})
	var ref []float64
	for i := 0; i < 20*window; i++ {
		v := float64(i)
		b.Observe(v, false)
		ref = append(ref, v)
		if len(ref) > window {
			ref = ref[1:]
		}
		if b.HistoryLen() != len(ref) {
			t.Fatalf("i=%d: HistoryLen %d, want %d", i, b.HistoryLen(), len(ref))
		}
	}
	got := b.History()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("window[%d] = %g, want %g", i, got[i], ref[i])
		}
	}
	if c := cap(b.hist); c > 3*window {
		t.Fatalf("backing array cap %d after 20 window turnovers, want <= %d", c, 3*window)
	}
	// The order statistics must describe exactly the live window.
	if min, _ := b.set.Min(); min != ref[0] {
		t.Fatalf("set min %g, want %g", min, ref[0])
	}
	if b.set.Len() != window {
		t.Fatalf("set len %d, want %d", b.set.Len(), window)
	}
}

func BenchmarkIncrementalIndex(b *testing.B) {
	// Exact-region stepping: one CDF evaluation at most per observation,
	// versus a fresh MinSampleSize + O(log n) CDF binary search.
	b.Run("incremental", func(b *testing.B) {
		x := NewIncrementalIndex(0.95, 0.95, ModeExact)
		n := x.MinHistory()
		x.Index(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n++
			x.Index(n)
		}
	})
	b.Run("fromscratch", func(b *testing.B) {
		n := MinSampleSize(0.95, 0.95)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n++
			UpperBoundIndex(n, 0.95, 0.95, ModeExact)
		}
	})
	// ModeAuto at production history lengths: closed form + memoized z.
	b.Run("auto100k", func(b *testing.B) {
		x := NewIncrementalIndex(0.95, 0.95, ModeAuto)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.Index(100_000 + i%64)
		}
	})
}
