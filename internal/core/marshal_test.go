package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	orig := New(Config{Quantile: 0.9, Confidence: 0.99, MaxHistory: 5000, Seed: 7})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		orig.ObserveAuto(math.Exp(2 * rng.NormFloat64()))
	}
	origBound, origOK := orig.Bound()

	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Config{})
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.HistoryLen() != orig.HistoryLen() {
		t.Fatalf("history %d vs %d", restored.HistoryLen(), orig.HistoryLen())
	}
	if restored.Trims() != orig.Trims() {
		t.Errorf("trims %d vs %d", restored.Trims(), orig.Trims())
	}
	if restored.RareThreshold() != orig.RareThreshold() {
		t.Errorf("rare threshold %d vs %d", restored.RareThreshold(), orig.RareThreshold())
	}
	gotBound, gotOK := restored.Bound()
	if gotOK != origOK || gotBound != origBound {
		t.Fatalf("bound %g/%v vs %g/%v", gotBound, gotOK, origBound, origOK)
	}
	// The restored predictor keeps evolving identically on the upper
	// bound path: same history + same config means same future bounds.
	future := []float64{3, 99, 0.5, 12}
	for _, v := range future {
		orig.Observe(v, false)
		restored.Observe(v, false)
	}
	b1, _ := orig.Bound()
	b2, _ := restored.Bound()
	if b1 != b2 {
		t.Fatalf("post-restore divergence: %g vs %g", b1, b2)
	}
	cfg := restored.Config()
	if cfg.Quantile != 0.9 || cfg.Confidence != 0.99 || cfg.MaxHistory != 5000 {
		t.Errorf("config not restored: %+v", cfg)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	b := New(Config{})
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE1234"),
		[]byte("BMBP"),         // truncated after magic
		[]byte("BMBP\x09\x00"), // unsupported version
	}
	for i, blob := range cases {
		if err := b.UnmarshalBinary(blob); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated mid-history.
	good := New(Config{})
	for i := 0; i < 100; i++ {
		good.Observe(float64(i), false)
	}
	blob, _ := good.MarshalBinary()
	if err := b.UnmarshalBinary(blob[:len(blob)-4]); err == nil {
		t.Error("truncated history accepted")
	}
	// Corrupt quantile.
	blob2, _ := good.MarshalBinary()
	for i := 6; i < 14; i++ {
		blob2[i] = 0xFF
	}
	if err := b.UnmarshalBinary(blob2); err == nil {
		t.Error("corrupt quantile accepted")
	}
}

func TestMarshalEmptyPredictor(t *testing.T) {
	orig := New(Config{})
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Config{})
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.HistoryLen() != 0 {
		t.Error("empty predictor restored with history")
	}
	if _, ok := restored.Bound(); ok {
		t.Error("empty predictor has a bound")
	}
}
