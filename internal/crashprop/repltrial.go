package crashprop

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/repl"
	"repro/internal/wal"
	"repro/qbets"
)

// Replication trials extend the power-cut harness across processes: a
// leader ships its WAL to a follower over the fault-injectable in-memory
// transport, and the oracle property becomes the replicated-serving
// claim — an acked write is never lost across leader crash and failover,
// and a follower's served state is always the state of an oracle fed a
// prefix of the leader's acked log. Scenarios cover the steady path
// (including delayed and reordered delivery), a network partition with
// reconnect, a leader power cut under synchronous replication, an
// epoch-fenced failover, and snapshot catch-up of a late follower whose
// cursor fell off the compacted log.

// Replication trial scenarios.
const (
	// ScenarioSteady replicates a workload live, optionally through a
	// delaying/reordering transport, and requires convergence.
	ScenarioSteady = "steady"
	// ScenarioPartition severs and partitions the transport mid-workload;
	// the follower must reconnect and converge after the heal.
	ScenarioPartition = "partition"
	// ScenarioLeaderCrash power-cuts the leader under synchronous
	// replication: every acked write must already be on the follower, and
	// leader recovery must replay at least the acked prefix.
	ScenarioLeaderCrash = "leadercrash"
	// ScenarioFailover promotes the follower to a new epoch; the deposed
	// leader must be fenced — refusing every subsequent ack — while the
	// new leader serves writes on top of the replicated prefix.
	ScenarioFailover = "failover"
	// ScenarioCatchup connects the follower only after the leader's log
	// has been compacted, forcing snapshot-based catch-up.
	ScenarioCatchup = "catchup"
	// ScenarioFanout replicates one leader to three followers at once;
	// every follower must converge to the acked-prefix oracle exactly.
	ScenarioFanout = "fanout"
	// ScenarioQuorum runs synchronous replication with commit quorum
	// K=2 of 3 followers: writes keep committing after one follower drops
	// (2 >= K), and are refused once a second drops (1 < K) — while the
	// refused-but-durable record still ships to the survivor.
	ScenarioQuorum = "quorum"
	// ScenarioTornSnapshot severs the transport mid-chunked-snapshot (a
	// torn shard stream): the follower must discard the partial install,
	// reconnect, re-request the snapshot from scratch, and converge to
	// the acked-prefix oracle exactly.
	ScenarioTornSnapshot = "tornsnapshot"
)

// ReplTrialConfig parameterizes one replication trial. As with
// TrialConfig, everything random derives from Seed.
type ReplTrialConfig struct {
	Seed     int64
	Scenario string
	// Delay and Reorder inject transport chaos (steady scenario).
	Delay   bool
	Reorder bool
	// Records bounds the workload; 0 draws 60–220 records from the seed.
	Records int
}

// ReplTrialResult reports what a replication trial measured. Counts are
// quiescent (taken at barriers, after convergence) and the outcomes are
// booleans, so a fixed seed yields byte-identical results run to run.
type ReplTrialResult struct {
	// Appended is how many observations leaders accepted across the trial.
	Appended int
	// Acked is how many of them were acknowledged to the writer — under
	// synchronous replication that means follower-applied, not just
	// locally durable.
	Acked int
	// Converged: the follower's applied prefix reached the leader's
	// durable watermark and their served state matched the oracle.
	Converged bool
	// PrefixConsistent: at every quiescent check, follower state equaled
	// an oracle fed a prefix of the leader's acked log.
	PrefixConsistent bool
	// SnapshotInstalled: the follower caught up via at least one
	// full-state snapshot.
	SnapshotInstalled bool
	// Reconnected: the follower established at least two sessions
	// (severed and came back).
	Reconnected bool
	// Fenced: the deposed leader observed the higher epoch.
	Fenced bool
	// FencedAckRefused: a write on the deposed leader was refused after
	// deposition (the fenced leader can never ack).
	FencedAckRefused bool
	// RecoveredAllAcked: recovery of the crashed leader replayed every
	// acked record.
	RecoveredAllAcked bool
	// FanoutConverged: every follower in the fan-out converged to the
	// acked-prefix oracle exactly.
	FanoutConverged bool
	// QuorumRefusedBelowK: with fewer than K followers reachable, a
	// synchronous write was refused rather than acked.
	QuorumRefusedBelowK bool
	// TornTransfer: the follower discarded at least one partial chunked
	// snapshot install (a torn shard stream).
	TornTransfer bool
}

// replNode bundles one service with its WAL and filesystem.
type replNode struct {
	fs  *wal.MemFS
	w   *wal.WAL
	svc *qbets.Service
}

func newReplNode(segBytes int64) (*replNode, error) {
	fs := wal.NewMemFS()
	w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord, SegmentBytes: segBytes})
	if err != nil {
		return nil, fmt.Errorf("open wal: %w", err)
	}
	svc := qbets.NewService(false, qbets.WithSeed(1))
	if _, err := svc.RecoverWAL(w); err != nil {
		return nil, fmt.Errorf("attach wal: %w", err)
	}
	return &replNode{fs: fs, w: w, svc: svc}, nil
}

// waitUntil polls cond to true within a generous deadline; replication
// trials are event-driven, so in practice this returns in milliseconds.
func waitUntil(what string, cond func() bool) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s", what)
}

type replObs struct {
	queue string
	wait  float64
}

// observeWorkload drives n seeded observations into svc, recording them
// for the oracle.
func observeWorkload(svc *qbets.Service, rng *rand.Rand, n int, log *[]replObs) error {
	for i := 0; i < n; i++ {
		q := TrialQueues[rng.Intn(len(TrialQueues))]
		wait := rng.ExpFloat64() * 600
		if err := svc.Observe(q, 1, wait); err != nil {
			return fmt.Errorf("observe %d: %w", len(*log), err)
		}
		*log = append(*log, replObs{q, wait})
	}
	return nil
}

// oracleFor replays the first n logged observations into a fresh service.
func oracleFor(log []replObs, n int) (*qbets.Service, error) {
	o := qbets.NewService(false, qbets.WithSeed(1))
	for _, r := range log[:n] {
		if err := o.Observe(r.queue, 1, r.wait); err != nil {
			return nil, fmt.Errorf("oracle observe: %w", err)
		}
	}
	return o, nil
}

// startFollower builds a follower node and its repl.Follower against tr.
func startFollower(tr *repl.MemTransport, addr string, epochs repl.EpochStore, seed int64) (*qbets.Service, *repl.Follower, error) {
	svc := qbets.NewService(false, qbets.WithSeed(1))
	svc.SetFollower(true)
	f, err := repl.NewFollower(svc, repl.FollowerOptions{
		Addr:       addr,
		Transport:  tr,
		Epochs:     epochs,
		BackoffMin: time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		Rand:       rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return nil, nil, err
	}
	go f.Run()
	return svc, f, nil
}

// RunReplTrial executes one replication trial and checks the scenario's
// clauses of the replicated-serving property. A nil error means every
// clause held.
func RunReplTrial(cfg ReplTrialConfig) (ReplTrialResult, error) {
	var res ReplTrialResult
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Records
	if n == 0 {
		n = 60 + rng.Intn(160)
	}

	tr := repl.NewMemTransport()
	if cfg.Delay {
		tr.SetDelay(2 * time.Millisecond)
	}
	if cfg.Reorder {
		tr.SetReorder(0.25, rand.New(rand.NewSource(cfg.Seed+1)))
	}

	leader, err := newReplNode(0)
	if err != nil {
		return res, err
	}
	ln, err := tr.Listen("leader")
	if err != nil {
		return res, err
	}
	ldrEpochs := &repl.MemEpochStore{}
	ldrOpt := repl.LeaderOptions{Epoch: 1, HeartbeatEvery: 10 * time.Millisecond}
	if cfg.Scenario == ScenarioQuorum {
		// K=2 of 3: commits need two follower acks. The timeout bounds the
		// below-quorum refusal probe, not the happy path (which is
		// event-driven and milliseconds).
		ldrOpt.Quorum = 2
		ldrOpt.CommitTimeout = 750 * time.Millisecond
	}
	ldr := repl.NewLeader(leader.w, leader.svc, ldrOpt)
	defer ldr.Close()
	go ldr.Serve(ln)
	_ = ldrEpochs.Save(1)

	folEpochs := &repl.MemEpochStore{}
	var log []replObs

	// quiesce drives the follower to the leader's durable watermark and
	// proves prefix consistency there: the follower's served state equals
	// an oracle fed exactly the acked log.
	quiesce := func(folSvc *qbets.Service, upto int) error {
		target := uint64(upto)
		if err := waitUntil("follower to reach the leader's watermark", func() bool {
			return folSvc.ReplicaAppliedSeq() >= target
		}); err != nil {
			return err
		}
		oracle, err := oracleFor(log, upto)
		if err != nil {
			return err
		}
		if err := Equivalent(folSvc, oracle); err != nil {
			return fmt.Errorf("follower state diverged from acked-prefix oracle: %w", err)
		}
		res.PrefixConsistent = true
		return nil
	}

	switch cfg.Scenario {
	case ScenarioSteady, "":
		folSvc, fol, err := startFollower(tr, "leader", folEpochs, cfg.Seed+2)
		if err != nil {
			return res, err
		}
		defer fol.Close()
		if err := observeWorkload(leader.svc, rng, n, &log); err != nil {
			return res, err
		}
		res.Appended, res.Acked = len(log), len(log)
		if err := quiesce(folSvc, len(log)); err != nil {
			return res, err
		}
		res.Converged = true

	case ScenarioPartition:
		folSvc, fol, err := startFollower(tr, "leader", folEpochs, cfg.Seed+2)
		if err != nil {
			return res, err
		}
		defer fol.Close()
		half := n / 2
		if err := observeWorkload(leader.svc, rng, half, &log); err != nil {
			return res, err
		}
		if err := quiesce(folSvc, len(log)); err != nil {
			return res, err
		}
		// Partition: refuse new dials, drop the live session and anything
		// in flight. Writes continue on the leader meanwhile.
		tr.Partition(true)
		tr.Sever()
		if err := observeWorkload(leader.svc, rng, n-half, &log); err != nil {
			return res, err
		}
		tr.Partition(false)
		res.Appended, res.Acked = len(log), len(log)
		if err := quiesce(folSvc, len(log)); err != nil {
			return res, err
		}
		res.Converged = true
		res.Reconnected = fol.Reconnects() >= 2

	case ScenarioLeaderCrash:
		folSvc, fol, err := startFollower(tr, "leader", folEpochs, cfg.Seed+2)
		if err != nil {
			return res, err
		}
		defer fol.Close()
		// Synchronous replication: an observe acks only after the
		// follower applied it.
		leader.svc.SetCommitHook(ldr.CommitWait)
		if err := observeWorkload(leader.svc, rng, n, &log); err != nil {
			return res, err
		}
		res.Appended, res.Acked = len(log), len(log)
		// Power cut: sever the wire, kill the leader process, crash its
		// filesystem. Every acked write must already be on the follower.
		tr.Sever()
		ldr.Close()
		leader.fs.Crash(rng)
		if folSvc.ReplicaAppliedSeq() < uint64(res.Acked) {
			return res, fmt.Errorf("follower applied %d, but %d writes were acked", folSvc.ReplicaAppliedSeq(), res.Acked)
		}
		oracle, err := oracleFor(log, len(log))
		if err != nil {
			return res, err
		}
		if err := Equivalent(folSvc, oracle); err != nil {
			return res, fmt.Errorf("follower lost acked state across leader crash: %w", err)
		}
		res.PrefixConsistent, res.Converged = true, true
		// The crashed leader's own recovery must also hold the acked
		// prefix (it was synced-durable before each ack).
		w2, err := wal.Open("wal", wal.Options{FS: leader.fs})
		if err != nil {
			return res, fmt.Errorf("reopen crashed wal: %w", err)
		}
		recovered := qbets.NewService(false, qbets.WithSeed(1))
		stats, err := recovered.RecoverWAL(w2)
		if err != nil {
			return res, fmt.Errorf("leader recovery failed: %w", err)
		}
		res.RecoveredAllAcked = stats.Records >= res.Acked
		if !res.RecoveredAllAcked {
			return res, fmt.Errorf("leader recovery replayed %d of %d acked records", stats.Records, res.Acked)
		}

	case ScenarioFailover:
		folSvc, fol, err := startFollower(tr, "leader", folEpochs, cfg.Seed+2)
		if err != nil {
			return res, err
		}
		defer fol.Close()
		leader.svc.SetCommitHook(ldr.CommitWait)
		half := n / 2
		if err := observeWorkload(leader.svc, rng, half, &log); err != nil {
			return res, err
		}
		if err := quiesce(folSvc, len(log)); err != nil {
			return res, err
		}
		// Failover: the follower claims the next epoch and becomes a
		// leader on a fresh log whose sequence space continues the
		// replicated prefix.
		newEpoch, err := fol.Promote()
		if err != nil {
			return res, fmt.Errorf("promote follower: %w", err)
		}
		fs2 := wal.NewMemFS()
		w2, err := wal.Open("wal", wal.Options{FS: fs2, Mode: wal.SyncEachRecord})
		if err != nil {
			return res, err
		}
		if _, err := folSvc.Promote(w2); err != nil {
			return res, fmt.Errorf("promote service: %w", err)
		}
		ln2, err := tr.Listen("leader2")
		if err != nil {
			return res, err
		}
		ldr2 := repl.NewLeader(w2, folSvc, repl.LeaderOptions{Epoch: newEpoch, HeartbeatEvery: 10 * time.Millisecond})
		defer ldr2.Close()
		go ldr2.Serve(ln2)
		// The new epoch reaches the deposed leader (any session carrying
		// it fences — here, the ex-follower's epoch store is reused by
		// the messenger session).
		fencer, err := repl.NewFollower(nopReplicaApp{}, repl.FollowerOptions{
			Addr:       "leader",
			Transport:  tr,
			Epochs:     folEpochs,
			BackoffMin: time.Millisecond,
			BackoffMax: 20 * time.Millisecond,
			Rand:       rand.New(rand.NewSource(cfg.Seed + 3)),
		})
		if err != nil {
			return res, err
		}
		go fencer.Run()
		if err := waitUntil("deposed leader to fence", ldr.Fenced); err != nil {
			return res, err
		}
		fencer.Close()
		res.Fenced = true
		// The fenced ex-leader can never ack again: its commit wait fails
		// even for sequences acked before deposition, so the write is
		// refused.
		err = leader.svc.Observe(TrialQueues[0], 1, 1)
		res.FencedAckRefused = errors.Is(err, qbets.ErrReadOnly)
		if !res.FencedAckRefused {
			return res, fmt.Errorf("deposed leader acked a write (err=%v)", err)
		}
		// The promoted leader serves writes on top of the replicated
		// prefix; its state must equal an oracle fed old-term acks plus
		// the new-term workload.
		if err := observeWorkload(folSvc, rng, n-half, &log); err != nil {
			return res, fmt.Errorf("write on promoted leader: %w", err)
		}
		res.Appended, res.Acked = len(log), len(log)
		oracle, err := oracleFor(log, len(log))
		if err != nil {
			return res, err
		}
		if err := Equivalent(folSvc, oracle); err != nil {
			return res, fmt.Errorf("promoted leader diverged from oracle: %w", err)
		}
		res.Converged = true

	case ScenarioCatchup:
		// Workload and compaction happen before the follower exists, so
		// its cursor starts below the retained log and only a snapshot
		// can catch it up.
		if err := observeWorkload(leader.svc, rng, n, &log); err != nil {
			return res, err
		}
		res.Appended, res.Acked = len(log), len(log)
		cut, err := leader.w.Rotate()
		if err != nil {
			return res, fmt.Errorf("rotate: %w", err)
		}
		if err := leader.w.RemoveSegmentsBelow(cut); err != nil {
			return res, fmt.Errorf("compact: %w", err)
		}
		folSvc, fol, err := startFollower(tr, "leader", folEpochs, cfg.Seed+2)
		if err != nil {
			return res, err
		}
		defer fol.Close()
		if err := quiesce(folSvc, len(log)); err != nil {
			return res, err
		}
		res.Converged = true
		res.SnapshotInstalled = fol.SnapshotsInstalled() >= 1
		if !res.SnapshotInstalled {
			return res, fmt.Errorf("follower converged without the required snapshot")
		}
		// Catch-up keeps working live: post-snapshot appends still ship.
		if err := observeWorkload(leader.svc, rng, 5, &log); err != nil {
			return res, err
		}
		res.Appended, res.Acked = len(log), len(log)
		if err := quiesce(folSvc, len(log)); err != nil {
			return res, err
		}

	case ScenarioFanout:
		// Frame-once/ship-many: three followers ride one leader, and every
		// one must converge to the same acked-prefix oracle.
		const fanout = 3
		folSvcs := make([]*qbets.Service, fanout)
		for i := 0; i < fanout; i++ {
			folSvc, fol, err := startFollower(tr, "leader", &repl.MemEpochStore{}, cfg.Seed+2+int64(i))
			if err != nil {
				return res, err
			}
			defer fol.Close()
			folSvcs[i] = folSvc
		}
		if err := observeWorkload(leader.svc, rng, n, &log); err != nil {
			return res, err
		}
		res.Appended, res.Acked = len(log), len(log)
		for _, folSvc := range folSvcs {
			if err := quiesce(folSvc, len(log)); err != nil {
				return res, err
			}
		}
		res.Converged = true
		res.FanoutConverged = true

	case ScenarioQuorum:
		// Synchronous replication with commit quorum K=2 of 3 (set in the
		// leader options above).
		leader.svc.SetCommitHook(ldr.CommitWait)
		folSvcs := make([]*qbets.Service, 3)
		fols := make([]*repl.Follower, 3)
		for i := range fols {
			folSvc, fol, err := startFollower(tr, "leader", &repl.MemEpochStore{}, cfg.Seed+2+int64(i))
			if err != nil {
				return res, err
			}
			defer fol.Close()
			folSvcs[i], fols[i] = folSvc, fol
		}
		half := n / 2
		if err := observeWorkload(leader.svc, rng, half, &log); err != nil {
			return res, err
		}
		for _, folSvc := range folSvcs {
			if err := quiesce(folSvc, len(log)); err != nil {
				return res, err
			}
		}
		// One follower drops. Two remain — still >= K, so writes keep
		// acking without it.
		fols[2].Close()
		if err := observeWorkload(leader.svc, rng, n-half, &log); err != nil {
			return res, err
		}
		res.Appended, res.Acked = len(log), len(log)
		for _, folSvc := range folSvcs[:2] {
			if err := quiesce(folSvc, len(log)); err != nil {
				return res, err
			}
		}
		res.Converged = true
		// A second drop leaves one reachable follower — below K. The next
		// write must be refused: it is appended and durable on the leader
		// (apply-then-wait), but the ack is withheld.
		fols[1].Close()
		probeErr := leader.svc.Observe(TrialQueues[0], 1, 1)
		res.QuorumRefusedBelowK = errors.Is(probeErr, qbets.ErrReadOnly)
		if !res.QuorumRefusedBelowK {
			return res, fmt.Errorf("below-quorum write was not refused (err=%v)", probeErr)
		}
		// The refused-but-durable record still ships: the survivor converges
		// to the full durable log, ack or no ack.
		log = append(log, replObs{TrialQueues[0], 1})
		res.Appended = len(log)
		if err := quiesce(folSvcs[0], len(log)); err != nil {
			return res, err
		}

	case ScenarioTornSnapshot:
		// One stream per chunk, so the tiny trial state still yields a
		// multi-chunk transfer to tear.
		leader.svc.SetSnapshotChunkStreams(1)
		if err := observeWorkload(leader.svc, rng, n, &log); err != nil {
			return res, err
		}
		res.Appended, res.Acked = len(log), len(log)
		cut, err := leader.w.Rotate()
		if err != nil {
			return res, fmt.Errorf("rotate: %w", err)
		}
		if err := leader.w.RemoveSegmentsBelow(cut); err != nil {
			return res, fmt.Errorf("compact: %w", err)
		}
		// Sever after four message deliveries: hello, snapBegin, and two
		// more. The workload touches at least three queues, so at least
		// three chunks were coming and snapEnd cannot have been delivered —
		// the transfer is torn mid-chunk-stream no matter how the two
		// directions interleave.
		tr.SeverAfter(4)
		folSvc, fol, err := startFollower(tr, "leader", folEpochs, cfg.Seed+2)
		if err != nil {
			return res, err
		}
		defer fol.Close()
		if err := quiesce(folSvc, len(log)); err != nil {
			return res, err
		}
		res.Converged = true
		res.SnapshotInstalled = fol.SnapshotsInstalled() >= 1
		res.TornTransfer = fol.SnapshotAborts() >= 1
		res.Reconnected = fol.Reconnects() >= 2
		if !res.TornTransfer {
			return res, fmt.Errorf("transfer was not torn (aborts=%d, reconnects=%d)", fol.SnapshotAborts(), fol.Reconnects())
		}
		if !res.SnapshotInstalled {
			return res, fmt.Errorf("follower converged without the required snapshot")
		}
		// The re-requested install keeps serving the live tail.
		if err := observeWorkload(leader.svc, rng, 5, &log); err != nil {
			return res, err
		}
		res.Appended, res.Acked = len(log), len(log)
		if err := quiesce(folSvc, len(log)); err != nil {
			return res, err
		}

	default:
		return res, fmt.Errorf("unknown scenario %q", cfg.Scenario)
	}
	return res, nil
}

// nopReplicaApp is the minimal app for a session whose only job is to
// carry an epoch (the failover fencing messenger).
type nopReplicaApp struct{}

func (nopReplicaApp) ReplicaAppliedSeq() uint64                   { return 0 }
func (nopReplicaApp) ApplyReplicated(uint64, []wal.Record) error  { return nil }
func (nopReplicaApp) InstallReplicaSnapshot(uint64, []byte) error { return nil }
