package crashprop

import (
	"testing"

	"repro/internal/wal"
	"repro/qbets"
)

// TestRunTrialHoldsAcrossPolicies spot-checks the property on each policy
// corner; the exhaustive sweeps live in the qbets crash property test
// (100 random trials) and the H-Durability grid (internal/hypo).
func TestRunTrialHoldsAcrossPolicies(t *testing.T) {
	cases := []TrialConfig{
		{Seed: 1, Mode: wal.SyncEachRecord},
		{Seed: 2, Mode: wal.SyncOff},
		{Seed: 3, Mode: wal.SyncEachRecord, GroupCommit: true},
		{Seed: 4, Mode: wal.SyncOff, GroupCommit: true, Evict: true},
		{Seed: 5, Mode: wal.SyncEachRecord, Evict: true},
	}
	for _, cfg := range cases {
		res, err := RunTrial(cfg)
		if err != nil {
			t.Errorf("trial %+v: %v", cfg, err)
			continue
		}
		if res.Appended < 50 {
			t.Errorf("trial %+v: only %d records appended", cfg, res.Appended)
		}
		if cfg.Mode == wal.SyncEachRecord && res.Acked != res.Appended {
			t.Errorf("trial %+v: per-record sync acked %d of %d", cfg, res.Acked, res.Appended)
		}
		if cfg.Evict && res.Evictions == 0 {
			t.Errorf("trial %+v: eviction requested but no passes ran", cfg)
		}
		if res.Replayed < res.Acked || res.Replayed > res.Appended {
			t.Errorf("trial %+v: replayed %d outside [%d, %d]", cfg, res.Replayed, res.Acked, res.Appended)
		}
	}
}

// TestRunTrialDeterministic: the same config reproduces the same trial.
func TestRunTrialDeterministic(t *testing.T) {
	cfg := TrialConfig{Seed: 42, Mode: wal.SyncEachRecord, Evict: true}
	a, errA := RunTrial(cfg)
	b, errB := RunTrial(cfg)
	if errA != nil || errB != nil {
		t.Fatalf("trials errored: %v, %v", errA, errB)
	}
	if a != b {
		t.Errorf("same config, different trials: %+v vs %+v", a, b)
	}
}

// TestEquivalentDetectsDivergence: the oracle comparison must actually
// discriminate — two services that saw different observations on a trial
// queue are not equivalent.
func TestEquivalentDetectsDivergence(t *testing.T) {
	a := qbets.NewService(false, qbets.WithSeed(1))
	b := qbets.NewService(false, qbets.WithSeed(1))
	for i := 0; i < 80; i++ {
		if err := a.Observe(TrialQueues[0], 1, float64(10+i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(TrialQueues[0], 1, float64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Equivalent(a, b); err != nil {
		t.Errorf("identical feeds reported divergent: %v", err)
	}
	if err := b.Observe(TrialQueues[0], 1, 9999); err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(a, b); err == nil {
		t.Error("divergent feeds reported equivalent")
	}
}
