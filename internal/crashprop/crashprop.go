// Package crashprop is the shared crash-recovery property harness: one
// simulated power-cut trial, from randomized workload through crash,
// recovery, and oracle comparison. It is the single implementation of the
// acked-prefix property behind both the qbets crash property tests and the
// H-Durability invariant (internal/hypo), so the oracle cannot drift
// between the unit tier and the hypothesis tier.
//
// The property, exactly as PR 3 stated it: a service whose observations go
// through a write-ahead log, killed by a power cut at an arbitrary byte
// offset (with possible bit flips in the unsynced sliver), recovers into
// exactly the state of an oracle service that was fed the surviving record
// prefix directly. "Exactly" means per-stream observation counts and
// forecast bounds — the replayed history drives the same order statistics
// the paper's predictor computes — and every record the sync policy acked
// durable must be in that prefix.
package crashprop

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/wal"
	"repro/qbets"
)

// TrialQueues are the stream keys a trial's workload spreads across.
var TrialQueues = []string{"normal", "high", "low", "debug"}

// TrialConfig parameterizes one power-cut trial. Everything random in the
// trial — workload sizes, waits, crash offset, bit flips — derives from
// Seed, so a config reproduces its trial exactly.
type TrialConfig struct {
	Seed int64
	// Mode is the WAL sync policy under test. SyncEachRecord acks every
	// record as it returns; SyncOff acks nothing before rotation. (The
	// interval policy is excluded: its acked set depends on wall-clock
	// ticker timing, which a deterministic trial cannot reproduce.)
	Mode wal.SyncMode
	// GroupCommit enables the leader/follower commit protocol.
	GroupCommit bool
	// Evict interleaves full eviction passes into the workload, so the
	// crash can land while streams are cold and recovery must rehydrate
	// them from blobs mid-replay.
	Evict bool
	// SegmentBytes sets the WAL segment rotation size; 0 draws a small
	// random size from the seed (frequent rotations put segment boundaries
	// inside the crash window).
	SegmentBytes int64
	// Records bounds the workload length; 0 draws 50–350 records from the
	// seed, the historical property-test range.
	Records int
}

// TrialResult reports what a completed trial measured.
type TrialResult struct {
	// Appended is how many observations the pre-crash service accepted.
	Appended int
	// Acked is how many of them the sync policy had made durable — the
	// prefix that must survive any crash.
	Acked int
	// Replayed is how many records recovery actually replayed; the
	// property requires Acked <= Replayed <= Appended.
	Replayed int
	// Evictions counts eviction passes the workload interleaved.
	Evictions int
}

// RunTrial executes one trial and checks every clause of the property.
// A nil error means the property held; a non-nil error describes the
// violation (recovery failure, lost acked records, phantom records, or
// recovered state diverging from the oracle).
func RunTrial(cfg TrialConfig) (TrialResult, error) {
	var res TrialResult
	rng := rand.New(rand.NewSource(cfg.Seed))
	fs := wal.NewMemFS()

	opt := wal.Options{FS: fs, Mode: cfg.Mode, GroupCommit: cfg.GroupCommit, SegmentBytes: cfg.SegmentBytes}
	if opt.SegmentBytes == 0 {
		opt.SegmentBytes = int64(256 + rng.Intn(4096))
	}
	w, err := wal.Open("wal", opt)
	if err != nil {
		return res, fmt.Errorf("open wal: %w", err)
	}
	svc := qbets.NewService(false, qbets.WithSeed(1))
	if _, err := svc.RecoverWAL(w); err != nil {
		return res, fmt.Errorf("attach wal: %w", err)
	}

	// Random workload mixing single observes and batches (the crash can
	// land mid-batch-frame), optionally interleaved with eviction passes
	// so rehydration machinery sits inside the crash window too. acked
	// tracks the prefix the sync policy has made durable — a successful
	// ObserveBatch under per-record sync acks all of its records.
	type obsRec struct {
		queue string
		wait  float64
	}
	n := cfg.Records
	if n == 0 {
		n = 50 + rng.Intn(300)
	}
	appended := make([]obsRec, 0, n)
	acked := 0
	steps := 0
	for len(appended) < n {
		if cfg.Evict && steps%7 == 3 {
			svc.EvictIdle(0)
			res.Evictions++
		}
		steps++
		if rng.Intn(3) == 0 {
			m := 1 + rng.Intn(12)
			batch := make([]qbets.ObserveRecord, m)
			for j := range batch {
				batch[j] = qbets.ObserveRecord{
					Queue:       TrialQueues[rng.Intn(len(TrialQueues))],
					Procs:       1,
					WaitSeconds: rng.ExpFloat64() * 600,
				}
			}
			if applied, err := svc.ObserveBatch(batch); err != nil || applied != m {
				return res, fmt.Errorf("batch at %d: applied %d: %v", len(appended), applied, err)
			}
			for _, r := range batch {
				appended = append(appended, obsRec{r.Queue, r.WaitSeconds})
			}
		} else {
			q := TrialQueues[rng.Intn(len(TrialQueues))]
			wait := rng.ExpFloat64() * 600
			if err := svc.Observe(q, 1, wait); err != nil {
				return res, fmt.Errorf("observe %d: %w", len(appended), err)
			}
			appended = append(appended, obsRec{q, wait})
		}
		if cfg.Mode == wal.SyncEachRecord {
			acked = len(appended)
		}
	}
	res.Appended, res.Acked = len(appended), acked

	// Power cut: only the synced prefix plus a random sliver of unsynced
	// bytes (possibly bit-flipped) survives.
	fs.Crash(rng)

	// Recover into a fresh service.
	w2, err := wal.Open("wal", wal.Options{FS: fs})
	if err != nil {
		return res, fmt.Errorf("reopen wal: %w", err)
	}
	recovered := qbets.NewService(false, qbets.WithSeed(1))
	stats, err := recovered.RecoverWAL(w2)
	if err != nil {
		return res, fmt.Errorf("recovery must never fail on a crashed log: %w", err)
	}
	res.Replayed = stats.Records
	if stats.Records < acked {
		return res, fmt.Errorf("replayed %d records, but %d were acked durable", stats.Records, acked)
	}
	if stats.Records > len(appended) {
		return res, fmt.Errorf("replayed %d records, only %d were observed", stats.Records, len(appended))
	}

	// Oracle: a never-crashed service fed the surviving prefix directly,
	// with the same seed so stream RNG assignment matches.
	oracle := qbets.NewService(false, qbets.WithSeed(1))
	for _, r := range appended[:stats.Records] {
		if err := oracle.Observe(r.queue, 1, r.wait); err != nil {
			return res, fmt.Errorf("oracle observe: %w", err)
		}
	}
	if err := Equivalent(recovered, oracle); err != nil {
		return res, err
	}

	// The recovered service keeps serving: appends resume cleanly.
	if err := recovered.Observe("post", 1, 1); err != nil {
		return res, fmt.Errorf("post-recovery observe: %w", err)
	}
	return res, nil
}

// Equivalent checks that two services agree exactly on the state the
// durability property covers: stream count and, per trial queue, the
// observation count and forecast bound. It is the oracle comparison shared
// by the crash property tests and H-Durability.
func Equivalent(got, want *qbets.Service) error {
	if g, w := got.NumStreams(), want.NumStreams(); g != w {
		return fmt.Errorf("recovered %d streams, oracle has %d", g, w)
	}
	var errs []error
	for _, q := range TrialQueues {
		gotN, wantN := got.Observations(q, 1), want.Observations(q, 1)
		if gotN != wantN {
			errs = append(errs, fmt.Errorf("queue %s: recovered %d observations, oracle %d", q, gotN, wantN))
			continue
		}
		gotB, gotOK := got.Forecast(q, 1)
		wantB, wantOK := want.Forecast(q, 1)
		if gotOK != wantOK || gotB != wantB {
			errs = append(errs, fmt.Errorf("queue %s: recovered bound (%g,%v), oracle (%g,%v)", q, gotB, gotOK, wantB, wantOK))
		}
	}
	return errors.Join(errs...)
}
