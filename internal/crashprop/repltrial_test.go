package crashprop

import (
	"fmt"
	"testing"
)

func TestReplTrialScenarios(t *testing.T) {
	scenarios := []ReplTrialConfig{
		{Scenario: ScenarioSteady},
		{Scenario: ScenarioSteady, Delay: true},
		{Scenario: ScenarioSteady, Reorder: true},
		{Scenario: ScenarioPartition},
		{Scenario: ScenarioLeaderCrash},
		{Scenario: ScenarioFailover},
		{Scenario: ScenarioCatchup},
		{Scenario: ScenarioFanout},
		{Scenario: ScenarioQuorum},
		{Scenario: ScenarioTornSnapshot},
	}
	for _, cfg := range scenarios {
		cfg := cfg
		name := cfg.Scenario
		if cfg.Delay {
			name += "/delay"
		}
		if cfg.Reorder {
			name += "/reorder"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 4; seed++ {
				cfg.Seed = seed
				res, err := RunReplTrial(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v\n%+v", seed, err, res)
				}
				if !res.Converged || !res.PrefixConsistent {
					t.Fatalf("seed %d: trial passed without converging: %+v", seed, res)
				}
			}
		})
	}
}

// TestReplTrialDeterministicCounts pins the determinism contract the
// hypothesis tier depends on: for a fixed seed, the quiescent counts and
// outcome booleans are identical across runs.
func TestReplTrialDeterministicCounts(t *testing.T) {
	for _, scenario := range []string{ScenarioSteady, ScenarioPartition, ScenarioLeaderCrash, ScenarioFailover, ScenarioCatchup, ScenarioFanout, ScenarioQuorum, ScenarioTornSnapshot} {
		cfg := ReplTrialConfig{Seed: 42, Scenario: scenario}
		a, err := RunReplTrial(cfg)
		if err != nil {
			t.Fatalf("%s run 1: %v", scenario, err)
		}
		b, err := RunReplTrial(cfg)
		if err != nil {
			t.Fatalf("%s run 2: %v", scenario, err)
		}
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("%s: results differ across runs:\n%+v\n%+v", scenario, a, b)
		}
	}
}

func TestReplTrialUnknownScenario(t *testing.T) {
	if _, err := RunReplTrial(ReplTrialConfig{Seed: 1, Scenario: "bogus"}); err == nil {
		t.Fatal("unknown scenario should error")
	}
}
