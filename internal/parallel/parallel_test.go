package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachIndexCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]int32, n)
		ForEachIndex(n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForEachIndexResultsVisibleAfterReturn(t *testing.T) {
	const n = 512
	out := make([]int, n)
	ForEachIndex(n, func(i int) { out[i] = i * i })
	var total int64
	ForEachIndex(n, func(i int) { atomic.AddInt64(&total, int64(out[i])) })
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i * i)
	}
	if total != want {
		t.Fatalf("sum %d, want %d", total, want)
	}
}
