// Package parallel provides the bounded worker-pool fan-out shared by the
// experiment tables and the Monte Carlo calibrator. Work items are
// identified by index and results are written to pre-sized slices by the
// caller, so output order — and therefore every reproduced table — is
// deterministic regardless of scheduling.
package parallel

import (
	"runtime"
	"sync"
)

// ForEachIndex runs fn(i) for i in [0, n) on at most GOMAXPROCS workers.
// It returns once every call has completed. fn must confine its writes to
// per-index data; ForEachIndex provides the necessary happens-before edge
// between those writes and the return.
func ForEachIndex(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
