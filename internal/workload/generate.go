package workload

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Generate produces the synthetic trace described by the model. The result
// is deterministic in the model (including its Seed).
func (m *Model) Generate() *trace.Trace {
	rng := rand.New(rand.NewSource(m.Seed))
	runtimeRng := rand.New(rand.NewSource(m.Seed ^ 0x5deece66d))
	t := &trace.Trace{Machine: m.Machine, Queue: m.Queue}
	if m.Jobs <= 0 {
		return t
	}
	submits := m.submitTimes(rng)
	offsets := m.segmentOffsets(rng, submits)
	buckets := m.bucketSequence(rng)

	// AR(1) innovations in standardized log space.
	phi := m.Phi
	innovScale := math.Sqrt(1 - phi*phi)
	z := rng.NormFloat64()

	episodeLifts := m.buildEpisodes(rng)

	// Optional Weibull body: same median and q95 as the calibrated
	// log-normal, dependence carried by the Gaussian copula (the AR(1) z
	// maps through Φ to a uniform, then through the Weibull quantile).
	var weibull stats.Weibull
	if m.WeibullBody {
		ratio := math.Exp(1.6449 * m.Sigma) // log-normal q95/median
		weibull = stats.WeibullFromMedianRatio(1, ratio)
	}

	surgeStart := m.Jobs
	if m.EndSurge > 0 {
		surgeStart = m.Jobs - int(float64(m.Jobs)*m.EndSurge)
	}

	t.Jobs = make([]trace.Job, 0, m.Jobs)
	for i := 0; i < m.Jobs; i++ {
		b := buckets[i]
		if i >= surgeStart && m.EndSurgeBucket >= 0 {
			b = trace.ProcBucket(m.EndSurgeBucket)
		}
		regime := m.regimeAt(submits[i])
		// Stretch the left (short-wait) tail: real logs pile up near-zero
		// waits, which BMBP ignores and a normal fit to log-waits absorbs
		// as extra variance.
		zs := z
		if zs < 0 && m.LeftScale > 1 {
			zs *= m.LeftScale
		}
		bucketOffset := m.BucketOffsets[b]
		if regime != nil {
			bucketOffset = regime.BucketOffsets[b]
		}
		var logWait float64
		if m.WeibullBody {
			u := stats.StdNormal.CDF(zs)
			body := weibull.Quantile(clampUnit(u))
			logWait = m.Mu + offsets[i] + bucketOffset + math.Log(body)
		} else {
			logWait = m.Mu + offsets[i] + bucketOffset + m.Sigma*zs
		}
		if episodeLifts[i] != 0 && (regime == nil || !regime.SuppressEpisodes) {
			logWait += episodeLifts[i]
		}
		if i >= surgeStart {
			logWait += m.EndSurgeOffset
		}
		wait := math.Round(math.Exp(logWait))
		if wait < 0 {
			wait = 0
		}
		// Cap at 10x the span: a wait longer than the whole trace is an
		// artifact of the unbounded log-normal tail, not of queue physics.
		if ceiling := float64(10 * m.Span); wait > ceiling {
			wait = ceiling
		}
		// Runtimes are not part of the calibration (BMBP never sees them)
		// but complete the record for SWF export and scheduler replay:
		// log-normal hours-scale executions, longer for wider jobs. They
		// draw from their own PRNG stream so adding them did not perturb
		// the calibrated wait sequences.
		runtime := math.Round(math.Exp(7.2 + 0.25*float64(b) + 1.1*runtimeRng.NormFloat64()))
		if runtime < 30 {
			runtime = 30
		}
		t.Jobs = append(t.Jobs, trace.Job{
			Submit:  submits[i],
			Wait:    wait,
			Procs:   m.procsFor(rng, b),
			Runtime: runtime,
		})
		z = phi*z + innovScale*rng.NormFloat64()
	}
	return t
}

// submitTimes draws arrival times over the span from an inhomogeneous
// Poisson process with daily and weekly rate cycles, sorted. The base
// interarrival mean is solved by fixed-point iteration over a single set
// of pre-drawn exponentials so the last arrival lands at the span's end —
// rescaling timestamps after the fact would smear the arrivals' alignment
// to calendar days and weeks.
func (m *Model) submitTimes(rng *rand.Rand) []int64 {
	exps := make([]float64, m.Jobs)
	for i := range exps {
		exps[i] = rng.ExpFloat64()
	}
	mean := float64(m.Span) / float64(m.Jobs)
	out := make([]int64, m.Jobs)
	gen := func(mean float64) int64 {
		tNow := float64(m.Start)
		for i, e := range exps {
			tNow += e * mean / m.rateAt(int64(tNow))
			out[i] = int64(tNow)
		}
		return out[m.Jobs-1] - m.Start
	}
	target := float64(m.Span) * 0.999
	for iter := 0; iter < 8; iter++ {
		total := gen(mean)
		if total <= 0 {
			break
		}
		ratio := float64(total) / target
		if ratio <= 1.0 && ratio > 0.98 {
			break
		}
		mean /= ratio
	}
	// Guard the span boundary exactly.
	limit := m.Start + m.Span
	for i := range out {
		if out[i] > limit {
			out[i] = limit
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rateAt returns the relative submission rate at Unix time ts: a sinusoid
// peaking mid-afternoon UTC scaled by Diurnal, and a weekend dip. Rates
// are relative to 1; submitTimes rescales the whole trace to its span
// afterward, so only the shape matters.
func (m *Model) rateAt(ts int64) float64 {
	if m.Diurnal <= 0 {
		return 1
	}
	secOfDay := float64(ts % 86400)
	// Peak at 15:00 UTC, trough at 03:00.
	day := 1 + m.Diurnal*math.Sin(2*math.Pi*(secOfDay-32400)/86400)
	// Unix epoch was a Thursday; days 2 and 3 of each week are Sat/Sun.
	dow := (ts/86400 + 4) % 7
	if dow == 6 || dow == 0 {
		day *= 0.55
	}
	if day < 0.05 {
		day = 0.05
	}
	return day
}

// segmentOffsets cuts the trace into Segments regimes at random boundaries
// and assigns each regime a log-space shift ~ N(0, ShiftSigma), centered so
// the job-weighted mean shift is zero (the marginal median is preserved).
func (m *Model) segmentOffsets(rng *rand.Rand, submits []int64) []float64 {
	n := len(submits)
	segs := m.Segments
	if segs < 1 {
		segs = 1
	}
	// Random interior boundaries by job index, at least 2% of the trace
	// apart so every regime is long enough to matter.
	bounds := make([]int, 0, segs+1)
	bounds = append(bounds, 0)
	minGap := n / 50
	if minGap < 1 {
		minGap = 1
	}
	for len(bounds) < segs {
		c := rng.Intn(n)
		okBound := c > minGap && n-c > minGap
		for _, b := range bounds {
			if abs(c-b) < minGap {
				okBound = false
				break
			}
		}
		if okBound {
			bounds = append(bounds, c)
		}
	}
	bounds = append(bounds, n)
	sort.Ints(bounds)

	// Shifts are two-point (±ShiftSigma): administrators flip policies, they
	// do not drift them, and a Gaussian draw too often produces a shift too
	// small to matter. The sign sequence mostly alternates, with occasional
	// repeats so the pattern is not perfectly predictable.
	shifts := make([]float64, len(bounds)-1)
	var weighted float64
	sign := 1.0
	if rng.Intn(2) == 0 {
		sign = -1
	}
	for i := range shifts {
		shifts[i] = sign * m.ShiftSigma
		sign = -sign
		// Occasionally skip the flip so regimes are not perfectly
		// alternating (still never zero-shift).
		if rng.Float64() < 0.25 {
			sign = -sign
		}
		weighted += shifts[i] * float64(bounds[i+1]-bounds[i])
	}
	weighted /= float64(n)
	out := make([]float64, n)
	for i := range shifts {
		for j := bounds[i]; j < bounds[i+1]; j++ {
			out[j] = shifts[i] - weighted
		}
	}
	return out
}

// bucketSequence draws each job's processor-count category. Categories are
// drawn i.i.d. from the model weights.
func (m *Model) bucketSequence(rng *rand.Rand) []trace.ProcBucket {
	cum := [4]float64{}
	acc := 0.0
	for i, w := range m.BucketWeights {
		acc += w
		cum[i] = acc
	}
	out := make([]trace.ProcBucket, m.Jobs)
	for i := range out {
		u := rng.Float64() * acc
		for b := 0; b < 4; b++ {
			if u <= cum[b] {
				out[i] = trace.ProcBucket(b)
				break
			}
		}
	}
	return out
}

// regimeAt returns the special regime covering submission time ts, if any.
func (m *Model) regimeAt(ts int64) *Regime {
	for i := range m.Regimes {
		if ts >= m.Regimes[i].From && ts < m.Regimes[i].To {
			return &m.Regimes[i]
		}
	}
	return nil
}

// procsFor draws a concrete processor count within the bucket. Small
// counts inside each range are favored (real workloads are dominated by
// powers of two and small requests).
func (m *Model) procsFor(rng *rand.Rand, b trace.ProcBucket) int {
	lo, hi := b.Range()
	if b == trace.Procs65Plus {
		hi = 256
	}
	// Geometric-ish tilt toward the low end of the range.
	span := hi - lo + 1
	u := rng.Float64()
	p := int(float64(span) * u * u)
	return lo + p
}

// buildEpisodes lays out congestion episodes deterministically: exactly
// EpisodeProb of the jobs fall inside episodes, split into bursts of mean
// length EpisodeMean at random non-adjacent positions. (A Markov chain
// would leave small traces with zero episodes for many seeds, destroying
// their tail calibration.) The returned slice holds the per-job log lift —
// zero outside episodes. Each episode draws its own level (EpisodeJitter),
// and the long congestion regimes of shifty queues ramp up over their
// first jobs: a queue backlog grows, it does not step, and that gradient
// is the only warning an adaptive predictor gets in a system where a
// job's wait is observable only after it ends.
func (m *Model) buildEpisodes(rng *rand.Rand) []float64 {
	lifts := make([]float64, m.Jobs)
	if m.EpisodeProb <= 0 || m.EpisodeMean <= 0 || m.Jobs == 0 {
		return lifts
	}
	total := int(math.Round(m.EpisodeProb * float64(m.Jobs)))
	if total < 1 {
		total = 1
	}
	entries := int(math.Round(float64(total) / m.EpisodeMean))
	if entries < 1 {
		entries = 1
	}
	// Split the episode mass into entry lengths (exponentially weighted,
	// normalized to the exact total).
	weights := make([]float64, entries)
	var wsum float64
	for i := range weights {
		weights[i] = 0.5 + rng.ExpFloat64()
		wsum += weights[i]
	}
	rampLen := 0
	if m.Character == Shifty {
		rampLen = int(m.EpisodeMean / 3)
		if rampLen > 40 {
			rampLen = 40
		}
	}
	remaining := total
	for e := 0; e < entries; e++ {
		length := int(math.Round(weights[e] / wsum * float64(total)))
		if e == entries-1 {
			length = remaining
		}
		if length < 1 {
			length = 1
		}
		if length > remaining {
			length = remaining
		}
		remaining -= length
		if length == 0 {
			continue
		}
		lift := m.EpisodeOffset
		if m.EpisodeJitter > 0 {
			lift += m.EpisodeJitter*rng.NormFloat64() - m.EpisodeJitter*m.EpisodeJitter/2
		}
		start := 0
		if m.Jobs > length {
			start = rng.Intn(m.Jobs - length)
		}
		for k := 0; k < length && start+k < m.Jobs; k++ {
			ramp := 1.0
			if rampLen > 0 && k < rampLen {
				ramp = float64(k+1) / float64(rampLen+1)
			}
			lifts[start+k] = lift * ramp
		}
		if remaining <= 0 {
			break
		}
	}
	return lifts
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// clampUnit keeps copula probabilities strictly inside (0, 1) so the
// Weibull quantile stays finite.
func clampUnit(u float64) float64 {
	const eps = 1e-9
	if u < eps {
		return eps
	}
	if u > 1-eps {
		return 1 - eps
	}
	return u
}

// Suite generates all 39 paper queues with seeds derived from baseSeed.
// Traces come back in Table 1 order.
func Suite(baseSeed int64) []*trace.Trace {
	out := make([]*trace.Trace, 0, len(trace.PaperQueues))
	for i := range trace.PaperQueues {
		p := &trace.PaperQueues[i]
		m := ModelFor(p, baseSeed+int64(i)*7919)
		out = append(out, m.Generate())
	}
	return out
}

// SuiteTable3 generates only the queues evaluated in the paper's Tables 3-4.
func SuiteTable3(baseSeed int64) []*trace.Trace {
	var out []*trace.Trace
	for i := range trace.PaperQueues {
		p := &trace.PaperQueues[i]
		if !p.InTable3() {
			continue
		}
		m := ModelFor(p, baseSeed+int64(i)*7919)
		out = append(out, m.Generate())
	}
	return out
}
