package workload

import (
	"math"
	"testing"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestFitLogParamsMatchesExactLogNormal(t *testing.T) {
	// When the targets come from a true log-normal, the fit recovers it.
	mu, sigma := math.Log(500.0), 1.2
	ln := stats.LogNormal{Mu: mu, Sigma: sigma}
	gotMu, gotSigma := FitLogParams(ln.Median(), ln.Mean(), math.Sqrt(ln.Variance()))
	if math.Abs(gotMu-mu) > 1e-9 {
		t.Errorf("mu = %g, want %g", gotMu, mu)
	}
	if math.Abs(gotSigma-sigma) > 1e-6 {
		t.Errorf("sigma = %g, want %g", gotSigma, sigma)
	}
}

func TestFitLogParamsBalancesInconsistentTargets(t *testing.T) {
	// Real Table 1 rows are inconsistent with any single log-normal; the
	// fit must land between the sigma implied by the mean and the sigma
	// implied by the std-dev.
	med, mean, std := 1795.0, 35886.0, 100255.0 // datastar/normal
	_, sigma := FitLogParams(med, mean, std)
	sigmaMean := math.Sqrt(2 * math.Log(mean/med))
	if sigma >= sigmaMean {
		t.Errorf("sigma %g should be below mean-implied %g", sigma, sigmaMean)
	}
	ln := stats.LogNormal{Mu: math.Log(med), Sigma: sigma}
	// Balanced: model mean under target, model std over target, with the
	// log-errors roughly cancelling.
	e1 := math.Log(ln.Mean() / mean)
	e2 := math.Log(math.Sqrt(ln.Variance()) / std)
	if math.Abs(e1+e2) > 1e-6 {
		t.Errorf("errors not balanced: %g + %g", e1, e2)
	}
}

func TestFitLogParamsDegenerateInputs(t *testing.T) {
	mu, sigma := FitLogParams(0, 0, 0)
	if mu != 0 {
		t.Errorf("mu = %g, want ln(1)=0", mu)
	}
	if sigma < 0.05 || sigma > 4.5 {
		t.Errorf("sigma = %g out of clamp range", sigma)
	}
	// mean < median clamps to median.
	mu2, _ := FitLogParams(100, 50, 10)
	if mu2 != math.Log(100) {
		t.Errorf("mu = %g", mu2)
	}
}

func TestCharacterOf(t *testing.T) {
	cases := []struct {
		machine, queue string
		want           Character
	}{
		{"llnl", "all", Clean},           // logn 1.00 / 1.00
		{"lanl", "short", Spiky},         // both fail
		{"datastar", "TGhigh", Shifty},   // NoTrim fails, Trim passes
		{"nersc", "debug", Moderate},     // 0.95 / 0.95
		{"datastar", "high32", Moderate}, // not in Table 3
	}
	for _, c := range cases {
		p := trace.FindPaperQueue(c.machine, c.queue)
		if got := CharacterOf(p); got != c.want {
			t.Errorf("CharacterOf(%s/%s) = %v, want %v", c.machine, c.queue, got, c.want)
		}
	}
	if CharacterOf(nil) != Moderate {
		t.Error("nil queue should be Moderate")
	}
	for _, c := range []Character{Clean, Moderate, Shifty, Spiky} {
		if c.String() == "unknown" {
			t.Errorf("missing String for %d", int(c))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := trace.FindPaperQueue("nersc", "debug")
	a := ModelFor(p, 123).Generate()
	b := ModelFor(p, 123).Generate()
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	c := ModelFor(p, 124).Generate()
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	p := trace.FindPaperQueue("sdsc", "high")
	tr := ModelFor(p, 9).Generate()
	if tr.Len() != p.JobCount {
		t.Fatalf("jobs = %d, want %d", tr.Len(), p.JobCount)
	}
	if tr.Machine != "sdsc" || tr.Queue != "high" {
		t.Error("identity")
	}
	first, last := tr.Span()
	if first < p.Start().Unix() || last > p.End().Unix() {
		t.Errorf("span [%d,%d] outside [%d,%d]", first, last, p.Start().Unix(), p.End().Unix())
	}
	// Submissions are nondecreasing.
	for i := 1; i < tr.Len(); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatal("submits not sorted")
		}
	}
	for _, j := range tr.Jobs {
		if j.Wait < 0 {
			t.Fatal("negative wait")
		}
		if j.Wait != math.Trunc(j.Wait) {
			t.Fatal("waits must be whole seconds like the source logs")
		}
		if j.Procs < 1 || j.Procs > 256 {
			t.Fatalf("procs = %d", j.Procs)
		}
	}
}

func TestCalibrationMedianAndMean(t *testing.T) {
	// Medians land within 4x and means within 5x of the Table 1 targets
	// for nearly all queues (lanl/short deliberately blows its mean with
	// the end-of-log surge).
	badMed, badMean := 0, 0
	for i := range trace.PaperQueues {
		p := &trace.PaperQueues[i]
		tr := ModelFor(p, 42+int64(i)*7919).Generate()
		s := tr.Summary()
		medT := math.Max(p.MedDelay, 1)
		med := math.Max(s.Median, 1)
		if r := med / medT; r > 4 || r < 0.25 {
			badMed++
			t.Logf("%s: median %g vs target %g", p.Name(), s.Median, p.MedDelay)
		}
		if p.Name() == "lanl/short" {
			continue
		}
		meanT := math.Max(p.AvgDelay, 1)
		if r := s.Mean / meanT; r > 5 || r < 0.2 {
			badMean++
			t.Logf("%s: mean %g vs target %g", p.Name(), s.Mean, p.AvgDelay)
		}
	}
	if badMed > 2 {
		t.Errorf("%d queues missed the median tolerance", badMed)
	}
	if badMean > 4 {
		t.Errorf("%d queues missed the mean tolerance", badMean)
	}
}

func TestHeavyTailsEverywhere(t *testing.T) {
	// The paper's Table 1 observation: median well below mean on
	// essentially every queue.
	for _, name := range [][2]string{{"datastar", "normal"}, {"nersc", "regular"}, {"tacc2", "normal"}} {
		p := trace.FindPaperQueue(name[0], name[1])
		s := ModelFor(p, 5).Generate().Summary()
		if s.Median >= s.Mean {
			t.Errorf("%s/%s: median %g >= mean %g", name[0], name[1], s.Median, s.Mean)
		}
		if s.StdDev <= s.Mean {
			t.Errorf("%s/%s: sd %g <= mean %g (tail too light)", name[0], name[1], s.StdDev, s.Mean)
		}
	}
}

func TestBucketThresholdMatchesPaperPresence(t *testing.T) {
	// Buckets the paper reports must have >= 1000 jobs; buckets it drops
	// must stay under 1000 (so the reproduced Tables 5-7 show dashes in
	// the same cells).
	for i := range trace.PaperQueues {
		p := &trace.PaperQueues[i]
		if p.Buckets == nil {
			continue
		}
		tr := ModelFor(p, 42+int64(i)*7919).Generate()
		present := map[trace.ProcBucket]bool{}
		for _, b := range p.Buckets {
			present[b] = true
		}
		for _, b := range trace.AllBuckets {
			n := tr.FilterProcs(b).Len()
			if present[b] && n < 1000 {
				t.Errorf("%s bucket %s: %d jobs, paper reports it", p.Name(), b.Label(), n)
			}
			if !present[b] && n >= 1000 {
				t.Errorf("%s bucket %s: %d jobs, paper drops it", p.Name(), b.Label(), n)
			}
		}
	}
}

func TestSuite(t *testing.T) {
	suite := Suite(42)
	if len(suite) != 39 {
		t.Fatalf("suite = %d traces", len(suite))
	}
	t3 := SuiteTable3(42)
	if len(t3) != 32 {
		t.Fatalf("table 3 suite = %d traces", len(t3))
	}
}

func TestEndSurgeOnLanlShort(t *testing.T) {
	p := trace.FindPaperQueue("lanl", "short")
	m := ModelFor(p, 1)
	if m.EndSurge == 0 || m.EndSurgeOffset == 0 {
		t.Fatal("lanl/short must carry the end-of-log surge")
	}
	tr := m.Generate()
	n := tr.Len()
	head := stats.Median(tr.Waits()[:n*8/10])
	tail := stats.Median(tr.Waits()[n*95/100:])
	if tail < head*50 {
		t.Errorf("end surge too weak: head median %g, tail median %g", head, tail)
	}
}

func TestFigure2RegimeInversion(t *testing.T) {
	p := trace.FindPaperQueue("datastar", "normal")
	tr := ModelFor(p, 42).Generate()
	jun := tr.Window(timeUnix(2004, 6, 1), timeUnix(2004, 7, 1))
	aug := tr.Window(timeUnix(2004, 8, 1), timeUnix(2004, 9, 1))
	junSmall := stats.Median(jun.FilterProcs(trace.Procs1to4).Waits())
	junBig := stats.Median(jun.FilterProcs(trace.Procs17to64).Waits())
	if junBig >= junSmall {
		t.Errorf("June: big-job median %g should undercut small-job %g", junBig, junSmall)
	}
	augSmall := stats.Median(aug.FilterProcs(trace.Procs1to4).Waits())
	augBig := stats.Median(aug.FilterProcs(trace.Procs17to64).Waits())
	if augBig <= augSmall {
		t.Errorf("August: normal order should hold (big %g, small %g)", augBig, augSmall)
	}
}

func TestMarginalsRejectLogNormalLikeRealLogs(t *testing.T) {
	// The paper's core negative finding presupposes that real queue-wait
	// marginals are not log-normal. The synthetic marginals must inherit
	// that: a Kolmogorov–Smirnov test against the best-fitting log-normal
	// rejects decisively on the contaminated queues.
	for _, name := range [][2]string{
		{"sdsc", "express"}, // spiky
		{"sdsc", "low"},     // shifty
		{"nersc", "debug"},  // moderate
	} {
		p := trace.FindPaperQueue(name[0], name[1])
		tr := ModelFor(p, 8).Generate()
		d, pv := stats.KSTestLogNormal(tr.Waits())
		if pv > 1e-4 {
			t.Errorf("%s/%s: log-normal not rejected (D=%.3f p=%.2g)", name[0], name[1], d, pv)
		}
	}
}

func TestDiurnalAndWeeklyArrivalCycles(t *testing.T) {
	p := trace.FindPaperQueue("nersc", "regular")
	tr := ModelFor(p, 6).Generate()
	var byHour [24]int
	var byDow [7]int
	for _, j := range tr.Jobs {
		byHour[(j.Submit%86400)/3600]++
		byDow[(j.Submit/86400+4)%7]++
	}
	// Afternoon busier than pre-dawn.
	afternoon := byHour[13] + byHour[14] + byHour[15]
	night := byHour[1] + byHour[2] + byHour[3]
	if float64(afternoon) < 1.5*float64(night) {
		t.Errorf("diurnal cycle missing: afternoon %d vs night %d", afternoon, night)
	}
	// Weekends quieter than midweek.
	weekend := byDow[0] + byDow[6]
	midweek := byDow[2] + byDow[3]
	if float64(weekend) > 0.85*float64(midweek) {
		t.Errorf("weekend dip missing: weekend %d vs midweek %d", weekend, midweek)
	}
	// Disabled cycle yields a roughly flat hour histogram.
	m := ModelFor(p, 6)
	m.Diurnal = 0
	flat := m.Generate()
	var fh [24]int
	for _, j := range flat.Jobs {
		fh[(j.Submit%86400)/3600]++
	}
	min, max := fh[0], fh[0]
	for _, v := range fh {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if float64(max) > 1.5*float64(min) {
		t.Errorf("flat process has hour skew: min %d max %d", min, max)
	}
}

func TestWeibullBodySensitivity(t *testing.T) {
	// Swap the wait-time body from log-normal to Weibull (same median and
	// q95, same dependence through the copula): BMBP is distribution-free
	// so its correctness must survive; the median must stay calibrated.
	p := trace.FindPaperQueue("sdsc", "low")
	m := ModelFor(p, 8)
	m.WeibullBody = true
	tr := m.Generate()
	s := tr.Summary()
	medT := math.Max(p.MedDelay, 1)
	if r := math.Max(s.Median, 1) / medT; r > 4 || r < 0.25 {
		t.Errorf("Weibull body broke calibration: median %g vs %g", s.Median, p.MedDelay)
	}
	res := sim.Run(tr, predictor.Standard(0.95, 0.95, 1), sim.Config{})
	if got := res[0].CorrectFraction(); got < 0.945 {
		t.Errorf("BMBP %.3f under the Weibull body", got)
	}
	// The body swap must actually change the data (different family).
	base := ModelFor(p, 8).Generate()
	same := 0
	for i := range tr.Jobs {
		if tr.Jobs[i].Wait == base.Jobs[i].Wait {
			same++
		}
	}
	if same > tr.Len()/2 {
		t.Error("Weibull body produced the same waits as log-normal")
	}
}

func TestDaysSinceEpoch(t *testing.T) {
	cases := []struct {
		y, m, d int
		want    int64
	}{
		{1970, 1, 1, 0},
		{1970, 1, 2, 1},
		{2000, 3, 1, 11017},
		{2004, 6, 1, 12570},
		{1995, 1, 1, 9131},
	}
	for _, c := range cases {
		if got := daysSinceEpoch(c.y, c.m, c.d); got != c.want {
			t.Errorf("daysSinceEpoch(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, got, c.want)
		}
	}
}
