package repl

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// MemTransport is the in-memory fault-injection transport: the
// replication-plane counterpart of wal.MemFS. It carries whole messages
// between endpoints in-process and can
//
//   - Partition: refuse new dials (the network is down for connection
//     establishment);
//   - Sever: break every live connection at once (both ends observe
//     errors, as a routing flap or middlebox reset would deliver);
//   - SetDelay: hold each message for a fixed latency before delivery;
//   - SetReorder: probabilistically swap adjacent queued messages, so the
//     protocol's prefix-continuity guard is exercised, not just trusted.
//
// crashprop drives power-cut-plus-partition trials through it with a
// seeded RNG, so a trial's fault schedule is reproducible.
type MemTransport struct {
	mu          sync.Mutex
	listeners   map[string]*memListener
	endpoints   []*memConn
	partitioned bool
	delay       time.Duration
	reorderProb float64
	rng         *rand.Rand

	severArmed     bool
	severRemaining int
}

// NewMemTransport returns a transport with no faults armed.
func NewMemTransport() *MemTransport {
	return &MemTransport{listeners: make(map[string]*memListener)}
}

// Partition makes every new Dial fail while on; existing connections are
// untouched (use Sever for those).
func (t *MemTransport) Partition(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned = on
}

// Sever breaks every live connection: pending undelivered messages are
// dropped and both ends' Send/Recv fail. Combine with Partition(true) to
// model a full network partition.
func (t *MemTransport) Sever() {
	t.mu.Lock()
	eps := append([]*memConn(nil), t.endpoints...)
	t.endpoints = t.endpoints[:0]
	t.mu.Unlock()
	for _, c := range eps {
		c.in.close(true)
		c.out.close(true)
	}
}

// SeverAfter arms a delayed sever: after n more message deliveries
// (across all connections, both directions), every live connection is
// broken as Sever does. Deliveries — not sends — are counted, so a trial
// can cut a transfer at a deterministic point in the conversation, e.g.
// mid-way through a chunked snapshot stream, regardless of how far ahead
// the sender has buffered.
func (t *MemTransport) SeverAfter(n int) {
	t.mu.Lock()
	t.severArmed, t.severRemaining = true, n
	t.mu.Unlock()
}

func (t *MemTransport) noteDelivery() {
	t.mu.Lock()
	if !t.severArmed {
		t.mu.Unlock()
		return
	}
	t.severRemaining--
	if t.severRemaining > 0 {
		t.mu.Unlock()
		return
	}
	t.severArmed = false
	t.mu.Unlock()
	t.Sever()
}

// SetDelay holds every subsequently sent message for d before delivery.
func (t *MemTransport) SetDelay(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.delay = d
}

// SetReorder makes each subsequent send swap with the previous queued
// message with probability p, drawn from rng (which the transport then
// owns — do not share it concurrently).
func (t *MemTransport) SetReorder(p float64, rng *rand.Rand) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reorderProb, t.rng = p, rng
}

func (t *MemTransport) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("memtransport: %s already listening", addr)
	}
	l := &memListener{t: t, addr: addr, pending: make(chan *memConn, 16), done: make(chan struct{})}
	t.listeners[addr] = l
	return l, nil
}

func (t *MemTransport) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	if t.partitioned {
		t.mu.Unlock()
		return nil, errors.New("memtransport: network partitioned")
	}
	l := t.listeners[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("memtransport: %s: connection refused", addr)
	}
	ab, ba := newMemQueue(), newMemQueue()
	client := &memConn{t: t, in: ba, out: ab}
	server := &memConn{t: t, in: ab, out: ba}
	t.mu.Lock()
	t.endpoints = append(t.endpoints, client, server)
	t.mu.Unlock()
	select {
	case l.pending <- server:
	case <-l.done:
		return nil, fmt.Errorf("memtransport: %s: connection refused", addr)
	}
	return client, nil
}

type memListener struct {
	t       *MemTransport
	addr    string
	pending chan *memConn
	done    chan struct{}
	once    sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, errors.New("memtransport: listener closed")
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		delete(l.t.listeners, l.addr)
		l.t.mu.Unlock()
	})
	return nil
}

type memConn struct {
	t   *MemTransport
	in  *memQueue
	out *memQueue
}

func (c *memConn) Send(b []byte) error {
	c.t.mu.Lock()
	delay := c.t.delay
	reorder := c.t.reorderProb > 0 && c.t.rng != nil && c.t.rng.Float64() < c.t.reorderProb
	c.t.mu.Unlock()
	return c.out.send(append([]byte(nil), b...), time.Now().Add(delay), reorder)
}

func (c *memConn) Recv() ([]byte, error) {
	b, err := c.in.recv()
	if err == nil {
		c.t.noteDelivery()
	}
	return b, err
}

func (c *memConn) Close() error {
	c.in.close(false)
	c.out.close(false)
	return nil
}

type memMsg struct {
	b  []byte
	at time.Time // earliest delivery time
}

type memQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []memMsg
	closed bool
}

func newMemQueue() *memQueue {
	q := &memQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *memQueue) send(b []byte, at time.Time, reorder bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("memtransport: connection severed")
	}
	q.msgs = append(q.msgs, memMsg{b: b, at: at})
	if reorder && len(q.msgs) >= 2 {
		n := len(q.msgs)
		q.msgs[n-1], q.msgs[n-2] = q.msgs[n-2], q.msgs[n-1]
	}
	q.cond.Broadcast()
	return nil
}

func (q *memQueue) recv() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.msgs) > 0 {
			if d := time.Until(q.msgs[0].at); d > 0 {
				// Delivery delay: wake ourselves when the head matures.
				timer := time.AfterFunc(d, q.cond.Broadcast)
				q.cond.Wait()
				timer.Stop()
				continue
			}
			m := q.msgs[0]
			q.msgs = q.msgs[1:]
			return m.b, nil
		}
		if q.closed {
			return nil, errors.New("memtransport: connection closed")
		}
		q.cond.Wait()
	}
}

// close shuts the queue down. drop=true (Sever) discards queued messages
// so they are lost in flight; drop=false (graceful Close) lets the
// receiver drain what was already sent.
func (q *memQueue) close(drop bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	if drop {
		q.msgs = nil
	}
	q.cond.Broadcast()
}
