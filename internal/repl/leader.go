package repl

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// Snapshotter produces the catch-up snapshot a leader sends to a
// follower whose cursor fell off the retained log: the full serving
// state plus the log sequence it covers.
type Snapshotter interface {
	ReplicaSnapshot() (coveredSeq uint64, blob []byte, err error)
}

// SnapshotStream is a chunked catch-up snapshot: a fixed chunk count
// captured at open time, rendered on demand. AppendChunk must be safe for
// concurrent use — several follower sessions catching up at once share
// one stream (one snapshot generation) and render chunks independently,
// each into its own buffer, so leader memory stays O(chunk) per follower
// rather than O(state).
type SnapshotStream interface {
	CoveredSeq() uint64
	Header() []byte
	Chunks() int
	AppendChunk(i int, dst []byte) ([]byte, error)
	Close()
}

// StreamSnapshotter is the chunked upgrade of Snapshotter. A leader whose
// app implements it streams catch-ups as msgSnapBegin/msgSnapChunk/
// msgSnapEnd; otherwise it falls back to the monolithic msgSnapshot.
type StreamSnapshotter interface {
	OpenReplicaSnapshotStream() (SnapshotStream, error)
}

// Leader errors. ErrFenced is permanent: a deposed leader never acks
// again. ErrCommitTimeout and ErrClosed are per-call.
var (
	ErrFenced        = errors.New("repl: leader fenced by a higher epoch")
	ErrCommitTimeout = errors.New("repl: commit wait timed out")
	ErrClosed        = errors.New("repl: leader closed")
)

// LeaderOptions configures a Leader. Epoch is mandatory and fixed for
// the leader's lifetime — a node claims a new epoch by constructing a
// new Leader, never by mutating one.
type LeaderOptions struct {
	// Epoch is this leadership term's fencing token.
	Epoch uint64
	// BatchMax caps records per shipped batch. Default 512.
	BatchMax int
	// HeartbeatEvery is how often an idle session pings its follower.
	// Default 500ms.
	HeartbeatEvery time.Duration
	// CommitTimeout bounds CommitWait. Default 5s.
	CommitTimeout time.Duration
	// Quorum is how many distinct follower acknowledgements a sequence
	// needs before CommitWait releases it: commit when the K-th highest
	// per-follower watermark covers the sequence. Default 1 (any
	// follower), the pre-quorum behaviour.
	Quorum int
	// WindowBatches and WindowBytes bound the per-session in-flight
	// window: how many sent-but-unacknowledged messages (batches, or
	// snapshot chunks during catch-up) a session keeps on the wire so
	// shipping overlaps follower apply. When either bound is reached the
	// session waits for acks — backpressure, not buffering. Defaults 32
	// and 1 MiB.
	WindowBatches int
	WindowBytes   int
	// OnFence runs once, when the leader first learns of a higher epoch.
	OnFence func(epoch uint64)
}

// Leader ships committed WAL records to every connected follower. Each
// follower gets its own session goroutine with a bounded in-flight
// window, all sessions at the same cursor share one pre-encoded frame
// buffer through the batch cache, and per-follower ack watermarks feed a
// sorted tracker whose K-th-highest value is the commit watermark
// CommitWait observes.
type Leader struct {
	wal  *wal.WAL
	app  Snapshotter
	sapp StreamSnapshotter // non-nil when app supports chunked streaming
	opt  LeaderOptions

	cache *batchCache

	// ackMu guards the commit state: the fence flag, the per-session
	// watermark tracker, and the published commit watermark. The fence
	// flag is always consulted before the watermark — see CommitWait.
	ackMu      sync.Mutex
	ackCond    *sync.Cond
	ackSeq     uint64 // K-th-highest follower watermark; monotone
	acks       ackTracker
	fenced     bool
	fenceEpoch uint64

	// fencedHint mirrors fenced for lock-free checks on session hot
	// paths; it is set after the authoritative flag.
	fencedHint atomic.Bool

	// wake is the current broadcast channel for "the durability watermark
	// advanced": the pump goroutine swaps in a fresh channel and closes
	// the old one, waking every idle session at once.
	wake atomic.Pointer[chan struct{}]

	mu     sync.Mutex
	ln     Listener
	conns  map[Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup

	// snapMu guards the shared snapshot generation: concurrent catch-ups
	// join the live stream instead of each capturing their own.
	snapMu  sync.Mutex
	snapGen *snapGen

	chunkBufs sync.Pool // *[]byte chunk render buffers

	followers  atomic.Int64
	batches    atomic.Uint64
	records    atomic.Uint64
	snapshots  atomic.Uint64
	heartbeats atomic.Uint64
	fences     atomic.Uint64
	shipBytes  atomic.Uint64
	snapChunks atomic.Uint64
	snapShared atomic.Uint64

	inflightMsgs  atomic.Int64
	inflightBytes atomic.Int64

	// snapInflight tracks snapshot chunk bytes on the wire (sent, not yet
	// snap-acked) across all sessions; snapInflightPeak records its high
	// water mark — the observable form of the O(chunk) memory claim.
	snapInflight     atomic.Int64
	snapInflightPeak atomic.Int64
}

// ackTracker keeps every connected session's acknowledged watermark in a
// sorted slice, so updating one follower's ack is a binary search plus a
// memmove — O(N) for N followers — and the K-th-highest watermark is an
// index from the top.
type ackTracker struct{ w []uint64 }

func (t *ackTracker) insert(v uint64) {
	i := sort.Search(len(t.w), func(i int) bool { return t.w[i] >= v })
	t.w = append(t.w, 0)
	copy(t.w[i+1:], t.w[i:])
	t.w[i] = v
}

func (t *ackTracker) remove(v uint64) {
	i := sort.Search(len(t.w), func(i int) bool { return t.w[i] >= v })
	if i < len(t.w) && t.w[i] == v {
		t.w = append(t.w[:i], t.w[i+1:]...)
	}
}

// kth returns the K-th highest watermark, or 0 when fewer than K
// followers are connected — below quorum, nothing commits.
func (t *ackTracker) kth(k int) uint64 {
	if k <= 0 {
		k = 1
	}
	if len(t.w) < k {
		return 0
	}
	return t.w[len(t.w)-k]
}

// NewLeader wires a leader to its WAL and snapshot source. Call Serve
// with a listener to start accepting followers.
func NewLeader(w *wal.WAL, app Snapshotter, opt LeaderOptions) *Leader {
	if opt.BatchMax <= 0 {
		opt.BatchMax = 512
	}
	if opt.HeartbeatEvery <= 0 {
		opt.HeartbeatEvery = 500 * time.Millisecond
	}
	if opt.CommitTimeout <= 0 {
		opt.CommitTimeout = 5 * time.Second
	}
	if opt.Quorum <= 0 {
		opt.Quorum = 1
	}
	if opt.WindowBatches <= 0 {
		opt.WindowBatches = 32
	}
	if opt.WindowBytes <= 0 {
		opt.WindowBytes = 1 << 20
	}
	l := &Leader{
		wal:   w,
		app:   app,
		opt:   opt,
		cache: newBatchCache(w),
		conns: make(map[Conn]struct{}),
		done:  make(chan struct{}),
	}
	l.sapp, _ = app.(StreamSnapshotter)
	l.ackCond = sync.NewCond(&l.ackMu)
	ch := make(chan struct{})
	l.wake.Store(&ch)
	notify := make(chan struct{}, 1)
	w.NotifySync(notify)
	l.wg.Add(1)
	go l.pump(notify)
	return l
}

// pump converts the WAL's sync notifications into close-broadcasts on
// the wake channel, so any number of idle sessions wake per sync without
// the WAL knowing about them.
func (l *Leader) pump(notify <-chan struct{}) {
	defer l.wg.Done()
	for {
		select {
		case <-l.done:
			return
		case <-notify:
			ch := make(chan struct{})
			old := l.wake.Swap(&ch)
			close(*old)
		}
	}
}

// Serve accepts followers until the listener fails (normally: until
// Close). Run it on its own goroutine.
func (l *Leader) Serve(ln Listener) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ln.Close()
		return
	}
	l.ln = ln
	l.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			c.Close()
			return
		}
		l.conns[c] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go func() {
			defer l.wg.Done()
			l.session(c)
		}()
	}
}

// Close stops accepting, severs every session, and waits for them.
func (l *Leader) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	ln := l.ln
	conns := make([]Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	close(l.done)
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	l.ackCond.Broadcast()
	l.wg.Wait()
	l.cache.close()
}

// CommitWait blocks until the quorum commit watermark — the K-th-highest
// per-follower acknowledged sequence — covers seq, the commit timeout
// elapses, or the leader is fenced or closed. The fence is checked before
// the watermark — the same discipline as the WAL group commit checking
// its segment's failed flag before the synced watermark — so a deposed
// leader returns ErrFenced even for sequences that were acknowledged
// before deposition.
func (l *Leader) CommitWait(seq uint64) error {
	deadline := time.Now().Add(l.opt.CommitTimeout)
	t := time.AfterFunc(l.opt.CommitTimeout, l.ackCond.Broadcast)
	defer t.Stop()
	l.ackMu.Lock()
	defer l.ackMu.Unlock()
	for {
		if l.fenced {
			return ErrFenced
		}
		if l.ackSeq >= seq {
			return nil
		}
		select {
		case <-l.done:
			return ErrClosed
		default:
		}
		if !time.Now().Before(deadline) {
			return ErrCommitTimeout
		}
		l.ackCond.Wait()
	}
}

// fence deposes the leader, once. Beyond refusing acks, the fence is
// propagated to every live session: the connections are closed before
// fence returns, so a deposed leader does not keep shipping batches or
// heartbeats while each follower individually discovers the new epoch.
func (l *Leader) fence(epoch uint64) {
	l.ackMu.Lock()
	already := l.fenced
	if !already {
		l.fenced = true
		l.fenceEpoch = epoch
	}
	l.ackMu.Unlock()
	if already {
		return
	}
	l.fencedHint.Store(true)
	l.fences.Add(1)
	l.ackCond.Broadcast()
	l.mu.Lock()
	conns := make([]Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if l.opt.OnFence != nil {
		l.opt.OnFence(epoch)
	}
}

// Epoch reports the leader's fencing token.
func (l *Leader) Epoch() uint64 { return l.opt.Epoch }

// Quorum reports the configured commit quorum K.
func (l *Leader) Quorum() int { return l.opt.Quorum }

// Fenced reports whether a higher epoch has deposed this leader.
func (l *Leader) Fenced() bool {
	l.ackMu.Lock()
	defer l.ackMu.Unlock()
	return l.fenced
}

// AckSeq reports the quorum commit watermark: the highest sequence
// acknowledged by at least K followers.
func (l *Leader) AckSeq() uint64 {
	l.ackMu.Lock()
	defer l.ackMu.Unlock()
	return l.ackSeq
}

// Followers reports currently connected follower sessions.
func (l *Leader) Followers() int64 { return l.followers.Load() }

// Cumulative counters and gauges for the metrics plane.
func (l *Leader) BatchesSent() uint64       { return l.batches.Load() }
func (l *Leader) RecordsShipped() uint64    { return l.records.Load() }
func (l *Leader) SnapshotsSent() uint64     { return l.snapshots.Load() }
func (l *Leader) HeartbeatsSent() uint64    { return l.heartbeats.Load() }
func (l *Leader) Fences() uint64            { return l.fences.Load() }
func (l *Leader) ShipBytes() uint64         { return l.shipBytes.Load() }
func (l *Leader) BatchCacheHits() uint64    { return l.cache.Hits() }
func (l *Leader) BatchCacheMisses() uint64  { return l.cache.Misses() }
func (l *Leader) SnapChunksSent() uint64    { return l.snapChunks.Load() }
func (l *Leader) SnapGenerationsShared() uint64 { return l.snapShared.Load() }

// InflightMessages and InflightBytes report the summed in-flight window
// depth across sessions: messages sent but not yet acknowledged.
func (l *Leader) InflightMessages() int64 { return l.inflightMsgs.Load() }
func (l *Leader) InflightBytes() int64    { return l.inflightBytes.Load() }

// SnapInflightPeakBytes reports the high-water mark of snapshot chunk
// bytes on the wire across all concurrent catch-ups — bounded by
// sessions × window, never by state size.
func (l *Leader) SnapInflightPeakBytes() int64 { return l.snapInflightPeak.Load() }

// session is the per-follower shipping state: the connection, the
// in-flight window, and the acknowledged watermark the quorum tracker
// holds for this follower.
type session struct {
	l *Leader
	c Conn

	sbuf []byte // message encode buffer; ship goroutine only

	ackCh chan struct{} // poked (cap 1) on any ack progress
	dead  chan struct{} // closed when the receive loop exits

	// acked is this follower's acknowledged watermark as tracked by the
	// quorum structure. Guarded by Leader.ackMu.
	acked  uint64
	joined bool

	// mu guards the in-flight window.
	mu          sync.Mutex
	pending     []pendingSend
	pendingBytes int
	ackHigh     uint64 // highest msgAck seen
	snapAckHigh int    // highest snapAck chunk index + 1 in this transfer
}

// pendingSend is one unacknowledged message in the window: a batch
// (seq > 0, drained by msgAck) or a snapshot chunk (chunk = index+1,
// drained by msgSnapAck).
type pendingSend struct {
	seq   uint64
	chunk int
	bytes int
}

func (s *session) sendMsg(m message) error {
	s.sbuf = encodeMessage(s.sbuf[:0], m)
	return s.c.Send(s.sbuf)
}

func (s *session) poke() {
	select {
	case s.ackCh <- struct{}{}:
	default:
	}
}

func (s *session) noteSent(p pendingSend) {
	s.mu.Lock()
	s.pending = append(s.pending, p)
	s.pendingBytes += p.bytes
	s.mu.Unlock()
	s.l.inflightMsgs.Add(1)
	s.l.inflightBytes.Add(int64(p.bytes))
}

// drainLocked pops window entries whose acknowledgement has arrived.
// Entries drain in send order, each against its own ack stream, so a
// reordered ack simply waits for the next one to cover it.
func (s *session) drainLocked() {
	for len(s.pending) > 0 {
		p := s.pending[0]
		if p.chunk != 0 {
			if p.chunk > s.snapAckHigh {
				return
			}
			s.l.snapInflight.Add(int64(-p.bytes))
		} else if p.seq > s.ackHigh {
			return
		}
		s.pending = s.pending[1:]
		s.pendingBytes -= p.bytes
		s.l.inflightMsgs.Add(-1)
		s.l.inflightBytes.Add(int64(-p.bytes))
	}
}

func (s *session) windowFull() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return false
	}
	return len(s.pending) >= s.l.opt.WindowBatches || s.pendingBytes >= s.l.opt.WindowBytes
}

func (s *session) windowEmpty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending) == 0
}

// waitAck blocks until ack progress, session death, or leader close.
func (s *session) waitAck() bool {
	select {
	case <-s.l.done:
		return false
	case <-s.dead:
		return false
	case <-s.ackCh:
		return true
	}
}

func (s *session) onAck(seq uint64) {
	l := s.l
	s.mu.Lock()
	if seq > s.ackHigh {
		s.ackHigh = seq
	}
	s.drainLocked()
	s.mu.Unlock()
	l.ackMu.Lock()
	if seq > s.acked && s.joined {
		l.acks.remove(s.acked)
		l.acks.insert(seq)
		s.acked = seq
		if k := l.acks.kth(l.opt.Quorum); k > l.ackSeq {
			l.ackSeq = k
		}
	}
	l.ackMu.Unlock()
	l.ackCond.Broadcast()
	s.poke()
}

func (s *session) onSnapAck(idx uint64) {
	s.mu.Lock()
	if n := int(idx) + 1; n > s.snapAckHigh {
		s.snapAckHigh = n
	}
	s.drainLocked()
	s.mu.Unlock()
	s.poke()
}

// recvLoop folds follower messages into session and leader state until
// the connection dies. Any message carrying a higher epoch fences the
// leader and kills the session.
func (s *session) recvLoop() {
	l := s.l
	defer close(s.dead)
	defer s.c.Close()
	for {
		b, err := s.c.Recv()
		if err != nil {
			return
		}
		m, err := decodeMessage(b)
		if err != nil {
			return
		}
		if m.epoch > l.opt.Epoch {
			l.fence(m.epoch)
			return
		}
		switch m.kind {
		case msgAck:
			s.onAck(m.arg)
		case msgSnapAck:
			s.onSnapAck(m.arg)
		case msgReject:
			return
		}
	}
}

func (l *Leader) joinQuorum(s *session) {
	l.ackMu.Lock()
	s.joined = true
	l.acks.insert(s.acked)
	l.ackMu.Unlock()
}

func (l *Leader) leaveQuorum(s *session) {
	l.ackMu.Lock()
	if s.joined {
		l.acks.remove(s.acked)
		s.joined = false
	}
	l.ackMu.Unlock()
	// No recompute: removing a watermark can only shrink the quorum, and
	// the published commit watermark is monotone by design.
}

// session drives one follower: handshake, then ship cached batches
// through the in-flight window (or a chunked snapshot when the follower's
// cursor fell off the log), heartbeating when idle, while the receive
// loop folds acks into the window and the quorum tracker.
func (l *Leader) session(c Conn) {
	defer func() {
		c.Close()
		l.mu.Lock()
		delete(l.conns, c)
		l.mu.Unlock()
	}()

	b, err := c.Recv()
	if err != nil {
		return
	}
	m, err := decodeMessage(b)
	if err != nil || m.kind != msgHello {
		return
	}
	s := &session{l: l, c: c, ackCh: make(chan struct{}, 1), dead: make(chan struct{})}
	if m.epoch > l.opt.Epoch {
		l.fence(m.epoch)
		s.sendMsg(message{kind: msgReject, epoch: l.opt.Epoch})
		return
	}
	if l.fencedHint.Load() {
		// Already deposed: refuse rather than ship a deposed term's log.
		s.sendMsg(message{kind: msgReject, epoch: l.opt.Epoch})
		return
	}
	// A follower whose last contact was an older epoch may hold records
	// the old leader appended but never replicated — past the acked
	// prefix, so consistency allows them, but its anchors could then
	// dedup away this term's records. Reset it with a snapshot.
	needSnap := m.epoch != l.opt.Epoch
	cursor := m.arg

	l.followers.Add(1)
	defer l.followers.Add(-1)

	l.joinQuorum(s)
	defer l.leaveQuorum(s)

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		s.recvLoop()
	}()
	defer func() {
		// Unwind the window gauges for whatever never got acknowledged.
		s.mu.Lock()
		for _, p := range s.pending {
			if p.chunk != 0 {
				l.snapInflight.Add(int64(-p.bytes))
			}
			l.inflightMsgs.Add(-1)
			l.inflightBytes.Add(int64(-p.bytes))
		}
		s.pending = nil
		s.pendingBytes = 0
		s.mu.Unlock()
	}()

	if needSnap {
		if !l.shipSnapshot(s, &cursor) {
			return
		}
	}
	hb := l.opt.HeartbeatEvery
	timer := time.NewTimer(hb)
	defer timer.Stop()
	for {
		if l.fencedHint.Load() {
			return
		}
		select {
		case <-l.done:
			return
		case <-s.dead:
			return
		default:
		}
		if s.windowFull() {
			if !s.waitAck() {
				return
			}
			continue
		}
		// Load the wake channel before reading: a sync that lands between
		// the read and the wait still wakes us.
		wake := *l.wake.Load()
		if upto := l.wal.SyncedSeq(); upto > cursor {
			e, gap, err := l.cache.get(cursor, upto, l.opt.BatchMax)
			if err != nil {
				return
			}
			if gap {
				if !l.shipSnapshot(s, &cursor) {
					return
				}
				continue
			}
			if e != nil {
				sendErr := s.sendMsg(message{kind: msgBatch, epoch: l.opt.Epoch, arg: e.prevSeq, payload: e.frames})
				last, count, nbytes := e.lastSeq, e.count, len(e.frames)
				l.cache.release(e)
				if sendErr != nil {
					return
				}
				s.noteSent(pendingSend{seq: last, bytes: nbytes})
				l.batches.Add(1)
				l.records.Add(uint64(count))
				l.shipBytes.Add(uint64(nbytes))
				cursor = last
				continue
			}
			// Nothing readable despite the watermark: raced a sync; wait.
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(hb)
		select {
		case <-l.done:
			return
		case <-s.dead:
			return
		case <-wake:
		case <-s.ackCh:
		case <-timer.C:
			if s.sendMsg(message{kind: msgHeartbeat, epoch: l.opt.Epoch, arg: l.wal.SyncedSeq()}) != nil {
				return
			}
			l.heartbeats.Add(1)
		}
	}
}

// shipSnapshot sends a catch-up snapshot — chunked when the app supports
// streaming, monolithic otherwise — and repositions the cursor at its
// covered sequence. It reports false when the session is over.
func (l *Leader) shipSnapshot(s *session, cursor *uint64) bool {
	// Drain the window first: chunk indices restart per transfer, so the
	// window must not mix a previous transfer's entries with this one's.
	for !s.windowEmpty() {
		if !s.waitAck() {
			return false
		}
	}
	if l.fencedHint.Load() {
		return false
	}
	if l.sapp != nil {
		return l.shipChunkedSnapshot(s, cursor)
	}
	covered, blob, err := l.app.ReplicaSnapshot()
	if err != nil {
		return false
	}
	if s.sendMsg(message{kind: msgSnapshot, epoch: l.opt.Epoch, arg: covered, payload: blob}) != nil {
		return false
	}
	l.snapshots.Add(1)
	l.shipBytes.Add(uint64(len(blob)))
	*cursor = covered
	return true
}

// shipChunkedSnapshot streams one snapshot generation to the follower:
// begin, CRC-guarded chunks through the in-flight window, end. Each chunk
// is rendered into a pooled buffer on demand, so this session's snapshot
// memory is O(chunk); the generation itself is shared with any other
// session catching up concurrently.
func (l *Leader) shipChunkedSnapshot(s *session, cursor *uint64) bool {
	ss, release, err := l.acquireSnapGen()
	if err != nil {
		return false
	}
	defer release()
	covered := ss.CoveredSeq()
	if s.sendMsg(message{kind: msgSnapBegin, epoch: l.opt.Epoch, arg: covered, payload: ss.Header()}) != nil {
		return false
	}
	s.mu.Lock()
	s.snapAckHigh = 0
	s.mu.Unlock()
	var buf []byte
	if p, ok := l.chunkBufs.Get().(*[]byte); ok {
		buf = *p
	}
	defer func() {
		buf = buf[:0]
		l.chunkBufs.Put(&buf)
	}()
	n := ss.Chunks()
	for i := 0; i < n; i++ {
		for s.windowFull() {
			if !s.waitAck() {
				return false
			}
		}
		if l.fencedHint.Load() {
			return false
		}
		buf = append(buf[:0], 0, 0, 0, 0)
		if buf, err = ss.AppendChunk(i, buf); err != nil {
			return false
		}
		binary.LittleEndian.PutUint32(buf[:4], crc32.Checksum(buf[4:], tcpCastagnoli))
		if s.sendMsg(message{kind: msgSnapChunk, epoch: l.opt.Epoch, arg: uint64(i), payload: buf}) != nil {
			return false
		}
		s.noteSent(pendingSend{chunk: i + 1, bytes: len(buf)})
		if cur := l.snapInflight.Add(int64(len(buf))); cur > l.snapInflightPeak.Load() {
			for {
				peak := l.snapInflightPeak.Load()
				if cur <= peak || l.snapInflightPeak.CompareAndSwap(peak, cur) {
					break
				}
			}
		}
		l.snapChunks.Add(1)
		l.shipBytes.Add(uint64(len(buf)))
	}
	if s.sendMsg(message{kind: msgSnapEnd, epoch: l.opt.Epoch, arg: covered}) != nil {
		return false
	}
	l.snapshots.Add(1)
	*cursor = covered
	return true
}

// snapGen is one shared snapshot generation: the stream plus a refcount.
// It lives while at least one catch-up is mid-transfer; late joiners
// reuse it instead of capturing their own.
type snapGen struct {
	ss   SnapshotStream
	refs int
}

func (l *Leader) acquireSnapGen() (SnapshotStream, func(), error) {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	if g := l.snapGen; g != nil {
		g.refs++
		l.snapShared.Add(1)
		return g.ss, func() { l.releaseSnapGen(g) }, nil
	}
	ss, err := l.sapp.OpenReplicaSnapshotStream()
	if err != nil {
		return nil, nil, err
	}
	g := &snapGen{ss: ss, refs: 1}
	l.snapGen = g
	return ss, func() { l.releaseSnapGen(g) }, nil
}

func (l *Leader) releaseSnapGen(g *snapGen) {
	l.snapMu.Lock()
	g.refs--
	last := g.refs == 0
	if last && l.snapGen == g {
		l.snapGen = nil
	}
	l.snapMu.Unlock()
	if last {
		g.ss.Close()
	}
}
