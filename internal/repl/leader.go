package repl

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// Snapshotter produces the catch-up snapshot a leader sends to a
// follower whose cursor fell off the retained log: the full serving
// state plus the log sequence it covers.
type Snapshotter interface {
	ReplicaSnapshot() (coveredSeq uint64, blob []byte, err error)
}

// Leader errors. ErrFenced is permanent: a deposed leader never acks
// again. ErrCommitTimeout and ErrClosed are per-call.
var (
	ErrFenced        = errors.New("repl: leader fenced by a higher epoch")
	ErrCommitTimeout = errors.New("repl: commit wait timed out")
	ErrClosed        = errors.New("repl: leader closed")
)

// LeaderOptions configures a Leader. Epoch is mandatory and fixed for
// the leader's lifetime — a node claims a new epoch by constructing a
// new Leader, never by mutating one.
type LeaderOptions struct {
	// Epoch is this leadership term's fencing token.
	Epoch uint64
	// BatchMax caps records per shipped batch. Default 512.
	BatchMax int
	// HeartbeatEvery is how often an idle session pings its follower.
	// Default 500ms.
	HeartbeatEvery time.Duration
	// CommitTimeout bounds CommitWait. Default 5s.
	CommitTimeout time.Duration
	// OnFence runs once, when the leader first learns of a higher epoch.
	OnFence func(epoch uint64)
}

// Leader ships committed WAL records to every connected follower. Each
// follower gets its own session goroutine tailing the log independently,
// so a slow follower never stalls a fast one; acks from any follower
// advance the shared ack watermark that CommitWait observes.
type Leader struct {
	wal *wal.WAL
	app Snapshotter
	opt LeaderOptions

	// ackMu guards the commit state. The fence flag is always consulted
	// before the watermark — see CommitWait.
	ackMu      sync.Mutex
	ackCond    *sync.Cond
	ackSeq     uint64
	fenced     bool
	fenceEpoch uint64

	// wake is the current broadcast channel for "the durability watermark
	// advanced": the pump goroutine swaps in a fresh channel and closes
	// the old one, waking every idle session at once.
	wake atomic.Pointer[chan struct{}]

	mu     sync.Mutex
	ln     Listener
	conns  map[Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup

	followers  atomic.Int64
	batches    atomic.Uint64
	records    atomic.Uint64
	snapshots  atomic.Uint64
	heartbeats atomic.Uint64
	fences     atomic.Uint64
}

// NewLeader wires a leader to its WAL and snapshot source. Call Serve
// with a listener to start accepting followers.
func NewLeader(w *wal.WAL, app Snapshotter, opt LeaderOptions) *Leader {
	if opt.BatchMax <= 0 {
		opt.BatchMax = 512
	}
	if opt.HeartbeatEvery <= 0 {
		opt.HeartbeatEvery = 500 * time.Millisecond
	}
	if opt.CommitTimeout <= 0 {
		opt.CommitTimeout = 5 * time.Second
	}
	l := &Leader{
		wal:   w,
		app:   app,
		opt:   opt,
		conns: make(map[Conn]struct{}),
		done:  make(chan struct{}),
	}
	l.ackCond = sync.NewCond(&l.ackMu)
	ch := make(chan struct{})
	l.wake.Store(&ch)
	notify := make(chan struct{}, 1)
	w.NotifySync(notify)
	l.wg.Add(1)
	go l.pump(notify)
	return l
}

// pump converts the WAL's sync notifications into close-broadcasts on
// the wake channel, so any number of idle sessions wake per sync without
// the WAL knowing about them.
func (l *Leader) pump(notify <-chan struct{}) {
	defer l.wg.Done()
	for {
		select {
		case <-l.done:
			return
		case <-notify:
			ch := make(chan struct{})
			old := l.wake.Swap(&ch)
			close(*old)
		}
	}
}

// Serve accepts followers until the listener fails (normally: until
// Close). Run it on its own goroutine.
func (l *Leader) Serve(ln Listener) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ln.Close()
		return
	}
	l.ln = ln
	l.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			c.Close()
			return
		}
		l.conns[c] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go func() {
			defer l.wg.Done()
			l.session(c)
		}()
	}
}

// Close stops accepting, severs every session, and waits for them.
func (l *Leader) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	ln := l.ln
	conns := make([]Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	close(l.done)
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	l.ackCond.Broadcast()
	l.wg.Wait()
}

// CommitWait blocks until some follower has acknowledged applying seq,
// the commit timeout elapses, or the leader is fenced or closed. The
// fence is checked before the ack watermark — the same discipline as the
// WAL group commit checking its segment's failed flag before the synced
// watermark — so a deposed leader returns ErrFenced even for sequences
// that were acknowledged before deposition.
func (l *Leader) CommitWait(seq uint64) error {
	deadline := time.Now().Add(l.opt.CommitTimeout)
	t := time.AfterFunc(l.opt.CommitTimeout, l.ackCond.Broadcast)
	defer t.Stop()
	l.ackMu.Lock()
	defer l.ackMu.Unlock()
	for {
		if l.fenced {
			return ErrFenced
		}
		if l.ackSeq >= seq {
			return nil
		}
		select {
		case <-l.done:
			return ErrClosed
		default:
		}
		if !time.Now().Before(deadline) {
			return ErrCommitTimeout
		}
		l.ackCond.Wait()
	}
}

// fence deposes the leader, once.
func (l *Leader) fence(epoch uint64) {
	l.ackMu.Lock()
	already := l.fenced
	if !already {
		l.fenced = true
		l.fenceEpoch = epoch
	}
	l.ackMu.Unlock()
	if already {
		return
	}
	l.fences.Add(1)
	l.ackCond.Broadcast()
	if l.opt.OnFence != nil {
		l.opt.OnFence(epoch)
	}
}

func (l *Leader) advanceAck(seq uint64) {
	l.ackMu.Lock()
	if seq > l.ackSeq {
		l.ackSeq = seq
	}
	l.ackMu.Unlock()
	l.ackCond.Broadcast()
}

// Epoch reports the leader's fencing token.
func (l *Leader) Epoch() uint64 { return l.opt.Epoch }

// Fenced reports whether a higher epoch has deposed this leader.
func (l *Leader) Fenced() bool {
	l.ackMu.Lock()
	defer l.ackMu.Unlock()
	return l.fenced
}

// AckSeq reports the highest follower-acknowledged sequence.
func (l *Leader) AckSeq() uint64 {
	l.ackMu.Lock()
	defer l.ackMu.Unlock()
	return l.ackSeq
}

// Followers reports currently connected follower sessions.
func (l *Leader) Followers() int64 { return l.followers.Load() }

// BatchesSent, RecordsShipped, SnapshotsSent, HeartbeatsSent, and Fences
// are cumulative counters for the metrics plane.
func (l *Leader) BatchesSent() uint64    { return l.batches.Load() }
func (l *Leader) RecordsShipped() uint64 { return l.records.Load() }
func (l *Leader) SnapshotsSent() uint64  { return l.snapshots.Load() }
func (l *Leader) HeartbeatsSent() uint64 { return l.heartbeats.Load() }
func (l *Leader) Fences() uint64         { return l.fences.Load() }

func (l *Leader) send(c Conn, buf []byte, m message) ([]byte, error) {
	buf = encodeMessage(buf[:0], m)
	return buf, c.Send(buf)
}

// session drives one follower: handshake, then ship batches (or a
// snapshot when the follower's cursor fell off the log), heartbeating
// when idle, while a receive loop folds acks into the commit watermark.
func (l *Leader) session(c Conn) {
	defer func() {
		c.Close()
		l.mu.Lock()
		delete(l.conns, c)
		l.mu.Unlock()
	}()

	b, err := c.Recv()
	if err != nil {
		return
	}
	m, err := decodeMessage(b)
	if err != nil || m.kind != msgHello {
		return
	}
	var sbuf []byte
	if m.epoch > l.opt.Epoch {
		l.fence(m.epoch)
		l.send(c, sbuf, message{kind: msgReject, epoch: l.opt.Epoch})
		return
	}
	// A follower whose last contact was an older epoch may hold records
	// the old leader appended but never replicated — past the acked
	// prefix, so consistency allows them, but its anchors could then
	// dedup away this term's records. Reset it with a snapshot.
	needSnap := m.epoch != l.opt.Epoch
	afterSeq := m.arg

	l.followers.Add(1)
	defer l.followers.Add(-1)

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.recvLoop(c)
	}()

	tail := l.wal.OpenTail(afterSeq)
	defer func() { tail.Close() }()
	if needSnap {
		if tail, sbuf = l.sendSnapshot(c, tail, sbuf); tail == nil {
			return
		}
	}
	hb := l.opt.HeartbeatEvery
	timer := time.NewTimer(hb)
	defer timer.Stop()
	var frames []byte
	for {
		select {
		case <-l.done:
			return
		default:
		}
		// Load the wake channel before reading: a sync that lands between
		// the read and the wait still wakes us.
		wake := *l.wake.Load()
		prev := tail.AfterSeq()
		upto := l.wal.SyncedSeq()
		recs, gap, err := tail.Read(upto, l.opt.BatchMax)
		if err != nil {
			return
		}
		if len(recs) == 0 && !gap && tail.AfterSeq() < upto {
			// Durable records the cursor needs are not readable from the
			// log — compacted away before this follower got them (the
			// tail reader itself only notices once a later frame appears).
			gap = true
		}
		if gap {
			if tail, sbuf = l.sendSnapshot(c, tail, sbuf); tail == nil {
				return
			}
			continue
		}
		if len(recs) > 0 {
			frames = wal.EncodeFrames(frames[:0], recs)
			if sbuf, err = l.send(c, sbuf, message{kind: msgBatch, epoch: l.opt.Epoch, arg: prev, payload: frames}); err != nil {
				return
			}
			l.batches.Add(1)
			l.records.Add(uint64(len(recs)))
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(hb)
		select {
		case <-l.done:
			return
		case <-wake:
		case <-timer.C:
			if sbuf, err = l.send(c, sbuf, message{kind: msgHeartbeat, epoch: l.opt.Epoch, arg: l.wal.SyncedSeq()}); err != nil {
				return
			}
			l.heartbeats.Add(1)
		}
	}
}

// sendSnapshot ships a full-state snapshot and returns a fresh tail
// positioned at its covered sequence. A nil tail means the session is
// over (snapshot or send failed); the passed-in tail is always closed.
func (l *Leader) sendSnapshot(c Conn, tail *wal.TailReader, sbuf []byte) (*wal.TailReader, []byte) {
	tail.Close()
	covered, blob, err := l.app.ReplicaSnapshot()
	if err != nil {
		return nil, sbuf
	}
	if sbuf, err = l.send(c, sbuf, message{kind: msgSnapshot, epoch: l.opt.Epoch, arg: covered, payload: blob}); err != nil {
		return nil, sbuf
	}
	l.snapshots.Add(1)
	return l.wal.OpenTail(covered), sbuf
}

// recvLoop folds follower messages into leader state until the
// connection dies. Any message carrying a higher epoch fences the
// leader and kills the session.
func (l *Leader) recvLoop(c Conn) {
	defer c.Close()
	for {
		b, err := c.Recv()
		if err != nil {
			return
		}
		m, err := decodeMessage(b)
		if err != nil {
			return
		}
		if m.epoch > l.opt.Epoch {
			l.fence(m.epoch)
			return
		}
		switch m.kind {
		case msgAck:
			l.advanceAck(m.arg)
		case msgReject:
			return
		}
	}
}
