package repl

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

// benchApp is the cheapest possible ReplicaApp: it tracks the applied
// watermark and discards records, so the benchmark measures the shipping
// pipeline (tail read, framing, transport, ack) rather than forecast
// recomputation — qbets has its own apply-cost benchmarks.
type benchApp struct{ applied atomic.Uint64 }

func (a *benchApp) ReplicaAppliedSeq() uint64 { return a.applied.Load() }

func (a *benchApp) ApplyReplicated(prevSeq uint64, recs []wal.Record) error {
	if prevSeq > a.applied.Load() {
		return fmt.Errorf("gap: batch extends %d past applied %d", prevSeq, a.applied.Load())
	}
	if last := recs[len(recs)-1].Seq; last > a.applied.Load() {
		a.applied.Store(last)
	}
	return nil
}

func (a *benchApp) InstallReplicaSnapshot(coveredSeq uint64, blob []byte) error {
	a.applied.Store(coveredSeq)
	return nil
}

type benchSnap struct{ app *benchApp }

func (s benchSnap) ReplicaSnapshot() (uint64, []byte, error) {
	return s.app.applied.Load(), []byte("{}"), nil
}

// BenchmarkShipThroughput measures end-to-end replication throughput over
// the in-memory transport: records appended to a MemFS WAL, tailed and
// batch-framed by the leader, applied and acked by one follower. The
// custom metric is records/s at the follower's applied watermark.
func BenchmarkShipThroughput(b *testing.B) {
	fs := wal.NewMemFS()
	w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Replay(func(wal.Record) {}); err != nil {
		b.Fatal(err)
	}

	app := &benchApp{}
	tr := NewMemTransport()
	ldr := NewLeader(w, benchSnap{app}, LeaderOptions{Epoch: 1})
	defer ldr.Close()
	ln, err := tr.Listen("leader")
	if err != nil {
		b.Fatal(err)
	}
	go ldr.Serve(ln)
	fol, err := NewFollower(app, FollowerOptions{Addr: "leader", Transport: tr})
	if err != nil {
		b.Fatal(err)
	}
	defer fol.Close()
	go fol.Run()

	deadline := time.Now().Add(10 * time.Second)
	for !fol.Connected() {
		if time.Now().After(deadline) {
			b.Fatal("follower never connected")
		}
		time.Sleep(time.Millisecond)
	}

	const chunk = 256
	recs := make([]wal.Entry, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	appended := uint64(0)
	for n := 0; n < b.N; n += chunk {
		m := chunk
		if rest := b.N - n; rest < m {
			m = rest
		}
		for i := 0; i < m; i++ {
			recs[i] = wal.Entry{Key: "normal", Wait: float64(10 + i)}
		}
		if _, err := w.AppendBatch(recs[:m]); err != nil {
			b.Fatal(err)
		}
		appended += uint64(m)
	}
	deadline = time.Now().Add(30 * time.Second)
	for app.applied.Load() < appended {
		if time.Now().After(deadline) {
			b.Fatalf("follower applied %d of %d", app.applied.Load(), appended)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	b.ReportMetric(float64(appended)/elapsed, "records/s")
}
