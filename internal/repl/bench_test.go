package repl

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

// benchApp is the cheapest possible ReplicaApp: it tracks the applied
// watermark and discards records, so the benchmark measures the shipping
// pipeline (tail read, framing, transport, ack) rather than forecast
// recomputation — qbets has its own apply-cost benchmarks.
type benchApp struct{ applied atomic.Uint64 }

func (a *benchApp) ReplicaAppliedSeq() uint64 { return a.applied.Load() }

func (a *benchApp) ApplyReplicated(prevSeq uint64, recs []wal.Record) error {
	if prevSeq > a.applied.Load() {
		return fmt.Errorf("gap: batch extends %d past applied %d", prevSeq, a.applied.Load())
	}
	if last := recs[len(recs)-1].Seq; last > a.applied.Load() {
		a.applied.Store(last)
	}
	return nil
}

func (a *benchApp) InstallReplicaSnapshot(coveredSeq uint64, blob []byte) error {
	a.applied.Store(coveredSeq)
	return nil
}

type benchSnap struct{ app *benchApp }

func (s benchSnap) ReplicaSnapshot() (uint64, []byte, error) {
	return s.app.applied.Load(), []byte("{}"), nil
}

// BenchmarkShipThroughput measures end-to-end replication throughput over
// the in-memory transport across a fan-out matrix: records appended to a
// MemFS WAL, tailed and batch-framed once by the leader, shipped to F
// followers, applied and acked by each. The custom metric is aggregate
// records/s — records delivered across all followers — so frame-once/
// ship-many shows up as scaling with F rather than a flat line.
func BenchmarkShipThroughput(b *testing.B) {
	for _, followers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("followers=%d", followers), func(b *testing.B) {
			benchShipThroughput(b, followers)
		})
	}
}

func benchShipThroughput(b *testing.B, followers int) {
	fs := wal.NewMemFS()
	w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Replay(func(wal.Record) {}); err != nil {
		b.Fatal(err)
	}

	tr := NewMemTransport()
	snapApp := &benchApp{}
	ldr := NewLeader(w, benchSnap{snapApp}, LeaderOptions{Epoch: 1})
	defer ldr.Close()
	ln, err := tr.Listen("leader")
	if err != nil {
		b.Fatal(err)
	}
	go ldr.Serve(ln)

	apps := make([]*benchApp, followers)
	for i := range apps {
		apps[i] = &benchApp{}
		fol, err := NewFollower(apps[i], FollowerOptions{Addr: "leader", Transport: tr})
		if err != nil {
			b.Fatal(err)
		}
		defer fol.Close()
		go fol.Run()
		deadline := time.Now().Add(10 * time.Second)
		for !fol.Connected() {
			if time.Now().After(deadline) {
				b.Fatalf("follower %d never connected", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	const chunk = 256
	recs := make([]wal.Entry, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	appended := uint64(0)
	for n := 0; n < b.N; n += chunk {
		m := chunk
		if rest := b.N - n; rest < m {
			m = rest
		}
		for i := 0; i < m; i++ {
			recs[i] = wal.Entry{Key: "normal", Wait: float64(10 + i)}
		}
		if _, err := w.AppendBatch(recs[:m]); err != nil {
			b.Fatal(err)
		}
		appended += uint64(m)
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, app := range apps {
		for app.applied.Load() < appended {
			if time.Now().After(deadline) {
				b.Fatalf("follower applied %d of %d", app.applied.Load(), appended)
			}
			time.Sleep(time.Millisecond)
		}
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	b.ReportMetric(float64(appended*uint64(followers))/elapsed, "records/s")
	b.ReportMetric(float64(ldr.BatchCacheHits()), "cache-hits")
	b.ReportMetric(float64(ldr.BatchCacheMisses()), "cache-misses")
}

// BenchmarkSnapshotCatchup measures chunked snapshot catch-up: each
// iteration connects a fresh follower that must install a 128-chunk,
// ~4 MiB snapshot (rendered, CRC-framed, windowed, acked) before it is
// caught up. The custom metric is snapshot bytes per second of transfer.
func BenchmarkSnapshotCatchup(b *testing.B) {
	fs := wal.NewMemFS()
	w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Replay(func(wal.Record) {}); err != nil {
		b.Fatal(err)
	}
	if _, err := w.Append("q", 1, 1); err != nil {
		b.Fatal(err)
	}

	const chunks = 128
	const chunkBytes = 32 << 10
	payload := make([][]byte, chunks)
	total := 0
	for i := range payload {
		payload[i] = bytes.Repeat([]byte{byte(i)}, chunkBytes)
		total += chunkBytes
	}
	tr := NewMemTransport()
	snap := &stubStreamSnap{w: w, chunks: payload}
	ldr := NewLeader(w, snap, LeaderOptions{Epoch: 1})
	defer ldr.Close()
	ln, err := tr.Listen("leader")
	if err != nil {
		b.Fatal(err)
	}
	go ldr.Serve(ln)

	covered := w.SyncedSeq()
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for n := 0; n < b.N; n++ {
		app := &benchApp{}
		fol, err := NewFollower(app, FollowerOptions{Addr: "leader", Transport: tr})
		if err != nil {
			b.Fatal(err)
		}
		go fol.Run()
		deadline := time.Now().Add(30 * time.Second)
		for app.applied.Load() < covered {
			if time.Now().After(deadline) {
				fol.Close()
				b.Fatal("catch-up never completed")
			}
			runtime.Gosched()
		}
		fol.Close()
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	b.ReportMetric(float64(total*b.N)/elapsed, "snap-bytes/s")
}
