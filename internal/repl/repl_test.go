package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestProtocolRoundTrip(t *testing.T) {
	msgs := []message{
		{kind: msgHello, epoch: 3, arg: 42},
		{kind: msgSnapshot, epoch: 1, arg: 7, payload: []byte("blob")},
		{kind: msgBatch, epoch: 9, arg: 100, payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{kind: msgHeartbeat, epoch: 2, arg: 55},
		{kind: msgAck, epoch: 2, arg: 54},
		{kind: msgReject, epoch: 8},
	}
	for _, want := range msgs {
		b := encodeMessage(nil, want)
		got, err := decodeMessage(b)
		if err != nil {
			t.Fatalf("decode kind %d: %v", want.kind, err)
		}
		if got.kind != want.kind || got.epoch != want.epoch || got.arg != want.arg || !bytes.Equal(got.payload, want.payload) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
	}
	if _, err := decodeMessage([]byte{1, 2, 3}); err == nil {
		t.Fatal("short message decoded")
	}
	bad := encodeMessage(nil, message{kind: 99, epoch: 1})
	if _, err := decodeMessage(bad); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	ln, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.(interface{ Addr() string }).Addr()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for {
			b, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(b); err != nil {
				return
			}
		}
	}()

	c, err := TCP{}.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("hi"), bytes.Repeat([]byte{0x5A}, 1<<16), {}}
	for _, p := range payloads {
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("echo mismatch: %d bytes vs %d", len(got), len(p))
		}
	}
	c.Close()
	wg.Wait()
}

func TestTCPRejectsCorruptFrame(t *testing.T) {
	ln, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.(interface{ Addr() string }).Addr()

	errc := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer c.Close()
		_, err = c.Recv()
		errc <- err
	}()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	payload := []byte("garbled")
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, 0xDEADBEEF) // wrong CRC
	frame = append(frame, payload...)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil {
		t.Fatal("corrupt frame accepted")
	}
}

func TestFileEpochStore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileEpochStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e, err := s.Load(); err != nil || e != 0 {
		t.Fatalf("fresh store: epoch %d err %v", e, err)
	}
	if err := s.Save(7); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFileEpochStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e, err := s2.Load(); err != nil || e != 7 {
		t.Fatalf("reloaded store: epoch %d err %v", e, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "epoch"), []byte("bogus"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Load(); err == nil {
		t.Fatal("corrupt epoch file loaded")
	}
}

func TestMemTransportPartitionAndSever(t *testing.T) {
	tr := NewMemTransport()
	ln, err := tr.Listen("leader")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := tr.Dial("leader")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if b, err := srv.Recv(); err != nil || string(b) != "ping" {
		t.Fatalf("recv %q err %v", b, err)
	}

	tr.Partition(true)
	if _, err := tr.Dial("leader"); err == nil {
		t.Fatal("dial succeeded across partition")
	}
	tr.Partition(false)

	// Queue a message, then sever: it must be lost, and both ends dead.
	if err := c.Send([]byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	tr.Sever()
	if _, err := srv.Recv(); err == nil {
		t.Fatal("read an in-flight message across a severed link")
	}
	if err := c.Send([]byte("x")); err == nil {
		t.Fatal("send succeeded on a severed conn")
	}
}

func TestMemTransportDelayAndReorder(t *testing.T) {
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := tr.Dial("leader")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted

	tr.SetDelay(30 * time.Millisecond)
	start := time.Now()
	if err := c.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delayed message arrived after only %v", elapsed)
	}
	tr.SetDelay(0)

	tr.SetReorder(1, rand.New(rand.NewSource(1)))
	if err := c.Send([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("second")); err != nil {
		t.Fatal(err)
	}
	a, _ := srv.Recv()
	b, _ := srv.Recv()
	if string(a) != "second" || string(b) != "first" {
		t.Fatalf("reorder did not swap: got %q then %q", a, b)
	}
}

// --- leader/follower end to end over the fault-injection transport ---

type fakeApp struct {
	mu       sync.Mutex
	applied  uint64
	recs     []wal.Record
	installs int
	snapBlob []byte
	failNext bool
}

func (a *fakeApp) ReplicaAppliedSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

func (a *fakeApp) ApplyReplicated(prevSeq uint64, recs []wal.Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failNext {
		a.failNext = false
		return errors.New("injected apply failure")
	}
	if prevSeq > a.applied {
		return errors.New("gap: batch does not extend applied prefix")
	}
	for _, r := range recs {
		if r.Seq > a.applied {
			a.recs = append(a.recs, r)
			a.applied = r.Seq
		}
	}
	return nil
}

func (a *fakeApp) InstallReplicaSnapshot(coveredSeq uint64, blob []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.installs++
	a.snapBlob = append([]byte(nil), blob...)
	if coveredSeq > a.applied {
		a.applied = coveredSeq
		a.recs = a.recs[:0] // snapshot replaces replayed state
	}
	return nil
}

func (a *fakeApp) stats() (applied uint64, installs int, n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied, a.installs, len(a.recs)
}

type fakeSnap struct {
	w    *wal.WAL
	blob []byte
}

func (s *fakeSnap) ReplicaSnapshot() (uint64, []byte, error) {
	return s.w.SyncedSeq(), s.blob, nil
}

func newTestWAL(t *testing.T, opt wal.Options) *wal.WAL {
	t.Helper()
	if opt.FS == nil {
		opt.FS = wal.NewMemFS()
	}
	w, err := wal.Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(func(wal.Record) {}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func startFollower(t *testing.T, app ReplicaApp, tr Transport, epoch uint64) *Follower {
	t.Helper()
	store := &MemEpochStore{}
	if epoch > 0 {
		store.Save(epoch)
	}
	f, err := NewFollower(app, FollowerOptions{
		Addr:       "leader",
		Transport:  tr,
		Epochs:     store,
		BackoffMin: time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		Rand:       rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	go f.Run()
	t.Cleanup(f.Close)
	return f
}

func TestLeaderFollowerShipsBatches(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	for i := 0; i < 20; i++ {
		if _, err := w.Append("q", float64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	l := NewLeader(w, &fakeSnap{w: w}, LeaderOptions{Epoch: 1, HeartbeatEvery: 20 * time.Millisecond, CommitTimeout: 3 * time.Second})
	go l.Serve(ln)
	defer l.Close()

	app := &fakeApp{}
	f := startFollower(t, app, tr, 1) // same epoch: no snapshot, pure batch shipping
	waitFor(t, "follower to apply the backlog", func() bool { return app.ReplicaAppliedSeq() == 20 })

	applied, installs, n := app.stats()
	if installs != 0 {
		t.Fatalf("same-epoch follower got %d snapshots", installs)
	}
	if applied != 20 || n != 20 {
		t.Fatalf("applied %d with %d records", applied, n)
	}

	// Live tail: new appends ship and CommitWait sees the acks.
	seq, err := w.Append("q", 99, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CommitWait(seq); err != nil {
		t.Fatalf("CommitWait(%d): %v", seq, err)
	}
	if got := f.LeaderSeq(); got < seq {
		t.Fatalf("follower leaderSeq %d < %d", got, seq)
	}
	app.mu.Lock()
	last := app.recs[len(app.recs)-1]
	app.mu.Unlock()
	if last.Seq != seq || last.Key != "q" || last.Wait != 99 {
		t.Fatalf("last record %+v", last)
	}
}

func TestLeaderSnapshotsCompactedFollower(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord, SegmentBytes: 64})
	for i := 0; i < 30; i++ {
		if _, err := w.Append("q", float64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveSegmentsBelow(cut); err != nil {
		t.Fatal(err)
	}

	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	l := NewLeader(w, &fakeSnap{w: w, blob: []byte("state")}, LeaderOptions{Epoch: 1, HeartbeatEvery: 20 * time.Millisecond})
	go l.Serve(ln)
	defer l.Close()

	app := &fakeApp{}
	startFollower(t, app, tr, 1) // same epoch, but its cursor fell off the log
	waitFor(t, "snapshot catch-up", func() bool {
		applied, installs, _ := app.stats()
		return installs >= 1 && applied >= 30
	})
	app.mu.Lock()
	blob := string(app.snapBlob)
	app.mu.Unlock()
	if blob != "state" {
		t.Fatalf("snapshot blob %q", blob)
	}
	if l.SnapshotsSent() == 0 {
		t.Fatal("leader sent no snapshot")
	}

	// After catch-up the follower tails live appends.
	seq, err := w.Append("q", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live record after snapshot", func() bool { return app.ReplicaAppliedSeq() >= seq })
}

func TestFreshFollowerGetsSnapshotOnEpochMismatch(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	for i := 0; i < 5; i++ {
		if _, err := w.Append("q", float64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	l := NewLeader(w, &fakeSnap{w: w}, LeaderOptions{Epoch: 3, HeartbeatEvery: 20 * time.Millisecond})
	go l.Serve(ln)
	defer l.Close()

	app := &fakeApp{}
	f := startFollower(t, app, tr, 0) // epoch 0: first contact forces a reset snapshot
	waitFor(t, "epoch-mismatch snapshot", func() bool {
		applied, installs, _ := app.stats()
		return installs >= 1 && applied >= 5
	})
	waitFor(t, "epoch adoption", func() bool { return f.Epoch() == 3 })
}

func TestHigherEpochFencesLeaderBeforeAckWatermark(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	seq, err := w.Append("q", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	fencedEpoch := make(chan uint64, 1)
	l := NewLeader(w, &fakeSnap{w: w}, LeaderOptions{
		Epoch:          1,
		HeartbeatEvery: 20 * time.Millisecond,
		CommitTimeout:  3 * time.Second,
		OnFence:        func(e uint64) { fencedEpoch <- e },
	})
	go l.Serve(ln)
	defer l.Close()

	app := &fakeApp{}
	startFollower(t, app, tr, 1)
	if err := l.CommitWait(seq); err != nil {
		t.Fatalf("CommitWait before fencing: %v", err)
	}

	// A node from epoch 2 makes contact: the leader is deposed, and even
	// the already-acknowledged sequence must now refuse to commit — the
	// fence is checked before the watermark.
	app2 := &fakeApp{}
	startFollower(t, app2, tr, 2)
	waitFor(t, "leader to fence", l.Fenced)
	if e := <-fencedEpoch; e != 2 {
		t.Fatalf("OnFence epoch %d", e)
	}
	if l.AckSeq() < seq {
		t.Fatalf("ack watermark regressed to %d", l.AckSeq())
	}
	if err := l.CommitWait(seq); !errors.Is(err, ErrFenced) {
		t.Fatalf("CommitWait on fenced leader: %v", err)
	}
	if l.Fences() != 1 {
		t.Fatalf("fences counter %d", l.Fences())
	}
}

func TestFollowerRejectsStaleLeader(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	l := NewLeader(w, &fakeSnap{w: w}, LeaderOptions{Epoch: 1, HeartbeatEvery: 20 * time.Millisecond})
	go l.Serve(ln)
	defer l.Close()

	// The follower has witnessed epoch 5: everything this epoch-1 leader
	// says is stale, and first contact fences it.
	app := &fakeApp{}
	f := startFollower(t, app, tr, 5)
	waitFor(t, "stale leader to fence", l.Fenced)
	if f.Epoch() != 5 {
		t.Fatalf("follower epoch moved to %d", f.Epoch())
	}
	if app.ReplicaAppliedSeq() != 0 {
		t.Fatal("follower applied records from a stale leader")
	}
}

func TestFollowerReconnectsAfterApplyFailure(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	if _, err := w.Append("q", 1, 1); err != nil {
		t.Fatal(err)
	}
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	l := NewLeader(w, &fakeSnap{w: w}, LeaderOptions{Epoch: 1, HeartbeatEvery: 20 * time.Millisecond})
	go l.Serve(ln)
	defer l.Close()

	app := &fakeApp{failNext: true}
	f := startFollower(t, app, tr, 1)
	waitFor(t, "reconnect and converge", func() bool { return app.ReplicaAppliedSeq() >= 1 })
	if f.Reconnects() < 2 {
		t.Fatalf("reconnects %d, want the failed session plus a retry", f.Reconnects())
	}
}

func TestPromoteClaimsNextEpoch(t *testing.T) {
	store := &MemEpochStore{}
	store.Save(3)
	f, err := NewFollower(&fakeApp{}, FollowerOptions{Addr: "nowhere", Transport: NewMemTransport(), Epochs: store})
	if err != nil {
		t.Fatal(err)
	}
	e, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if e != 4 {
		t.Fatalf("promoted epoch %d", e)
	}
	if got, _ := store.Load(); got != 4 {
		t.Fatalf("persisted epoch %d", got)
	}
}

func TestBackoffBounds(t *testing.T) {
	f, err := NewFollower(&fakeApp{}, FollowerOptions{
		Addr:       "nowhere",
		Transport:  NewMemTransport(),
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 160 * time.Millisecond,
		Rand:       rand.New(rand.NewSource(42)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 12; attempt++ {
		d := f.backoff(attempt)
		if d < 5*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v below half the floor", attempt, d)
		}
		if d > 160*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v above the cap", attempt, d)
		}
	}
}
