package repl

import (
	"encoding/binary"
	"fmt"
)

// Protocol messages. Every message carries the sender's epoch — fencing
// is a property of the whole conversation, not a handshake — plus one
// kind-specific operand and an optional payload:
//
//	hello      follower → leader   arg = follower's applied sequence
//	snapshot   leader → follower   arg = covered sequence, payload = state blob
//	batch      leader → follower   arg = prevSeq (the sequence this batch
//	                               extends), payload = CRC-framed WAL records
//	heartbeat  leader → follower   arg = leader's durability watermark
//	ack        follower → leader   arg = follower's applied sequence
//	reject     either direction    sender refuses the peer's epoch
//	snapBegin  leader → follower   arg = covered sequence, payload = header
//	snapChunk  leader → follower   arg = chunk index, payload = u32 CRC32C
//	                               (little-endian) followed by the chunk
//	snapEnd    leader → follower   arg = covered sequence
//	snapAck    follower → leader   arg = highest applied chunk index
//
// prevSeq is what makes a drop/reorder-capable transport safe: a follower
// accepts a batch only if it extends (or overlaps) its applied prefix;
// anything else forces a reconnect, and the hello renegotiates position.
//
// snapBegin/snapChunk/snapEnd stream a catch-up snapshot as bounded
// chunks instead of one monolithic blob, so leader memory during catch-up
// is O(chunk), not O(state). Chunks carry their own CRC (in addition to
// the transport frame's) and strictly increasing indices; a follower that
// sees a hole, a bad checksum, or a dropped end marker aborts the install
// and reconnects — the hello then re-requests the snapshot from scratch.
// snapAck drives the leader's chunk window the way ack drives the batch
// window: the leader keeps at most a window of unacknowledged chunks in
// flight per follower.
const (
	msgHello byte = iota + 1
	msgSnapshot
	msgBatch
	msgHeartbeat
	msgAck
	msgReject
	msgSnapBegin
	msgSnapChunk
	msgSnapEnd
	msgSnapAck

	msgKindMax = msgSnapAck
)

const msgHeaderLen = 1 + 8 + 8

type message struct {
	kind    byte
	epoch   uint64
	arg     uint64
	payload []byte
}

func encodeMessage(buf []byte, m message) []byte {
	buf = append(buf, m.kind)
	buf = binary.LittleEndian.AppendUint64(buf, m.epoch)
	buf = binary.LittleEndian.AppendUint64(buf, m.arg)
	return append(buf, m.payload...)
}

func decodeMessage(b []byte) (message, error) {
	var m message
	if len(b) < msgHeaderLen {
		return m, fmt.Errorf("repl: message of %d bytes is shorter than the header", len(b))
	}
	m.kind = b[0]
	if m.kind < msgHello || m.kind > msgKindMax {
		return m, fmt.Errorf("repl: unknown message kind %d", m.kind)
	}
	m.epoch = binary.LittleEndian.Uint64(b[1:9])
	m.arg = binary.LittleEndian.Uint64(b[9:17])
	m.payload = b[msgHeaderLen:]
	return m, nil
}
