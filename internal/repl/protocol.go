package repl

import (
	"encoding/binary"
	"fmt"
)

// Protocol messages. Every message carries the sender's epoch — fencing
// is a property of the whole conversation, not a handshake — plus one
// kind-specific operand and an optional payload:
//
//	hello      follower → leader   arg = follower's applied sequence
//	snapshot   leader → follower   arg = covered sequence, payload = state blob
//	batch      leader → follower   arg = prevSeq (the sequence this batch
//	                               extends), payload = CRC-framed WAL records
//	heartbeat  leader → follower   arg = leader's durability watermark
//	ack        follower → leader   arg = follower's applied sequence
//	reject     either direction    sender refuses the peer's epoch
//
// prevSeq is what makes a drop/reorder-capable transport safe: a follower
// accepts a batch only if it extends (or overlaps) its applied prefix;
// anything else forces a reconnect, and the hello renegotiates position.
const (
	msgHello byte = iota + 1
	msgSnapshot
	msgBatch
	msgHeartbeat
	msgAck
	msgReject
)

const msgHeaderLen = 1 + 8 + 8

type message struct {
	kind    byte
	epoch   uint64
	arg     uint64
	payload []byte
}

func encodeMessage(buf []byte, m message) []byte {
	buf = append(buf, m.kind)
	buf = binary.LittleEndian.AppendUint64(buf, m.epoch)
	buf = binary.LittleEndian.AppendUint64(buf, m.arg)
	return append(buf, m.payload...)
}

func decodeMessage(b []byte) (message, error) {
	var m message
	if len(b) < msgHeaderLen {
		return m, fmt.Errorf("repl: message of %d bytes is shorter than the header", len(b))
	}
	m.kind = b[0]
	if m.kind < msgHello || m.kind > msgReject {
		return m, fmt.Errorf("repl: unknown message kind %d", m.kind)
	}
	m.epoch = binary.LittleEndian.Uint64(b[1:9])
	m.arg = binary.LittleEndian.Uint64(b[9:17])
	m.payload = b[msgHeaderLen:]
	return m, nil
}
