package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// --- fan-out, windowing, quorum, and chunked snapshot coverage ---

// TestNoBatchShipsAfterFence is the fence-propagation regression test:
// once fence() returns, no session may ship another batch — not the
// session that carried the deposing epoch, and not any other connected
// follower, even for records appended afterwards.
func TestNoBatchShipsAfterFence(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	for i := 0; i < 10; i++ {
		if _, err := w.Append("q", float64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	l := NewLeader(w, &fakeSnap{w: w}, LeaderOptions{Epoch: 1, HeartbeatEvery: 10 * time.Millisecond})
	go l.Serve(ln)
	defer l.Close()

	app := &fakeApp{}
	startFollower(t, app, tr, 1)
	waitFor(t, "follower to apply the backlog", func() bool { return app.ReplicaAppliedSeq() == 10 })

	l.fence(2)
	sent := l.BatchesSent()
	applied := app.ReplicaAppliedSeq()
	for i := 0; i < 5; i++ {
		if _, err := w.Append("q", 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Give a live session ample time to misbehave: several heartbeat
	// periods plus the follower's reconnect backoff.
	time.Sleep(150 * time.Millisecond)
	if got := l.BatchesSent(); got != sent {
		t.Fatalf("fenced leader shipped %d more batches", got-sent)
	}
	if got := app.ReplicaAppliedSeq(); got != applied {
		t.Fatalf("follower applied past the fence: %d -> %d", applied, got)
	}
	if err := l.CommitWait(10); !errors.Is(err, ErrFenced) {
		t.Fatalf("CommitWait after fence: %v", err)
	}
}

// gatedApp blocks every apply until the gate closes, so acks never come
// back and the leader's in-flight window must fill and hold.
type gatedApp struct {
	fakeApp
	gate chan struct{}
}

func (a *gatedApp) ApplyReplicated(prevSeq uint64, recs []wal.Record) error {
	<-a.gate
	return a.fakeApp.ApplyReplicated(prevSeq, recs)
}

func TestWindowBackpressureBoundsInflight(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	for i := 0; i < 12; i++ {
		if _, err := w.Append("q", float64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	l := NewLeader(w, &fakeSnap{w: w}, LeaderOptions{
		Epoch:          1,
		HeartbeatEvery: 10 * time.Millisecond,
		BatchMax:       1,
		WindowBatches:  2,
	})
	go l.Serve(ln)
	defer l.Close()

	app := &gatedApp{gate: make(chan struct{})}
	startFollower(t, app, tr, 1)

	// With acks withheld, exactly WindowBatches batches may be in flight.
	waitFor(t, "window to fill", func() bool { return l.BatchesSent() == 2 })
	time.Sleep(50 * time.Millisecond)
	if got := l.BatchesSent(); got != 2 {
		t.Fatalf("leader sent %d batches past a full window of 2", got)
	}
	if got := l.InflightMessages(); got != 2 {
		t.Fatalf("inflight gauge %d, want 2", got)
	}

	// Releasing the gate drains the window and ships the rest.
	close(app.gate)
	waitFor(t, "backlog to drain", func() bool { return app.ReplicaAppliedSeq() == 12 })
	waitFor(t, "window to empty", func() bool { return l.InflightMessages() == 0 })
	if l.InflightBytes() != 0 {
		t.Fatalf("inflight bytes gauge %d after drain", l.InflightBytes())
	}
}

func TestQuorumCommitWait(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	l := NewLeader(w, &fakeSnap{w: w}, LeaderOptions{
		Epoch:          1,
		HeartbeatEvery: 10 * time.Millisecond,
		Quorum:         2,
		CommitTimeout:  150 * time.Millisecond,
	})
	go l.Serve(ln)
	defer l.Close()
	if l.Quorum() != 2 {
		t.Fatalf("Quorum() = %d", l.Quorum())
	}

	seq, err := w.Append("q", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	app1 := &fakeApp{}
	startFollower(t, app1, tr, 1)
	waitFor(t, "first follower to apply", func() bool { return app1.ReplicaAppliedSeq() >= seq })

	// One ack is below K=2: the commit must time out, not release.
	if err := l.CommitWait(seq); !errors.Is(err, ErrCommitTimeout) {
		t.Fatalf("CommitWait with 1 of 2 acks: %v", err)
	}
	if l.AckSeq() >= seq {
		t.Fatalf("ack watermark %d advanced below quorum", l.AckSeq())
	}

	// The second follower's ack completes the quorum.
	app2 := &fakeApp{}
	startFollower(t, app2, tr, 1)
	waitFor(t, "second follower to apply", func() bool { return app2.ReplicaAppliedSeq() >= seq })
	if err := l.CommitWait(seq); err != nil {
		t.Fatalf("CommitWait with 2 of 2 acks: %v", err)
	}
	if l.AckSeq() < seq {
		t.Fatalf("ack watermark %d below %d after quorum", l.AckSeq(), seq)
	}
}

// TestBatchCacheSharesFramesAcrossFollowers proves frame-once/ship-many:
// three followers walking the same cursor sequence hit the cache for
// everything the first walker framed.
func TestBatchCacheSharesFramesAcrossFollowers(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	for i := 0; i < 50; i++ {
		if _, err := w.Append("q", float64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	l := NewLeader(w, &fakeSnap{w: w}, LeaderOptions{Epoch: 1, HeartbeatEvery: 10 * time.Millisecond})
	go l.Serve(ln)
	defer l.Close()

	apps := []*fakeApp{{}, {}, {}}
	for _, app := range apps {
		startFollower(t, app, tr, 1)
	}
	for _, app := range apps {
		app := app
		waitFor(t, "fan-out to converge", func() bool { return app.ReplicaAppliedSeq() == 50 })
	}
	if l.BatchCacheMisses() == 0 {
		t.Fatal("no cache misses: nothing was ever framed")
	}
	if l.BatchCacheHits() == 0 {
		t.Fatal("no cache hits: every follower re-framed the same batches")
	}
	if l.ShipBytes() == 0 {
		t.Fatal("ship bytes counter never moved")
	}
	// All three followers saw identical bytes: same records, same order.
	a0, _, n0 := apps[0].stats()
	for _, app := range apps[1:] {
		a, _, n := app.stats()
		if a != a0 || n != n0 {
			t.Fatalf("fan-out diverged: (%d,%d) vs (%d,%d)", a, n, a0, n0)
		}
	}
}

// stubSnapStream is a fixed chunk sequence for exercising the chunked
// transfer protocol without a real qbets state.
type stubSnapStream struct {
	covered uint64
	chunks  [][]byte
}

func (s *stubSnapStream) CoveredSeq() uint64 { return s.covered }
func (s *stubSnapStream) Header() []byte     { return []byte("hdr") }
func (s *stubSnapStream) Chunks() int        { return len(s.chunks) }
func (s *stubSnapStream) Close()             {}
func (s *stubSnapStream) AppendChunk(i int, dst []byte) ([]byte, error) {
	return append(dst, s.chunks[i]...), nil
}

// stubStreamSnap serves stubSnapStream generations; the monolithic
// fallback must never be used when streaming is available.
type stubStreamSnap struct {
	w      *wal.WAL
	chunks [][]byte

	mu    sync.Mutex
	opens int
}

func (s *stubStreamSnap) ReplicaSnapshot() (uint64, []byte, error) {
	return 0, nil, errors.New("monolithic path must not be used")
}

func (s *stubStreamSnap) OpenReplicaSnapshotStream() (SnapshotStream, error) {
	s.mu.Lock()
	s.opens++
	s.mu.Unlock()
	return &stubSnapStream{covered: s.w.SyncedSeq(), chunks: s.chunks}, nil
}

// TestChunkedSnapshotAssemblesOnPlainFollower: a follower without
// ChunkedReplicaApp assembles the chunk stream into one blob and installs
// it through the ordinary InstallReplicaSnapshot path.
func TestChunkedSnapshotAssemblesOnPlainFollower(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord, SegmentBytes: 64})
	for i := 0; i < 30; i++ {
		if _, err := w.Append("q", float64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveSegmentsBelow(cut); err != nil {
		t.Fatal(err)
	}

	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	snap := &stubStreamSnap{w: w, chunks: [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}}
	l := NewLeader(w, snap, LeaderOptions{Epoch: 1, HeartbeatEvery: 10 * time.Millisecond})
	go l.Serve(ln)
	defer l.Close()

	app := &fakeApp{}
	f := startFollower(t, app, tr, 1) // same epoch, compacted-away cursor
	waitFor(t, "chunked catch-up", func() bool {
		applied, installs, _ := app.stats()
		return installs >= 1 && applied >= 30
	})
	app.mu.Lock()
	blob := string(app.snapBlob)
	app.mu.Unlock()
	if blob != "aabbcc" {
		t.Fatalf("assembled blob %q", blob)
	}
	if l.SnapChunksSent() < 3 {
		t.Fatalf("leader sent %d chunks", l.SnapChunksSent())
	}
	if f.SnapshotChunksApplied() < 3 {
		t.Fatalf("follower applied %d chunks", f.SnapshotChunksApplied())
	}
	if l.SnapshotsSent() == 0 {
		t.Fatal("snapshots-sent counter never moved")
	}
	// The stream tails live after the install.
	seq, err := w.Append("q", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live record after chunked snapshot", func() bool { return app.ReplicaAppliedSeq() >= seq })
}

// TestConcurrentCatchupsShareSnapshotGeneration: two followers catching
// up at once capture one generation, not two.
func TestConcurrentCatchupsShareSnapshotGeneration(t *testing.T) {
	w := newTestWAL(t, wal.Options{Mode: wal.SyncEachRecord, SegmentBytes: 64})
	for i := 0; i < 30; i++ {
		if _, err := w.Append("q", float64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveSegmentsBelow(cut); err != nil {
		t.Fatal(err)
	}

	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	// Many chunks and withheld acks hold the first transfer open long
	// enough for the second catch-up to join its generation.
	chunks := make([][]byte, 64)
	for i := range chunks {
		chunks[i] = bytes.Repeat([]byte{byte(i)}, 128)
	}
	snap := &stubStreamSnap{w: w, chunks: chunks}
	l := NewLeader(w, snap, LeaderOptions{Epoch: 1, HeartbeatEvery: 10 * time.Millisecond, WindowBatches: 2})
	go l.Serve(ln)
	defer l.Close()

	apps := []*fakeApp{{}, {}}
	for _, app := range apps {
		startFollower(t, app, tr, 1)
	}
	for _, app := range apps {
		app := app
		waitFor(t, "both catch-ups to finish", func() bool {
			applied, installs, _ := app.stats()
			return installs >= 1 && applied >= 30
		})
	}
	snap.mu.Lock()
	opens := snap.opens
	snap.mu.Unlock()
	if shared := l.SnapGenerationsShared(); shared >= 1 && opens != 1 {
		t.Fatalf("generation shared %d times but %d opens", shared, opens)
	}
	if opens > 2 {
		t.Fatalf("%d generations captured for 2 followers", opens)
	}
	if l.SnapInflightPeakBytes() == 0 {
		t.Fatal("snapshot in-flight peak never recorded")
	}
}

// TestFollowerAbortsTornChunkStream drives the follower's chunk state
// machine by hand: a corrupt chunk aborts the partial install and drops
// the session; the reconnect re-requests and a clean stream installs.
func TestFollowerAbortsTornChunkStream(t *testing.T) {
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	defer ln.Close()

	app := &fakeApp{}
	f := startFollower(t, app, tr, 1)

	recvMsg := func(c Conn) (message, error) {
		b, err := c.Recv()
		if err != nil {
			return message{}, err
		}
		return decodeMessage(b)
	}
	sendMsg := func(c Conn, m message) {
		t.Helper()
		if err := c.Send(encodeMessage(nil, m)); err != nil {
			t.Fatalf("send kind %d: %v", m.kind, err)
		}
	}
	frameChunk := func(chunk []byte, corrupt bool) []byte {
		p := make([]byte, 4, 4+len(chunk))
		p = append(p, chunk...)
		crc := crc32.Checksum(p[4:], tcpCastagnoli)
		if corrupt {
			crc ^= 0xFFFFFFFF
		}
		binary.LittleEndian.PutUint32(p[:4], crc)
		return p
	}

	// Session 1: a chunk whose CRC does not match its payload.
	c1, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if m, err := recvMsg(c1); err != nil || m.kind != msgHello {
		t.Fatalf("first contact: %+v, %v", m, err)
	}
	sendMsg(c1, message{kind: msgSnapBegin, epoch: 1, arg: 5, payload: []byte("hdr")})
	sendMsg(c1, message{kind: msgSnapChunk, epoch: 1, arg: 0, payload: frameChunk([]byte("xx"), true)})
	waitFor(t, "torn stream abort", func() bool { return f.SnapshotAborts() >= 1 })
	if _, installs, _ := app.stats(); installs != 0 {
		t.Fatalf("%d installs from a torn stream", installs)
	}
	c1.Close()

	// Session 2: the reconnect hello re-requests; a clean stream installs.
	c2, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if m, err := recvMsg(c2); err != nil || m.kind != msgHello {
		t.Fatalf("reconnect contact: %+v, %v", m, err)
	}
	sendMsg(c2, message{kind: msgSnapBegin, epoch: 1, arg: 5, payload: []byte("hdr")})
	sendMsg(c2, message{kind: msgSnapChunk, epoch: 1, arg: 0, payload: frameChunk([]byte("state"), false)})
	sendMsg(c2, message{kind: msgSnapEnd, epoch: 1, arg: 5})
	waitFor(t, "clean install after reconnect", func() bool {
		applied, installs, _ := app.stats()
		return installs == 1 && applied == 5
	})
	app.mu.Lock()
	blob := string(app.snapBlob)
	app.mu.Unlock()
	if blob != "state" {
		t.Fatalf("installed blob %q", blob)
	}
	if f.Reconnects() < 2 {
		t.Fatalf("reconnects %d", f.Reconnects())
	}
	c2.Close()
}

// TestChunkIndexHoleAborts: a skipped chunk index is a torn stream, even
// with a valid checksum.
func TestChunkIndexHoleAborts(t *testing.T) {
	tr := NewMemTransport()
	ln, _ := tr.Listen("leader")
	defer ln.Close()

	app := &fakeApp{}
	f := startFollower(t, app, tr, 1)

	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if b, err := c.Recv(); err != nil {
		t.Fatal(err)
	} else if m, err := decodeMessage(b); err != nil || m.kind != msgHello {
		t.Fatalf("first contact: %+v, %v", m, err)
	}
	send := func(m message) {
		if err := c.Send(encodeMessage(nil, m)); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	chunk := make([]byte, 4, 6)
	chunk = append(chunk, "ok"...)
	binary.LittleEndian.PutUint32(chunk[:4], crc32.Checksum(chunk[4:], tcpCastagnoli))
	send(message{kind: msgSnapBegin, epoch: 1, arg: 3, payload: []byte("hdr")})
	send(message{kind: msgSnapChunk, epoch: 1, arg: 1, payload: chunk}) // hole: chunk 0 skipped
	waitFor(t, "hole abort", func() bool { return f.SnapshotAborts() >= 1 })
	if _, installs, _ := app.stats(); installs != 0 {
		t.Fatalf("%d installs despite the hole", installs)
	}
	c.Close()
}
