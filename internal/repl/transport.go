// Package repl implements streaming WAL replication for the forecast
// service: a leader ships CRC-framed WAL record batches over a
// length-prefixed message protocol to N followers, which replay them
// through the service's grouped apply path and serve the lock-free read
// plane — follower reads are consistent-prefix by construction, because a
// follower only ever holds a prefix of the leader's acked log.
//
// The robustness envelope:
//
//   - snapshot catch-up: a new or lagging follower whose cursor fell off
//     the leader's compacted log receives a full state snapshot (the
//     sharded save format) and resumes tailing from its covered sequence;
//   - epoch fencing: every message carries the sender's epoch; a leader
//     that learns of a higher epoch is deposed and can never ack again —
//     the fence is checked before the ack watermark, mirroring the WAL
//     group commit's failed-segment-before-watermark guard;
//   - lease-shaped commits: in synchronous mode an observe acks only once
//     a follower acknowledged the records within the commit timeout, so a
//     partitioned leader cannot ack at all;
//   - follower reconnect with capped exponential backoff plus jitter, and
//     a heartbeat watchdog that severs silent connections.
//
// Faults are injected below this package: MemTransport partitions,
// severs, delays, and reorders messages, and the WAL's MemFS power-cuts
// the log, so internal/crashprop can drive whole-topology trials.
package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
)

// Conn is a bidirectional, message-oriented connection. Send and Recv are
// whole-message: the transport preserves message boundaries and verifies
// integrity. Safe for one concurrent sender and one concurrent receiver;
// Close unblocks both ends.
type Conn interface {
	Send(msg []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Listener accepts inbound connections from followers.
type Listener interface {
	Accept() (Conn, error)
	Close() error
}

// Transport produces connections: TCP in production, MemTransport under
// fault injection.
type Transport interface {
	Dial(addr string) (Conn, error)
	Listen(addr string) (Listener, error)
}

// Frame layout on a TCP conn, little-endian:
//
//	u32 payload length
//	u32 CRC32C (Castagnoli) of the payload
//	payload (one protocol message)
//
// The same checksum family as WAL record frames: a flipped bit anywhere
// between the leader's log and the follower's apply path is detected
// either here or by the per-record CRC inside a shipped batch.
const tcpFrameHeader = 8

// maxMessageBytes bounds a single message. Snapshots dominate: a full
// sharded state blob must fit, so the cap is generous; anything larger is
// a protocol violation, not a bigger buffer.
const maxMessageBytes = 512 << 20

var tcpCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// TCP is the production transport.
type TCP struct{}

func (TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (TCP) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{ln: ln}, nil
}

type tcpListener struct{ ln net.Listener }

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (l *tcpListener) Close() error { return l.ln.Close() }

// Addr returns the bound address — useful when listening on ":0".
func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

type tcpConn struct {
	c net.Conn

	sendMu  sync.Mutex
	sendBuf []byte

	recvMu  sync.Mutex
	recvBuf []byte
}

func newTCPConn(c net.Conn) *tcpConn { return &tcpConn{c: c} }

func (t *tcpConn) Send(msg []byte) error {
	if len(msg) > maxMessageBytes {
		return fmt.Errorf("repl: message of %d bytes exceeds limit", len(msg))
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	buf := t.sendBuf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msg)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(msg, tcpCastagnoli))
	buf = append(buf, msg...)
	t.sendBuf = buf[:0]
	_, err := t.c.Write(buf)
	return err
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	var hdr [tcpFrameHeader]byte
	if _, err := io.ReadFull(t.c, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:4]))
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxMessageBytes {
		return nil, fmt.Errorf("repl: frame of %d bytes exceeds limit", n)
	}
	if cap(t.recvBuf) < n {
		t.recvBuf = make([]byte, n)
	}
	msg := t.recvBuf[:n]
	if _, err := io.ReadFull(t.c, msg); err != nil {
		return nil, err
	}
	if crc32.Checksum(msg, tcpCastagnoli) != crc {
		return nil, fmt.Errorf("repl: frame checksum mismatch")
	}
	// Hand out a copy: the caller may hold the message across the next
	// Recv, which reuses the buffer.
	return append([]byte(nil), msg...), nil
}

func (t *tcpConn) Close() error { return t.c.Close() }
