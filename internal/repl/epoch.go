package repl

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// EpochStore persists the replication epoch. The epoch is the fencing
// token: a node that claims leadership durably advances it first, so
// even after every process restarts, a deposed leader's messages carry a
// provably stale epoch. Load on a fresh store returns 0.
type EpochStore interface {
	Load() (uint64, error)
	Save(epoch uint64) error
}

// FileEpochStore keeps the epoch in a single file, written atomically
// (temp + fsync + rename + directory fsync) so a power cut mid-save
// leaves either the old epoch or the new one, never garbage. The same
// discipline as the state snapshot writer: an epoch claim that is not
// durable is not a claim.
type FileEpochStore struct {
	mu  sync.Mutex
	dir string
}

// NewFileEpochStore stores the epoch under dir (created if needed).
func NewFileEpochStore(dir string) (*FileEpochStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repl: epoch dir: %w", err)
	}
	return &FileEpochStore{dir: dir}, nil
}

func (s *FileEpochStore) path() string { return filepath.Join(s.dir, "epoch") }

func (s *FileEpochStore) Load() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := os.ReadFile(s.path())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repl: read epoch: %w", err)
	}
	e, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("repl: corrupt epoch file %q: %w", s.path(), perr)
	}
	return e, nil
}

func (s *FileEpochStore) Save(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "epoch-*")
	if err != nil {
		return fmt.Errorf("repl: save epoch: %w", err)
	}
	name := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(name) }
	if _, err := tmp.WriteString(strconv.FormatUint(epoch, 10) + "\n"); err != nil {
		cleanup()
		return fmt.Errorf("repl: save epoch: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("repl: save epoch: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("repl: save epoch: %w", err)
	}
	if err := os.Rename(name, s.path()); err != nil {
		os.Remove(name)
		return fmt.Errorf("repl: save epoch: %w", err)
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("repl: save epoch: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("repl: save epoch: %w", err)
	}
	return nil
}

// MemEpochStore is the in-memory store for trials and tests: it survives
// a simulated leader power cut (the trial holds the pointer, as the
// durable file would survive) without touching a real disk.
type MemEpochStore struct {
	mu sync.Mutex
	v  uint64
}

func (s *MemEpochStore) Load() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v, nil
}

func (s *MemEpochStore) Save(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v = epoch
	return nil
}
