package repl

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// ReplicaApp is the follower-side application surface: the forecast
// service in follower mode. ApplyReplicated must refuse batches that do
// not extend its applied prefix (the gap error forces a reconnect, which
// renegotiates position via the hello). Records passed to ApplyReplicated
// are only valid for the duration of the call — the decode buffer is
// reused — so implementations copy what they keep.
type ReplicaApp interface {
	ReplicaAppliedSeq() uint64
	ApplyReplicated(prevSeq uint64, recs []wal.Record) error
	InstallReplicaSnapshot(coveredSeq uint64, blob []byte) error
}

// ChunkedReplicaApp is the streaming upgrade of ReplicaApp: the app
// ingests a catch-up snapshot chunk by chunk instead of as one blob, so
// follower install memory is O(chunk) too. Begin/Apply/Commit follow the
// leader's snapBegin/snapChunk/snapEnd exactly; Abort discards a partial
// install after a torn transfer (the reconnect hello then re-requests the
// snapshot from scratch). Apps that do not implement it still work — the
// follower assembles the chunks and calls InstallReplicaSnapshot.
type ChunkedReplicaApp interface {
	ReplicaApp
	BeginReplicaSnapshot(coveredSeq uint64, header []byte) error
	ApplyReplicaSnapshotChunk(index int, chunk []byte) error
	CommitReplicaSnapshot(coveredSeq uint64) error
	AbortReplicaSnapshot()
}

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Addr is the leader's replication address.
	Addr string
	// Transport defaults to TCP.
	Transport Transport
	// Epochs persists the highest epoch this node has witnessed. Nil
	// keeps it in memory only (tests).
	Epochs EpochStore
	// BackoffMin/BackoffMax bound the reconnect backoff. Defaults 50ms
	// and 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// HeartbeatTimeout severs a connection silent for this long; the
	// reconnect loop then renegotiates. Default 3s; negative disables.
	HeartbeatTimeout time.Duration
	// MaxLag is the degradation bound: when the follower's applied
	// sequence trails the leader's advertised watermark by more than
	// this, it reports Degraded. 0 means never degraded.
	MaxLag uint64
	// Rand drives reconnect jitter; defaults to the global source.
	Rand *rand.Rand
}

// Follower dials the leader, replays shipped batches (or installs
// snapshots) through its app, and acknowledges applied sequences. It
// reconnects forever with capped exponential backoff plus jitter until
// Closed or Promoted.
type Follower struct {
	app      ReplicaApp
	chunkApp ChunkedReplicaApp // non-nil when app supports chunked installs
	opt      FollowerOptions

	mu     sync.Mutex
	epoch  uint64 // highest epoch witnessed, persisted before adopted
	conn   Conn
	closed bool

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	connected   atomic.Bool
	leaderSeq   atomic.Uint64 // leader's advertised durability watermark
	lastBackoff atomic.Int64  // nanoseconds; Retry-After hint

	reconnects   atomic.Uint64
	batchesIn    atomic.Uint64
	recordsIn    atomic.Uint64
	snapshots    atomic.Uint64
	rejects      atomic.Uint64
	snapChunksIn atomic.Uint64
	snapAborts   atomic.Uint64
}

// NewFollower wires a follower to its app and leader address, loading
// the persisted epoch. Call Run on its own goroutine.
func NewFollower(app ReplicaApp, opt FollowerOptions) (*Follower, error) {
	if opt.Transport == nil {
		opt.Transport = TCP{}
	}
	if opt.BackoffMin <= 0 {
		opt.BackoffMin = 50 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	if opt.HeartbeatTimeout == 0 {
		opt.HeartbeatTimeout = 3 * time.Second
	}
	f := &Follower{app: app, opt: opt, done: make(chan struct{})}
	f.chunkApp, _ = app.(ChunkedReplicaApp)
	if opt.Epochs != nil {
		e, err := opt.Epochs.Load()
		if err != nil {
			return nil, err
		}
		f.epoch = e
	}
	return f, nil
}

// Run is the reconnect loop. It returns when the follower is closed.
func (f *Follower) Run() {
	f.wg.Add(1)
	defer f.wg.Done()
	attempt := 0
	for {
		select {
		case <-f.done:
			return
		default:
		}
		c, err := f.opt.Transport.Dial(f.opt.Addr)
		if err == nil {
			f.reconnects.Add(1)
			if f.session(c) {
				attempt = 0 // productive session: start the ladder over
			} else {
				attempt++
			}
		} else {
			attempt++
		}
		d := f.backoff(attempt)
		f.lastBackoff.Store(int64(d))
		select {
		case <-f.done:
			return
		case <-time.After(d):
		}
	}
}

// backoff returns the capped exponential delay for the given attempt,
// jittered across [d/2, d] so a herd of followers does not reconnect in
// lockstep.
func (f *Follower) backoff(attempt int) time.Duration {
	d := f.opt.BackoffMin
	for i := 0; i < attempt && d < f.opt.BackoffMax; i++ {
		d *= 2
	}
	if d > f.opt.BackoffMax {
		d = f.opt.BackoffMax
	}
	half := int64(d / 2)
	var j int64
	if half > 0 {
		if f.opt.Rand != nil {
			j = f.opt.Rand.Int63n(half + 1)
		} else {
			j = rand.Int63n(half + 1)
		}
	}
	return time.Duration(half + j)
}

// Close stops the reconnect loop and severs any live connection.
func (f *Follower) Close() {
	f.once.Do(func() { close(f.done) })
	f.mu.Lock()
	f.closed = true
	c := f.conn
	f.mu.Unlock()
	if c != nil {
		c.Close()
	}
	f.wg.Wait()
}

// Promote ends the follower's life and claims the next epoch, persisting
// it before returning. The caller then rebuilds the node as a leader
// with the returned epoch; any surviving ex-leader is fenced on first
// contact with it.
func (f *Follower) Promote() (uint64, error) {
	f.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	e := f.epoch + 1
	if f.opt.Epochs != nil {
		if err := f.opt.Epochs.Save(e); err != nil {
			return 0, err
		}
	}
	f.epoch = e
	return e, nil
}

// Epoch reports the highest epoch this follower has witnessed.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Connected reports whether a session with the leader is live.
func (f *Follower) Connected() bool { return f.connected.Load() }

// LeaderSeq reports the leader's last advertised durability watermark.
func (f *Follower) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Lag reports how far the applied state trails the leader's advertised
// watermark.
func (f *Follower) Lag() uint64 {
	ls, ap := f.leaderSeq.Load(), f.app.ReplicaAppliedSeq()
	if ls > ap {
		return ls - ap
	}
	return 0
}

// Degraded reports whether the lag bound is configured and exceeded —
// the follower then serves 503s rather than stale-beyond-bound reads.
func (f *Follower) Degraded() bool {
	return f.opt.MaxLag > 0 && f.Lag() > f.opt.MaxLag
}

// RetryAfter suggests how long a rejected client should wait: the
// current reconnect backoff when disconnected, else one second.
func (f *Follower) RetryAfter() time.Duration {
	if !f.connected.Load() {
		if d := time.Duration(f.lastBackoff.Load()); d > 0 {
			return d
		}
	}
	return time.Second
}

// Reconnects, BatchesApplied, RecordsApplied, SnapshotsInstalled,
// RejectsSent, SnapshotChunksApplied, and SnapshotAborts are cumulative
// counters for the metrics plane. SnapshotAborts counts torn chunked
// transfers discarded before commit.
func (f *Follower) Reconnects() uint64            { return f.reconnects.Load() }
func (f *Follower) BatchesApplied() uint64        { return f.batchesIn.Load() }
func (f *Follower) RecordsApplied() uint64        { return f.recordsIn.Load() }
func (f *Follower) SnapshotsInstalled() uint64    { return f.snapshots.Load() }
func (f *Follower) RejectsSent() uint64           { return f.rejects.Load() }
func (f *Follower) SnapshotChunksApplied() uint64 { return f.snapChunksIn.Load() }
func (f *Follower) SnapshotAborts() uint64        { return f.snapAborts.Load() }

// adoptEpoch persists then records a higher epoch learned from the wire.
func (f *Follower) adoptEpoch(e uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e <= f.epoch {
		return nil
	}
	if f.opt.Epochs != nil {
		if err := f.opt.Epochs.Save(e); err != nil {
			return err
		}
	}
	f.epoch = e
	return nil
}

func (f *Follower) maxLeaderSeq(seq uint64) {
	for {
		cur := f.leaderSeq.Load()
		if seq <= cur || f.leaderSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// session drives one connection: hello, then apply whatever the leader
// ships, acking after every message. Returns whether the session made
// progress (applied anything), which resets the backoff ladder.
func (f *Follower) session(c Conn) (productive bool) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		c.Close()
		return false
	}
	f.conn = c
	f.mu.Unlock()
	defer func() {
		c.Close()
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		f.connected.Store(false)
	}()

	var sbuf []byte
	var err error
	if sbuf, err = f.send(c, sbuf, message{kind: msgHello, epoch: f.Epoch(), arg: f.app.ReplicaAppliedSeq()}); err != nil {
		return false
	}
	f.connected.Store(true)

	// Watchdog: a silent connection (no batches, no heartbeats) is dead
	// even if TCP has not noticed; sever it and let the backoff loop
	// renegotiate.
	var lastMsg atomic.Int64
	lastMsg.Store(time.Now().UnixNano())
	stop := make(chan struct{})
	defer close(stop)
	if hbt := f.opt.HeartbeatTimeout; hbt > 0 {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			tick := time.NewTicker(hbt / 4)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-f.done:
					return
				case <-tick.C:
					if time.Since(time.Unix(0, lastMsg.Load())) > hbt {
						c.Close()
						return
					}
				}
			}
		}()
	}

	// snap tracks a chunked install in progress. Any protocol deviation —
	// a hole in the chunk indices, a checksum mismatch, an unexpected
	// message — aborts the partial install and drops the session; the
	// reconnect hello re-requests the snapshot from scratch.
	var snap snapState
	defer func() {
		if snap.active {
			f.abortSnap(&snap)
		}
	}()
	var dec wal.FrameDecoder
	for {
		b, rerr := c.Recv()
		if rerr != nil {
			return productive
		}
		lastMsg.Store(time.Now().UnixNano())
		m, derr := decodeMessage(b)
		if derr != nil {
			return productive
		}
		known := f.Epoch()
		if m.epoch < known {
			// A stale leader. Tell it about the higher epoch — this is
			// the fence — and drop the session.
			f.send(c, sbuf, message{kind: msgReject, epoch: known})
			f.rejects.Add(1)
			return productive
		}
		if m.epoch > known {
			if f.adoptEpoch(m.epoch) != nil {
				return productive
			}
		}
		if snap.active && m.kind != msgSnapChunk && m.kind != msgSnapEnd && m.kind != msgHeartbeat {
			// The leader never interleaves other traffic with a chunk
			// stream; anything else means the stream is torn.
			f.abortSnap(&snap)
			return productive
		}
		switch m.kind {
		case msgSnapshot:
			if f.app.InstallReplicaSnapshot(m.arg, m.payload) != nil {
				return productive
			}
			f.snapshots.Add(1)
			f.maxLeaderSeq(m.arg)
			productive = true
		case msgSnapBegin:
			if f.chunkApp != nil {
				if f.chunkApp.BeginReplicaSnapshot(m.arg, m.payload) != nil {
					return productive
				}
			} else {
				snap.blob = snap.blob[:0]
			}
			snap.active, snap.covered, snap.next = true, m.arg, 0
			// No ack: the chunk window is driven by snapAcks, and the
			// applied watermark has not moved yet.
			continue
		case msgSnapChunk:
			if !snap.active || m.arg != uint64(snap.next) || len(m.payload) < 4 ||
				crc32.Checksum(m.payload[4:], tcpCastagnoli) != binary.LittleEndian.Uint32(m.payload[:4]) {
				f.abortSnap(&snap)
				return productive
			}
			chunk := m.payload[4:]
			if f.chunkApp != nil {
				if f.chunkApp.ApplyReplicaSnapshotChunk(snap.next, chunk) != nil {
					f.abortSnap(&snap)
					return productive
				}
			} else {
				snap.blob = append(snap.blob, chunk...)
			}
			snap.next++
			f.snapChunksIn.Add(1)
			if sbuf, err = f.send(c, sbuf, message{kind: msgSnapAck, epoch: f.Epoch(), arg: m.arg}); err != nil {
				return productive
			}
			continue
		case msgSnapEnd:
			if !snap.active || m.arg != snap.covered {
				f.abortSnap(&snap)
				return productive
			}
			if f.chunkApp != nil {
				if f.chunkApp.CommitReplicaSnapshot(snap.covered) != nil {
					f.abortSnap(&snap)
					return productive
				}
			} else if f.app.InstallReplicaSnapshot(snap.covered, snap.blob) != nil {
				snap.active = false
				return productive
			}
			snap.active = false
			f.snapshots.Add(1)
			f.maxLeaderSeq(snap.covered)
			productive = true
		case msgBatch:
			recs, ferr := dec.Decode(m.payload)
			if ferr != nil {
				return productive
			}
			if f.app.ApplyReplicated(m.arg, recs) != nil {
				// Gap (reordered past our prefix) or shutdown: reconnect
				// and renegotiate position.
				return productive
			}
			f.batchesIn.Add(1)
			f.recordsIn.Add(uint64(len(recs)))
			if n := len(recs); n > 0 {
				f.maxLeaderSeq(recs[n-1].Seq)
			}
			productive = true
		case msgHeartbeat:
			f.maxLeaderSeq(m.arg)
			if snap.active {
				// Mid-transfer keepalive: no applied progress to ack.
				continue
			}
		case msgReject:
			// Higher epoch was already adopted above; nothing to apply.
			return productive
		}
		if sbuf, err = f.send(c, sbuf, message{kind: msgAck, epoch: f.Epoch(), arg: f.app.ReplicaAppliedSeq()}); err != nil {
			return productive
		}
	}
}

// snapState is one in-progress chunked install: the expected next chunk,
// the covered sequence the commit will claim, and — for apps without
// ChunkedReplicaApp — the assembled blob.
type snapState struct {
	active  bool
	covered uint64
	next    int
	blob    []byte
}

// abortSnap discards a partial chunked install after a torn transfer.
func (f *Follower) abortSnap(s *snapState) {
	if f.chunkApp != nil {
		f.chunkApp.AbortReplicaSnapshot()
	}
	s.active = false
	s.blob = s.blob[:0]
	f.snapAborts.Add(1)
}

func (f *Follower) send(c Conn, buf []byte, m message) ([]byte, error) {
	buf = encodeMessage(buf[:0], m)
	return buf, c.Send(buf)
}
