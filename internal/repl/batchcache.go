package repl

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/wal"
)

// batchCache is the frame-once/ship-many core of the leader: every
// follower session at the same log cursor shares one immutable,
// pre-encoded frame buffer, so the WAL tail read, EncodeFrames, and the
// per-record CRCs run once per batch regardless of follower count.
//
// An entry's identity is the (afterSeq, uptoSeq) pair it was produced
// for: afterSeq is the cursor it extends and uptoSeq the durability
// watermark it was read against. Entries are indexed by afterSeq alone,
// and a later request at the same cursor reuses the entry even if it
// sampled a different watermark — safe in both directions, because the
// watermark is monotone: every framed record was at or below a real
// watermark when the entry was built, so it is durable for any requester,
// and a requester whose newer watermark covers more records simply picks
// them up at the next cursor position.
//
// The cache also owns the TailReaders. After building the entry for
// cursor A ending at sequence L, the reader that produced it is re-keyed
// at L, so a group of followers advancing together drives one reader
// forward instead of re-opening and re-scanning segment files per batch.
//
// Entries are refcounted: a session holds a reference across its Send so
// eviction can never recycle a buffer on the wire. Buffers are recycled
// through a sync.Pool once an evicted entry's last reference drops.
type batchCache struct {
	w *wal.WAL

	// mu serializes lookups and production. Holding it across the WAL
	// tail read is what gives same-cursor requests single-flight: the
	// second session at a cursor blocks briefly and then hits.
	mu      sync.Mutex
	entries map[uint64]*cachedBatch
	order   []*cachedBatch // insertion order, for FIFO eviction
	starts  []uint64       // sorted entry start cursors, for re-alignment
	bytes   int

	readers map[uint64]*wal.TailReader // pooled readers keyed by cursor
	recs    []wal.Record               // tail-read scratch; never retained

	maxEntries int
	maxBytes   int
	maxReaders int

	bufs sync.Pool // *[]byte frame buffers

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cachedBatch struct {
	prevSeq uint64 // cursor this batch extends
	lastSeq uint64 // highest sequence framed
	uptoSeq uint64 // durability watermark at build time
	frames  []byte // EncodeFrames output; immutable once published
	count   int

	// refs and evicted are guarded by batchCache.mu. The buffer is
	// recycled when an evicted entry's refcount reaches zero.
	refs    int
	evicted bool
}

// The capacity bounds trade leader memory for lag tolerance: a follower
// whose cursor trails the leading session by more than the cached window
// stops hitting and re-frames its own batch chain — and once its batch
// boundaries diverge, it cannot rejoin the shared chain until it catches
// back up to cached entries. The defaults cover roughly half a million
// records of lag (~1024 batches of 512) within a bounded frame budget.
const (
	defaultCacheEntries = 1024
	defaultCacheBytes   = 32 << 20
	defaultCacheReaders = 16
)

func newBatchCache(w *wal.WAL) *batchCache {
	return &batchCache{
		w:          w,
		entries:    make(map[uint64]*cachedBatch),
		readers:    make(map[uint64]*wal.TailReader),
		maxEntries: defaultCacheEntries,
		maxBytes:   defaultCacheBytes,
		maxReaders: defaultCacheReaders,
	}
}

// get returns the batch extending afterSeq, building it on miss. A nil
// entry with gap=false means nothing new is durable past the cursor yet.
// gap=true means the log was compacted past the cursor — the caller must
// fall back to a snapshot. The caller owns one reference on a returned
// entry and must release it after the send.
func (c *batchCache) get(afterSeq, uptoSeq uint64, max int) (e *cachedBatch, gap bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[afterSeq]; e != nil {
		c.hits.Add(1)
		e.refs++
		return e, false, nil
	}
	c.misses.Add(1)
	// Re-alignment: a cursor that fell off the shared batch chain (its
	// last batch ended where no entry starts) reads only up to the next
	// cached boundary, so this one unshared partial batch lands it exactly
	// on the chain and everything after is a hit. Without this, a session
	// that diverges once builds private, never-shared batches until it
	// overtakes the whole cached window.
	limit := uptoSeq
	if i := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] > afterSeq }); i < len(c.starts) && c.starts[i] < limit {
		limit = c.starts[i]
	}
	r := c.readers[afterSeq]
	if r != nil {
		delete(c.readers, afterSeq)
	} else {
		r = c.w.OpenTail(afterSeq)
	}
	recs, gap, rerr := r.ReadInto(c.recs[:0], limit, max)
	c.recs = recs
	if rerr == nil && !gap && len(recs) == 0 && r.AfterSeq() < limit {
		// Durable records the cursor needs are not readable from the log —
		// compacted away before this cursor got them (the tail reader
		// itself only notices once a later frame appears).
		gap = true
	}
	if rerr != nil || gap {
		r.Close()
		return nil, gap, rerr
	}
	if len(recs) == 0 {
		c.stashReader(afterSeq, r)
		return nil, false, nil
	}
	var buf []byte
	if p, ok := c.bufs.Get().(*[]byte); ok {
		buf = (*p)[:0]
	}
	e = &cachedBatch{
		prevSeq: afterSeq,
		lastSeq: recs[len(recs)-1].Seq,
		uptoSeq: limit,
		frames:  wal.EncodeFrames(buf, recs),
		count:   len(recs),
		refs:    1,
	}
	c.entries[afterSeq] = e
	c.order = append(c.order, e)
	c.insertStart(afterSeq)
	c.bytes += len(e.frames)
	c.stashReader(e.lastSeq, r)
	c.evictLocked()
	return e, false, nil
}

// release drops the caller's reference; the last release of an evicted
// entry recycles its buffer.
func (c *batchCache) release(e *cachedBatch) {
	if e == nil {
		return
	}
	c.mu.Lock()
	e.refs--
	recycle := e.evicted && e.refs == 0
	c.mu.Unlock()
	if recycle {
		c.recycle(e)
	}
}

func (c *batchCache) recycle(e *cachedBatch) {
	buf := e.frames[:0]
	e.frames = nil
	c.bufs.Put(&buf)
}

func (c *batchCache) evictLocked() {
	for len(c.order) > 0 && (len(c.order) > c.maxEntries || c.bytes > c.maxBytes) {
		e := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, e.prevSeq)
		c.removeStart(e.prevSeq)
		c.bytes -= len(e.frames)
		e.evicted = true
		if e.refs == 0 {
			c.recycle(e)
		}
	}
}

func (c *batchCache) insertStart(pos uint64) {
	i := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] >= pos })
	c.starts = append(c.starts, 0)
	copy(c.starts[i+1:], c.starts[i:])
	c.starts[i] = pos
}

func (c *batchCache) removeStart(pos uint64) {
	i := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] >= pos })
	if i < len(c.starts) && c.starts[i] == pos {
		c.starts = append(c.starts[:i], c.starts[i+1:]...)
	}
}

// stashReader parks a reader at its cursor position for the next miss at
// that position. The pool is small: beyond it, closing and re-opening is
// cheaper than holding handles for cursors no follower is near.
func (c *batchCache) stashReader(pos uint64, r *wal.TailReader) {
	if _, ok := c.readers[pos]; ok || len(c.readers) >= c.maxReaders {
		r.Close()
		return
	}
	c.readers[pos] = r
}

func (c *batchCache) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for pos, r := range c.readers {
		r.Close()
		delete(c.readers, pos)
	}
	c.entries = make(map[uint64]*cachedBatch)
	c.order = nil
	c.starts = nil
	c.bytes = 0
}

// Hits and Misses are cumulative counters for the metrics plane.
func (c *batchCache) Hits() uint64   { return c.hits.Load() }
func (c *batchCache) Misses() uint64 { return c.misses.Load() }
