package experiments

import (
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func outcome(r sim.Result) MethodOutcome {
	return MethodOutcome{
		CorrectFraction: r.CorrectFraction(),
		MedianRatio:     r.MedianRatio(),
		Trims:           r.Trims,
	}
}

// MethodOutcome is one method's correctness and accuracy on one queue.
type MethodOutcome struct {
	CorrectFraction float64
	MedianRatio     float64
	Trims           int
}

// Table34Row holds the reproduced and published Tables 3 and 4 values for
// one queue: fraction of correct 0.95-quantile/95%-confidence upper bounds
// (Table 3) and the median actual/predicted ratio (Table 4) for BMBP and
// the two log-normal variants.
type Table34Row struct {
	Machine, Queue string
	Character      string
	Jobs           int

	BMBP, LogNoTrim, LogTrim MethodOutcome

	// Published values from the paper for the same queue.
	PaperBMBP, PaperLogNoTrim, PaperLogTrim          float64
	PaperBMBPRatio, PaperNoTrimRatio, PaperTrimRatio float64
}

// Table34 reproduces Tables 3 and 4: each of the paper's 32 evaluated
// queues is generated, replayed through the evaluation simulator against
// the three methods, and scored.
func Table34(cfg Config) []Table34Row {
	cfg = cfg.withDefaults()
	queues := trace.Table3Queues()
	rows := make([]Table34Row, len(queues))
	forEachIndex(len(queues), func(i int) {
		p := queues[i]
		t := cfg.GenerateQueue(p)
		res := cfg.EvalQueue(t)
		rows[i] = Table34Row{
			Machine:   p.Machine,
			Queue:     p.Queue,
			Character: workload.CharacterOf(p).String(),
			Jobs:      t.Len(),

			BMBP:      outcome(res[0]),
			LogNoTrim: outcome(res[1]),
			LogTrim:   outcome(res[2]),

			PaperBMBP:      p.BMBPCorrect,
			PaperLogNoTrim: p.LogNoTrimCorrect,
			PaperLogTrim:   p.LogTrimCorrect,

			PaperBMBPRatio:   p.BMBPRatio,
			PaperNoTrimRatio: p.LogNoTrimRatio,
			PaperTrimRatio:   p.LogTrimRatio,
		}
	})
	return rows
}
