package experiments

import (
	"time"

	"repro/internal/predictor"
	"repro/internal/report"
	"repro/internal/trace"
)

// Figure1 reproduces the paper's Figure 1: the BMBP-predicted upper bound
// on the 0.95 quantile (95% confidence) for the SDSC Datastar "normal"
// queue and the TACC Lonestar "normal" queue through February 24, 2005,
// sampled every five minutes. A user choosing between the two sites reads
// the gap directly off the two series.
func Figure1(cfg Config) []report.Series {
	day := time.Date(2005, 2, 24, 0, 0, 0, 0, time.UTC)
	return []report.Series{
		boundSeries(cfg, "datastar", "normal", nil, day.Unix(), day.Add(24*time.Hour).Unix(), 300, "sdsc-datastar-normal"),
		boundSeries(cfg, "tacc2", "normal", nil, day.Unix(), day.Add(24*time.Hour).Unix(), 300, "tacc-lonestar-normal"),
	}
}

// Figure2 reproduces the paper's Figure 2: BMBP bound series for the
// Datastar "normal" queue during June 2004, split by requested processor
// count (1-4 versus 17-64). The generated trace reproduces the month's
// inverted priority — larger jobs were favored — so the 17-64 series sits
// below the 1-4 series, the observation the paper found surprising enough
// to verify by hand.
func Figure2(cfg Config) []report.Series {
	from := time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC).Unix()
	to := time.Date(2004, 7, 1, 0, 0, 0, 0, time.UTC).Unix()
	const step = 6 * 3600
	b14 := trace.Procs1to4
	b1764 := trace.Procs17to64
	return []report.Series{
		boundSeries(cfg, "datastar", "normal", &b14, from, to, step, "procs-1-4"),
		boundSeries(cfg, "datastar", "normal", &b1764, from, to, step, "procs-17-64"),
	}
}

// boundSeries replays a queue (optionally restricted to one processor
// bucket, with its own BMBP instance, as in Section 6.2) and samples the
// quoted 0.95-quantile bound on a fixed grid.
func boundSeries(cfg Config, machine, queue string, bucket *trace.ProcBucket, from, to, step int64, label string) report.Series {
	cfg = cfg.withDefaults()
	p := trace.FindPaperQueue(machine, queue)
	if p == nil {
		return report.Series{Label: label}
	}
	t := cfg.GenerateQueue(p)
	if bucket != nil {
		t = t.FilterProcs(*bucket)
	}
	bmbp := predictor.NewBMBP(cfg.Quantile, cfg.Confidence, cfg.Seed)

	s := report.Series{Label: label}
	simCfg := cfg.Sim
	simCfg.SampleEvery = step
	simCfg.SampleFrom = from
	simCfg.SampleTo = to
	simCfg.OnSample = func(ts int64, preds []predictor.Predictor) {
		v, ok := preds[0].Bound()
		if !ok {
			v = nan
		}
		s.Times = append(s.Times, ts)
		s.Values = append(s.Values, v)
	}
	replay(t, []predictor.Predictor{bmbp}, simCfg)
	return s
}
