package experiments

import (
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Extended comparison — beyond the paper's three methods. The paper's
// related work motivates two more comparators (Downey's log-uniform model,
// references [5, 6]) and Section 5 sketches the degenerate
// "astronomically large guess" strategy; this experiment runs the full
// field over the same 32 queues so their failure modes are visible side
// by side:
//
//   - bmbp            the paper's method
//   - logn-notrim     parametric, full history
//   - logn-trim       parametric with BMBP's change-point trimming
//   - loguniform      Downey-style log-uniform quantile (point estimate)
//   - loguniform-trim same, with trimming
//   - running-max     maximally conservative baseline
//   - empirical       sample quantile with no confidence margin
//
// Correctness alone flatters the conservative methods (running-max is
// nearly always "correct"); pairing it with the median actual/predicted
// ratio exposes them, which is precisely the paper's accuracy argument.

// ExtendedMethods lists the method names in output order.
var ExtendedMethods = []string{
	"bmbp", "logn-notrim", "logn-trim",
	"loguniform", "loguniform-trim", "running-max", "empirical",
}

func extendedPredictors(q, c float64, seed int64) []predictor.Predictor {
	return []predictor.Predictor{
		predictor.NewBMBP(q, c, seed),
		predictor.NewLogNormal(predictor.LogNormalConfig{Quantile: q, Confidence: c}),
		predictor.NewLogNormal(predictor.LogNormalConfig{Quantile: q, Confidence: c, Trim: true}),
		predictor.NewLogUniform(predictor.LogUniformConfig{Quantile: q, Confidence: c}),
		predictor.NewLogUniform(predictor.LogUniformConfig{Quantile: q, Confidence: c, Trim: true}),
		predictor.NewRunningMax(q, c),
		predictor.NewEmpirical(q, c, seed),
	}
}

// ExtendedRow holds all methods' outcomes on one queue, indexed like
// ExtendedMethods.
type ExtendedRow struct {
	Machine, Queue string
	Outcomes       []MethodOutcome
}

// Extended runs the full comparator field over the paper's 32 evaluated
// queues.
func Extended(cfg Config) []ExtendedRow {
	cfg = cfg.withDefaults()
	queues := trace.Table3Queues()
	rows := make([]ExtendedRow, len(queues))
	forEachIndex(len(queues), func(i int) {
		p := queues[i]
		t := cfg.GenerateQueue(p)
		preds := extendedPredictors(cfg.Quantile, cfg.Confidence, cfg.Seed)
		results := replay(t, preds, cfg.Sim)
		row := ExtendedRow{Machine: p.Machine, Queue: p.Queue}
		for _, r := range results {
			row.Outcomes = append(row.Outcomes, outcome(r))
		}
		rows[i] = row
	})
	return rows
}

// ExtendedSummary aggregates each method over the queues: how many queues
// it was correct on, and the median of its per-queue median ratios (a
// crude single-number accuracy).
type ExtendedSummary struct {
	Method         string
	QueuesCorrect  int
	QueuesTotal    int
	MedianOfRatios float64
}

// SummarizeExtended reduces Extended's rows to one line per method.
func SummarizeExtended(rows []ExtendedRow) []ExtendedSummary {
	out := make([]ExtendedSummary, len(ExtendedMethods))
	for m := range ExtendedMethods {
		ratios := make([]float64, 0, len(rows))
		correct := 0
		for _, r := range rows {
			o := r.Outcomes[m]
			if o.CorrectFraction >= 0.95 {
				correct++
			}
			if o.MedianRatio > 0 {
				ratios = append(ratios, o.MedianRatio)
			}
		}
		out[m] = ExtendedSummary{
			Method:         ExtendedMethods[m],
			QueuesCorrect:  correct,
			QueuesTotal:    len(rows),
			MedianOfRatios: medianFloat(ratios),
		}
	}
	return out
}

func medianFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
