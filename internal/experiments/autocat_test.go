package experiments

import (
	"testing"

	"repro/internal/scheduler"
)

func checkStrategies(t *testing.T, results []AutoCatResult, floor float64) map[string]AutoCatResult {
	t.Helper()
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]AutoCatResult{}
	for _, r := range results {
		byName[r.Strategy] = r
		if r.Scored == 0 {
			t.Fatalf("%s scored nothing", r.Strategy)
		}
		// Every strategy rides on BMBP, so every strategy must stay near
		// the correctness target.
		if r.CorrectFraction < floor {
			t.Errorf("%s correct %.3f below %.2f", r.Strategy, r.CorrectFraction, floor)
		}
	}
	if byName["merged"].Categories != 1 {
		t.Error("merged should have one category")
	}
	if byName["fixed-buckets"].Categories < 2 {
		t.Errorf("fixed buckets = %d categories", byName["fixed-buckets"].Categories)
	}
	if byName["learned"].Categories < 2 {
		t.Errorf("learned = %d categories", byName["learned"].Categories)
	}
	return byName
}

func TestAutoCategoriesOnSyntheticQueue(t *testing.T) {
	// datastar/normal: category differences exist but the congestion
	// episodes (bucket-independent) dominate the upper tail, so splitting
	// is roughly a wash here — the interesting assertion is that it does
	// not cost correctness.
	checkStrategies(t, AutoCategories(Config{}, "datastar", "normal"), 0.94)
	if AutoCategories(Config{}, "nope", "nope") != nil {
		t.Error("unknown queue should be nil")
	}
}

func TestAutoCategoriesOnSchedulerTrace(t *testing.T) {
	// On emergent waits from the backfilling scheduler, job size is the
	// dominant wait factor (small jobs slip into holes, wide jobs queue),
	// so per-category prediction must buy real accuracy over a merged
	// predictor.
	jobs := scheduler.GenerateJobs(scheduler.WorkloadConfig{Jobs: 25000, Seed: 31})
	res, err := scheduler.Run(scheduler.DefaultMachine(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace("sim128", "normal")
	// Emergent scheduler waits are harsher than the calibrated suite (the
	// queue-ceiling kills and backfill reservations produce abrupt regime
	// flips no predictor sees coming), so the correctness floor here is
	// looser than the paper-suite 0.95 — what matters is that all three
	// strategies sit together near the target.
	byName := checkStrategies(t, AutoCategoriesOn(Config{}, tr), 0.90)
	// Most scheduler waits are zero, so the median ratio degenerates; the
	// mean ratio is instead dominated by the magnitude of misses (jobs
	// whose wait dwarfed the quoted bound). A merged predictor quotes
	// small-job-ish bounds to wide jobs and takes huge overshoots;
	// per-category prediction must shrink that tail substantially.
	merged := byName["merged"].MeanRatio
	if merged == 0 {
		t.Fatal("mean ratio degenerate")
	}
	for _, s := range []string{"fixed-buckets", "learned"} {
		if got := byName[s].MeanRatio; got >= merged {
			t.Errorf("%s mean overshoot %.3g not below merged %.3g", s, got, merged)
		}
	}
}
