package experiments

import (
	"repro/internal/trace"
)

// MinBucketJobs is the paper's reporting threshold for the by-processor-
// count tables: categories with fewer than 1000 jobs are dropped ("-"),
// since a year-long trace averaging under ~4 such jobs a day cannot give
// significant results (Section 6.2).
const MinBucketJobs = 1000

// Table567Row holds one queue's by-processor-count correctness for all
// three methods (Tables 5, 6, and 7 in the paper; NaN = dropped cell).
type Table567Row struct {
	Machine, Queue string

	// [bucket] correct fractions; NaN where the bucket has < MinBucketJobs.
	BMBP      [4]float64
	LogNoTrim [4]float64
	LogTrim   [4]float64
	// Jobs per bucket, before thresholding.
	Jobs [4]int

	// PaperPresent marks the buckets the paper's Table 5 reports.
	PaperPresent [4]bool
}

// Table567 reproduces the paper's by-processor-count evaluation: each
// queue's trace is subdivided by the requested processor count into the
// four TACC-suggested ranges, and each subdivision with at least 1000 jobs
// is evaluated independently, exactly as the by-queue runs are.
func Table567(cfg Config) []Table567Row {
	cfg = cfg.withDefaults()
	queues := trace.Table5Queues()
	rows := make([]Table567Row, len(queues))
	forEachIndex(len(queues), func(i int) {
		p := queues[i]
		full := cfg.GenerateQueue(p)
		row := Table567Row{Machine: p.Machine, Queue: p.Queue}
		for _, b := range p.Buckets {
			row.PaperPresent[b] = true
		}
		for _, b := range trace.AllBuckets {
			sub := cachedFilter(full, b)
			row.Jobs[b] = sub.Len()
			if sub.Len() < MinBucketJobs {
				row.BMBP[b], row.LogNoTrim[b], row.LogTrim[b] = nan, nan, nan
				continue
			}
			res := cfg.EvalQueue(sub)
			row.BMBP[b] = res[0].CorrectFraction()
			row.LogNoTrim[b] = res[1].CorrectFraction()
			row.LogTrim[b] = res[2].CorrectFraction()
		}
		rows[i] = row
	})
	return rows
}
