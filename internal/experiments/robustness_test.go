package experiments

import "testing"

// TestSeedRobustness guards against the reproduction being tuned to one
// lucky seed: under fresh workload seeds, the headline shapes must hold —
// BMBP correct (or within noise of 0.95) everywhere except the designed
// LANL/short failure, and the pass/fail pattern agreeing with the paper on
// the large majority of cells.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{7, 123} {
		rows := Table34(Config{Seed: seed})
		agree, total := 0, 0
		borderline := 0
		for _, r := range rows {
			check := func(got, want float64) {
				total++
				if (got < 0.95) == (want < 0.95) {
					agree++
				}
			}
			check(r.BMBP.CorrectFraction, r.PaperBMBP)
			check(r.LogNoTrim.CorrectFraction, r.PaperLogNoTrim)
			check(r.LogTrim.CorrectFraction, r.PaperLogTrim)

			name := r.Machine + "/" + r.Queue
			if name == "lanl/short" {
				continue
			}
			switch {
			case r.BMBP.CorrectFraction >= 0.95:
			case r.BMBP.CorrectFraction >= 0.94:
				// Within sampling noise of the target; tolerate one.
				borderline++
			default:
				t.Errorf("seed %d: %s BMBP %.3f well below 0.95", seed, name, r.BMBP.CorrectFraction)
			}
		}
		if borderline > 1 {
			t.Errorf("seed %d: %d borderline BMBP cells", seed, borderline)
		}
		if frac := float64(agree) / float64(total); frac < 0.85 {
			t.Errorf("seed %d: agreement %.2f (%d/%d)", seed, frac, agree, total)
		}
	}
}
