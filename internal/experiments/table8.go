package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Table8Row is one sampling instant of the "day in the life" experiment: a
// 95%-confidence lower bound on the 0.25 quantile and 95%-confidence upper
// bounds on the 0.5, 0.75, and 0.95 quantiles of the datastar/normal queue
// delay, regenerated every two hours from the live history (paper
// Table 8).
type Table8Row struct {
	Time int64
	// Q25Lower, Q50, Q75, Q95 are the bounds in seconds (NaN when the
	// history is too short, which does not occur past training).
	Q25Lower, Q50, Q75, Q95 float64
}

// Table8 replays the datastar/normal trace and samples the full quantile
// profile every two hours through the paper's chosen day (May 5, 2004,
// sampled 13 times like the published table).
func Table8(cfg Config) []Table8Row {
	return QuantileProfileDay(cfg, "datastar", "normal", time.Date(2004, 5, 5, 0, 0, 0, 0, time.UTC))
}

// QuantileProfileDay computes the Table 8 experiment for any machine/queue
// and day: 13 samples at two-hour spacing starting at midnight.
func QuantileProfileDay(cfg Config, machine, queue string, day time.Time) []Table8Row {
	cfg = cfg.withDefaults()
	p := trace.FindPaperQueue(machine, queue)
	if p == nil {
		return nil
	}
	t := cfg.GenerateQueue(p)
	bmbp := predictor.NewBMBP(cfg.Quantile, cfg.Confidence, cfg.Seed)

	from := day.Unix()
	const step = 2 * 3600
	var rows []Table8Row
	simCfg := cfg.Sim
	simCfg.SampleEvery = step
	simCfg.SampleFrom = from
	simCfg.SampleTo = from + 13*step
	simCfg.OnSample = func(ts int64, preds []predictor.Predictor) {
		b := preds[0].(*core.BMBP)
		prof := core.ProfileOf(b, core.Table8Specs)
		row := Table8Row{Time: ts, Q25Lower: nan, Q50: nan, Q75: nan, Q95: nan}
		vals := []*float64{&row.Q25Lower, &row.Q50, &row.Q75, &row.Q95}
		for i, e := range prof {
			if e.OK {
				*vals[i] = e.Bound
			}
		}
		rows = append(rows, row)
	}
	replay(t, []predictor.Predictor{bmbp}, simCfg)
	return rows
}
