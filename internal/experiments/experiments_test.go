package experiments

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// The experiments run the full evaluation pipeline over the calibrated
// synthetic suite; these are the repository's headline integration tests,
// asserting the paper's qualitative results hold end to end.

func TestTable1Calibration(t *testing.T) {
	rows := Table1(Config{})
	if len(rows) != 39 {
		t.Fatalf("rows = %d", len(rows))
	}
	badMedian := 0
	for _, r := range rows {
		if r.Generated.Count != r.Paper.JobCount {
			t.Errorf("%s/%s: count %d vs %d", r.Machine, r.Queue, r.Generated.Count, r.Paper.JobCount)
		}
		medT := math.Max(r.Paper.Median, 1)
		med := math.Max(r.Generated.Median, 1)
		if ratio := med / medT; ratio > 4 || ratio < 0.25 {
			badMedian++
			t.Logf("%s/%s: median %g vs %g", r.Machine, r.Queue, r.Generated.Median, r.Paper.Median)
		}
		// Heavy tail everywhere: mean above median.
		if r.Generated.Mean < r.Generated.Median {
			t.Errorf("%s/%s: generated tail too light", r.Machine, r.Queue)
		}
	}
	if badMedian > 2 {
		t.Errorf("%d queues outside median tolerance", badMedian)
	}
}

func TestTable34HeadlineResults(t *testing.T) {
	rows := Table34(Config{})
	if len(rows) != 32 {
		t.Fatalf("rows = %d", len(rows))
	}
	const pass = 0.95
	agree := 0
	total := 0
	bmbpAccuracyWins := 0
	for _, r := range rows {
		name := r.Machine + "/" + r.Queue

		// The paper's single BMBP failure is LANL/short; every other
		// queue must clear 0.95.
		if name == "lanl/short" {
			if r.BMBP.CorrectFraction >= pass {
				t.Errorf("%s: BMBP %.3f should reproduce the paper's failure", name, r.BMBP.CorrectFraction)
			}
		} else if r.BMBP.CorrectFraction < pass {
			t.Errorf("%s: BMBP %.3f below 0.95", name, r.BMBP.CorrectFraction)
		}

		// BMBP must not be grossly over-conservative either: the paper's
		// fractions cluster at 0.95-0.99.
		if r.BMBP.CorrectFraction > 0.999 {
			t.Errorf("%s: BMBP %.3f suspiciously conservative", name, r.BMBP.CorrectFraction)
		}

		// Pass/fail pattern agreement with the paper, per method.
		check := func(got, want float64) {
			total++
			if (got < pass) == (want < pass) {
				agree++
			}
		}
		check(r.BMBP.CorrectFraction, r.PaperBMBP)
		check(r.LogNoTrim.CorrectFraction, r.PaperLogNoTrim)
		check(r.LogTrim.CorrectFraction, r.PaperLogTrim)

		if r.BMBP.MedianRatio > math.Max(r.LogNoTrim.MedianRatio, r.LogTrim.MedianRatio) {
			bmbpAccuracyWins++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.88 {
		t.Errorf("pass/fail pattern agreement %.2f (%d/%d) below 0.88", frac, agree, total)
	}
	// The untrimmed log-normal must fail on a substantial set of queues
	// (the paper: 13 of 32) and trimming must repair most of them.
	noTrimFails, trimFails := 0, 0
	for _, r := range rows {
		if r.LogNoTrim.CorrectFraction < pass {
			noTrimFails++
		}
		if r.LogTrim.CorrectFraction < pass {
			trimFails++
		}
	}
	if noTrimFails < 8 {
		t.Errorf("logn-notrim fails on only %d queues; the paper's effect is absent", noTrimFails)
	}
	if trimFails >= noTrimFails {
		t.Errorf("trimming did not help: %d fails vs %d untrimmed", trimFails, noTrimFails)
	}
	// Accuracy: BMBP quotes the tightest bound (highest actual/predicted
	// median ratio) on a majority of queues, as in the paper's boldface.
	if bmbpAccuracyWins < len(rows)/2 {
		t.Errorf("BMBP tightest on only %d of %d queues", bmbpAccuracyWins, len(rows))
	}
}

func TestTable567ByProcessorCount(t *testing.T) {
	rows := Table567(Config{})
	if len(rows) != 27 {
		t.Fatalf("rows = %d", len(rows))
	}
	const pass = 0.95
	cellsChecked := 0
	for _, r := range rows {
		for _, b := range trace.AllBuckets {
			has := !math.IsNaN(r.BMBP[b])
			if has != r.PaperPresent[b] {
				t.Errorf("%s/%s bucket %s: presence %v, paper %v (jobs %d)",
					r.Machine, r.Queue, b.Label(), has, r.PaperPresent[b], r.Jobs[b])
				continue
			}
			if !has {
				continue
			}
			cellsChecked++
			// Table 5's shape: BMBP makes the desired fraction in every
			// reported cell.
			if r.BMBP[b] < pass {
				t.Errorf("%s/%s bucket %s: BMBP %.3f below 0.95", r.Machine, r.Queue, b.Label(), r.BMBP[b])
			}
		}
	}
	if cellsChecked < 40 {
		t.Errorf("only %d populated cells", cellsChecked)
	}
	// Tables 6/7 shape: the log-normal fails somewhere, and trimming
	// strictly reduces the failure count.
	noTrimFails, trimFails := 0, 0
	for _, r := range rows {
		for _, b := range trace.AllBuckets {
			if math.IsNaN(r.LogNoTrim[b]) {
				continue
			}
			if r.LogNoTrim[b] < pass {
				noTrimFails++
			}
			if r.LogTrim[b] < pass {
				trimFails++
			}
		}
	}
	if noTrimFails == 0 {
		t.Error("log-normal without trimming should fail in some cells")
	}
	if trimFails > noTrimFails {
		t.Errorf("trimming increased failures: %d vs %d", trimFails, noTrimFails)
	}
}

func TestTable8ProfileShape(t *testing.T) {
	rows := Table8(Config{})
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13 (the paper samples 13 times)", len(rows))
	}
	for i, r := range rows {
		if math.IsNaN(r.Q25Lower) || math.IsNaN(r.Q95) {
			t.Fatalf("row %d missing bounds: %+v", i, r)
		}
		// Quantile ordering within each row.
		if !(r.Q25Lower <= r.Q50 && r.Q50 <= r.Q75 && r.Q75 <= r.Q95) {
			t.Errorf("row %d not ordered: %+v", i, r)
		}
		if i > 0 && r.Time-rows[i-1].Time != 7200 {
			t.Errorf("rows not 2h apart: %d", r.Time-rows[i-1].Time)
		}
	}
}

func TestFigure1SiteGap(t *testing.T) {
	series := Figure1(Config{})
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	sdsc, tacc := series[0], series[1]
	if len(sdsc.Values) != 288 || len(tacc.Values) != 288 {
		t.Fatalf("lengths %d/%d, want 288 five-minute samples", len(sdsc.Values), len(tacc.Values))
	}
	// The paper's headline: through most of Feb 24, 2005 a user would
	// predict a far shorter start on TACC than on SDSC.
	taccLower := 0
	for i := range sdsc.Values {
		if tacc.Values[i] < sdsc.Values[i] {
			taccLower++
		}
	}
	if frac := float64(taccLower) / 288; frac < 0.75 {
		t.Errorf("TACC bound below SDSC only %.0f%% of the day", frac*100)
	}
	// And the gap is large where it holds (paper: 12 s vs days).
	ratio := medianOf(sdsc.Values) / math.Max(medianOf(tacc.Values), 1)
	if ratio < 20 {
		t.Errorf("site gap ratio %.1f, want > 20x", ratio)
	}
}

func TestFigure2LargerJobsFavored(t *testing.T) {
	series := Figure2(Config{})
	small, large := series[0], series[1]
	if len(small.Values) == 0 || len(small.Values) != len(large.Values) {
		t.Fatal("series lengths")
	}
	largeLower := 0
	for i := range small.Values {
		if large.Values[i] < small.Values[i] {
			largeLower++
		}
	}
	// The inversion the paper verified by hand: the 17-64 bound sits
	// below the 1-4 bound through (essentially all of) June 2004.
	if frac := float64(largeLower) / float64(len(small.Values)); frac < 0.9 {
		t.Errorf("large-job bound lower only %.0f%% of the month", frac*100)
	}
}

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 42 || c.Quantile != 0.95 || c.Confidence != 0.95 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestGenerateQueueMatchesSuiteSeeding(t *testing.T) {
	cfg := Config{Seed: 42}
	p := trace.FindPaperQueue("nersc", "debug")
	a := cfg.GenerateQueue(p)
	b := cfg.GenerateQueue(p)
	if a.Len() != b.Len() || a.Jobs[0] != b.Jobs[0] || a.Jobs[a.Len()-1] != b.Jobs[b.Len()-1] {
		t.Fatal("GenerateQueue not deterministic")
	}
}
