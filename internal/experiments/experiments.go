// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) from the calibrated synthetic trace suite: the
// Table 1 workload summary, the by-queue correctness and accuracy
// comparisons of Tables 3 and 4, the by-processor-count breakdowns of
// Tables 5-7, the Table 8 quantile profile, and the Figure 1/2 bound time
// series. Each experiment returns plain data (paired with the paper's
// published values where applicable) so the cmd tools, tests, and
// benchmarks all share one implementation.
package experiments

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives trace generation and predictor internals; a fixed seed
	// reproduces every table byte-for-byte.
	Seed int64
	// Quantile and Confidence default to the paper's 0.95/0.95.
	Quantile   float64
	Confidence float64
	// Sim overrides the evaluation simulator settings (zero value = the
	// paper's: 300 s epochs, 10% training).
	Sim sim.Config
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Quantile == 0 {
		c.Quantile = 0.95
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	return c
}

// queueSeed derives the per-queue generation seed, matching workload.Suite.
func queueSeed(base int64, index int) int64 {
	return base + int64(index)*7919
}

// GenerateQueue builds the calibrated synthetic trace for one embedded
// paper queue under this configuration. Generation is memoized per
// (seed, queue): every experiment sharing a Config seed gets the same
// trace instance, which callers must not mutate.
func (c Config) GenerateQueue(p *trace.PaperQueue) *trace.Trace {
	c = c.withDefaults()
	for i := range trace.PaperQueues {
		if &trace.PaperQueues[i] == p || (trace.PaperQueues[i].Machine == p.Machine && trace.PaperQueues[i].Queue == p.Queue) {
			seed := queueSeed(c.Seed, i)
			return cachedTrace(genKey{seed, p.Machine, p.Queue}, func() *trace.Trace {
				return workload.ModelFor(p, seed).Generate()
			})
		}
	}
	return cachedTrace(genKey{c.Seed, p.Machine, p.Queue}, func() *trace.Trace {
		return workload.ModelFor(p, c.Seed).Generate()
	})
}

// EvalQueue replays one trace against the paper's three methods and returns
// their results in table column order (BMBP, logn-notrim, logn-trim).
// Replays of a cached trace instance are memoized per (seed, quantile,
// confidence, sim settings), so tables that score the same queue under the
// same configuration share one replay pass; runs with sampling callbacks
// are never cached. The returned results are shared — treat as read-only.
func (c Config) EvalQueue(t *trace.Trace) []sim.Result {
	c = c.withDefaults()
	run := func() []sim.Result {
		preds := predictor.Standard(c.Quantile, c.Confidence, c.Seed)
		return replay(t, preds, c.Sim)
	}
	if !c.evalCachable() {
		return run()
	}
	return cachedEval(evalKey{t, c.Seed, c.Quantile, c.Confidence, simParamsOf(c.Sim)}, run)
}

// nan is the "no value" marker used across experiment outputs.
var nan = math.NaN()

// forEachIndex runs fn(i) for i in [0, n) on a bounded worker pool. Every
// experiment's per-queue work (generate + replay + score) is independent,
// so the table loops fan out across cores; results are written to
// pre-sized slices by index, which keeps output order deterministic.
func forEachIndex(n int, fn func(i int)) {
	parallel.ForEachIndex(n, fn)
}
