package experiments

import (
	"testing"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestGenerateQueueReturnsCachedInstance(t *testing.T) {
	cfg := Config{Seed: 1234}
	p := &trace.PaperQueues[0]
	a := cfg.GenerateQueue(p)
	b := cfg.GenerateQueue(p)
	if a != b {
		t.Fatal("same (seed, queue) generated twice")
	}
	if other := (Config{Seed: 1235}).GenerateQueue(p); other == a {
		t.Fatal("different seeds share a trace instance")
	}
}

func TestEvalQueueSharesReplay(t *testing.T) {
	cfg := Config{Seed: 1234}
	tr := cfg.GenerateQueue(&trace.PaperQueues[0])
	a := cfg.EvalQueue(tr)
	b := cfg.EvalQueue(tr)
	if &a[0] != &b[0] {
		t.Fatal("same configuration replayed twice")
	}
	// A different quantile is a different replay.
	c := (Config{Seed: 1234, Quantile: 0.5}).EvalQueue(tr)
	if &c[0] == &a[0] {
		t.Fatal("different quantiles share a replay")
	}
	// Explicit defaults hit the same entry as the zero value.
	d := (Config{Seed: 1234, Quantile: 0.95, Confidence: 0.95, Sim: sim.Config{EpochSeconds: 300, TrainFraction: 0.10}}).EvalQueue(tr)
	if &d[0] != &a[0] {
		t.Fatal("normalized defaults missed the cache")
	}
}

func TestEvalQueueWithSamplingIsNotCached(t *testing.T) {
	cfg := Config{Seed: 1234}
	tr := cfg.GenerateQueue(&trace.PaperQueues[0])
	calls := 0
	scfg := cfg
	scfg.Sim.SampleEvery = 86400
	scfg.Sim.SampleTo = 1 << 40
	scfg.Sim.OnSample = func(ts int64, preds []predictor.Predictor) { calls++ }
	a := scfg.EvalQueue(tr)
	first := calls
	b := scfg.EvalQueue(tr)
	if calls != 2*first || first == 0 {
		t.Fatalf("sampling run cached: %d then %d callback calls", first, calls)
	}
	if &a[0] == &b[0] {
		t.Fatal("sampling results shared")
	}
}

func TestCachedFilterSharesSubTraces(t *testing.T) {
	cfg := Config{Seed: 1234}
	tr := cfg.GenerateQueue(&trace.PaperQueues[0])
	a := cachedFilter(tr, trace.Procs1to4)
	b := cachedFilter(tr, trace.Procs1to4)
	if a != b {
		t.Fatal("same bucket filtered twice")
	}
	if c := cachedFilter(tr, trace.Procs5to16); c == a {
		t.Fatal("distinct buckets share a sub-trace")
	}
}
