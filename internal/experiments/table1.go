package experiments

import (
	"repro/internal/stats"
	"repro/internal/trace"
)

// Table1Row pairs a generated trace's summary statistics with the paper's
// published Table 1 values for the same machine/queue.
type Table1Row struct {
	Machine, Queue string

	Generated stats.Summary
	Paper     struct {
		JobCount             int
		Mean, Median, StdDev float64
	}
}

// Table1 regenerates the paper's Table 1: it generates all 39 calibrated
// queue traces and summarizes their queue delays.
func Table1(cfg Config) []Table1Row {
	cfg = cfg.withDefaults()
	rows := make([]Table1Row, len(trace.PaperQueues))
	forEachIndex(len(trace.PaperQueues), func(i int) {
		p := &trace.PaperQueues[i]
		t := cfg.GenerateQueue(p)
		row := Table1Row{Machine: p.Machine, Queue: p.Queue, Generated: t.Summary()}
		row.Paper.JobCount = p.JobCount
		row.Paper.Mean = p.AvgDelay
		row.Paper.Median = p.MedDelay
		row.Paper.StdDev = p.StdDelay
		rows[i] = row
	})
	return rows
}
