package experiments

import (
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Quantile/confidence sweep. Section 5 of the paper: "We examine several
// different combinations of quantile and confidence level as part of this
// verification" — the correctness property must hold for every (q, C), not
// just the headline 0.95/0.95. This experiment replays representative
// queues at a grid of levels and records BMBP's correct fraction for each.

// SweepPoint is one (quantile, confidence, queue) evaluation.
type SweepPoint struct {
	Machine, Queue string
	Quantile       float64
	Confidence     float64
	// CorrectFraction is BMBP's fraction of correct upper bounds; the
	// target is Quantile (not Confidence): over many predictions, at
	// least q of the per-job bounds should cover.
	CorrectFraction float64
	Scored          int
}

// SweepQueues are the default representative queues: one per workload
// character (clean, moderate, shifty, spiky).
var SweepQueues = [][2]string{
	{"llnl", "all"},    // clean
	{"nersc", "debug"}, // moderate
	{"sdsc", "low"},    // shifty
	{"lanl", "shared"}, // spiky
}

// SweepLevels are the (quantile, confidence) pairs evaluated.
var SweepLevels = [][2]float64{
	{0.50, 0.95},
	{0.75, 0.95},
	{0.90, 0.95},
	{0.95, 0.95},
	{0.95, 0.80},
	{0.99, 0.95},
}

// SweepQC runs BMBP at every level over every representative queue.
func SweepQC(cfg Config) []SweepPoint {
	cfg = cfg.withDefaults()
	points := make([]SweepPoint, len(SweepQueues)*len(SweepLevels))
	forEachIndex(len(points), func(idx int) {
		qi, li := idx/len(SweepLevels), idx%len(SweepLevels)
		name := SweepQueues[qi]
		level := SweepLevels[li]
		p := trace.FindPaperQueue(name[0], name[1])
		t := cfg.GenerateQueue(p)
		preds := []predictor.Predictor{predictor.NewBMBP(level[0], level[1], cfg.Seed)}
		res := replay(t, preds, cfg.Sim)
		points[idx] = SweepPoint{
			Machine:         name[0],
			Queue:           name[1],
			Quantile:        level[0],
			Confidence:      level[1],
			CorrectFraction: res[0].CorrectFraction(),
			Scored:          res[0].Scored,
		}
	})
	return points
}
