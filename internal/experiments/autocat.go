package experiments

import (
	"sort"

	"repro/internal/trace"
	"repro/qbets"
)

// Learned categories vs. fixed buckets — beyond the paper. Section 6.2
// fixes the processor-count categories to the four ranges TACC suggested;
// the authors' follow-up system learned categories from the workload
// instead. This experiment replays one queue three ways and compares:
//
//   - merged: a single predictor for the whole queue (Section 6.1 shape)
//   - fixed:  one predictor per fixed processor-count bucket (Section 6.2)
//   - auto:   qbets.AutoService with learned categories
//
// The replay honors the visibility rule (a wait is observable only at job
// start) with per-job scoring after a 10% training prefix, mirroring the
// main simulator.

// AutoCatResult summarizes one routing strategy's performance.
type AutoCatResult struct {
	Strategy        string
	Scored, Correct int
	CorrectFraction float64
	// MedianRatio is the paper's accuracy metric; MeanRatio is robust to
	// the zero-inflated waits an uncontended scheduler produces (where
	// the median actual wait — and so the median ratio — is exactly 0).
	MedianRatio float64
	MeanRatio   float64
	Categories  int
}

// AutoCategories runs the comparison on one embedded paper machine/queue.
func AutoCategories(cfg Config, machine, queue string) []AutoCatResult {
	cfg = cfg.withDefaults()
	p := trace.FindPaperQueue(machine, queue)
	if p == nil {
		return nil
	}
	return AutoCategoriesOn(cfg, cfg.GenerateQueue(p))
}

// AutoCategoriesOn runs the comparison on any trace.
func AutoCategoriesOn(cfg Config, t *trace.Trace) []AutoCatResult {
	cfg = cfg.withDefaults()
	queue := t.Queue

	type strategy struct {
		name     string
		observe  func(procs int, wait float64)
		forecast func(procs int) (float64, bool)
		cats     func() int
	}
	mkMerged := func() strategy {
		f := qbets.New(qbets.WithSeed(cfg.Seed))
		return strategy{
			name:     "merged",
			observe:  func(procs int, w float64) { f.Observe(w) },
			forecast: func(procs int) (float64, bool) { return f.Forecast() },
			cats:     func() int { return 1 },
		}
	}
	mkFixed := func() strategy {
		s := qbets.NewService(true, qbets.WithSeed(cfg.Seed))
		return strategy{
			name:     "fixed-buckets",
			observe:  func(procs int, w float64) { s.Observe(queue, procs, w) },
			forecast: func(procs int) (float64, bool) { return s.Forecast(queue, procs) },
			cats:     func() int { return len(s.Queues()) },
		}
	}
	mkAuto := func() strategy {
		a := qbets.NewAutoService(4, 500, qbets.WithSeed(cfg.Seed))
		return strategy{
			name:     "learned",
			observe:  func(procs int, w float64) { a.Observe(procs, 0, w) },
			forecast: func(procs int) (float64, bool) { return a.Forecast(procs, 0) },
			cats:     func() int { return a.Categories() },
		}
	}

	var out []AutoCatResult
	for _, mk := range []func() strategy{mkMerged, mkFixed, mkAuto} {
		s := mk()
		out = append(out, replayStrategy(t, s.name, s.observe, s.forecast, s.cats))
	}
	return out
}

func replayStrategy(t *trace.Trace, name string,
	observe func(int, float64), forecast func(int) (float64, bool), cats func() int) AutoCatResult {

	type rel struct {
		at    int64
		procs int
		wait  float64
	}
	var pending []rel
	train := t.Len() / 10
	res := AutoCatResult{Strategy: name}
	var ratios []float64
	for i, j := range t.Jobs {
		keep := pending[:0]
		for _, r := range pending {
			if r.at <= j.Submit {
				observe(r.procs, r.wait)
			} else {
				keep = append(keep, r)
			}
		}
		pending = append(keep, rel{j.Release(), j.Procs, j.Wait})

		bound, ok := forecast(j.Procs)
		if i >= train && ok {
			res.Scored++
			if j.Wait <= bound {
				res.Correct++
			}
			if bound > 0 {
				ratios = append(ratios, j.Wait/bound)
			}
		}
	}
	if res.Scored > 0 {
		res.CorrectFraction = float64(res.Correct) / float64(res.Scored)
	} else {
		res.CorrectFraction = 1
	}
	sort.Float64s(ratios)
	if n := len(ratios); n > 0 {
		if n%2 == 1 {
			res.MedianRatio = ratios[n/2]
		} else {
			res.MedianRatio = (ratios[n/2-1] + ratios[n/2]) / 2
		}
		sum := 0.0
		for _, r := range ratios {
			sum += r
		}
		res.MeanRatio = sum / float64(n)
	}
	res.Categories = cats()
	return res
}
