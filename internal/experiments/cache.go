package experiments

import (
	"sync"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Process-wide memoization of the expensive experiment stages. Tables 3/4,
// Tables 5-7, the sweeps, and the table-1 summary all start from the same
// 32 calibrated queue generations, and several of them replay the same
// trace through the same predictor stack; before this cache each table
// redid that work from scratch. Generation is keyed by (seed, queue),
// replay by the canonical trace instance plus every parameter that affects
// the result. Entries are built under a sync.Once so concurrent table
// loops share one computation instead of racing to duplicate it.
//
// Cached traces and result slices are shared: callers must treat them as
// immutable (every in-repo consumer already does — sim.Run sorts a copy,
// FilterProcs builds a new Trace, MedianRatio copies before sorting).

type genKey struct {
	seed           int64
	machine, queue string
}

type genEntry struct {
	once sync.Once
	t    *trace.Trace
}

type filterKey struct {
	t      *trace.Trace
	bucket trace.ProcBucket
}

type filterEntry struct {
	once sync.Once
	t    *trace.Trace
}

// simParams is the part of sim.Config that changes replay results,
// normalized so that a zero value and an explicit default hit the same
// entry.
type simParams struct {
	epochSeconds   int64
	instantUpdates bool
	trainFraction  float64
	streaming      bool
}

func simParamsOf(c sim.Config) simParams {
	p := simParams{
		epochSeconds:   c.EpochSeconds,
		instantUpdates: c.InstantUpdates,
		trainFraction:  c.TrainFraction,
		streaming:      c.StreamingRatios,
	}
	if p.epochSeconds == 0 {
		p.epochSeconds = 300
	}
	if p.trainFraction == 0 {
		p.trainFraction = 0.10
	}
	return p
}

type evalKey struct {
	t                    *trace.Trace
	seed                 int64
	quantile, confidence float64
	sim                  simParams
}

type evalEntry struct {
	once sync.Once
	res  []sim.Result
}

var (
	genCache    sync.Map // genKey -> *genEntry
	filterCache sync.Map // filterKey -> *filterEntry
	evalCache   sync.Map // evalKey -> *evalEntry

	// arenaPool recycles sim replay arenas across the experiment loops:
	// forEachIndex fans the tables and hypothesis grids out across cores,
	// and each worker's next replay reuses the pending-job arena the
	// previous one grew instead of re-allocating it.
	arenaPool = sync.Pool{New: func() any { return new(sim.Arena) }}
)

// replay is sim.Run through a pooled arena; every experiment replay goes
// through here so the whole package shares the warm arenas.
func replay(t *trace.Trace, preds []predictor.Predictor, cfg sim.Config) []sim.Result {
	a := arenaPool.Get().(*sim.Arena)
	res := sim.RunArena(t, preds, cfg, a)
	arenaPool.Put(a)
	return res
}

// evalCachable reports whether a replay's results depend only on the eval
// key. Sampling callbacks observe predictor state mid-run, so those runs
// must execute every time.
func (c Config) evalCachable() bool {
	return c.Sim.OnSample == nil && c.Sim.SampleEvery == 0
}

// cachedTrace returns the canonical generated trace for key, building it
// once via gen.
func cachedTrace(key genKey, gen func() *trace.Trace) *trace.Trace {
	e, _ := genCache.LoadOrStore(key, &genEntry{})
	entry := e.(*genEntry)
	entry.once.Do(func() { entry.t = gen() })
	return entry.t
}

// cachedFilter returns the canonical processor-count subdivision of a
// cached trace, so bucket evaluations of the same trace share one filtered
// instance (and therefore one eval-cache entry).
func cachedFilter(t *trace.Trace, b trace.ProcBucket) *trace.Trace {
	e, _ := filterCache.LoadOrStore(filterKey{t, b}, &filterEntry{})
	entry := e.(*filterEntry)
	entry.once.Do(func() { entry.t = t.FilterProcs(b) })
	return entry.t
}

// cachedEval returns the canonical replay results for key, building them
// once via eval.
func cachedEval(key evalKey, eval func() []sim.Result) []sim.Result {
	e, _ := evalCache.LoadOrStore(key, &evalEntry{})
	entry := e.(*evalEntry)
	entry.once.Do(func() { entry.res = eval() })
	return entry.res
}
