package experiments

import "testing"

func TestExtendedComparatorField(t *testing.T) {
	rows := Extended(Config{})
	if len(rows) != 32 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Outcomes) != len(ExtendedMethods) {
			t.Fatalf("%s/%s: %d outcomes", r.Machine, r.Queue, len(r.Outcomes))
		}
	}
	sums := SummarizeExtended(rows)
	byName := map[string]ExtendedSummary{}
	for _, s := range sums {
		byName[s.Method] = s
	}

	// BMBP is correct on all queues but one (lanl/short).
	if got := byName["bmbp"].QueuesCorrect; got != 31 {
		t.Errorf("bmbp correct on %d queues, want 31", got)
	}
	// The untrimmed log-normal fails on many.
	if got := byName["logn-notrim"].QueuesCorrect; got > 24 {
		t.Errorf("logn-notrim correct on %d queues; effect absent", got)
	}
	// Running-max is correct essentially everywhere...
	if got := byName["running-max"].QueuesCorrect; got < 30 {
		t.Errorf("running-max correct on only %d queues", got)
	}
	// ...but uselessly conservative: its accuracy ratio is far below
	// BMBP's (the paper's Section 5 argument, quantified).
	if byName["running-max"].MedianOfRatios*2 > byName["bmbp"].MedianOfRatios {
		t.Errorf("running-max ratio %.3g should be far below bmbp %.3g",
			byName["running-max"].MedianOfRatios, byName["bmbp"].MedianOfRatios)
	}
	// The empirical quantile (no confidence margin) fails on more queues
	// than BMBP: the margin is what buys correctness under dependence and
	// drift.
	if got := byName["empirical"].QueuesCorrect; got >= byName["bmbp"].QueuesCorrect {
		t.Errorf("empirical correct on %d queues, bmbp on %d — margin buys nothing?",
			got, byName["bmbp"].QueuesCorrect)
	}
}
