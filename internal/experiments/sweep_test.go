package experiments

import "testing"

func TestSweepQuantileConfidenceGrid(t *testing.T) {
	points := SweepQC(Config{})
	if len(points) != len(SweepQueues)*len(SweepLevels) {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		if pt.Scored == 0 {
			t.Errorf("%s/%s q=%.2f: nothing scored", pt.Machine, pt.Queue, pt.Quantile)
			continue
		}
		// The method's correctness target is the quantile itself. Allow a
		// small sampling tolerance at low confidence and extreme
		// quantiles; well below target is a real failure.
		slack := 0.012
		if pt.Confidence < 0.9 {
			slack = 0.025
		}
		if pt.CorrectFraction < pt.Quantile-slack {
			t.Errorf("%s/%s q=%.2f C=%.2f: correct %.3f below quantile",
				pt.Machine, pt.Queue, pt.Quantile, pt.Confidence, pt.CorrectFraction)
		}
		// And it must not be degenerate (everything covered) for the
		// moderate quantiles, where meaningful bounds leave misses.
		if pt.Quantile <= 0.9 && pt.CorrectFraction > 0.999 {
			t.Errorf("%s/%s q=%.2f: suspiciously perfect (%.4f)",
				pt.Machine, pt.Queue, pt.Quantile, pt.CorrectFraction)
		}
	}
}
