package hypo

import (
	"fmt"

	"repro/internal/crashprop"
	"repro/internal/wal"
)

// H-Durability is the acked-prefix recovery property as a named,
// grid-parameterized invariant: a power cut at an arbitrary byte offset
// (with possible bit flips in the unsynced sliver) must leave the service
// recoverable into exactly the state of an oracle fed the surviving record
// prefix — and that prefix must contain every record the sync policy acked
// durable. The trial itself lives in internal/crashprop, the same harness
// the qbets crash property tests run, so the oracle cannot drift between
// the unit tier and this grid.
//
// The grid crosses the durability-relevant policies: sync mode
// (per-record vs. none — the interval policy's acked set depends on
// wall-clock ticker timing and is covered by the unit tier instead),
// group commit, and interleaved eviction passes (so recovery rehydrates
// cold streams mid-replay), each over several hash-derived seeds.
type durability struct{}

type durabilitySpec struct{ cfg crashprop.TrialConfig }

func (durability) Name() string { return "H-Durability" }

func (durability) Doc() string {
	return "after a power cut, recovery replays acked <= n <= appended records and matches an oracle fed that prefix, across sync x group-commit x eviction policies"
}

func (dv durability) Cells(g Grid) []Cell {
	seeds := 2
	if g == Full {
		seeds = 12
	}
	modes := []struct {
		mode wal.SyncMode
		name string
	}{
		{wal.SyncEachRecord, "sync-each"},
		{wal.SyncOff, "sync-off"},
	}
	var cells []Cell
	for _, m := range modes {
		for _, gc := range []bool{false, true} {
			for _, evict := range []bool{false, true} {
				for s := 0; s < seeds; s++ {
					c := Cell{
						Invariant: dv.Name(),
						ID:        fmt.Sprintf("%s/gc%v/evict%v/s%d", m.name, gc, evict, s),
						Params: []Param{
							{"sync_mode", m.name},
							{"group_commit", fmt.Sprintf("%v", gc)},
							{"evict", fmt.Sprintf("%v", evict)},
							{"seed_index", fmt.Sprintf("%d", s)},
						},
					}
					// The trial's whole randomness budget (workload shape,
					// segment size, crash offset, bit flips) comes from the
					// cell hash.
					c.spec = durabilitySpec{cfg: crashprop.TrialConfig{
						Seed:        c.Seed(),
						Mode:        m.mode,
						GroupCommit: gc,
						Evict:       evict,
					}}
					cells = append(cells, c)
				}
			}
		}
	}
	return cells
}

func (durability) Run(c Cell) CellResult {
	spec, ok := c.spec.(durabilitySpec)
	if !ok {
		return c.Fail("cell spec missing: cells must come from Cells()")
	}
	res, err := crashprop.RunTrial(spec.cfg)
	checks := []Check{
		GE("replayed_vs_acked", float64(res.Replayed), float64(res.Acked)),
		LE("replayed_vs_appended", float64(res.Replayed), float64(res.Appended)),
		GE("appended_records", float64(res.Appended), 50),
	}
	if spec.cfg.Evict {
		checks = append(checks, GE("eviction_passes", float64(res.Evictions), 1))
	}
	if err != nil {
		return c.Fail(err.Error(), checks...)
	}
	return c.Result(checks...)
}

func init() { Register(durability{}) }
