package hypo

import (
	"fmt"
	"sort"

	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/qbets"
)

// H-Coverage is the paper's headline claim as an invariant: a (q, C) bound
// is *correct* when the empirical fraction of predictions the realized
// wait falls within is at least q — the criterion of Tables 3–7 — and BMBP
// must be correct on every queue of the paper grid where the paper found
// it correct (every Table 3 queue except LANL/short, whose end-of-log
// surge is the paper's own documented failure and is reproduced by the
// workload calibration).
//
// Each (queue, q, C) cell is exercised through two paths:
//
//   - raw: the evaluation simulator replay (Section 5.1 visibility rules,
//     epoch dumps, training prefix) via the internal/experiments trace and
//     eval caches — the exact pipeline that regenerates the paper tables;
//   - service: the full qbets.Service ingest path — ObserveBatch through a
//     write-ahead log on an in-memory filesystem with periodic full
//     eviction passes — so snapshot publication, eviction/rehydration, and
//     WAL machinery are inside the correctness loop, scored by the
//     service's own online hit-rate monitor.
//
// Thresholds: the empirical hit rate must reach q minus a small
// deterministic allowance. The raw path scores only post-training jobs
// under epoch-delayed visibility, exactly as the paper does, and gets
// q − 0.01 at the headline quantile. The service path quotes from the
// first bound onward (no training exclusion, no epoch delay), so its
// lifetime rate carries the early-history phase and regime-shift
// re-learning windows inside the average; it gets q − 0.02, the same
// allowance the long-standing hit-rate convergence tests use. Sub-headline
// quantiles (q < 0.95) sit closer to the miss budget on shift-heavy queues
// — a level shift burns a larger fraction of a 25% miss allowance than a
// 5% one — so both paths allow q − 0.04 there.
type coverage struct{}

type coverageSpec struct {
	queue   *trace.PaperQueue
	q, c    float64
	service bool // false: raw simulator replay; true: Service ingest path
}

// genSeed is the canonical workload-generation seed: the calibration
// anchor every table reproduction and golden test uses. Cell randomness
// (there is none beyond the trace itself on this invariant) is separate —
// see Cell.Seed.
const genSeed = 42

// coveragePairs is the (q, C) grid: the paper's headline 0.95/0.95 cell,
// the Table 8 profile quantiles it also quotes, and a higher-confidence
// variant of the headline bound.
var coveragePairs = []struct{ q, c float64 }{
	{0.95, 0.95},
	{0.75, 0.95},
	{0.50, 0.95},
	{0.95, 0.99},
}

func (coverage) Name() string { return "H-Coverage" }

func (coverage) Doc() string {
	return "empirical hit rate >= q for every paper-grid queue x (q,C) cell, through both the raw replay and the full Service ingest path"
}

// smokeCoverageQueues picks one small queue per workload character, so the
// CI tier exercises every generating mechanism (clean, moderate, shifty,
// spiky) without paying for the full roster.
var smokeCoverageQueues = []string{"lanl/schammpq", "lanl/mediumd", "datastar/TGhigh", "sdsc/express"}

// coverageQueues returns the grid's queue roster: every Table 3 queue the
// paper reports BMBP correct on (i.e. all but LANL/short).
func coverageQueues(g Grid) []*trace.PaperQueue {
	var out []*trace.PaperQueue
	for _, p := range trace.Table3Queues() {
		if p.BMBPCorrect < 0.95 {
			continue // the paper's own documented failure (LANL/short)
		}
		if g == Smoke {
			found := false
			for _, name := range smokeCoverageQueues {
				if p.Name() == name {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

func (cv coverage) Cells(g Grid) []Cell {
	pairs := coveragePairs
	if g == Smoke {
		pairs = pairs[:1] // headline 0.95/0.95 only
	}
	var cells []Cell
	for _, p := range coverageQueues(g) {
		for _, pr := range pairs {
			for _, service := range []bool{false, true} {
				path := "raw"
				if service {
					path = "service"
				}
				cells = append(cells, Cell{
					Invariant: cv.Name(),
					ID:        fmt.Sprintf("%s/%s/q%.2f/c%.2f/%s", p.Machine, p.Queue, pr.q, pr.c, path),
					Params: []Param{
						{"queue", p.Name()},
						{"character", workload.CharacterOf(p).String()},
						{"quantile", fmt.Sprintf("%.2f", pr.q)},
						{"confidence", fmt.Sprintf("%.2f", pr.c)},
						{"path", path},
						{"gen_seed", fmt.Sprintf("%d", genSeed)},
					},
					spec: coverageSpec{queue: p, q: pr.q, c: pr.c, service: service},
				})
			}
		}
	}
	return cells
}

// coverageTolerance is the deterministic allowance below q a path's hit
// rate may run with (see the type comment for the rationale per path).
func coverageTolerance(q float64, service bool) float64 {
	if q < 0.95 {
		return 0.04
	}
	if service {
		return 0.02
	}
	return 0.01
}

func (cv coverage) Run(c Cell) CellResult {
	spec, ok := c.spec.(coverageSpec)
	if !ok {
		return c.Fail("cell spec missing: cells must come from Cells()")
	}
	if spec.service {
		return cv.runService(c, spec)
	}
	return cv.runRaw(c, spec)
}

// runRaw scores BMBP through the paper's evaluation simulator, sharing the
// per-(seed, queue) trace and per-(trace, q, C) replay caches with every
// other cell and with the table reproductions.
func (coverage) runRaw(c Cell, spec coverageSpec) CellResult {
	cfg := experiments.Config{Seed: genSeed, Quantile: spec.q, Confidence: spec.c}
	tr := cfg.GenerateQueue(spec.queue)
	res := cfg.EvalQueue(tr) // [0] = BMBP, the method under test
	bmbp := res[0]
	return c.Result(
		GE("scored_predictions", float64(bmbp.Scored), 500),
		GE("hit_rate", bmbp.CorrectFraction(), spec.q-coverageTolerance(spec.q, false)),
	)
}

// serviceFlush is the ObserveBatch size the service path feeds with, and
// serviceEvictEvery is how many flushed batches separate full eviction
// passes — every cell therefore crosses several evict/rehydrate cycles and
// the monitor's counters must survive all of them.
const (
	serviceFlush      = 512
	serviceEvictEvery = 16
)

// runService replays the queue's calibrated trace through a real Service:
// records arrive in wait-visibility order (submit + wait, the order a live
// scheduler releases them), batched through the WAL-backed ingest path,
// with periodic full eviction passes. The verdict is the service's own
// online correctness monitor — lifetime hits over lifetime resolved
// predictions, the live analogue of the tables' "correct %" column.
func (coverage) runService(c Cell, spec coverageSpec) CellResult {
	cfg := experiments.Config{Seed: genSeed}
	tr := cfg.GenerateQueue(spec.queue)

	// Wait-visibility order, ties broken by submission order (trace order).
	type release struct {
		at   int64
		wait float64
	}
	releases := make([]release, tr.Len())
	for i, j := range tr.Jobs {
		releases[i] = release{at: j.Submit + int64(j.Wait), wait: j.Wait}
	}
	sort.SliceStable(releases, func(i, j int) bool { return releases[i].at < releases[j].at })

	fs := wal.NewMemFS()
	w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord})
	if err != nil {
		return c.Fail(fmt.Sprintf("open wal: %v", err))
	}
	svc := qbets.NewService(false,
		qbets.WithQuantile(spec.q), qbets.WithConfidence(spec.c), qbets.WithSeed(1))
	if _, err := svc.RecoverWAL(w); err != nil {
		return c.Fail(fmt.Sprintf("attach wal: %v", err))
	}

	queue := spec.queue.Name()
	batch := make([]qbets.ObserveRecord, 0, serviceFlush)
	flushed := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if applied, err := svc.ObserveBatch(batch); err != nil || applied != len(batch) {
			return fmt.Errorf("batch %d: applied %d of %d: %v", flushed, applied, len(batch), err)
		}
		batch = batch[:0]
		if flushed++; flushed%serviceEvictEvery == 0 {
			svc.EvictIdle(0) // full eviction pass; next write rehydrates
		}
		return nil
	}
	for _, r := range releases {
		batch = append(batch, qbets.ObserveRecord{Queue: queue, Procs: 1, WaitSeconds: r.wait})
		if len(batch) == serviceFlush {
			if err := flush(); err != nil {
				return c.Fail(err.Error())
			}
		}
	}
	if err := flush(); err != nil {
		return c.Fail(err.Error())
	}

	st, ok := svc.StreamStats(queue, 1)
	if !ok {
		return c.Fail("stream missing after ingest")
	}
	if st.LifetimeResolved == 0 {
		return c.Fail("no predictions resolved")
	}
	lifetime := float64(st.LifetimeHits) / float64(st.LifetimeResolved)
	return c.Result(
		GE("resolved_predictions", float64(st.LifetimeResolved), 500),
		GE("hit_rate", lifetime, spec.q-coverageTolerance(spec.q, true)),
		LE("hit_rate_ceiling", lifetime, 1),
	)
}

func init() { Register(coverage{}) }
