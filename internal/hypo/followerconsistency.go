package hypo

import (
	"fmt"

	"repro/internal/crashprop"
)

// H-FollowerConsistency is the replicated-serving property as a named
// invariant: a follower fed the leader's WAL over the fault-injectable
// transport always serves the state of an oracle given a prefix of the
// leader's acked log, an acked write survives leader power cut and
// failover, and a deposed leader can never ack again. The trial itself
// lives in internal/crashprop (RunReplTrial), the same harness the
// replication crash tests run.
//
// The grid crosses the failure scenarios — steady shipping (plus delayed
// and reordered delivery), partition-and-heal, leader power cut under
// synchronous replication, epoch-fenced failover, snapshot catch-up past
// a compacted log, three-follower fan-out, K-of-N commit quorum with a
// dropped follower, and a torn mid-chunk snapshot transfer — over
// hash-derived seeds. Verdict determinism
// holds because every recorded statistic is quiescent: workload sizes
// come from the cell seed and every outcome is a 0/1 property checked
// after a convergence barrier, so scheduling and transport timing cannot
// reach the verdict bytes.
type followerConsistency struct{}

type followerConsistencySpec struct{ cfg crashprop.ReplTrialConfig }

func (followerConsistency) Name() string { return "H-FollowerConsistency" }

func (followerConsistency) Doc() string {
	return "a follower's served state is always an acked-prefix oracle of the leader's log, acked writes survive crash+failover, and a fenced ex-leader never acks, across partition x crash x catch-up scenarios"
}

func (fc followerConsistency) Cells(g Grid) []Cell {
	seeds := 1
	if g == Full {
		seeds = 6
	}
	scenarios := []struct {
		name     string
		cfg      crashprop.ReplTrialConfig
		fullOnly bool
	}{
		{"steady", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioSteady}, false},
		{"steady-delay", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioSteady, Delay: true}, true},
		{"steady-reorder", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioSteady, Reorder: true}, true},
		{"partition", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioPartition}, false},
		{"leadercrash", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioLeaderCrash}, false},
		{"failover", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioFailover}, false},
		{"catchup", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioCatchup}, false},
		{"fanout", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioFanout}, false},
		{"quorum", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioQuorum}, false},
		{"tornsnapshot", crashprop.ReplTrialConfig{Scenario: crashprop.ScenarioTornSnapshot}, true},
	}
	var cells []Cell
	for _, sc := range scenarios {
		if sc.fullOnly && g != Full {
			continue
		}
		for s := 0; s < seeds; s++ {
			c := Cell{
				Invariant: fc.Name(),
				ID:        fmt.Sprintf("%s/s%d", sc.name, s),
				Params: []Param{
					{"scenario", sc.name},
					{"seed_index", fmt.Sprintf("%d", s)},
				},
			}
			cfg := sc.cfg
			cfg.Seed = c.Seed()
			c.spec = followerConsistencySpec{cfg: cfg}
			cells = append(cells, c)
		}
	}
	return cells
}

func (followerConsistency) Run(c Cell) CellResult {
	spec, ok := c.spec.(followerConsistencySpec)
	if !ok {
		return c.Fail("cell spec missing: cells must come from Cells()")
	}
	res, err := crashprop.RunReplTrial(spec.cfg)
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	// Every observed value here is deterministic for the cell seed:
	// workload sizes are seed-derived and the outcomes are quiescent 0/1
	// properties, never raced counters.
	ackedCheck := GE("acked_equals_appended", b(res.Acked == res.Appended), 1)
	if spec.cfg.Scenario == crashprop.ScenarioQuorum {
		// The quorum trial ends with one deliberately refused write: it is
		// appended and durable on the leader but never acked.
		ackedCheck = GE("appended_exceeds_acked_by_refused_probe", b(res.Appended == res.Acked+1), 1)
	}
	checks := []Check{
		GE("appended_records", float64(res.Appended), 60),
		ackedCheck,
		GE("converged", b(res.Converged), 1),
		GE("prefix_consistent", b(res.PrefixConsistent), 1),
	}
	switch spec.cfg.Scenario {
	case crashprop.ScenarioPartition:
		checks = append(checks, GE("reconnected", b(res.Reconnected), 1))
	case crashprop.ScenarioLeaderCrash:
		checks = append(checks, GE("recovered_all_acked", b(res.RecoveredAllAcked), 1))
	case crashprop.ScenarioFailover:
		checks = append(checks,
			GE("fenced", b(res.Fenced), 1),
			GE("fenced_ack_refused", b(res.FencedAckRefused), 1))
	case crashprop.ScenarioCatchup:
		checks = append(checks, GE("snapshot_installed", b(res.SnapshotInstalled), 1))
	case crashprop.ScenarioFanout:
		checks = append(checks, GE("fanout_converged", b(res.FanoutConverged), 1))
	case crashprop.ScenarioQuorum:
		checks = append(checks, GE("quorum_refused_below_k", b(res.QuorumRefusedBelowK), 1))
	case crashprop.ScenarioTornSnapshot:
		checks = append(checks,
			GE("torn_transfer", b(res.TornTransfer), 1),
			GE("snapshot_installed", b(res.SnapshotInstalled), 1),
			GE("reconnected", b(res.Reconnected), 1))
	}
	if err != nil {
		return c.Fail(err.Error(), checks...)
	}
	return c.Result(checks...)
}

func init() { Register(followerConsistency{}) }
