package hypo

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSmokeGrid is the CI hypothesis tier: the whole smoke grid must pass.
// It runs race-enabled in the workflow, so the parallel cell execution and
// the Service ingest path inside H-Coverage are under the race detector.
func TestSmokeGrid(t *testing.T) {
	v := Run(Smoke, nil)
	if v.Cells == 0 {
		t.Fatal("smoke grid is empty")
	}
	if len(v.Invariants) != 5 {
		t.Fatalf("expected 5 invariants in the grid, got %d", len(v.Invariants))
	}
	for _, iv := range v.Invariants {
		if iv.Cells == 0 {
			t.Errorf("%s: no smoke cells", iv.Name)
		}
		for _, r := range iv.Results {
			if !r.Pass {
				t.Errorf("%s/%s failed: %+v %s", iv.Name, r.ID, r.Checks, r.Detail)
			}
		}
	}
	if !v.Pass {
		t.Error("smoke grid verdict is FAIL")
	}
}

// TestVerdictDeterministic re-runs the smoke grid and requires the
// serialized verdicts to be byte-identical — the contract the nightly
// workflow checks on the full grid.
func TestVerdictDeterministic(t *testing.T) {
	a := Run(Smoke, nil).JSON()
	b := Run(Smoke, nil).JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("verdict JSON differs between identical runs:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestCellIndependence runs one cell of each invariant in isolation and
// requires the identical result the grid run produced: cells share no RNG,
// so sharding or filtering the grid cannot change a verdict.
func TestCellIndependence(t *testing.T) {
	full := Run(Smoke, nil)
	for _, inv := range Invariants() {
		cells := inv.Cells(Smoke)
		last := cells[len(cells)-1]
		isolated := inv.Run(last)

		var fromGrid *CellResult
		for _, iv := range full.Invariants {
			if iv.Name != inv.Name() {
				continue
			}
			for i := range iv.Results {
				if iv.Results[i].ID == last.ID {
					fromGrid = &iv.Results[i]
				}
			}
		}
		if fromGrid == nil {
			t.Fatalf("%s: cell %s missing from grid verdict", inv.Name(), last.ID)
		}
		if !reflect.DeepEqual(isolated, *fromGrid) {
			t.Errorf("%s/%s: isolated run differs from grid run:\n  isolated: %+v\n  grid:     %+v",
				inv.Name(), last.ID, isolated, *fromGrid)
		}
	}
}

// TestCellSeeds: hash-derived seeds are stable and distinct across the
// full grid (a collision would silently couple two cells' randomness).
func TestCellSeeds(t *testing.T) {
	seen := map[int64]string{}
	for _, inv := range Invariants() {
		for _, c := range inv.Cells(Full) {
			if c.Seed() != c.Seed() {
				t.Fatalf("%s: seed not stable", c.ID)
			}
			key := c.Invariant + "/" + c.ID
			if prev, dup := seen[c.Seed()]; dup {
				t.Errorf("seed collision between %s and %s", prev, key)
			}
			seen[c.Seed()] = key
		}
	}
}

// TestForeignCellRejected: an invariant must refuse a cell it did not
// enumerate instead of panicking on the spec down-cast.
func TestForeignCellRejected(t *testing.T) {
	for _, inv := range Invariants() {
		r := inv.Run(Cell{Invariant: inv.Name(), ID: "forged"})
		if r.Pass {
			t.Errorf("%s: forged cell passed", inv.Name())
		}
		if r.Detail == "" {
			t.Errorf("%s: forged cell carries no failure detail", inv.Name())
		}
	}
}

func TestParseGrid(t *testing.T) {
	if g, err := ParseGrid("smoke"); err != nil || g != Smoke {
		t.Errorf("ParseGrid(smoke) = %v, %v", g, err)
	}
	if g, err := ParseGrid("full"); err != nil || g != Full {
		t.Errorf("ParseGrid(full) = %v, %v", g, err)
	}
	if _, err := ParseGrid("nightly"); err == nil {
		t.Error("ParseGrid(nightly) should fail")
	}
}

func TestChecks(t *testing.T) {
	if c := GE("x", 0.97, 0.95); !c.Pass || c.Margin < 0.019 || c.Margin > 0.021 {
		t.Errorf("GE pass case: %+v", c)
	}
	if c := GE("x", 0.90, 0.95); c.Pass || c.Margin >= 0 {
		t.Errorf("GE fail case: %+v", c)
	}
	if c := LE("x", 3, 5); !c.Pass || c.Margin != 2 {
		t.Errorf("LE pass case: %+v", c)
	}
	if c := LE("x", 7, 5); c.Pass || c.Margin != -2 {
		t.Errorf("LE fail case: %+v", c)
	}
}

func TestRunFilter(t *testing.T) {
	v := Run(Smoke, func(name string) bool { return name == "H-Durability" })
	if len(v.Invariants) != 1 || v.Invariants[0].Name != "H-Durability" {
		t.Fatalf("filter leaked other invariants: %+v", v.Invariants)
	}
	if !v.Pass || v.Cells == 0 {
		t.Errorf("filtered run: pass=%v cells=%d", v.Pass, v.Cells)
	}
}
