package hypo

import (
	"fmt"
	"math"

	"repro/internal/scheduler"
	"repro/internal/whatif"
)

// H-SLOSizing pins the contract behind the what-if plane's sizing mode
// (POST /v1/whatif with "sizing", internal/whatif.SizeToSLO): the answer
// to "how much load keeps the queuing-delay bound inside an SLO" must be
//
//   - monotone in the SLO: a looser target never admits less load than a
//     tighter one;
//   - honest: the returned rate's simulated bound actually meets the
//     target, and re-simulating at that rate through the ordinary
//     scenario-evaluation path reproduces a bound that meets it too;
//   - bounded: answers stay inside the search bracket [1/8, 8], and an
//     impossible target (negative — no non-negative bound can meet it) is
//     reported infeasible rather than answered.
//
// The binary search in SizeToSLO assumes the simulated bound is monotone
// non-decreasing in the arrival-rate multiplier. That assumption is what
// this invariant exercises end-to-end: each cell fixes a scenario shape
// (machine size, scheduling policy) over the common-random-numbers base
// trace and sweeps a ladder of SLO targets derived from the scenario's own
// baseline bound, so the grid stays meaningful as workload calibration
// drifts.
type slosizing struct{}

type slosizingSpec struct {
	jobs     int
	scenario whatif.Scenario
}

// slosizingFactors is the SLO ladder, as multiples of the scenario's
// baseline (rate x1) bound, in ascending order. Factors >= 1 must be
// feasible — the base rate itself meets them — while the sub-baseline
// factor may legitimately be infeasible on a congested cell and only
// participates in the monotonicity and honesty checks.
var slosizingFactors = []float64{0.5, 1, 1.5, 2.5, 4}

func (slosizing) Name() string { return "H-SLOSizing" }

func (slosizing) Doc() string {
	return "SLO sizing is monotone in the target, its returned rate's simulated bound meets the target (re-simulation included), and impossible targets are reported infeasible"
}

func (sz slosizing) Cells(g Grid) []Cell {
	type variant struct {
		id string
		sc whatif.Scenario
	}
	variants := []variant{
		{"base", whatif.Scenario{}},
		{"fcfs", whatif.Scenario{Policy: "fcfs"}},
	}
	sizes := []int{1000}
	if g == Full {
		variants = append(variants,
			variant{"easy", whatif.Scenario{Policy: "easy"}},
			variant{"half-machine", whatif.Scenario{Procs: 64}},
		)
		sizes = append(sizes, 2000)
	}
	var cells []Cell
	for _, jobs := range sizes {
		for _, v := range variants {
			cells = append(cells, Cell{
				Invariant: sz.Name(),
				ID:        fmt.Sprintf("jobs%d/%s", jobs, v.id),
				Params: []Param{
					{"jobs", fmt.Sprintf("%d", jobs)},
					{"scenario", v.id},
					{"gen_seed", fmt.Sprintf("%d", genSeed)},
				},
				spec: slosizingSpec{jobs: jobs, scenario: v.sc},
			})
		}
	}
	return cells
}

func (slosizing) Run(c Cell) CellResult {
	spec, ok := c.spec.(slosizingSpec)
	if !ok {
		return c.Fail("cell spec missing: cells must come from Cells()")
	}
	p := whatif.NewPlanner(whatif.Config{
		Workload: scheduler.WorkloadConfig{Jobs: spec.jobs, Seed: genSeed},
	})
	// The planner caches per fingerprint; each cell owns its planner, so
	// any constant works. Use the cell seed for clarity.
	fp := uint64(c.Seed())

	base := p.Evaluate(fp, []whatif.Scenario{spec.scenario})[0]
	if base.Error != "" || !base.BoundOK {
		return c.Fail(fmt.Sprintf("baseline scenario produced no bound: %+v", base))
	}

	var (
		mustFeasible, feasible int
		minSlack               = math.Inf(1) // target - sizing bound, over feasible targets
		minResimSlack          = math.Inf(1) // target - re-simulated bound at the returned rate
		minMonotoneStep        = math.Inf(1) // rate(looser) - rate(tighter), consecutive feasible pairs
		minRate, maxRate       = math.Inf(1), math.Inf(-1)
		prevRate               = math.NaN()
	)
	for _, f := range slosizingFactors {
		target := f * base.BoundSeconds
		if f >= 1 {
			mustFeasible++
		}
		s := p.SizeToSLO(fp, spec.scenario, target)
		if !s.OK {
			if f >= 1 {
				return c.Fail(fmt.Sprintf("target %.1fs (%.2gx baseline) infeasible though the base rate meets it", target, f))
			}
			continue
		}
		feasible++
		minSlack = math.Min(minSlack, target-s.BoundSeconds)
		minRate = math.Min(minRate, s.MaxRateMultiplier)
		maxRate = math.Max(maxRate, s.MaxRateMultiplier)
		resim := spec.scenario
		resim.RateMultiplier = s.MaxRateMultiplier
		o := p.Evaluate(fp, []whatif.Scenario{resim})[0]
		if o.Error != "" || !o.BoundOK {
			return c.Fail(fmt.Sprintf("re-simulation at rate %.4f failed: %+v", s.MaxRateMultiplier, o))
		}
		minResimSlack = math.Min(minResimSlack, target-o.BoundSeconds)
		if !math.IsNaN(prevRate) {
			minMonotoneStep = math.Min(minMonotoneStep, s.MaxRateMultiplier-prevRate)
		}
		prevRate = s.MaxRateMultiplier
	}
	if feasible < 2 {
		return c.Fail(fmt.Sprintf("only %d feasible targets: monotonicity unjudgeable", feasible))
	}

	impossible := p.SizeToSLO(fp, spec.scenario, -1)
	impossibleOK := 0.0
	if impossible.OK {
		impossibleOK = 1
	}

	return c.Result(
		GE("feasible_targets", float64(feasible), float64(mustFeasible)),
		GE("min_bound_slack_s", minSlack, 0),
		GE("min_resim_slack_s", minResimSlack, 0),
		GE("min_monotone_rate_step", minMonotoneStep, 0),
		GE("min_rate", minRate, 1.0/8),
		LE("max_rate", maxRate, 8),
		LE("impossible_target_feasible", impossibleOK, 0),
	)
}

func init() { Register(slosizing{}) }
