// Package hypo is the hypothesis harness: it formalizes the repository's
// statistical correctness claims as named invariants (H-Coverage, H-Trim,
// H-Durability, H-FollowerConsistency, H-SLOSizing) evaluated as
// deterministic
// pass/fail experiments over a
// configuration × workload × seed grid, in the style of inference-sim's
// hypotheses/ experiments. Each invariant registers a runner here; the
// hypotheses/ directory at the repository root documents each one
// (FINDINGS.md) in terms of the grid this package executes.
//
// Determinism is the contract: a grid run produces a machine-readable
// verdict (per-cell pass/fail plus the observed margins behind every
// check) that is byte-identical across runs, processes, and parallelism
// levels. Two rules make that hold:
//
//   - every cell derives its randomness from the cell's own configuration
//     hash (Cell.Seed), never from a shared RNG, so cells are independently
//     reproducible and the grid can be sharded or run in any order without
//     changing a single verdict; and
//   - verdicts carry no wall-clock state — no timestamps, no durations —
//     only the observed statistics and the thresholds they were judged
//     against.
//
// The expensive inputs (calibrated paper traces and their replays) come
// from the internal/experiments generation/eval caches, so a grid run
// shares work exactly the way the table reproductions do.
package hypo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/parallel"
)

// Grid selects how much of an invariant's cell space a run covers.
type Grid int

const (
	// Smoke is the CI tier: a small, representative cell subset that runs
	// race-enabled in well under five minutes.
	Smoke Grid = iota
	// Full is the nightly tier: every queue, every (q, C) pair, every
	// policy combination the invariant is claimed over.
	Full
)

func (g Grid) String() string {
	if g == Full {
		return "full"
	}
	return "smoke"
}

// ParseGrid parses "smoke" or "full".
func ParseGrid(s string) (Grid, error) {
	switch s {
	case "smoke":
		return Smoke, nil
	case "full":
		return Full, nil
	}
	return Smoke, fmt.Errorf("hypo: unknown grid %q (want smoke or full)", s)
}

// Param is one named configuration dimension of a cell, in display order.
type Param struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Cell is one point of an invariant's experiment grid. ID must be unique
// within the invariant and canonical: it names the cell in verdicts, and
// the cell's entire randomness budget is derived from it (see Seed).
type Cell struct {
	Invariant string
	ID        string
	Params    []Param

	// spec is the invariant's typed payload for this cell; runners
	// down-cast it in Run. It never leaves the process: re-running a cell
	// elsewhere reconstructs it from Cells(grid) by ID.
	spec any
}

// Seed derives the cell's RNG seed from its configuration hash (FNV-64a
// over invariant name and cell ID). Cells therefore never share an RNG:
// each is independently reproducible, and sharding or reordering the grid
// cannot change any verdict.
func (c Cell) Seed() int64 {
	h := fnv.New64a()
	h.Write([]byte(c.Invariant))
	h.Write([]byte{0})
	h.Write([]byte(c.ID))
	return int64(h.Sum64())
}

// Check is one pass/fail comparison inside a cell: an observed statistic
// judged against a threshold. Margin is the signed distance into the
// passing region (non-negative iff the check passes), so a verdict file
// doubles as a record of how much slack every claim ran with.
type Check struct {
	Name      string  `json:"name"`
	Observed  float64 `json:"observed"`
	Op        string  `json:"op"` // ">=" or "<="
	Threshold float64 `json:"threshold"`
	Margin    float64 `json:"margin"`
	Pass      bool    `json:"pass"`
}

// GE builds an observed >= threshold check.
func GE(name string, observed, threshold float64) Check {
	return Check{Name: name, Observed: observed, Op: ">=", Threshold: threshold,
		Margin: observed - threshold, Pass: observed >= threshold}
}

// LE builds an observed <= threshold check.
func LE(name string, observed, threshold float64) Check {
	return Check{Name: name, Observed: observed, Op: "<=", Threshold: threshold,
		Margin: threshold - observed, Pass: observed <= threshold}
}

// CellResult is the verdict for one cell.
type CellResult struct {
	ID     string  `json:"id"`
	Params []Param `json:"params,omitempty"`
	Seed   int64   `json:"seed"`
	Pass   bool    `json:"pass"`
	Checks []Check `json:"checks"`
	// Detail carries a human-readable failure description (empty on pass).
	Detail string `json:"detail,omitempty"`
}

// Result assembles a CellResult from checks: the cell passes iff every
// check does.
func (c Cell) Result(checks ...Check) CellResult {
	r := CellResult{ID: c.ID, Params: c.Params, Seed: c.Seed(), Pass: true, Checks: checks}
	for _, ch := range checks {
		if !ch.Pass {
			r.Pass = false
		}
	}
	return r
}

// Fail assembles a failed CellResult for a cell that could not be judged
// (setup error, property violation outside any single check).
func (c Cell) Fail(detail string, checks ...Check) CellResult {
	r := c.Result(checks...)
	r.Pass = false
	r.Detail = detail
	return r
}

// Invariant is a named hypothesis: it enumerates its experiment grid and
// judges one cell at a time. Run must be deterministic in the cell alone
// (its parameters and hash-derived seed) — no shared mutable state, no
// wall clock in anything that reaches the verdict.
type Invariant interface {
	Name() string
	Doc() string
	Cells(g Grid) []Cell
	Run(c Cell) CellResult
}

var (
	regMu    sync.Mutex
	registry []Invariant
)

// Register adds an invariant to the global registry (called from init of
// the invariant's file). Duplicate names panic: two claims must not share
// one name.
func Register(inv Invariant) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, r := range registry {
		if r.Name() == inv.Name() {
			panic("hypo: duplicate invariant " + inv.Name())
		}
	}
	registry = append(registry, inv)
	sort.Slice(registry, func(i, j int) bool { return registry[i].Name() < registry[j].Name() })
}

// Invariants returns the registered invariants sorted by name.
func Invariants() []Invariant {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Invariant, len(registry))
	copy(out, registry)
	return out
}

// Get returns the invariant registered under name.
func Get(name string) (Invariant, bool) {
	for _, inv := range Invariants() {
		if inv.Name() == name {
			return inv, true
		}
	}
	return nil, false
}

// InvariantVerdict is one invariant's slice of the run verdict.
type InvariantVerdict struct {
	Name    string       `json:"name"`
	Doc     string       `json:"doc"`
	Cells   int          `json:"cells"`
	Failed  int          `json:"failed"`
	Pass    bool         `json:"pass"`
	Results []CellResult `json:"results"`
}

// Verdict is the machine-readable outcome of a grid run — the contract
// future refactors must keep green.
type Verdict struct {
	Grid       string             `json:"grid"`
	Cells      int                `json:"cells"`
	Failed     int                `json:"failed"`
	Pass       bool               `json:"pass"`
	Invariants []InvariantVerdict `json:"invariants"`
}

// JSON renders the verdict as deterministic, indented JSON (trailing
// newline included, ready to write to a file byte-for-byte).
func (v Verdict) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Verdicts are plain structs of strings, bools, and finite floats;
		// an encode failure is a programming error.
		panic("hypo: verdict encode: " + err.Error())
	}
	return buf.Bytes()
}

// Run executes the selected invariants' grids and returns the verdict.
// only filters invariants by name (nil runs all). Cells execute on the
// shared worker pool; results are written by index, so output order —
// invariants by name, cells in Cells() order — is independent of
// scheduling.
func Run(g Grid, only func(name string) bool) Verdict {
	invs := Invariants()
	type job struct {
		inv  Invariant
		cell Cell
		out  *CellResult
	}
	v := Verdict{Grid: g.String(), Pass: true}
	var jobs []job
	for _, inv := range invs {
		if only != nil && !only(inv.Name()) {
			continue
		}
		cells := inv.Cells(g)
		iv := InvariantVerdict{Name: inv.Name(), Doc: inv.Doc(), Cells: len(cells),
			Results: make([]CellResult, len(cells))}
		v.Invariants = append(v.Invariants, iv)
		slot := &v.Invariants[len(v.Invariants)-1]
		for i, c := range cells {
			jobs = append(jobs, job{inv, c, &slot.Results[i]})
		}
	}
	parallel.ForEachIndex(len(jobs), func(i int) {
		*jobs[i].out = jobs[i].inv.Run(jobs[i].cell)
	})
	for i := range v.Invariants {
		iv := &v.Invariants[i]
		iv.Pass = true
		for _, r := range iv.Results {
			if !r.Pass {
				iv.Failed++
				iv.Pass = false
			}
		}
		v.Cells += iv.Cells
		v.Failed += iv.Failed
		if !iv.Pass {
			v.Pass = false
		}
	}
	return v
}
