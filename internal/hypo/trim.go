package hypo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/workload"
)

// H-Trim is the nonstationarity claim behind BMBP's history trimming
// (Section 4 of the paper): after an abrupt upward regime shift — the
// drained-machine / policy-change mechanism the workload generator models
// as one-sided level regimes — the predictor must (a) detect the shift as
// a change point (a run of consecutive misses at least the
// autocorrelation-calibrated rare-event threshold long) and trim, (b)
// re-converge its bound onto the new regime within the rare-event window,
// and (c) be correct again on the stationary remainder of the new regime.
//
// The re-convergence window is expressed in the paper's own quantities.
// Detection needs a run of R consecutive misses (R the rare-event run
// length calibrated from the history's autocorrelation) — but with miss
// probabilities under 1 right after a shift, runs get broken by
// stragglers, so detection takes several attempts spread over up to a
// MinHistory of observations. Re-quoting a trustworthy bound then needs a
// MinHistory-sized window of fresh evidence to dominate the trimmed
// remnant. A shift is therefore "repaired within the rare-event window"
// when the bound covers the new regime's q-quantile within
// 2×MinHistory + 4R observations of the shift — about 140 jobs at the
// headline calibration, against a 3000-job post-shift segment. (Observed
// lags across the full grid run 3–85.)
type trim struct{}

type trimSpec struct {
	mult    float64 // regime level multiplier (e^delta)
	sigma   float64 // log-space body spread
	seedIdx int
}

func (trim) Name() string { return "H-Trim" }

func (trim) Doc() string {
	return "after an upward regime shift the predictor trims and its bound re-covers the new regime within 2x MinHistory + 4x the rare-event run length"
}

// trimJobs / trimShiftFrac size each cell's trace: a long pre-shift
// regime so the predictor is thoroughly settled (and the trim has real
// history to discard), and a post-shift segment long enough to score the
// stationary remainder.
const (
	trimJobs      = 6000
	trimShiftFrac = 0.5
)

func (tv trim) Cells(g Grid) []Cell {
	type combo struct {
		mult  float64
		sigma float64
		seeds int
	}
	var combos []combo
	if g == Smoke {
		combos = []combo{{10, 0.6, 1}, {10, 1.0, 1}}
	} else {
		combos = []combo{{10, 0.6, 5}, {10, 1.0, 5}, {20, 0.6, 5}, {20, 1.0, 5}}
	}
	var cells []Cell
	for _, cb := range combos {
		for s := 0; s < cb.seeds; s++ {
			cells = append(cells, Cell{
				Invariant: tv.Name(),
				ID:        fmt.Sprintf("shift%gx/sigma%.1f/s%d", cb.mult, cb.sigma, s),
				Params: []Param{
					{"shift_multiplier", fmt.Sprintf("%g", cb.mult)},
					{"sigma", fmt.Sprintf("%.1f", cb.sigma)},
					{"seed_index", fmt.Sprintf("%d", s)},
					{"jobs", fmt.Sprintf("%d", trimJobs)},
				},
				spec: trimSpec{mult: cb.mult, sigma: cb.sigma, seedIdx: s},
			})
		}
	}
	return cells
}

func (trim) Run(c Cell) CellResult {
	spec, ok := c.spec.(trimSpec)
	if !ok {
		return c.Fail("cell spec missing: cells must come from Cells()")
	}
	const q, conf = 0.95, 0.95
	seed := c.Seed()
	delta := math.Log(spec.mult)

	// One stationary log-normal regime with an explicit upward level
	// regime covering the second half of the trace — the workload
	// generator's regime mechanism with a known shift time, so the lag
	// measurement has an exact origin. Single segment, no episodes, no
	// diurnal cycle: the shift is the only nonstationarity in the cell.
	span := int64(trimJobs) * 300
	shiftAt := int64(float64(span) * trimShiftFrac)
	m := &workload.Model{
		Machine: "hypo", Queue: c.ID,
		Jobs: trimJobs, Start: 0, Span: span,
		Mu: math.Log(300), Sigma: spec.sigma, Phi: 0.3,
		Segments:       1,
		BucketWeights:  [4]float64{1, 0, 0, 0},
		EndSurgeBucket: -1,
		Regimes: []workload.Regime{{
			From: shiftAt, To: span + 1,
			BucketOffsets: [4]float64{delta, delta, delta, delta},
		}},
		Seed: seed,
	}
	tr := m.Generate()

	shiftIdx := -1
	for i, j := range tr.Jobs {
		if j.Submit >= shiftAt {
			shiftIdx = i
			break
		}
	}
	if shiftIdx < 200 {
		return c.Fail(fmt.Sprintf("degenerate trace: shift index %d", shiftIdx))
	}

	// The new regime's ground truth: the empirical q-quantile of every
	// post-shift wait. The bound has re-converged when it covers it.
	post := make([]float64, 0, tr.Len()-shiftIdx)
	for _, j := range tr.Jobs[shiftIdx:] {
		post = append(post, j.Wait)
	}
	sort.Float64s(post)
	target := post[min(len(post)-1, int(math.Ceil(q*float64(len(post))))-1)]

	fc := core.New(core.Config{Quantile: q, Confidence: conf, Seed: seed})
	for _, j := range tr.Jobs[:shiftIdx] {
		fc.ObserveAuto(j.Wait)
	}
	rare := fc.RareThreshold()
	if rare <= 0 {
		return c.Fail("rare-event threshold never calibrated (pre-shift history too short)")
	}
	preTrims := fc.Trims()
	allowed := 2*fc.MinHistory() + 4*rare

	// Post-shift: find the re-convergence lag, then score the stationary
	// remainder the way the evaluation does (quote, compare, observe).
	lag := len(tr.Jobs) - shiftIdx // pessimistic: never converged
	hits, scored := 0, 0
	for i, j := range tr.Jobs[shiftIdx:] {
		if lag > i {
			if b, ok := fc.Bound(); ok && b >= target {
				lag = i
			}
		}
		if lag <= i && i >= allowed {
			if b, ok := fc.Bound(); ok {
				scored++
				if j.Wait <= b {
					hits++
				}
			}
		}
		fc.ObserveAuto(j.Wait)
	}
	if scored == 0 {
		return c.Fail("no post-window predictions scored")
	}
	return c.Result(
		GE("trims", float64(fc.Trims()-preTrims), 1),
		LE("reconvergence_lag", float64(lag), float64(allowed)),
		GE("post_shift_hit_rate", float64(hits)/float64(scored), q-0.03),
	)
}

func init() { Register(trim{}) }
