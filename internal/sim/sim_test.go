package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/predictor"
	"repro/internal/trace"
)

// scripted is a test predictor that quotes a fixed bound and records what
// it observes.
type scripted struct {
	bound    float64
	ok       bool
	observed []float64
	missed   []bool
	refits   int
	trained  int
}

func (s *scripted) Name() string { return "scripted" }
func (s *scripted) Observe(w float64, missed bool) {
	s.observed = append(s.observed, w)
	s.missed = append(s.missed, missed)
}
func (s *scripted) FinishTraining() { s.trained++ }
func (s *scripted) Refit()          { s.refits++ }
func (s *scripted) Bound() (float64, bool) {
	return s.bound, s.ok
}

func mkTrace(jobs ...trace.Job) *trace.Trace {
	return &trace.Trace{Machine: "m", Queue: "q", Jobs: jobs}
}

func TestVisibilityRespectsReleaseTimes(t *testing.T) {
	// Job A (submit 0, wait 10000) releases long after jobs B and C are
	// submitted: B and C must be quoted bounds computed WITHOUT A's wait.
	p := &scripted{bound: 100, ok: true}
	tr := mkTrace(
		trace.Job{Submit: 0, Wait: 10000, Procs: 1},
		trace.Job{Submit: 600, Wait: 5, Procs: 1},
		trace.Job{Submit: 1200, Wait: 5, Procs: 1},
		trace.Job{Submit: 20000, Wait: 5, Procs: 1},
	)
	Run(tr, []predictor.Predictor{p}, Config{TrainFraction: 0.01})
	// Observation order: B (rel 605), C (rel 1205), then A (rel 10000).
	want := []float64{5, 5, 10000}
	if len(p.observed) != 3 { // the last job's release never passes a later cutoff
		t.Fatalf("observed %v", p.observed)
	}
	for i, w := range want {
		if p.observed[i] != w {
			t.Fatalf("observed %v, want %v", p.observed, want)
		}
	}
}

func TestEpochGranularityDelaysVisibility(t *testing.T) {
	// A wait released at t=290 is invisible to a job submitted at t=299
	// (same epoch) but visible at t=300.
	base := mkTrace(
		trace.Job{Submit: 0, Wait: 290, Procs: 1},  // releases at 290
		trace.Job{Submit: 299, Wait: 50, Procs: 1}, // same epoch: invisible
		trace.Job{Submit: 300, Wait: 50, Procs: 1}, // next epoch: sees the first
		trace.Job{Submit: 9999, Wait: 1, Procs: 1}, // flush
	)
	p := &scripted{bound: 1, ok: true}
	seen := map[int64]int{}
	// Track how many observations have arrived before each submission by
	// instrumenting through a wrapper predictor.
	wrap := &countingPredictor{inner: p, seen: seen}
	Run(base, []predictor.Predictor{wrap}, Config{TrainFraction: 0.01})
	if seen[299] != 0 {
		t.Errorf("job at 299 saw %d observations, want 0", seen[299])
	}
	if seen[300] != 1 {
		t.Errorf("job at 300 saw %d observations, want 1", seen[300])
	}

	// With InstantUpdates the 299 job sees it too.
	p2 := &scripted{bound: 1, ok: true}
	seen2 := map[int64]int{}
	Run(base, []predictor.Predictor{&countingPredictor{inner: p2, seen: seen2}}, Config{TrainFraction: 0.01, InstantUpdates: true})
	if seen2[299] != 1 {
		t.Errorf("instant updates: job at 299 saw %d, want 1", seen2[299])
	}
}

// countingPredictor records how many observations preceded each Bound call.
type countingPredictor struct {
	inner    *scripted
	pending  int64
	seen     map[int64]int
	nextTime []int64
}

func (c *countingPredictor) Name() string { return "counting" }
func (c *countingPredictor) Observe(w float64, missed bool) {
	c.inner.Observe(w, missed)
}
func (c *countingPredictor) FinishTraining() {}
func (c *countingPredictor) Refit()          {}
func (c *countingPredictor) Bound() (float64, bool) {
	// Bound is called once per arriving job in submission order; match
	// them up via the recorded submits.
	if len(c.nextTime) == 0 {
		// Lazily populated by the test harness pattern below: the tests
		// use fixed traces, so infer from call count.
		c.nextTime = []int64{0, 299, 300, 9999}
	}
	idx := c.pending
	c.pending++
	if int(idx) < len(c.nextTime) {
		c.seen[c.nextTime[idx]] = len(c.inner.observed)
	}
	return c.inner.Bound()
}

func TestTrainingFractionExcludedFromScoring(t *testing.T) {
	jobs := make([]trace.Job, 100)
	for i := range jobs {
		jobs[i] = trace.Job{Submit: int64(i * 1000), Wait: 1, Procs: 1}
	}
	p := &scripted{bound: 10, ok: true}
	res := Run(mkTrace(jobs...), []predictor.Predictor{p}, Config{})
	if res[0].Scored != 90 {
		t.Errorf("scored = %d, want 90 (10%% training)", res[0].Scored)
	}
	if p.trained != 1 {
		t.Errorf("FinishTraining calls = %d", p.trained)
	}
	if res[0].Correct != 90 {
		t.Errorf("correct = %d", res[0].Correct)
	}
}

func TestSuccessFailureAndRatios(t *testing.T) {
	// Fixed bound 10; waits alternate 5 and 20: half correct, ratios
	// {0.5, 2.0} alternating -> median 1.25 over pairs.
	jobs := make([]trace.Job, 40)
	for i := range jobs {
		w := 5.0
		if i%2 == 1 {
			w = 20
		}
		jobs[i] = trace.Job{Submit: int64(i * 1000), Wait: w, Procs: 1}
	}
	p := &scripted{bound: 10, ok: true}
	res := Run(mkTrace(jobs...), []predictor.Predictor{p}, Config{})
	r := res[0]
	if r.Scored != 36 {
		t.Fatalf("scored = %d", r.Scored)
	}
	if got := r.CorrectFraction(); got != 0.5 {
		t.Errorf("correct fraction = %g", got)
	}
	if got := r.MedianRatio(); got != 1.25 {
		t.Errorf("median ratio = %g", got)
	}
}

func TestUnboundedJobsCounted(t *testing.T) {
	jobs := make([]trace.Job, 50)
	for i := range jobs {
		jobs[i] = trace.Job{Submit: int64(i * 1000), Wait: 1, Procs: 1}
	}
	p := &scripted{bound: 0, ok: false}
	res := Run(mkTrace(jobs...), []predictor.Predictor{p}, Config{})
	if res[0].Scored != 0 {
		t.Errorf("scored = %d", res[0].Scored)
	}
	if res[0].Unbounded != 45 {
		t.Errorf("unbounded = %d, want 45", res[0].Unbounded)
	}
	if res[0].CorrectFraction() != 1 {
		t.Error("empty scoring should report 1")
	}
	if res[0].MedianRatio() != 0 {
		t.Error("no ratios -> 0")
	}
}

func TestMissSignalFeedsPredictor(t *testing.T) {
	// The predictor's own quoted bound determines the missed flag it is
	// handed at observation time.
	jobs := []trace.Job{
		{Submit: 0, Wait: 5, Procs: 1},     // covered (5 <= 10)
		{Submit: 1000, Wait: 50, Procs: 1}, // missed (50 > 10)
		{Submit: 2000, Wait: 10, Procs: 1}, // covered (10 <= 10, inclusive)
		{Submit: 99999, Wait: 1, Procs: 1}, // flush
	}
	p := &scripted{bound: 10, ok: true}
	Run(mkTrace(jobs...), []predictor.Predictor{p}, Config{TrainFraction: 0.01})
	wantMissed := []bool{false, true, false}
	if len(p.missed) != 3 {
		t.Fatalf("missed = %v", p.missed)
	}
	for i, m := range wantMissed {
		if p.missed[i] != m {
			t.Fatalf("missed = %v, want %v", p.missed, wantMissed)
		}
	}
}

func TestRunSortsUnsortedTrace(t *testing.T) {
	tr := mkTrace(
		trace.Job{Submit: 5000, Wait: 1, Procs: 1},
		trace.Job{Submit: 0, Wait: 1, Procs: 1},
		trace.Job{Submit: 2500, Wait: 1, Procs: 1},
	)
	p := &scripted{bound: 10, ok: true}
	res := Run(tr, []predictor.Predictor{p}, Config{TrainFraction: 0.01})
	if res[0].Scored == 0 {
		t.Fatal("nothing scored")
	}
	// The input trace itself must be untouched.
	if tr.Jobs[0].Submit != 5000 {
		t.Error("Run mutated the caller's trace order")
	}
}

func TestSamplingGrid(t *testing.T) {
	jobs := make([]trace.Job, 200)
	for i := range jobs {
		jobs[i] = trace.Job{Submit: int64(i * 100), Wait: 3, Procs: 1}
	}
	var times []int64
	cfg := Config{
		SampleEvery: 600,
		SampleFrom:  5_000,
		SampleTo:    8_000,
		OnSample: func(ts int64, preds []predictor.Predictor) {
			times = append(times, ts)
			if len(preds) != 1 {
				t.Fatal("preds")
			}
		},
	}
	p := &scripted{bound: 10, ok: true}
	Run(mkTrace(jobs...), []predictor.Predictor{p}, cfg)
	want := []int64{5400, 6000, 6600, 7200, 7800}
	if len(times) != len(want) {
		t.Fatalf("sample times %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("sample times %v, want %v", times, want)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	p := &scripted{}
	res := Run(mkTrace(), []predictor.Predictor{p}, Config{})
	if len(res) != 1 || res[0].Scored != 0 {
		t.Fatal("empty trace result")
	}
}

func TestMedianRatioOddEven(t *testing.T) {
	r := Result{Ratios: []float64{3, 1, 2}}
	if r.MedianRatio() != 2 {
		t.Error("odd median")
	}
	r2 := Result{Ratios: []float64{4, 1, 3, 2}}
	if r2.MedianRatio() != 2.5 {
		t.Error("even median")
	}
}

func TestZeroBoundSkipsRatioOnly(t *testing.T) {
	jobs := []trace.Job{
		{Submit: 0, Wait: 0, Procs: 1},
		{Submit: 1000, Wait: 0, Procs: 1},
		{Submit: 2000, Wait: 0, Procs: 1},
	}
	p := &scripted{bound: 0, ok: true} // legitimate zero bound
	res := Run(mkTrace(jobs...), []predictor.Predictor{p}, Config{TrainFraction: 0.01})
	r := res[0]
	// 1% of 3 jobs rounds to zero training jobs: all three are scored.
	if r.Scored != 3 || r.Correct != 3 {
		t.Fatalf("scored=%d correct=%d", r.Scored, r.Correct)
	}
	if len(r.Ratios) != 0 {
		t.Error("zero bounds cannot produce ratios")
	}
	if r.MedianRatio() != 0 {
		t.Error("MedianRatio over no ratios is 0 by contract")
	}
}

func TestEpochInsensitivity(t *testing.T) {
	// The paper: epoch length 0 vs 300 s barely changes results. Verify
	// on a real predictor stack over a synthetic stream.
	jobs := make([]trace.Job, 4000)
	x := 100.0
	for i := range jobs {
		x = 0.7*x + 30*float64(i%17)
		jobs[i] = trace.Job{Submit: int64(i * 120), Wait: math.Mod(x, 5000), Procs: 1}
	}
	tr := mkTrace(jobs...)
	a := Run(tr, predictor.Standard(0.95, 0.95, 1), Config{})
	b := Run(tr, predictor.Standard(0.95, 0.95, 1), Config{InstantUpdates: true})
	for i := range a {
		da := a[i].CorrectFraction()
		db := b[i].CorrectFraction()
		if math.Abs(da-db) > 0.02 {
			t.Errorf("%s: epoch sensitivity %g vs %g", a[i].Method, da, db)
		}
	}
}

// TestRunArenaReuseMatchesFreshRun drives one Arena through back-to-back
// replays with different traces and predictor counts and checks every pass
// is bit-identical to a fresh private-arena Run: residue from an earlier
// replay (grown slot arrays, stale heap entries, a different bound stride)
// must never leak into the next.
func TestRunArenaReuseMatchesFreshRun(t *testing.T) {
	a := new(Arena)
	for pass := 0; pass < 2; pass++ {
		for _, np := range []int{1, 3} {
			tr := synthTrace(1500, int64(7+np))
			mk := func() []predictor.Predictor {
				if np == 1 {
					return []predictor.Predictor{&scripted{bound: 200, ok: true}}
				}
				return predictor.Standard(0.95, 0.95, 11)
			}
			got := RunArena(tr, mk(), Config{}, a)
			want := Run(tr, mk(), Config{})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pass %d np %d: reused arena diverged:\n got %+v\nwant %+v", pass, np, got, want)
			}
		}
	}
}
