package sim

import (
	"math/rand"
	"testing"

	"repro/internal/predictor"
	"repro/internal/trace"
)

// oraclePredictor predicts the running maximum of everything it has
// observed — chosen for the property test because its bound depends on the
// exact visible set, making visibility bugs detectable.
type oraclePredictor struct {
	max  float64
	seen int
}

func (o *oraclePredictor) Name() string { return "oracle" }
func (o *oraclePredictor) Observe(w float64, missed bool) {
	o.seen++
	if w > o.max {
		o.max = w
	}
}
func (o *oraclePredictor) FinishTraining() {}
func (o *oraclePredictor) Refit()          {}
func (o *oraclePredictor) Bound() (float64, bool) {
	return o.max, o.seen > 0
}

// bruteForceRun recomputes, for each job independently, the exact set of
// waits visible at its submission under the epoch rule, and scores the
// running-max bound — an O(n²) oracle for Run's event-driven bookkeeping.
func bruteForceRun(t *trace.Trace, epoch int64, trainFraction float64) (scored, correct int) {
	n := len(t.Jobs)
	train := int(trainFraction * float64(n))
	for i, j := range t.Jobs {
		if i < train {
			continue
		}
		cutoff := j.Submit - j.Submit%epoch
		max, seen := 0.0, 0
		for k, other := range t.Jobs {
			if k == i {
				continue
			}
			if other.Release() <= cutoff {
				seen++
				if other.Wait > max {
					max = other.Wait
				}
			}
		}
		if seen == 0 {
			continue
		}
		scored++
		if j.Wait <= max {
			correct++
		}
	}
	return scored, correct
}

func TestRunMatchesBruteForceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(200)
		tr := &trace.Trace{Machine: "m", Queue: "q"}
		// Strictly increasing submits and positive waits: a zero-wait job
		// submitted at the same instant as another is an ordering tie the
		// sim resolves by arrival order and the oracle cannot see.
		ts := int64(0)
		for i := 0; i < n; i++ {
			ts += 1 + int64(rng.Intn(900))
			tr.Jobs = append(tr.Jobs, trace.Job{
				Submit: ts,
				Wait:   float64(1 + rng.Intn(5000)),
				Procs:  1,
			})
		}
		p := &oraclePredictor{}
		res := Run(tr, []predictor.Predictor{p}, Config{EpochSeconds: 300, TrainFraction: 0.1})
		wantScored, wantCorrect := bruteForceRun(tr, 300, 0.1)
		got := res[0]
		if got.Scored != wantScored || got.Correct != wantCorrect {
			t.Fatalf("trial %d: sim %d/%d vs oracle %d/%d",
				trial, got.Correct, got.Scored, wantCorrect, wantScored)
		}
	}
}
