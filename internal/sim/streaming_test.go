package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/trace"
)

func synthTrace(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]trace.Job, n)
	ts := int64(0)
	for i := range jobs {
		ts += int64(rng.Intn(120) + 1)
		jobs[i] = trace.Job{
			Submit: ts,
			Wait:   math.Exp(rng.NormFloat64()*1.5 + 4),
			Procs:  1 + rng.Intn(16),
		}
	}
	return &trace.Trace{Machine: "synth", Queue: "q", Jobs: jobs}
}

// TestStreamingRatiosMatchesExactOnReplay runs the same trace through the
// exact Ratios log and the P² sketch and checks the streamed median lands
// on the exact one (closely — the sketch is approximate past five ratios)
// while holding no per-job state.
func TestStreamingRatiosMatchesExactOnReplay(t *testing.T) {
	tr := synthTrace(6000, 9)
	mk := func() []predictor.Predictor {
		return []predictor.Predictor{predictorAdapter{core.New(core.Config{Seed: 3})}}
	}
	exact := Run(tr, mk(), Config{})
	stream := Run(tr, mk(), Config{StreamingRatios: true})

	if len(stream[0].Ratios) != 0 {
		t.Fatalf("streaming run logged %d ratios, want none", len(stream[0].Ratios))
	}
	if exact[0].RatioCount() != stream[0].RatioCount() {
		t.Fatalf("ratio counts differ: exact %d, stream %d", exact[0].RatioCount(), stream[0].RatioCount())
	}
	if exact[0].Scored != stream[0].Scored || exact[0].Correct != stream[0].Correct {
		t.Fatalf("scoring differs between modes: %+v vs %+v", exact[0], stream[0])
	}
	em, sm := exact[0].MedianRatio(), stream[0].MedianRatio()
	if em <= 0 {
		t.Fatalf("exact median ratio %g", em)
	}
	if rel := math.Abs(sm-em) / em; rel > 0.05 {
		t.Fatalf("stream median %g vs exact %g (rel err %g)", sm, em, rel)
	}
}

// TestStreamingRatiosSmallCounts pins the exact-equality regime: with five
// or fewer scored ratios the sketch must reproduce MedianRatio bit for bit
// on empty, single, odd, and even inputs.
func TestStreamingRatiosSmallCounts(t *testing.T) {
	// Empty trace: both modes report zero.
	empty := Run(mkTrace(), nil, Config{StreamingRatios: true})
	if len(empty) != 0 {
		t.Fatalf("empty trace with no predictors: %d results", len(empty))
	}
	er := Result{ratioSketch: nil}
	if er.MedianRatio() != 0 {
		t.Fatal("MedianRatio over no ratios is 0 by contract")
	}
	for njobs := 1; njobs <= 5; njobs++ {
		srun := Run(synthSmall(njobs), []predictor.Predictor{&scripted{bound: 100, ok: true}}, Config{TrainFraction: 0.01, StreamingRatios: true})
		erun := Run(synthSmall(njobs), []predictor.Predictor{&scripted{bound: 100, ok: true}}, Config{TrainFraction: 0.01})
		exact, stream := erun[0], srun[0]
		if exact.RatioCount() != njobs || stream.RatioCount() != njobs {
			t.Fatalf("njobs=%d: counts %d vs %d", njobs, exact.RatioCount(), stream.RatioCount())
		}
		if got, want := stream.MedianRatio(), exact.MedianRatio(); got != want {
			t.Errorf("njobs=%d: streaming median %g, exact %g", njobs, got, want)
		}
	}
}

// synthSmall returns a trace whose last job is a far-future flush; all n
// jobs (including the flush itself, quoted at submission) are scored, so
// exactly n ratios are recorded.
func synthSmall(n int) *trace.Trace {
	jobs := make([]trace.Job, n)
	for i := range jobs {
		jobs[i] = trace.Job{Submit: int64(i * 1000), Wait: float64(10 * (i + 1)), Procs: 1}
	}
	jobs[n-1] = trace.Job{Submit: 1 << 40, Wait: 1, Procs: 1}
	return &trace.Trace{Machine: "m", Queue: "q", Jobs: jobs}
}

// predictorAdapter lifts a *core.BMBP into the predictor interface the
// simulator consumes (mirrors the wiring in internal/predictor).
type predictorAdapter struct{ b *core.BMBP }

func (a predictorAdapter) Name() string              { return a.b.Name() }
func (a predictorAdapter) Observe(w float64, m bool) { a.b.Observe(w, m) }
func (a predictorAdapter) FinishTraining()           { a.b.FinishTraining() }
func (a predictorAdapter) Refit()                    { a.b.Refit() }
func (a predictorAdapter) Bound() (float64, bool)    { return a.b.Bound() }

// TestReplayAllocsDoNotScaleWithJobs asserts the pooled replay loop's
// allocation count is a function of the backlog, not the job count: a
// trace 8× longer may not allocate more than a small constant factor over
// the short one (slice-growth doublings), where the old per-job entries
// grew allocations linearly.
func TestReplayAllocsDoNotScaleWithJobs(t *testing.T) {
	run := func(n int) float64 {
		tr := synthTrace(n, 13)
		return testing.AllocsPerRun(3, func() {
			p := &scripted{bound: 1e9, ok: true}
			Run(tr, []predictor.Predictor{p}, Config{StreamingRatios: true})
		})
	}
	small, large := run(2000), run(16000)
	if large > 4*small+64 {
		t.Fatalf("allocs grew with job count: %g for 2k jobs, %g for 16k jobs", small, large)
	}
}

func BenchmarkSimReplay(b *testing.B) {
	tr := synthTrace(20000, 21)
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			preds := predictor.Standard(0.95, 0.95, 1)
			Run(tr, preds, Config{})
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			preds := predictor.Standard(0.95, 0.95, 1)
			Run(tr, preds, Config{StreamingRatios: true})
		}
	})
}
