// Package sim implements the paper's trace-driven evaluation simulator
// (Section 5.1). It replays a job trace against one or more predictors
// under the paper's visibility rules:
//
//   - a job's wait time becomes visible to the predictors only when the job
//     leaves the queue (submit + wait), never at submission;
//   - predictors see history in 5-minute dumps: the bound quoted to a job
//     submitted at time t reflects only waits released at or before the
//     last epoch boundary preceding t (the paper's case 3; set
//     InstantUpdates to reproduce its epoch-length-0 experiment);
//   - the first TrainFraction of each trace warms the predictors up without
//     being scored;
//   - each scored job records a success (actual wait <= quoted bound) or
//     failure, plus the ratio of actual to predicted wait, whose median is
//     the paper's accuracy metric (Table 4).
package sim

import (
	"container/heap"
	"sort"

	"repro/internal/predictor"
	"repro/internal/trace"
)

// Config controls a simulation run. The zero value reproduces the paper's
// settings: 300-second epochs and a 10% training prefix.
type Config struct {
	// EpochSeconds is the interval between predictor state dumps
	// (default 300).
	EpochSeconds int64
	// InstantUpdates simulates the epoch-length-0 deployment in which the
	// predictor state is updated for every job (the paper reports the
	// effect is minimal).
	InstantUpdates bool
	// TrainFraction is the warm-up prefix of the trace (default 0.10).
	TrainFraction float64
	// SampleEvery, when positive, invokes OnSample at every multiple of
	// SampleEvery seconds within [SampleFrom, SampleTo), with predictor
	// state exactly as a live system would have had it at that moment.
	SampleEvery          int64
	SampleFrom, SampleTo int64
	// OnSample receives the sampling callbacks.
	OnSample func(ts int64, preds []predictor.Predictor)
}

func (c Config) withDefaults() Config {
	if c.EpochSeconds == 0 {
		c.EpochSeconds = 300
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.10
	}
	return c
}

// Result aggregates one predictor's performance over one trace.
type Result struct {
	Machine string
	Queue   string
	Method  string

	// Scored is the number of post-training jobs for which a bound was
	// quoted; Correct of them waited no longer than the bound.
	Scored  int
	Correct int
	// Unbounded counts post-training jobs submitted while the predictor
	// had too little history to quote a bound.
	Unbounded int
	// Ratios holds actual/predicted for every scored job with a positive
	// predicted bound, in submission order.
	Ratios []float64
	// Trims is how many change points the predictor acted on (0 for
	// methods without trimming).
	Trims int
}

// CorrectFraction returns Correct/Scored (1 when nothing was scored, since
// no prediction was wrong).
func (r *Result) CorrectFraction() float64 {
	if r.Scored == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Scored)
}

// MedianRatio returns the median of actual/predicted ratios, the paper's
// Table 4 accuracy metric. Zero when no ratios were recorded.
func (r *Result) MedianRatio() float64 {
	if len(r.Ratios) == 0 {
		return 0
	}
	s := make([]float64, len(r.Ratios))
	copy(s, r.Ratios)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// pendingJob is a submitted job whose wait is not yet visible.
type pendingJob struct {
	release int64
	seq     int // submission order, to break release ties deterministically
	wait    float64
	bounds  []float64
	boundOK []bool
	scored  bool
}

type pendingHeap []*pendingJob

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].release != h[j].release {
		return h[i].release < h[j].release
	}
	return h[i].seq < h[j].seq
}
func (h pendingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x interface{}) { *h = append(*h, x.(*pendingJob)) }
func (h *pendingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Run replays the trace against the predictors and returns one Result per
// predictor, in the same order. The trace must be (or will be) ordered by
// submission time; Run sorts a copy if needed.
func Run(t *trace.Trace, preds []predictor.Predictor, cfg Config) []Result {
	cfg = cfg.withDefaults()
	jobs := t.Jobs
	if !sort.SliceIsSorted(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit }) {
		jobs = append([]trace.Job(nil), jobs...)
		sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
	}

	results := make([]Result, len(preds))
	for i, p := range preds {
		results[i] = Result{Machine: t.Machine, Queue: t.Queue, Method: p.Name()}
	}
	if len(jobs) == 0 {
		return results
	}

	trainCount := int(cfg.TrainFraction * float64(len(jobs)))
	pending := &pendingHeap{}
	heap.Init(pending)

	epochFloor := func(ts int64) int64 {
		if cfg.InstantUpdates {
			return ts
		}
		return ts - ts%cfg.EpochSeconds
	}

	// advance makes all waits released at or before cutoff visible, in
	// release order, and refits.
	advance := func(cutoff int64) {
		changed := false
		for pending.Len() > 0 && (*pending)[0].release <= cutoff {
			e := heap.Pop(pending).(*pendingJob)
			for j, p := range preds {
				missed := e.boundOK[j] && e.wait > e.bounds[j]
				p.Observe(e.wait, missed)
			}
			changed = true
		}
		if changed {
			for _, p := range preds {
				p.Refit()
			}
		}
	}

	nextSample := int64(0)
	sampling := cfg.SampleEvery > 0 && cfg.OnSample != nil
	if sampling {
		nextSample = cfg.SampleFrom - cfg.SampleFrom%cfg.SampleEvery
		if nextSample < cfg.SampleFrom {
			nextSample += cfg.SampleEvery
		}
	}
	emitSamplesUpTo := func(ts int64) {
		if !sampling {
			return
		}
		for nextSample < ts && nextSample < cfg.SampleTo {
			advance(epochFloor(nextSample))
			cfg.OnSample(nextSample, preds)
			nextSample += cfg.SampleEvery
		}
	}

	trained := false
	for i, job := range jobs {
		if i >= trainCount && !trained {
			for _, p := range preds {
				p.FinishTraining()
			}
			trained = true
		}
		emitSamplesUpTo(job.Submit)
		advance(epochFloor(job.Submit))

		entry := &pendingJob{
			release: job.Release(),
			seq:     i,
			wait:    job.Wait,
			bounds:  make([]float64, len(preds)),
			boundOK: make([]bool, len(preds)),
			scored:  i >= trainCount,
		}
		for j, p := range preds {
			b, ok := p.Bound()
			entry.bounds[j] = b
			entry.boundOK[j] = ok
			if !entry.scored {
				continue
			}
			r := &results[j]
			if !ok {
				r.Unbounded++
				continue
			}
			r.Scored++
			if job.Wait <= b {
				r.Correct++
			}
			if b > 0 {
				r.Ratios = append(r.Ratios, job.Wait/b)
			}
		}
		heap.Push(pending, entry)
	}
	// Flush any samples that fall after the last arrival.
	if sampling {
		emitSamplesUpTo(cfg.SampleTo)
	}

	for j, p := range preds {
		if tr, ok := p.(interface{ Trims() int }); ok {
			results[j].Trims = tr.Trims()
		}
	}
	return results
}
