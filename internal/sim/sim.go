// Package sim implements the paper's trace-driven evaluation simulator
// (Section 5.1). It replays a job trace against one or more predictors
// under the paper's visibility rules:
//
//   - a job's wait time becomes visible to the predictors only when the job
//     leaves the queue (submit + wait), never at submission;
//   - predictors see history in 5-minute dumps: the bound quoted to a job
//     submitted at time t reflects only waits released at or before the
//     last epoch boundary preceding t (the paper's case 3; set
//     InstantUpdates to reproduce its epoch-length-0 experiment);
//   - the first TrainFraction of each trace warms the predictors up without
//     being scored;
//   - each scored job records a success (actual wait <= quoted bound) or
//     failure, plus the ratio of actual to predicted wait, whose median is
//     the paper's accuracy metric (Table 4).
package sim

import (
	"sort"

	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config controls a simulation run. The zero value reproduces the paper's
// settings: 300-second epochs and a 10% training prefix.
type Config struct {
	// EpochSeconds is the interval between predictor state dumps
	// (default 300).
	EpochSeconds int64
	// InstantUpdates simulates the epoch-length-0 deployment in which the
	// predictor state is updated for every job (the paper reports the
	// effect is minimal).
	InstantUpdates bool
	// TrainFraction is the warm-up prefix of the trace (default 0.10).
	TrainFraction float64
	// SampleEvery, when positive, invokes OnSample at every multiple of
	// SampleEvery seconds within [SampleFrom, SampleTo), with predictor
	// state exactly as a live system would have had it at that moment.
	SampleEvery          int64
	SampleFrom, SampleTo int64
	// OnSample receives the sampling callbacks.
	OnSample func(ts int64, preds []predictor.Predictor)
	// StreamingRatios replaces the per-job Ratios log with a constant-space
	// P² median sketch, so million-job replays stop holding O(jobs) memory
	// per predictor. MedianRatio then returns the sketch's estimate (exact
	// up to five ratios, approximate beyond); Result.Ratios stays nil.
	StreamingRatios bool
}

func (c Config) withDefaults() Config {
	if c.EpochSeconds == 0 {
		c.EpochSeconds = 300
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.10
	}
	return c
}

// Result aggregates one predictor's performance over one trace.
type Result struct {
	Machine string
	Queue   string
	Method  string

	// Scored is the number of post-training jobs for which a bound was
	// quoted; Correct of them waited no longer than the bound.
	Scored  int
	Correct int
	// Unbounded counts post-training jobs submitted while the predictor
	// had too little history to quote a bound.
	Unbounded int
	// Ratios holds actual/predicted for every scored job with a positive
	// predicted bound, in submission order.
	Ratios []float64
	// Trims is how many change points the predictor acted on (0 for
	// methods without trimming).
	Trims int

	// ratioSketch replaces Ratios under Config.StreamingRatios.
	ratioSketch *stats.P2Quantile
}

// CorrectFraction returns Correct/Scored (1 when nothing was scored, since
// no prediction was wrong).
func (r *Result) CorrectFraction() float64 {
	if r.Scored == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Scored)
}

// RatioCount returns how many ratios were recorded, regardless of whether
// they were logged exactly or fed to the streaming sketch.
func (r *Result) RatioCount() int {
	if r.ratioSketch != nil {
		return r.ratioSketch.Count()
	}
	return len(r.Ratios)
}

// MedianRatio returns the median of actual/predicted ratios, the paper's
// Table 4 accuracy metric. Zero when no ratios were recorded. Under
// Config.StreamingRatios this is the P² sketch's estimate.
func (r *Result) MedianRatio() float64 {
	if r.ratioSketch != nil {
		return r.ratioSketch.Value()
	}
	if len(r.Ratios) == 0 {
		return 0
	}
	s := make([]float64, len(r.Ratios))
	copy(s, r.Ratios)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// pendingJob is a submitted job whose wait is not yet visible. Jobs live in
// a slot arena (jobPool); the per-predictor bound arrays are flattened into
// two shared backing slices indexed by slot, so a pending job costs zero
// allocations once the pool has grown to the trace's maximum backlog.
type pendingJob struct {
	release int64
	wait    float64
	seq     int32 // submission order, to break release ties deterministically
	scored  bool
}

// jobPool is the slot arena plus free list backing the replay loop.
type jobPool struct {
	np      int
	jobs    []pendingJob
	bounds  []float64 // slot s, predictor j -> bounds[s*np+j]
	boundOK []bool
	free    []int32
}

func (p *jobPool) alloc() int32 {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	s := int32(len(p.jobs))
	p.jobs = append(p.jobs, pendingJob{})
	for i := 0; i < p.np; i++ {
		p.bounds = append(p.bounds, 0)
		p.boundOK = append(p.boundOK, false)
	}
	return s
}

func (p *jobPool) release(s int32) { p.free = append(p.free, s) }

func (p *jobPool) boundsOf(s int32) ([]float64, []bool) {
	lo, hi := int(s)*p.np, (int(s)+1)*p.np
	return p.bounds[lo:hi:hi], p.boundOK[lo:hi:hi]
}

// slotHeap is a typed binary min-heap of pool slots ordered by
// (release, seq). Replacing the interface-boxed container/heap removes the
// per-push boxing allocation and the indirect Less/Swap calls; the order it
// pops is identical because (release, seq) is a strict total order.
type slotHeap struct {
	pool  *jobPool
	slots []int32
}

func (h *slotHeap) len() int { return len(h.slots) }

func (h *slotHeap) less(a, b int32) bool {
	ja, jb := &h.pool.jobs[a], &h.pool.jobs[b]
	if ja.release != jb.release {
		return ja.release < jb.release
	}
	return ja.seq < jb.seq
}

func (h *slotHeap) push(s int32) {
	h.slots = append(h.slots, s)
	i := len(h.slots) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.slots[i], h.slots[parent]) {
			break
		}
		h.slots[i], h.slots[parent] = h.slots[parent], h.slots[i]
		i = parent
	}
}

func (h *slotHeap) pop() int32 {
	s := h.slots[0]
	n := len(h.slots) - 1
	h.slots[0] = h.slots[n]
	h.slots = h.slots[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(h.slots[r], h.slots[l]) {
			m = r
		}
		if !h.less(h.slots[m], h.slots[i]) {
			break
		}
		h.slots[i], h.slots[m] = h.slots[m], h.slots[i]
		i = m
	}
	return s
}

// Arena owns the replay loop's grown-once state — the pending-job slot
// arena and its heap — so repeated runs (scenario grids, hypothesis cells,
// experiment caches) stop paying the per-run growth allocations. The zero
// value is ready; pass the same Arena to successive RunArena calls. An
// Arena is not safe for concurrent use: pool one per worker.
type Arena struct {
	pool    jobPool
	pending slotHeap
}

// reset prepares the arena for a run with np predictors, keeping every
// backing array. The flattened bound arrays are stride-np, so they restart
// empty regardless of the previous run's predictor count.
func (a *Arena) reset(np int) {
	a.pool.np = np
	a.pool.jobs = a.pool.jobs[:0]
	a.pool.bounds = a.pool.bounds[:0]
	a.pool.boundOK = a.pool.boundOK[:0]
	a.pool.free = a.pool.free[:0]
	a.pending.pool = &a.pool
	a.pending.slots = a.pending.slots[:0]
}

// Run replays the trace against the predictors and returns one Result per
// predictor, in the same order. The trace must be (or will be) ordered by
// submission time; Run sorts a copy if needed.
func Run(t *trace.Trace, preds []predictor.Predictor, cfg Config) []Result {
	return RunArena(t, preds, cfg, nil)
}

// RunArena is Run with caller-owned scratch state: a's arrays are reused
// across calls, so back-to-back replays allocate only the Result slice and
// whatever the predictors themselves allocate. A nil arena degrades to a
// private one (exactly Run).
func RunArena(t *trace.Trace, preds []predictor.Predictor, cfg Config, a *Arena) []Result {
	if a == nil {
		a = new(Arena)
	}
	cfg = cfg.withDefaults()
	jobs := t.Jobs
	if !sort.SliceIsSorted(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit }) {
		jobs = append([]trace.Job(nil), jobs...)
		sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
	}

	results := make([]Result, len(preds))
	for i, p := range preds {
		results[i] = Result{Machine: t.Machine, Queue: t.Queue, Method: p.Name()}
		if cfg.StreamingRatios {
			results[i].ratioSketch = stats.NewP2Quantile(0.5)
		}
	}
	if len(jobs) == 0 {
		return results
	}

	trainCount := int(cfg.TrainFraction * float64(len(jobs)))
	a.reset(len(preds))
	pool, pending := &a.pool, &a.pending

	epochFloor := func(ts int64) int64 {
		if cfg.InstantUpdates {
			return ts
		}
		return ts - ts%cfg.EpochSeconds
	}

	// advance makes all waits released at or before cutoff visible, in
	// release order, and refits.
	advance := func(cutoff int64) {
		changed := false
		for pending.len() > 0 && pool.jobs[pending.slots[0]].release <= cutoff {
			s := pending.pop()
			e := &pool.jobs[s]
			bounds, boundOK := pool.boundsOf(s)
			for j, p := range preds {
				missed := boundOK[j] && e.wait > bounds[j]
				p.Observe(e.wait, missed)
			}
			pool.release(s)
			changed = true
		}
		if changed {
			for _, p := range preds {
				p.Refit()
			}
		}
	}

	nextSample := int64(0)
	sampling := cfg.SampleEvery > 0 && cfg.OnSample != nil
	if sampling {
		nextSample = cfg.SampleFrom - cfg.SampleFrom%cfg.SampleEvery
		if nextSample < cfg.SampleFrom {
			nextSample += cfg.SampleEvery
		}
	}
	emitSamplesUpTo := func(ts int64) {
		if !sampling {
			return
		}
		for nextSample < ts && nextSample < cfg.SampleTo {
			advance(epochFloor(nextSample))
			cfg.OnSample(nextSample, preds)
			nextSample += cfg.SampleEvery
		}
	}

	trained := false
	for i, job := range jobs {
		if i >= trainCount && !trained {
			for _, p := range preds {
				p.FinishTraining()
			}
			trained = true
		}
		emitSamplesUpTo(job.Submit)
		advance(epochFloor(job.Submit))

		s := pool.alloc()
		entry := &pool.jobs[s]
		entry.release = job.Release()
		entry.seq = int32(i)
		entry.wait = job.Wait
		entry.scored = i >= trainCount
		bounds, boundOK := pool.boundsOf(s)
		for j, p := range preds {
			b, ok := p.Bound()
			bounds[j] = b
			boundOK[j] = ok
			if !entry.scored {
				continue
			}
			r := &results[j]
			if !ok {
				r.Unbounded++
				continue
			}
			r.Scored++
			if job.Wait <= b {
				r.Correct++
			}
			if b > 0 {
				if r.ratioSketch != nil {
					r.ratioSketch.Add(job.Wait / b)
				} else {
					r.Ratios = append(r.Ratios, job.Wait/b)
				}
			}
		}
		pending.push(s)
	}
	// Flush any samples that fall after the last arrival.
	if sampling {
		emitSamplesUpTo(cfg.SampleTo)
	}

	for j, p := range preds {
		if tr, ok := p.(interface{ Trims() int }); ok {
			results[j].Trims = tr.Trims()
		}
	}
	return results
}
