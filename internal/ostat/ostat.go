// Package ostat provides an order-statistic multiset: a randomized balanced
// search tree (treap) over float64 values, augmented with subtree sizes so
// that the k-th smallest element can be selected in O(log n).
//
// BMBP needs, at every refit, the k-th order statistic of a sliding history
// that grows by one wait observation at a time and occasionally shrinks when
// a change point is detected. A sorted slice would make each insertion O(n);
// the treap makes insert, delete, and select all O(log n) and keeps full
// evaluation runs over million-job traces fast.
package ostat

import "math/rand"

type node struct {
	value    float64
	priority uint64
	size     int
	count    int // multiplicity of value at this node
	left     *node
	right    *node
}

func (n *node) sz() int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() {
	n.size = n.count + n.left.sz() + n.right.sz()
}

// Multiset is an order-statistic multiset of float64 values. The zero value
// is not ready to use; construct with New (it carries its own deterministic
// PRNG for treap priorities so runs are reproducible).
type Multiset struct {
	root *node
	rng  *rand.Rand
}

// New returns an empty Multiset whose internal balancing randomness is
// seeded with seed (any fixed seed yields identical structure across runs).
//
// The seed is mixed (splitmix64 finalizer) before use: a treap whose
// priorities came from rand.NewSource(seed) directly would correlate
// perfectly with caller values drawn from the same source and seed, and
// value-ordered priorities degenerate the treap into a linked list.
func New(seed int64) *Multiset {
	return &Multiset{rng: rand.New(rand.NewSource(mix(seed)))}
}

// mix is the splitmix64 finalizer, decorrelating the priority stream from
// any other stream seeded with the same value.
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Len returns the number of values in the multiset, counting multiplicity.
func (m *Multiset) Len() int { return m.root.sz() }

// Insert adds value to the multiset.
func (m *Multiset) Insert(value float64) {
	m.root = m.insert(m.root, value)
}

func (m *Multiset) insert(n *node, value float64) *node {
	if n == nil {
		return &node{value: value, priority: m.rng.Uint64(), size: 1, count: 1}
	}
	switch {
	case value == n.value:
		n.count++
		n.size++
		return n
	case value < n.value:
		n.left = m.insert(n.left, value)
		if n.left.priority > n.priority {
			n = rotateRight(n)
		} else {
			n.update()
		}
	default:
		n.right = m.insert(n.right, value)
		if n.right.priority > n.priority {
			n = rotateLeft(n)
		} else {
			n.update()
		}
	}
	return n
}

// Delete removes one instance of value from the multiset and reports
// whether the value was present.
func (m *Multiset) Delete(value float64) bool {
	var deleted bool
	m.root, deleted = m.delete(m.root, value)
	return deleted
}

func (m *Multiset) delete(n *node, value float64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case value < n.value:
		n.left, deleted = m.delete(n.left, value)
	case value > n.value:
		n.right, deleted = m.delete(n.right, value)
	default:
		if n.count > 1 {
			n.count--
			n.size--
			return n, true
		}
		return merge(n.left, n.right), true
	}
	if deleted {
		n.update()
	}
	return n, deleted
}

// Select returns the k-th smallest value (1-based, counting multiplicity)
// and ok=false when k is out of range [1, Len()].
func (m *Multiset) Select(k int) (float64, bool) {
	if k < 1 || k > m.Len() {
		return 0, false
	}
	n := m.root
	for n != nil {
		ls := n.left.sz()
		switch {
		case k <= ls:
			n = n.left
		case k <= ls+n.count:
			return n.value, true
		default:
			k -= ls + n.count
			n = n.right
		}
	}
	return 0, false // unreachable when size bookkeeping is correct
}

// Rank returns the number of values strictly less than value.
func (m *Multiset) Rank(value float64) int {
	rank := 0
	n := m.root
	for n != nil {
		if value <= n.value {
			n = n.left
		} else {
			rank += n.left.sz() + n.count
			n = n.right
		}
	}
	return rank
}

// Min returns the smallest value; ok is false when empty.
func (m *Multiset) Min() (float64, bool) { return m.Select(1) }

// Max returns the largest value; ok is false when empty.
func (m *Multiset) Max() (float64, bool) { return m.Select(m.Len()) }

// Clear empties the multiset, retaining the PRNG state.
func (m *Multiset) Clear() { m.root = nil }

// InOrder calls fn for each value in ascending order (repeated values are
// visited once per multiplicity); fn returning false stops the walk early.
func (m *Multiset) InOrder(fn func(v float64) bool) {
	inOrder(m.root, fn)
}

func inOrder(n *node, fn func(v float64) bool) bool {
	if n == nil {
		return true
	}
	if !inOrder(n.left, fn) {
		return false
	}
	for i := 0; i < n.count; i++ {
		if !fn(n.value) {
			return false
		}
	}
	return inOrder(n.right, fn)
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

// merge joins two treaps where every value in a is <= every value in b.
func merge(a, b *node) *node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.priority > b.priority:
		a.right = merge(a.right, b)
		a.update()
		return a
	default:
		b.left = merge(a, b.left)
		b.update()
		return b
	}
}
