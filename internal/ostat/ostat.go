// Package ostat provides an order-statistic multiset of float64 values:
// insert, delete, select-k-th-smallest, and rank, all in O(log n).
//
// BMBP needs, at every refit, the k-th order statistic of a sliding history
// that grows by one wait observation at a time and occasionally shrinks when
// a change point is detected. A sorted slice would make each insertion O(n);
// this structure makes insert, delete, and select all O(log n) and keeps
// full evaluation runs over million-job traces fast.
//
// The implementation is a counted B+-tree rather than a binary tree: leaves
// hold up to 64 distinct (value, multiplicity) entries, inner nodes hold up
// to 32 children with per-child subtree counts, and all nodes live in two
// flat arenas referenced by int32 index. A million-value history is four
// levels deep instead of the ~28 of a balanced binary tree, each level is a
// handful of contiguous cache lines, the arenas contain no pointers for the
// garbage collector to scan, and freed nodes are recycled through free
// lists — so a bounded-history predictor that inserts and deletes in
// lockstep allocates nothing in steady state.
//
// Inner nodes route by a per-child separator that is an upper bound on the
// child's values (exact at split time, possibly stale after deletions, but
// stale-high separators never misroute: a child's values stay <= its
// separator, and its right sibling's values stay greater). Equal values are
// collapsed into one leaf entry, so duplicate runs can never straddle a
// node boundary and routing stays unambiguous.
package ostat

const (
	leafCap  = 64 // distinct values per leaf
	innerCap = 32 // children per inner node
)

type leafNode struct {
	n      int32
	vals   [leafCap]float64
	counts [leafCap]int32
}

type innerNode struct {
	n    int32
	kids [innerCap]int32
	size [innerCap]int32   // total multiplicity in each child's subtree
	sep  [innerCap]float64 // upper bound on each child's values
}

// Multiset is an order-statistic multiset of float64 values. The zero value
// is not ready to use; construct with New.
type Multiset struct {
	leaves []leafNode
	inners []innerNode
	root   int32 // leaf index when height == 1, else inner index
	height int32 // levels including the leaf level
	total  int   // values, counting multiplicity

	freeLeaf  []int32
	freeInner []int32

	pathNode []int32 // reusable descent stacks
	pathPos  []int32
}

// New returns an empty Multiset. The structure is fully deterministic —
// identical operation sequences yield identical trees — so runs are
// reproducible; the seed parameter is retained for compatibility with the
// earlier randomized-treap implementation and is unused.
func New(seed int64) *Multiset {
	m := &Multiset{leaves: make([]leafNode, 1, 8), height: 1}
	return m
}

// Len returns the number of values in the multiset, counting multiplicity.
func (m *Multiset) Len() int { return m.total }

// Clear empties the multiset, retaining arena capacity.
func (m *Multiset) Clear() {
	m.leaves = m.leaves[:1]
	m.leaves[0] = leafNode{}
	m.inners = m.inners[:0]
	m.freeLeaf = m.freeLeaf[:0]
	m.freeInner = m.freeInner[:0]
	m.root, m.height, m.total = 0, 1, 0
}

func (m *Multiset) allocLeaf() int32 {
	if n := len(m.freeLeaf); n > 0 {
		i := m.freeLeaf[n-1]
		m.freeLeaf = m.freeLeaf[:n-1]
		m.leaves[i] = leafNode{}
		return i
	}
	m.leaves = append(m.leaves, leafNode{})
	return int32(len(m.leaves) - 1)
}

func (m *Multiset) allocInner() int32 {
	if n := len(m.freeInner); n > 0 {
		i := m.freeInner[n-1]
		m.freeInner = m.freeInner[:n-1]
		m.inners[i] = innerNode{}
		return i
	}
	m.inners = append(m.inners, innerNode{})
	return int32(len(m.inners) - 1)
}

// route returns the index of the child an operation on value v descends
// into: the first child whose separator admits v, clamped to the last
// child when v exceeds every separator.
func (in *innerNode) route(v float64) int32 {
	lo, hi := int32(0), in.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if in.sep[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafSearch returns the first entry index with vals[j] >= v.
func (lf *leafNode) search(v float64) int32 {
	lo, hi := int32(0), lf.n
	for lo < hi {
		mid := (lo + hi) / 2
		if lf.vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (lf *leafNode) sum() int32 {
	var s int32
	for j := int32(0); j < lf.n; j++ {
		s += lf.counts[j]
	}
	return s
}

func (in *innerNode) sum() int32 {
	var s int32
	for i := int32(0); i < in.n; i++ {
		s += in.size[i]
	}
	return s
}

// Insert adds value to the multiset. The descent is iterative: per-child
// subtree counts are bumped on the way down, duplicate values collapse into
// an existing leaf entry, and the rare full-leaf case splits upward along a
// reusable path stack.
func (m *Multiset) Insert(value float64) {
	m.total++
	pn, pp := m.pathNode[:0], m.pathPos[:0]
	node := m.root
	for lvl := m.height; lvl > 1; lvl-- {
		in := &m.inners[node]
		i := in.route(value)
		if value > in.sep[i] {
			in.sep[i] = value // only possible at the last child
		}
		in.size[i]++
		pn, pp = append(pn, node), append(pp, i)
		node = in.kids[i]
	}
	lf := &m.leaves[node]
	j := lf.search(value)
	if j < lf.n && lf.vals[j] == value {
		lf.counts[j]++
		m.pathNode, m.pathPos = pn, pp
		return
	}
	if lf.n < leafCap {
		copy(lf.vals[j+1:lf.n+1], lf.vals[j:lf.n])
		copy(lf.counts[j+1:lf.n+1], lf.counts[j:lf.n])
		lf.vals[j], lf.counts[j] = value, 1
		lf.n++
		m.pathNode, m.pathPos = pn, pp
		return
	}

	// Split the full leaf and push the new right sibling up the path.
	rightIdx := m.allocLeaf()
	lf = &m.leaves[node]
	right := &m.leaves[rightIdx]
	const half = leafCap / 2
	copy(right.vals[:leafCap-half], lf.vals[half:])
	copy(right.counts[:leafCap-half], lf.counts[half:])
	lf.n, right.n = half, leafCap-half
	if j <= half {
		copy(lf.vals[j+1:lf.n+1], lf.vals[j:lf.n])
		copy(lf.counts[j+1:lf.n+1], lf.counts[j:lf.n])
		lf.vals[j], lf.counts[j] = value, 1
		lf.n++
	} else {
		j -= half
		copy(right.vals[j+1:right.n+1], right.vals[j:right.n])
		copy(right.counts[j+1:right.n+1], right.counts[j:right.n])
		right.vals[j], right.counts[j] = value, 1
		right.n++
	}
	m.splitUp(pn, pp, node, rightIdx, lf.vals[lf.n-1], lf.sum(), right.vals[right.n-1], right.sum())
	m.pathNode, m.pathPos = pn, pp
}

// splitUp records that the child at the bottom of path (pn, pp) split into
// left (the original index) and carry (its new right sibling), then inserts
// carry into the parent, splitting upward as needed. leftSep/leftSize and
// carrySep/carrySize describe the two halves.
func (m *Multiset) splitUp(pn, pp []int32, left, carry int32, leftSep float64, leftSize int32, carrySep float64, carrySize int32) {
	for d := len(pn) - 1; ; d-- {
		if d < 0 {
			rootIdx := m.allocInner()
			r := &m.inners[rootIdx]
			r.n = 2
			r.kids[0], r.kids[1] = left, carry
			r.size[0], r.size[1] = leftSize, carrySize
			r.sep[0], r.sep[1] = leftSep, carrySep
			m.root = rootIdx
			m.height++
			return
		}
		p, pos := pn[d], pp[d]
		in := &m.inners[p]
		in.sep[pos], in.size[pos] = leftSep, leftSize
		if in.n < innerCap {
			copy(in.kids[pos+2:in.n+1], in.kids[pos+1:in.n])
			copy(in.size[pos+2:in.n+1], in.size[pos+1:in.n])
			copy(in.sep[pos+2:in.n+1], in.sep[pos+1:in.n])
			in.kids[pos+1], in.size[pos+1], in.sep[pos+1] = carry, carrySize, carrySep
			in.n++
			return
		}
		// Parent full: split it and keep carrying.
		qIdx := m.allocInner()
		in = &m.inners[p]
		q := &m.inners[qIdx]
		const ihalf = innerCap / 2
		copy(q.kids[:innerCap-ihalf], in.kids[ihalf:])
		copy(q.size[:innerCap-ihalf], in.size[ihalf:])
		copy(q.sep[:innerCap-ihalf], in.sep[ihalf:])
		in.n, q.n = ihalf, innerCap-ihalf
		dst := in
		at := pos + 1
		if at > ihalf {
			dst, at = q, at-ihalf
		}
		copy(dst.kids[at+1:dst.n+1], dst.kids[at:dst.n])
		copy(dst.size[at+1:dst.n+1], dst.size[at:dst.n])
		copy(dst.sep[at+1:dst.n+1], dst.sep[at:dst.n])
		dst.kids[at], dst.size[at], dst.sep[at] = carry, carrySize, carrySep
		dst.n++
		left, carry = p, qIdx
		leftSep, carrySep = in.sep[in.n-1], q.sep[q.n-1]
		leftSize, carrySize = in.sum(), q.sum()
	}
}

// Delete removes one instance of value from the multiset and reports
// whether the value was present. Emptied nodes are unlinked and recycled;
// partially drained nodes are left as-is (relaxed deletion), which keeps
// deletes cheap without hurting the logarithmic bounds in practice.
func (m *Multiset) Delete(value float64) bool {
	pn, pp := m.pathNode[:0], m.pathPos[:0]
	node := m.root
	for lvl := m.height; lvl > 1; lvl-- {
		in := &m.inners[node]
		i := in.route(value)
		if value > in.sep[i] {
			m.pathNode, m.pathPos = pn, pp
			return false
		}
		pn, pp = append(pn, node), append(pp, i)
		node = in.kids[i]
	}
	lf := &m.leaves[node]
	j := lf.search(value)
	m.pathNode, m.pathPos = pn, pp
	if j >= lf.n || lf.vals[j] != value {
		return false
	}
	m.total--
	for d := range pn {
		m.inners[pn[d]].size[pp[d]]--
	}
	if lf.counts[j] > 1 {
		lf.counts[j]--
		return true
	}
	copy(lf.vals[j:lf.n-1], lf.vals[j+1:lf.n])
	copy(lf.counts[j:lf.n-1], lf.counts[j+1:lf.n])
	lf.n--
	if lf.n > 0 {
		return true
	}

	// Unlink the emptied leaf, cascading through emptied ancestors.
	m.freeLeaf = append(m.freeLeaf, node)
	d := len(pn) - 1
	for d >= 0 {
		in := &m.inners[pn[d]]
		pos := pp[d]
		copy(in.kids[pos:in.n-1], in.kids[pos+1:in.n])
		copy(in.size[pos:in.n-1], in.size[pos+1:in.n])
		copy(in.sep[pos:in.n-1], in.sep[pos+1:in.n])
		in.n--
		if in.n > 0 {
			break
		}
		m.freeInner = append(m.freeInner, pn[d])
		d--
	}
	if d < 0 {
		// Every node emptied: reset to a single empty leaf root.
		m.leaves = m.leaves[:1]
		m.leaves[0] = leafNode{}
		m.inners = m.inners[:0]
		m.freeLeaf = m.freeLeaf[:0]
		m.freeInner = m.freeInner[:0]
		m.root, m.height = 0, 1
		return true
	}
	// Collapse single-child root levels.
	for m.height > 1 {
		in := &m.inners[m.root]
		if in.n > 1 {
			break
		}
		m.freeInner = append(m.freeInner, m.root)
		m.root = in.kids[0]
		m.height--
	}
	return true
}

// Select returns the k-th smallest value (1-based, counting multiplicity)
// and ok=false when k is out of range [1, Len()].
func (m *Multiset) Select(k int) (float64, bool) {
	if k < 1 || k > m.total {
		return 0, false
	}
	kk := int32(k)
	node := m.root
	for lvl := m.height; lvl > 1; lvl-- {
		in := &m.inners[node]
		i := int32(0)
		for kk > in.size[i] {
			kk -= in.size[i]
			i++
		}
		node = in.kids[i]
	}
	lf := &m.leaves[node]
	j := int32(0)
	for kk > lf.counts[j] {
		kk -= lf.counts[j]
		j++
	}
	return lf.vals[j], true
}

// Rank returns the number of values strictly less than value.
func (m *Multiset) Rank(value float64) int {
	var rank int32
	node := m.root
	for lvl := m.height; lvl > 1; lvl-- {
		in := &m.inners[node]
		i := in.route(value)
		for c := int32(0); c < i; c++ {
			rank += in.size[c]
		}
		if value > in.sep[i] {
			// Greater than this whole subtree: everything under it counts.
			return int(rank + in.size[i])
		}
		node = in.kids[i]
	}
	lf := &m.leaves[node]
	j := lf.search(value)
	for c := int32(0); c < j; c++ {
		rank += lf.counts[c]
	}
	return int(rank)
}

// Min returns the smallest value; ok is false when empty.
func (m *Multiset) Min() (float64, bool) { return m.Select(1) }

// Max returns the largest value; ok is false when empty.
func (m *Multiset) Max() (float64, bool) { return m.Select(m.Len()) }

// BuildFromSorted replaces the multiset's contents with the given
// ascending-sorted values in O(n), versus O(n log n) for n repeated
// Inserts. It is what BMBP's change-point trim and serialized-state restore
// use. Leaves are packed to three quarters full so a freshly built tree has
// headroom before its first splits.
func (m *Multiset) BuildFromSorted(sorted []float64) {
	m.Clear()
	if len(sorted) == 0 {
		return
	}
	m.total = len(sorted)
	const fill = leafCap * 3 / 4

	// Pack distinct values into leaves left to right.
	kids := m.pathNode[:0] // reuse as the per-level child list
	var sums []int32
	var seps []float64
	cur := int32(0) // Clear left leaf 0 as the empty root
	lf := &m.leaves[cur]
	var prev float64
	for i, v := range sorted {
		if i > 0 && v < prev {
			panic("ostat: BuildFromSorted input not ascending")
		}
		if i > 0 && v == prev {
			lf.counts[lf.n-1]++
			continue
		}
		prev = v
		if lf.n == fill {
			kids = append(kids, cur)
			sums = append(sums, lf.sum())
			seps = append(seps, lf.vals[lf.n-1])
			cur = m.allocLeaf()
			lf = &m.leaves[cur]
		}
		lf.vals[lf.n], lf.counts[lf.n] = v, 1
		lf.n++
	}
	kids = append(kids, cur)
	sums = append(sums, lf.sum())
	seps = append(seps, lf.vals[lf.n-1])

	// Build inner levels bottom-up until one root remains.
	const ifill = innerCap * 3 / 4
	for len(kids) > 1 {
		var upKids []int32
		var upSums []int32
		var upSeps []float64
		for at := 0; at < len(kids); {
			w := len(kids) - at
			if w > ifill {
				w = ifill
			}
			idx := m.allocInner()
			in := &m.inners[idx]
			in.n = int32(w)
			var total int32
			for c := 0; c < w; c++ {
				in.kids[c] = kids[at+c]
				in.size[c] = sums[at+c]
				in.sep[c] = seps[at+c]
				total += sums[at+c]
			}
			upKids = append(upKids, idx)
			upSums = append(upSums, total)
			upSeps = append(upSeps, in.sep[in.n-1])
			at += w
		}
		kids, sums, seps = upKids, upSums, upSeps
		m.height++
	}
	m.root = kids[0]
	m.pathNode = m.pathNode[:0]
}

// InOrder calls fn for each value in ascending order (repeated values are
// visited once per multiplicity); fn returning false stops the walk early.
func (m *Multiset) InOrder(fn func(v float64) bool) {
	m.inOrder(m.root, m.height, fn)
}

func (m *Multiset) inOrder(node, lvl int32, fn func(v float64) bool) bool {
	if lvl > 1 {
		in := &m.inners[node]
		for i := int32(0); i < in.n; i++ {
			if !m.inOrder(in.kids[i], lvl-1, fn) {
				return false
			}
		}
		return true
	}
	lf := &m.leaves[node]
	for j := int32(0); j < lf.n; j++ {
		for c := int32(0); c < lf.counts[j]; c++ {
			if !fn(lf.vals[j]) {
				return false
			}
		}
	}
	return true
}
