package ostat

import (
	"math/rand"
	"testing"
	"time"
)

// Regression test: a multiset seeded with the SAME seed as the stream
// producing its values must not degenerate. (Before the seed-mixing fix,
// priorities equalled values and the treap collapsed into a linked list,
// turning inserts O(n).)
func TestNoDegenerationWithCorrelatedSeeds(t *testing.T) {
	for _, seed := range []int64{0, 1, 42} {
		m := New(seed)
		rng := rand.New(rand.NewSource(seed))
		start := time.Now()
		const n = 50000
		for i := 0; i < n; i++ {
			m.Insert(rng.Float64())
		}
		elapsed := time.Since(start)
		if m.Len() != n {
			t.Fatalf("len = %d", m.Len())
		}
		// A balanced treap inserts 50k values in well under a second even
		// on one slow core; a degenerated one takes minutes.
		if elapsed > 5*time.Second {
			t.Fatalf("seed %d: %d inserts took %v — treap degenerated", seed, n, elapsed)
		}
		// Structural check: both spines should be O(log n), nothing like n.
		for _, dir := range []bool{true, false} {
			depth := 0
			node := m.root
			for node != nil {
				depth++
				if dir {
					node = node.left
				} else {
					node = node.right
				}
			}
			if depth > 200 {
				t.Fatalf("seed %d: spine depth %d — degenerated", seed, depth)
			}
		}
	}
}
