package ostat

import (
	"math/rand"
	"testing"
	"time"
)

// Regression test: the structure must not degenerate for any seed or input
// pattern. (The original randomized-treap implementation collapsed into a
// linked list when its priority stream correlated with the inserted values;
// the counted B+-tree is deterministic, but this guards its balance
// invariants — uniform leaf depth, bounded height — under both random and
// adversarially sorted input.)
func TestNoDegeneration(t *testing.T) {
	for _, seed := range []int64{0, 1, 42} {
		for _, sortedInput := range []bool{false, true} {
			m := New(seed)
			rng := rand.New(rand.NewSource(seed))
			start := time.Now()
			const n = 50000
			for i := 0; i < n; i++ {
				v := rng.Float64()
				if sortedInput {
					v = float64(i) // ascending worst case for naive BSTs
				}
				m.Insert(v)
			}
			elapsed := time.Since(start)
			if m.Len() != n {
				t.Fatalf("len = %d", m.Len())
			}
			// 50k inserts complete in well under a second even on one slow
			// core; a degenerated structure takes minutes.
			if elapsed > 5*time.Second {
				t.Fatalf("seed %d sorted=%v: %d inserts took %v — degenerated", seed, sortedInput, n, elapsed)
			}
			// Structural check: height stays logarithmic. 50k distinct
			// values at half-full fanout need at most 4 levels; 8 leaves
			// enormous slack.
			if m.height > 8 {
				t.Fatalf("seed %d sorted=%v: height %d — degenerated", seed, sortedInput, m.height)
			}
		}
	}
}

// TestStructuralInvariants checks the B+-tree bookkeeping wholesale after a
// mixed workload: sizes sum correctly at every level, separators bound
// their subtrees, leaf entries stay sorted and positive, and all leaves sit
// at the same depth.
func TestStructuralInvariants(t *testing.T) {
	m := New(11)
	rng := rand.New(rand.NewSource(11))
	live := []float64{}
	for op := 0; op < 30000; op++ {
		if len(live) == 0 || rng.Float64() < 0.55 {
			v := float64(rng.Intn(500))
			m.Insert(v)
			live = append(live, v)
		} else {
			i := rng.Intn(len(live))
			v := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !m.Delete(v) {
				t.Fatalf("op %d: Delete(%g) failed", op, v)
			}
		}
	}
	var walk func(node, lvl int32) (count int32, depth int32)
	walk = func(node, lvl int32) (int32, int32) {
		if lvl > 1 {
			in := &m.inners[node]
			if in.n < 1 || in.n > innerCap {
				t.Fatalf("inner width %d", in.n)
			}
			var total int32
			var depth int32 = -1
			for i := int32(0); i < in.n; i++ {
				c, d := walk(in.kids[i], lvl-1)
				if c != in.size[i] {
					t.Fatalf("size[%d] = %d, subtree has %d", i, in.size[i], c)
				}
				if i > 0 && in.sep[i-1] >= in.sep[i] {
					t.Fatalf("separators not increasing: %g >= %g", in.sep[i-1], in.sep[i])
				}
				if depth != -1 && d != depth {
					t.Fatalf("leaves at mixed depths %d vs %d", d, depth)
				}
				depth = d
				total += c
			}
			return total, depth + 1
		}
		lf := &m.leaves[node]
		if lf.n < 1 || lf.n > leafCap {
			t.Fatalf("leaf width %d", lf.n)
		}
		var total int32
		for j := int32(0); j < lf.n; j++ {
			if j > 0 && lf.vals[j-1] >= lf.vals[j] {
				t.Fatalf("leaf values not increasing")
			}
			if lf.counts[j] < 1 {
				t.Fatalf("nonpositive count %d", lf.counts[j])
			}
			total += lf.counts[j]
		}
		return total, 1
	}
	if m.Len() > 0 {
		count, _ := walk(m.root, m.height)
		if int(count) != m.Len() {
			t.Fatalf("walked %d values, Len() = %d", count, m.Len())
		}
		if int(count) != len(live) {
			t.Fatalf("walked %d values, expected %d live", count, len(live))
		}
	}
	// Separator bounds: every value reachable is <= the root's last sep.
	max, _ := m.Max()
	probe := max + 1
	if got := m.Rank(probe); got != m.Len() {
		t.Fatalf("Rank above max = %d, want %d", got, m.Len())
	}
}
