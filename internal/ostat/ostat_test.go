package ostat

import (
	"math/rand"
	"sort"
	"testing"
)

// reference is a trivially correct order-statistic multiset.
type reference struct {
	values []float64
}

func (r *reference) insert(v float64) {
	i := sort.SearchFloat64s(r.values, v)
	r.values = append(r.values, 0)
	copy(r.values[i+1:], r.values[i:])
	r.values[i] = v
}

func (r *reference) delete(v float64) bool {
	i := sort.SearchFloat64s(r.values, v)
	if i < len(r.values) && r.values[i] == v {
		r.values = append(r.values[:i], r.values[i+1:]...)
		return true
	}
	return false
}

func TestMultisetBasics(t *testing.T) {
	m := New(1)
	if m.Len() != 0 {
		t.Fatal("new multiset not empty")
	}
	if _, ok := m.Select(1); ok {
		t.Fatal("Select on empty should fail")
	}
	for _, v := range []float64{5, 3, 8, 3, 1} {
		m.Insert(v)
	}
	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	want := []float64{1, 3, 3, 5, 8}
	for k, w := range want {
		got, ok := m.Select(k + 1)
		if !ok || got != w {
			t.Errorf("Select(%d) = %g ok=%v, want %g", k+1, got, ok, w)
		}
	}
	if _, ok := m.Select(0); ok {
		t.Error("Select(0) should fail")
	}
	if _, ok := m.Select(6); ok {
		t.Error("Select(6) should fail")
	}
	if min, _ := m.Min(); min != 1 {
		t.Error("Min")
	}
	if max, _ := m.Max(); max != 8 {
		t.Error("Max")
	}
	if got := m.Rank(3); got != 1 {
		t.Errorf("Rank(3) = %d, want 1 (strictly less)", got)
	}
	if got := m.Rank(4); got != 3 {
		t.Errorf("Rank(4) = %d, want 3", got)
	}
}

func TestMultisetDelete(t *testing.T) {
	m := New(2)
	for _, v := range []float64{2, 2, 7} {
		m.Insert(v)
	}
	if !m.Delete(2) {
		t.Fatal("Delete(2) failed")
	}
	if m.Len() != 2 {
		t.Fatalf("Len after delete = %d", m.Len())
	}
	if v, _ := m.Select(1); v != 2 {
		t.Errorf("duplicate not retained: %g", v)
	}
	if m.Delete(99) {
		t.Error("Delete of absent value should report false")
	}
	if !m.Delete(2) || !m.Delete(7) {
		t.Fatal("remaining deletes failed")
	}
	if m.Len() != 0 {
		t.Fatal("not empty after deleting everything")
	}
}

func TestMultisetInOrder(t *testing.T) {
	m := New(3)
	vals := []float64{4, 1, 4, 9}
	for _, v := range vals {
		m.Insert(v)
	}
	var walked []float64
	m.InOrder(func(v float64) bool {
		walked = append(walked, v)
		return true
	})
	want := []float64{1, 4, 4, 9}
	if len(walked) != len(want) {
		t.Fatalf("walked %v", walked)
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("walked %v, want %v", walked, want)
		}
	}
	// Early stop.
	count := 0
	m.InOrder(func(v float64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestMultisetAgainstReferenceRandomOps(t *testing.T) {
	m := New(4)
	ref := &reference{}
	rng := rand.New(rand.NewSource(99))
	live := []float64{}
	for op := 0; op < 20000; op++ {
		switch {
		case len(live) == 0 || rng.Float64() < 0.6:
			// Coarse values force duplicate handling.
			v := float64(rng.Intn(200))
			m.Insert(v)
			ref.insert(v)
			live = append(live, v)
		default:
			i := rng.Intn(len(live))
			v := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			g1 := m.Delete(v)
			g2 := ref.delete(v)
			if g1 != g2 {
				t.Fatalf("op %d: Delete(%g) = %v, ref %v", op, v, g1, g2)
			}
		}
		if m.Len() != len(ref.values) {
			t.Fatalf("op %d: Len %d vs %d", op, m.Len(), len(ref.values))
		}
		if m.Len() > 0 {
			k := rng.Intn(m.Len()) + 1
			got, ok := m.Select(k)
			if !ok || got != ref.values[k-1] {
				t.Fatalf("op %d: Select(%d) = %g ok=%v, want %g", op, k, got, ok, ref.values[k-1])
			}
			probe := float64(rng.Intn(220) - 10)
			if got, want := m.Rank(probe), sort.SearchFloat64s(ref.values, probe); got != want {
				t.Fatalf("op %d: Rank(%g) = %d, want %d", op, probe, got, want)
			}
		}
	}
}

func TestMultisetClear(t *testing.T) {
	m := New(5)
	for i := 0; i < 100; i++ {
		m.Insert(float64(i))
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear did not empty the multiset")
	}
	m.Insert(1)
	if v, ok := m.Select(1); !ok || v != 1 {
		t.Fatal("multiset unusable after Clear")
	}
}

func TestMultisetDeterministicStructure(t *testing.T) {
	// Same seed and operations yield identical selections (reproducible
	// evaluation runs depend on this).
	build := func() []float64 {
		m := New(42)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 1000; i++ {
			m.Insert(rng.Float64())
		}
		out := make([]float64, 0, 10)
		for k := 100; k <= 1000; k += 100 {
			v, _ := m.Select(k)
			out = append(out, v)
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("structure not deterministic")
		}
	}
}

func BenchmarkMultisetInsert(b *testing.B) {
	m := New(1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Insert(rng.Float64())
	}
}

func BenchmarkMultisetSelect(b *testing.B) {
	m := New(1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		m.Insert(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Select(95000)
	}
}
