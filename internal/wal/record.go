package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Record is one durable observation: a stream key, the observed wait, and
// the wall-clock time it was recorded. Seq is the log sequence number the
// WAL assigned at append time; it is strictly increasing across the whole
// log (gaps are allowed — a failed append consumes its sequence number).
type Record struct {
	Seq       uint64
	Key       string
	Wait      float64
	UnixNanos int64
}

// Frame layout, little-endian:
//
//	u32 payload length
//	u32 CRC32C (Castagnoli) of the payload
//	payload:
//	    u64 seq
//	    u64 unix nanoseconds (two's complement)
//	    u64 wait (IEEE 754 bits)
//	    u16 key length
//	    key bytes
//
// The checksum covers the payload only; the length field is validated by
// range (a frame whose length falls outside [recordFixedLen,
// recordFixedLen+MaxKeyLen] is corrupt by construction), so a torn or
// bit-flipped frame is detected either by the range check, by the key
// length disagreeing with the payload length, or by the CRC.
const (
	frameHeaderLen = 8
	recordFixedLen = 8 + 8 + 8 + 2

	// MaxKeyLen is the longest stream key a record can carry.
	MaxKeyLen = 1 << 12
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt marks a frame that is present but fails validation (bad
// length, inconsistent key length, or CRC mismatch). A frame cut short by
// a torn write surfaces as io.ErrUnexpectedEOF instead; replay treats both
// as the end of the recoverable prefix.
var errCorrupt = errors.New("wal: corrupt record frame")

// appendRecord appends r's framed encoding to buf and returns the
// extended slice. The caller validates len(r.Key) <= MaxKeyLen.
func appendRecord(buf []byte, r Record) []byte {
	payloadLen := recordFixedLen + len(r.Key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.UnixNanos))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Wait))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Key)))
	buf = append(buf, r.Key...)
	crc := crc32.Checksum(buf[payloadAt:], castagnoli)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc)
	return buf
}

// readRecord decodes the next frame from br. It returns io.EOF at a clean
// frame boundary, io.ErrUnexpectedEOF for a frame cut short by a torn
// write, and errCorrupt for a frame that is structurally invalid or fails
// its checksum. consumed reports how many bytes of br the call used, so
// replay can account for a bad frame's own bytes when reporting what it
// dropped. scratch is reused across calls to avoid per-record allocation.
func readRecord(br *bufio.Reader, scratch []byte) (r Record, _ []byte, consumed int64, err error) {
	var hdr [frameHeaderLen]byte
	n, err := io.ReadFull(br, hdr[:])
	consumed = int64(n)
	if err != nil {
		if err == io.EOF { // clean boundary: no bytes of a next frame exist
			return r, scratch, consumed, io.EOF
		}
		return r, scratch, consumed, io.ErrUnexpectedEOF
	}
	payloadLen := int(binary.LittleEndian.Uint32(hdr[:4]))
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if payloadLen < recordFixedLen || payloadLen > recordFixedLen+MaxKeyLen {
		return r, scratch, consumed, fmt.Errorf("%w: payload length %d", errCorrupt, payloadLen)
	}
	if cap(scratch) < payloadLen {
		scratch = make([]byte, payloadLen)
	}
	payload := scratch[:payloadLen]
	n, err = io.ReadFull(br, payload)
	consumed += int64(n)
	if err != nil {
		return r, scratch, consumed, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return r, scratch, consumed, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	keyLen := int(binary.LittleEndian.Uint16(payload[24:26]))
	if recordFixedLen+keyLen != payloadLen {
		return r, scratch, consumed, fmt.Errorf("%w: key length %d disagrees with payload length %d", errCorrupt, keyLen, payloadLen)
	}
	r.Seq = binary.LittleEndian.Uint64(payload[0:8])
	r.UnixNanos = int64(binary.LittleEndian.Uint64(payload[8:16]))
	r.Wait = math.Float64frombits(binary.LittleEndian.Uint64(payload[16:24]))
	r.Key = string(payload[26 : 26+keyLen])
	return r, scratch, consumed, nil
}
