package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"time"
)

// This file is the shipping side of the WAL: everything replication needs
// to read committed records back out of a live log. The writer half
// (wal.go) appends and syncs; a TailReader follows behind, returning only
// records at or below the durability watermark, so a leader never ships a
// record it has not acked durable. Frames on the wire reuse the exact
// on-disk encoding (EncodeFrames/DecodeFrames), CRC and all.

// SyncedSeq returns the durability watermark: every sequence number at or
// below it has been flushed and fsynced by a successful sync. It is safe
// to call concurrently with appends.
func (w *WAL) SyncedSeq() uint64 { return w.syncedSeq.Load() }

// AdvanceSeq moves the next sequence number past seq, if it is not already.
// A follower promoted to leader calls this after attaching a fresh WAL:
// its in-memory streams carry sequence anchors from the old leader's log,
// and new appends must land above them or recovery would dedup them away.
func (w *WAL) AdvanceSeq(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq+1 > w.nextSeq {
		w.nextSeq = seq + 1
	}
}

// NotifySync registers ch to receive a non-blocking signal whenever the
// durability watermark advances. A shipper blocked waiting for new
// committed records selects on it instead of polling; because the send is
// non-blocking, a slow receiver coalesces wakeups rather than stalling a
// sync.
func (w *WAL) NotifySync(ch chan<- struct{}) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.notify = append(w.notify, ch)
}

func (w *WAL) notifySyncLocked() {
	for _, ch := range w.notify {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// SyncProbeInterval reports how long a caller should expect to wait for
// the log to retry durability after a failure: the background sync (and
// recovery probe) period under SyncInterval, 0 under the other modes,
// where the next append itself is the retry.
func (w *WAL) SyncProbeInterval() time.Duration {
	if w.opt.Mode == SyncInterval {
		return w.opt.Interval
	}
	return 0
}

// EncodeFrames appends the CRC-framed on-disk encoding of recs to buf and
// returns the extended slice. It is the wire format for shipped batches:
// a follower replays exactly the bytes the leader's log holds. Keys must
// respect MaxKeyLen (records read back out of a log always do).
func EncodeFrames(buf []byte, recs []Record) []byte {
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return buf
}

// DecodeFrames decodes a buffer holding complete frames back into records.
// Unlike replay, which tolerates torn tails, this is strict: a shipped
// batch travels over a checksummed transport, so any invalid or truncated
// frame is an error, never silently dropped.
func DecodeFrames(b []byte) ([]Record, error) {
	var recs []Record
	for len(b) > 0 {
		r, n, err := decodeFrame(b, nil)
		if err != nil {
			return nil, fmt.Errorf("wal: decode frames: %w", err)
		}
		recs = append(recs, r)
		b = b[n:]
	}
	return recs, nil
}

// maxInternedKeys bounds a keyIntern table. Stream-key working sets are
// tiny next to record counts; if a pathological producer churns through
// more distinct keys than this, the table is dropped and rebuilt rather
// than growing without bound.
const maxInternedKeys = 4096

// keyIntern deduplicates record key strings across decoded frames. The
// lookup uses Go's map[string]T special case for string([]byte) keys, so
// a hit allocates nothing: steady-state decoding of a stream's records
// reuses one shared string per distinct key instead of allocating per
// record.
type keyIntern struct {
	m map[string]string
}

func (ki *keyIntern) get(b []byte) string {
	if s, ok := ki.m[string(b)]; ok {
		return s
	}
	if ki.m == nil || len(ki.m) >= maxInternedKeys {
		ki.m = make(map[string]string, 64)
	}
	s := string(b)
	ki.m[s] = s
	return s
}

// FrameDecoder decodes shipped batches with cross-call reuse: the record
// slice is recycled and key strings are interned, so the follower apply
// path's decode cost is flat per record regardless of batch count. The
// returned slice (and its backing array) is only valid until the next
// Decode call; callers may copy Record values out but must not retain the
// slice. Not safe for concurrent use — one decoder per connection.
type FrameDecoder struct {
	ki   keyIntern
	recs []Record
}

// Decode is the reusing twin of DecodeFrames, with the same strictness.
func (d *FrameDecoder) Decode(b []byte) ([]Record, error) {
	recs := d.recs[:0]
	for len(b) > 0 {
		r, n, err := decodeFrame(b, &d.ki)
		if err != nil {
			return nil, fmt.Errorf("wal: decode frames: %w", err)
		}
		recs = append(recs, r)
		b = b[n:]
	}
	d.recs = recs
	return recs, nil
}

// errShortFrame reports a buffer holding only a prefix of a frame: read
// more bytes and retry. It is distinct from corruption — but a tail
// reader treats both the same way Replay does (end of this segment's
// recoverable prefix).
var errShortFrame = fmt.Errorf("wal: short frame")

// decodeFrame decodes one frame from the front of b, returning the record
// and the full frame size. It is the slice-based twin of readRecord. A
// non-nil ki interns the key string instead of allocating per record.
func decodeFrame(b []byte, ki *keyIntern) (Record, int, error) {
	var r Record
	if len(b) < frameHeaderLen {
		return r, 0, errShortFrame
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[:4]))
	crc := binary.LittleEndian.Uint32(b[4:8])
	if payloadLen < recordFixedLen || payloadLen > recordFixedLen+MaxKeyLen {
		return r, 0, fmt.Errorf("%w: payload length %d", errCorrupt, payloadLen)
	}
	n := frameHeaderLen + payloadLen
	if len(b) < n {
		return r, 0, errShortFrame
	}
	payload := b[frameHeaderLen:n]
	if crc32.Checksum(payload, castagnoli) != crc {
		return r, 0, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	keyLen := int(binary.LittleEndian.Uint16(payload[24:26]))
	if recordFixedLen+keyLen != payloadLen {
		return r, 0, fmt.Errorf("%w: key length %d disagrees with payload length %d", errCorrupt, keyLen, payloadLen)
	}
	r.Seq = binary.LittleEndian.Uint64(payload[0:8])
	r.UnixNanos = int64(binary.LittleEndian.Uint64(payload[8:16]))
	r.Wait = math.Float64frombits(binary.LittleEndian.Uint64(payload[16:24]))
	if ki != nil {
		r.Key = ki.get(payload[26 : 26+keyLen])
	} else {
		r.Key = string(payload[26 : 26+keyLen])
	}
	return r, n, nil
}

// TailReader reads committed records back out of a live WAL directory, in
// sequence order, resuming where it left off across calls. It holds no
// WAL locks: it works from the segment files through the same FS the
// writer uses, so a leader's shipper and a fault-injected trial read the
// log identically. Not safe for concurrent use; one reader per follower.
//
// Torn or invalid tails are handled exactly as Replay handles them: a
// rotated-away segment whose tail does not decode contributes its valid
// prefix and the rest is skipped (those records were never acked — the
// watermark cannot cover a frame that failed to sync). On the newest
// segment the same condition just means the writer has not flushed the
// rest yet, so the reader stops and picks up on the next call.
type TailReader struct {
	fs       FS
	dir      string
	afterSeq uint64        // every record at or below this was already returned
	seg      uint64        // segment the cursor is on; 0 = not positioned yet
	rc       io.ReadCloser // open handle on seg
	buf      []byte        // bytes read from seg but not yet consumed
	sawMagic bool          // seg's header has been validated
	sawFirst bool          // head-of-log gap check has run
	ki       keyIntern     // shared key strings across reads
}

// OpenTail returns a reader positioned after afterSeq: the first call to
// Read returns records starting at the lowest retained sequence number
// above it. afterSeq 0 reads the log from its head.
func (w *WAL) OpenTail(afterSeq uint64) *TailReader {
	return &TailReader{fs: w.opt.FS, dir: w.dir, afterSeq: afterSeq}
}

// AfterSeq reports the reader's cursor: the highest sequence number
// already returned (or the OpenTail starting point).
func (t *TailReader) AfterSeq() uint64 { return t.afterSeq }

// Close releases the reader's open segment handle. Safe on a nil
// reader, so "session over" paths can close unconditionally.
func (t *TailReader) Close() {
	if t == nil {
		return
	}
	if t.rc != nil {
		t.rc.Close()
		t.rc = nil
	}
}

func (t *TailReader) closeSeg() {
	t.Close()
	t.buf = t.buf[:0]
	t.sawMagic = false
}

// Read returns up to max records with afterSeq < seq <= uptoSeq, advancing
// the cursor past them. Callers pass the WAL's SyncedSeq as uptoSeq so
// only acked-durable records ship. An empty result with nil error means
// nothing new is committed yet — wait and call again.
//
// gap=true means the log can no longer supply the records the cursor
// needs: compaction removed segments past the cursor (a new or lagging
// follower outrun by snapshot+truncate). The reader is then exhausted;
// the caller must fall back to a snapshot and open a fresh tail.
func (t *TailReader) Read(uptoSeq uint64, max int) (recs []Record, gap bool, err error) {
	return t.ReadInto(nil, uptoSeq, max)
}

// ReadInto is Read with a caller-supplied destination slice: records are
// appended to dst[:0], so a shipper that frames and forgets each batch
// pays no per-batch slice allocation.
func (t *TailReader) ReadInto(dst []Record, uptoSeq uint64, max int) (recs []Record, gap bool, err error) {
	recs = dst[:0]
	if max <= 0 || uptoSeq <= t.afterSeq {
		return recs, false, nil
	}
	for {
		if t.rc == nil {
			ok, gap, err := t.openNext()
			if !ok || gap || err != nil {
				return recs, gap, err
			}
		}
		// Pull everything the segment currently holds past our position.
		chunk, rerr := io.ReadAll(t.rc)
		t.buf = append(t.buf, chunk...)
		if rerr != nil {
			// The handle went bad under us — on MemFS a compacted-away
			// segment or a crash; either way the unshipped remainder is no
			// longer reachable from the log.
			t.closeSeg()
			return recs, true, nil
		}
		if !t.sawMagic {
			if len(t.buf) < len(segMagic) || string(t.buf[:len(segMagic)]) != segMagic {
				// Header missing or torn: not yet flushed if this is the
				// live head, otherwise skipped exactly as Replay drops a
				// headerless segment.
				if !t.advancePastSegment() {
					return recs, false, nil
				}
				continue
			}
			t.buf = t.buf[len(segMagic):]
			t.sawMagic = true
		}
		for {
			rec, n, derr := decodeFrame(t.buf, &t.ki)
			if derr != nil {
				// Incomplete or invalid frame: live tail not yet flushed, or
				// a torn tail on a rotated-away segment (skip it — Replay
				// truncates the same bytes, and the watermark never covers a
				// frame whose sync failed).
				if !t.advancePastSegment() {
					return recs, false, nil
				}
				break
			}
			if !t.sawFirst {
				t.sawFirst = true
				if rec.Seq > t.afterSeq+1 {
					// The retained log starts past the cursor: compaction
					// already removed records the caller still needs.
					return recs, true, nil
				}
			}
			if rec.Seq > uptoSeq {
				// Beyond the durability watermark: leave the frame buffered
				// for the next call.
				return recs, false, nil
			}
			t.buf = t.buf[n:]
			if rec.Seq > t.afterSeq {
				t.afterSeq = rec.Seq
				recs = append(recs, rec)
				if len(recs) >= max {
					return recs, false, nil
				}
			}
		}
	}
}

// advancePastSegment moves the cursor off the current segment if a newer
// one exists (rotated segments never grow, so whatever did not decode
// never will). It reports false when the current segment is the newest —
// the live tail — and the caller should poll again later.
func (t *TailReader) advancePastSegment() bool {
	indices, err := listSegments(t.fs, t.dir)
	if err != nil {
		return false
	}
	for _, idx := range indices {
		if idx > t.seg {
			t.closeSeg()
			return true
		}
	}
	return false
}

// openNext opens the lowest retained segment above the one the cursor
// finished (or the head of the log on first use). ok=false means there is
// nothing to open yet. gap=true means a segment the cursor needed was
// compacted away before it got there.
func (t *TailReader) openNext() (ok, gap bool, err error) {
	indices, err := listSegments(t.fs, t.dir)
	if err != nil {
		return false, false, err
	}
	var next uint64
	for _, idx := range indices {
		if idx > t.seg {
			next = idx
			break
		}
	}
	if next == 0 {
		return false, false, nil
	}
	if t.seg != 0 && next != t.seg+1 {
		// Segment indices are assigned consecutively, so a hole above a
		// finished segment means everything in between was compacted away
		// unshipped.
		return false, true, nil
	}
	rc, oerr := t.fs.Open(filepath.Join(t.dir, segName(next)))
	if oerr != nil {
		// Listed a moment ago but gone now: racing compaction.
		return false, true, nil
	}
	t.seg, t.rc, t.buf, t.sawMagic = next, rc, t.buf[:0], false
	return true, false, nil
}
