package wal

import (
	"io"
	"os"
	"path/filepath"
)

// FS abstracts the filesystem surface the WAL touches, so tests can inject
// faults (failed writes, short writes, simulated power cuts) without a real
// disk. Production code uses OSFS.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// Remove deletes name.
	Remove(name string) error
	// List returns the base names of the regular files in dir (any order).
	// A missing dir is reported as an empty listing, not an error.
	List(dir string) ([]string, error)
	// SyncDir flushes dir's metadata, making entries created or removed in
	// it durable. Without it a power cut can forget a freshly created
	// segment file — records fsynced into it vanish from replay because
	// the file itself was never linked.
	SyncDir(dir string) error
}

// File is the writable handle an FS hands out: sequential appends plus the
// durability barrier the WAL's sync policies are built on.
type File interface {
	io.Writer
	// Sync flushes the file's written bytes to stable storage.
	Sync() error
	Close() error
}

// OSFS is the real-disk FS.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OSFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, filepath.Base(e.Name()))
		}
	}
	return names, nil
}
