package wal

import (
	"fmt"
	"math/rand"
	"testing"
)

func mustOpenReplayed(t *testing.T, fs FS, opt Options) *WAL {
	t.Helper()
	opt.FS = fs
	w, err := Open("wal", opt)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return w
}

func TestTailReaderStreamsCommittedRecords(t *testing.T) {
	fs := NewMemFS()
	w := mustOpenReplayed(t, fs, Options{Mode: SyncEachRecord})
	for i := 0; i < 25; i++ {
		if _, err := w.Append(fmt.Sprintf("q%d", i%3), float64(i), int64(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	tr := w.OpenTail(0)
	defer tr.Close()
	var got []Record
	for {
		recs, gap, err := tr.Read(w.SyncedSeq(), 7)
		if err != nil || gap {
			t.Fatalf("read: gap=%v err=%v", gap, err)
		}
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
	}
	if len(got) != 25 {
		t.Fatalf("tailed %d records, want 25", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Key != fmt.Sprintf("q%d", i%3) || r.Wait != float64(i) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	// Appends after the reader drained the log become visible on the next
	// call — the live-tail case a shipper depends on.
	if _, err := w.Append("late", 9, 9); err != nil {
		t.Fatalf("append: %v", err)
	}
	recs, gap, err := tr.Read(w.SyncedSeq(), 10)
	if err != nil || gap || len(recs) != 1 || recs[0].Key != "late" {
		t.Fatalf("live tail read: recs=%v gap=%v err=%v", recs, gap, err)
	}
	if tr.AfterSeq() != 26 {
		t.Fatalf("cursor at %d, want 26", tr.AfterSeq())
	}
}

func TestTailReaderHonorsWatermark(t *testing.T) {
	fs := NewMemFS()
	w := mustOpenReplayed(t, fs, Options{Mode: SyncOff})
	for i := 0; i < 5; i++ {
		if _, err := w.Append("q", float64(i), 0); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	tr := w.OpenTail(0)
	defer tr.Close()
	// Nothing synced yet: the watermark is 0 and nothing may ship.
	if recs, gap, err := tr.Read(w.SyncedSeq(), 100); len(recs) != 0 || gap || err != nil {
		t.Fatalf("unsynced read: recs=%v gap=%v err=%v", recs, gap, err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	recs, gap, err := tr.Read(w.SyncedSeq(), 100)
	if err != nil || gap || len(recs) != 5 {
		t.Fatalf("post-sync read: %d recs, gap=%v err=%v", len(recs), gap, err)
	}
}

func TestTailReaderResumesAcrossRotation(t *testing.T) {
	fs := NewMemFS()
	w := mustOpenReplayed(t, fs, Options{Mode: SyncEachRecord, SegmentBytes: 128})
	for i := 0; i < 40; i++ {
		if _, err := w.Append("rot", float64(i), 0); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	tr := w.OpenTail(0)
	defer tr.Close()
	var n int
	for {
		recs, gap, err := tr.Read(w.SyncedSeq(), 3)
		if err != nil || gap {
			t.Fatalf("read: gap=%v err=%v", gap, err)
		}
		if len(recs) == 0 {
			break
		}
		n += len(recs)
	}
	if n != 40 {
		t.Fatalf("tailed %d records across rotations, want 40", n)
	}
}

func TestTailReaderReportsCompactionGap(t *testing.T) {
	fs := NewMemFS()
	w := mustOpenReplayed(t, fs, Options{Mode: SyncEachRecord, SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if _, err := w.Append("gap", float64(i), 0); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	cut, err := w.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := w.RemoveSegmentsBelow(cut); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if _, err := w.Append("gap", 99, 0); err != nil {
		t.Fatalf("append: %v", err)
	}
	// A fresh reader at the head of a compacted log cannot supply the
	// removed prefix: it must demand a snapshot instead of silently
	// starting mid-history.
	tr := w.OpenTail(0)
	defer tr.Close()
	_, gap, err := tr.Read(w.SyncedSeq(), 100)
	if err != nil || !gap {
		t.Fatalf("want gap=true after compaction, got gap=%v err=%v", gap, err)
	}
	// A reader already past the removed prefix is unaffected.
	tr2 := w.OpenTail(20)
	defer tr2.Close()
	recs, gap, err := tr2.Read(w.SyncedSeq(), 100)
	if err != nil || gap || len(recs) != 1 || recs[0].Seq != 21 {
		t.Fatalf("post-compaction tail: recs=%v gap=%v err=%v", recs, gap, err)
	}
}

func TestTailReaderSkipsTornTailLikeReplay(t *testing.T) {
	fs := NewMemFS()
	w := mustOpenReplayed(t, fs, Options{Mode: SyncEachRecord})
	for i := 0; i < 3; i++ {
		if _, err := w.Append("a", float64(i), 0); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	// Garbage on the rotated segment's tail: Replay truncates it, and the
	// tail reader must skip the same bytes rather than stall on them.
	fs.TornAppend("wal/"+segName(1), []byte("\x00garbage\xff\xff"))
	for i := 0; i < 2; i++ {
		if _, err := w.Append("b", float64(i), 0); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	tr := w.OpenTail(0)
	defer tr.Close()
	var got []Record
	for {
		recs, gap, err := tr.Read(w.SyncedSeq(), 100)
		if err != nil || gap {
			t.Fatalf("read: gap=%v err=%v", gap, err)
		}
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
	}
	if len(got) != 5 {
		t.Fatalf("tailed %d records, want 5 (3 + 2 past the torn tail)", len(got))
	}
	if got[3].Key != "b" || got[3].Seq != 4 {
		t.Fatalf("first record after torn tail: %+v", got[3])
	}
}

func TestEncodeDecodeFramesRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Key: "q/1", Wait: 1.5, UnixNanos: 100},
		{Seq: 7, Key: "", Wait: 0, UnixNanos: -3},
		{Seq: 9, Key: "üñï", Wait: 1e300, UnixNanos: 42},
	}
	buf := EncodeFrames(nil, recs)
	got, err := DecodeFrames(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
	// Any flipped bit must fail decoding — shipped batches are strict.
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x20
		if _, err := DecodeFrames(mut); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
	if _, err := DecodeFrames(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated frame buffer went undetected")
	}
}

func TestNotifySyncSignalsWatermarkAdvance(t *testing.T) {
	fs := NewMemFS()
	w := mustOpenReplayed(t, fs, Options{Mode: SyncEachRecord})
	ch := make(chan struct{}, 1)
	w.NotifySync(ch)
	if _, err := w.Append("n", 1, 0); err != nil {
		t.Fatalf("append: %v", err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("no sync notification after an acked append")
	}
	if w.SyncedSeq() != 1 {
		t.Fatalf("watermark %d, want 1", w.SyncedSeq())
	}
}

// noDirSyncFS simulates a WAL implementation that forgot to fsync the log
// directory after creating a segment: SyncDir becomes a no-op again, as
// MemFS itself behaved before the simulator tracked directory entries.
type noDirSyncFS struct{ *MemFS }

func (noDirSyncFS) SyncDir(string) error { return nil }

// TestCrashDropsCreatedButUnsyncedDirEntries is the regression test for
// the directory-fsync fix: with MemFS now modeling directory-entry
// durability, a WAL that skipped SyncDir would lose acked records to a
// power cut — so the simulator genuinely exercises the fix instead of
// letting it pass vacuously.
func TestCrashDropsCreatedButUnsyncedDirEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	// Direct FS-level check: a file created, written, and file-synced but
	// never dir-synced vanishes entirely at the crash.
	fs := NewMemFS()
	f, err := fs.OpenAppend("wal/orphan.wal")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	fs.Crash(rng)
	if names, _ := fs.List("wal"); len(names) != 0 {
		t.Fatalf("un-dir-synced file survived the crash: %v", names)
	}
	if _, err := fs.Open("wal/orphan.wal"); err == nil {
		t.Fatal("un-dir-synced file still openable after the crash")
	}

	// End to end: the real WAL dir-syncs on segment creation, so an acked
	// record survives; a WAL whose SyncDir is a no-op loses it.
	appendOne := func(fs FS) {
		w := mustOpenReplayed(t, fs, Options{Mode: SyncEachRecord})
		if _, err := w.Append("acked", 1, 0); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	replayCount := func(fs FS) int {
		w, err := Open("wal", Options{FS: fs})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		st, err := w.Replay(nil)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		return st.Records
	}

	good := NewMemFS()
	appendOne(good)
	good.Crash(rng)
	if n := replayCount(good); n != 1 {
		t.Fatalf("dir-synced WAL lost the acked record: replayed %d", n)
	}

	bad := NewMemFS()
	appendOne(noDirSyncFS{bad})
	bad.Crash(rng)
	if n := replayCount(bad); n != 0 {
		t.Fatalf("SyncDir no-op still kept %d records through the crash: the simulator is not exercising the directory fsync", n)
	}
}

// TestCrashKeepsDirSyncedSegments pins the complementary direction: the
// production append path (which dir-syncs every segment it creates) keeps
// every acked record through an adversarial crash even with rotation
// creating many segments.
func TestCrashKeepsDirSyncedSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fs := NewMemFS()
	w := mustOpenReplayed(t, fs, Options{Mode: SyncEachRecord, SegmentBytes: 64})
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := w.Append("k", float64(i), 0); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	fs.Crash(rng)
	w2, err := Open("wal", Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st, err := w2.Replay(nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Records < n {
		t.Fatalf("replayed %d of %d acked records after crash", st.Records, n)
	}
}
