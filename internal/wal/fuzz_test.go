package wal

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzRecord hardens the record-parsing boundary the recovery path trusts:
// arbitrary segment bytes must never panic replay, never yield more data
// than the file holds, and always account for every byte as either a
// decoded record or a counted drop. Real frames embedded in the noise must
// round-trip exactly.
func FuzzRecord(f *testing.F) {
	// A clean segment with three records.
	clean := []byte(segMagic)
	clean = appendRecord(clean, Record{Seq: 1, Key: "normal", Wait: 12.5, UnixNanos: 99})
	clean = appendRecord(clean, Record{Seq: 2, Key: "high/65+", Wait: 0, UnixNanos: -1})
	clean = appendRecord(clean, Record{Seq: 3, Key: "", Wait: 1e300, UnixNanos: 7})
	f.Add(clean)
	f.Add(clean[:len(clean)-5])                                          // torn tail
	f.Add([]byte(segMagic))                                              // header only
	f.Add([]byte("QBWAL\x00v2 not my magic"))                            // wrong magic
	f.Add([]byte{})                                                      // empty file
	f.Add(bytes.Repeat([]byte{0xFF}, 64))                                // garbage
	huge := append([]byte(segMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0) // absurd length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := NewMemFS()
		fs.TornAppend("wal/"+segName(1), data)
		w, err := Open("wal", Options{FS: fs})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		var recs []Record
		stats, err := w.Replay(func(r Record) { recs = append(recs, r) })
		if err != nil {
			t.Fatalf("replay must tolerate arbitrary bytes, got: %v", err)
		}
		if stats.Records != len(recs) {
			t.Fatalf("stats.Records %d != applied %d", stats.Records, len(recs))
		}
		if stats.DroppedBytes < 0 || stats.DroppedBytes > int64(len(data)) {
			t.Fatalf("dropped %d bytes of a %d-byte file", stats.DroppedBytes, len(data))
		}
		// Decoded records plus dropped bytes can never exceed the file.
		minSize := int64(0)
		if len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic {
			minSize = int64(len(segMagic))
		}
		for _, r := range recs {
			minSize += int64(frameHeaderLen + recordFixedLen + len(r.Key))
			if len(r.Key) > MaxKeyLen {
				t.Fatalf("decoded key of %d bytes exceeds MaxKeyLen", len(r.Key))
			}
		}
		if minSize+stats.DroppedBytes > int64(len(data)) {
			t.Fatalf("accounted %d bytes (records %d + dropped %d) from a %d-byte file",
				minSize+stats.DroppedBytes, minSize, stats.DroppedBytes, len(data))
		}

		// Differential check against the frame decoder directly: replay
		// must agree with a straight scan of the same bytes.
		if len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic {
			br := bufio.NewReader(bytes.NewReader(data[len(segMagic):]))
			var scratch []byte
			i := 0
			for {
				rec, s, _, err := readRecord(br, scratch)
				scratch = s
				if err != nil {
					if err == io.EOF && i != len(recs) {
						t.Fatalf("direct scan found %d records, replay found %d", i, len(recs))
					}
					break
				}
				if i >= len(recs) || rec != recs[i] {
					t.Fatalf("record %d: direct scan %+v, replay %+v", i, rec, recs[i])
				}
				i++
			}
		}
	})
}
