package wal

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
)

// This file holds the fault-injection half of the package: an in-memory FS
// that models fsync semantics precisely enough to simulate power cuts at
// arbitrary byte offsets, and a wrapper FS that injects write and sync
// failures. Both exist so crash-recovery behavior is a tested property,
// not a hope; they live outside the _test files because qbets' own crash
// and degradation tests drive them too.

// MemFS is an in-memory FS that tracks, per file, which prefix has been
// fsynced. Crash simulates a power cut: the synced prefix survives intact,
// written-but-unsynced bytes survive only partially (and possibly
// corrupted — a torn write), and all open handles go stale.
type MemFS struct {
	mu    sync.Mutex
	gen   int // bumped by Crash; stale handles refuse writes
	files map[string]*memFile
}

type memFile struct {
	data   []byte
	synced int
	// dirSynced records whether the file's directory entry has been made
	// durable (SyncDir on its parent). A file created but never dir-synced
	// is dropped whole by Crash: fsyncing record bytes is worthless if the
	// power cut forgets the file was ever linked. This is the simulator
	// side of the directory-fsync fix — without it, a WAL that skipped
	// SyncDir would still pass every crash trial.
	dirSynced bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

func (m *MemFS) MkdirAll(string) error { return nil }

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, f: f, gen: m.gen}, nil
}

func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, fmt.Errorf("memfs: open %s: file does not exist", name)
	}
	// A live positional reader, like an OS file: bytes appended after the
	// open become visible to later reads (EOF is not sticky), which is what
	// a replication tail following the active segment relies on. The handle
	// goes stale on Crash and errors if the file is removed under it.
	return &memReader{fs: m, f: f, name: name, gen: m.gen}, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: file does not exist", name)
	}
	delete(m.files, name)
	return nil
}

// SyncDir makes dir's entries durable: every file under dir survives a
// Crash as an entry (its bytes still governed by per-file sync state).
// Files created but never dir-synced are dropped whole by Crash — the
// real-disk failure mode OSFS.SyncDir exists to close.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	clean := filepath.Clean(dir)
	for name, f := range m.files {
		if filepath.Dir(name) == clean {
			f.dirSynced = true
		}
	}
	return nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == filepath.Clean(dir) {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Crash simulates a power cut. For every file, the fsynced prefix is kept;
// of the written-but-unsynced suffix, a random-length prefix survives, and
// sometimes one surviving unsynced byte is flipped (a torn sector carrying
// garbage). All handles opened before the crash become stale: their writes
// and syncs fail, as a killed process's file descriptors would. The
// filesystem itself remains usable — reopen and replay, as a rebooted
// process would.
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gen++
	for name, f := range m.files {
		if !f.dirSynced {
			// Created but the directory entry never made durable: the
			// reboot has no record the file existed.
			delete(m.files, name)
			continue
		}
		if len(f.data) > f.synced {
			keep := f.synced + rng.Intn(len(f.data)-f.synced+1)
			if keep > f.synced && rng.Intn(2) == 0 {
				i := f.synced + rng.Intn(keep-f.synced)
				f.data[i] ^= 1 << uint(rng.Intn(8))
			}
			f.data = f.data[:keep]
		}
		// After reboot, whatever is on disk is all there is.
		f.synced = len(f.data)
	}
}

// TornAppend writes raw bytes to a file without marking them synced — the
// shape of an append that was in flight when the power failed. Combine
// with Crash to produce torn tails even when the WAL itself syncs every
// record. A file TornAppend creates gets a durable directory entry (the
// scenario modeled is data in flight to a file that exists, not an
// unlinked file).
func (m *MemFS) TornAppend(name string, b []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		f = &memFile{dirSynced: true}
		m.files[name] = f
	}
	f.data = append(f.data, b...)
}

var errStaleHandle = errors.New("memfs: handle is stale (filesystem crashed)")

type memHandle struct {
	fs  *MemFS
	f   *memFile
	gen int
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.gen != h.fs.gen {
		return 0, errStaleHandle
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.gen != h.fs.gen {
		return errStaleHandle
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error { return nil }

// memReader is the read side of a MemFS file: positional, live (appends
// after the open are visible), stale after Crash, and erroring if the
// file is removed under it — the failure a tail shipper must treat as
// "the log can no longer supply this data".
type memReader struct {
	fs   *MemFS
	f    *memFile
	name string
	gen  int
	off  int
}

func (r *memReader) Read(p []byte) (int, error) {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	if r.gen != r.fs.gen {
		return 0, errStaleHandle
	}
	if r.fs.files[r.name] != r.f {
		return 0, fmt.Errorf("memfs: read %s: file does not exist", r.name)
	}
	if r.off >= len(r.f.data) {
		return 0, io.EOF
	}
	n := copy(p, r.f.data[r.off:])
	r.off += n
	return n, nil
}

func (r *memReader) Close() error { return nil }

// FaultFS wraps another FS and injects write and sync failures, for
// testing how callers degrade when the log becomes unwritable (disk full,
// dying device) — the failure mode behind qbets' read-only serving mode.
type FaultFS struct {
	inner FS

	mu           sync.Mutex
	writeBudget  int // writes remaining before failure; -1 = unlimited
	writeErr     error
	shortByHalf  bool // failed writes first persist half the buffer
	syncErr      error
	failedWrites int
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, writeBudget: -1}
}

// FailWritesAfter arms a write fault: the next n writes succeed, every
// write after that returns err. If short is true a failing write first
// persists half its buffer — a short write, the torn-tail case.
func (f *FaultFS) FailWritesAfter(n int, err error, short bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget, f.writeErr, f.shortByHalf = n, err, short
}

// FailSyncs makes every Sync return err until cleared.
func (f *FaultFS) FailSyncs(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// Clear disarms all faults.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget, f.writeErr, f.shortByHalf, f.syncErr = -1, nil, false, nil
}

// FailedWrites reports how many writes the fault has rejected.
func (f *FaultFS) FailedWrites() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failedWrites
}

func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *FaultFS) OpenAppend(name string) (File, error) {
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, file: file}, nil
}

func (f *FaultFS) Open(name string) (io.ReadCloser, error) { return f.inner.Open(name) }
func (f *FaultFS) Remove(name string) error                { return f.inner.Remove(name) }
func (f *FaultFS) List(dir string) ([]string, error)       { return f.inner.List(dir) }

// SyncDir passes through unfaulted: the armed faults model a file-level
// failing disk, and coupling them to directory syncs would make segment
// creation itself fail before the write/sync paths under test are reached.
func (f *FaultFS) SyncDir(dir string) error { return f.inner.SyncDir(dir) }

type faultHandle struct {
	fs   *FaultFS
	file File
}

func (h *faultHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	budget, werr, short := h.fs.writeBudget, h.fs.writeErr, h.fs.shortByHalf
	if budget == 0 && werr != nil {
		h.fs.failedWrites++
	} else if budget > 0 {
		h.fs.writeBudget--
	}
	h.fs.mu.Unlock()
	if budget == 0 && werr != nil {
		n := 0
		if short && len(p) > 1 {
			n, _ = h.file.Write(p[:len(p)/2])
		}
		return n, werr
	}
	return h.file.Write(p)
}

func (h *faultHandle) Sync() error {
	h.fs.mu.Lock()
	serr := h.fs.syncErr
	h.fs.mu.Unlock()
	if serr != nil {
		return serr
	}
	return h.file.Sync()
}

func (h *faultHandle) Close() error { return h.file.Close() }
