// Package wal implements a crash-safe write-ahead log of observation
// records for the prediction service. The correctness guarantee of the
// paper's method rides on the integrity of each stream's accumulated
// history, so observations are made durable *before* they mutate predictor
// state: qbets.Service appends here first, and on restart replays the log
// tail on top of the latest snapshot.
//
// Layout: the log is a directory of segment files named
// 00000000000000000001.wal, 00000000000000000002.wal, … Each segment
// starts with an 8-byte magic header followed by CRC32C-framed records
// (see record.go). Appends go to the newest segment; when it exceeds the
// configured size the WAL rotates to a fresh one. A snapshot save rotates
// and then deletes the segments the snapshot fully covers, bounding log
// growth.
//
// Durability is governed by a sync policy: fsync after every record
// (appends are acknowledged durable), on an interval (the loss window is
// the interval), or only at rotation/close. Replay tolerates torn writes
// and corrupt tails: each segment is consumed up to its first invalid
// frame, the remainder is counted and dropped, and recovery proceeds —
// a damaged log never prevents startup.
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// countRemaining drains r, returning how many bytes were left.
func countRemaining(r io.Reader) int64 {
	n, _ := io.Copy(io.Discard, r)
	return n
}

// SyncMode selects when appended records are flushed and fsynced.
type SyncMode int

const (
	// SyncEachRecord flushes and fsyncs after every append: a nil error
	// from Append means the record is on stable storage.
	SyncEachRecord SyncMode = iota
	// SyncInterval flushes and fsyncs on a background ticker every
	// Options.Interval; a crash can lose at most that window. The ticker
	// (rather than a clock check on the append path) keeps Append free of
	// time syscalls and bounds the loss window even when appends are
	// sparse — a lone record never sits unsynced waiting for the next one.
	SyncInterval
	// SyncOff flushes and fsyncs only at rotation and Close.
	SyncOff
)

// Options configures a WAL. The zero value means: 8 MiB segments, sync
// every record, the real filesystem.
type Options struct {
	// SegmentBytes is the size at which the active segment rotates
	// (default 8 MiB).
	SegmentBytes int64
	// Mode is the sync policy (default SyncEachRecord).
	Mode SyncMode
	// Interval is the SyncInterval period (default 1s).
	Interval time.Duration
	// GroupCommit enables the concurrent-committer group commit path for
	// SyncEachRecord: an appender arriving while another appender's fsync
	// is in flight buffers its frames and waits, and the next fsync (led by
	// whoever arrives first once the disk is free) covers every waiter at
	// once — N concurrent committers share ~1 fsync instead of paying N.
	// Unlike SyncInterval this does not widen the loss window: no append is
	// acknowledged until its own records are on stable storage. Ignored
	// under other sync modes, which already amortize or defer syncs.
	GroupCommit bool
	// FS is the filesystem to write through (default OSFS).
	FS FS
}

// ReplayStats reports what Replay found.
type ReplayStats struct {
	// Segments is how many segment files were scanned.
	Segments int
	// Records is how many valid records were decoded and applied.
	Records int
	// MaxSeq is the highest sequence number seen (0 if none).
	MaxSeq uint64
	// Truncations counts segments whose tail was cut at an invalid frame
	// (torn write or corruption).
	Truncations int
	// DroppedBytes is the total size of the discarded tails.
	DroppedBytes int64
}

const segMagic = "QBWAL\x00v1"

// WAL is an append-only observation log. It is safe for concurrent use.
// The lifecycle is Open → Replay (exactly once) → Append/Rotate/… → Close.
type WAL struct {
	dir string
	opt Options

	mu        sync.Mutex
	replayed  bool
	closed    bool
	nextIndex uint64 // index the next opened segment receives
	nextSeq   uint64
	active    *segment
	encBuf    []byte
	// syncErr is the sticky record of a failed background sync
	// (SyncInterval mode only): records acknowledged since the previous
	// successful sync may be lost even though the process never crashed,
	// so Append refuses with this error — pushing the service into
	// read-only — until syncLoop's recovery probe proves the disk takes
	// durable writes again.
	syncErr error

	// coarseNow is a cached wall clock (unix nanos), refreshed on every
	// sync and by the interval ticker, so hot-path callers can timestamp
	// records without a time syscall per append (see CoarseUnixNanos).
	coarseNow atomic.Int64
	stopTick  chan struct{}
	tickDone  chan struct{}

	// syncedSeq is the durability watermark: every sequence number at or
	// below it was flushed and fsynced by a successful sync. Written under
	// mu (syncLocked), read locklessly by group-commit waiters — a waiter
	// acks once the watermark passes its batch *and* its segment has not
	// failed (the watermark alone can lie after a failed segment is
	// abandoned and a fresh one syncs past the lost sequence numbers).
	syncedSeq atomic.Uint64

	// notify holds channels registered via NotifySync; each gets a
	// non-blocking signal when the durability watermark advances.
	notify []chan<- struct{}

	// gc coordinates group commit (SyncEachRecord + Options.GroupCommit):
	// at most one leader fsyncs at a time; followers wait on cond and
	// re-check the watermark and their segment's failed flag on each wake.
	// gc.mu is never held together with w.mu.
	gc struct {
		mu      sync.Mutex
		cond    *sync.Cond
		syncing bool
		// err remembers the most recent commit failure, for error text
		// only — the authoritative per-waiter failure signal is the failed
		// flag on the waiter's own segment.
		err error
	}
}

type segment struct {
	index uint64
	f     File
	w     *bufio.Writer
	size  int64
	// failed marks a segment whose tail may be torn by a failed write or
	// sync; the next append abandons it and opens a fresh segment so one
	// bad write cannot shadow later good records at replay. Atomic because
	// group-commit waiters read it without holding the WAL mutex: once set
	// it never clears, so a waiter that observes it can safely report its
	// records lost.
	failed atomic.Bool
}

var (
	errNotReplayed = errors.New("wal: Replay must run before Append")
	errClosed      = errors.New("wal: closed")
	errReplayTwice = errors.New("wal: Replay already ran")
)

// Open prepares a WAL over dir, creating it if needed. No segment is
// opened for writing until the first Append; call Replay first.
func Open(dir string, opt Options) (*WAL, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 8 << 20
	}
	if opt.Interval <= 0 {
		opt.Interval = time.Second
	}
	if opt.FS == nil {
		opt.FS = OSFS{}
	}
	if err := opt.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	indices, err := listSegments(opt.FS, dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	next := uint64(1)
	if n := len(indices); n > 0 {
		next = indices[n-1] + 1
	}
	w := &WAL{dir: dir, opt: opt, nextIndex: next, nextSeq: 1}
	w.gc.cond = sync.NewCond(&w.gc.mu)
	w.coarseNow.Store(time.Now().UnixNano())
	if opt.Mode == SyncInterval {
		w.stopTick = make(chan struct{})
		w.tickDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// syncLoop is the SyncInterval background: every Interval it refreshes the
// coarse clock and pushes buffered records to stable storage. A failed sync
// is recorded stickily on the WAL (see syncErr): the poisoned segment is
// abandoned — after an fsync error the kernel may have dropped its dirty
// pages, and a retried fsync on the same file can falsely succeed — and
// every Append returns the error until a once-per-interval probe proves a
// fresh segment accepts a durable write.
func (w *WAL) syncLoop() {
	defer close(w.tickDone)
	t := time.NewTicker(w.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stopTick:
			return
		case <-t.C:
			w.coarseNow.Store(time.Now().UnixNano())
			w.mu.Lock()
			switch {
			case w.closed:
			case w.syncErr != nil:
				// Recovery probe: open a fresh segment and sync it. Only
				// success clears the sticky error and lets appends resume;
				// compaction reclaims any probe segments this leaves behind.
				w.abandonLocked()
				if err := w.openSegmentLocked(); err == nil {
					if err := w.syncLocked(); err == nil {
						w.syncErr = nil
					} else {
						w.abandonLocked()
					}
				}
			case w.active != nil && !w.active.failed.Load():
				if err := w.syncLocked(); err != nil {
					w.syncErr = err
					w.abandonLocked()
				}
			}
			w.mu.Unlock()
		}
	}
}

// abandonLocked closes and drops the active segment without flushing it:
// once a write or sync on the segment has failed, its buffered tail can no
// longer be trusted to reach disk, so the only safe move is to leave what
// did land for replay's torn-tail handling and start fresh.
func (w *WAL) abandonLocked() {
	if w.active != nil {
		w.active.f.Close()
		w.active = nil
	}
}

// CoarseUnixNanos returns a cached wall-clock timestamp suitable for
// stamping records on the append hot path: exact to the last sync (or
// interval tick), so stale by at most the sync policy's loss window. Use
// time.Now when sub-interval precision matters.
func (w *WAL) CoarseUnixNanos() int64 { return w.coarseNow.Load() }

// listSegments returns the indices of the segment files in dir, ascending.
func listSegments(fs FS, dir string) ([]uint64, error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, name := range names {
		if idx, ok := parseSegName(name); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func segName(idx uint64) string { return fmt.Sprintf("%020d.wal", idx) }

func parseSegName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".wal")
	if !ok || len(base) != 20 {
		return 0, false
	}
	idx, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// Replay scans every segment in order, invoking apply (which may be nil)
// for each valid record, and positions the WAL to append after the highest
// sequence number seen. Torn or corrupt tails are tolerated: the damaged
// segment contributes its valid prefix, the rest is counted into the
// returned stats, and replay continues with the next segment. The returned
// error is reserved for real I/O failures (unreadable directory or file).
func (w *WAL) Replay(apply func(Record)) (ReplayStats, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var stats ReplayStats
	if w.closed {
		return stats, errClosed
	}
	if w.replayed {
		return stats, errReplayTwice
	}
	indices, err := listSegments(w.opt.FS, w.dir)
	if err != nil {
		return stats, fmt.Errorf("wal: %w", err)
	}
	scratch := make([]byte, 0, 256)
	for _, idx := range indices {
		name := filepath.Join(w.dir, segName(idx))
		f, err := w.opt.FS.Open(name)
		if err != nil {
			return stats, fmt.Errorf("wal: %w", err)
		}
		var rerr error
		stats.Segments++
		br := bufio.NewReaderSize(f, 64<<10)
		magic := make([]byte, len(segMagic))
		if n, err := io.ReadFull(br, magic); err != nil || string(magic) != segMagic {
			// Header torn or overwritten: the whole segment is dropped.
			stats.Truncations++
			stats.DroppedBytes += int64(n) + countRemaining(br)
			f.Close()
			continue
		}
		var badFrame int64
		for {
			var rec Record
			rec, scratch, badFrame, rerr = readRecord(br, scratch)
			if rerr != nil {
				break
			}
			stats.Records++
			if rec.Seq > stats.MaxSeq {
				stats.MaxSeq = rec.Seq
			}
			if apply != nil {
				apply(rec)
			}
		}
		if rerr != io.EOF {
			// Invalid frame: drop it and everything after it in this
			// segment — the bad frame's own bytes plus whatever follows.
			stats.Truncations++
			stats.DroppedBytes += badFrame + countRemaining(br)
		}
		f.Close()
	}
	w.nextSeq = stats.MaxSeq + 1
	w.replayed = true
	return stats, nil
}

// appendPrepareLocked runs the checks and segment management every append
// path shares: lifecycle state, sticky background-sync failure, abandoning
// a poisoned segment, and opening a fresh one when needed.
func (w *WAL) appendPrepareLocked() error {
	if w.closed {
		return errClosed
	}
	if !w.replayed {
		return errNotReplayed
	}
	if w.syncErr != nil {
		// A background sync failed since the last append: the log is
		// dropping acknowledged data, so refuse — stickily, until the
		// recovery probe in syncLoop clears the error — rather than keep
		// acking records that may never reach disk.
		return fmt.Errorf("wal: background sync failed: %w", w.syncErr)
	}
	if w.active != nil && w.active.failed.Load() {
		w.abandonLocked()
	}
	if w.active == nil {
		return w.openSegmentLocked()
	}
	return nil
}

// appendFinishLocked completes an append whose frames are already in the
// active segment's buffer: it applies the sync policy and the rotation
// check, then releases w.mu. The group-commit path must drop the lock
// itself, before potentially waiting behind a concurrent committer's fsync.
func (w *WAL) appendFinishLocked(last uint64) error {
	if w.opt.Mode == SyncEachRecord && w.opt.GroupCommit {
		seg := w.active
		w.mu.Unlock()
		return w.commit(last, seg)
	}
	defer w.mu.Unlock()
	// SyncInterval is handled off the append path by syncLoop's ticker;
	// SyncOff waits for rotation or Close.
	if w.opt.Mode == SyncEachRecord {
		if err := w.syncLocked(); err != nil {
			w.active.failed.Store(true)
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	if w.active.size >= w.opt.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			// The records are past their policy's durability point, but the
			// rotation flush failed — surface it so the caller degrades
			// rather than trusting a log that just refused a write.
			return fmt.Errorf("wal: rotate: %w", err)
		}
	}
	return nil
}

// Append logs one observation and returns its sequence number. Whether a
// nil error implies durability depends on the sync policy (see SyncMode).
// A failed append poisons the active segment; the next append starts a
// fresh one, so replay after recovery is never blocked by one bad tail.
// On error the returned sequence number must not be trusted.
func (w *WAL) Append(key string, wait float64, unixNanos int64) (uint64, error) {
	w.mu.Lock()
	if err := w.appendPrepareLocked(); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	if len(key) > MaxKeyLen {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: key of %d bytes exceeds limit %d", len(key), MaxKeyLen)
	}
	// The sequence number is consumed even if the write fails: a torn
	// frame may still be recovered whole at replay, and reusing its number
	// would let two different records share a sequence.
	seq := w.nextSeq
	w.nextSeq++
	w.encBuf = appendRecord(w.encBuf[:0], Record{Seq: seq, Key: key, Wait: wait, UnixNanos: unixNanos})
	n, err := w.active.w.Write(w.encBuf)
	w.active.size += int64(n)
	if err != nil {
		w.active.failed.Store(true)
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	return seq, w.appendFinishLocked(seq)
}

// Entry is one observation in an AppendBatch: a Record minus the sequence
// number, which the WAL assigns at append time.
type Entry struct {
	Key       string
	Wait      float64
	UnixNanos int64
}

// maxEncBuf bounds how much encode-buffer capacity a large batch may pin
// between appends; anything bigger is released after use.
const maxEncBuf = 1 << 20

// AppendBatch logs a batch of observations as consecutive records and
// returns the sequence number assigned to entries[0]; entry i carries
// firstSeq+i. The whole batch is framed into one buffer and issued as a
// single write, and under SyncEachRecord it is made durable by a single
// fsync (or one group commit) — bulk ingest pays per batch what Append
// pays per record. The frames are ordinary records, so a power cut
// mid-batch tears at a record boundary: replay recovers a prefix of the
// batch, exactly as if the same records had been appended individually.
// On error no entry is acknowledged; as with Append, frames that reached
// the disk anyway are recovered at replay and deduplicated by the caller's
// sequence anchoring.
func (w *WAL) AppendBatch(entries []Entry) (firstSeq uint64, err error) {
	if len(entries) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	if err := w.appendPrepareLocked(); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	for i := range entries {
		if len(entries[i].Key) > MaxKeyLen {
			w.mu.Unlock()
			return 0, fmt.Errorf("wal: key of %d bytes exceeds limit %d", len(entries[i].Key), MaxKeyLen)
		}
	}
	firstSeq = w.nextSeq
	w.nextSeq += uint64(len(entries))
	buf := w.encBuf[:0]
	for i, e := range entries {
		buf = appendRecord(buf, Record{Seq: firstSeq + uint64(i), Key: e.Key, Wait: e.Wait, UnixNanos: e.UnixNanos})
	}
	if cap(buf) <= maxEncBuf {
		w.encBuf = buf
	}
	n, werr := w.active.w.Write(buf)
	w.active.size += int64(n)
	if werr != nil {
		w.active.failed.Store(true)
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", werr)
	}
	return firstSeq, w.appendFinishLocked(firstSeq + uint64(len(entries)) - 1)
}

// commit makes every sequence number up to last durable under the group
// commit protocol. The caller's frames are already buffered in seg (the
// segment it appended to); commit returns once a successful sync's
// watermark covers last — possibly a sync some other goroutine led while
// we waited — or once seg is known failed. The first committer to find no
// sync in flight becomes the leader and fsyncs once for everything
// buffered so far, including frames from appenders that arrived after it;
// appenders arriving during that fsync coalesce into the next one.
func (w *WAL) commit(last uint64, seg *segment) error {
	g := &w.gc
	g.mu.Lock()
	for {
		// Order matters: a failed segment is checked before the watermark,
		// because after seg is abandoned a fresh segment's sync can push
		// the watermark past sequence numbers that never reached disk.
		if seg.failed.Load() {
			err := g.err
			g.mu.Unlock()
			if err == nil {
				err = errors.New("segment abandoned after a failed write")
			}
			return fmt.Errorf("wal: sync: %w", err)
		}
		if w.syncedSeq.Load() >= last {
			g.mu.Unlock()
			return nil
		}
		if !g.syncing {
			break // no sync in flight: lead one
		}
		g.cond.Wait()
	}
	g.syncing = true
	g.mu.Unlock()

	// Leader: one fsync covers every frame flushed up to this instant. The
	// fsync itself runs outside w.mu so appenders arriving during it keep
	// buffering frames — they become the next commit's coalesced wave —
	// while gc.syncing keeps a second leader from starting.
	w.mu.Lock()
	var err error
	if w.active == seg && !seg.failed.Load() {
		cover := w.nextSeq - 1
		if err = seg.w.Flush(); err == nil {
			w.mu.Unlock()
			err = seg.f.Sync()
			w.mu.Lock()
			if err != nil && w.syncedSeq.Load() >= cover {
				// A concurrent rotation (snapshot path) synced and closed
				// the segment under our in-flight fsync: everything we were
				// committing is durable, the EBADF-shaped error is noise.
				err = nil
			}
			if err == nil {
				if cover > w.syncedSeq.Load() {
					w.syncedSeq.Store(cover)
				}
				w.coarseNow.Store(time.Now().UnixNano())
				w.notifySyncLocked()
				if w.active == seg && seg.size >= w.opt.SegmentBytes {
					// A failed rotation poisons the segment (rotateLocked
					// marks it) but not this commit: everything covered by
					// it was just synced.
					_ = w.rotateLocked()
				}
			}
		}
		if err != nil {
			// Mark before returning so every waiter on this segment sees
			// its records lost; the next append abandons it.
			seg.failed.Store(true)
		}
	}
	// Otherwise seg was rotated out (its sync already advanced the
	// watermark) or failed; the re-check below settles our own fate.
	w.mu.Unlock()

	g.mu.Lock()
	g.syncing = false
	if err != nil {
		g.err = err
	}
	g.cond.Broadcast()
	if seg.failed.Load() {
		gerr := g.err
		g.mu.Unlock()
		if gerr == nil {
			gerr = errors.New("segment abandoned after a failed write")
		}
		return fmt.Errorf("wal: sync: %w", gerr)
	}
	g.mu.Unlock()
	if w.syncedSeq.Load() >= last {
		return nil
	}
	// Neither durable nor failed: seg must have been mid-rotation or the
	// WAL closed under us — re-enter the wait loop rather than guess.
	return w.commit(last, seg)
}

// Sync forces the active segment's buffered records to stable storage. A
// pending background sync failure is reported here too.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.syncErr != nil {
		return fmt.Errorf("wal: background sync failed: %w", w.syncErr)
	}
	if w.active == nil {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		w.active.failed.Store(true)
		if w.opt.Mode == SyncInterval {
			w.syncErr = err
		}
		return err
	}
	return nil
}

// Rotate closes the active segment (flushing and syncing it) and returns
// the cut index: every existing segment has an index below it, and every
// future append lands at or above it. Callers snapshot after rotating,
// then delete the covered segments with RemoveSegmentsBelow(cut).
func (w *WAL) Rotate() (cut uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errClosed
	}
	err = w.rotateLocked()
	return w.nextIndex, err
}

// RemoveSegmentsBelow deletes every segment file with index < cut. The
// active segment is never removed.
func (w *WAL) RemoveSegmentsBelow(cut uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	indices, err := listSegments(w.opt.FS, w.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var firstErr error
	removed := false
	for _, idx := range indices {
		if idx >= cut || (w.active != nil && idx == w.active.index) {
			continue
		}
		if err := w.opt.FS.Remove(filepath.Join(w.dir, segName(idx))); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wal: %w", err)
			}
		} else {
			removed = true
		}
	}
	if removed {
		if err := w.opt.FS.SyncDir(w.dir); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: %w", err)
		}
	}
	return firstErr
}

// Close flushes, syncs, and closes the active segment. The WAL refuses
// further appends.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	// Mark closed first (rejecting new appends), release the lock so the
	// sync loop can finish its current tick, and only then stop it and
	// flush — the loop takes the same mutex, so waiting under it deadlocks.
	w.closed = true
	w.mu.Unlock()
	if w.stopTick != nil {
		close(w.stopTick)
		<-w.tickDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.rotateLocked()
	if err == nil && w.syncErr != nil {
		// The final flush had nothing to sync (the poisoned segment was
		// abandoned), but acknowledged records were lost: say so.
		err = fmt.Errorf("wal: background sync failed: %w", w.syncErr)
	}
	return err
}

func (w *WAL) openSegmentLocked() error {
	name := filepath.Join(w.dir, segName(w.nextIndex))
	f, err := w.opt.FS.OpenAppend(name)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// Make the directory entry durable before any record lands in the
	// file: fsyncing record bytes is worthless if a power cut forgets the
	// file was ever created.
	if err := w.opt.FS.SyncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	seg := &segment{index: w.nextIndex, f: f, w: bufio.NewWriterSize(f, 64<<10)}
	if _, err := seg.w.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	seg.size = int64(len(segMagic))
	w.nextIndex++
	w.active = seg
	return nil
}

func (w *WAL) syncLocked() error {
	if err := w.active.w.Flush(); err != nil {
		return err
	}
	if err := w.active.f.Sync(); err != nil {
		return err
	}
	// Everything appended so far is on stable storage (appends happen only
	// under w.mu, which we hold): publish the group-commit watermark.
	w.syncedSeq.Store(w.nextSeq - 1)
	w.coarseNow.Store(time.Now().UnixNano())
	w.notifySyncLocked()
	return nil
}

// rotateLocked flushes, syncs, and closes the active segment (if any). A
// failed rotation poisons the segment so group-commit waiters buffered in
// it see their records lost rather than trusting a later watermark.
func (w *WAL) rotateLocked() error {
	if w.active == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.active.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		w.active.failed.Store(true)
	}
	w.active = nil
	return err
}
