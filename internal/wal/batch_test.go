package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestAppendBatchSequencesAndReplay: a batch's entries get consecutive
// sequence numbers starting at the returned firstSeq, interleave correctly
// with single appends, and replay reproduces every record in order.
func TestAppendBatchSequencesAndReplay(t *testing.T) {
	fs := NewMemFS()
	w, err := Open("wal", Options{FS: fs, Mode: SyncEachRecord})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}

	var want []Record
	seq, err := w.Append("solo", 1.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, Record{Seq: seq, Key: "solo", Wait: 1.5, UnixNanos: 10})

	batch := []Entry{
		{Key: "a", Wait: 2, UnixNanos: 20},
		{Key: "b", Wait: 3, UnixNanos: 30},
		{Key: "a", Wait: 4, UnixNanos: 40},
	}
	first, err := w.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != seq+1 {
		t.Fatalf("batch firstSeq %d, want %d (contiguous with prior append)", first, seq+1)
	}
	for i, e := range batch {
		want = append(want, Record{Seq: first + uint64(i), Key: e.Key, Wait: e.Wait, UnixNanos: e.UnixNanos})
	}

	seq2, err := w.Append("tail", 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != first+uint64(len(batch)) {
		t.Fatalf("post-batch seq %d, want %d", seq2, first+uint64(len(batch)))
	}
	want = append(want, Record{Seq: seq2, Key: "tail", Wait: 5, UnixNanos: 50})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open("wal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	stats, err := w2.Replay(func(r Record) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.MaxSeq != want[len(want)-1].Seq {
		t.Fatalf("MaxSeq %d, want %d", stats.MaxSeq, want[len(want)-1].Seq)
	}
}

// TestAppendBatchMatchesIndividualAppends: the on-log effect of AppendBatch
// is identical to appending the same entries one at a time — same sequence
// numbers, same records at replay. Batching is a performance construct, not
// a semantic one.
func TestAppendBatchMatchesIndividualAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := make([]Entry, 100)
	for i := range entries {
		entries[i] = Entry{
			Key:       fmt.Sprintf("q%d", rng.Intn(4)),
			Wait:      rng.ExpFloat64() * 500,
			UnixNanos: int64(i),
		}
	}

	replayAll := func(fs *MemFS, feed func(w *WAL)) []Record {
		w, err := Open("wal", Options{FS: fs, Mode: SyncEachRecord, SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Replay(nil); err != nil {
			t.Fatal(err)
		}
		feed(w)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, err := Open("wal", Options{FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		var recs []Record
		if _, err := w2.Replay(func(r Record) { recs = append(recs, r) }); err != nil {
			t.Fatal(err)
		}
		return recs
	}

	single := replayAll(NewMemFS(), func(w *WAL) {
		for _, e := range entries {
			if _, err := w.Append(e.Key, e.Wait, e.UnixNanos); err != nil {
				t.Fatal(err)
			}
		}
	})
	batched := replayAll(NewMemFS(), func(w *WAL) {
		// Random batch sizes covering 1..all-remaining.
		for i := 0; i < len(entries); {
			n := 1 + rng.Intn(len(entries)-i)
			if _, err := w.AppendBatch(entries[i : i+n]); err != nil {
				t.Fatal(err)
			}
			i += n
		}
	})

	if len(single) != len(batched) {
		t.Fatalf("single path replayed %d, batched %d", len(single), len(batched))
	}
	for i := range single {
		if single[i] != batched[i] {
			t.Fatalf("record %d diverges: single %+v, batched %+v", i, single[i], batched[i])
		}
	}
}

// TestAppendBatchRotation: a batch that pushes the active segment past
// SegmentBytes triggers rotation after the batch, and nothing is lost
// across the boundary.
func TestAppendBatchRotation(t *testing.T) {
	fs := NewMemFS()
	w, err := Open("wal", Options{FS: fs, Mode: SyncEachRecord, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	const total = 60
	for i := 0; i < total; i += 10 {
		batch := make([]Entry, 10)
		for j := range batch {
			batch[j] = Entry{Key: "q", Wait: float64(i + j)}
		}
		if _, err := w.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open("wal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	var waits []float64
	stats, err := w2.Replay(func(r Record) { waits = append(waits, r.Wait) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments < 2 {
		t.Fatalf("expected batches to rotate across segments, got %d segment(s)", stats.Segments)
	}
	if len(waits) != total {
		t.Fatalf("recovered %d records, want %d", len(waits), total)
	}
	for i, wt := range waits {
		if wt != float64(i) {
			t.Fatalf("record %d has wait %g, want %d", i, wt, i)
		}
	}
}

// TestAppendBatchValidation: an empty batch is a no-op, and an oversized
// key rejects the whole batch before any sequence number is consumed.
func TestAppendBatchValidation(t *testing.T) {
	fs := NewMemFS()
	w, err := Open("wal", Options{FS: fs, Mode: SyncEachRecord})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}

	if first, err := w.AppendBatch(nil); err != nil || first != 0 {
		t.Fatalf("empty batch: (%d, %v), want (0, nil)", first, err)
	}

	before, err := w.Append("q", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	long := make([]byte, MaxKeyLen+1)
	bad := []Entry{{Key: "fine", Wait: 1}, {Key: string(long), Wait: 2}}
	if _, err := w.AppendBatch(bad); err == nil {
		t.Fatal("oversized key in batch accepted")
	}
	after, err := w.Append("q", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after != before+1 {
		t.Fatalf("rejected batch consumed sequence numbers: %d then %d", before, after)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open("wal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w2.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 {
		t.Fatalf("replayed %d records, want 2 (rejected batch wrote nothing)", stats.Records)
	}
}

// slowSyncFS wraps an FS, counting Sync calls and making each one slow, so
// concurrent committers pile up behind an in-flight fsync the way they
// would behind a real disk.
type slowSyncFS struct {
	FS
	delay time.Duration
	mu    sync.Mutex
	syncs int
}

func (f *slowSyncFS) OpenAppend(name string) (File, error) {
	file, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &slowSyncFile{File: file, fs: f}, nil
}

func (f *slowSyncFS) syncCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

type slowSyncFile struct {
	File
	fs *slowSyncFS
}

func (h *slowSyncFile) Sync() error {
	time.Sleep(h.fs.delay)
	h.fs.mu.Lock()
	h.fs.syncs++
	h.fs.mu.Unlock()
	return h.File.Sync()
}

// TestGroupCommitCoalesces is the group-commit contract under concurrency:
// with GroupCommit enabled and sync=always semantics, N goroutines each
// acking every append must (a) recover every acked record exactly once
// after a clean close, and (b) have issued far fewer fsyncs than commits —
// the leader/follower path amortized the sync across goroutines.
func TestGroupCommitCoalesces(t *testing.T) {
	fs := &slowSyncFS{FS: NewMemFS(), delay: 200 * time.Microsecond}
	w, err := Open("wal", Options{FS: fs, Mode: SyncEachRecord, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const commitsPer = 40
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		acked = make(map[uint64]float64)
	)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < commitsPer; i++ {
				wait := float64(g*1000 + i)
				if i%3 == 0 {
					first, err := w.AppendBatch([]Entry{
						{Key: "a", Wait: wait},
						{Key: "b", Wait: wait + 0.5},
					})
					if err != nil {
						t.Errorf("goroutine %d batch %d: %v", g, i, err)
						return
					}
					mu.Lock()
					acked[first] = wait
					acked[first+1] = wait + 0.5
					mu.Unlock()
				} else {
					seq, err := w.Append("q", wait, 0)
					if err != nil {
						t.Errorf("goroutine %d append %d: %v", g, i, err)
						return
					}
					mu.Lock()
					acked[seq] = wait
					mu.Unlock()
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		return
	}
	syncs := fs.syncCount()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	const commits = goroutines * commitsPer
	if syncs >= commits {
		t.Fatalf("group commit coalesced nothing: %d fsyncs for %d commits", syncs, commits)
	}
	t.Logf("group commit: %d fsyncs served %d commits (%d records)", syncs, commits, len(acked))

	w2, err := Open("wal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[uint64]float64)
	stats, err := w2.Replay(func(r Record) {
		if _, dup := got[r.Seq]; dup {
			t.Fatalf("sequence %d replayed twice", r.Seq)
		}
		got[r.Seq] = r.Wait
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(acked) {
		t.Fatalf("replayed %d records, acked %d", stats.Records, len(acked))
	}
	for seq, wait := range acked {
		if gw, ok := got[seq]; !ok || gw != wait {
			t.Fatalf("acked seq %d: recovered (%g, %v), want %g", seq, gw, ok, wait)
		}
	}
}

// TestGroupCommitSyncFailureHeals: a failed group commit must refuse the
// ack (never report durable what the disk rejected), and the next append
// after the fault clears must succeed on a fresh segment without any
// background probe.
func TestGroupCommitSyncFailureHeals(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	w, err := Open("wal", Options{FS: fs, Mode: SyncEachRecord, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("q", 1, 0); err != nil {
		t.Fatal(err)
	}

	bang := errors.New("sync exploded")
	fs.FailSyncs(bang)
	if _, err := w.Append("q", 2, 0); !errors.Is(err, bang) {
		t.Fatalf("append during sync failure: err = %v, want %v", err, bang)
	}
	if _, err := w.AppendBatch([]Entry{{Key: "q", Wait: 3}}); !errors.Is(err, bang) {
		t.Fatalf("batch during sync failure: err = %v, want %v", err, bang)
	}

	fs.Clear()
	seq, err := w.Append("q", 4, 0)
	if err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open("wal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if _, err := w2.Replay(func(r Record) { seqs = append(seqs, r.Seq) }); err != nil {
		t.Fatal(err)
	}
	// The acked records (wait 1 and wait 4) must be there; the refused ones
	// may or may not have reached the in-memory buffer, but their sequence
	// numbers were consumed, so the healed append's seq sits above them.
	found := false
	for _, s := range seqs {
		if s == seq {
			found = true
		}
	}
	if !found {
		t.Fatalf("healed append seq %d missing from replay %v", seq, seqs)
	}
	if len(seqs) == 0 || seqs[0] != 1 {
		t.Fatalf("first acked record missing: %v", seqs)
	}
}
