package wal

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestCrashRecoveryProperty is the package's core guarantee, checked as a
// property over simulated power cuts at arbitrary byte offsets: every
// record the sync policy acknowledged as durable is recovered, recovery is
// always a prefix of the appended sequence (no reordering, no phantom
// records), and corrupt or torn tails are dropped silently — replay never
// fails. Trials mix sync policies, segment sizes, rotation points, and
// mid-append power cuts.
func TestCrashRecoveryProperty(t *testing.T) {
	const trials = 150
	keys := []string{"normal", "normal/17-64", "high", "üñïçø∂é"}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%03d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			fs := NewMemFS()
			dir := "wal"

			perRecordSync := trial%2 == 0
			opt := Options{FS: fs, SegmentBytes: int64(128 + rng.Intn(2048))}
			if perRecordSync {
				opt.Mode = SyncEachRecord
				// Same durability contract either way; some trials route the
				// single-threaded workload through the group-commit path.
				opt.GroupCommit = trial%4 == 0
			} else {
				opt.Mode = SyncOff
			}
			w, err := Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Replay(nil); err != nil {
				t.Fatal(err)
			}

			// Append a random workload, tracking the full appended sequence
			// and which prefix the policy has made durable ("acked").
			n := 20 + rng.Intn(200)
			appended := make([]Record, 0, n)
			acked := 0
			for i := 0; i < n; {
				if rng.Intn(3) == 0 {
					// Batched append: one ack covers the whole batch, so the
					// later power cut can land inside a batch's frame run.
					m := 1 + rng.Intn(8)
					batch := make([]Entry, m)
					for j := range batch {
						batch[j] = Entry{
							Key:       keys[rng.Intn(len(keys))],
							Wait:      rng.ExpFloat64() * 600,
							UnixNanos: int64(i + j),
						}
					}
					first, err := w.AppendBatch(batch)
					if err != nil {
						t.Fatalf("append batch at %d: %v", i, err)
					}
					for j, e := range batch {
						appended = append(appended, Record{Seq: first + uint64(j), Key: e.Key, Wait: e.Wait, UnixNanos: e.UnixNanos})
					}
					i += m
				} else {
					key := keys[rng.Intn(len(keys))]
					wait := rng.ExpFloat64() * 600
					seq, err := w.Append(key, wait, int64(i))
					if err != nil {
						t.Fatalf("append %d: %v", i, err)
					}
					appended = append(appended, Record{Seq: seq, Key: key, Wait: wait, UnixNanos: int64(i)})
					i++
				}
				if perRecordSync {
					acked = len(appended)
				}
				if rng.Intn(40) == 0 {
					if _, err := w.Rotate(); err != nil {
						t.Fatal(err)
					}
					// Rotation syncs whatever was buffered.
					acked = len(appended)
				}
				if !perRecordSync && rng.Intn(30) == 0 {
					if err := w.Sync(); err != nil {
						t.Fatal(err)
					}
					acked = len(appended)
				}
			}

			// Sometimes the power dies mid-append: a partial frame, pure
			// garbage, or an in-flight (never acked) batch lands past the
			// last durable byte.
			if rng.Intn(2) == 0 {
				base := uint64(len(appended))
				var torn []byte
				switch rng.Intn(3) {
				case 0:
					frame := appendRecord(nil, Record{Seq: base + 1, Key: "q", Wait: 1, UnixNanos: 0})
					torn = frame[:1+rng.Intn(len(frame)-1)]
				case 1:
					torn = make([]byte, 1+rng.Intn(64))
					rng.Read(torn)
				default:
					// An unacked AppendBatch caught by the power cut: its
					// complete frames reach the file unsynced, then Crash
					// tears at an arbitrary byte — typically mid-batch, often
					// mid-frame. Leading whole frames are legitimately
					// recoverable (appended, never acked); the torn one must
					// truncate at the record boundary before it.
					k := 2 + rng.Intn(4)
					for j := 0; j < k; j++ {
						rec := Record{
							Seq:       base + 1 + uint64(j),
							Key:       keys[rng.Intn(len(keys))],
							Wait:      rng.ExpFloat64() * 600,
							UnixNanos: int64(n + j),
						}
						torn = appendRecord(torn, rec)
						appended = append(appended, rec)
					}
				}
				indices, _ := listSegments(fs, dir)
				fs.TornAppend(filepath.Join(dir, segName(indices[len(indices)-1])), torn)
			}

			// Power cut. The old WAL handle is dead (MemFS enforces it).
			fs.Crash(rng)

			w2, err := Open(dir, Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			var recovered []Record
			stats, err := w2.Replay(func(r Record) { recovered = append(recovered, r) })
			if err != nil {
				t.Fatalf("replay after crash must never fail, got: %v", err)
			}

			// (1) Everything acked survived.
			if len(recovered) < acked {
				t.Fatalf("recovered %d records, but %d were acked durable (stats %+v)",
					len(recovered), acked, stats)
			}
			// (2) Recovery is an exact prefix of what was appended.
			if len(recovered) > len(appended) {
				t.Fatalf("recovered %d records, only %d were ever appended", len(recovered), len(appended))
			}
			for i, got := range recovered {
				if got != appended[i] {
					t.Fatalf("recovered[%d] = %+v, appended[%d] = %+v", i, got, i, appended[i])
				}
			}
			// (3) Post-crash appends resume above every recovered sequence.
			seq, err := w2.Append("post", 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if seq <= stats.MaxSeq {
				t.Fatalf("post-crash seq %d not above recovered max %d", seq, stats.MaxSeq)
			}
		})
	}
}

// TestCrashDuringCompaction exercises the snapshot-compaction window:
// segments removed below a cut must never take unsnapshotted records with
// them, whatever the crash timing. The "snapshot" here is the record count
// at the cut, which is exactly what qbets persists (per-stream sequence
// numbers).
func TestCrashDuringCompaction(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		fs := NewMemFS()
		w, err := Open("wal", Options{FS: fs, Mode: SyncEachRecord, SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Replay(nil); err != nil {
			t.Fatal(err)
		}
		total := 0
		appendSome := func(k int) {
			for i := 0; i < k; i++ {
				if _, err := w.Append("q", float64(total), 0); err != nil {
					t.Fatal(err)
				}
				total++
			}
		}
		appendSome(30 + rng.Intn(50))
		cut, err := w.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		snapshotCount := total // what a snapshot taken here would cover
		appendSome(rng.Intn(40))
		if err := w.RemoveSegmentsBelow(cut); err != nil {
			t.Fatal(err)
		}
		appendSome(rng.Intn(20))
		fs.Crash(rng)

		w2, err := Open("wal", Options{FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		var waits []float64
		_, err = w2.Replay(func(r Record) { waits = append(waits, r.Wait) })
		if err != nil {
			t.Fatal(err)
		}
		// Snapshot (first snapshotCount records) + surviving log must cover
		// every acked record exactly once: the log holds a contiguous run
		// from snapshotCount to total-1.
		if len(waits) != total-snapshotCount {
			t.Fatalf("trial %d: log holds %d records, want %d (total %d, snapshot %d)",
				trial, len(waits), total-snapshotCount, total, snapshotCount)
		}
		for i, wgot := range waits {
			if wgot != float64(snapshotCount+i) {
				t.Fatalf("trial %d: log[%d] = %g, want %g", trial, i, wgot, float64(snapshotCount+i))
			}
		}
	}
}
