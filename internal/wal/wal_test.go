package wal

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"path/filepath"
	"testing"
	"time"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Key: "normal/1-4", Wait: 123.5, UnixNanos: 1700000000000000000},
		{Seq: 2, Key: "", Wait: 0, UnixNanos: 0},
		{Seq: 1 << 60, Key: "üñïçø∂é", Wait: math.MaxFloat64, UnixNanos: -5},
		{Seq: 3, Key: string(make([]byte, MaxKeyLen)), Wait: 1e-300, UnixNanos: 42},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	var scratch []byte
	for i, want := range recs {
		got, s, _, err := readRecord(br, scratch)
		scratch = s
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, _, _, err := readRecord(br, scratch); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestRecordDetectsCorruption(t *testing.T) {
	base := appendRecord(nil, Record{Seq: 9, Key: "q", Wait: 7, UnixNanos: 1})
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x40
		_, _, _, err := readRecord(bufio.NewReader(bytes.NewReader(mut)), nil)
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
	// Truncation at every prefix length must also be rejected.
	for n := 0; n < len(base); n++ {
		_, _, _, err := readRecord(bufio.NewReader(bytes.NewReader(base[:n])), nil)
		if n == 0 {
			if err != io.EOF {
				t.Fatalf("empty input: want io.EOF, got %v", err)
			}
		} else if err == nil {
			t.Fatalf("truncation at %d bytes went undetected", n)
		}
	}
}

func mustOpen(t *testing.T, dir string, opt Options) *WAL {
	t.Helper()
	w, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w := mustOpen(t, dir, Options{Mode: SyncEachRecord})
	keys := []string{"normal", "high/65+", "low"}
	var want []Record
	for i := 0; i < 257; i++ {
		key := keys[i%len(keys)]
		wait := float64(i) * 1.5
		seq, err := w.Append(key, wait, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, Record{Seq: seq, Key: key, Wait: wait, UnixNanos: int64(i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	stats, err := w2.Replay(func(r Record) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(want) || stats.Truncations != 0 || stats.DroppedBytes != 0 {
		t.Fatalf("stats %+v, want %d clean records", stats, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Appends resume past the replayed sequence numbers.
	seq, err := w2.Append("normal", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq != stats.MaxSeq+1 {
		t.Fatalf("post-replay seq %d, want %d", seq, stats.MaxSeq+1)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	// Tiny segments force rotation every few records.
	w := mustOpen(t, dir, Options{SegmentBytes: 256, Mode: SyncOff})
	for i := 0; i < 100; i++ {
		if _, err := w.Append("q", float64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	indices, err := listSegments(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(indices) < 4 {
		t.Fatalf("expected several segments, got %d", len(indices))
	}

	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append("q", float64(100+i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.RemoveSegmentsBelow(cut); err != nil {
		t.Fatal(err)
	}
	indices, err = listSegments(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range indices {
		if idx < cut {
			t.Fatalf("segment %d survived compaction below %d", idx, cut)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the post-cut records remain.
	w2, _ := Open(dir, Options{})
	var got []float64
	stats, err := w2.Replay(func(r Record) { got = append(got, r.Wait) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 10 {
		t.Fatalf("replayed %d records after compaction, want 10", stats.Records)
	}
	for i, wgot := range got {
		if wgot != float64(100+i) {
			t.Fatalf("record %d: wait %g, want %g", i, wgot, float64(100+i))
		}
	}
}

func TestReplayTruncatesCorruptTail(t *testing.T) {
	fs := NewMemFS()
	dir := "wal"
	w, err := Open(dir, Options{FS: fs, Mode: SyncEachRecord})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append("q", float64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	// A torn half-frame at the tail, as if the power died mid-append.
	frame := appendRecord(nil, Record{Seq: 21, Key: "q", Wait: 99, UnixNanos: 0})
	fs.TornAppend(filepath.Join(dir, segName(1)), frame[:len(frame)/2])

	w2, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w2.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 20 {
		t.Fatalf("recovered %d records, want 20", stats.Records)
	}
	if stats.Truncations != 1 || stats.DroppedBytes == 0 {
		t.Fatalf("expected one truncated tail with dropped bytes, got %+v", stats)
	}
}

func TestReplayToleratesCorruptMiddleSegment(t *testing.T) {
	fs := NewMemFS()
	dir := "wal"
	w, _ := Open(dir, Options{FS: fs, Mode: SyncEachRecord, SegmentBytes: 200})
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := w.Append("q", float64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	indices, _ := listSegments(fs, dir)
	if len(indices) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(indices))
	}
	// Smash a byte in the middle of the second segment.
	mid := filepath.Join(dir, segName(indices[1]))
	fs.mu.Lock()
	f := fs.files[mid]
	f.data[len(f.data)/2] ^= 0xFF
	fs.mu.Unlock()

	w2, _ := Open(dir, Options{FS: fs})
	stats, err := w2.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncations != 1 {
		t.Fatalf("want exactly one truncation, got %+v", stats)
	}
	// Records before the smashed byte and in the other segments survive.
	if stats.Records <= 10 || stats.Records >= 30 {
		t.Fatalf("recovered %d records, expected a partial but substantial recovery", stats.Records)
	}
}

func TestAppendFailurePoisonsSegment(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	w, err := Open("wal", Options{FS: fs, Mode: SyncEachRecord})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	var acked []uint64
	for i := 0; i < 5; i++ {
		seq, err := w.Append("q", float64(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, seq)
	}
	// Short write then hard failure: the disk is "full".
	bang := errors.New("disk full")
	fs.FailWritesAfter(0, bang, true)
	if _, err := w.Append("q", 99, 0); err == nil {
		t.Fatal("append succeeded under write fault")
	}
	if _, err := w.Append("q", 99, 0); err == nil {
		t.Fatal("append succeeded while fault armed")
	}
	// Disk recovers; appends must resume (on a fresh segment, past the
	// poisoned tail) and be recoverable.
	fs.Clear()
	seq, err := w.Append("q", 7, 0)
	if err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	acked = append(acked, seq)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, _ := Open("wal", Options{FS: fs})
	var got []uint64
	stats, err := w2.Replay(func(r Record) { got = append(got, r.Seq) })
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, len(got))
	for _, s := range got {
		if seen[s] {
			t.Fatalf("sequence %d replayed twice", s)
		}
		seen[s] = true
	}
	for _, s := range acked {
		if !seen[s] {
			t.Fatalf("acked seq %d lost (recovered %v, stats %+v)", s, got, stats)
		}
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	fs := NewMemFS()
	w, _ := Open("wal", Options{FS: fs, Mode: SyncInterval, Interval: time.Hour})
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append("q", float64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing synced yet (interval far away): a crash now loses the lot.
	name := filepath.Join("wal", segName(1))
	fs.mu.Lock()
	synced := fs.files[name].synced
	fs.mu.Unlock()
	if synced != 0 {
		t.Fatalf("interval mode synced %d bytes before the interval elapsed", synced)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	synced = fs.files[name].synced
	written := len(fs.files[name].data)
	fs.mu.Unlock()
	if synced != written || written == 0 {
		t.Fatalf("explicit Sync left %d of %d bytes unsynced", written-synced, written)
	}
}

// TestSyncIntervalStickyFailure: a failed background sync must not stay
// invisible — the next Append returns the error (stickily), so the service
// degrades to read-only instead of acking records into a log that is
// silently dropping them. Once the disk recovers, the per-interval probe
// clears the error and appends resume on a fresh segment.
func TestSyncIntervalStickyFailure(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	w, err := Open("wal", Options{FS: fs, Mode: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("q", 1, 0); err != nil {
		t.Fatal(err)
	}
	bang := errors.New("sync: input/output error")
	fs.FailSyncs(bang)
	// The ticker's next sync fails; from then on Append must refuse.
	deadline := time.Now().Add(5 * time.Second)
	var appendErr error
	for time.Now().Before(deadline) {
		if _, appendErr = w.Append("q", 2, 0); appendErr != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(appendErr, bang) {
		t.Fatalf("append after failed background sync: err = %v, want wrapped %v", appendErr, bang)
	}
	if err := w.Sync(); !errors.Is(err, bang) {
		t.Fatalf("explicit Sync hides pending failure: %v", err)
	}
	// While the fault persists the error stays sticky.
	if _, err := w.Append("q", 3, 0); !errors.Is(err, bang) {
		t.Fatalf("sticky error cleared without a successful sync: %v", err)
	}
	// Disk recovers: the probe clears the error within an interval or two
	// and appends become durable again.
	fs.Clear()
	var seq uint64
	for time.Now().Before(deadline) {
		if seq, err = w.Append("q", 4, 0); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatalf("append never recovered after fault cleared: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, _ := Open("wal", Options{FS: fs})
	found := false
	if _, err := w2.Replay(func(r Record) { found = found || r.Seq == seq }); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("post-recovery record %d missing from replay", seq)
	}
}

func TestAppendBeforeReplayRejected(t *testing.T) {
	w, err := Open("wal", Options{FS: NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("q", 1, 0); !errors.Is(err, errNotReplayed) {
		t.Fatalf("want errNotReplayed, got %v", err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); !errors.Is(err, errReplayTwice) {
		t.Fatalf("want errReplayTwice, got %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("q", 1, 0); !errors.Is(err, errClosed) {
		t.Fatalf("want errClosed after Close, got %v", err)
	}
}
