package stats

import (
	"math"
	"testing"
)

func TestStudentTSymmetry(t *testing.T) {
	st := StudentT{DF: 7}
	for _, x := range []float64{0.3, 1.5, 4} {
		if got := st.CDF(x) + st.CDF(-x); !almostEqual(got, 1, 1e-10) {
			t.Errorf("CDF(%g)+CDF(-%g) = %g", x, x, got)
		}
	}
	if st.CDF(0) != 0.5 {
		t.Error("CDF(0) != 0.5")
	}
}

func TestStudentTKnownQuantiles(t *testing.T) {
	// Classic t-table values.
	cases := []struct {
		df   float64
		p    float64
		want float64
	}{
		{1, 0.975, 12.706},
		{5, 0.95, 2.015},
		{10, 0.99, 2.764},
		{30, 0.975, 2.042},
		{120, 0.95, 1.658},
	}
	for _, c := range cases {
		got := StudentT{DF: c.df}.Quantile(c.p)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("t(%g).Quantile(%g) = %.4f, want %.3f", c.df, c.p, got, c.want)
		}
	}
}

func TestStudentTConvergesToNormal(t *testing.T) {
	st := StudentT{DF: 1e6}
	for _, p := range []float64{0.9, 0.95, 0.99} {
		if got, want := st.Quantile(p), StdNormalQuantile(p); math.Abs(got-want) > 1e-4 {
			t.Errorf("t quantile %g = %g, normal %g", p, got, want)
		}
	}
	for _, x := range []float64{-2, 0.5, 1.96} {
		if got, want := st.CDF(x), StdNormal.CDF(x); math.Abs(got-want) > 1e-5 {
			t.Errorf("t CDF %g = %g, normal %g", x, got, want)
		}
	}
}

func TestStudentTPDFIntegratesToCDF(t *testing.T) {
	st := StudentT{DF: 4}
	lo, hi := -2.0, 3.0
	const steps = 40000
	h := (hi - lo) / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * st.PDF(lo+float64(i)*h)
	}
	sum *= h
	if want := st.CDF(hi) - st.CDF(lo); !almostEqual(sum, want, 1e-6) {
		t.Errorf("integral %g, want %g", sum, want)
	}
}

func TestChiSquaredKnownValues(t *testing.T) {
	// Median of chi2 with k df is about k(1-2/(9k))^3.
	for _, df := range []float64{1, 4, 10, 100} {
		c := ChiSquared{DF: df}
		med := c.QuantileApprox(0.5)
		got := c.CDF(med)
		if math.Abs(got-0.5) > 0.02 {
			t.Errorf("chi2(%g) CDF(approx median) = %g", df, got)
		}
	}
	if got := (ChiSquared{DF: 3}).CDF(0); got != 0 {
		t.Errorf("CDF(0) = %g", got)
	}
}

func TestChiSquaredLogPDFIntegrates(t *testing.T) {
	c := ChiSquared{DF: 5}
	lo, hi := 0.01, 20.0
	const steps = 40000
	h := (hi - lo) / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * math.Exp(c.LogPDF(lo+float64(i)*h))
	}
	sum *= h
	if want := c.CDF(hi) - c.CDF(lo); !almostEqual(sum, want, 1e-5) {
		t.Errorf("integral %g, want %g", sum, want)
	}
}
