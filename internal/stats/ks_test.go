package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSStatisticExactSmallCase(t *testing.T) {
	// Data {0.25, 0.75} against U[0,1]: ECDF jumps at .25 (0→.5) and .75
	// (.5→1). D = max(|.25-0|, |.5-.25|, |.75-.5|, |1-.75|) = 0.25.
	d := KSStatistic([]float64{0.75, 0.25}, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("D = %g, want 0.25", d)
	}
}

func TestKSStatisticGoodAndBadFits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	// Correct CDF: D small, p large.
	d := KSStatistic(data, StdNormal.CDF)
	p := KSPValue(d, n)
	if d > 0.03 {
		t.Errorf("D = %g for the true distribution", d)
	}
	if p < 0.05 {
		t.Errorf("p = %g should not reject the true distribution", p)
	}
	// Wrong CDF (shifted): D large, p ~ 0.
	dBad := KSStatistic(data, Normal{Mu: 1, Sigma: 1}.CDF)
	pBad := KSPValue(dBad, n)
	if dBad < 0.3 {
		t.Errorf("D = %g for a shifted distribution", dBad)
	}
	if pBad > 1e-6 {
		t.Errorf("p = %g should reject decisively", pBad)
	}
}

func TestKSPValueEdges(t *testing.T) {
	if KSPValue(0, 100) != 1 {
		t.Error("D=0 -> p=1")
	}
	if KSPValue(1, 100) != 0 {
		t.Error("D=1 -> p=0")
	}
	if !math.IsNaN(KSPValue(math.NaN(), 100)) {
		t.Error("NaN D")
	}
	if !math.IsNaN(KSStatistic(nil, StdNormal.CDF)) {
		t.Error("empty data")
	}
	// Monotone: bigger D, smaller p.
	prev := 1.1
	for _, d := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		p := KSPValue(d, 200)
		if p > prev {
			t.Errorf("p not monotone at D=%g", d)
		}
		prev = p
	}
}

func TestKSPValueCriticalValue(t *testing.T) {
	// Classic large-sample critical value: D = 1.358/sqrt(n) has p ~ 0.05.
	n := 10000
	d := 1.358 / math.Sqrt(float64(n))
	p := KSPValue(d, n)
	if math.Abs(p-0.05) > 0.01 {
		t.Errorf("p at the 5%% critical value = %g", p)
	}
}

func TestKSTestLogNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// True log-normal (kept above the 1-second clamp): good fit.
	good := make([]float64, 4000)
	for i := range good {
		good[i] = math.Exp(5 + rng.NormFloat64())
	}
	d, p := KSTestLogNormal(good)
	if d > 0.03 || p < 0.01 {
		t.Errorf("true log-normal rejected: D=%g p=%g", d, p)
	}
	// Bimodal mixture (the episode shape): decisively rejected.
	bad := make([]float64, 4000)
	for i := range bad {
		if i%10 == 0 {
			bad[i] = math.Exp(12 + 0.1*rng.NormFloat64())
		} else {
			bad[i] = math.Exp(3 + 0.1*rng.NormFloat64())
		}
	}
	dB, pB := KSTestLogNormal(bad)
	if dB < 0.1 || pB > 1e-6 {
		t.Errorf("bimodal accepted: D=%g p=%g", dB, pB)
	}
	// Degenerate inputs.
	if d, _ := KSTestLogNormal([]float64{1}); !math.IsNaN(d) {
		t.Error("single point should be NaN")
	}
	if _, p := KSTestLogNormal([]float64{5, 5, 5}); p != 0 {
		t.Error("constant data is never log-normal")
	}
}
