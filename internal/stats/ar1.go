package stats

import (
	"math"
	"math/rand"
)

// AR1LogNormal generates stationary log-normal series with first-order
// autocorrelation, the process the paper's Monte Carlo uses to calibrate
// its "rare event" run-length thresholds (Section 4.1). The log of the
// series follows a Gaussian AR(1):
//
//	y_t = Mu + Phi·(y_{t-1} − Mu) + sqrt(1−Phi²)·Sigma·ε_t,  x_t = exp(y_t)
//
// so the log-series has stationary mean Mu, stationary standard deviation
// Sigma, and lag-1 autocorrelation Phi. The raw (exponentiated) series has a
// somewhat smaller lag-1 autocorrelation; internal/mc measures it
// empirically when building the lookup table.
type AR1LogNormal struct {
	Phi   float64 // log-space lag-1 autocorrelation, in [0, 1)
	Mu    float64 // log-space stationary mean
	Sigma float64 // log-space stationary standard deviation
}

// Generate appends n values of the process to dst and returns the extended
// slice. The chain is started from its stationary distribution.
func (a AR1LogNormal) Generate(rng *rand.Rand, dst []float64, n int) []float64 {
	innov := a.Sigma * math.Sqrt(1-a.Phi*a.Phi)
	y := a.Mu + a.Sigma*rng.NormFloat64()
	for i := 0; i < n; i++ {
		dst = append(dst, math.Exp(y))
		y = a.Mu + a.Phi*(y-a.Mu) + innov*rng.NormFloat64()
	}
	return dst
}

// Quantile returns the q quantile of the stationary marginal distribution
// (a plain log-normal; the AR dependence does not change the marginal).
func (a AR1LogNormal) Quantile(q float64) float64 {
	return LogNormal{Mu: a.Mu, Sigma: a.Sigma}.Quantile(q)
}
