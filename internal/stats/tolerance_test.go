package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestToleranceFactorKnownValues(t *testing.T) {
	// Published one-sided (q=0.95, C=0.95) normal tolerance factors
	// (Guttman's K'; also NIST/ISO 16269-6 tables).
	cases := []struct {
		n    int
		want float64
	}{
		{10, 2.911},
		{15, 2.566},
		{20, 2.396},
		{30, 2.220},
		{50, 2.065},
		{100, 1.927},
	}
	for _, c := range cases {
		got := ToleranceFactorExact(c.n, 0.95, 0.95)
		if math.Abs(got-c.want) > 0.005 {
			t.Errorf("K(n=%d) = %.4f, want %.3f", c.n, got, c.want)
		}
	}
}

func TestToleranceFactorApproxMatchesExact(t *testing.T) {
	for _, n := range []int{20, 59, 120, 300, 500} {
		for _, q := range []float64{0.9, 0.95} {
			exact := ToleranceFactorExact(n, q, 0.95)
			approx := ToleranceFactorApprox(n, q, 0.95)
			if rel := math.Abs(exact-approx) / exact; rel > 0.01 {
				t.Errorf("n=%d q=%g: exact %.4f approx %.4f (rel %.3g)", n, q, exact, approx, rel)
			}
		}
	}
}

func TestToleranceFactorConvergesToZ(t *testing.T) {
	// As n grows, the factor converges to the plain normal quantile.
	k := ToleranceFactor(5_000_000, 0.95, 0.95)
	z := StdNormalQuantile(0.95)
	if math.Abs(k-z) > 0.005 {
		t.Errorf("K(n=5e6) = %g, want near %g", k, z)
	}
	// And it decreases in n.
	prev := math.Inf(1)
	for _, n := range []int{5, 10, 50, 500, 5000} {
		k := ToleranceFactor(n, 0.95, 0.95)
		if k >= prev {
			t.Errorf("K not decreasing at n=%d: %g >= %g", n, k, prev)
		}
		prev = k
	}
}

func TestToleranceFactorInvalidInputs(t *testing.T) {
	if !math.IsNaN(ToleranceFactorExact(1, 0.95, 0.95)) {
		t.Error("n=1 should be NaN")
	}
	if !math.IsNaN(ToleranceFactorApprox(10, 0, 0.95)) {
		t.Error("q=0 should be NaN")
	}
	if !math.IsNaN(ToleranceFactorApprox(10, 0.95, 1)) {
		t.Error("c=1 should be NaN")
	}
}

func TestUpperToleranceBoundCoverage(t *testing.T) {
	// The defining property: across repeated samples of size n from a
	// normal population, the bound mean + K·sd exceeds the true q quantile
	// in about a fraction C of samples.
	const (
		n      = 30
		trials = 4000
		q, c   = 0.9, 0.9
	)
	trueQ := StdNormalQuantile(q)
	rng := rand.New(rand.NewSource(9))
	covered := 0
	for i := 0; i < trials; i++ {
		var rm RunningMoments
		for j := 0; j < n; j++ {
			rm.Add(rng.NormFloat64())
		}
		if NormalUpperToleranceBound(rm.Mean(), rm.StdDev(), n, q, c) >= trueQ {
			covered++
		}
	}
	frac := float64(covered) / trials
	// Binomial SE ~ 0.005; allow a generous band around 0.9.
	if frac < 0.88 || frac > 0.92 {
		t.Errorf("coverage = %.3f, want ~%.2f", frac, c)
	}
}

func TestLowerToleranceBoundCoverage(t *testing.T) {
	const (
		n      = 40
		trials = 3000
		q, c   = 0.25, 0.9
	)
	trueQ := StdNormalQuantile(q)
	rng := rand.New(rand.NewSource(10))
	covered := 0
	for i := 0; i < trials; i++ {
		var rm RunningMoments
		for j := 0; j < n; j++ {
			rm.Add(rng.NormFloat64())
		}
		if NormalLowerToleranceBound(rm.Mean(), rm.StdDev(), n, q, c) <= trueQ {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.88 || frac > 0.93 {
		t.Errorf("lower coverage = %.3f, want ~%.2f", frac, c)
	}
}

func TestRootFinders(t *testing.T) {
	// Roots of x^3 - 2x - 5 (classic Brent test): root near 2.0945515.
	f := func(x float64) float64 { return x*x*x - 2*x - 5 }
	const want = 2.0945514815423265
	if root, ok := Brent(f, 2, 3, 1e-12, 200); !ok || math.Abs(root-want) > 1e-9 {
		t.Errorf("Brent root = %.12g ok=%v", root, ok)
	}
	if root, ok := Bisect(f, 2, 3, 1e-10, 200); !ok || math.Abs(root-want) > 1e-8 {
		t.Errorf("Bisect root = %.12g ok=%v", root, ok)
	}
	// Non-bracketing interval fails.
	if _, ok := Brent(f, 3, 4, 1e-10, 100); ok {
		t.Error("Brent should fail without a bracket")
	}
	if _, ok := Bisect(f, 3, 4, 1e-10, 100); ok {
		t.Error("Bisect should fail without a bracket")
	}
	// Exact endpoints.
	g := func(x float64) float64 { return x }
	if root, ok := Brent(g, 0, 1, 1e-12, 100); !ok || root != 0 {
		t.Errorf("Brent endpoint root = %g", root)
	}
}

func TestAR1LogNormalStationaryStats(t *testing.T) {
	proc := AR1LogNormal{Phi: 0.6, Mu: 1, Sigma: 0.5}
	rng := rand.New(rand.NewSource(2))
	series := proc.Generate(rng, nil, 200000)
	logs := make([]float64, len(series))
	for i, v := range series {
		logs[i] = math.Log(v)
	}
	if got := Mean(logs); math.Abs(got-1) > 0.02 {
		t.Errorf("log mean = %g, want 1", got)
	}
	if got := StdDev(logs); math.Abs(got-0.5) > 0.02 {
		t.Errorf("log sd = %g, want 0.5", got)
	}
	if got := Autocorrelation(logs, 1); math.Abs(got-0.6) > 0.03 {
		t.Errorf("log ACF = %g, want 0.6", got)
	}
	// Marginal quantile matches the analytic log-normal quantile.
	sort.Float64s(series)
	q95 := QuantileSorted(series, 0.95)
	if want := proc.Quantile(0.95); math.Abs(q95-want)/want > 0.03 {
		t.Errorf("empirical q95 = %g, analytic %g", q95, want)
	}
}
