package stats

import (
	"math"
	"sync"
)

// Tolerance factors for normal populations: the K' machinery the paper's
// log-normal comparator uses (Guttman, "Statistical Tolerance Regions",
// Table 4.6). A one-sided upper tolerance bound x̄ + k·s covers at least a
// proportion q of a normal population with confidence C when
//
//	k = t'_{ν, δ}(C) / sqrt(n),  ν = n-1,  δ = z_q · sqrt(n)
//
// where t' is the noncentral t quantile. The book's tables are exactly this
// quantity; here it is computed rather than looked up.

// toleranceExactMaxN bounds the sample size for which the exact noncentral-t
// computation is used; beyond it the Natrella approximation is
// indistinguishable from exact (relative error < 1e-4) and far cheaper.
const toleranceExactMaxN = 500

// ToleranceFactorExact returns the exact one-sided normal tolerance factor
// for sample size n, covered proportion q, and confidence c. It requires
// n >= 2 and q, c in (0, 1); otherwise it returns NaN.
func ToleranceFactorExact(n int, q, c float64) float64 {
	if n < 2 || q <= 0 || q >= 1 || c <= 0 || c >= 1 {
		return math.NaN()
	}
	sqrtN := math.Sqrt(float64(n))
	nct := NoncentralT{DF: float64(n - 1), Delta: StdNormalQuantile(q) * sqrtN}
	return nct.Quantile(c) / sqrtN
}

// ToleranceFactorApprox returns the Natrella closed-form approximation to
// the one-sided normal tolerance factor:
//
//	a = 1 − z_c²/(2(n−1)),  b = z_q² − z_c²/n,  k ≈ (z_q + sqrt(z_q² − a·b))/a
//
// Accurate to a fraction of a percent for n ≳ 10 and asymptotically exact.
func ToleranceFactorApprox(n int, q, c float64) float64 {
	if n < 2 || q <= 0 || q >= 1 || c <= 0 || c >= 1 {
		return math.NaN()
	}
	zq := StdNormalQuantile(q)
	zc := StdNormalQuantile(c)
	a := 1 - zc*zc/(2*float64(n-1))
	b := zq*zq - zc*zc/float64(n)
	disc := zq*zq - a*b
	if disc < 0 {
		disc = 0
	}
	if a <= 0 {
		// Degenerate for very small n at high confidence: fall back to the
		// exact computation, which remains well defined.
		return ToleranceFactorExact(n, q, c)
	}
	return (zq + math.Sqrt(disc)) / a
}

// ToleranceFactor returns the one-sided normal tolerance factor, using the
// exact noncentral-t computation for small samples and the Natrella
// approximation for large ones. Exact values are memoized process-wide
// (they depend only on (n, q, c), and evaluation runs ask for the same
// factors for every queue).
func ToleranceFactor(n int, q, c float64) float64 {
	if n > toleranceExactMaxN {
		return ToleranceFactorApprox(n, q, c)
	}
	key := tolKey{n: n, q: q, c: c}
	if v, ok := tolCache.Load(key); ok {
		return v.(float64)
	}
	k := ToleranceFactorExact(n, q, c)
	tolCache.Store(key, k)
	return k
}

type tolKey struct {
	n    int
	q, c float64
}

var tolCache sync.Map

// NormalUpperToleranceBound returns the level-c upper confidence bound on
// the q quantile of a normal population, given the sample mean, the unbiased
// (n−1 denominator) sample standard deviation, and the sample size.
func NormalUpperToleranceBound(mean, sd float64, n int, q, c float64) float64 {
	return mean + ToleranceFactor(n, q, c)*sd
}

// NormalLowerToleranceBound returns the level-c lower confidence bound on
// the q quantile of a normal population. By symmetry it is
// mean − k(n, 1−q, c)·sd.
func NormalLowerToleranceBound(mean, sd float64, n int, q, c float64) float64 {
	return mean - ToleranceFactor(n, 1-q, c)*sd
}
