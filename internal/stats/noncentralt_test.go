package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNoncentralTReducesToCentral(t *testing.T) {
	for _, df := range []float64{3, 15, 80} {
		nct := NoncentralT{DF: df, Delta: 0}
		st := StudentT{DF: df}
		for _, x := range []float64{-2, -0.5, 0, 1, 3} {
			if got, want := nct.CDF(x), st.CDF(x); math.Abs(got-want) > 1e-6 {
				t.Errorf("df=%g x=%g: nct %g vs t %g", df, x, got, want)
			}
		}
	}
}

func TestNoncentralTMonotone(t *testing.T) {
	nct := NoncentralT{DF: 10, Delta: 2.5}
	prev := -1.0
	for x := -2.0; x < 12; x += 0.5 {
		v := nct.CDF(x)
		if v < prev-1e-12 {
			t.Fatalf("CDF not monotone at %g: %g < %g", x, v, prev)
		}
		prev = v
	}
	// Shifting delta up shifts the distribution right: CDF decreases.
	lo := NoncentralT{DF: 10, Delta: 1}.CDF(2)
	hi := NoncentralT{DF: 10, Delta: 3}.CDF(2)
	if hi >= lo {
		t.Errorf("CDF should decrease in delta: %g vs %g", lo, hi)
	}
}

func TestNoncentralTQuantileRoundTrip(t *testing.T) {
	for _, cfg := range []NoncentralT{
		{DF: 5, Delta: 1.2},
		{DF: 58, Delta: 12.6}, // the paper's n=59 tolerance-factor case
		{DF: 400, Delta: 33},
	} {
		for _, p := range []float64{0.05, 0.5, 0.95, 0.99} {
			x := cfg.Quantile(p)
			if got := cfg.CDF(x); math.Abs(got-p) > 1e-6 {
				t.Errorf("%+v roundtrip p=%g got %g", cfg, p, got)
			}
		}
	}
}

func TestNoncentralTAgainstMonteCarlo(t *testing.T) {
	// T = (Z + delta) / sqrt(W/df) with Z std normal, W chi-squared(df).
	nct := NoncentralT{DF: 8, Delta: 2}
	rng := rand.New(rand.NewSource(5))
	const n = 400000
	x := 3.0
	count := 0
	for i := 0; i < n; i++ {
		z := rng.NormFloat64() + nct.Delta
		w := 0.0
		for j := 0; j < 8; j++ {
			g := rng.NormFloat64()
			w += g * g
		}
		if z/math.Sqrt(w/nct.DF) <= x {
			count++
		}
	}
	mc := float64(count) / n
	got := nct.CDF(x)
	// MC standard error ~ sqrt(p(1-p)/n) ~ 8e-4; allow 4 sigma.
	if math.Abs(got-mc) > 4*8e-4 {
		t.Errorf("CDF(%g) = %g, Monte Carlo %g", x, got, mc)
	}
}

func TestNoncentralTEdges(t *testing.T) {
	nct := NoncentralT{DF: 6, Delta: 1}
	if nct.CDF(math.Inf(1)) != 1 || nct.CDF(math.Inf(-1)) != 0 {
		t.Error("infinite arguments")
	}
	if !math.IsNaN(nct.CDF(math.NaN())) {
		t.Error("NaN argument")
	}
	if !math.IsInf(nct.Quantile(0), -1) || !math.IsInf(nct.Quantile(1), 1) {
		t.Error("edge quantiles")
	}
}
