package stats

import "math"

// RunningMoments accumulates the count, mean, and variance of a stream in
// O(1) per observation using Welford's algorithm. The log-normal predictors
// refit every epoch over histories of up to hundreds of thousands of waits;
// recomputing moments from scratch each refit would be quadratic overall,
// so they maintain a RunningMoments instead.
type RunningMoments struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x.
func (r *RunningMoments) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Reset discards all state.
func (r *RunningMoments) Reset() {
	*r = RunningMoments{}
}

// N returns the number of observations.
func (r *RunningMoments) N() int { return r.n }

// Mean returns the running mean, or NaN if empty.
func (r *RunningMoments) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased (n−1) sample variance, or NaN for n < 2.
func (r *RunningMoments) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (r *RunningMoments) StdDev() float64 {
	return math.Sqrt(r.Variance())
}

// PopulationVariance returns the MLE (n denominator) variance, or NaN if
// empty.
func (r *RunningMoments) PopulationVariance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}
