package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceKnown(t *testing.T) {
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(data); got != 5 {
		t.Errorf("Mean = %g", got)
	}
	if got := PopulationVariance(data); got != 4 {
		t.Errorf("PopulationVariance = %g", got)
	}
	if got := Variance(data); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDev(data); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should be NaN")
	}
	min, max := MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax(nil) should be NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
}

func TestQuantileAgainstSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 1001)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	// With n = 1001, the p-quantile at p = k/1000 is exactly sorted[k].
	for _, k := range []int{0, 100, 500, 950, 1000} {
		p := float64(k) / 1000
		if got := Quantile(data, p); got != sorted[k] {
			t.Errorf("Quantile(%g) = %g, want %g", p, got, sorted[k])
		}
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	data := []float64{5, 1, 4}
	Quantile(data, 0.5)
	if data[0] != 5 || data[1] != 1 || data[2] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			data[i] = v
		}
		min, max := MinMax(data)
		q0 := Quantile(data, 0)
		q1 := Quantile(data, 1)
		qm := Quantile(data, 0.5)
		return q0 == min && q1 == max && qm >= min && qm <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A constant series has zero (defined) autocorrelation.
	if got := Autocorrelation([]float64{5, 5, 5, 5, 5}, 1); got != 0 {
		t.Errorf("constant series ACF = %g", got)
	}
	// A strongly alternating series has ACF near -1.
	alt := make([]float64, 1000)
	for i := range alt {
		alt[i] = float64(i%2*2 - 1)
	}
	if got := Autocorrelation(alt, 1); got > -0.9 {
		t.Errorf("alternating ACF = %g, want near -1", got)
	}
	// An AR(1) series with phi=0.8 has lag-1 ACF near 0.8.
	rng := rand.New(rand.NewSource(3))
	x := 0.0
	ar := make([]float64, 200000)
	for i := range ar {
		x = 0.8*x + rng.NormFloat64()
		ar[i] = x
	}
	if got := Autocorrelation(ar, 1); math.Abs(got-0.8) > 0.02 {
		t.Errorf("AR(1) phi=0.8 measured ACF = %g", got)
	}
	// Lag-2 ACF of the same process is near 0.64.
	if got := Autocorrelation(ar, 2); math.Abs(got-0.64) > 0.03 {
		t.Errorf("AR(1) phi=0.8 lag-2 ACF = %g", got)
	}
	// Short series fall back to zero.
	if got := Autocorrelation([]float64{1, 2}, 1); got != 0 {
		t.Errorf("too-short series ACF = %g", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.Count != 5 || s.Median != 3 || s.Min != 1 || s.Max != 100 {
		t.Errorf("bad summary %+v", s)
	}
	if s.Mean != 22 {
		t.Errorf("Mean = %g", s.Mean)
	}
	if Summarize(nil).Count != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestRunningMomentsMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var rm RunningMoments
	data := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.NormFloat64() * 3)
		rm.Add(v)
		data = append(data, v)
	}
	if rm.N() != 5000 {
		t.Fatalf("N = %d", rm.N())
	}
	if !almostEqual(rm.Mean(), Mean(data), 1e-10) {
		t.Errorf("Mean %g vs %g", rm.Mean(), Mean(data))
	}
	if !almostEqual(rm.Variance(), Variance(data), 1e-9) {
		t.Errorf("Variance %g vs %g", rm.Variance(), Variance(data))
	}
	if !almostEqual(rm.PopulationVariance(), PopulationVariance(data), 1e-9) {
		t.Errorf("PopulationVariance %g vs %g", rm.PopulationVariance(), PopulationVariance(data))
	}
	rm.Reset()
	if rm.N() != 0 || !math.IsNaN(rm.Mean()) {
		t.Error("Reset did not clear state")
	}
}
