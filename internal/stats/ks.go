package stats

import (
	"math"
	"sort"
)

// Kolmogorov–Smirnov goodness-of-fit machinery. The evaluation uses it in
// two places: the workload tests verify the synthetic generator's marginals
// match their analytic targets, and the fit diagnostic lets a deployment
// check whether the log-normal assumption the parametric comparator makes
// would even be defensible on its own data (the paper's answer: usually
// not).

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_n(x) − F(x)| for data against the CDF cdf. The input need
// not be sorted.
func KSStatistic(data []float64, cdf func(float64) float64) float64 {
	n := len(data)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, data)
	sort.Float64s(sorted)
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		// Empirical CDF jumps from i/n to (i+1)/n at x.
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// KSPValue returns the asymptotic p-value for a one-sample KS statistic d
// at sample size n, using the Kolmogorov distribution series
// Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²} with the Stephens small-sample
// adjustment λ = (√n + 0.12 + 0.11/√n)·d. Values near 0 reject the
// hypothesized distribution.
func KSPValue(d float64, n int) float64 {
	if math.IsNaN(d) || n <= 0 {
		return math.NaN()
	}
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		return 0
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	// The series converges extremely fast for lambda > ~0.3; below that
	// the p-value is essentially 1.
	if lambda < 0.2 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// KSTestLogNormal fits a log-normal to data by MLE and returns the KS
// statistic and p-value of the fit. Because the parameters are estimated
// from the same data, the true p-value is smaller than the returned
// asymptotic one (a Lilliefors-type correction would be needed for exact
// levels); as a diagnostic, small values still firmly reject.
func KSTestLogNormal(data []float64) (d, p float64) {
	ln, err := FitLogNormalMLE(data)
	if err != nil {
		return math.NaN(), math.NaN()
	}
	if ln.Sigma == 0 {
		return 1, 0 // a point mass is never log-normal
	}
	d = KSStatistic(data, func(x float64) float64 {
		return ln.CDF(math.Max(x, minPositiveWait))
	})
	return d, KSPValue(d, len(data))
}
