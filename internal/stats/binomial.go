package stats

import "math"

// Binomial is a binomial distribution with N trials and per-trial success
// probability P.
type Binomial struct {
	N int
	P float64
}

// PMF returns P(X = k).
func (b Binomial) PMF(k int) float64 {
	if k < 0 || k > b.N {
		return 0
	}
	if b.P <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if b.P >= 1 {
		if k == b.N {
			return 1
		}
		return 0
	}
	logp := LogChoose(b.N, k) + float64(k)*math.Log(b.P) + float64(b.N-k)*math.Log1p(-b.P)
	return math.Exp(logp)
}

// CDF returns P(X <= k), computed exactly through the regularized incomplete
// beta function: P(X <= k) = I_{1-p}(n-k, k+1). This identity is valid for
// all n and avoids catastrophic cancellation for the extreme tails BMBP
// probes.
func (b Binomial) CDF(k int) float64 {
	switch {
	case k < 0:
		return 0
	case k >= b.N:
		return 1
	case b.P <= 0:
		return 1
	case b.P >= 1:
		return 0
	}
	return RegIncBeta(float64(b.N-k), float64(k+1), 1-b.P)
}

// Survival returns P(X > k) = 1 - CDF(k) with full precision in the upper
// tail: P(X > k) = I_p(k+1, n-k).
func (b Binomial) Survival(k int) float64 {
	switch {
	case k < 0:
		return 1
	case k >= b.N:
		return 0
	case b.P <= 0:
		return 0
	case b.P >= 1:
		return 1
	}
	return RegIncBeta(float64(k+1), float64(b.N-k), b.P)
}

// CDFDirect returns P(X <= k) by direct summation of the PMF. It is O(k) and
// exists to cross-check CDF in tests; use CDF in production code.
func (b Binomial) CDFDirect(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= b.N {
		return 1
	}
	sum := 0.0
	for j := 0; j <= k; j++ {
		sum += b.PMF(j)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Mean returns n·p.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// Variance returns n·p·(1-p).
func (b Binomial) Variance() float64 { return float64(b.N) * b.P * (1 - b.P) }

// NormalApproxOK reports whether the usual rule of thumb for approximating
// this binomial by a normal holds: both the expected number of successes and
// the expected number of failures are at least 10 (the paper's Appendix uses
// exactly this criterion).
func (b Binomial) NormalApproxOK() bool {
	return b.Mean() >= 10 && float64(b.N)*(1-b.P) >= 10
}
