package stats

import "math"

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs; ok is false otherwise. The search stops when the bracket
// is narrower than tol or after maxIter halvings.
func Bisect(f func(float64) float64, a, b, tol float64, maxIter int) (root float64, ok bool) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, true
	}
	if fb == 0 {
		return b, true
	}
	if fa*fb > 0 {
		return math.NaN(), false
	}
	for i := 0; i < maxIter && b-a > tol; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 {
			return m, true
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	_ = fb
	return a + (b-a)/2, true
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must bracket a root;
// ok is false otherwise.
func Brent(f func(float64) float64, a, b, tol float64, maxIter int) (root float64, ok bool) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, true
	}
	if fb == 0 {
		return b, true
	}
	if fa*fb > 0 {
		return math.NaN(), false
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < maxIter && fb != 0 && math.Abs(b-a) > tol; i++ {
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, true
}
