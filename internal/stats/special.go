package stats

import (
	"math"
)

const (
	// epsCF is the convergence tolerance for continued-fraction evaluation.
	epsCF = 3e-15
	// tinyCF guards divisions inside Lentz's algorithm.
	tinyCF = 1e-300
	// maxIterCF bounds continued-fraction and series iteration counts.
	maxIterCF = 500
)

// LogGamma returns ln Γ(x) for x > 0.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b).
func LogBeta(a, b float64) float64 {
	return LogGamma(a) + LogGamma(b) - LogGamma(a+b)
}

// LogChoose returns ln C(n, k), the natural log of the binomial coefficient.
// It returns -Inf for k < 0 or k > n.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LogGamma(float64(n)+1) - LogGamma(float64(k)+1) - LogGamma(float64(n-k)+1)
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1]. It is the CDF of the Beta(a, b) distribution and
// underlies the exact binomial CDF used by BMBP.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln of x^a (1-x)^b / (a B(a,b)) prefactor, evaluated in log space to
	// stay finite for the extreme a, b that large traces produce.
	logFront := a*math.Log(x) + b*math.Log1p(-x) - LogBeta(a, b)
	if x < (a+1)/(a+b+2) {
		return math.Exp(logFront) * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(b*math.Log1p(-x)+a*math.Log(x)-LogBeta(b, a))*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function by
// the modified Lentz method (Numerical Recipes §6.4).
func betaCF(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tinyCF {
		d = tinyCF
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIterCF; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyCF {
			d = tinyCF
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyCF {
			c = tinyCF
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyCF {
			d = tinyCF
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyCF {
			c = tinyCF
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsCF {
			return h
		}
	}
	// Convergence failures are confined to pathological (a, b, x); the partial
	// sum is still the best available estimate.
	return h
}

// RegIncGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0. It is the CDF of the Gamma(a, 1)
// distribution and is used for chi-square probabilities.
func RegIncGammaP(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case a <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// RegIncGammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func RegIncGammaQ(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case a <= 0:
		return math.NaN()
	case x <= 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

// gammaSeries evaluates P(a, x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIterCF*4; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsCF {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}

// gammaCF evaluates Q(a, x) by continued fraction, valid for x >= a+1.
func gammaCF(a, x float64) float64 {
	b := x + 1 - a
	c := 1 / tinyCF
	d := 1 / b
	h := d
	for i := 1; i <= maxIterCF*4; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tinyCF {
			d = tinyCF
		}
		c = b + an/c
		if math.Abs(c) < tinyCF {
			c = tinyCF
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsCF {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}
