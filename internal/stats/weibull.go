package stats

import "math"

// Weibull is a Weibull distribution with shape K and scale Lambda. The
// workload generator offers it as an alternative wait-time body to check
// that the reproduction's conclusions do not hinge on the log-normal
// choice (BMBP is distribution-free; nothing should change).
type Weibull struct {
	K      float64
	Lambda float64
}

// CDF returns P(X <= x).
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Lambda, w.K))
}

// Quantile returns the p-th quantile.
func (w Weibull) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log(1-p), 1/w.K)
}

// Median returns the distribution's median.
func (w Weibull) Median() float64 {
	return w.Lambda * math.Pow(math.Ln2, 1/w.K)
}

// WeibullFromMedianRatio builds the Weibull whose median is median and
// whose q95/median ratio matches ratio (> 1). This lets the generator
// swap distribution families while preserving the two landmarks the
// calibration cares about.
func WeibullFromMedianRatio(median, ratio float64) Weibull {
	if median <= 0 {
		median = 1
	}
	if ratio <= 1 {
		ratio = 1.01
	}
	// q95/q50 = (ln 20 / ln 2)^{1/k}  =>  k = ln(ln20/ln2) / ln(ratio).
	k := math.Log(math.Log(20)/math.Ln2) / math.Log(ratio)
	return Weibull{K: k, Lambda: median / math.Pow(math.Ln2, 1/k)}
}
