package stats

import (
	"errors"
	"math"
)

// LogNormal is a log-normal distribution: X is log-normal with parameters
// (Mu, Sigma) when ln X ~ N(Mu, Sigma). Mu and Sigma are the mean and
// standard deviation of the underlying normal, not of X itself.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// ErrInsufficientData is returned by estimators that need more observations
// than they were given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// PDF returns the probability density at x (zero for x <= 0).
func (ln LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{ln.Mu, ln.Sigma}.PDF(math.Log(x)) / x
}

// CDF returns P(X <= x).
func (ln LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{ln.Mu, ln.Sigma}.CDF(math.Log(x))
}

// Quantile returns the p-th quantile of the distribution.
func (ln LogNormal) Quantile(p float64) float64 {
	return math.Exp(Normal{ln.Mu, ln.Sigma}.Quantile(p))
}

// Mean returns E[X] = exp(Mu + Sigma²/2).
func (ln LogNormal) Mean() float64 {
	return math.Exp(ln.Mu + ln.Sigma*ln.Sigma/2)
}

// Median returns exp(Mu).
func (ln LogNormal) Median() float64 {
	return math.Exp(ln.Mu)
}

// Variance returns Var[X] = (exp(Sigma²) - 1)·exp(2Mu + Sigma²).
func (ln LogNormal) Variance() float64 {
	s2 := ln.Sigma * ln.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*ln.Mu+s2)
}

// FitLogNormalMLE fits a log-normal to strictly positive data by maximum
// likelihood: Mu and Sigma are the sample mean and the (MLE, i.e. divide by
// n) standard deviation of the logs. Observations <= 0 are clamped to
// minPositiveWait before the log transform, mirroring how the evaluation
// treats zero-second queue waits.
func FitLogNormalMLE(data []float64) (LogNormal, error) {
	if len(data) < 2 {
		return LogNormal{}, ErrInsufficientData
	}
	var sum, sumSq float64
	for _, x := range data {
		l := SafeLog(x)
		sum += l
		sumSq += l * l
	}
	n := float64(len(data))
	mu := sum / n
	variance := sumSq/n - mu*mu
	if variance < 0 {
		variance = 0
	}
	return LogNormal{Mu: mu, Sigma: math.Sqrt(variance)}, nil
}

// minPositiveWait is the smallest wait (in seconds) the log transform will
// see. Scheduler logs round waits to whole seconds, so zero waits occur;
// one second is the natural floor used by the paper's log-normal comparator.
const minPositiveWait = 1.0

// SafeLog returns ln(max(x, minPositiveWait)) so that zero and sub-second
// waits do not produce -Inf under the log transform.
func SafeLog(x float64) float64 {
	if x < minPositiveWait {
		x = minPositiveWait
	}
	return math.Log(x)
}
