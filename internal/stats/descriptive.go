package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of data, or NaN for empty input.
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range data {
		sum += x
	}
	return sum / float64(len(data))
}

// Variance returns the unbiased (n-1 denominator) sample variance, or NaN
// for fewer than two observations.
func Variance(data []float64) float64 {
	n := len(data)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(data)
	var ss float64
	for _, x := range data {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(data []float64) float64 {
	return math.Sqrt(Variance(data))
}

// PopulationVariance returns the MLE (n denominator) variance, or NaN for
// empty input.
func PopulationVariance(data []float64) float64 {
	n := len(data)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(data)
	var ss float64
	for _, x := range data {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// Median returns the sample median (average of the two central order
// statistics for even n), or NaN for empty input.
func Median(data []float64) float64 {
	return Quantile(data, 0.5)
}

// Quantile returns the empirical p-quantile of data using linear
// interpolation between order statistics (type 7, the R/NumPy default).
// It copies and sorts its input; use QuantileSorted when the data is already
// sorted.
func Quantile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

// QuantileSorted is Quantile for data that is already in ascending order.
func QuantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the minimum and maximum of data, or (NaN, NaN) for empty
// input.
func MinMax(data []float64) (min, max float64) {
	if len(data) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = data[0], data[0]
	for _, x := range data[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Autocorrelation returns the sample autocorrelation of data at the given
// lag, using the standard biased estimator
//
//	r(k) = Σ_{t=1..n-k} (x_t - x̄)(x_{t+k} - x̄) / Σ_t (x_t - x̄)²
//
// It returns 0 when the series is constant or shorter than lag+2
// observations, which is the safe neutral value for BMBP's rare-event table
// lookup.
func Autocorrelation(data []float64, lag int) float64 {
	n := len(data)
	if lag < 1 || n < lag+2 {
		return 0
	}
	m := Mean(data)
	var num, den float64
	for t := 0; t < n; t++ {
		d := data[t] - m
		den += d * d
		if t+lag < n {
			num += d * (data[t+lag] - m)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Summary holds the descriptive statistics the paper's Table 1 reports for
// each trace.
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of data.
func Summarize(data []float64) Summary {
	if len(data) == 0 {
		return Summary{}
	}
	min, max := MinMax(data)
	return Summary{
		Count:  len(data),
		Mean:   Mean(data),
		Median: Median(data),
		StdDev: StdDev(data),
		Min:    min,
		Max:    max,
	}
}
