package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, b := range []Binomial{{N: 1, P: 0.5}, {N: 10, P: 0.3}, {N: 59, P: 0.95}, {N: 200, P: 0.05}} {
		sum := 0.0
		for k := 0; k <= b.N; k++ {
			sum += b.PMF(k)
		}
		if !almostEqual(sum, 1, 1e-10) {
			t.Errorf("PMF sum for %+v = %g", b, sum)
		}
	}
}

func TestBinomialCDFMatchesDirectSum(t *testing.T) {
	f := func(n8 uint8, k8 uint8, p16 uint16) bool {
		n := int(n8)%150 + 1
		k := int(k8) % (n + 1)
		p := (float64(p16) + 0.5) / 65536
		return almostEqual(Binomial{N: n, P: p}.CDF(k), Binomial{N: n, P: p}.CDFDirect(k), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialCDFSurvivalComplement(t *testing.T) {
	b := Binomial{N: 100, P: 0.95}
	for k := -1; k <= 101; k++ {
		if got := b.CDF(k) + b.Survival(k); !almostEqual(got, 1, 1e-10) {
			t.Errorf("CDF+Survival at k=%d = %g", k, got)
		}
	}
}

func TestBinomialCDFEdges(t *testing.T) {
	b := Binomial{N: 10, P: 0.4}
	if b.CDF(-1) != 0 {
		t.Error("CDF(-1) should be 0")
	}
	if b.CDF(10) != 1 || b.CDF(99) != 1 {
		t.Error("CDF(n) should be 1")
	}
	if got := (Binomial{N: 5, P: 0}).CDF(0); got != 1 {
		t.Errorf("p=0 CDF(0) = %g, want 1", got)
	}
	if got := (Binomial{N: 5, P: 1}).CDF(4); got != 0 {
		t.Errorf("p=1 CDF(4) = %g, want 0", got)
	}
}

func TestBinomialPaperMinimumHistory(t *testing.T) {
	// Section 4.1: the smallest n for which a 95%-confidence bound on the
	// .95 quantile exists is 59: P(Bin(n, .95) <= n-1) = 1 - .95^n >= .95.
	for n := 1; n < 59; n++ {
		if got := (Binomial{N: n, P: 0.95}).CDF(n - 1); got >= 0.95 {
			t.Fatalf("n=%d should not support the bound, CDF(n-1)=%g", n, got)
		}
	}
	if got := (Binomial{N: 59, P: 0.95}).CDF(58); got < 0.95 {
		t.Fatalf("n=59 should support the bound, CDF(58)=%g", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	b := Binomial{N: 40, P: 0.25}
	if got := b.Mean(); got != 10 {
		t.Errorf("Mean = %g", got)
	}
	if got := b.Variance(); got != 7.5 {
		t.Errorf("Variance = %g", got)
	}
	if !b.NormalApproxOK() {
		t.Error("40 trials at p=.25: 10 successes, 30 failures -> approx OK")
	}
	if (Binomial{N: 100, P: 0.95}).NormalApproxOK() {
		t.Error("only 5 expected failures -> approx not OK")
	}
}

func TestBinomialCDFMatchesNormalApproxForLargeN(t *testing.T) {
	// With n*p and n*(1-p) large, CDF(k) ~ Phi((k+0.5-np)/sqrt(np(1-p))).
	b := Binomial{N: 100000, P: 0.5}
	sd := math.Sqrt(b.Variance())
	for _, dev := range []float64{-2, -1, 0, 1, 2} {
		k := int(b.Mean() + dev*sd)
		want := StdNormal.CDF((float64(k) + 0.5 - b.Mean()) / sd)
		if got := b.CDF(k); math.Abs(got-want) > 1e-3 {
			t.Errorf("CDF(%d) = %g, normal approx %g", k, got, want)
		}
	}
}
