package stats

import "math"

// StudentT is a (central) Student t distribution with DF degrees of freedom.
type StudentT struct {
	DF float64
}

// PDF returns the probability density at x.
func (t StudentT) PDF(x float64) float64 {
	v := t.DF
	lg := LogGamma((v+1)/2) - LogGamma(v/2) - 0.5*math.Log(v*math.Pi)
	return math.Exp(lg - (v+1)/2*math.Log1p(x*x/v))
}

// CDF returns P(T <= x) through the incomplete beta identity
// P(T <= x) = 1 - I_{v/(v+x²)}(v/2, 1/2)/2 for x >= 0.
func (t StudentT) CDF(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	v := t.DF
	if x == 0 {
		return 0.5
	}
	ib := RegIncBeta(v/2, 0.5, v/(v+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// Quantile returns the p-th quantile by bisection on the CDF, seeded with
// the normal quantile (which the t converges to for large DF).
func (t StudentT) Quantile(p float64) float64 {
	switch {
	case math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	}
	z := StdNormalQuantile(p)
	// The t quantile has the same sign as z and heavier tails; expand a
	// bracket around the normal seed.
	lo, hi := z-1, z+1
	for t.CDF(lo) > p {
		lo -= math.Max(1, math.Abs(lo))
	}
	for t.CDF(hi) < p {
		hi += math.Max(1, math.Abs(hi))
	}
	root, _ := Brent(func(x float64) float64 { return t.CDF(x) - p }, lo, hi, 1e-12, 200)
	return root
}

// ChiSquared is a chi-squared distribution with DF degrees of freedom.
type ChiSquared struct {
	DF float64
}

// CDF returns P(X <= x).
func (c ChiSquared) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGammaP(c.DF/2, x/2)
}

// LogPDF returns the natural log of the density at x (for x > 0).
func (c ChiSquared) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	k := c.DF / 2
	return (k-1)*math.Log(x) - x/2 - k*math.Ln2 - LogGamma(k)
}

// QuantileApprox returns an approximate p-th quantile using the
// Wilson–Hilferty cube transformation. It is used only to pick integration
// ranges, where a few percent of error is irrelevant.
func (c ChiSquared) QuantileApprox(p float64) float64 {
	z := StdNormalQuantile(p)
	v := c.DF
	t := 1 - 2/(9*v) + z*math.Sqrt(2/(9*v))
	if t < 0 {
		return 0
	}
	return v * t * t * t
}
