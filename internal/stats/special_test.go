package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLogGammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
	}
	for _, c := range cases {
		if got := LogGamma(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LogGamma(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestLogBetaSymmetry(t *testing.T) {
	for _, ab := range [][2]float64{{1, 1}, {2, 5}, {0.5, 3}, {100, 7}} {
		if got, want := LogBeta(ab[0], ab[1]), LogBeta(ab[1], ab[0]); !almostEqual(got, want, 1e-12) {
			t.Errorf("LogBeta not symmetric at %v: %g vs %g", ab, got, want)
		}
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogChoose(c.n, c.k); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("LogChoose(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("LogChoose out of range should be -Inf")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEqual(got, x, 1e-12) {
			t.Errorf("I_%g(1,1) = %g, want %g", x, got, x)
		}
	}
	// I_x(1, b) = 1 - (1-x)^b.
	for _, x := range []float64{0.2, 0.7} {
		want := 1 - math.Pow(1-x, 4)
		if got := RegIncBeta(1, 4, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("I_%g(1,4) = %g, want %g", x, got, want)
		}
	}
	// Symmetric case: I_{0.5}(a, a) = 0.5.
	for _, a := range []float64{0.5, 1, 3, 17, 250} {
		if got := RegIncBeta(a, a, 0.5); !almostEqual(got, 0.5, 1e-10) {
			t.Errorf("I_0.5(%g,%g) = %g, want 0.5", a, a, got)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %g, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %g, want 1", got)
	}
	if !math.IsNaN(RegIncBeta(-1, 3, 0.5)) {
		t.Error("negative a should return NaN")
	}
	if !math.IsNaN(RegIncBeta(2, 3, math.NaN())) {
		t.Error("NaN x should return NaN")
	}
}

func TestRegIncBetaReflection(t *testing.T) {
	// I_x(a, b) + I_{1-x}(b, a) = 1.
	f := func(a8, b8, x8 uint8) bool {
		a := 0.5 + float64(a8)/4
		b := 0.5 + float64(b8)/4
		x := (float64(x8) + 0.5) / 256
		return almostEqual(RegIncBeta(a, b, x)+RegIncBeta(b, a, 1-x), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaMonotoneInX(t *testing.T) {
	a, b := 3.5, 7.25
	prev := -1.0
	for x := 0.01; x < 1; x += 0.01 {
		v := RegIncBeta(a, b, x)
		if v < prev {
			t.Fatalf("I_x(%g,%g) not monotone at x=%g: %g < %g", a, b, x, v, prev)
		}
		prev = v
	}
}

func TestRegIncGammaComplementarity(t *testing.T) {
	f := func(a8, x8 uint8) bool {
		a := 0.5 + float64(a8)/8
		x := float64(x8) / 4
		p, q := RegIncGammaP(a, x), RegIncGammaQ(a, x)
		return almostEqual(p+q, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x} (exponential CDF).
	for _, x := range []float64{0.1, 1, 3, 10} {
		want := 1 - math.Exp(-x)
		if got := RegIncGammaP(1, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	// Chi-squared with 2 df: CDF(x) = 1 - e^{-x/2} = P(1, x/2).
	chi := ChiSquared{DF: 2}
	for _, x := range []float64{0.5, 2, 5} {
		want := 1 - math.Exp(-x/2)
		if got := chi.CDF(x); !almostEqual(got, want, 1e-10) {
			t.Errorf("chi2_2 CDF(%g) = %g, want %g", x, got, want)
		}
	}
}
