package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStdNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.05, -1.6448536269514722},
		{0.9, 1.2815515655446004},
		{0.99, 2.3263478740408408},
		{0.999, 3.090232306167813},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		if got := StdNormalQuantile(c.p); !almostEqual(got, c.want, 1e-12) && math.Abs(got-c.want) > 1e-12 {
			t.Errorf("StdNormalQuantile(%g) = %.15g, want %.15g", c.p, got, c.want)
		}
	}
}

func TestStdNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(StdNormalQuantile(0), -1) {
		t.Error("p=0 should be -Inf")
	}
	if !math.IsInf(StdNormalQuantile(1), 1) {
		t.Error("p=1 should be +Inf")
	}
	if !math.IsNaN(StdNormalQuantile(math.NaN())) {
		t.Error("p=NaN should be NaN")
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2.5}
	f := func(p16 uint16) bool {
		p := (float64(p16) + 0.5) / 65536
		x := n.Quantile(p)
		return almostEqual(n.CDF(x), p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFSurvivalComplement(t *testing.T) {
	n := StdNormal
	for _, x := range []float64{-8, -2, -0.5, 0, 0.5, 2, 8} {
		if got := n.CDF(x) + n.Survival(x); !almostEqual(got, 1, 1e-12) {
			t.Errorf("CDF+Survival at %g = %g", x, got)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	n := StdNormal
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.96, 0.9750021048517795},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := n.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Phi(%g) = %.16g, want %.16g", c.x, got, c.want)
		}
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// Trapezoid integration of the PDF should match CDF differences.
	n := Normal{Mu: -1, Sigma: 0.7}
	lo, hi := -3.0, 1.0
	const steps = 20000
	h := (hi - lo) / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * n.PDF(lo+float64(i)*h)
	}
	sum *= h
	want := n.CDF(hi) - n.CDF(lo)
	if !almostEqual(sum, want, 1e-6) {
		t.Errorf("integral %g, want %g", sum, want)
	}
}

func TestNormalLogPDFConsistent(t *testing.T) {
	n := Normal{Mu: 2, Sigma: 3}
	for _, x := range []float64{-5, 0, 2, 10} {
		if got, want := n.LogPDF(x), math.Log(n.PDF(x)); !almostEqual(got, want, 1e-10) {
			t.Errorf("LogPDF(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestLogNormalBasics(t *testing.T) {
	ln := LogNormal{Mu: 1, Sigma: 0.5}
	if got, want := ln.Median(), math.E; !almostEqual(got, want, 1e-12) {
		t.Errorf("Median = %g, want %g", got, want)
	}
	if got, want := ln.Mean(), math.Exp(1.125); !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	// CDF at median is 0.5.
	if got := ln.CDF(ln.Median()); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF(median) = %g", got)
	}
	// Quantile/CDF round trip.
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		if got := ln.CDF(ln.Quantile(p)); !almostEqual(got, p, 1e-9) {
			t.Errorf("roundtrip p=%g got %g", p, got)
		}
	}
	if ln.PDF(-1) != 0 || ln.CDF(-1) != 0 {
		t.Error("negative support should be zero")
	}
	// Variance identity.
	wantVar := (math.Exp(0.25) - 1) * math.Exp(2+0.25)
	if got := ln.Variance(); !almostEqual(got, wantVar, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, wantVar)
	}
}

func TestFitLogNormalMLE(t *testing.T) {
	// Exact fit on synthetic data: logs are {0, 2, 4} -> mu=2, sigma=sqrt(8/3).
	data := []float64{math.Exp(0), math.Exp(2), math.Exp(4)}
	ln, err := FitLogNormalMLE(data)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ln.Mu, 2, 1e-12) {
		t.Errorf("Mu = %g, want 2", ln.Mu)
	}
	if !almostEqual(ln.Sigma, math.Sqrt(8.0/3.0), 1e-12) {
		t.Errorf("Sigma = %g, want %g", ln.Sigma, math.Sqrt(8.0/3.0))
	}
	if _, err := FitLogNormalMLE([]float64{1}); err == nil {
		t.Error("want error for single observation")
	}
}

func TestSafeLogClampsZeros(t *testing.T) {
	if got := SafeLog(0); got != 0 {
		t.Errorf("SafeLog(0) = %g, want 0 (= ln 1)", got)
	}
	if got := SafeLog(0.25); got != 0 {
		t.Errorf("SafeLog(0.25) = %g, want 0", got)
	}
	if got := SafeLog(math.E); !almostEqual(got, 1, 1e-12) {
		t.Errorf("SafeLog(e) = %g, want 1", got)
	}
}
