package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exactQuantileR7(sorted []float64, p float64) float64 {
	n := len(sorted)
	h := float64(n-1) * p
	i := int(h)
	g := h - float64(i)
	if g == 0 || i+1 >= n {
		return sorted[i]
	}
	return sorted[i] + g*(sorted[i+1]-sorted[i])
}

func TestP2QuantileSmallCountsExact(t *testing.T) {
	cases := [][]float64{
		{},
		{3.5},
		{2, 1},
		{9, 1, 5},
		{4, 1, 3, 2},
		{10, 30, 20, 50, 40},
	}
	for _, vals := range cases {
		s := NewP2Quantile(0.5)
		for _, v := range vals {
			s.Add(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		var want float64
		switch n := len(sorted); {
		case n == 0:
			want = 0
		case n%2 == 1:
			want = sorted[n/2]
		default:
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		if got := s.Value(); got != want {
			t.Errorf("median of %v = %g, want %g", vals, got, want)
		}
		if s.Count() != len(vals) {
			t.Errorf("Count = %d, want %d", s.Count(), len(vals))
		}
	}
}

func TestP2QuantileConvergesOnRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range []float64{0.5, 0.95} {
		for _, gen := range []struct {
			name string
			next func() float64
		}{
			{"uniform", rng.Float64},
			{"lognormal", func() float64 { return math.Exp(rng.NormFloat64()) }},
		} {
			const n = 50000
			s := NewP2Quantile(p)
			all := make([]float64, n)
			for i := range all {
				v := gen.next()
				all[i] = v
				s.Add(v)
			}
			sort.Float64s(all)
			want := exactQuantileR7(all, p)
			got := s.Value()
			// P² is approximate; a few percent relative error at 50k
			// observations of a smooth distribution is far more slack than
			// it needs.
			if relErr := math.Abs(got-want) / want; relErr > 0.05 {
				t.Errorf("%s p=%g: sketch %g, exact %g (rel err %g)", gen.name, p, got, want, relErr)
			}
		}
	}
}

func TestP2QuantileMonotoneBatchesStayBracketed(t *testing.T) {
	// Adversarially ordered input (ascending) with duplicates: the estimate
	// must stay within the observed range and near the true median.
	s := NewP2Quantile(0.5)
	const n = 10001
	for i := 0; i < n; i++ {
		s.Add(float64(i / 10)) // duplicates in runs of 10
	}
	got := s.Value()
	if got < 0 || got > float64(n/10) {
		t.Fatalf("estimate %g outside observed range", got)
	}
	want := float64((n / 2) / 10)
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("median of ascending stream: %g, want ~%g", got, want)
	}
}

func BenchmarkP2QuantileAdd(b *testing.B) {
	s := NewP2Quantile(0.5)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}
