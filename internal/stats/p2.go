package stats

import "sort"

// P2Quantile estimates a single quantile of a stream in O(1) space using
// the P² algorithm of Jain & Chlamtac (1985): five markers track the
// running minimum, maximum, target quantile, and the two midpoints, and
// are nudged toward their ideal positions with parabolic (falling back to
// linear) interpolation as observations arrive. The first five
// observations are kept exactly, so small streams pay no approximation
// error at all.
type P2Quantile struct {
	p     float64
	count int
	// Exact buffer for the first five observations.
	buf [5]float64
	// Marker heights, positions (1-based), desired positions, and desired
	// position increments.
	q  [5]float64
	n  [5]float64
	np [5]float64
	dn [5]float64
}

// NewP2Quantile returns an estimator for the p-th quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	s := &P2Quantile{p: p}
	s.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return s
}

// Count returns the number of observations added.
func (s *P2Quantile) Count() int { return s.count }

// Add feeds one observation.
func (s *P2Quantile) Add(x float64) {
	if s.count < 5 {
		s.buf[s.count] = x
		s.count++
		if s.count == 5 {
			sort.Float64s(s.buf[:])
			for i := 0; i < 5; i++ {
				s.q[i] = s.buf[i]
				s.n[i] = float64(i + 1)
			}
			s.np = [5]float64{1, 1 + 2*s.p, 1 + 4*s.p, 3 + 2*s.p, 5}
		}
		return
	}
	s.count++

	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.n[i]++
	}
	for i := 0; i < 5; i++ {
		s.np[i] += s.dn[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.np[i] - s.n[i]
		if (d >= 1 && s.n[i+1]-s.n[i] > 1) || (d <= -1 && s.n[i-1]-s.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qp := s.parabolic(i, sign)
			if s.q[i-1] < qp && qp < s.q[i+1] {
				s.q[i] = qp
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.n[i] += sign
		}
	}
}

func (s *P2Quantile) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.n[i+1]-s.n[i-1])*((s.n[i]-s.n[i-1]+d)*(s.q[i+1]-s.q[i])/(s.n[i+1]-s.n[i])+
		(s.n[i+1]-s.n[i]-d)*(s.q[i]-s.q[i-1])/(s.n[i]-s.n[i-1]))
}

func (s *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.n[j]-s.n[i])
}

// Value returns the current quantile estimate. Streams of up to five
// observations are answered exactly (type R-7 interpolation over the
// buffered values; for p = 0.5 with an even count that is exactly the
// mean of the two middle values). An empty stream returns 0.
func (s *P2Quantile) Value() float64 {
	if s.count == 0 {
		return 0
	}
	if s.count <= 5 {
		vals := s.buf[:s.count]
		tmp := [5]float64{}
		copy(tmp[:], vals)
		sorted := tmp[:s.count]
		sort.Float64s(sorted)
		h := float64(s.count-1) * s.p
		i := int(h)
		g := h - float64(i)
		switch {
		case g == 0 || i+1 >= s.count:
			return sorted[i]
		case g == 0.5:
			return (sorted[i] + sorted[i+1]) / 2
		default:
			return sorted[i] + g*(sorted[i+1]-sorted[i])
		}
	}
	return s.q[2]
}
