package stats

import "math"

// NoncentralT is a noncentral t distribution with DF degrees of freedom and
// noncentrality parameter Delta. It arises as the sampling distribution of
// normal one-sided tolerance bounds: if Z ~ N(δ, 1) and W ~ χ²_ν are
// independent, then T = Z / sqrt(W/ν) is noncentral t with (ν, δ).
type NoncentralT struct {
	DF    float64
	Delta float64
}

// CDF returns P(T <= x). It evaluates the mixture representation
//
//	P(T <= x) = E_W[ Φ(x·sqrt(W/ν) − δ) ],  W ~ χ²_ν
//
// by adaptive Simpson quadrature over s = sqrt(W/ν), whose density is
// f_S(s) = 2·ν·s·f_{χ²_ν}(ν·s²). This is numerically robust for the degrees
// of freedom that queue-wait histories produce (from 2 up to hundreds of
// thousands) and needs no series bookkeeping.
func (nt NoncentralT) CDF(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	if math.IsInf(x, 1) {
		return 1
	}
	if math.IsInf(x, -1) {
		return 0
	}
	v := nt.DF
	chi := ChiSquared{DF: v}
	// Integrate s over the region where χ²_ν has essentially all its mass.
	wLo := chi.QuantileApprox(1e-13)
	wHi := chi.QuantileApprox(1 - 1e-13)
	sLo := math.Sqrt(wLo / v)
	sHi := math.Sqrt(wHi / v)
	if sLo < 1e-8 {
		sLo = 1e-8
	}
	f := func(s float64) float64 {
		w := v * s * s
		logDens := math.Log(2*v*s) + chi.LogPDF(w)
		return math.Exp(logDens) * StdNormal.CDF(x*s-nt.Delta)
	}
	p := adaptiveSimpson(f, sLo, sHi, 1e-9, 28)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Quantile returns the p-th quantile of the noncentral t by bracketed root
// finding on the CDF.
func (nt NoncentralT) Quantile(p float64) float64 {
	switch {
	case math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	// Seed with the normal approximation T ≈ N(δ, 1 + δ²/(2ν)).
	sd := math.Sqrt(1 + nt.Delta*nt.Delta/(2*nt.DF))
	seed := nt.Delta + sd*StdNormalQuantile(p)
	lo, hi := seed-2*sd-1, seed+2*sd+1
	for nt.CDF(lo) > p {
		lo -= math.Max(1, math.Abs(lo)/2)
	}
	for nt.CDF(hi) < p {
		hi += math.Max(1, math.Abs(hi)/2)
	}
	root, _ := Brent(func(x float64) float64 { return nt.CDF(x) - p }, lo, hi, 1e-10, 200)
	return root
}

// adaptiveSimpson integrates f over [a, b] with the classic recursive
// error-halving rule.
func adaptiveSimpson(f func(float64) float64, a, b, tol float64, depth int) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := (b - a) / 6 * (fa + 4*fc + fb)
	return simpsonStep(f, a, b, fa, fb, fc, whole, tol, depth)
}

func simpsonStep(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := (a + b) / 2
	d := (a + c) / 2
	e := (c + b) / 2
	fd, fe := f(d), f(e)
	left := (c - a) / 6 * (fa + 4*fd + fc)
	right := (b - c) / 6 * (fc + 4*fe + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return simpsonStep(f, a, c, fa, fc, fd, left, tol/2, depth-1) +
		simpsonStep(f, c, b, fc, fb, fe, right, tol/2, depth-1)
}
