// Package stats provides the statistical machinery BMBP is built on:
// special functions (regularized incomplete beta and gamma), the normal,
// log-normal, binomial, Student t and noncentral t distributions, one-sided
// tolerance factors for normal populations (the K' machinery of Guttman,
// "Statistical Tolerance Regions", Table 4.6), descriptive statistics,
// autocorrelation, empirical quantiles, and root finding.
//
// Everything is implemented from scratch on top of the Go standard library
// (math only); there are no external dependencies. All functions are pure and
// safe for concurrent use.
package stats
