package trace

import (
	"strings"
	"testing"
)

const sampleSWF = `; Version: 2.2
; Computer: Test SP2
; UnixStartTime: 1000000
; MaxNodes: 128
; MaxProcs: 128
; Queue: 1 express runtime limit 2h
; Queue: 2 normal
;
; job submit wait run procs cpu mem reqp reqt reqm status user group exe queue part prec think
1 100 50 3600 8 -1 -1 8 7200 -1 1 3 1 5 1 -1 -1 -1
2 200 0 60 1 -1 -1 1 120 -1 1 4 1 5 2 -1 -1 -1
3 300 900 100 -1 -1 -1 16 600 -1 1 4 1 5 2 -1 -1 -1
4 400 10 100 4 -1 -1 4 600 -1 0 4 1 5 1 -1 -1 -1
5 500 -1 100 4 -1 -1 4 600 -1 1 4 1 5 1 -1 -1 -1
6 150 25 10 2 -1 -1 2 600 -1 1 2 1 5 1 -1 -1 -1
`

func TestReadSWF(t *testing.T) {
	traces, hdr, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{Machine: "sp2"})
	if err != nil {
		t.Fatal(err)
	}
	if hdr.UnixStartTime != 1000000 || hdr.MaxNodes != 128 || hdr.MaxProcs != 128 {
		t.Errorf("header = %+v", hdr)
	}
	if hdr.QueueNames[1] != "express" || hdr.QueueNames[2] != "normal" {
		t.Errorf("queue names = %v", hdr.QueueNames)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	express, normal := traces[0], traces[1]
	if express.Queue != "express" || normal.Queue != "normal" {
		t.Errorf("queues: %q %q", express.Queue, normal.Queue)
	}
	// Job 4 (status 0) and job 5 (missing wait) are dropped; jobs 1 and 6
	// land in express, sorted by submit.
	if express.Len() != 2 {
		t.Fatalf("express jobs = %d", express.Len())
	}
	if express.Jobs[0].Submit != 1000100 || express.Jobs[0].Wait != 50 {
		t.Errorf("first express job = %+v", express.Jobs[0])
	}
	if express.Jobs[0].Procs != 8 || express.Jobs[0].Runtime != 3600 {
		t.Errorf("first express job fields = %+v", express.Jobs[0])
	}
	if express.Jobs[1].Submit != 1000150 || express.Jobs[1].Wait != 25 {
		t.Errorf("second express job = %+v", express.Jobs[1])
	}
	// Job 3 has allocated procs -1: falls back to the requested 16.
	if normal.Len() != 2 || normal.Jobs[1].Procs != 16 {
		t.Errorf("normal jobs = %+v", normal.Jobs)
	}
}

func TestReadSWFMerged(t *testing.T) {
	traces, _, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{MergeQueues: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Queue != "all" {
		t.Fatalf("merged traces = %+v", traces)
	}
	if traces[0].Len() != 4 {
		t.Errorf("merged job count = %d", traces[0].Len())
	}
	if traces[0].Machine != "swf" {
		t.Errorf("default machine = %q", traces[0].Machine)
	}
}

func TestReadSWFIncludeIncomplete(t *testing.T) {
	traces, _, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{IncludeIncomplete: true, MergeQueues: true})
	if err != nil {
		t.Fatal(err)
	}
	// Job 4 (status 0) now kept; job 5 still dropped for its missing wait.
	if traces[0].Len() != 5 {
		t.Errorf("job count = %d", traces[0].Len())
	}
}

func TestReadSWFErrors(t *testing.T) {
	if _, _, err := ReadSWF(strings.NewReader("1 2 3\n"), SWFOptions{}); err == nil {
		t.Error("short line should fail")
	}
	bad := "1 100 50 3600 8 -1 -1 8 7200 -1 1 3 1 5 x -1 -1 -1\n"
	if _, _, err := ReadSWF(strings.NewReader(bad), SWFOptions{}); err == nil {
		t.Error("non-numeric field should fail")
	}
	if _, _, err := ReadSWFFile("/nonexistent.swf", SWFOptions{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestWriteSWFRoundTrip(t *testing.T) {
	orig := &Trace{Machine: "gen", Queue: "normal", Jobs: []Job{
		{Submit: 1_000_100, Wait: 50, Procs: 8, Runtime: 3600},
		{Submit: 1_000_200, Wait: 0, Procs: 1, Runtime: 60},
		{Submit: 1_000_500, Wait: 900, Procs: 16, Runtime: 100},
	}}
	var sb strings.Builder
	if err := WriteSWF(&sb, orig); err != nil {
		t.Fatal(err)
	}
	traces, hdr, err := ReadSWF(strings.NewReader(sb.String()), SWFOptions{Machine: "gen"})
	if err != nil {
		t.Fatal(err)
	}
	if hdr.UnixStartTime != 1_000_100 {
		t.Errorf("UnixStartTime = %d", hdr.UnixStartTime)
	}
	if len(traces) != 1 || traces[0].Queue != "normal" {
		t.Fatalf("traces = %+v", traces)
	}
	got := traces[0]
	if got.Len() != 3 {
		t.Fatalf("jobs = %d", got.Len())
	}
	for i := range orig.Jobs {
		if got.Jobs[i] != orig.Jobs[i] {
			t.Errorf("job %d: %+v vs %+v", i, got.Jobs[i], orig.Jobs[i])
		}
	}
}

func TestWriteSWFFile(t *testing.T) {
	path := t.TempDir() + "/x.swf"
	tr := &Trace{Machine: "m", Queue: "q", Jobs: []Job{{Submit: 5, Wait: 1, Procs: 2}}}
	if err := WriteSWFFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadSWFFile(path, SWFOptions{})
	if err != nil || len(back) != 1 || back[0].Len() != 1 {
		t.Fatalf("roundtrip: %v %v", back, err)
	}
	// Runtime 0 encodes as the -1 sentinel and reads back as 0.
	if back[0].Jobs[0].Runtime != 0 {
		t.Errorf("runtime sentinel: %g", back[0].Jobs[0].Runtime)
	}
}

func TestReadSWFUnnamedQueue(t *testing.T) {
	in := "1 100 5 60 1 -1 -1 1 120 -1 1 4 1 5 7 -1 -1 -1\n"
	traces, _, err := ReadSWF(strings.NewReader(in), SWFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if traces[0].Queue != "q7" {
		t.Errorf("fallback queue name = %q", traces[0].Queue)
	}
}
