package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text encoding mirrors the "parsed data files" of Section 5.1: one job
// per line, whitespace-separated fields
//
//	<submit-unix-seconds> <wait-seconds> <procs> [runtime-seconds]
//
// with '#' comment lines. Machine and queue are carried in the file header
// comment written by Write and may also be supplied by the caller of Read.

// Write encodes the trace to w.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# machine=%s queue=%s jobs=%d\n", t.Machine, t.Queue, len(t.Jobs)); err != nil {
		return err
	}
	for _, j := range t.Jobs {
		if _, err := fmt.Fprintf(bw, "%d %g %d %g\n", j.Submit, j.Wait, j.Procs, j.Runtime); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile encodes the trace to the named file.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a trace from r. Header comments of the form
// "# machine=X queue=Y ..." populate the Machine and Queue fields.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parseHeader(line, t)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace: line %d: want at least 3 fields, got %d", lineNo, len(fields))
		}
		submit, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad submit time %q: %v", lineNo, fields[0], err)
		}
		wait, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad wait %q: %v", lineNo, fields[1], err)
		}
		if wait < 0 {
			return nil, fmt.Errorf("trace: line %d: negative wait %g", lineNo, wait)
		}
		procs, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad procs %q: %v", lineNo, fields[2], err)
		}
		job := Job{Submit: submit, Wait: wait, Procs: procs}
		if len(fields) >= 4 {
			rt, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad runtime %q: %v", lineNo, fields[3], err)
			}
			job.Runtime = rt
		}
		t.Jobs = append(t.Jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	return t, nil
}

// ReadFile decodes a trace from the named file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func parseHeader(line string, t *Trace) {
	for _, field := range strings.Fields(strings.TrimPrefix(line, "#")) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			continue
		}
		switch k {
		case "machine":
			t.Machine = v
		case "queue":
			t.Queue = v
		}
	}
}
