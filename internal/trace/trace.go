// Package trace defines the job-trace model shared by the workload
// generator, the batch-scheduler substrate, and the evaluation simulator:
// per-job submission records (submit time, queue wait, processor count,
// queue name), a line-oriented text encoding compatible with the parsed
// data files the paper describes (Section 5.1), filtering by queue and
// processor-count range, and the summary statistics of the paper's Table 1.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Job is one batch-queue submission record.
type Job struct {
	// Submit is the UNIX timestamp (seconds) of submission.
	Submit int64
	// Wait is the queuing delay in seconds (how long the job stayed in the
	// queue before executing).
	Wait float64
	// Procs is the number of processors the submission requested.
	Procs int
	// Runtime is the execution duration in seconds once started. Archival
	// wait-time logs do not always carry it; the scheduler substrate fills
	// it in. Zero means unknown.
	Runtime float64
}

// Release returns the time at which the job left the queue and its wait
// became observable.
func (j Job) Release() int64 {
	return j.Submit + int64(j.Wait)
}

// Trace is a time-ordered sequence of jobs for one machine/queue.
type Trace struct {
	// Machine is the short machine key used throughout the paper's result
	// tables (datastar, lanl, llnl, nersc, paragon, sdsc, tacc2).
	Machine string
	// Queue is the queue name within the machine.
	Queue string
	// Jobs holds the submissions, ordered by Submit.
	Jobs []Job
}

// Name returns "machine/queue".
func (t *Trace) Name() string { return t.Machine + "/" + t.Queue }

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// SortBySubmit orders jobs by submission time (stable, so equal timestamps
// keep their original relative order).
func (t *Trace) SortBySubmit() {
	sort.SliceStable(t.Jobs, func(i, j int) bool {
		return t.Jobs[i].Submit < t.Jobs[j].Submit
	})
}

// Waits returns the wait column of the trace, in job order.
func (t *Trace) Waits() []float64 {
	out := make([]float64, len(t.Jobs))
	for i, j := range t.Jobs {
		out[i] = j.Wait
	}
	return out
}

// Summary computes the Table 1 statistics (count, mean, median, standard
// deviation of the queue waits).
func (t *Trace) Summary() stats.Summary {
	return stats.Summarize(t.Waits())
}

// Span returns the first and last submission timestamps, or (0, 0) for an
// empty trace.
func (t *Trace) Span() (first, last int64) {
	if len(t.Jobs) == 0 {
		return 0, 0
	}
	return t.Jobs[0].Submit, t.Jobs[len(t.Jobs)-1].Submit
}

// FilterProcs returns a new Trace containing only jobs whose processor
// count falls in bucket.
func (t *Trace) FilterProcs(bucket ProcBucket) *Trace {
	out := &Trace{Machine: t.Machine, Queue: t.Queue + "/" + bucket.Label()}
	for _, j := range t.Jobs {
		if bucket.Contains(j.Procs) {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// Window returns a new Trace restricted to jobs with from <= Submit < to.
func (t *Trace) Window(from, to int64) *Trace {
	out := &Trace{Machine: t.Machine, Queue: t.Queue}
	for _, j := range t.Jobs {
		if j.Submit >= from && j.Submit < to {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// ProcBucket is one of the paper's processor-count ranges (Section 6.2,
// suggested by TACC as the ranges most meaningful to their users).
type ProcBucket int

// The four processor-count categories of Tables 5-7.
const (
	Procs1to4 ProcBucket = iota
	Procs5to16
	Procs17to64
	Procs65Plus
	NumProcBuckets // count sentinel, not a bucket
)

// Label returns the column heading used in the paper's tables.
func (b ProcBucket) Label() string {
	switch b {
	case Procs1to4:
		return "1-4"
	case Procs5to16:
		return "5-16"
	case Procs17to64:
		return "17-64"
	case Procs65Plus:
		return "65+"
	default:
		return fmt.Sprintf("bucket(%d)", int(b))
	}
}

// Range returns the inclusive processor-count range of the bucket. The
// upper end of the open-ended bucket is reported as MaxProcs.
func (b ProcBucket) Range() (lo, hi int) {
	switch b {
	case Procs1to4:
		return 1, 4
	case Procs5to16:
		return 5, 16
	case Procs17to64:
		return 17, 64
	case Procs65Plus:
		return 65, MaxProcs
	default:
		return 0, 0
	}
}

// MaxProcs is the largest processor count the generator and bucket ranges
// use for the open-ended 65+ category.
const MaxProcs = 1024

// Contains reports whether procs falls in the bucket.
func (b ProcBucket) Contains(procs int) bool {
	lo, hi := b.Range()
	return procs >= lo && procs <= hi
}

// BucketOf returns the bucket containing procs (counts below 1 are treated
// as 1, matching how logs record serial jobs).
func BucketOf(procs int) ProcBucket {
	switch {
	case procs <= 4:
		return Procs1to4
	case procs <= 16:
		return Procs5to16
	case procs <= 64:
		return Procs17to64
	default:
		return Procs65Plus
	}
}

// AllBuckets lists the four buckets in table order.
var AllBuckets = []ProcBucket{Procs1to4, Procs5to16, Procs17to64, Procs65Plus}
