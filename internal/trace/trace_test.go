package trace

import (
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		Machine: "m",
		Queue:   "q",
		Jobs: []Job{
			{Submit: 100, Wait: 10, Procs: 2},
			{Submit: 200, Wait: 0, Procs: 8},
			{Submit: 300, Wait: 50, Procs: 32},
			{Submit: 400, Wait: 5, Procs: 128},
			{Submit: 500, Wait: 20, Procs: 4},
		},
	}
}

func TestTraceBasics(t *testing.T) {
	tr := sampleTrace()
	if tr.Name() != "m/q" {
		t.Error("Name")
	}
	if tr.Len() != 5 {
		t.Error("Len")
	}
	w := tr.Waits()
	if len(w) != 5 || w[2] != 50 {
		t.Error("Waits")
	}
	first, last := tr.Span()
	if first != 100 || last != 500 {
		t.Errorf("Span = %d,%d", first, last)
	}
	s := tr.Summary()
	if s.Count != 5 || s.Median != 10 || s.Max != 50 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestJobRelease(t *testing.T) {
	j := Job{Submit: 1000, Wait: 42.7}
	if got := j.Release(); got != 1042 {
		t.Errorf("Release = %d", got)
	}
}

func TestSortBySubmit(t *testing.T) {
	tr := &Trace{Jobs: []Job{{Submit: 3, Wait: 1}, {Submit: 1, Wait: 2}, {Submit: 3, Wait: 3}, {Submit: 2, Wait: 4}}}
	tr.SortBySubmit()
	wantSubmits := []int64{1, 2, 3, 3}
	for i, j := range tr.Jobs {
		if j.Submit != wantSubmits[i] {
			t.Fatalf("order: %+v", tr.Jobs)
		}
	}
	// Stability: the two Submit=3 jobs keep their original relative order.
	if tr.Jobs[2].Wait != 1 || tr.Jobs[3].Wait != 3 {
		t.Error("sort not stable")
	}
}

func TestFilterProcs(t *testing.T) {
	tr := sampleTrace()
	small := tr.FilterProcs(Procs1to4)
	if small.Len() != 2 {
		t.Fatalf("1-4 filter: %d jobs", small.Len())
	}
	if small.Jobs[0].Procs != 2 || small.Jobs[1].Procs != 4 {
		t.Error("wrong jobs retained")
	}
	big := tr.FilterProcs(Procs65Plus)
	if big.Len() != 1 || big.Jobs[0].Procs != 128 {
		t.Error("65+ filter")
	}
	if got := tr.FilterProcs(Procs5to16).Len(); got != 1 {
		t.Errorf("5-16 filter: %d", got)
	}
}

func TestWindow(t *testing.T) {
	tr := sampleTrace()
	w := tr.Window(200, 400)
	if w.Len() != 2 || w.Jobs[0].Submit != 200 || w.Jobs[1].Submit != 300 {
		t.Errorf("window: %+v", w.Jobs)
	}
}

func TestBuckets(t *testing.T) {
	cases := []struct {
		procs int
		want  ProcBucket
	}{
		{1, Procs1to4}, {4, Procs1to4}, {5, Procs5to16}, {16, Procs5to16},
		{17, Procs17to64}, {64, Procs17to64}, {65, Procs65Plus}, {1024, Procs65Plus},
		{0, Procs1to4}, {-3, Procs1to4},
	}
	for _, c := range cases {
		if got := BucketOf(c.procs); got != c.want {
			t.Errorf("BucketOf(%d) = %v, want %v", c.procs, got, c.want)
		}
	}
	labels := []string{"1-4", "5-16", "17-64", "65+"}
	for i, b := range AllBuckets {
		if b.Label() != labels[i] {
			t.Errorf("label %d = %q", i, b.Label())
		}
		lo, hi := b.Range()
		if !b.Contains(lo) || !b.Contains(hi) {
			t.Errorf("bucket %v does not contain its own range", b)
		}
		if b.Contains(lo - 1) {
			t.Errorf("bucket %v contains %d", b, lo-1)
		}
	}
	// Every positive processor count falls in exactly one bucket.
	for p := 1; p <= MaxProcs; p++ {
		count := 0
		for _, b := range AllBuckets {
			if b.Contains(p) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("procs=%d in %d buckets", p, count)
		}
	}
}

func TestPaperDataIntegrity(t *testing.T) {
	if len(PaperQueues) != 39 {
		t.Fatalf("Table 1 has %d rows, want 39", len(PaperQueues))
	}
	// The paper says "1.26 million jobs"; its own Table 1 rows sum to
	// 1,235,106 — the prose rounds up. The transcription must match the
	// table exactly.
	if total := TotalPaperJobs(); total != 1_235_106 {
		t.Fatalf("total jobs = %d, want 1235106 (sum of Table 1)", total)
	}
	if got := len(Table3Queues()); got != 32 {
		t.Fatalf("Table 3 queues = %d, want 32", got)
	}
	if got := len(Table5Queues()); got != 27 {
		t.Fatalf("Table 5 queues = %d, want 27", got)
	}
	seen := map[string]bool{}
	for i := range PaperQueues {
		p := &PaperQueues[i]
		if seen[p.Name()] {
			t.Errorf("duplicate queue %s", p.Name())
		}
		seen[p.Name()] = true
		if p.SpanSeconds() <= 0 {
			t.Errorf("%s: non-positive span", p.Name())
		}
		if p.JobCount <= 0 || p.AvgDelay < 0 || p.MedDelay < 0 || p.StdDelay < 0 {
			t.Errorf("%s: bad summary stats", p.Name())
		}
		// Heavy tails: the paper observes median << mean on every queue
		// except schammpq (the one near-symmetric queue).
		if p.MedDelay > p.AvgDelay && p.Queue != "schammpq" {
			t.Errorf("%s: median %g above mean %g", p.Name(), p.MedDelay, p.AvgDelay)
		}
		if p.InTable3() {
			for _, v := range []float64{p.BMBPCorrect, p.LogNoTrimCorrect, p.LogTrimCorrect} {
				if v < 0.5 || v > 1 {
					t.Errorf("%s: implausible Table 3 value %g", p.Name(), v)
				}
			}
			for _, v := range []float64{p.BMBPRatio, p.LogNoTrimRatio, p.LogTrimRatio} {
				if v <= 0 || v > 1 {
					t.Errorf("%s: implausible Table 4 ratio %g", p.Name(), v)
				}
			}
		}
	}
	// The paper's headline: BMBP fails only on LANL/short.
	for _, p := range Table3Queues() {
		failed := p.BMBPCorrect < 0.95
		if failed != (p.Name() == "lanl/short") {
			t.Errorf("%s: BMBP failure flag inconsistent with the paper", p.Name())
		}
	}
}

func TestFindPaperQueue(t *testing.T) {
	p := FindPaperQueue("nersc", "regular")
	if p == nil || p.JobCount != 274546 {
		t.Fatalf("lookup failed: %+v", p)
	}
	if FindPaperQueue("nope", "nope") != nil {
		t.Error("bogus lookup should be nil")
	}
}

func TestPaperQueueDates(t *testing.T) {
	p := FindPaperQueue("sdsc", "normal")
	if p.Start().Year() != 1998 || p.End().Year() != 2000 {
		t.Errorf("sdsc dates: %v - %v", p.Start(), p.End())
	}
	// Two-year span.
	if days := p.SpanSeconds() / 86400; days < 700 || days > 760 {
		t.Errorf("span days = %d", days)
	}
}
