package trace

import "time"

// This file embeds the paper's published per-queue data: the Table 1 trace
// summaries (the calibration targets for the synthetic workload generator)
// and the Tables 3/4 evaluation results (the comparison targets recorded in
// EXPERIMENTS.md, and the source of each queue's workload "character" — see
// internal/workload).

// PaperQueue is one row of the paper's Table 1, joined with that queue's
// rows from Tables 3 and 4 when present.
type PaperQueue struct {
	Machine string // paper's machine key (datastar, lanl, llnl, nersc, paragon, sdsc, tacc2)
	Queue   string

	// Trace span, by month granularity as printed in Table 1.
	StartYear, StartMonth int
	EndYear, EndMonth     int

	// Table 1 summary statistics (seconds).
	JobCount int
	AvgDelay float64
	MedDelay float64
	StdDelay float64

	// Table 3: fraction of correct 0.95-quantile/95%-confidence upper
	// bounds per method. Zero means the queue does not appear in Table 3.
	BMBPCorrect      float64
	LogNoTrimCorrect float64
	LogTrimCorrect   float64

	// Table 4: median ratio of actual over predicted wait per method.
	BMBPRatio      float64
	LogNoTrimRatio float64
	LogTrimRatio   float64

	// Buckets lists the processor-count categories for which Table 5 shows
	// a value (cells with at least 1000 jobs). Nil means the queue does
	// not appear in Tables 5-7.
	Buckets []ProcBucket
}

// Start returns the trace start as a time.Time (first of the month, UTC).
func (p *PaperQueue) Start() time.Time {
	return time.Date(p.StartYear, time.Month(p.StartMonth), 1, 0, 0, 0, 0, time.UTC)
}

// End returns the trace end as a time.Time (first of the end month, UTC).
func (p *PaperQueue) End() time.Time {
	return time.Date(p.EndYear, time.Month(p.EndMonth), 1, 0, 0, 0, 0, time.UTC)
}

// SpanSeconds returns the trace duration implied by the Table 1 dates.
func (p *PaperQueue) SpanSeconds() int64 {
	return int64(p.End().Sub(p.Start()) / time.Second)
}

// InTable3 reports whether the paper evaluated this queue in Tables 3-4.
func (p *PaperQueue) InTable3() bool { return p.BMBPCorrect != 0 }

// Name returns "machine/queue".
func (p *PaperQueue) Name() string { return p.Machine + "/" + p.Queue }

// bucket shorthands for the table below.
var (
	b14   = []ProcBucket{Procs1to4}
	b1416 = []ProcBucket{Procs1to4, Procs5to16}
	b64   = []ProcBucket{Procs1to4, Procs5to16, Procs17to64}
	bAll  = []ProcBucket{Procs1to4, Procs5to16, Procs17to64, Procs65Plus}
	b1764 = []ProcBucket{Procs17to64}
	b65   = []ProcBucket{Procs65Plus}
)

// PaperQueues transcribes the paper's Table 1 (all 39 machine/queue traces,
// 1.26 million jobs over 9 years) joined with Tables 3, 4, and 5.
var PaperQueues = []PaperQueue{
	// SDSC/Datastar, 4/04 - 4/05.
	{Machine: "datastar", Queue: "TGhigh", StartYear: 2004, StartMonth: 4, EndYear: 2005, EndMonth: 4,
		JobCount: 1488, AvgDelay: 29589, MedDelay: 6269, StdDelay: 64832,
		BMBPCorrect: 0.95, LogNoTrimCorrect: 0.92, LogTrimCorrect: 0.96,
		BMBPRatio: 4.55e-02, LogNoTrimRatio: 6.39e-02, LogTrimRatio: 1.92e-02, Buckets: b14},
	{Machine: "datastar", Queue: "TGnormal", StartYear: 2004, StartMonth: 4, EndYear: 2005, EndMonth: 4,
		JobCount: 5445, AvgDelay: 7333, MedDelay: 88, StdDelay: 28348,
		BMBPCorrect: 0.98, LogNoTrimCorrect: 0.91, LogTrimCorrect: 0.95,
		BMBPRatio: 2.18e-03, LogNoTrimRatio: 9.16e-03, LogTrimRatio: 6.63e-02, Buckets: b14},
	{Machine: "datastar", Queue: "express", StartYear: 2004, StartMonth: 4, EndYear: 2005, EndMonth: 4,
		JobCount: 11816, AvgDelay: 2585, MedDelay: 153, StdDelay: 11286,
		BMBPCorrect: 0.98, LogNoTrimCorrect: 0.92, LogTrimCorrect: 0.94,
		BMBPRatio: 1.02e-02, LogNoTrimRatio: 2.89e-02, LogTrimRatio: 2.85e-02, Buckets: b1416},
	{Machine: "datastar", Queue: "high", StartYear: 2004, StartMonth: 4, EndYear: 2005, EndMonth: 4,
		JobCount: 5176, AvgDelay: 35609, MedDelay: 1785, StdDelay: 100817,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.91, LogTrimCorrect: 0.97,
		BMBPRatio: 9.88e-03, LogNoTrimRatio: 1.92e-02, LogTrimRatio: 7.12e-03, Buckets: b1416},
	{Machine: "datastar", Queue: "high32", StartYear: 2004, StartMonth: 4, EndYear: 2005, EndMonth: 4,
		JobCount: 606, AvgDelay: 13407, MedDelay: 251, StdDelay: 32313},
	{Machine: "datastar", Queue: "interactive", StartYear: 2004, StartMonth: 4, EndYear: 2005, EndMonth: 4,
		JobCount: 5822, AvgDelay: 1117, MedDelay: 1, StdDelay: 10389},
	{Machine: "datastar", Queue: "normal", StartYear: 2004, StartMonth: 4, EndYear: 2005, EndMonth: 4,
		JobCount: 48543, AvgDelay: 35886, MedDelay: 1795, StdDelay: 100255,
		BMBPCorrect: 0.95, LogNoTrimCorrect: 0.93, LogTrimCorrect: 0.96,
		BMBPRatio: 9.43e-03, LogNoTrimRatio: 1.11e-02, LogTrimRatio: 7.78e-03, Buckets: b64},
	{Machine: "datastar", Queue: "normal32", StartYear: 2004, StartMonth: 4, EndYear: 2005, EndMonth: 4,
		JobCount: 5322, AvgDelay: 24746, MedDelay: 1234, StdDelay: 61426,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.90, LogTrimCorrect: 0.98,
		BMBPRatio: 1.80e-02, LogNoTrimRatio: 3.21e-02, LogTrimRatio: 1.05e-02, Buckets: b14},
	{Machine: "datastar", Queue: "normalL", StartYear: 2004, StartMonth: 4, EndYear: 2005, EndMonth: 4,
		JobCount: 727, AvgDelay: 48432, MedDelay: 1337, StdDelay: 97090},

	// LANL/O2K, 12/99 - 4/00.
	{Machine: "lanl", Queue: "chammpq", StartYear: 1999, StartMonth: 12, EndYear: 2000, EndMonth: 4,
		JobCount: 8102, AvgDelay: 6156, MedDelay: 33, StdDelay: 13926,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.98, LogTrimCorrect: 0.98,
		BMBPRatio: 9.22e-04, LogNoTrimRatio: 1.01e-03, LogTrimRatio: 6.80e-04, Buckets: b64},
	{Machine: "lanl", Queue: "irshared", StartYear: 1999, StartMonth: 12, EndYear: 2000, EndMonth: 4,
		JobCount: 1012, AvgDelay: 1779, MedDelay: 6, StdDelay: 17063},
	{Machine: "lanl", Queue: "medium", StartYear: 1999, StartMonth: 12, EndYear: 2000, EndMonth: 4,
		JobCount: 880, AvgDelay: 11570, MedDelay: 1670, StdDelay: 21293},
	{Machine: "lanl", Queue: "mediumd", StartYear: 1999, StartMonth: 12, EndYear: 2000, EndMonth: 4,
		JobCount: 1552, AvgDelay: 1448, MedDelay: 296, StdDelay: 8039,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.97, LogTrimCorrect: 0.97,
		BMBPRatio: 3.56e-02, LogNoTrimRatio: 3.33e-02, LogTrimRatio: 3.19e-02, Buckets: b65},
	{Machine: "lanl", Queue: "scavenger", StartYear: 1999, StartMonth: 12, EndYear: 2000, EndMonth: 4,
		JobCount: 50387, AvgDelay: 1433, MedDelay: 7, StdDelay: 7126,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.92, LogTrimCorrect: 0.96,
		BMBPRatio: 1.35e-03, LogNoTrimRatio: 3.15e-03, LogTrimRatio: 5.58e-03, Buckets: bAll},
	{Machine: "lanl", Queue: "schammpq", StartYear: 1999, StartMonth: 12, EndYear: 2000, EndMonth: 4,
		JobCount: 1386, AvgDelay: 7955, MedDelay: 8450, StdDelay: 8481,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 1.00, LogTrimCorrect: 1.00,
		BMBPRatio: 3.93e-01, LogNoTrimRatio: 4.51e-02, LogTrimRatio: 4.69e-02, Buckets: b1764},
	{Machine: "lanl", Queue: "shared", StartYear: 1999, StartMonth: 12, EndYear: 2000, EndMonth: 4,
		JobCount: 35510, AvgDelay: 1094, MedDelay: 6, StdDelay: 6752,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.89, LogTrimCorrect: 0.93,
		BMBPRatio: 1.25e-03, LogNoTrimRatio: 1.07e-02, LogTrimRatio: 2.02e-02, Buckets: b1416},
	{Machine: "lanl", Queue: "short", StartYear: 1999, StartMonth: 12, EndYear: 2000, EndMonth: 4,
		JobCount: 2639, AvgDelay: 4417, MedDelay: 13, StdDelay: 11611,
		BMBPCorrect: 0.91, LogNoTrimCorrect: 0.86, LogTrimCorrect: 0.87,
		BMBPRatio: 5.90e-04, LogNoTrimRatio: 2.34e-03, LogTrimRatio: 1.37e-03, Buckets: b1764},
	{Machine: "lanl", Queue: "small", StartYear: 1999, StartMonth: 12, EndYear: 2000, EndMonth: 4,
		JobCount: 14544, AvgDelay: 22098, MedDelay: 67, StdDelay: 81742,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.98, LogTrimCorrect: 0.98,
		BMBPRatio: 4.59e-04, LogNoTrimRatio: 3.26e-04, LogTrimRatio: 1.86e-04, Buckets: bAll},

	// LLNL/Blue Pacific, 1/02 - 10/02.
	{Machine: "llnl", Queue: "all", StartYear: 2002, StartMonth: 1, EndYear: 2002, EndMonth: 10,
		JobCount: 63959, AvgDelay: 8164, MedDelay: 242, StdDelay: 18245,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 1.00, LogTrimCorrect: 1.00,
		BMBPRatio: 4.24e-03, LogNoTrimRatio: 1.27e-03, LogTrimRatio: 1.27e-03, Buckets: b64},

	// NERSC/SP, 3/01 - 3/03.
	{Machine: "nersc", Queue: "debug", StartYear: 2001, StartMonth: 3, EndYear: 2003, EndMonth: 3,
		JobCount: 115105, AvgDelay: 332, MedDelay: 42, StdDelay: 3950,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.95, LogTrimCorrect: 0.95,
		BMBPRatio: 3.48e-02, LogNoTrimRatio: 5.47e-02, LogTrimRatio: 6.07e-02, Buckets: b1416},
	{Machine: "nersc", Queue: "interactive", StartYear: 2001, StartMonth: 3, EndYear: 2003, EndMonth: 3,
		JobCount: 36672, AvgDelay: 121, MedDelay: 1, StdDelay: 2417,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.87, LogTrimCorrect: 0.95,
		BMBPRatio: 1.08e-02, LogNoTrimRatio: 6.48e-02, LogTrimRatio: 3.03e-02, Buckets: b14},
	{Machine: "nersc", Queue: "low", StartYear: 2001, StartMonth: 3, EndYear: 2003, EndMonth: 3,
		JobCount: 56337, AvgDelay: 34314, MedDelay: 6020, StdDelay: 91886,
		BMBPCorrect: 0.96, LogNoTrimCorrect: 0.99, LogTrimCorrect: 0.99,
		BMBPRatio: 1.37e-02, LogNoTrimRatio: 6.73e-03, LogTrimRatio: 4.62e-03, Buckets: b64},
	{Machine: "nersc", Queue: "premium", StartYear: 2001, StartMonth: 3, EndYear: 2003, EndMonth: 3,
		JobCount: 24318, AvgDelay: 3987, MedDelay: 177, StdDelay: 15103,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.96, LogTrimCorrect: 0.96,
		BMBPRatio: 6.81e-03, LogNoTrimRatio: 8.74e-03, LogTrimRatio: 1.13e-02, Buckets: b1416},
	{Machine: "nersc", Queue: "regular", StartYear: 2001, StartMonth: 3, EndYear: 2003, EndMonth: 3,
		JobCount: 274546, AvgDelay: 16253, MedDelay: 1578, StdDelay: 47920,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.98, LogTrimCorrect: 0.98,
		BMBPRatio: 1.39e-02, LogNoTrimRatio: 8.46e-03, LogTrimRatio: 8.75e-03, Buckets: b64},
	{Machine: "nersc", Queue: "regularlong", StartYear: 2001, StartMonth: 3, EndYear: 2003, EndMonth: 3,
		JobCount: 3386, AvgDelay: 57645, MedDelay: 43237, StdDelay: 64471,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 1.00, LogTrimCorrect: 1.00,
		BMBPRatio: 2.19e-01, LogNoTrimRatio: 5.64e-02, LogTrimRatio: 5.64e-02, Buckets: b14},

	// SDSC/Paragon, 1/95 - 1/96.
	{Machine: "paragon", Queue: "q11", StartYear: 1995, StartMonth: 1, EndYear: 1996, EndMonth: 1,
		JobCount: 5755, AvgDelay: 16319, MedDelay: 10205, StdDelay: 27086,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 1.00, LogTrimCorrect: 1.00,
		BMBPRatio: 9.60e-02, LogNoTrimRatio: 5.93e-02, LogTrimRatio: 4.21e-02},
	{Machine: "paragon", Queue: "q256s", StartYear: 1995, StartMonth: 1, EndYear: 1996, EndMonth: 1,
		JobCount: 1076, AvgDelay: 808, MedDelay: 7, StdDelay: 7477,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.95, LogTrimCorrect: 0.95,
		BMBPRatio: 1.29e-03, LogNoTrimRatio: 4.41e-03, LogTrimRatio: 8.16e-03},
	{Machine: "paragon", Queue: "q32l", StartYear: 1995, StartMonth: 1, EndYear: 1996, EndMonth: 1,
		JobCount: 1013, AvgDelay: 4301, MedDelay: 8, StdDelay: 12565},
	{Machine: "paragon", Queue: "q641", StartYear: 1995, StartMonth: 1, EndYear: 1996, EndMonth: 1,
		JobCount: 3425, AvgDelay: 4324, MedDelay: 11, StdDelay: 11240,
		BMBPCorrect: 0.98, LogNoTrimCorrect: 0.98, LogTrimCorrect: 0.99,
		BMBPRatio: 2.95e-04, LogNoTrimRatio: 3.38e-04, LogTrimRatio: 3.04e-04},
	{Machine: "paragon", Queue: "standby", StartYear: 1995, StartMonth: 1, EndYear: 1996, EndMonth: 1,
		JobCount: 8896, AvgDelay: 14602, MedDelay: 604, StdDelay: 35805,
		BMBPCorrect: 0.98, LogNoTrimCorrect: 0.99, LogTrimCorrect: 0.98,
		BMBPRatio: 3.48e-03, LogNoTrimRatio: 2.15e-03, LogTrimRatio: 2.39e-03},

	// SDSC/SP, 4/98 - 4/00.
	{Machine: "sdsc", Queue: "express", StartYear: 1998, StartMonth: 4, EndYear: 2000, EndMonth: 4,
		JobCount: 4978, AvgDelay: 1135, MedDelay: 22, StdDelay: 4224,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.84, LogTrimCorrect: 0.94,
		BMBPRatio: 2.38e-03, LogNoTrimRatio: 1.72e-02, LogTrimRatio: 8.44e-03, Buckets: b14},
	{Machine: "sdsc", Queue: "high", StartYear: 1998, StartMonth: 4, EndYear: 2000, EndMonth: 4,
		JobCount: 8809, AvgDelay: 16545, MedDelay: 567, StdDelay: 133046,
		BMBPCorrect: 0.96, LogNoTrimCorrect: 0.95, LogTrimCorrect: 0.98,
		BMBPRatio: 9.05e-03, LogNoTrimRatio: 1.09e-02, LogTrimRatio: 5.98e-03, Buckets: b64},
	{Machine: "sdsc", Queue: "low", StartYear: 1998, StartMonth: 4, EndYear: 2000, EndMonth: 4,
		JobCount: 22709, AvgDelay: 20962, MedDelay: 34, StdDelay: 95107,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.90, LogTrimCorrect: 0.98,
		BMBPRatio: 4.08e-03, LogNoTrimRatio: 1.92e-03, LogTrimRatio: 4.20e-03, Buckets: b64},
	{Machine: "sdsc", Queue: "normal", StartYear: 1998, StartMonth: 4, EndYear: 2000, EndMonth: 4,
		JobCount: 30831, AvgDelay: 26324, MedDelay: 89, StdDelay: 101900,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.93, LogTrimCorrect: 0.98,
		BMBPRatio: 7.93e-04, LogNoTrimRatio: 1.20e-03, LogTrimRatio: 5.76e-04, Buckets: b64},

	// TACC/Cray-Dell (Lonestar).
	{Machine: "tacc2", Queue: "development", StartYear: 2004, StartMonth: 1, EndYear: 2005, EndMonth: 3,
		JobCount: 5829, AvgDelay: 74, MedDelay: 9, StdDelay: 1850,
		BMBPCorrect: 0.98, LogNoTrimCorrect: 0.97, LogTrimCorrect: 0.98,
		BMBPRatio: 3.75e-01, LogNoTrimRatio: 3.81e-01, LogTrimRatio: 3.20e-01, Buckets: b1416},
	{Machine: "tacc2", Queue: "hero", StartYear: 2004, StartMonth: 2, EndYear: 2004, EndMonth: 12,
		JobCount: 48, AvgDelay: 28636, MedDelay: 12, StdDelay: 71168},
	{Machine: "tacc2", Queue: "high", StartYear: 2004, StartMonth: 2, EndYear: 2005, EndMonth: 3,
		JobCount: 2110, AvgDelay: 5392, MedDelay: 10, StdDelay: 33366,
		BMBPCorrect: 0.99, LogNoTrimCorrect: 0.97, LogTrimCorrect: 0.97,
		BMBPRatio: 2.38e-04, LogNoTrimRatio: 1.19e-03, LogTrimRatio: 1.10e-03},
	{Machine: "tacc2", Queue: "normal", StartYear: 2004, StartMonth: 1, EndYear: 2005, EndMonth: 3,
		JobCount: 356487, AvgDelay: 732, MedDelay: 10, StdDelay: 9436,
		BMBPCorrect: 0.99, LogNoTrimCorrect: 0.96, LogTrimCorrect: 0.98,
		BMBPRatio: 4.88e-03, LogNoTrimRatio: 2.78e-02, LogTrimRatio: 2.92e-02, Buckets: bAll},
	{Machine: "tacc2", Queue: "serial", StartYear: 2004, StartMonth: 8, EndYear: 2005, EndMonth: 3,
		JobCount: 7860, AvgDelay: 2178, MedDelay: 10, StdDelay: 13702,
		BMBPCorrect: 0.97, LogNoTrimCorrect: 0.89, LogTrimCorrect: 0.96,
		BMBPRatio: 2.18e-03, LogNoTrimRatio: 2.10e-02, LogTrimRatio: 1.90e-02, Buckets: b14},
}

// FindPaperQueue returns the embedded row for machine/queue, or nil.
func FindPaperQueue(machine, queue string) *PaperQueue {
	for i := range PaperQueues {
		if PaperQueues[i].Machine == machine && PaperQueues[i].Queue == queue {
			return &PaperQueues[i]
		}
	}
	return nil
}

// Table3Queues returns the queues the paper evaluates in Tables 3 and 4,
// in table order.
func Table3Queues() []*PaperQueue {
	var out []*PaperQueue
	for i := range PaperQueues {
		if PaperQueues[i].InTable3() {
			out = append(out, &PaperQueues[i])
		}
	}
	return out
}

// Table5Queues returns the queues the paper evaluates in Tables 5-7 (those
// with processor-count breakdowns), in table order.
func Table5Queues() []*PaperQueue {
	var out []*PaperQueue
	for i := range PaperQueues {
		if PaperQueues[i].Buckets != nil {
			out = append(out, &PaperQueues[i])
		}
	}
	return out
}

// TotalPaperJobs returns the total job count across all embedded traces
// (the paper reports 1.26 million).
func TotalPaperJobs() int {
	total := 0
	for i := range PaperQueues {
		total += PaperQueues[i].JobCount
	}
	return total
}
