package trace

import (
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic on hostile input, and
// anything they accept must round-trip consistently.

func FuzzRead(f *testing.F) {
	f.Add("# machine=m queue=q\n100 5 2\n")
	f.Add("100 5 2 3600\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("-1 -2 -3\n")
	f.Add("9223372036854775807 1e308 2147483647\n")
	f.Add("100 5 2\r\n200 6 4\r\n")
	f.Add("# machine=m queue=q\n# machine=n queue=r\n1 1 1\n")
	f.Add("1 NaN 2\n")
	f.Add("1 Inf 2\n")
	f.Add("0x10 5 2\n")
	f.Add("100\t5\t2\n")
	f.Add("100 5 2 extra trailing fields here\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input: invariants hold.
		for _, j := range tr.Jobs {
			if j.Wait < 0 {
				t.Fatalf("accepted negative wait %g", j.Wait)
			}
		}
		// And a write/read round trip preserves the jobs.
		var sb strings.Builder
		if err := Write(&sb, tr); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip lost jobs: %d vs %d", back.Len(), tr.Len())
		}
	})
}

func FuzzReadSWF(f *testing.F) {
	f.Add(sampleSWF)
	f.Add("; UnixStartTime: notanumber\n1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n")
	f.Add("1 2 3\n")
	f.Add(strings.Repeat("0 ", 18) + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		traces, _, err := ReadSWF(strings.NewReader(input), SWFOptions{})
		if err != nil {
			return
		}
		for _, tr := range traces {
			for _, j := range tr.Jobs {
				if j.Wait < 0 || j.Procs < 1 {
					t.Fatalf("accepted bad job %+v", j)
				}
			}
		}
	})
}
