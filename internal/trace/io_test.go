package trace

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestReadWriteRoundTrip(t *testing.T) {
	orig := sampleTrace()
	orig.Jobs[0].Runtime = 3600

	var sb strings.Builder
	if err := Write(&sb, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Machine != "m" || got.Queue != "q" {
		t.Errorf("header lost: %q %q", got.Machine, got.Queue)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("job count %d vs %d", got.Len(), orig.Len())
	}
	for i := range orig.Jobs {
		if got.Jobs[i] != orig.Jobs[i] {
			t.Errorf("job %d: %+v vs %+v", i, got.Jobs[i], orig.Jobs[i])
		}
	}
}

func TestReadWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	orig := sampleTrace()
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatal("length mismatch")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadToleratesCommentsAndBlankLines(t *testing.T) {
	in := `# machine=x queue=y
# free-form comment

100 5 2
200 7.5 16 120
`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Machine != "x" || tr.Queue != "y" || tr.Len() != 2 {
		t.Fatalf("%+v", tr)
	}
	if tr.Jobs[1].Wait != 7.5 || tr.Jobs[1].Runtime != 120 {
		t.Errorf("job 1 = %+v", tr.Jobs[1])
	}
}

func TestReadRejectsMalformedLines(t *testing.T) {
	cases := []string{
		"100 5",           // too few fields
		"abc 5 2",         // bad submit
		"100 xyz 2",       // bad wait
		"100 5 q",         // bad procs
		"100 -3 2",        // negative wait
		"100 5 2 notanum", // bad runtime
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}
