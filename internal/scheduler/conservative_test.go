package scheduler

import (
	"sort"
	"testing"

	"repro/internal/stats"
)

func TestProfileBasics(t *testing.T) {
	// 4-proc machine, 1 free now; 1 proc back at t=50, 2 more at t=100.
	run := []running{
		{procs: 1, end: 50, est: 50},
		{procs: 2, end: 100, est: 100},
	}
	p := newProfile(10, 1, 4, run)
	if got := p.minFreeBetween(10, 50); got != 1 {
		t.Errorf("minFree [10,50) = %d", got)
	}
	if got := p.minFreeBetween(10, 60); got != 1 {
		t.Errorf("minFree [10,60) = %d", got)
	}
	if got := p.minFreeBetween(50, 100); got != 2 {
		t.Errorf("minFree [50,100) = %d", got)
	}
	if got := p.minFreeBetween(100, 200); got != 4 {
		t.Errorf("minFree [100,200) = %d", got)
	}
	// Earliest fits.
	if got := p.earliestFit(10, 1, 1000); got != 10 {
		t.Errorf("1-proc fit = %d", got)
	}
	if got := p.earliestFit(10, 2, 1000); got != 50 {
		t.Errorf("2-proc fit = %d", got)
	}
	if got := p.earliestFit(10, 4, 1000); got != 100 {
		t.Errorf("4-proc fit = %d", got)
	}
}

func TestProfileReserve(t *testing.T) {
	p := newProfile(0, 4, 4, nil)
	p.reserve(10, 20, 3)
	if got := p.minFreeBetween(10, 20); got != 1 {
		t.Errorf("reserved window free = %d", got)
	}
	if got := p.minFreeBetween(0, 10); got != 4 {
		t.Errorf("pre-window free = %d", got)
	}
	if got := p.minFreeBetween(20, 30); got != 4 {
		t.Errorf("post-window free = %d", got)
	}
	// A 2-proc job for duration 15 cannot start before the window ends
	// unless it finishes first.
	if got := p.earliestFit(0, 2, 15); got != 20 {
		t.Errorf("2x15 fit = %d", got)
	}
	if got := p.earliestFit(0, 1, 100); got != 0 {
		t.Errorf("1x100 fit = %d", got)
	}
}

func TestConservativeBackfillNeverDelaysAnyReservation(t *testing.T) {
	// Under EASY, a backfill job may delay the SECOND waiting job (only
	// the head is protected). Under conservative it may not.
	//
	// Machine of 4. Job0 holds 3 procs until t=100 (1 idle).
	// Job1 wants 4 (reserved at t=100). Job2 wants 2 for 100s: its
	// earliest conservative reservation is t=200 (after job1), and it
	// must NOT grab the idle processor in a way that delays job1 — it
	// cannot run now anyway (needs 2, only 1 free).
	// Job3 wants 1 for 40s: under both policies it can run now; under
	// conservative only because it fits before/alongside every earlier
	// reservation.
	jobs := []*Job{
		{ID: 0, Queue: "q", Procs: 3, Submit: 0, Runtime: 100, Estimate: 100},
		{ID: 1, Queue: "q", Procs: 4, Submit: 1, Runtime: 50, Estimate: 50},
		{ID: 2, Queue: "q", Procs: 2, Submit: 2, Runtime: 100, Estimate: 100},
		{ID: 3, Queue: "q", Procs: 1, Submit: 3, Runtime: 40, Estimate: 40},
	}
	if _, err := Run(oneQueuePolicy(4, Conservative), jobs); err != nil {
		t.Fatal(err)
	}
	if jobs[1].Start() != 100 {
		t.Errorf("job1 start = %d, want 100 (reservation kept)", jobs[1].Start())
	}
	if jobs[3].Start() != 3 {
		t.Errorf("job3 start = %d, want 3 (conservative backfill)", jobs[3].Start())
	}
	if jobs[2].Start() < 150 {
		t.Errorf("job2 start = %d, must follow job1", jobs[2].Start())
	}
}

func TestConservativeVsEASYAggressiveness(t *testing.T) {
	// EASY backfills at least as much as conservative on the same stream,
	// and both strictly beat FCFS on mean wait under contention.
	gen := func() []*Job {
		return GenerateJobs(WorkloadConfig{Jobs: 4000, Seed: 11, MeanInterarrival: 300})
	}
	meanWait := func(policy Policy) (float64, int) {
		jobs := gen()
		cfg := DefaultMachine()
		cfg.Policy = policy
		res, err := Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		waits := make([]float64, len(jobs))
		for i, j := range jobs {
			waits[i] = j.Wait()
		}
		return stats.Mean(waits), res.Backfilled
	}
	fcfs, bf0 := meanWait(FCFS)
	easy, bf1 := meanWait(EASY)
	cons, bf2 := meanWait(Conservative)
	if bf0 != 0 {
		t.Errorf("FCFS backfilled %d", bf0)
	}
	if bf1 == 0 || bf2 == 0 {
		t.Errorf("backfill counts: easy=%d conservative=%d", bf1, bf2)
	}
	if easy >= fcfs {
		t.Errorf("EASY mean wait %.0f should beat FCFS %.0f", easy, fcfs)
	}
	if cons >= fcfs {
		t.Errorf("conservative mean wait %.0f should beat FCFS %.0f", cons, fcfs)
	}
	t.Logf("mean waits: fcfs=%.0f easy=%.0f conservative=%.0f (backfilled %d/%d)", fcfs, easy, cons, bf1, bf2)
}

func TestConservativeCorrectness(t *testing.T) {
	// Every job eventually starts, none before submission, and processor
	// capacity is never exceeded at any start instant.
	jobs := GenerateJobs(WorkloadConfig{Jobs: 3000, Seed: 5})
	cfg := DefaultMachine()
	cfg.Policy = Conservative
	if _, err := Run(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	type ev struct {
		t int64
		d int
	}
	var evs []ev
	for _, j := range jobs {
		if j.Start() < j.Submit {
			t.Fatalf("job %d started before submission", j.ID)
		}
		evs = append(evs, ev{j.Start(), j.Procs}, ev{j.Start() + int64(j.Runtime), -j.Procs})
	}
	// Sweep capacity: releases (negative deltas) before starts at equal
	// times.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d < evs[j].d
	})
	inUse := 0
	for _, e := range evs {
		inUse += e.d
		if inUse > cfg.Procs {
			t.Fatalf("capacity exceeded: %d > %d at t=%d", inUse, cfg.Procs, e.t)
		}
	}
}

func TestProfileReserveSpansMultipleSegments(t *testing.T) {
	// Steps: [0,50)=2 free, [50,100)=3, [100,inf)=4. A reservation over
	// [25,150) crosses all three segments and must subtract from each,
	// splitting only at its own endpoints.
	run := []running{
		{procs: 1, end: 50, est: 50},
		{procs: 1, end: 100, est: 100},
	}
	p := newProfile(0, 2, 4, run)
	p.reserve(25, 150, 1)
	for _, tc := range []struct {
		from, to int64
		want     int
	}{
		{0, 25, 2},    // before the reservation: untouched
		{25, 50, 1},   // first partial segment
		{50, 100, 2},  // fully covered middle segment
		{100, 150, 3}, // trailing partial segment
		{150, 500, 4}, // after the reservation: everything free again
		{0, 150, 1},   // whole window bottoms out in the first segment
	} {
		if got := p.minFreeBetween(tc.from, tc.to); got != tc.want {
			t.Errorf("minFree [%d,%d) = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
	// The reservation must still be feasible to stack where room remains:
	// a 2x30 job overlaps the reserved [25,50) stretch from any start
	// before 50, so its earliest fit is the 2-free middle segment.
	if got := p.earliestFit(0, 2, 30); got != 50 {
		t.Errorf("2x30 fit = %d, want 50", got)
	}
}

func TestProfileSplitAtExistingBoundary(t *testing.T) {
	// Reserving exactly along existing step boundaries must not insert
	// duplicate steps or disturb neighbors.
	run := []running{
		{procs: 1, end: 50, est: 50},
		{procs: 1, end: 100, est: 100},
	}
	p := newProfile(0, 2, 4, run)
	nsteps := len(p.steps)
	p.reserve(50, 100, 2)
	if len(p.steps) != nsteps {
		t.Fatalf("reserve on existing boundaries grew steps %d -> %d", nsteps, len(p.steps))
	}
	for i := 1; i < len(p.steps); i++ {
		if p.steps[i].t <= p.steps[i-1].t {
			t.Fatalf("steps out of order or duplicated: %+v", p.steps)
		}
	}
	for _, tc := range []struct {
		from, to int64
		want     int
	}{
		{0, 50, 2},
		{50, 100, 1},
		{100, 200, 4},
	} {
		if got := p.minFreeBetween(tc.from, tc.to); got != tc.want {
			t.Errorf("minFree [%d,%d) = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
	// splitAt before the profile start is a no-op: there is no earlier
	// segment to split.
	p.splitAt(-10)
	if len(p.steps) != nsteps {
		t.Fatalf("splitAt before start grew steps: %+v", p.steps)
	}
}

func TestProfileZeroLengthWindows(t *testing.T) {
	run := []running{{procs: 2, end: 50, est: 50}}
	p := newProfile(0, 2, 4, run)
	// A zero-length window strictly inside a segment is a point query.
	if got := p.minFreeBetween(25, 25); got != 2 {
		t.Errorf("minFree [25,25) = %d, want 2", got)
	}
	// On a boundary it covers no segment at all, so it cannot constrain
	// anything (vacuously "all free").
	if got := p.minFreeBetween(50, 50); got < 4 {
		t.Errorf("minFree [50,50) = %d constrains a vacuous window", got)
	}
	// A zero-length reservation is a no-op...
	p.reserve(25, 25, 4)
	if got := p.minFreeBetween(0, 50); got != 2 {
		t.Errorf("zero-length reserve changed the profile: minFree = %d", got)
	}
	// ...and a zero-duration job is treated as needing one second, so it
	// still cannot start where its processors are not actually free.
	if got := p.earliestFit(0, 4, 0); got != 50 {
		t.Errorf("4x0 fit = %d, want 50", got)
	}
}
