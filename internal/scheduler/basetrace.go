package scheduler

import (
	"math"
	"math/rand"
)

// BaseTrace is the common-random-numbers (CRN) form of the synthetic
// workload: the raw random draws behind a job stream, captured once,
// separate from the config-dependent transforms that turn them into jobs.
// A what-if scenario grid materializes every scenario from ONE base trace —
// same jobs, perturbed arrival rate or processor caps — so cross-scenario
// deltas measure the perturbation, not sampling noise, and per-scenario
// generation skips the RNG entirely (the dominant cost of GenerateJobs).
//
// Fill with a zero Perturbation reproduces GenerateJobs byte for byte:
// GenerateJobs itself is implemented through a BaseTrace, and the seed-42
// differential golden test pins the combined pipeline.
type BaseTrace struct {
	cfg WorkloadConfig // defaults applied

	// Raw draws, in the exact order GenerateJobs consumed the RNG:
	// interarrival exponential, processor exponent (its own variable-length
	// coin-flip sequence), log-runtime normal, estimate uniform, queue
	// uniform.
	inter  []float64
	pexp   []uint8
	rnorm  []float64
	estU   []float64
	queueU []float64

	wsum float64
}

// Perturbation reshapes a base trace into one scenario's workload. The zero
// value reproduces the base workload exactly.
type Perturbation struct {
	// RateMultiplier scales the arrival rate (interarrivals divide by it);
	// 1.2 means 20% more load. 0 means 1.
	RateMultiplier float64
	// MaxProcs caps per-job processor requests below the base config's cap
	// (0 = base cap). Scenarios that shrink the machine set this so the
	// workload stays admissible.
	MaxProcs int
}

// NewBaseTrace samples the raw draws for cfg's job stream. The draw
// sequence depends only on Seed and Jobs, never on the transform
// parameters — that is what makes the perturbed replays common-random.
func NewBaseTrace(cfg WorkloadConfig) *BaseTrace {
	cfg = cfg.withDefaults()
	bt := &BaseTrace{
		cfg:    cfg,
		inter:  make([]float64, cfg.Jobs),
		pexp:   make([]uint8, cfg.Jobs),
		rnorm:  make([]float64, cfg.Jobs),
		estU:   make([]float64, cfg.Jobs),
		queueU: make([]float64, cfg.Jobs),
	}
	for _, w := range cfg.QueueWeights {
		bt.wsum += w
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Jobs; i++ {
		bt.inter[i] = rng.ExpFloat64()
		exp := uint8(0)
		for exp < 10 && rng.Float64() < 0.45 {
			exp++
		}
		bt.pexp[i] = exp
		bt.rnorm[i] = rng.NormFloat64()
		bt.estU[i] = rng.Float64()
		bt.queueU[i] = rng.Float64()
	}
	return bt
}

// Len returns the number of jobs the trace materializes.
func (bt *BaseTrace) Len() int { return len(bt.inter) }

// Config returns the workload config (defaults applied) behind the trace.
func (bt *BaseTrace) Config() WorkloadConfig { return bt.cfg }

// Fill materializes the trace under p into dst, reusing dst's capacity
// (pass a kernel's Jobs arena for allocation-free scenario replay), and
// returns the filled slice. Every transform GenerateJobs applies — diurnal
// modulation, queue routing, ceiling clamps — is reapplied here against the
// perturbed parameters, so e.g. a higher arrival rate legitimately shifts
// which jobs land in "working hours".
func (bt *BaseTrace) Fill(dst []Job, p Perturbation) []Job {
	cfg := bt.cfg
	n := bt.Len()
	if cap(dst) < n {
		dst = make([]Job, n)
	}
	dst = dst[:n]

	rateMul := p.RateMultiplier
	if rateMul <= 0 {
		rateMul = 1
	}
	maxProcs := cfg.MaxProcs
	if p.MaxProcs > 0 && p.MaxProcs < maxProcs {
		maxProcs = p.MaxProcs
	}

	t := float64(cfg.Start)
	for i := 0; i < n; i++ {
		// Diurnal modulation: submissions cluster in "working hours" of a
		// 24h cycle, like every published workload study observes.
		hour := math.Mod(t/3600, 24)
		rate := 1.0
		if hour >= 8 && hour < 20 {
			rate = 0.6 // busier: shorter interarrivals
		} else {
			rate = 1.8
		}
		t += bt.inter[i] * cfg.MeanInterarrival * rate / rateMul

		// Processor counts: powers of two, heavily weighted small.
		procs := 1 << bt.pexp[i]
		if procs > maxProcs {
			procs = maxProcs
		}

		runtime := math.Exp(cfg.RuntimeMu + cfg.RuntimeSigma*bt.rnorm[i])
		if runtime < 10 {
			runtime = 10
		}
		estimate := runtime * (1 + bt.estU[i]*(cfg.OverestimateMax-1))

		u := bt.queueU[i] * bt.wsum
		queue := cfg.QueueNames[len(cfg.QueueNames)-1]
		for qi, w := range cfg.QueueWeights {
			if u <= w {
				queue = cfg.QueueNames[qi]
				break
			}
			u -= w
		}
		// Users route around advertised constraints: a job too long for
		// its drawn queue goes to the next queue down that accommodates
		// it; a job still too long for the last queue is shortened to fit
		// (checkpoint-and-resubmit behavior).
		for qi := indexOf(cfg.QueueNames, queue); qi < len(cfg.QueueNames); qi++ {
			queue = cfg.QueueNames[qi]
			ceil := cfg.QueueMaxRuntime[queue]
			if ceil <= 0 || runtime <= ceil {
				break
			}
			if qi == len(cfg.QueueNames)-1 {
				runtime = ceil * 0.95
			}
		}
		if ceil := cfg.QueueMaxRuntime[queue]; ceil > 0 && estimate > ceil {
			estimate = ceil
		}
		if estimate < runtime {
			estimate = runtime
		}
		// And within the queue's advertised processor cap.
		if qcap, ok := cfg.QueueMaxProcs[queue]; ok && qcap > 0 && procs > qcap {
			procs = qcap
		}

		dst[i] = Job{
			ID:       i,
			Queue:    queue,
			Procs:    procs,
			Submit:   int64(t),
			Estimate: estimate,
			Runtime:  runtime,
			start:    -1,
		}
	}
	return dst
}
