// Package scheduler implements a space-shared batch scheduler simulator:
// the substrate whose behaviour the paper's archival logs record. A machine
// with a fixed processor count serves multiple priority queues under
// priority-FCFS scheduling with EASY backfilling (Lifka's ANL/IBM SP
// system, reference [15] of the paper). Jobs receive dedicated processor
// partitions — no time sharing — so a job waits in queue exactly until
// enough processors are free and the policy selects it.
//
// The simulator exists for three reasons. First, it generates wait-time
// traces mechanistically (waits emerge from contention, reservations, and
// backfill holes rather than from a closed-form distribution), providing an
// independent check that BMBP's correctness does not depend on the
// synthetic trace generator's distributional choices. Second, it
// demonstrates the folklore of the paper's Section 6.2 — small jobs
// backfill into the machine around large ones — as an emergent effect.
// Third, it is the engine of the what-if capacity-planning plane
// (internal/whatif): a calibrated replay cheap enough to run dozens of
// times per HTTP request, which is why the replay state lives in a
// reusable Kernel (kernel.go) instead of being allocated per run.
package scheduler

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// QueueClass describes one scheduler queue and its published constraints
// (the part of the policy HPC centers advertise to users).
type QueueClass struct {
	Name string
	// Priority orders queues at selection time; higher is served first.
	Priority int
	// MaxRuntime is the advertised runtime ceiling in seconds; submitted
	// estimates are clamped to it (0 = unlimited).
	MaxRuntime float64
	// MaxProcs is the advertised processor ceiling (0 = machine size).
	MaxProcs int
}

// Job is one submission to the simulated machine.
type Job struct {
	ID     int
	Queue  string
	Procs  int
	Submit int64
	// Estimate is the user-supplied runtime estimate in seconds; EASY
	// backfilling plans reservations with it.
	Estimate float64
	// Runtime is the actual execution duration in seconds.
	Runtime float64
	// Killed marks a job terminated at its queue's runtime ceiling
	// (set by Run when Runtime exceeded the queue's MaxRuntime).
	Killed bool

	start int64 // assigned start time; -1 until scheduled
}

// Wait returns the queuing delay the job experienced (valid after Run).
func (j *Job) Wait() float64 { return float64(j.start - j.Submit) }

// Start returns the assigned start time (valid after Run).
func (j *Job) Start() int64 { return j.start }

// Policy selects the scheduling discipline.
type Policy int

const (
	// FCFS is pure priority-first-come-first-served: nothing starts out
	// of order, so small jobs gain no advantage.
	FCFS Policy = iota
	// EASY is aggressive backfilling (Lifka's ANL/IBM SP system, the
	// paper's reference [15]): only the head job holds a reservation;
	// anything that does not delay it may jump ahead.
	EASY
	// Conservative backfilling gives every waiting job a reservation; a
	// job may only jump ahead if it delays none of them. Predictable but
	// less aggressive — the classic trade-off against EASY.
	Conservative
)

func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case EASY:
		return "easy"
	case Conservative:
		return "conservative"
	default:
		return "unknown"
	}
}

// ParsePolicy is the inverse of Policy.String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fcfs":
		return FCFS, nil
	case "easy":
		return EASY, nil
	case "conservative":
		return Conservative, nil
	}
	return FCFS, fmt.Errorf("scheduler: unknown policy %q (want fcfs, easy, or conservative)", s)
}

// Downtime takes part of the machine offline for a window, with drain
// semantics: running jobs finish, but the lost processors accept no new
// work until the window ends. Maintenance windows and node failures are
// the classic cause of the congestion episodes batch logs show — waits
// build while capacity is down and drain afterward.
type Downtime struct {
	From, To int64
	// Procs is how many processors go offline.
	Procs int
}

// Config describes the simulated machine.
type Config struct {
	// Procs is the machine's processor count.
	Procs int
	// Queues lists the queue classes; at least one is required.
	Queues []QueueClass
	// Policy selects the scheduling discipline (default FCFS).
	Policy Policy
	// Downtimes lists capacity-reduction windows (may overlap; the
	// offline count is capped at Procs-1 so the machine never vanishes).
	Downtimes []Downtime
}

// offlineAt returns how many processors are offline at time t.
func (c *Config) offlineAt(t int64) int {
	off := 0
	for _, d := range c.Downtimes {
		if t >= d.From && t < d.To {
			off += d.Procs
		}
	}
	if off >= c.Procs {
		off = c.Procs - 1
	}
	if off < 0 {
		off = 0
	}
	return off
}

// downtimeBoundaries returns every capacity-change instant, sorted. The
// kernel keeps an arena-backed copy (rebuildBoundaries); this allocating
// form remains for callers inspecting a Config on its own.
func (c *Config) downtimeBoundaries() []int64 {
	var b []int64
	for _, d := range c.Downtimes {
		if d.To > d.From && d.Procs > 0 {
			b = append(b, d.From, d.To)
		}
	}
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return b
}

// Result is the outcome of a scheduling run.
type Result struct {
	Jobs []*Job
	// Makespan is the completion time of the last job.
	Makespan int64
	// Utilization is busy processor-seconds over Procs·Makespan.
	Utilization float64
	// Backfilled counts jobs started out of priority order.
	Backfilled int
}

// Trace converts the run into a wait-time trace for one queue ("" = all
// queues merged, tagged by machine name).
func (r *Result) Trace(machine, queue string) *trace.Trace {
	t := &trace.Trace{Machine: machine, Queue: queue}
	if queue == "" {
		t.Queue = "all"
	}
	for _, j := range r.Jobs {
		if queue != "" && j.Queue != queue {
			continue
		}
		t.Jobs = append(t.Jobs, trace.Job{
			Submit:  j.Submit,
			Wait:    j.Wait(),
			Procs:   j.Procs,
			Runtime: j.Runtime,
		})
	}
	t.SortBySubmit()
	return t
}

// running is a scheduled job occupying processors until its end time.
type running struct {
	procs int
	end   int64 // actual completion
	est   int64 // estimated completion (reservation planning uses this)
}

// Run replays the jobs (any order; sorted by submit internally) through the
// machine and assigns every job a start time. It returns an error for jobs
// that can never run (more processors than the machine has).
//
// Run is the single-shot entry point: it builds a fresh Kernel, replays
// through it, and copies assigned starts (and any queue-ceiling clamps)
// back onto the caller's jobs. Repeated replays — the what-if plane, the
// calibration sweeps — should hold a Kernel and reuse it; back-to-back
// kernel runs are allocation-free in steady state.
func Run(cfg Config, jobs []*Job) (*Result, error) {
	k := NewKernel()
	arena := k.Jobs(len(jobs))
	for i, j := range jobs {
		arena[i] = *j
	}
	kr, err := k.Run(cfg)
	if err != nil {
		// Validation clamps (estimate/runtime ceilings) observed before
		// the error are still reflected, matching the pre-kernel Run.
		for i := range arena {
			*jobs[i] = arena[i]
		}
		return nil, err
	}
	for i := range kr.Jobs {
		*jobs[i] = kr.Jobs[i]
	}
	return &Result{
		Jobs:        jobs,
		Makespan:    kr.Makespan,
		Utilization: kr.Utilization,
		Backfilled:  kr.Backfilled,
	}, nil
}
