// Package scheduler implements a space-shared batch scheduler simulator:
// the substrate whose behaviour the paper's archival logs record. A machine
// with a fixed processor count serves multiple priority queues under
// priority-FCFS scheduling with EASY backfilling (Lifka's ANL/IBM SP
// system, reference [15] of the paper). Jobs receive dedicated processor
// partitions — no time sharing — so a job waits in queue exactly until
// enough processors are free and the policy selects it.
//
// The simulator exists for two reasons. First, it generates wait-time
// traces mechanistically (waits emerge from contention, reservations, and
// backfill holes rather than from a closed-form distribution), providing an
// independent check that BMBP's correctness does not depend on the
// synthetic trace generator's distributional choices. Second, it
// demonstrates the folklore of the paper's Section 6.2 — small jobs
// backfill into the machine around large ones — as an emergent effect.
package scheduler

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/trace"
)

// QueueClass describes one scheduler queue and its published constraints
// (the part of the policy HPC centers advertise to users).
type QueueClass struct {
	Name string
	// Priority orders queues at selection time; higher is served first.
	Priority int
	// MaxRuntime is the advertised runtime ceiling in seconds; submitted
	// estimates are clamped to it (0 = unlimited).
	MaxRuntime float64
	// MaxProcs is the advertised processor ceiling (0 = machine size).
	MaxProcs int
}

// Job is one submission to the simulated machine.
type Job struct {
	ID     int
	Queue  string
	Procs  int
	Submit int64
	// Estimate is the user-supplied runtime estimate in seconds; EASY
	// backfilling plans reservations with it.
	Estimate float64
	// Runtime is the actual execution duration in seconds.
	Runtime float64
	// Killed marks a job terminated at its queue's runtime ceiling
	// (set by Run when Runtime exceeded the queue's MaxRuntime).
	Killed bool

	start int64 // assigned start time; -1 until scheduled
}

// Wait returns the queuing delay the job experienced (valid after Run).
func (j *Job) Wait() float64 { return float64(j.start - j.Submit) }

// Start returns the assigned start time (valid after Run).
func (j *Job) Start() int64 { return j.start }

// Policy selects the scheduling discipline.
type Policy int

const (
	// FCFS is pure priority-first-come-first-served: nothing starts out
	// of order, so small jobs gain no advantage.
	FCFS Policy = iota
	// EASY is aggressive backfilling (Lifka's ANL/IBM SP system, the
	// paper's reference [15]): only the head job holds a reservation;
	// anything that does not delay it may jump ahead.
	EASY
	// Conservative backfilling gives every waiting job a reservation; a
	// job may only jump ahead if it delays none of them. Predictable but
	// less aggressive — the classic trade-off against EASY.
	Conservative
)

func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case EASY:
		return "easy"
	case Conservative:
		return "conservative"
	default:
		return "unknown"
	}
}

// Downtime takes part of the machine offline for a window, with drain
// semantics: running jobs finish, but the lost processors accept no new
// work until the window ends. Maintenance windows and node failures are
// the classic cause of the congestion episodes batch logs show — waits
// build while capacity is down and drain afterward.
type Downtime struct {
	From, To int64
	// Procs is how many processors go offline.
	Procs int
}

// Config describes the simulated machine.
type Config struct {
	// Procs is the machine's processor count.
	Procs int
	// Queues lists the queue classes; at least one is required.
	Queues []QueueClass
	// Policy selects the scheduling discipline (default FCFS).
	Policy Policy
	// Downtimes lists capacity-reduction windows (may overlap; the
	// offline count is capped at Procs-1 so the machine never vanishes).
	Downtimes []Downtime
}

// offlineAt returns how many processors are offline at time t.
func (c *Config) offlineAt(t int64) int {
	off := 0
	for _, d := range c.Downtimes {
		if t >= d.From && t < d.To {
			off += d.Procs
		}
	}
	if off >= c.Procs {
		off = c.Procs - 1
	}
	if off < 0 {
		off = 0
	}
	return off
}

// downtimeBoundaries returns every capacity-change instant, sorted.
func (c *Config) downtimeBoundaries() []int64 {
	var out []int64
	for _, d := range c.Downtimes {
		if d.To > d.From && d.Procs > 0 {
			out = append(out, d.From, d.To)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Result is the outcome of a scheduling run.
type Result struct {
	Jobs []*Job
	// Makespan is the completion time of the last job.
	Makespan int64
	// Utilization is busy processor-seconds over Procs·Makespan.
	Utilization float64
	// Backfilled counts jobs started out of priority order.
	Backfilled int
}

// Trace converts the run into a wait-time trace for one queue ("" = all
// queues merged, tagged by machine name).
func (r *Result) Trace(machine, queue string) *trace.Trace {
	t := &trace.Trace{Machine: machine, Queue: queue}
	if queue == "" {
		t.Queue = "all"
	}
	for _, j := range r.Jobs {
		if queue != "" && j.Queue != queue {
			continue
		}
		t.Jobs = append(t.Jobs, trace.Job{
			Submit:  j.Submit,
			Wait:    j.Wait(),
			Procs:   j.Procs,
			Runtime: j.Runtime,
		})
	}
	t.SortBySubmit()
	return t
}

// running is a scheduled job occupying processors until its end time.
type running struct {
	procs int
	end   int64 // actual completion
	est   int64 // estimated completion (reservation planning uses this)
}

type runHeap []running

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].end < h[j].end }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(running)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run replays the jobs (any order; sorted by submit internally) through the
// machine and assigns every job a start time. It returns an error for jobs
// that can never run (more processors than the machine has).
func Run(cfg Config, jobs []*Job) (*Result, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("scheduler: machine needs at least one processor")
	}
	if len(cfg.Queues) == 0 {
		return nil, fmt.Errorf("scheduler: at least one queue class required")
	}
	prio := make(map[string]int, len(cfg.Queues))
	class := make(map[string]QueueClass, len(cfg.Queues))
	for _, q := range cfg.Queues {
		prio[q.Name] = q.Priority
		class[q.Name] = q
	}
	for _, j := range jobs {
		if j.Procs > cfg.Procs {
			return nil, fmt.Errorf("scheduler: job %d wants %d procs, machine has %d", j.ID, j.Procs, cfg.Procs)
		}
		if j.Procs < 1 {
			return nil, fmt.Errorf("scheduler: job %d wants %d procs", j.ID, j.Procs)
		}
		qc, ok := class[j.Queue]
		if !ok {
			return nil, fmt.Errorf("scheduler: job %d names unknown queue %q", j.ID, j.Queue)
		}
		// Enforce the queue's advertised constraints the way batch systems
		// do (Section 5.2 of the paper: "constraints ... which the
		// batch-queue software enforces"): oversized submissions are
		// rejected, runtime estimates are clamped to the queue ceiling
		// (the job is killed at the ceiling if it overruns).
		if qc.MaxProcs > 0 && j.Procs > qc.MaxProcs {
			return nil, fmt.Errorf("scheduler: job %d wants %d procs, queue %q allows %d", j.ID, j.Procs, j.Queue, qc.MaxProcs)
		}
		if qc.MaxRuntime > 0 {
			if j.Estimate > qc.MaxRuntime {
				j.Estimate = qc.MaxRuntime
			}
			if j.Runtime > qc.MaxRuntime {
				j.Runtime = qc.MaxRuntime
				j.Killed = true
			}
		}
		j.start = -1
	}

	order := append([]*Job(nil), jobs...)
	sort.SliceStable(order, func(i, k int) bool { return order[i].Submit < order[k].Submit })

	s := &state{
		cfg:     cfg,
		prio:    prio,
		free:    cfg.Procs,
		pending: nil,
	}
	heap.Init(&s.run)

	var busySeconds float64
	next := 0
	now := int64(0)
	if len(order) > 0 {
		now = order[0].Submit
	}
	boundaries := cfg.downtimeBoundaries()
	nextBoundary := func() int64 {
		for len(boundaries) > 0 && boundaries[0] <= now {
			boundaries = boundaries[1:]
		}
		if len(boundaries) == 0 {
			return -1
		}
		return boundaries[0]
	}
	for next < len(order) || len(s.pending) > 0 || s.run.Len() > 0 {
		// Advance to the next event: arrival, completion, or capacity
		// change.
		var tArr, tEnd int64 = -1, -1
		if next < len(order) {
			tArr = order[next].Submit
		}
		if s.run.Len() > 0 {
			tEnd = s.run[0].end
		}
		tCap := int64(-1)
		if len(s.pending) > 0 || s.run.Len() > 0 || next < len(order) {
			tCap = nextBoundary()
		}
		switch {
		case tCap >= 0 && (tArr < 0 || tCap < tArr) && (tEnd < 0 || tCap < tEnd):
			now = tCap
		case tArr >= 0 && (tEnd < 0 || tArr <= tEnd):
			now = tArr
			for next < len(order) && order[next].Submit == now {
				s.pending = append(s.pending, order[next])
				next++
			}
		case tEnd >= 0:
			now = tEnd
			for s.run.Len() > 0 && s.run[0].end == now {
				r := heap.Pop(&s.run).(running)
				s.free += r.procs
			}
		default:
			// Unreachable: loop condition guarantees an event exists.
			return nil, fmt.Errorf("scheduler: event loop stalled at t=%d", now)
		}
		s.offline = cfg.offlineAt(now)
		started := s.schedule(now)
		for _, j := range started {
			busySeconds += float64(j.Procs) * j.Runtime
		}
	}

	res := &Result{Jobs: jobs, Backfilled: s.backfilled}
	for _, j := range jobs {
		if end := j.start + int64(j.Runtime); end > res.Makespan {
			res.Makespan = end
		}
	}
	if res.Makespan > 0 {
		res.Utilization = busySeconds / (float64(cfg.Procs) * float64(res.Makespan))
	}
	return res, nil
}

type state struct {
	cfg        Config
	prio       map[string]int
	free       int
	offline    int
	run        runHeap
	pending    []*Job
	backfilled int
}

// available returns the processors new work may occupy right now: free
// minus whatever is offline (drained nodes count against free capacity
// first; jobs already running on them are allowed to finish).
func (s *state) available() int {
	a := s.free - s.offline
	if a < 0 {
		a = 0
	}
	return a
}

// schedule starts every job the policy allows at time now and returns them.
func (s *state) schedule(now int64) []*Job {
	var started []*Job
	for {
		progressed := false
		s.sortPending()
		// Start jobs in priority order while they fit.
		for len(s.pending) > 0 && s.pending[0].Procs <= s.available() {
			j := s.pending[0]
			s.pending = s.pending[1:]
			s.start(j, now)
			started = append(started, j)
			progressed = true
		}
		if !progressed || len(s.pending) == 0 {
			break
		}
	}
	if len(s.pending) == 0 {
		return started
	}
	switch s.cfg.Policy {
	case EASY:
		return append(started, s.backfillEASY(now)...)
	case Conservative:
		return append(started, s.backfillConservative(now)...)
	default:
		return started
	}
}

// backfillEASY reserves the earliest feasible start for the head job, then
// starts any lower-ranked job that fits now without delaying the
// reservation.
func (s *state) backfillEASY(now int64) []*Job {
	var started []*Job
	head := s.pending[0]
	resStart, resFree := s.reservation(now, head.Procs)
	for i := 1; i < len(s.pending); i++ {
		j := s.pending[i]
		if j.Procs > s.available() {
			continue
		}
		endEst := now + int64(j.Estimate)
		// Safe if it finishes before the reservation, or if it leaves the
		// reserved processors untouched at reservation time.
		if endEst <= resStart || j.Procs <= resFree {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			i--
			s.start(j, now)
			s.backfilled++
			started = append(started, j)
			if endEst > resStart {
				resFree -= j.Procs
			}
			if len(s.pending) == 0 {
				break
			}
		}
	}
	return started
}

// reservation computes the earliest time the given processor count becomes
// available assuming running jobs finish at their estimated ends, and how
// many processors will be spare beyond the request at that time.
func (s *state) reservation(now int64, procs int) (start int64, spare int) {
	ends := make([]running, len(s.run))
	copy(ends, s.run)
	sort.Slice(ends, func(i, j int) bool { return ends[i].est < ends[j].est })
	// Reservation planning approximates future capacity with the current
	// offline level; a boundary crossing reschedules everything anyway.
	free := s.available()
	t := now
	for _, r := range ends {
		if free >= procs {
			break
		}
		free += r.procs
		if r.est > t {
			t = r.est
		}
	}
	return t, free - procs
}

func (s *state) start(j *Job, now int64) {
	j.start = now
	s.free -= j.Procs
	heap.Push(&s.run, running{
		procs: j.Procs,
		end:   now + int64(j.Runtime),
		est:   now + int64(j.Estimate),
	})
}

// sortPending orders waiting jobs by queue priority (descending) then
// submission time, the priority-FCFS discipline.
func (s *state) sortPending() {
	sort.SliceStable(s.pending, func(i, j int) bool {
		pi, pj := s.prio[s.pending[i].Queue], s.prio[s.pending[j].Queue]
		if pi != pj {
			return pi > pj
		}
		return s.pending[i].Submit < s.pending[j].Submit
	})
}
