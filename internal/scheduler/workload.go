package scheduler

import "math"

// WorkloadConfig parameterizes the synthetic job stream offered to the
// simulated machine. Defaults (zero values) give a moderately loaded
// 128-processor machine with three priority queues.
type WorkloadConfig struct {
	// Jobs is the number of submissions to generate (default 20000).
	Jobs int
	// Start is the first submission timestamp.
	Start int64
	// MeanInterarrival is the mean seconds between submissions
	// (default 180, exponential with diurnal modulation).
	MeanInterarrival float64
	// RuntimeMu and RuntimeSigma are log-space runtime parameters
	// (defaults ln(1800) and 1.4 — minutes to many hours, heavy-tailed).
	RuntimeMu, RuntimeSigma float64
	// OverestimateMax bounds the user runtime over-estimation factor;
	// estimates are runtime times Uniform(1, OverestimateMax), the
	// well-documented sloppiness backfill schedulers live with
	// (default 5).
	OverestimateMax float64
	// MaxProcs caps generated processor requests (default: machine size
	// is the natural cap; the generator favors small powers of two).
	MaxProcs int
	// QueueNames and QueueWeights give the submission mix across queues
	// (defaults: the three-queue Default machine below, weighted toward
	// "normal").
	QueueNames   []string
	QueueWeights []float64
	// QueueMaxProcs caps processor requests per queue, matching the
	// advertised constraints users submit within (defaults to the
	// DefaultMachine caps).
	QueueMaxProcs map[string]int
	// QueueMaxRuntime holds the advertised runtime ceilings. Users route
	// around them: a job too long for its drawn queue is submitted to the
	// next queue down that accommodates it (defaults to the
	// DefaultMachine ceilings).
	QueueMaxRuntime map[string]float64
	// Seed drives generation.
	Seed int64
}

// DefaultMachine is a 128-processor machine with the three-tier queue
// structure most of the paper's sites advertise.
func DefaultMachine() Config {
	return Config{
		Procs: 128,
		Queues: []QueueClass{
			{Name: "high", Priority: 3, MaxRuntime: 12 * 3600, MaxProcs: 128},
			{Name: "normal", Priority: 2, MaxRuntime: 48 * 3600, MaxProcs: 128},
			{Name: "low", Priority: 1, MaxRuntime: 96 * 3600, MaxProcs: 64},
		},
		Policy: EASY,
	}
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Jobs == 0 {
		c.Jobs = 20000
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 180
	}
	if c.RuntimeMu == 0 {
		c.RuntimeMu = math.Log(1800)
	}
	if c.RuntimeSigma == 0 {
		c.RuntimeSigma = 1.4
	}
	if c.OverestimateMax == 0 {
		c.OverestimateMax = 5
	}
	if c.MaxProcs == 0 {
		c.MaxProcs = 128
	}
	if len(c.QueueNames) == 0 {
		c.QueueNames = []string{"high", "normal", "low"}
		c.QueueWeights = []float64{0.15, 0.6, 0.25}
	}
	if c.QueueMaxProcs == nil || c.QueueMaxRuntime == nil {
		procs := map[string]int{}
		rt := map[string]float64{}
		for _, q := range DefaultMachine().Queues {
			procs[q.Name] = q.MaxProcs
			rt[q.Name] = q.MaxRuntime
		}
		if c.QueueMaxProcs == nil {
			c.QueueMaxProcs = procs
		}
		if c.QueueMaxRuntime == nil {
			c.QueueMaxRuntime = rt
		}
	}
	return c
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return 0
}

// GenerateJobs produces a synthetic submission stream for Run. It is the
// single-shot composition of NewBaseTrace and an unperturbed Fill; callers
// replaying many variants of one workload should hold the BaseTrace and
// Fill per scenario instead.
func GenerateJobs(cfg WorkloadConfig) []*Job {
	vals := NewBaseTrace(cfg).Fill(nil, Perturbation{})
	jobs := make([]*Job, len(vals))
	for i := range vals {
		jobs[i] = &vals[i]
	}
	return jobs
}
