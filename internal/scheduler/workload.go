package scheduler

import (
	"math"
	"math/rand"
)

// WorkloadConfig parameterizes the synthetic job stream offered to the
// simulated machine. Defaults (zero values) give a moderately loaded
// 128-processor machine with three priority queues.
type WorkloadConfig struct {
	// Jobs is the number of submissions to generate (default 20000).
	Jobs int
	// Start is the first submission timestamp.
	Start int64
	// MeanInterarrival is the mean seconds between submissions
	// (default 180, exponential with diurnal modulation).
	MeanInterarrival float64
	// RuntimeMu and RuntimeSigma are log-space runtime parameters
	// (defaults ln(1800) and 1.4 — minutes to many hours, heavy-tailed).
	RuntimeMu, RuntimeSigma float64
	// OverestimateMax bounds the user runtime over-estimation factor;
	// estimates are runtime times Uniform(1, OverestimateMax), the
	// well-documented sloppiness backfill schedulers live with
	// (default 5).
	OverestimateMax float64
	// MaxProcs caps generated processor requests (default: machine size
	// is the natural cap; the generator favors small powers of two).
	MaxProcs int
	// QueueNames and QueueWeights give the submission mix across queues
	// (defaults: the three-queue Default machine below, weighted toward
	// "normal").
	QueueNames   []string
	QueueWeights []float64
	// QueueMaxProcs caps processor requests per queue, matching the
	// advertised constraints users submit within (defaults to the
	// DefaultMachine caps).
	QueueMaxProcs map[string]int
	// QueueMaxRuntime holds the advertised runtime ceilings. Users route
	// around them: a job too long for its drawn queue is submitted to the
	// next queue down that accommodates it (defaults to the
	// DefaultMachine ceilings).
	QueueMaxRuntime map[string]float64
	// Seed drives generation.
	Seed int64
}

// DefaultMachine is a 128-processor machine with the three-tier queue
// structure most of the paper's sites advertise.
func DefaultMachine() Config {
	return Config{
		Procs: 128,
		Queues: []QueueClass{
			{Name: "high", Priority: 3, MaxRuntime: 12 * 3600, MaxProcs: 128},
			{Name: "normal", Priority: 2, MaxRuntime: 48 * 3600, MaxProcs: 128},
			{Name: "low", Priority: 1, MaxRuntime: 96 * 3600, MaxProcs: 64},
		},
		Policy: EASY,
	}
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Jobs == 0 {
		c.Jobs = 20000
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 180
	}
	if c.RuntimeMu == 0 {
		c.RuntimeMu = math.Log(1800)
	}
	if c.RuntimeSigma == 0 {
		c.RuntimeSigma = 1.4
	}
	if c.OverestimateMax == 0 {
		c.OverestimateMax = 5
	}
	if c.MaxProcs == 0 {
		c.MaxProcs = 128
	}
	if len(c.QueueNames) == 0 {
		c.QueueNames = []string{"high", "normal", "low"}
		c.QueueWeights = []float64{0.15, 0.6, 0.25}
	}
	if c.QueueMaxProcs == nil || c.QueueMaxRuntime == nil {
		procs := map[string]int{}
		rt := map[string]float64{}
		for _, q := range DefaultMachine().Queues {
			procs[q.Name] = q.MaxProcs
			rt[q.Name] = q.MaxRuntime
		}
		if c.QueueMaxProcs == nil {
			c.QueueMaxProcs = procs
		}
		if c.QueueMaxRuntime == nil {
			c.QueueMaxRuntime = rt
		}
	}
	return c
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return 0
}

// GenerateJobs produces a synthetic submission stream for Run.
func GenerateJobs(cfg WorkloadConfig) []*Job {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]*Job, 0, cfg.Jobs)
	t := float64(cfg.Start)
	var wsum float64
	for _, w := range cfg.QueueWeights {
		wsum += w
	}
	for i := 0; i < cfg.Jobs; i++ {
		// Diurnal modulation: submissions cluster in "working hours" of a
		// 24h cycle, like every published workload study observes.
		hour := math.Mod(t/3600, 24)
		rate := 1.0
		if hour >= 8 && hour < 20 {
			rate = 0.6 // busier: shorter interarrivals
		} else {
			rate = 1.8
		}
		t += rng.ExpFloat64() * cfg.MeanInterarrival * rate

		// Processor counts: powers of two, heavily weighted small.
		exp := 0
		for exp < 10 && rng.Float64() < 0.45 {
			exp++
		}
		procs := 1 << exp
		if procs > cfg.MaxProcs {
			procs = cfg.MaxProcs
		}

		runtime := math.Exp(cfg.RuntimeMu + cfg.RuntimeSigma*rng.NormFloat64())
		if runtime < 10 {
			runtime = 10
		}
		estimate := runtime * (1 + rng.Float64()*(cfg.OverestimateMax-1))

		u := rng.Float64() * wsum
		queue := cfg.QueueNames[len(cfg.QueueNames)-1]
		for qi, w := range cfg.QueueWeights {
			if u <= w {
				queue = cfg.QueueNames[qi]
				break
			}
			u -= w
		}
		// Users route around advertised constraints: a job too long for
		// its drawn queue goes to the next queue down that accommodates
		// it; a job still too long for the last queue is shortened to fit
		// (checkpoint-and-resubmit behavior).
		for qi := indexOf(cfg.QueueNames, queue); qi < len(cfg.QueueNames); qi++ {
			queue = cfg.QueueNames[qi]
			ceil := cfg.QueueMaxRuntime[queue]
			if ceil <= 0 || runtime <= ceil {
				break
			}
			if qi == len(cfg.QueueNames)-1 {
				runtime = ceil * 0.95
			}
		}
		if ceil := cfg.QueueMaxRuntime[queue]; ceil > 0 && estimate > ceil {
			estimate = ceil
		}
		if estimate < runtime {
			estimate = runtime
		}
		// And within the queue's advertised processor cap.
		if cap, ok := cfg.QueueMaxProcs[queue]; ok && cap > 0 && procs > cap {
			procs = cap
		}

		jobs = append(jobs, &Job{
			ID:       i,
			Queue:    queue,
			Procs:    procs,
			Submit:   int64(t),
			Estimate: estimate,
			Runtime:  runtime,
		})
	}
	return jobs
}
