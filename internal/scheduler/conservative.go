package scheduler

import "sort"

// Conservative backfilling: every waiting job gets a reservation in
// priority order against a profile of future processor availability
// (running jobs are assumed to end at their estimates); a job starts now
// exactly when its reservation lands at the current time. No job's start
// can be delayed by a later-ranked job, which is the discipline's defining
// guarantee.

// profile tracks free processor counts over future time as a step
// function. steps[i] holds the free count from steps[i].t (inclusive)
// until steps[i+1].t; the last step extends to infinity. The steps slice
// is an arena: rebuild truncates and refills it, so a kernel running
// conservative backfill at every event reuses one allocation for the
// lifetime of the kernel.
type profile struct {
	steps []profileStep
}

type profileStep struct {
	t    int64
	free int
}

// rebuildSorted refills the availability step function at time now from
// the est-ordered running set (lessRunning order, e.g. a kernel's standing
// ends mirror) and the currently free processors, reusing the step arena.
// An entry's release time is its estimated end, except that a job already
// past its estimate can end any moment and is treated as releasing now+1
// so reservations stay feasible. Equal-time releases merge into one step,
// so their relative order cannot affect the result — which is why the
// clamp can be applied in three ordered passes over the sorted input
// instead of re-sorting: releases at exactly now first, then the clamped
// overrunners at now+1, then everything genuinely later (est > now implies
// est >= now+1).
func (p *profile) rebuildSorted(now int64, freeNow int, sorted []running) {
	// First index past the est <= now prefix.
	i0 := sort.Search(len(sorted), func(i int) bool { return sorted[i].est > now })

	steps := p.steps[:0]
	steps = append(steps, profileStep{t: now, free: freeNow})
	free := freeNow
	emit := func(t int64, procs int) {
		free += procs
		last := &steps[len(steps)-1]
		if last.t == t {
			last.free = free
		} else {
			steps = append(steps, profileStep{t: t, free: free})
		}
	}
	for _, r := range sorted[:i0] {
		if r.est == now {
			emit(now, r.procs)
		}
	}
	for _, r := range sorted[:i0] {
		if r.est < now {
			emit(now+1, r.procs)
		}
	}
	for _, r := range sorted[i0:] {
		emit(r.est, r.procs)
	}
	p.steps = steps
}

// newProfile builds a fresh availability profile at time now from a
// running set in any order. The kernel path rebuilds its pooled profile
// from the standing sorted mirror instead; this constructor remains as the
// single-shot entry point (and the oracle the profile edge-case tests
// pin).
func newProfile(now int64, freeNow, totalProcs int, run []running) *profile {
	_ = totalProcs // machine size is implicit in freeNow + releases
	sorted := make([]running, len(run))
	copy(sorted, run)
	sort.Sort(&byEstimatedEnd{s: sorted})
	p := &profile{}
	p.rebuildSorted(now, freeNow, sorted)
	return p
}

// earliestFit returns the earliest start time >= now at which procs
// processors stay free for duration seconds.
func (p *profile) earliestFit(now int64, procs int, duration int64) int64 {
	if duration < 1 {
		duration = 1
	}
	for i := 0; i < len(p.steps); i++ {
		start := p.steps[i].t
		if start < now {
			start = now
		}
		end := start + duration
		if p.minFreeBetween(start, end) >= procs {
			return start
		}
	}
	// Unreachable when procs <= machine size: the final step always has
	// everything free.
	return p.steps[len(p.steps)-1].t
}

// minFreeBetween returns the minimum free count over [from, to).
func (p *profile) minFreeBetween(from, to int64) int {
	min := int(^uint(0) >> 1)
	for i, s := range p.steps {
		segEnd := int64(1<<62 - 1)
		if i+1 < len(p.steps) {
			segEnd = p.steps[i+1].t
		}
		if segEnd <= from || s.t >= to {
			continue
		}
		if s.free < min {
			min = s.free
		}
	}
	return min
}

// reserve subtracts procs processors over [from, to), splitting steps as
// needed.
func (p *profile) reserve(from, to int64, procs int) {
	p.splitAt(from)
	p.splitAt(to)
	for i := range p.steps {
		if p.steps[i].t >= from && p.steps[i].t < to {
			p.steps[i].free -= procs
		}
	}
}

// splitAt inserts a step boundary at t if one does not exist (no-op past
// the final step, whose value extends to infinity anyway).
func (p *profile) splitAt(t int64) {
	for i, s := range p.steps {
		if s.t == t {
			return
		}
		if s.t > t {
			if i == 0 {
				return // before the profile start: nothing to split
			}
			p.steps = append(p.steps, profileStep{})
			copy(p.steps[i+1:], p.steps[i:])
			// The segment containing t belongs to the previous step.
			p.steps[i] = profileStep{t: t, free: p.steps[i-1].free}
			return
		}
	}
	// t is beyond the last boundary: the last step's value extends there.
	p.steps = append(p.steps, profileStep{t: t, free: p.steps[len(p.steps)-1].free})
}

// backfillConservative plans a reservation for every pending job in
// priority order against the pooled profile and starts those whose
// reservation is immediate. The caller (schedule) has already started
// everything that fits strictly in order, so the head job here never fits
// now.
func (k *Kernel) backfillConservative() {
	p := &k.prof
	p.rebuildSorted(k.now, k.available(), k.ends)
	kept := k.pending[:0]
	for i, ji := range k.pending {
		j := &k.jobs[ji]
		est := int64(j.Estimate)
		if est < 1 {
			est = 1
		}
		at := p.earliestFit(k.now, j.Procs, est)
		p.reserve(at, at+est, j.Procs)
		if at == k.now {
			k.start(ji)
			if i > 0 {
				k.backfilled++
			}
		} else {
			kept = append(kept, ji)
		}
	}
	k.pending = kept
}
