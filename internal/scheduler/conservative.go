package scheduler

import "sort"

// Conservative backfilling: every waiting job gets a reservation in
// priority order against a profile of future processor availability
// (running jobs are assumed to end at their estimates); a job starts now
// exactly when its reservation lands at the current time. No job's start
// can be delayed by a later-ranked job, which is the discipline's defining
// guarantee.

// profile tracks free processor counts over future time as a step
// function. steps[i] holds the free count from steps[i].t (inclusive)
// until steps[i+1].t; the last step extends to infinity.
type profile struct {
	steps []profileStep
}

type profileStep struct {
	t    int64
	free int
}

// newProfile builds the availability step function at time now from the
// running set (estimated ends) and the currently free processors.
func newProfile(now int64, freeNow, totalProcs int, run []running) *profile {
	// Collect release events at estimated completion times.
	type rel struct {
		t     int64
		procs int
	}
	rels := make([]rel, 0, len(run))
	for _, r := range run {
		t := r.est
		if t < now {
			// Overrunning its estimate: it can end any moment; treat as
			// releasing now+1 so reservations stay feasible.
			t = now + 1
		}
		rels = append(rels, rel{t, r.procs})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].t < rels[j].t })
	p := &profile{steps: []profileStep{{t: now, free: freeNow}}}
	free := freeNow
	for _, r := range rels {
		free += r.procs
		last := &p.steps[len(p.steps)-1]
		if last.t == r.t {
			last.free = free
		} else {
			p.steps = append(p.steps, profileStep{t: r.t, free: free})
		}
	}
	return p
}

// earliestFit returns the earliest start time >= now at which procs
// processors stay free for duration seconds.
func (p *profile) earliestFit(now int64, procs int, duration int64) int64 {
	if duration < 1 {
		duration = 1
	}
	for i := 0; i < len(p.steps); i++ {
		start := p.steps[i].t
		if start < now {
			start = now
		}
		end := start + duration
		if p.minFreeBetween(start, end) >= procs {
			return start
		}
	}
	// Unreachable when procs <= machine size: the final step always has
	// everything free.
	return p.steps[len(p.steps)-1].t
}

// minFreeBetween returns the minimum free count over [from, to).
func (p *profile) minFreeBetween(from, to int64) int {
	min := int(^uint(0) >> 1)
	for i, s := range p.steps {
		segEnd := int64(1<<62 - 1)
		if i+1 < len(p.steps) {
			segEnd = p.steps[i+1].t
		}
		if segEnd <= from || s.t >= to {
			continue
		}
		if s.free < min {
			min = s.free
		}
	}
	return min
}

// reserve subtracts procs processors over [from, to), splitting steps as
// needed.
func (p *profile) reserve(from, to int64, procs int) {
	p.splitAt(from)
	p.splitAt(to)
	for i := range p.steps {
		if p.steps[i].t >= from && p.steps[i].t < to {
			p.steps[i].free -= procs
		}
	}
}

// splitAt inserts a step boundary at t if one does not exist (no-op past
// the final step, whose value extends to infinity anyway).
func (p *profile) splitAt(t int64) {
	for i, s := range p.steps {
		if s.t == t {
			return
		}
		if s.t > t {
			if i == 0 {
				return // before the profile start: nothing to split
			}
			p.steps = append(p.steps, profileStep{})
			copy(p.steps[i+1:], p.steps[i:])
			// The segment containing t belongs to the previous step.
			p.steps[i] = profileStep{t: t, free: p.steps[i-1].free}
			return
		}
	}
	// t is beyond the last boundary: the last step's value extends there.
	p.steps = append(p.steps, profileStep{t: t, free: p.steps[len(p.steps)-1].free})
}

// backfillConservative plans a reservation for every pending job in
// priority order and starts those whose reservation is immediate. The
// caller (schedule) has already started everything that fits strictly in
// order, so the head job here never fits now.
func (s *state) backfillConservative(now int64) []*Job {
	p := newProfile(now, s.available(), s.cfg.Procs, s.run)
	var started []*Job
	kept := s.pending[:0]
	for i, j := range s.pending {
		est := int64(j.Estimate)
		if est < 1 {
			est = 1
		}
		at := p.earliestFit(now, j.Procs, est)
		p.reserve(at, at+est, j.Procs)
		if at == now {
			s.start(j, now)
			started = append(started, j)
			if i > 0 {
				s.backfilled++
			}
		} else {
			kept = append(kept, j)
		}
	}
	s.pending = kept
	return started
}
