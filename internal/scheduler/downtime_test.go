package scheduler

import (
	"testing"

	"repro/internal/stats"
)

func TestDowntimeBlocksNewStarts(t *testing.T) {
	// 4-proc machine, all 4 offline during [100, 200): a job arriving at
	// 150 waits until 200 even though nothing is running.
	cfg := oneQueue(4, false)
	cfg.Downtimes = []Downtime{{From: 100, To: 200, Procs: 4}}
	jobs := []*Job{
		{ID: 0, Queue: "q", Procs: 2, Submit: 150, Runtime: 10, Estimate: 10},
	}
	if _, err := Run(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	// The cap clamps offline to Procs-1, so 1 processor stays usable: a
	// 2-proc job still cannot start until 200.
	if jobs[0].Start() != 200 {
		t.Errorf("start = %d, want 200", jobs[0].Start())
	}
}

func TestDowntimeDrainSemantics(t *testing.T) {
	// A running job keeps running through the downtime (drain), and the
	// downtime window does not pause its completion.
	cfg := oneQueue(4, false)
	cfg.Downtimes = []Downtime{{From: 10, To: 1000, Procs: 3}}
	jobs := []*Job{
		{ID: 0, Queue: "q", Procs: 4, Submit: 0, Runtime: 50, Estimate: 50},
		// Arrives during downtime; 3 of 4 procs offline, and the running
		// job holds all 4 until t=50; thereafter only 1 proc is usable.
		{ID: 1, Queue: "q", Procs: 1, Submit: 20, Runtime: 10, Estimate: 10},
		{ID: 2, Queue: "q", Procs: 2, Submit: 20, Runtime: 10, Estimate: 10},
	}
	if _, err := Run(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	if jobs[0].Start() != 0 {
		t.Errorf("running job start = %d", jobs[0].Start())
	}
	if jobs[1].Start() != 50 {
		t.Errorf("1-proc job start = %d, want 50 (one usable proc after drain)", jobs[1].Start())
	}
	if jobs[2].Start() != 1000 {
		t.Errorf("2-proc job start = %d, want 1000 (needs the window to end)", jobs[2].Start())
	}
}

func TestDowntimeCreatesCongestionEpisode(t *testing.T) {
	// On a loaded machine, a half-capacity maintenance window produces
	// the wait-time signature the paper's logs show: waits during and
	// just after the window dwarf the background.
	jobs := GenerateJobs(WorkloadConfig{Jobs: 8000, Seed: 21})
	span := jobs[len(jobs)-1].Submit - jobs[0].Submit
	winFrom := jobs[0].Submit + span/2
	winTo := winFrom + span/10

	base := GenerateJobs(WorkloadConfig{Jobs: 8000, Seed: 21})
	cfg := DefaultMachine()
	if _, err := Run(cfg, base); err != nil {
		t.Fatal(err)
	}
	cfgDown := DefaultMachine()
	cfgDown.Downtimes = []Downtime{{From: winFrom, To: winTo, Procs: 96}}
	if _, err := Run(cfgDown, jobs); err != nil {
		t.Fatal(err)
	}
	inWindow := func(list []*Job) []float64 {
		var out []float64
		for _, j := range list {
			if j.Submit >= winFrom && j.Submit < winTo {
				out = append(out, j.Wait())
			}
		}
		return out
	}
	baseMean := stats.Mean(inWindow(base))
	downMean := stats.Mean(inWindow(jobs))
	if downMean < 3*baseMean+600 {
		t.Errorf("downtime window waits %g, base %g: no episode", downMean, baseMean)
	}
}

func TestQueueConstraintEnforcement(t *testing.T) {
	cfg := Config{
		Procs: 16,
		Queues: []QueueClass{
			{Name: "short", Priority: 1, MaxRuntime: 100, MaxProcs: 8},
		},
	}
	// Oversized request rejected.
	if _, err := Run(cfg, []*Job{{ID: 0, Queue: "short", Procs: 12, Runtime: 10, Estimate: 10}}); err == nil {
		t.Error("over-cap processor request should be rejected")
	}
	// Overrunning job killed at the ceiling; estimate clamped too.
	jobs := []*Job{
		{ID: 0, Queue: "short", Procs: 2, Submit: 0, Runtime: 500, Estimate: 900},
		{ID: 1, Queue: "short", Procs: 8, Submit: 1, Runtime: 10, Estimate: 10},
	}
	if _, err := Run(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Killed || jobs[0].Runtime != 100 {
		t.Errorf("overrun not killed: killed=%v runtime=%g", jobs[0].Killed, jobs[0].Runtime)
	}
	if jobs[0].Estimate != 100 {
		t.Errorf("estimate not clamped: %g", jobs[0].Estimate)
	}
	if jobs[1].Killed {
		t.Error("compliant job marked killed")
	}
	// Zero ceilings mean unlimited.
	open := Config{Procs: 4, Queues: []QueueClass{{Name: "q", Priority: 1}}}
	free := []*Job{{ID: 0, Queue: "q", Procs: 4, Runtime: 1e6, Estimate: 1e6}}
	if _, err := Run(open, free); err != nil {
		t.Fatal(err)
	}
	if free[0].Killed {
		t.Error("unlimited queue killed a job")
	}
}

func TestGeneratedJobsRespectQueueCaps(t *testing.T) {
	jobs := GenerateJobs(WorkloadConfig{Jobs: 5000, Seed: 13})
	for _, j := range jobs {
		if j.Queue == "low" && j.Procs > 64 {
			t.Fatalf("low-queue job with %d procs", j.Procs)
		}
	}
	// And the default machine accepts the default workload.
	if _, err := Run(DefaultMachine(), jobs); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineAtOverlapAndClamp(t *testing.T) {
	cfg := Config{Procs: 8, Downtimes: []Downtime{
		{From: 0, To: 100, Procs: 5},
		{From: 50, To: 150, Procs: 5},
	}}
	if got := cfg.offlineAt(25); got != 5 {
		t.Errorf("offline(25) = %d", got)
	}
	if got := cfg.offlineAt(75); got != 7 { // 10 clamped to Procs-1
		t.Errorf("offline(75) = %d, want 7", got)
	}
	if got := cfg.offlineAt(125); got != 5 {
		t.Errorf("offline(125) = %d", got)
	}
	if got := cfg.offlineAt(500); got != 0 {
		t.Errorf("offline(500) = %d", got)
	}
	b := cfg.downtimeBoundaries()
	if len(b) != 4 || b[0] != 0 || b[3] != 150 {
		t.Errorf("boundaries = %v", b)
	}
}
