package scheduler

// runHeap is a typed binary min-heap of running jobs ordered by actual
// completion time. It replaces the container/heap implementation the
// simulator started with: heap.Push boxed every running value into an
// interface{} (one allocation per started job) and every Less/Swap was an
// indirect call. The sift-up and sift-down below are transliterations of
// container/heap's up/down, so the heap's internal array layout after any
// push/pop sequence is byte-identical to the old implementation — which
// matters because reservation planning and the conservative profile read
// the array in storage order and break est ties by it.
type runHeap []running

func (h runHeap) len() int { return len(h) }

// push adds r and restores the heap property (container/heap's Push: append
// then sift up).
func (h *runHeap) push(r running) {
	*h = append(*h, r)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if s[j].end >= s[i].end {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

// pop removes and returns the minimum-end entry (container/heap's Pop: swap
// root with last, sift down over the shortened prefix, detach last).
func (h *runHeap) pop() running {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift down within s[:n], mirroring container/heap's down(0, n).
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].end < s[j1].end {
			j = j2
		}
		if s[j].end >= s[i].end {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	r := s[n]
	*h = s[:n]
	return r
}
