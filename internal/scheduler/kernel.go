package scheduler

import (
	"fmt"
	"sort"
)

// Kernel is the reusable simulation engine behind Run. It owns every piece
// of replay state — the job arena, the pending and running sets, the
// conservative-backfill availability profile, the reservation scratch, the
// queue lookup tables — so back-to-back runs reuse the same memory instead
// of rebuilding it: a steady-state kernel run performs ~0 allocations
// regardless of job count. That is what makes the what-if plane viable:
// a scenario grid executes dozens of calibrated replays per HTTP request,
// each on a per-worker kernel, with no per-run garbage.
//
// A Kernel is not safe for concurrent use; give each worker its own.
//
// Usage:
//
//	k := scheduler.NewKernel()
//	jobs := k.Jobs(n)        // value arena, caller fills every field
//	res, err := k.Run(cfg)   // res.Jobs aliases the arena
//
// Results are identical to the single-shot Run: the event loop, policy
// code, and tie-breaking all operate exactly as before, just on pooled
// storage (see the differential test pinning seed-42 replays).
type Kernel struct {
	jobs  []Job   // value arena; Jobs(n) resizes
	prio  []int   // per-arena-index queue priority, filled at validation
	order []int32 // arena indices, stable-sorted by submit time

	pending []int32 // waiting jobs (arena indices), priority-FCFS order
	run     runHeap // running set, min-heap by actual end

	prof profile // conservative-backfill availability profile (arena reused)

	// ends mirrors the running set in lessRunning order, maintained
	// incrementally: start() inserts, completion removes. Both backfill
	// policies read the running set est-sorted on (nearly) every event, so
	// keeping the order standing — one O(n) memmove per start/finish —
	// replaces the O(n log n) copy-and-sort per event that used to
	// dominate the whole simulation (~80% of kernel CPU).
	ends []running

	boundaries []int64 // downtime capacity-change instants, sorted

	class map[string]QueueClass
	qprio map[string]int

	orderSorter orderBySubmit

	// Per-run event-loop state; fields rather than locals so the policy
	// methods share them without closure captures.
	now         int64
	free        int
	offline     int
	backfilled  int
	busySeconds float64

	res KernelResult
}

// KernelResult is the outcome of a kernel run. Jobs aliases the kernel's
// arena: it is valid until the next Jobs or Run call on the same kernel.
type KernelResult struct {
	Jobs []Job
	// Makespan is the completion time of the last job.
	Makespan int64
	// Utilization is busy processor-seconds over Procs·Makespan.
	Utilization float64
	// Backfilled counts jobs started out of priority order.
	Backfilled int
}

// NewKernel returns an empty kernel. Arenas grow on first use and are
// retained across runs.
func NewKernel() *Kernel {
	return &Kernel{
		class: make(map[string]QueueClass),
		qprio: make(map[string]int),
	}
}

// Jobs returns the kernel's job arena resized to n. Contents are
// unspecified (previous-run values); the caller must assign every field of
// every element before Run.
func (k *Kernel) Jobs(n int) []Job {
	if cap(k.jobs) < n {
		k.jobs = make([]Job, n)
	}
	k.jobs = k.jobs[:n]
	return k.jobs
}

// orderBySubmit stable-sorts arena indices by submission time. A typed
// sort.Interface kept as a kernel field: sort.Stable through a pointer to
// it allocates nothing, and stability makes the result identical to the
// sort.SliceStable the pre-kernel Run used.
type orderBySubmit struct {
	idx  []int32
	jobs []Job
}

func (o *orderBySubmit) Len() int      { return len(o.idx) }
func (o *orderBySubmit) Swap(i, j int) { o.idx[i], o.idx[j] = o.idx[j], o.idx[i] }
func (o *orderBySubmit) Less(i, j int) bool {
	return o.jobs[o.idx[i]].Submit < o.jobs[o.idx[j]].Submit
}

// byEstimatedEnd sorts a running scratch slice by estimated completion.
// sort.Sort and sort.Slice share one pdqsort, so ordering ties exactly as
// the pre-kernel sort.Slice did requires only presenting the elements in
// the same initial order — which the heap layout guarantees (see runHeap).
type byEstimatedEnd struct{ s []running }

func (b *byEstimatedEnd) Len() int      { return len(b.s) }
func (b *byEstimatedEnd) Swap(i, j int) { b.s[i], b.s[j] = b.s[j], b.s[i] }
func (b *byEstimatedEnd) Less(i, j int) bool {
	return lessRunning(b.s[i], b.s[j])
}

// lessRunning is the total order on running entries used everywhere the
// running set is laid out by estimated end: est first, then actual end,
// then width. A total order (rather than est alone) makes the layout — and
// therefore reservation tie-breaking — independent of sort algorithm and
// insertion history, which is what lets the kernel maintain the order
// incrementally. Entries equal under it are field-identical and thus
// interchangeable.
func lessRunning(a, b running) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	if a.end != b.end {
		return a.end < b.end
	}
	return a.procs < b.procs
}

// Run replays the arena jobs (any order; sorted by submit internally)
// through the machine and assigns every arena job a start time. It returns
// an error for jobs that can never run (more processors than the machine
// has). The returned result is reused by the next Run call.
func (k *Kernel) Run(cfg Config) (*KernelResult, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("scheduler: machine needs at least one processor")
	}
	if len(cfg.Queues) == 0 {
		return nil, fmt.Errorf("scheduler: at least one queue class required")
	}
	clear(k.qprio)
	clear(k.class)
	for _, q := range cfg.Queues {
		k.qprio[q.Name] = q.Priority
		k.class[q.Name] = q
	}
	jobs := k.jobs
	if cap(k.prio) < len(jobs) {
		k.prio = make([]int, len(jobs))
	}
	k.prio = k.prio[:len(jobs)]
	for i := range jobs {
		j := &jobs[i]
		if j.Procs > cfg.Procs {
			return nil, fmt.Errorf("scheduler: job %d wants %d procs, machine has %d", j.ID, j.Procs, cfg.Procs)
		}
		if j.Procs < 1 {
			return nil, fmt.Errorf("scheduler: job %d wants %d procs", j.ID, j.Procs)
		}
		qc, ok := k.class[j.Queue]
		if !ok {
			return nil, fmt.Errorf("scheduler: job %d names unknown queue %q", j.ID, j.Queue)
		}
		// Enforce the queue's advertised constraints the way batch systems
		// do (Section 5.2 of the paper: "constraints ... which the
		// batch-queue software enforces"): oversized submissions are
		// rejected, runtime estimates are clamped to the queue ceiling
		// (the job is killed at the ceiling if it overruns).
		if qc.MaxProcs > 0 && j.Procs > qc.MaxProcs {
			return nil, fmt.Errorf("scheduler: job %d wants %d procs, queue %q allows %d", j.ID, j.Procs, j.Queue, qc.MaxProcs)
		}
		if qc.MaxRuntime > 0 {
			if j.Estimate > qc.MaxRuntime {
				j.Estimate = qc.MaxRuntime
			}
			if j.Runtime > qc.MaxRuntime {
				j.Runtime = qc.MaxRuntime
				j.Killed = true
			}
		}
		j.start = -1
		k.prio[i] = k.qprio[j.Queue]
	}

	if cap(k.order) < len(jobs) {
		k.order = make([]int32, len(jobs))
	}
	k.order = k.order[:len(jobs)]
	for i := range k.order {
		k.order[i] = int32(i)
	}
	k.orderSorter = orderBySubmit{idx: k.order, jobs: jobs}
	sort.Stable(&k.orderSorter)

	k.pending = k.pending[:0]
	k.run = k.run[:0]
	k.ends = k.ends[:0]
	k.res = KernelResult{Jobs: jobs}
	k.free = cfg.Procs
	k.offline = 0
	k.backfilled = 0
	k.busySeconds = 0

	k.rebuildBoundaries(cfg)
	bi := 0 // index of the next unconsumed boundary

	next := 0
	k.now = 0
	if len(k.order) > 0 {
		k.now = jobs[k.order[0]].Submit
	}

	for next < len(k.order) || len(k.pending) > 0 || k.run.len() > 0 {
		// Advance to the next event: arrival, completion, or capacity
		// change.
		var tArr, tEnd int64 = -1, -1
		if next < len(k.order) {
			tArr = jobs[k.order[next]].Submit
		}
		if k.run.len() > 0 {
			tEnd = k.run[0].end
		}
		tCap := int64(-1)
		for bi < len(k.boundaries) && k.boundaries[bi] <= k.now {
			bi++
		}
		if bi < len(k.boundaries) {
			tCap = k.boundaries[bi]
		}
		switch {
		case tCap >= 0 && (tArr < 0 || tCap < tArr) && (tEnd < 0 || tCap < tEnd):
			k.now = tCap
		case tArr >= 0 && (tEnd < 0 || tArr <= tEnd):
			k.now = tArr
			for next < len(k.order) && jobs[k.order[next]].Submit == k.now {
				k.pending = append(k.pending, k.order[next])
				next++
			}
		case tEnd >= 0:
			k.now = tEnd
			for k.run.len() > 0 && k.run[0].end == k.now {
				r := k.run.pop()
				k.free += r.procs
				k.endsRemove(r)
			}
		default:
			// Unreachable: loop condition guarantees an event exists.
			return nil, fmt.Errorf("scheduler: event loop stalled at t=%d", k.now)
		}
		k.offline = cfg.offlineAt(k.now)
		k.schedule(cfg)
	}

	k.res.Backfilled = k.backfilled
	for i := range jobs {
		if end := jobs[i].start + int64(jobs[i].Runtime); end > k.res.Makespan {
			k.res.Makespan = end
		}
	}
	if k.res.Makespan > 0 {
		k.res.Utilization = k.busySeconds / (float64(cfg.Procs) * float64(k.res.Makespan))
	}
	return &k.res, nil
}

// rebuildBoundaries fills k.boundaries with every capacity-change instant,
// sorted, reusing the arena.
func (k *Kernel) rebuildBoundaries(cfg Config) {
	k.boundaries = k.boundaries[:0]
	for _, d := range cfg.Downtimes {
		if d.To > d.From && d.Procs > 0 {
			k.boundaries = append(k.boundaries, d.From, d.To)
		}
	}
	// Insertion sort: downtime lists are short, and equal instants are
	// interchangeable, so any ordering algorithm yields the same event
	// sequence.
	for i := 1; i < len(k.boundaries); i++ {
		for j := i; j > 0 && k.boundaries[j] < k.boundaries[j-1]; j-- {
			k.boundaries[j], k.boundaries[j-1] = k.boundaries[j-1], k.boundaries[j]
		}
	}
}

// available returns the processors new work may occupy right now: free
// minus whatever is offline (drained nodes count against free capacity
// first; jobs already running on them are allowed to finish).
func (k *Kernel) available() int {
	a := k.free - k.offline
	if a < 0 {
		a = 0
	}
	return a
}

// start commits one pending job at the current event time. Busy seconds
// accumulate in start order, matching the pre-kernel summation order
// exactly (float addition is order-sensitive, and utilization is pinned by
// the differential test).
func (k *Kernel) start(ji int32) {
	j := &k.jobs[ji]
	j.start = k.now
	k.free -= j.Procs
	k.busySeconds += float64(j.Procs) * j.Runtime
	r := running{
		procs: j.Procs,
		end:   k.now + int64(j.Runtime),
		est:   k.now + int64(j.Estimate),
	}
	k.run.push(r)
	k.endsInsert(r)
}

// endsInsert adds r to the est-ordered mirror of the running set.
func (k *Kernel) endsInsert(r running) {
	i := sort.Search(len(k.ends), func(i int) bool { return !lessRunning(k.ends[i], r) })
	k.ends = append(k.ends, running{})
	copy(k.ends[i+1:], k.ends[i:])
	k.ends[i] = r
}

// endsRemove drops one entry equal to r from the est-ordered mirror.
// Entries equal under lessRunning are field-identical, so removing the
// first match is removing r.
func (k *Kernel) endsRemove(r running) {
	i := sort.Search(len(k.ends), func(i int) bool { return !lessRunning(k.ends[i], r) })
	copy(k.ends[i:], k.ends[i+1:])
	k.ends = k.ends[:len(k.ends)-1]
}

// sortPending orders waiting jobs by queue priority (descending) then
// submission time, the priority-FCFS discipline. Insertion sort is stable,
// so the order is identical to the sort.SliceStable it replaces — and since
// pending stays sorted between events, each call is near-linear: only the
// newly arrived suffix sifts into place.
func (k *Kernel) sortPending() {
	p, jobs := k.pending, k.jobs
	for i := 1; i < len(p); i++ {
		for j := i; j > 0; j-- {
			a, b := p[j], p[j-1]
			pa, pb := k.prio[a], k.prio[b]
			if pa > pb || (pa == pb && jobs[a].Submit < jobs[b].Submit) {
				p[j], p[j-1] = p[j-1], p[j]
			} else {
				break
			}
		}
	}
}

// schedule starts every job the policy allows at the current event time.
func (k *Kernel) schedule(cfg Config) {
	jobs := k.jobs
	for {
		progressed := false
		k.sortPending()
		// Start jobs in priority order while they fit. Consuming via a
		// head cursor and compacting afterwards (rather than re-slicing
		// pending[1:]) keeps the slice anchored at its backing array's
		// start, so the arena never loses front capacity to appends.
		h := 0
		for h < len(k.pending) && jobs[k.pending[h]].Procs <= k.available() {
			k.start(k.pending[h])
			h++
			progressed = true
		}
		if h > 0 {
			n := copy(k.pending, k.pending[h:])
			k.pending = k.pending[:n]
		}
		if !progressed || len(k.pending) == 0 {
			break
		}
	}
	if len(k.pending) == 0 {
		return
	}
	switch cfg.Policy {
	case EASY:
		k.backfillEASY()
	case Conservative:
		k.backfillConservative()
	}
}

// backfillEASY reserves the earliest feasible start for the head job, then
// starts any lower-ranked job that fits now without delaying the
// reservation.
func (k *Kernel) backfillEASY() {
	jobs := k.jobs
	head := &jobs[k.pending[0]]
	resStart, resFree := k.reservation(head.Procs)
	for i := 1; i < len(k.pending); i++ {
		j := &jobs[k.pending[i]]
		if j.Procs > k.available() {
			continue
		}
		endEst := k.now + int64(j.Estimate)
		// Safe if it finishes before the reservation, or if it leaves the
		// reserved processors untouched at reservation time.
		if endEst <= resStart || j.Procs <= resFree {
			ji := k.pending[i]
			k.pending = append(k.pending[:i], k.pending[i+1:]...)
			i--
			k.start(ji)
			k.backfilled++
			if endEst > resStart {
				resFree -= j.Procs
			}
			if len(k.pending) == 0 {
				break
			}
		}
	}
}

// reservation computes the earliest time the given processor count becomes
// available assuming running jobs finish at their estimated ends, and how
// many processors will be spare beyond the request at that time. It scans
// the standing est-ordered mirror of the running set (k.ends).
func (k *Kernel) reservation(procs int) (resStart int64, spare int) {
	// Reservation planning approximates future capacity with the current
	// offline level; a boundary crossing reschedules everything anyway.
	free := k.available()
	t := k.now
	for _, r := range k.ends {
		if free >= procs {
			break
		}
		free += r.procs
		if r.est > t {
			t = r.est
		}
	}
	return t, free - procs
}
