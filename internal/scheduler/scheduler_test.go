package scheduler

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func oneQueue(procs int, backfill bool) Config {
	policy := FCFS
	if backfill {
		policy = EASY
	}
	return Config{
		Procs:  procs,
		Queues: []QueueClass{{Name: "q", Priority: 1}},
		Policy: policy,
	}
}

func oneQueuePolicy(procs int, policy Policy) Config {
	return Config{
		Procs:  procs,
		Queues: []QueueClass{{Name: "q", Priority: 1}},
		Policy: policy,
	}
}

func TestFCFSSerialMachine(t *testing.T) {
	// One processor, three jobs arriving together: they run back to back.
	jobs := []*Job{
		{ID: 0, Queue: "q", Procs: 1, Submit: 0, Runtime: 100, Estimate: 100},
		{ID: 1, Queue: "q", Procs: 1, Submit: 0, Runtime: 50, Estimate: 50},
		{ID: 2, Queue: "q", Procs: 1, Submit: 0, Runtime: 25, Estimate: 25},
	}
	res, err := Run(oneQueue(1, false), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Wait() != 0 || jobs[1].Wait() != 100 || jobs[2].Wait() != 150 {
		t.Fatalf("waits: %g %g %g", jobs[0].Wait(), jobs[1].Wait(), jobs[2].Wait())
	}
	if res.Makespan != 175 {
		t.Errorf("makespan = %d", res.Makespan)
	}
	if res.Utilization != 1.0 {
		t.Errorf("utilization = %g", res.Utilization)
	}
	if res.Backfilled != 0 {
		t.Error("no backfill expected")
	}
}

func TestParallelFits(t *testing.T) {
	// Two jobs, machine fits both: both start immediately.
	jobs := []*Job{
		{ID: 0, Queue: "q", Procs: 2, Submit: 10, Runtime: 100, Estimate: 100},
		{ID: 1, Queue: "q", Procs: 2, Submit: 10, Runtime: 100, Estimate: 100},
	}
	if _, err := Run(oneQueue(4, false), jobs); err != nil {
		t.Fatal(err)
	}
	if jobs[0].Wait() != 0 || jobs[1].Wait() != 0 {
		t.Fatalf("waits: %g %g", jobs[0].Wait(), jobs[1].Wait())
	}
}

func TestBackfillLetsSmallJobJumpAhead(t *testing.T) {
	// Machine of 4. A 3-proc job runs until t=100 leaving one processor
	// idle. A 4-proc job waits for the full machine. A 1-proc 10-second
	// job arrives later: without backfill it queues behind the 4-proc
	// job; with EASY backfill it starts immediately on the idle processor
	// because it cannot delay the reservation at t=100.
	mk := func() []*Job {
		return []*Job{
			{ID: 0, Queue: "q", Procs: 3, Submit: 0, Runtime: 100, Estimate: 100},
			{ID: 1, Queue: "q", Procs: 4, Submit: 1, Runtime: 100, Estimate: 100},
			{ID: 2, Queue: "q", Procs: 1, Submit: 2, Runtime: 10, Estimate: 10},
		}
	}
	noBF := mk()
	if _, err := Run(oneQueue(4, false), noBF); err != nil {
		t.Fatal(err)
	}
	if noBF[2].Start() != 200 {
		t.Errorf("without backfill the small job starts at %d, want 200", noBF[2].Start())
	}
	bf := mk()
	res, err := Run(oneQueue(4, true), bf)
	if err != nil {
		t.Fatal(err)
	}
	if bf[2].Start() != 2 {
		t.Errorf("with backfill the small job starts at %d, want 2", bf[2].Start())
	}
	if bf[1].Start() != 100 {
		t.Errorf("reservation violated: second big job starts at %d, want 100", bf[1].Start())
	}
	if res.Backfilled != 1 {
		t.Errorf("backfilled = %d", res.Backfilled)
	}
}

func TestBackfillNeverDelaysReservation(t *testing.T) {
	// A long small job may NOT backfill when it would overlap the head
	// job's reservation and use its processors.
	jobs := []*Job{
		{ID: 0, Queue: "q", Procs: 4, Submit: 0, Runtime: 100, Estimate: 100},
		{ID: 1, Queue: "q", Procs: 3, Submit: 1, Runtime: 100, Estimate: 100},
		// Wants 1 proc for 500s (estimate): at t=100 the head needs 3 of
		// 4, so 1 spare remains — this one CAN backfill into the spare.
		{ID: 2, Queue: "q", Procs: 1, Submit: 2, Runtime: 500, Estimate: 500},
		// This one wants 2 procs for 500s: it would eat into the
		// reservation, so it must wait.
		{ID: 3, Queue: "q", Procs: 2, Submit: 3, Runtime: 500, Estimate: 500},
	}
	// Machine is fully busy: job 0 holds all 4 procs until t=100.
	if _, err := Run(oneQueue(4, true), jobs); err != nil {
		t.Fatal(err)
	}
	if jobs[1].Start() != 100 {
		t.Errorf("head starts at %d, want 100", jobs[1].Start())
	}
	if jobs[2].Start() != 0 && jobs[2].Start() > 100 {
		t.Errorf("1-proc filler should backfill, starts at %d", jobs[2].Start())
	}
	if jobs[3].Start() < 100 {
		t.Errorf("2-proc job must not delay the reservation, starts at %d", jobs[3].Start())
	}
}

func TestPriorityQueues(t *testing.T) {
	// Equal arrival, single slot: the high-priority job goes first even
	// though it arrived later in the slice.
	cfg := Config{
		Procs: 1,
		Queues: []QueueClass{
			{Name: "low", Priority: 1},
			{Name: "high", Priority: 10},
		},
	}
	jobs := []*Job{
		{ID: 0, Queue: "low", Procs: 1, Submit: 5, Runtime: 10, Estimate: 10},
		{ID: 1, Queue: "high", Procs: 1, Submit: 5, Runtime: 10, Estimate: 10},
	}
	if _, err := Run(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	if jobs[1].Start() != 5 || jobs[0].Start() != 15 {
		t.Errorf("starts: high %d low %d", jobs[1].Start(), jobs[0].Start())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := Run(oneQueue(0, false), nil); err == nil {
		t.Error("zero procs should fail")
	}
	if _, err := Run(oneQueue(4, false), []*Job{{ID: 0, Queue: "q", Procs: 8, Runtime: 1}}); err == nil {
		t.Error("oversized job should fail")
	}
	if _, err := Run(oneQueue(4, false), []*Job{{ID: 0, Queue: "zzz", Procs: 1, Runtime: 1}}); err == nil {
		t.Error("unknown queue should fail")
	}
	if _, err := Run(oneQueue(4, false), []*Job{{ID: 0, Queue: "q", Procs: 0, Runtime: 1}}); err == nil {
		t.Error("zero-proc job should fail")
	}
}

func TestResultTrace(t *testing.T) {
	jobs := []*Job{
		{ID: 0, Queue: "q", Procs: 1, Submit: 0, Runtime: 10, Estimate: 10},
		{ID: 1, Queue: "q", Procs: 1, Submit: 1, Runtime: 10, Estimate: 10},
	}
	res, err := Run(oneQueue(1, false), jobs)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace("mach", "q")
	if tr.Machine != "mach" || tr.Len() != 2 {
		t.Fatalf("trace: %+v", tr)
	}
	if tr.Jobs[1].Wait != 9 {
		t.Errorf("second wait = %g, want 9", tr.Jobs[1].Wait)
	}
	if res.Trace("mach", "other").Len() != 0 {
		t.Error("queue filter")
	}
	all := res.Trace("mach", "")
	if all.Queue != "all" || all.Len() != 2 {
		t.Error("merged trace")
	}
}

func TestGenerateJobsShape(t *testing.T) {
	jobs := GenerateJobs(WorkloadConfig{Jobs: 5000, Seed: 3})
	if len(jobs) != 5000 {
		t.Fatalf("len = %d", len(jobs))
	}
	queues := map[string]int{}
	for i, j := range jobs {
		if i > 0 && j.Submit < jobs[i-1].Submit {
			t.Fatal("submits not nondecreasing")
		}
		if j.Procs < 1 || j.Procs > 128 {
			t.Fatalf("procs = %d", j.Procs)
		}
		if j.Procs&(j.Procs-1) != 0 {
			t.Fatalf("procs %d not a power of two", j.Procs)
		}
		if j.Estimate < j.Runtime {
			t.Fatal("estimates must not undershoot runtimes")
		}
		if j.Runtime < 10 {
			t.Fatal("runtime floor")
		}
		queues[j.Queue]++
	}
	if len(queues) != 3 {
		t.Fatalf("queues: %v", queues)
	}
	if queues["normal"] < queues["high"] {
		t.Error("normal should dominate the mix")
	}
}

func TestGenerateJobsDeterministic(t *testing.T) {
	a := GenerateJobs(WorkloadConfig{Jobs: 100, Seed: 9})
	b := GenerateJobs(WorkloadConfig{Jobs: 100, Seed: 9})
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestEmergentWaitsAreHeavyTailedAndBackfillFavorsSmall(t *testing.T) {
	jobs := GenerateJobs(WorkloadConfig{Jobs: 15000, Seed: 7})
	res, err := Run(DefaultMachine(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backfilled == 0 {
		t.Fatal("no backfilling on a contended machine")
	}
	if res.Utilization < 0.3 || res.Utilization > 1 {
		t.Errorf("utilization = %g", res.Utilization)
	}
	tr := res.Trace("sim", "normal")
	s := tr.Summary()
	if s.Median >= s.Mean {
		t.Errorf("emergent waits not heavy-tailed: median %g mean %g", s.Median, s.Mean)
	}
	// The Section 6.2 folklore: small jobs wait less than large ones.
	small := stats.Mean(tr.FilterProcs(trace.Procs1to4).Waits())
	large := stats.Mean(tr.FilterProcs(trace.Procs17to64).Waits())
	if small >= large {
		t.Errorf("backfill should favor small jobs: small mean %g, large %g", small, large)
	}
}

func TestReservationNeverStarves(t *testing.T) {
	// With backfill on and a stream of small jobs, the big head job still
	// runs (EASY guarantees no starvation via the reservation).
	jobs := []*Job{
		{ID: 0, Queue: "q", Procs: 4, Submit: 0, Runtime: 50, Estimate: 50},
		{ID: 1, Queue: "q", Procs: 4, Submit: 1, Runtime: 50, Estimate: 50},
	}
	for i := 2; i < 40; i++ {
		jobs = append(jobs, &Job{ID: i, Queue: "q", Procs: 1, Submit: int64(i), Runtime: 1000, Estimate: 1000})
	}
	if _, err := Run(oneQueue(4, true), jobs); err != nil {
		t.Fatal(err)
	}
	if jobs[1].Start() != 50 {
		t.Errorf("big job delayed to %d by backfilled small jobs", jobs[1].Start())
	}
}
