package scheduler

import (
	"testing"
)

const benchJobs = 2000

func benchConfig() Config {
	cfg := DefaultMachine()
	cfg.Policy = EASY
	return cfg
}

// BenchmarkSchedulerRun compares the single-shot path (fresh kernel per
// run, as the pre-PR Run behaved) against a reused kernel fed from a CRN
// base trace — the steady-state shape of the what-if plane.
func BenchmarkSchedulerRun(b *testing.B) {
	cfg := benchConfig()
	b.Run("singleshot", func(b *testing.B) {
		jobs := GenerateJobs(WorkloadConfig{Jobs: benchJobs, Seed: 42})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(cfg, jobs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kernel", func(b *testing.B) {
		bt := NewBaseTrace(WorkloadConfig{Jobs: benchJobs, Seed: 42})
		k := NewKernel()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bt.Fill(k.Jobs(bt.Len()), Perturbation{})
			if _, err := k.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRunHeap pins the typed heap's cost: pushing and draining a
// thousand entries on a pre-grown heap must not allocate (the container/heap
// predecessor boxed every running value into an interface{}).
func BenchmarkRunHeap(b *testing.B) {
	var h runHeap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			h.push(running{procs: j & 7, end: int64((j * 2654435761) % 1009), est: int64(j)})
		}
		for h.len() > 0 {
			h.pop()
		}
	}
}

// TestRunHeapZeroAllocs asserts the boxing is really gone: steady-state
// push/pop on a warm heap performs zero allocations.
func TestRunHeapZeroAllocs(t *testing.T) {
	var h runHeap
	fill := func() {
		for j := 0; j < 512; j++ {
			h.push(running{procs: j & 7, end: int64((j * 31) % 97), est: int64(j)})
		}
		for h.len() > 0 {
			h.pop()
		}
	}
	fill() // grow the backing array once
	if allocs := testing.AllocsPerRun(100, fill); allocs != 0 {
		t.Fatalf("runHeap push/pop allocated %.1f times per cycle, want 0", allocs)
	}
}

// TestKernelRunZeroAllocs asserts the tentpole claim: a warm kernel replay
// of a 2000-job trace — Fill plus Run, the per-scenario unit of the what-if
// plane — is allocation-free in steady state.
func TestKernelRunZeroAllocs(t *testing.T) {
	bt := NewBaseTrace(WorkloadConfig{Jobs: benchJobs, Seed: 42})
	cfg := benchConfig()
	k := NewKernel()
	replay := func() {
		bt.Fill(k.Jobs(bt.Len()), Perturbation{})
		if _, err := k.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	replay() // warm the arenas
	if allocs := testing.AllocsPerRun(5, replay); allocs != 0 {
		t.Fatalf("warm kernel replay allocated %.1f times per run, want 0", allocs)
	}
}
