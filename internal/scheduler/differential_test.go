package scheduler

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// The golden hashes below were captured from the pre-kernel scheduler (the
// allocate-per-run Run with container/heap and sort.Slice throughout) at
// seed 42. The pooled kernel must reproduce every start time, clamp, and
// float-accumulated utilization bit for bit: the what-if plane's deltas are
// only meaningful if kernel replays are exactly the simulator the predictor
// was validated against.
var goldenRuns = []struct {
	policy     Policy
	jobs       int
	downtimes  []Downtime
	makespan   int64
	util       string // %.12f
	backfilled int
	hash       uint64
}{
	{FCFS, 2000, nil, 798425, "0.272315184658", 0, 0xf73a145c54bcdf55},
	{FCFS, 20000, nil, 6945142, "0.353641202701", 0, 0xe205feefd838190b},
	{EASY, 2000, nil, 643164, "0.338052582717", 1599, 0xfbeba5c0208fc839},
	{EASY, 20000, nil, 3740821, "0.656563992184", 17683, 0x3c805e80109a2b8d},
	{Conservative, 2000, []Downtime{{From: 3600 * 24, To: 3600 * 36, Procs: 64}},
		731644, "0.297170825306", 1592, 0xc6294c703d77fb9b},
}

// goldenHash digests the per-job outcomes in result order: ID, assigned
// start, (possibly clamped) estimate, and the kill flag.
func goldenHash(jobs []*Job) uint64 {
	h := fnv.New64a()
	for _, j := range jobs {
		fmt.Fprintf(h, "%d:%d:%.6f:%t;", j.ID, j.Start(), j.Estimate, j.Killed)
	}
	return h.Sum64()
}

func goldenConfig(g struct {
	policy     Policy
	jobs       int
	downtimes  []Downtime
	makespan   int64
	util       string
	backfilled int
	hash       uint64
}) Config {
	cfg := DefaultMachine()
	cfg.Policy = g.policy
	cfg.Downtimes = g.downtimes
	return cfg
}

func checkGolden(t *testing.T, name string, res *Result, g struct {
	policy     Policy
	jobs       int
	downtimes  []Downtime
	makespan   int64
	util       string
	backfilled int
	hash       uint64
}) {
	t.Helper()
	if res.Makespan != g.makespan {
		t.Errorf("%s: makespan = %d, want %d", name, res.Makespan, g.makespan)
	}
	if u := fmt.Sprintf("%.12f", res.Utilization); u != g.util {
		t.Errorf("%s: utilization = %s, want %s", name, u, g.util)
	}
	if res.Backfilled != g.backfilled {
		t.Errorf("%s: backfilled = %d, want %d", name, res.Backfilled, g.backfilled)
	}
	if h := goldenHash(res.Jobs); h != g.hash {
		t.Errorf("%s: job hash = %#x, want %#x", name, h, g.hash)
	}
}

// TestRunMatchesPreKernelGolden pins the single-shot Run (now a kernel
// wrapper) to the pre-kernel implementation's outputs.
func TestRunMatchesPreKernelGolden(t *testing.T) {
	for _, g := range goldenRuns {
		name := fmt.Sprintf("%v/%d", g.policy, g.jobs)
		jobs := GenerateJobs(WorkloadConfig{Jobs: g.jobs, Seed: 42})
		res, err := Run(goldenConfig(g), jobs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkGolden(t, name, res, g)
	}
}

// TestKernelReuseMatchesGolden replays every golden case twice through ONE
// kernel, interleaved, checking the second pass still matches: arena reuse
// must leak no state between runs.
func TestKernelReuseMatchesGolden(t *testing.T) {
	k := NewKernel()
	for pass := 0; pass < 2; pass++ {
		for _, g := range goldenRuns {
			name := fmt.Sprintf("pass%d/%v/%d", pass, g.policy, g.jobs)
			src := GenerateJobs(WorkloadConfig{Jobs: g.jobs, Seed: 42})
			arena := k.Jobs(len(src))
			for i, j := range src {
				arena[i] = *j
			}
			kr, err := k.Run(goldenConfig(g))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range kr.Jobs {
				*src[i] = kr.Jobs[i]
			}
			res := &Result{Jobs: src, Makespan: kr.Makespan, Utilization: kr.Utilization, Backfilled: kr.Backfilled}
			checkGolden(t, name, res, g)
		}
	}
}
