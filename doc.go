// Package repro is a from-scratch Go reproduction of Brevik, Nurmi, and
// Wolski, "Predicting Bounds on Queuing Delay in Space-shared Computing
// Environments" (IISWC 2006; UCSB TR CS2005-09).
//
// The public API lives in the qbets subpackage. The implementation —
// statistics, the BMBP predictor, the log-normal comparators, the
// trace-replay evaluation simulator, the calibrated synthetic workload
// suite, and the batch-scheduler substrate — lives under internal/. The
// benchmark harness in bench_test.go regenerates every table and figure of
// the paper's evaluation; cmd/ holds the runnable tools.
package repro
