package repro

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus the paper's timing claim and the ablations
// DESIGN.md calls out. Each benchmark regenerates its experiment end to end
// (workload generation + trace-replay evaluation) and reports the headline
// statistic as a custom metric, so `go test -bench=. -benchmem` both times
// the harness and reproduces the results.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/predictor"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

var benchCfg = experiments.Config{Seed: 42}

// BenchmarkTable1Summary regenerates the 39-queue workload suite and its
// Table 1 summary statistics.
func BenchmarkTable1Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchCfg)
		if len(rows) != 39 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkTable3ByQueue reproduces Table 3: per-queue correct fractions
// for BMBP and the two log-normal comparators over all 32 evaluated queues
// (~1.2 million replayed jobs per iteration).
func BenchmarkTable3ByQueue(b *testing.B) {
	var bmbpMean float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table34(benchCfg)
		bmbpMean = 0
		for _, r := range rows {
			bmbpMean += r.BMBP.CorrectFraction
		}
		bmbpMean /= float64(len(rows))
	}
	b.ReportMetric(bmbpMean, "bmbp-correct/op")
}

// BenchmarkTable4Accuracy reproduces Table 4: the median actual/predicted
// ratios (the accuracy comparison shares Table 3's evaluation run).
func BenchmarkTable4Accuracy(b *testing.B) {
	var wins int
	for i := 0; i < b.N; i++ {
		rows := experiments.Table34(benchCfg)
		wins = 0
		for _, r := range rows {
			if r.BMBP.MedianRatio >= math.Max(r.LogNoTrim.MedianRatio, r.LogTrim.MedianRatio) {
				wins++
			}
		}
	}
	b.ReportMetric(float64(wins), "bmbp-tightest-queues/op")
}

// BenchmarkTable5BMBPByProcs reproduces Table 5: BMBP correct fractions per
// queue × processor-count category.
func BenchmarkTable5BMBPByProcs(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table567(benchCfg)
		worst = 1
		for _, r := range rows {
			for _, bu := range trace.AllBuckets {
				if v := r.BMBP[bu]; !math.IsNaN(v) && v < worst {
					worst = v
				}
			}
		}
	}
	b.ReportMetric(worst, "bmbp-worst-cell/op")
}

// BenchmarkTable6LogNormalByProcs reproduces Table 6 (log-normal, no
// trimming, by processor count).
func BenchmarkTable6LogNormalByProcs(b *testing.B) {
	var fails float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table567(benchCfg)
		fails = 0
		for _, r := range rows {
			for _, bu := range trace.AllBuckets {
				if v := r.LogNoTrim[bu]; !math.IsNaN(v) && v < 0.95 {
					fails++
				}
			}
		}
	}
	b.ReportMetric(fails, "logn-notrim-failed-cells/op")
}

// BenchmarkTable7LogNormalTrimByProcs reproduces Table 7 (log-normal with
// BMBP's trimming, by processor count).
func BenchmarkTable7LogNormalTrimByProcs(b *testing.B) {
	var fails float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table567(benchCfg)
		fails = 0
		for _, r := range rows {
			for _, bu := range trace.AllBuckets {
				if v := r.LogTrim[bu]; !math.IsNaN(v) && v < 0.95 {
					fails++
				}
			}
		}
	}
	b.ReportMetric(fails, "logn-trim-failed-cells/op")
}

// BenchmarkTable8QuantileProfile reproduces Table 8: the two-hourly
// quantile profile of datastar/normal through May 5, 2004.
func BenchmarkTable8QuantileProfile(b *testing.B) {
	var q95 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table8(benchCfg)
		if len(rows) != 13 {
			b.Fatal("row count")
		}
		q95 = rows[len(rows)-1].Q95
	}
	b.ReportMetric(q95, "final-q95-bound-s/op")
}

// BenchmarkFigure1TwoSites reproduces Figure 1: the all-day bound series
// for SDSC Datastar and TACC Lonestar, Feb 24 2005.
func BenchmarkFigure1TwoSites(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		series := experiments.Figure1(benchCfg)
		gap = med(series[0].Values) / math.Max(med(series[1].Values), 1)
	}
	b.ReportMetric(gap, "sdsc-over-tacc-gap/op")
}

// BenchmarkFigure2ProcSplit reproduces Figure 2: the June 2004 per-category
// bound series in which larger jobs were favored.
func BenchmarkFigure2ProcSplit(b *testing.B) {
	var inversion float64
	for i := 0; i < b.N; i++ {
		series := experiments.Figure2(benchCfg)
		inversion = med(series[0].Values) / math.Max(med(series[1].Values), 1)
	}
	b.ReportMetric(inversion, "small-over-large-gap/op")
}

// BenchmarkPredictionLatency measures the paper's Section 5 timing claim
// (8 ms per prediction on a 1 GHz Pentium III): one observation plus a
// refit plus a bound query against a 100k-observation history.
func BenchmarkPredictionLatency(b *testing.B) {
	p := core.New(core.Config{Seed: 1})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		p.Observe(math.Exp(2*rng.NormFloat64()), false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(math.Exp(2*rng.NormFloat64()), false)
		p.Refit()
		if _, ok := p.Bound(); !ok {
			b.Fatal("bound unavailable")
		}
	}
}

// BenchmarkLogNormalRefitLatency measures the comparator's per-epoch cost
// (running moments + tolerance factor).
func BenchmarkLogNormalRefitLatency(b *testing.B) {
	p := predictor.NewLogNormal(predictor.LogNormalConfig{})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		p.Observe(math.Exp(2*rng.NormFloat64()), false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(math.Exp(2*rng.NormFloat64()), false)
		p.Refit()
		if _, ok := p.Bound(); !ok {
			b.Fatal("bound unavailable")
		}
	}
}

// --- Ablations (DESIGN.md Section 5) ---

// BenchmarkAblationExactVsApprox compares the exact binomial index search
// against the paper's normal approximation.
func BenchmarkAblationExactVsApprox(b *testing.B) {
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := core.UpperBoundIndex(100_000, 0.95, 0.95, core.ModeExact); !ok {
				b.Fatal("index unavailable")
			}
		}
	})
	b.Run("approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := core.UpperBoundIndex(100_000, 0.95, 0.95, core.ModeApprox); !ok {
				b.Fatal("index unavailable")
			}
		}
	})
}

// ablationQueue evaluates one representative nonstationary queue
// (datastar/normal) under a given BMBP configuration and returns the
// correct fraction.
func ablationQueue(b *testing.B, cfg core.Config) float64 {
	b.Helper()
	p := trace.FindPaperQueue("datastar", "normal")
	t := workload.ModelFor(p, 42).Generate()
	preds := []predictor.Predictor{core.New(cfg)}
	res := sim.Run(t, preds, sim.Config{})
	return res[0].CorrectFraction()
}

// BenchmarkAblationBMBPNoTrim quantifies what the change-point machinery
// buys BMBP itself on a strongly nonstationary queue (the paper only
// ablates trimming for the log-normal comparator).
func BenchmarkAblationBMBPNoTrim(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationQueue(b, core.Config{Seed: 1})
		without = ablationQueue(b, core.Config{Seed: 1, NoTrim: true})
	}
	b.ReportMetric(with, "trim-correct/op")
	b.ReportMetric(without, "notrim-correct/op")
}

// BenchmarkAblationFixedThreshold compares the autocorrelation-calibrated
// rare-event threshold against a fixed three-in-a-row rule.
func BenchmarkAblationFixedThreshold(b *testing.B) {
	var adaptive, fixed float64
	for i := 0; i < b.N; i++ {
		adaptive = ablationQueue(b, core.Config{Seed: 1})
		fixed = ablationQueue(b, core.Config{Seed: 1, FixedRareThreshold: 3})
	}
	b.ReportMetric(adaptive, "adaptive-correct/op")
	b.ReportMetric(fixed, "fixed3-correct/op")
}

// BenchmarkAblationCUSUMDetector compares the paper's consecutive-miss
// change detector against a Bernoulli CUSUM on the same nonstationary
// queue.
func BenchmarkAblationCUSUMDetector(b *testing.B) {
	p := trace.FindPaperQueue("datastar", "normal")
	t := workload.ModelFor(p, 42).Generate()
	var runRule, cusum float64
	for i := 0; i < b.N; i++ {
		res := sim.Run(t, []predictor.Predictor{
			core.New(core.Config{Seed: 1}),
			core.NewWithCUSUM(core.Config{Seed: 1}, 0.3, 6),
		}, sim.Config{})
		runRule = res[0].CorrectFraction()
		cusum = res[1].CorrectFraction()
	}
	b.ReportMetric(runRule, "run-rule-correct/op")
	b.ReportMetric(cusum, "cusum-correct/op")
}

// BenchmarkSchedulerSubstrate times the batch-scheduler simulator itself
// (30k jobs through a 128-processor machine with EASY backfilling).
func BenchmarkSchedulerSubstrate(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		jobs := scheduler.GenerateJobs(scheduler.WorkloadConfig{Jobs: 30_000, Seed: 7})
		res, err := scheduler.Run(scheduler.DefaultMachine(), jobs)
		if err != nil {
			b.Fatal(err)
		}
		util = res.Utilization
	}
	b.ReportMetric(util, "utilization/op")
}

// BenchmarkAblationBackfillPolicy compares the scheduling disciplines the
// substrate implements — FCFS, EASY, conservative — on one job stream,
// reporting the mean wait each produces.
func BenchmarkAblationBackfillPolicy(b *testing.B) {
	for _, policy := range []scheduler.Policy{scheduler.FCFS, scheduler.EASY, scheduler.Conservative} {
		b.Run(policy.String(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				jobs := scheduler.GenerateJobs(scheduler.WorkloadConfig{Jobs: 10_000, Seed: 11})
				cfg := scheduler.DefaultMachine()
				cfg.Policy = policy
				if _, err := scheduler.Run(cfg, jobs); err != nil {
					b.Fatal(err)
				}
				var sum float64
				for _, j := range jobs {
					sum += j.Wait()
				}
				mean = sum / float64(len(jobs))
			}
			b.ReportMetric(mean, "mean-wait-s/op")
		})
	}
}

// BenchmarkAblationComparators runs the full comparator field — BMBP, both
// log-normals, Downey's log-uniform, and the naive baselines — over one
// nonstationary queue and reports each method's correct fraction.
func BenchmarkAblationComparators(b *testing.B) {
	p := trace.FindPaperQueue("sdsc", "low")
	t := workload.ModelFor(p, 42).Generate()
	preds := func() []predictor.Predictor {
		return []predictor.Predictor{
			predictor.NewBMBP(0.95, 0.95, 1),
			predictor.NewLogNormal(predictor.LogNormalConfig{}),
			predictor.NewLogNormal(predictor.LogNormalConfig{Trim: true}),
			predictor.NewLogUniform(predictor.LogUniformConfig{}),
			predictor.NewLogUniform(predictor.LogUniformConfig{Trim: true}),
			predictor.NewRunningMax(0.95, 0.95),
			predictor.NewEmpirical(0.95, 0.95, 1),
		}
	}
	var results []sim.Result
	for i := 0; i < b.N; i++ {
		results = sim.Run(t, preds(), sim.Config{})
	}
	for _, r := range results {
		b.ReportMetric(r.CorrectFraction(), r.Method+"/op")
	}
}

// BenchmarkWorkloadGeneration times the calibrated synthetic generator over
// the largest queue (tacc2/normal, 356k jobs).
func BenchmarkWorkloadGeneration(b *testing.B) {
	p := trace.FindPaperQueue("tacc2", "normal")
	for i := 0; i < b.N; i++ {
		t := workload.ModelFor(p, 42).Generate()
		if t.Len() != p.JobCount {
			b.Fatal("length")
		}
	}
}

func med(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
