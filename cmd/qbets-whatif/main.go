// Command qbets-whatif is the capacity-planning client: it asks a running
// qbets-serve instance "what would the wait bound be if load or capacity
// changed", and "how much load keeps the bound inside an SLO", via
// POST /v1/whatif.
//
// Usage:
//
//	qbets-whatif -addr http://localhost:8080 -rates 0.5,1,1.5,2
//	qbets-whatif -queue normal -procs 8 -rates 1,1.2 -machines 128,64
//	qbets-whatif -queue normal -procs 8 -slo 3600
//	qbets-whatif -rates 1 -policies easy,fcfs      # cost of disabling backfill
//
// Scenario axes (-rates × -machines × -policies) expand into a grid; the
// server replays every cell from one common-random-numbers base trace and
// returns calibrated bounds plus deltas against the live stream when
// -queue names one.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/qbets"
)

func splitFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbets-whatif: ")
	var (
		addr     = flag.String("addr", "http://localhost:8080", "qbets-serve base URL")
		queue    = flag.String("queue", "", "live stream queue to calibrate against (optional)")
		procs    = flag.Int("procs", 0, "live stream processor count (with -queue)")
		rates    = flag.String("rates", "", "comma-separated arrival-rate multipliers (e.g. 0.5,1,2)")
		machines = flag.String("machines", "", "comma-separated machine sizes in processors (0 = current)")
		policies = flag.String("policies", "", "comma-separated policies: fcfs, easy, conservative")
		slo      = flag.Float64("slo", 0, "SLO sizing: max bound in seconds (0 = off)")
		jobs     = flag.Int("jobs", 0, "simulated base-trace length (0 = server default)")
		asJSON   = flag.Bool("json", false, "print the raw response JSON")
	)
	flag.Parse()

	rateVals, err := splitFloats(*rates)
	if err != nil {
		log.Fatal(err)
	}
	machineVals, err := splitInts(*machines)
	if err != nil {
		log.Fatal(err)
	}
	var policyVals []string
	if *policies != "" {
		for _, p := range strings.Split(*policies, ",") {
			policyVals = append(policyVals, strings.TrimSpace(p))
		}
	}
	// Expand the grid; a missing axis contributes its "unchanged" value.
	if len(rateVals) == 0 {
		rateVals = []float64{0}
	}
	if len(machineVals) == 0 {
		machineVals = []int{0}
	}
	if len(policyVals) == 0 {
		policyVals = []string{""}
	}
	req := qbets.WhatifRequest{Queue: *queue, Procs: *procs, WorkloadJobs: *jobs}
	for _, pol := range policyVals {
		for _, m := range machineVals {
			for _, r := range rateVals {
				if r == 0 && m == 0 && pol == "" {
					continue // pure baseline is implicit in every response
				}
				req.Scenarios = append(req.Scenarios, qbets.WhatifScenario{
					Name:           scenarioName(r, m, pol),
					RateMultiplier: r,
					Procs:          m,
					Policy:         pol,
				})
			}
		}
	}
	if *slo > 0 {
		req.Sizing = &qbets.WhatifSizingRequest{TargetSeconds: *slo}
	}
	if len(req.Scenarios) == 0 && req.Sizing == nil {
		log.Fatal("nothing to ask: provide -rates/-machines/-policies and/or -slo")
	}

	body, err := json.Marshal(&req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(strings.TrimRight(*addr, "/")+"/v1/whatif", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("server: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	if *asJSON {
		os.Stdout.Write(raw)
		return
	}
	var out qbets.WhatifResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		log.Fatalf("bad response: %v", err)
	}
	printResponse(&out)
}

func scenarioName(rate float64, machine int, policy string) string {
	var parts []string
	if rate != 0 && rate != 1 {
		parts = append(parts, fmt.Sprintf("rate x%g", rate))
	}
	if machine != 0 {
		parts = append(parts, fmt.Sprintf("%dp", machine))
	}
	if policy != "" {
		parts = append(parts, policy)
	}
	if len(parts) == 0 {
		return "base"
	}
	return strings.Join(parts, " ")
}

func printResponse(out *qbets.WhatifResponse) {
	fmt.Printf("what-if: %g-quantile bound at %g confidence, %d-job base trace\n",
		out.Quantile, out.Confidence, out.WorkloadJobs)
	if out.Live != nil {
		fmt.Printf("live: %s  bound=%s  obs=%d  gen=%d\n",
			out.Live.Stream, seconds(out.Live.BoundSeconds, out.Live.BoundOK), out.Live.Observations, out.Live.Generation)
	}
	if out.Calibrated {
		fmt.Printf("calibration: simulated bounds scaled by %.3f to match live\n", out.CalibrationScale)
	} else {
		fmt.Println("calibration: none (raw simulated bounds)")
	}
	if len(out.Scenarios) > 0 {
		fmt.Printf("\n%-24s %12s %12s %12s %6s %5s\n", "scenario", "bound", "vs live", "mean wait", "util", "cache")
		for _, sc := range out.Scenarios {
			name := sc.Scenario.Name
			if name == "" {
				name = scenarioName(sc.Scenario.RateMultiplier, sc.Scenario.Procs, sc.Scenario.Policy)
			}
			if sc.Error != "" {
				fmt.Printf("%-24s error: %s\n", name, sc.Error)
				continue
			}
			delta := "-"
			if sc.DeltaVsLiveSeconds != nil {
				delta = fmt.Sprintf("%+.0fs", *sc.DeltaVsLiveSeconds)
			}
			cached := ""
			if sc.Cached {
				cached = "hit"
			}
			fmt.Printf("%-24s %12s %12s %11.0fs %5.1f%% %5s\n",
				name, seconds(sc.CalibratedBoundSeconds, sc.BoundOK), delta,
				sc.MeanWaitSeconds, 100*sc.Utilization, cached)
		}
	}
	if out.Sizing != nil {
		s := out.Sizing
		fmt.Printf("\nsizing: SLO %.0fs -> ", s.TargetSeconds)
		if !s.OK {
			fmt.Printf("infeasible even at the search floor (bound %s)\n", seconds(s.CalibratedBoundSeconds, true))
			return
		}
		fmt.Printf("max sustainable rate x%.3f (bound %s, %d simulations)\n",
			s.MaxRateMultiplier, seconds(s.CalibratedBoundSeconds, true), s.Evaluations)
	}
}

func seconds(v float64, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.0fs", v)
}
