// Command qbets-eval reproduces the paper's evaluation tables: the by-queue
// correctness and accuracy comparisons (Tables 3 and 4) and the
// by-processor-count breakdowns (Tables 5, 6, and 7). Reproduced values are
// printed beside the paper's published numbers; an asterisk marks a method
// that failed to reach the 0.95 correct fraction, exactly as in the paper.
//
// Usage:
//
//	qbets-eval                          # all tables
//	qbets-eval -table 3                 # one table (3, 4, 5, 6, or 7)
//	qbets-eval -extended                # beyond-paper comparator field
//	qbets-eval -sweep                   # quantile/confidence grid
//	qbets-eval -autocat datastar/normal # fixed vs learned job categories
//	qbets-eval -seed 7                  # different synthetic-workload seed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbets-eval: ")
	var (
		table    = flag.Int("table", 0, "print only this table (3-7); 0 = all")
		extended = flag.Bool("extended", false, "also run the beyond-paper comparator field (log-uniform, running-max, empirical)")
		sweep    = flag.Bool("sweep", false, "run the quantile/confidence sweep (Section 5's 'several combinations')")
		autocat  = flag.String("autocat", "", "compare merged vs fixed-bucket vs learned categories on machine/queue (e.g. datastar/normal)")
		seed     = flag.Int64("seed", 42, "synthetic workload seed")
	)
	flag.Parse()
	cfg := experiments.Config{Seed: *seed}

	if *autocat != "" {
		printAutoCat(cfg, *autocat)
		if *table == 0 && !*extended && !*sweep {
			return
		}
	}
	if *sweep {
		printSweep(cfg)
		if *table == 0 && !*extended {
			return
		}
	}
	if *extended {
		printExtended(cfg)
		if *table == 0 {
			return
		}
	}

	if *table == 0 || *table == 3 || *table == 4 {
		rows := experiments.Table34(cfg)
		if *table == 0 || *table == 3 {
			printTable3(rows)
		}
		if *table == 0 || *table == 4 {
			printTable4(rows)
		}
	}
	if *table == 0 || *table >= 5 {
		rows := experiments.Table567(cfg)
		if *table == 0 || *table == 5 {
			printTable567(rows, "Table 5 — BMBP correct fraction by queue and processor count",
				func(r experiments.Table567Row) [4]float64 { return r.BMBP })
		}
		if *table == 0 || *table == 6 {
			printTable567(rows, "Table 6 — log-normal (no trimming) correct fraction by queue and processor count",
				func(r experiments.Table567Row) [4]float64 { return r.LogNoTrim })
		}
		if *table == 0 || *table == 7 {
			printTable567(rows, "Table 7 — log-normal (with trimming) correct fraction by queue and processor count",
				func(r experiments.Table567Row) [4]float64 { return r.LogTrim })
		}
	}
	if *table != 0 && (*table < 3 || *table > 7) {
		log.Fatalf("unknown table %d (have 3-7)", *table)
	}
}

func printTable3(rows []experiments.Table34Row) {
	tbl := report.NewTable(
		"Table 3 — fraction of correct 0.95-quantile/95%-confidence bounds per queue (paper values in parens; '*' = below 0.95)",
		"machine", "queue", "bmbp", "(paper)", "logn-notrim", "(paper)", "logn-trim", "(paper)",
	)
	for _, r := range rows {
		tbl.AddRow(r.Machine, r.Queue,
			report.Frac(r.BMBP.CorrectFraction, 0.95), report.Frac(r.PaperBMBP, 0.95),
			report.Frac(r.LogNoTrim.CorrectFraction, 0.95), report.Frac(r.PaperLogNoTrim, 0.95),
			report.Frac(r.LogTrim.CorrectFraction, 0.95), report.Frac(r.PaperLogTrim, 0.95),
		)
	}
	render(tbl)
}

func printTable4(rows []experiments.Table34Row) {
	tbl := report.NewTable(
		"Table 4 — median ratio of actual over predicted wait (accuracy; higher = tighter bound)",
		"machine", "queue", "bmbp", "(paper)", "logn-notrim", "(paper)", "logn-trim", "(paper)",
	)
	for _, r := range rows {
		tbl.AddRow(r.Machine, r.Queue,
			report.Sci(r.BMBP.MedianRatio), report.Sci(r.PaperBMBPRatio),
			report.Sci(r.LogNoTrim.MedianRatio), report.Sci(r.PaperNoTrimRatio),
			report.Sci(r.LogTrim.MedianRatio), report.Sci(r.PaperTrimRatio),
		)
	}
	render(tbl)
}

func printTable567(rows []experiments.Table567Row, title string, pick func(experiments.Table567Row) [4]float64) {
	tbl := report.NewTable(title, "machine", "queue", "1-4", "5-16", "17-64", "65+")
	for _, r := range rows {
		vals := pick(r)
		cells := []string{r.Machine, r.Queue}
		for _, b := range trace.AllBuckets {
			cells = append(cells, report.FracOrDash(vals[b], 0.95))
		}
		tbl.AddRow(cells...)
	}
	render(tbl)
}

func printAutoCat(cfg experiments.Config, name string) {
	machine, queue, ok := strings.Cut(name, "/")
	if !ok {
		log.Fatalf("-autocat wants machine/queue, got %q", name)
	}
	results := experiments.AutoCategories(cfg, machine, queue)
	if results == nil {
		log.Fatalf("unknown queue %q", name)
	}
	tbl := report.NewTable(
		fmt.Sprintf("Job-category strategies on %s — merged vs fixed buckets vs learned clusters", name),
		"strategy", "categories", "scored", "correct", "median ratio", "mean ratio",
	)
	for _, r := range results {
		tbl.AddRow(r.Strategy,
			fmt.Sprintf("%d", r.Categories),
			fmt.Sprintf("%d", r.Scored),
			report.Frac(r.CorrectFraction, 0.95),
			report.Sci(r.MedianRatio),
			report.Sci(r.MeanRatio),
		)
	}
	render(tbl)
}

func printSweep(cfg experiments.Config) {
	points := experiments.SweepQC(cfg)
	tbl := report.NewTable(
		"Quantile/confidence sweep — BMBP correct fraction (target = the quantile itself)",
		"machine", "queue", "quantile", "confidence", "correct", "scored",
	)
	for _, pt := range points {
		tbl.AddRow(pt.Machine, pt.Queue,
			fmt.Sprintf("%.2f", pt.Quantile),
			fmt.Sprintf("%.2f", pt.Confidence),
			report.Frac(pt.CorrectFraction, pt.Quantile),
			fmt.Sprintf("%d", pt.Scored),
		)
	}
	render(tbl)
}

func printExtended(cfg experiments.Config) {
	rows := experiments.Extended(cfg)
	tbl := report.NewTable(
		"Extended comparison — correct fraction per queue, all methods ('*' = below 0.95)",
		append([]string{"machine", "queue"}, experiments.ExtendedMethods...)...,
	)
	for _, r := range rows {
		cells := []string{r.Machine, r.Queue}
		for _, o := range r.Outcomes {
			cells = append(cells, report.Frac(o.CorrectFraction, 0.95))
		}
		tbl.AddRow(cells...)
	}
	render(tbl)

	sums := experiments.SummarizeExtended(rows)
	stbl := report.NewTable(
		"Extended summary — queues correct (of 32) and median accuracy ratio per method",
		"method", "queues-correct", "median-accuracy-ratio",
	)
	for _, s := range sums {
		stbl.AddRow(s.Method, fmt.Sprintf("%d/%d", s.QueuesCorrect, s.QueuesTotal), report.Sci(s.MedianOfRatios))
	}
	render(stbl)
}

func render(tbl *report.Table) {
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
