// Command qbets-gen generates the calibrated synthetic trace suite (all 39
// machine/queue logs of the paper's Table 1) or a scheduler-emergent trace,
// and can print the regenerated Table 1 summary.
//
// Usage:
//
//	qbets-gen -summary                 # print Table 1 (generated vs paper)
//	qbets-gen -out traces/             # write all 39 traces as text files
//	qbets-gen -queue datastar/normal -out traces/
//	qbets-gen -scheduler -jobs 50000 -out traces/   # emergent traces
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scheduler"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbets-gen: ")
	var (
		summary   = flag.Bool("summary", false, "print the regenerated Table 1 next to the paper's values")
		out       = flag.String("out", "", "directory to write trace files into")
		queue     = flag.String("queue", "", "generate a single machine/queue (e.g. datastar/normal)")
		seed      = flag.Int64("seed", 42, "generation seed")
		schedMode = flag.Bool("scheduler", false, "generate traces from the batch-scheduler substrate instead of the calibrated generator")
		jobs      = flag.Int("jobs", 30000, "job count for -scheduler")
		swf       = flag.Bool("swf", false, "write traces in Standard Workload Format instead of the native text format")
	)
	flag.Parse()

	switch {
	case *summary:
		printSummary(*seed)
	case *schedMode:
		if *out == "" {
			log.Fatal("-scheduler requires -out")
		}
		writeSchedulerTraces(*out, *jobs, *seed)
	case *out != "":
		writeTraces(*out, *queue, *seed, *swf)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printSummary(seed int64) {
	rows := experiments.Table1(experiments.Config{Seed: seed})
	tbl := report.NewTable(
		"Table 1 — job submittal traces: generated (calibrated synthetic) vs paper (seconds)",
		"machine", "queue", "jobs", "mean", "mean(paper)", "median", "median(paper)", "stddev", "stddev(paper)",
	)
	for _, r := range rows {
		tbl.AddRow(
			r.Machine, r.Queue,
			fmt.Sprintf("%d", r.Generated.Count),
			fmt.Sprintf("%.0f", r.Generated.Mean), fmt.Sprintf("%.0f", r.Paper.Mean),
			fmt.Sprintf("%.0f", r.Generated.Median), fmt.Sprintf("%.0f", r.Paper.Median),
			fmt.Sprintf("%.0f", r.Generated.StdDev), fmt.Sprintf("%.0f", r.Paper.StdDev),
		)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func writeTraces(dir, only string, seed int64, asSWF bool) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	written := 0
	for i := range trace.PaperQueues {
		p := &trace.PaperQueues[i]
		if only != "" && p.Name() != only {
			continue
		}
		t := workload.ModelFor(p, seed+int64(i)*7919).Generate()
		base := strings.ReplaceAll(p.Name(), "/", "_")
		var path string
		var err error
		if asSWF {
			path = filepath.Join(dir, base+".swf")
			err = trace.WriteSWFFile(path, t)
		} else {
			path = filepath.Join(dir, base+".trace")
			err = trace.WriteFile(path, t)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d jobs)\n", path, t.Len())
		written++
	}
	if written == 0 {
		log.Fatalf("no queue matched %q", only)
	}
}

func writeSchedulerTraces(dir string, jobs int, seed int64) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	stream := scheduler.GenerateJobs(scheduler.WorkloadConfig{Jobs: jobs, Seed: seed})
	res, err := scheduler.Run(scheduler.DefaultMachine(), stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d jobs: utilization %.2f, %d backfilled\n",
		len(res.Jobs), res.Utilization, res.Backfilled)
	for _, q := range []string{"high", "normal", "low"} {
		t := res.Trace("sim128", q)
		path := filepath.Join(dir, "sim128_"+q+".trace")
		if err := trace.WriteFile(path, t); err != nil {
			log.Fatal(err)
		}
		s := t.Summary()
		fmt.Printf("wrote %s (%d jobs, mean wait %.0fs, median %.0fs)\n", path, s.Count, s.Mean, s.Median)
	}
}
