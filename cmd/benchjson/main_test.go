package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name string, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The -compare edge cases: benchmarks that exist on only one side of the
// diff, and zero ns/op baselines, must never gate the build (there is no
// ratio to judge) and must never crash the comparison.

func TestCompareMissingFromNew(t *testing.T) {
	// A guarded benchmark disappearing from new.json is reported as
	// removed, not a regression: renames and bench refactors happen, and
	// the allowlist is the thing to update when they do.
	oldPath := writeBench(t, "old.json", `[
		{"name": "BenchmarkServiceObserve/nowal", "cpus": 1, "iterations": 100, "ns_per_op": 500}
	]`)
	newPath := writeBench(t, "new.json", `[]`)
	if code := runCompare(oldPath, newPath, 1.25); code != 0 {
		t.Errorf("benchmark missing from new.json: exit %d, want 0", code)
	}
}

func TestCompareMissingFromOld(t *testing.T) {
	// A benchmark new in new.json has no baseline: reported as new, never
	// a failure, even when guarded and however slow.
	oldPath := writeBench(t, "old.json", `[]`)
	newPath := writeBench(t, "new.json", `[
		{"name": "BenchmarkServiceObserve/nowal", "cpus": 1, "iterations": 100, "ns_per_op": 1e12}
	]`)
	if code := runCompare(oldPath, newPath, 1.25); code != 0 {
		t.Errorf("benchmark missing from old.json: exit %d, want 0", code)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// ns_per_op == 0 in the baseline (truncated run, hand-edited file)
	// would make every ratio infinite; it must be treated like a missing
	// baseline instead of dividing by zero into a failure.
	oldPath := writeBench(t, "old.json", `[
		{"name": "BenchmarkServiceObserve/nowal", "cpus": 1, "iterations": 100, "ns_per_op": 0}
	]`)
	newPath := writeBench(t, "new.json", `[
		{"name": "BenchmarkServiceObserve/nowal", "cpus": 1, "iterations": 100, "ns_per_op": 800}
	]`)
	if code := runCompare(oldPath, newPath, 1.25); code != 0 {
		t.Errorf("zero baseline: exit %d, want 0", code)
	}
}

func TestCompareGuardedRegressionStillFails(t *testing.T) {
	// Sanity check the other direction: with both sides present the guard
	// still trips past the threshold…
	oldPath := writeBench(t, "old.json", `[
		{"name": "BenchmarkServiceObserve/nowal", "cpus": 1, "iterations": 100, "ns_per_op": 500},
		{"name": "BenchmarkOneShotScale", "cpus": 1, "iterations": 1, "ns_per_op": 500}
	]`)
	newPath := writeBench(t, "new.json", `[
		{"name": "BenchmarkServiceObserve/nowal", "cpus": 1, "iterations": 100, "ns_per_op": 1000},
		{"name": "BenchmarkOneShotScale", "cpus": 1, "iterations": 1, "ns_per_op": 50000}
	]`)
	if code := runCompare(oldPath, newPath, 1.25); code != 1 {
		t.Errorf("guarded 2x regression: exit %d, want 1", code)
	}
	// …and a within-threshold change passes, with the advisory (non
	// allowlisted) benchmark free to regress arbitrarily.
	okPath := writeBench(t, "ok.json", `[
		{"name": "BenchmarkServiceObserve/nowal", "cpus": 1, "iterations": 100, "ns_per_op": 550},
		{"name": "BenchmarkOneShotScale", "cpus": 1, "iterations": 1, "ns_per_op": 50000}
	]`)
	if code := runCompare(oldPath, okPath, 1.25); code != 0 {
		t.Errorf("within-threshold change: exit %d, want 0", code)
	}
}

func TestCompareUnreadableFile(t *testing.T) {
	oldPath := writeBench(t, "old.json", `[]`)
	if code := runCompare(oldPath, filepath.Join(t.TempDir(), "absent.json"), 1.25); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	badPath := writeBench(t, "bad.json", `{not json`)
	if code := runCompare(oldPath, badPath, 1.25); code != 2 {
		t.Errorf("malformed file: exit %d, want 2", code)
	}
}

func TestCollectKeepsFastestRepetition(t *testing.T) {
	// A -count=N run emits the same benchmark several times; the JSON
	// artifact keeps the fastest repetition (lowest ns/op), with its
	// custom metrics, so one bad scheduling rhythm on a small box cannot
	// poison the recorded number. Distinct GOMAXPROCS stay separate.
	in := strings.NewReader(`goos: linux
BenchmarkShip/f=8   1000   700 ns/op   9000000 records/s
BenchmarkShip/f=8   1000   615 ns/op   13000000 records/s
BenchmarkShip/f=8   1000   650 ns/op   12000000 records/s
BenchmarkShip/f=8-4   1000   900 ns/op   8000000 records/s
`)
	var passthru strings.Builder
	rs, err := collect(in, &passthru)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(rs), rs)
	}
	if rs[0].NsPerOp != 615 || rs[0].Metrics["records/s"] != 13000000 {
		t.Errorf("kept repetition %+v, want the 615 ns/op one", rs[0])
	}
	if rs[1].Cpus != 4 || rs[1].NsPerOp != 900 {
		t.Errorf("GOMAXPROCS=4 run merged away: %+v", rs[1])
	}
	if passthru.String() != "goos: linux\n" {
		t.Errorf("passthru = %q", passthru.String())
	}
}

func TestParseBenchLine(t *testing.T) {
	r, ok := parse("BenchmarkServiceObserve/nowal-8   6954   419488 ns/op   238386 records/s   34 allocs/op")
	if !ok {
		t.Fatal("benchmark line did not parse")
	}
	if r.Name != "BenchmarkServiceObserve/nowal" || r.Cpus != 8 ||
		r.Iterations != 6954 || r.NsPerOp != 419488 || r.AllocsPerOp != 34 {
		t.Errorf("parsed %+v", r)
	}
	if r.Metrics["records/s"] != 238386 {
		t.Errorf("custom metric lost: %+v", r.Metrics)
	}
	if _, ok := parse("ok  \trepro/qbets\t0.585s"); ok {
		t.Error("non-benchmark line parsed as a result")
	}
}
