// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one entry per benchmark. Standard metrics (ns/op, B/op,
// allocs/op) get their own fields; any custom metrics reported via
// b.ReportMetric (e.g. records/s) land in "metrics". When the same
// benchmark appears more than once (a `-count=N` run), the fastest
// repetition — lowest ns/op — is kept: on a small box a single repetition
// can land in a bad scheduling rhythm, and best-of-N is the standard way
// to record the code's capability rather than the scheduler's mood. Lines
// that are not benchmark results pass through to stderr so the harness log
// keeps the full context.
//
// With -compare it instead diffs two such JSON files:
//
//	benchjson -compare BENCH_PR5.json BENCH_PR6.json
//
// printing a per-benchmark delta table and exiting non-zero if any
// benchmark in the write-path allowlist regressed by more than -threshold
// (default 1.25, i.e. >25% slower ns/op). Benchmarks outside the allowlist
// are reported but never fail the run — scale and one-shot benches are too
// noisy to gate on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Cpus        int                `json:"cpus,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// guardedPrefixes is the write-path allowlist: the steady-state ingest
// benchmarks whose ns/op is stable enough to gate on. One-shot sized runs
// (scale benches) and read benches with sub-20ns baselines stay advisory.
var guardedPrefixes = []string{
	"BenchmarkServiceObserve/nowal",
	"BenchmarkServiceObserveBatch/nowal",
	// The wal-interval variants are recorded but advisory: interval-synced
	// WAL appends are buffered file writes, so their ns/op tracks the
	// box's write latency — the same binary has read 353 ns and 690 ns on
	// size1 hours apart with no code change. The nowal variants above are
	// the gated pure-code ingest paths.
	"BenchmarkServerObserveBatch/nowal",
	// The replication shipping bench became a fan-out matrix in PR 10
	// (BenchmarkShipThroughput -> BenchmarkShipThroughput/followers=N);
	// against a pre-PR-10 baseline the old name reports as removed and
	// the matrix as new, which is intentional. The single-follower cell
	// is the steady one, so it is the gated successor; higher fan-outs
	// stay advisory (they saturate a small CI box and swing with it).
	"BenchmarkShipThroughput/followers=1",
}

func main() {
	compare := flag.Bool("compare", false, "compare two benchjson files (old new) instead of converting stdin")
	threshold := flag.Float64("threshold", 1.25, "with -compare: max allowed new/old ns/op ratio for allowlisted write-path benchmarks")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}

	results, err := collect(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// benchKey identifies one logical benchmark across files: same name, same
// GOMAXPROCS.
type benchKey struct {
	name string
	cpus int
}

// collect parses benchmark result lines from r, echoing non-result lines
// to passthru. Repeated results for the same benchmark (a `-count=N` run)
// collapse to the fastest repetition.
func collect(r io.Reader, passthru io.Writer) ([]result, error) {
	var results []result
	index := make(map[benchKey]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		res, ok := parse(line)
		if !ok {
			fmt.Fprintln(passthru, line)
			continue
		}
		k := benchKey{res.Name, res.Cpus}
		if i, seen := index[k]; seen {
			if res.NsPerOp < results[i].NsPerOp {
				results[i] = res
			}
			continue
		}
		index[k] = len(results)
		results = append(results, res)
	}
	return results, sc.Err()
}

func loadResults(path string) (map[benchKey]result, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(doc, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[benchKey]result, len(rs))
	for _, r := range rs {
		m[benchKey{r.Name, r.Cpus}] = r
	}
	return m, nil
}

func guarded(name string) bool {
	for _, p := range guardedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// runCompare prints the delta table and returns the process exit code: 1
// if an allowlisted benchmark regressed past the threshold, else 0.
func runCompare(oldPath, newPath string, threshold float64) int {
	oldR, err := loadResults(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: ", err)
		return 2
	}
	newR, err := loadResults(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: ", err)
		return 2
	}
	keys := make([]benchKey, 0, len(newR))
	for k := range newR {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].cpus < keys[j].cpus
	})

	fmt.Printf("%-64s %12s %12s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "")
	failed := 0
	for _, k := range keys {
		n := newR[k]
		o, ok := oldR[k]
		label := k.name
		if k.cpus > 1 {
			label = fmt.Sprintf("%s-%d", k.name, k.cpus)
		}
		if !ok || o.NsPerOp == 0 {
			fmt.Printf("%-64s %12s %12.1f %8s  new\n", label, "-", n.NsPerOp, "-")
			continue
		}
		ratio := n.NsPerOp / o.NsPerOp
		note := ""
		if guarded(k.name) {
			note = "guarded"
			if ratio > threshold {
				note = fmt.Sprintf("REGRESSED (> %.2fx)", threshold)
				failed++
			}
		}
		fmt.Printf("%-64s %12.1f %12.1f %7.2fx  %s\n", label, o.NsPerOp, n.NsPerOp, ratio, note)
	}
	for k := range oldR {
		if _, ok := newR[k]; !ok {
			fmt.Printf("%-64s %12.1f %12s %8s  removed\n", k.name, oldR[k].NsPerOp, "-", "-")
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d allowlisted write-path benchmark(s) regressed more than %.2fx\n", failed, threshold)
		return 1
	}
	return 0
}

// parse decodes one benchmark result line:
//
//	BenchmarkFoo/bar-8   6954   419488 ns/op   238386 records/s   34 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parse(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name, cpus := fields[0], 1
	// go test suffixes the name with "-GOMAXPROCS" when running at more
	// than one CPU (e.g. from -cpu 1,4); split it out so the same logical
	// benchmark keeps one name across CPU counts. Sub-benchmark names in
	// this repo avoid trailing "-<digits>" segments, keeping this split
	// unambiguous.
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			name, cpus = name[:i], n
		}
	}
	r := result{Name: name, Cpus: cpus, Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
			sawNs = true
		case "B/op":
			r.BPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, sawNs
}
