// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one entry per benchmark result line. Standard metrics
// (ns/op, B/op, allocs/op) get their own fields; any custom metrics
// reported via b.ReportMetric (e.g. records/s) land in "metrics". Lines
// that are not benchmark results pass through to stderr so the harness log
// keeps the full context.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Cpus        int                `json:"cpus,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		r, ok := parse(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// parse decodes one benchmark result line:
//
//	BenchmarkFoo/bar-8   6954   419488 ns/op   238386 records/s   34 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parse(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name, cpus := fields[0], 1
	// go test suffixes the name with "-GOMAXPROCS" when running at more
	// than one CPU (e.g. from -cpu 1,4); split it out so the same logical
	// benchmark keeps one name across CPU counts. Sub-benchmark names in
	// this repo avoid trailing "-<digits>" segments, keeping this split
	// unambiguous.
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			name, cpus = name[:i], n
		}
	}
	r := result{Name: name, Cpus: cpus, Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
			sawNs = true
		case "B/op":
			r.BPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, sawNs
}
