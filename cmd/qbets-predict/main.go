// Command qbets-predict is the deployable prediction tool: it replays a
// batch-queue trace file (the periodic scheduler-log dumps a live
// installation would feed it) and reports the bound a submitting user would
// have been quoted, along with the realized correctness statistics.
//
// Usage:
//
//	qbets-predict -trace traces/datastar_normal.trace
//	qbets-predict -trace q.trace -quantile 0.9 -confidence 0.99
//	qbets-predict -trace q.trace -by-procs       # per processor category
//	qbets-predict -trace q.trace -compare        # BMBP vs log-normal
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/qbets"
)

// readSWFQueue loads one queue of a Standard Workload Format archive log.
func readSWFQueue(path, queue string) (qbets.Trace, error) {
	traces, _, err := trace.ReadSWFFile(path, trace.SWFOptions{
		MergeQueues: queue == "all",
	})
	if err != nil {
		return qbets.Trace{}, err
	}
	var names []string
	for _, it := range traces {
		names = append(names, it.Queue)
		if it.Queue != queue {
			continue
		}
		out := qbets.Trace{Machine: it.Machine, Queue: it.Queue}
		for _, j := range it.Jobs {
			out.Jobs = append(out.Jobs, qbets.Job{Submit: j.Submit, WaitSeconds: j.Wait, Procs: j.Procs})
		}
		return out, nil
	}
	return qbets.Trace{}, fmt.Errorf("queue %q not in SWF log (have: %s)", queue, strings.Join(names, ", "))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbets-predict: ")
	var (
		tracePath  = flag.String("trace", "", "trace file to replay (required)")
		swfQueue   = flag.String("swf-queue", "", "treat -trace as a Standard Workload Format log and replay this queue name (\"all\" merges queues)")
		quantile   = flag.Float64("quantile", 0.95, "quantile of queue delay to bound")
		confidence = flag.Float64("confidence", 0.95, "confidence level of the bound")
		byProcs    = flag.Bool("by-procs", false, "maintain one predictor per processor-count category")
		compare    = flag.Bool("compare", false, "evaluate BMBP against the log-normal comparators")
		every      = flag.Int("every", 0, "print a live forecast every N jobs (0 = final summary only)")
	)
	flag.Parse()
	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var tr qbets.Trace
	var err error
	if *swfQueue != "" {
		tr, err = readSWFQueue(*tracePath, *swfQueue)
	} else {
		tr, err = qbets.ReadTraceFile(*tracePath)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %s/%s: %d jobs\n", tr.Machine, tr.Queue, len(tr.Jobs))

	if *compare {
		// A fit diagnostic first: if the data rejects log-normality, the
		// parametric comparator is structurally handicapped.
		diag := qbets.New(qbets.WithoutTrimming())
		for _, j := range tr.Jobs {
			diag.Observe(j.WaitSeconds)
		}
		if d, p := diag.FitDiagnostic(); !math.IsNaN(d) {
			verdict := "plausible"
			if p < 0.01 {
				verdict = "rejected (heavy contamination or nonstationarity)"
			}
			fmt.Printf("log-normal fit: KS distance %.3f, p %.2g — %s\n", d, p, verdict)
		}
		reports := qbets.Evaluate(tr, qbets.EvalConfig{Quantile: *quantile, Confidence: *confidence})
		tbl := report.NewTable(
			fmt.Sprintf("replayed evaluation (%.2f quantile at %.0f%% confidence)", *quantile, *confidence*100),
			"method", "scored", "correct", "fraction", "median actual/predicted", "change points",
		)
		for _, r := range reports {
			tbl.AddRow(r.Method,
				fmt.Sprintf("%d", r.Scored),
				fmt.Sprintf("%d", r.Correct),
				report.Frac(r.CorrectFraction, *confidence),
				report.Sci(r.MedianRatio),
				fmt.Sprintf("%d", r.ChangePoints),
			)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	replayLive(tr, *quantile, *confidence, *byProcs, *every)
}

// replayLive streams the trace through a Service in release order, quoting
// a bound for every submission and scoring it, printing periodic status.
func replayLive(tr qbets.Trace, q, c float64, byProcs bool, every int) {
	svc := qbets.NewService(byProcs, qbets.WithQuantile(q), qbets.WithConfidence(c))
	type rel struct {
		t     int64
		procs int
		w     float64
	}
	var pending []rel
	scored, correct := 0, 0
	for i, job := range tr.Jobs {
		// Make released waits visible.
		keep := pending[:0]
		for _, r := range pending {
			if r.t <= job.Submit {
				svc.Observe(tr.Queue, r.procs, r.w)
			} else {
				keep = append(keep, r)
			}
		}
		pending = append(keep, rel{job.Submit + int64(job.WaitSeconds), job.Procs, job.WaitSeconds})

		bound, ok := svc.Forecast(tr.Queue, job.Procs)
		if ok {
			scored++
			if job.WaitSeconds <= bound {
				correct++
			}
		}
		if every > 0 && i%every == 0 && ok {
			fmt.Printf("job %7d  procs %4d  quoted bound %10.0fs  actual wait %10.0fs\n",
				i, job.Procs, bound, job.WaitSeconds)
		}
	}
	frac := 1.0
	if scored > 0 {
		frac = float64(correct) / float64(scored)
	}
	fmt.Printf("quoted %d bounds; %d correct (%.3f, target %.2f)\n", scored, correct, frac, q)
	for _, k := range svc.Queues() {
		fmt.Printf("  stream %s\n", k)
	}
}
