// Command qbets-day reproduces the paper's time-resolved results: the
// Table 8 "day in the life" quantile profile and the Figure 1 and Figure 2
// predicted-bound series.
//
// Usage:
//
//	qbets-day -table 8              # Table 8 (datastar/normal, May 5 2004)
//	qbets-day -figure 1             # Figure 1 series as CSV + sparkline
//	qbets-day -figure 2             # Figure 2 series as CSV + sparkline
//	qbets-day                       # everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/plot"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbets-day: ")
	var (
		table  = flag.Int("table", 0, "print table 8 only")
		figure = flag.Int("figure", 0, "print one figure (1 or 2) only")
		seed   = flag.Int64("seed", 42, "synthetic workload seed")
		csv    = flag.Bool("csv", false, "emit figure series as CSV instead of sparklines")
		pngDir = flag.String("png", "", "also write the figures as PNG files into this directory")
	)
	flag.Parse()
	cfg := experiments.Config{Seed: *seed}

	all := *table == 0 && *figure == 0
	if all || *table == 8 {
		printTable8(cfg)
	}
	if all || *figure == 1 {
		printFigure(cfg, 1, *csv)
		writePNG(cfg, 1, *pngDir)
	}
	if all || *figure == 2 {
		printFigure(cfg, 2, *csv)
		writePNG(cfg, 2, *pngDir)
	}
}

// writePNG renders a figure into dir as figure<n>.png.
func writePNG(cfg experiments.Config, n int, dir string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	var series []report.Series
	title := ""
	if n == 1 {
		series = experiments.Figure1(cfg)
		title = "figure 1: 0.95-quantile bounds, feb 24 2005"
	} else {
		series = experiments.Figure2(cfg)
		title = "figure 2: datastar normal by procs, june 2004"
	}
	path := filepath.Join(dir, fmt.Sprintf("figure%d.png", n))
	if err := plot.RenderFile(path, plot.Config{LogY: true, Title: title}, series...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n\n", path)
}

func printTable8(cfg experiments.Config) {
	rows := experiments.Table8(cfg)
	tbl := report.NewTable(
		"Table 8 — one day in the life of datastar/normal (May 5, 2004): 95%-confidence quantile bounds, seconds",
		"time", ".25 quantile (lower)", ".5 quantile", ".75 quantile", ".95 quantile",
	)
	for _, r := range rows {
		tbl.AddRow(
			time.Unix(r.Time, 0).UTC().Format("15:04"),
			report.Seconds(r.Q25Lower),
			report.Seconds(r.Q50),
			report.Seconds(r.Q75),
			report.Seconds(r.Q95),
		)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func printFigure(cfg experiments.Config, n int, csv bool) {
	var series []report.Series
	var title string
	switch n {
	case 1:
		series = experiments.Figure1(cfg)
		title = "Figure 1 — predicted 0.95-quantile upper bounds, Feb 24 2005 (5-minute samples, seconds)"
	case 2:
		series = experiments.Figure2(cfg)
		title = "Figure 2 — datastar/normal bounds by processor count, June 2004 (6-hour samples, seconds)"
	default:
		log.Fatalf("unknown figure %d", n)
	}
	if csv {
		if err := report.RenderSeries(os.Stdout, title, series...); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		return
	}
	fmt.Println(title)
	for _, s := range series {
		lo, hi := minMax(s.Values)
		fmt.Printf("  %-22s [%8.0fs .. %8.0fs]  %s\n", s.Label, lo, hi, report.Sparkline(s.Values))
	}
	fmt.Println()
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
