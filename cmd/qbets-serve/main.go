// Command qbets-serve runs the prediction service over HTTP: a live
// installation feeds it periodic scheduler-log dumps and users (or a
// metascheduler) query worst-case bounds before submitting — the
// deployment the paper describes as the method's purpose.
//
//	qbets-serve -addr :8080 -by-procs
//
//	curl -XPOST localhost:8080/v1/observe \
//	     -d '{"queue":"normal","procs":8,"wait_seconds":123}'
//	curl 'localhost:8080/v1/forecast?queue=normal&procs=8'
//	curl 'localhost:8080/v1/profile?queue=normal&procs=8'
//	curl 'localhost:8080/v1/status'
//	curl 'localhost:8080/metrics'
//
// The service instruments itself (request counts, prediction latency, and
// the per-stream rolling hit rate of its bounds against the target
// confidence) and exposes everything at /metrics in Prometheus text
// format, optionally on a dedicated listener via -metrics-addr. See
// docs/OPERATIONS.md for the scrape model and the full metric list.
//
// A node can lead or follow a replicated serving plane: -replicate-to
// ships the WAL to followers, -follow replays a leader's log and serves
// consistent-prefix reads, and -epoch-dir persists the fencing token
// that keeps a deposed leader from ever acking again. See the
// Replication section of docs/OPERATIONS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/repl"
	"repro/internal/wal"
	"repro/qbets"
)

// parseSyncMode maps the -wal-sync flag to a WAL sync policy: "always"
// (fsync per record), "off" (fsync at rotation/shutdown only), or a
// duration like "1s" (background fsync on that interval).
func parseSyncMode(s string) (wal.SyncMode, time.Duration, error) {
	switch s {
	case "always":
		return wal.SyncEachRecord, 0, nil
	case "off":
		return wal.SyncOff, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("-wal-sync must be \"always\", \"off\", or a positive duration, got %q", s)
	}
	return wal.SyncInterval, d, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbets-serve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		metricsAddr = flag.String("metrics-addr", "", "optional dedicated listen address for /metrics (also served on -addr)")
		byProcs     = flag.Bool("by-procs", true, "one predictor per queue × processor category")
		quantile    = flag.Float64("quantile", 0.95, "quantile of queue delay to bound")
		confidence  = flag.Float64("confidence", 0.95, "confidence level of the bound")
		statePath   = flag.String("state", "", "state file: loaded at startup if present, saved periodically and on shutdown")
		saveEvery   = flag.Duration("save-interval", 5*time.Minute, "state save period (with -state)")
		walDir      = flag.String("wal", "", "write-ahead log directory: observations are logged before being applied and replayed on startup")
		walSync     = flag.String("wal-sync", "1s", `WAL fsync policy: "always", "off", or a flush interval like "1s" (with -wal)`)
		walGroup    = flag.Bool("wal-group-commit", false, "coalesce concurrent WAL commits into shared fsyncs (with -wal-sync always)")
		strictState = flag.Bool("strict-state", false, "refuse to start on a corrupt state file instead of quarantining it and starting fresh")
		stateShards = flag.Int("state-shards", 0, "save state as a sharded directory with this many shard files instead of one blob (large registries; -state names a directory)")
		streamTTL   = flag.Duration("stream-ttl", 0, "evict streams idle longer than this to compact cold state (0 disables; reads keep serving, the next write rehydrates)")
		maxStreams  = flag.Int("max-streams", 0, "cap on hydrated streams: the longest-idle are evicted past it (0 disables)")
		logRequests = flag.Bool("log-requests", false, "log every request (method, path, status, duration)")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the metrics listener (requires -metrics-addr)")
		replicateTo = flag.String("replicate-to", "", "leader mode: listen address for streaming WAL replication to followers (requires -wal and -epoch-dir)")
		follow      = flag.String("follow", "", "follower mode: leader replication address; this node replays the leader's log and serves reads only")
		epochDir    = flag.String("epoch-dir", "", "directory persisting the replication epoch (the fencing token); required with -replicate-to or -follow")
		maxLag      = flag.Uint64("max-follower-lag", 10000, "follower lag bound in records: past it /healthz degrades to 503 until the follower catches up (0 never degrades)")
		syncRepl    = flag.Bool("sync-replication", false, "leader acks a write only after a follower acknowledged it durable (requires -replicate-to)")
		syncQuorum  = flag.Int("sync-replication-quorum", 1, "acks required before a synchronous write commits: K of N connected followers (requires -sync-replication)")
		replWinMsgs = flag.Int("repl-window-batches", 0, "per-follower in-flight window in messages: batches or snapshot chunks on the wire before backpressure (0 = default 32)")
		replWinB    = flag.Int("repl-window-bytes", 0, "per-follower in-flight window in payload bytes (0 = default 1 MiB)")
	)
	flag.Parse()
	if *pprofOn && *metricsAddr == "" {
		log.Fatal("-pprof requires -metrics-addr: profiling endpoints are never exposed on the public listener")
	}
	if *replicateTo != "" && *follow != "" {
		log.Fatal("-replicate-to and -follow are mutually exclusive: a node is a leader or a follower, never both")
	}
	if *replicateTo != "" && *walDir == "" {
		log.Fatal("-replicate-to requires -wal: replication ships the write-ahead log")
	}
	if (*replicateTo != "" || *follow != "") && *epochDir == "" {
		log.Fatal("replication requires -epoch-dir: the persisted epoch is the fencing token that prevents split-brain")
	}
	if *follow != "" && *walDir != "" {
		log.Fatal("-follow and -wal are mutually exclusive: a follower's log of record is the leader's (promote attaches a fresh WAL)")
	}
	if *syncRepl && *replicateTo == "" {
		log.Fatal("-sync-replication requires -replicate-to")
	}
	if *syncQuorum < 1 {
		log.Fatal("-sync-replication-quorum must be at least 1")
	}
	if *syncQuorum > 1 && !*syncRepl {
		log.Fatal("-sync-replication-quorum above 1 requires -sync-replication")
	}

	server := qbets.NewServer(*byProcs,
		qbets.WithQuantile(*quantile),
		qbets.WithConfidence(*confidence),
	)
	// saveState abstracts over the two state formats: one JSON blob
	// (default) or a sharded directory (-state-shards, the million-stream
	// format — parallel save, cold-adopting parallel load).
	saveState := func() error {
		if *stateShards > 0 {
			return server.SaveShards(*statePath, *stateShards)
		}
		return server.SaveFile(*statePath)
	}
	loadState := func() error {
		if *stateShards > 0 {
			return server.LoadShards(*statePath)
		}
		return server.LoadFile(*statePath)
	}
	if *statePath != "" {
		switch err := loadState(); {
		case err == nil:
			log.Printf("restored state from %s (%d streams)", *statePath, server.Service().NumStreams())
		case os.IsNotExist(err):
			log.Printf("no state at %s yet; starting fresh", *statePath)
		case !errors.Is(err, qbets.ErrCorruptState):
			// An I/O or permission failure, not corruption: the file may be
			// perfectly intact, so quarantining it would throw away good
			// state. Fail fast and let the operator (or supervisor restart)
			// resolve it.
			log.Fatalf("loading %s: %v", *statePath, err)
		case *strictState:
			log.Fatalf("loading %s: %v (-strict-state)", *statePath, err)
		default:
			// A corrupt snapshot should not keep the predictor down: move
			// it aside (preserving the evidence) and rebuild from the WAL
			// tail plus fresh traffic.
			quarantined, qerr := qbets.QuarantineStateFile(*statePath)
			if qerr != nil {
				log.Fatalf("loading %s: %v; quarantine also failed: %v", *statePath, err, qerr)
			}
			log.Printf("state file %s is corrupt (%v); moved to %s, starting fresh", *statePath, err, quarantined)
		}
	}

	var obsLog *wal.WAL
	if *walDir != "" {
		mode, interval, err := parseSyncMode(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		obsLog, err = wal.Open(*walDir, wal.Options{Mode: mode, Interval: interval, GroupCommit: *walGroup})
		if err != nil {
			log.Fatal(err)
		}
		stats, err := server.Service().RecoverWAL(obsLog)
		if err != nil {
			log.Fatalf("replaying %s: %v", *walDir, err)
		}
		log.Printf("wal: replayed %d records from %d segments (sync %s)", stats.Records, stats.Segments, *walSync)
		if stats.Truncations > 0 {
			log.Printf("wal: dropped %d torn/corrupt tails (%d bytes) during replay", stats.Truncations, stats.DroppedBytes)
		}
		if *statePath == "" {
			log.Printf("wal: no -state configured; the log is never compacted and will grow unboundedly")
		}
	}

	// Replication wiring. A leader claims a fresh epoch on every startup
	// (stored+1, persisted before serving) so a restarted ex-leader can
	// never ack under a stale term; a follower loads the same store so the
	// highest epoch it has witnessed survives its own restarts.
	var (
		replLeader   *repl.Leader
		replFollower *repl.Follower
	)
	if *replicateTo != "" {
		epochs, err := repl.NewFileEpochStore(*epochDir)
		if err != nil {
			log.Fatal(err)
		}
		stored, err := epochs.Load()
		if err != nil {
			log.Fatal(err)
		}
		epoch := stored + 1
		if err := epochs.Save(epoch); err != nil {
			log.Fatal(err)
		}
		replLeader = repl.NewLeader(obsLog, server.Service(), repl.LeaderOptions{
			Epoch:         epoch,
			Quorum:        *syncQuorum,
			WindowBatches: *replWinMsgs,
			WindowBytes:   *replWinB,
			OnFence: func(e uint64) {
				log.Printf("repl: fenced by epoch %d; this node will never ack again (restart to rejoin)", e)
			},
		})
		ln, err := repl.TCP{}.Listen(*replicateTo)
		if err != nil {
			log.Fatal(err)
		}
		go replLeader.Serve(ln)
		if *syncRepl {
			server.Service().SetCommitHook(replLeader.CommitWait)
		}
		server.SetLeaderReplication(replLeader)
		log.Printf("repl: leading epoch %d on %s (sync-replication %v, quorum %d)", epoch, *replicateTo, *syncRepl, *syncQuorum)
	}
	if *follow != "" {
		epochs, err := repl.NewFileEpochStore(*epochDir)
		if err != nil {
			log.Fatal(err)
		}
		server.Service().SetFollower(true)
		replFollower, err = repl.NewFollower(server.Service(), repl.FollowerOptions{
			Addr:   *follow,
			Epochs: epochs,
			MaxLag: *maxLag,
		})
		if err != nil {
			log.Fatal(err)
		}
		go replFollower.Run()
		server.SetFollowerReplication(replFollower)
		log.Printf("repl: following %s (max lag %d records); writes answer 503 + Retry-After", *follow, *maxLag)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *statePath != "" {
		go func() {
			tick := time.NewTicker(*saveEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := saveState(); err != nil {
						log.Printf("state save failed: %v", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// Stream lifecycle: a background pass evicts idle streams to compact
	// cold state and enforces the hydrated-stream cap. The pass cadence
	// also sets the activity clock's resolution, so it runs a few times
	// per TTL (floored at 1s, capped at 30s between passes).
	if *streamTTL > 0 || *maxStreams > 0 {
		interval := 30 * time.Second
		if *streamTTL > 0 && *streamTTL/4 < interval {
			interval = *streamTTL / 4
		}
		if interval < time.Second {
			interval = time.Second
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					svc := server.Service()
					if *streamTTL > 0 {
						svc.EvictIdle(*streamTTL)
					}
					if *maxStreams > 0 {
						svc.EvictToCap(*maxStreams)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
		log.Printf("stream lifecycle: ttl %s, max hydrated %d, pass every %s", *streamTTL, *maxStreams, interval)
	}

	var handler http.Handler = server
	if *logRequests {
		handler = withRequestLog(handler)
	}
	// Full read/write deadlines, not just the header timeout: a client that
	// trickles a request body or never drains a response must not pin a
	// connection (and its goroutine) forever.
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 2)
	go func() { errc <- httpServer.ListenAndServe() }()

	var metricsServer *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", server.Metrics().Handler())
		writeTimeout := 30 * time.Second
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			// CPU profiles and traces stream for ?seconds=N; leave headroom
			// beyond pprof's 30s default so captures aren't cut off mid-write.
			writeTimeout = 90 * time.Second
		}
		metricsServer = &http.Server{
			Addr:              *metricsAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      writeTimeout,
			IdleTimeout:       2 * time.Minute,
		}
		go func() { errc <- metricsServer.ListenAndServe() }()
		log.Printf("metrics on %s/metrics", *metricsAddr)
		if *pprofOn {
			log.Printf("pprof on %s/debug/pprof/", *metricsAddr)
		}
	}

	log.Printf("listening on %s (quantile %.2f, confidence %.2f, by-procs %v)",
		*addr, *quantile, *confidence, *byProcs)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("shutting down")
	}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// persist the final state.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if metricsServer != nil {
		if err := metricsServer.Shutdown(shutdownCtx); err != nil {
			log.Printf("metrics shutdown: %v", err)
		}
	}
	// Stop replication before the final save: the leader's sessions hold a
	// WAL tail reader and the follower's loop applies into the service;
	// both must quiesce before state is persisted and the WAL closed.
	if replFollower != nil {
		replFollower.Close()
	}
	if replLeader != nil {
		replLeader.Close()
	}
	if *statePath != "" {
		if err := saveState(); err != nil {
			log.Printf("final state save failed: %v", err)
		} else {
			log.Printf("state saved to %s", *statePath)
		}
	}
	// Close the WAL after the final save: the save compacts the log, and
	// closing flushes whatever an interval/off sync policy still buffers.
	if obsLog != nil {
		if err := obsLog.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
}

// withRequestLog logs one line per request: method, path, status, duration.
func withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &loggingWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(lw, r)
		log.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, lw.code, time.Since(start).Round(time.Microsecond))
	})
}

type loggingWriter struct {
	http.ResponseWriter
	code int
}

func (w *loggingWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
