// Command qbets-serve runs the prediction service over HTTP: a live
// installation feeds it periodic scheduler-log dumps and users (or a
// metascheduler) query worst-case bounds before submitting — the
// deployment the paper describes as the method's purpose.
//
//	qbets-serve -addr :8080 -by-procs
//
//	curl -XPOST localhost:8080/v1/observe \
//	     -d '{"queue":"normal","procs":8,"wait_seconds":123}'
//	curl 'localhost:8080/v1/forecast?queue=normal&procs=8'
//	curl 'localhost:8080/v1/profile?queue=normal&procs=8'
//	curl 'localhost:8080/v1/status'
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/qbets"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbets-serve: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		byProcs    = flag.Bool("by-procs", true, "one predictor per queue × processor category")
		quantile   = flag.Float64("quantile", 0.95, "quantile of queue delay to bound")
		confidence = flag.Float64("confidence", 0.95, "confidence level of the bound")
		statePath  = flag.String("state", "", "state file: loaded at startup if present, saved periodically and on shutdown")
		saveEvery  = flag.Duration("save-interval", 5*time.Minute, "state save period (with -state)")
	)
	flag.Parse()

	server := qbets.NewServer(*byProcs,
		qbets.WithQuantile(*quantile),
		qbets.WithConfidence(*confidence),
	)
	if *statePath != "" {
		switch err := server.LoadFile(*statePath); {
		case err == nil:
			log.Printf("restored state from %s", *statePath)
		case os.IsNotExist(err):
			log.Printf("no state at %s yet; starting fresh", *statePath)
		default:
			log.Fatalf("loading %s: %v", *statePath, err)
		}
		go func() {
			for range time.Tick(*saveEvery) {
				if err := server.SaveFile(*statePath); err != nil {
					log.Printf("state save failed: %v", err)
				}
			}
		}()
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigs
			if err := server.SaveFile(*statePath); err != nil {
				log.Printf("final state save failed: %v", err)
			}
			os.Exit(0)
		}()
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("listening on %s (quantile %.2f, confidence %.2f, by-procs %v)",
		*addr, *quantile, *confidence, *byProcs)
	if err := httpServer.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
