// Command mctable regenerates BMBP's rare-event run-length lookup table by
// Monte Carlo simulation of autocorrelated log-normal series (Section 4.1
// of the paper). The output is the source for core.DefaultRareEventTable.
package main

import (
	"flag"
	"fmt"

	"repro/internal/mc"
)

func main() {
	seed := flag.Int64("seed", 1, "PRNG seed")
	steps := flag.Int("steps", 2_000_000, "series length per phi")
	flag.Parse()
	pts := mc.Build(mc.Config{Seed: *seed, Steps: *steps})
	fmt.Println("phi  rawACF  threshold  P(run>=1)  P(run>=2)  P(run>=3)  P(run>=4)  P(run>=6)  P(run>=8)")
	for _, p := range pts {
		fmt.Printf("%.2f %7.3f %6d %12.5f %10.6f %10.6f %10.6f %10.6f %10.6f\n",
			p.Phi, p.RawACF, p.Threshold, p.RunProbs[0], p.RunProbs[1], p.RunProbs[2], p.RunProbs[3], p.RunProbs[5], p.RunProbs[7])
	}
	fmt.Println("\ncore.RareEventTable literal:")
	for _, e := range mc.TableFromPoints(pts) {
		fmt.Printf("\t{MaxAutocorr: %.3f, Threshold: %d},\n", e.MaxAutocorr, e.Threshold)
	}
}
