// Command qbets-hypo runs the hypothesis harness: the repository's named
// statistical invariants (H-Coverage, H-Trim, H-Durability, H-FollowerConsistency) evaluated as
// deterministic pass/fail grids. See hypotheses/README.md.
//
// Usage:
//
//	qbets-hypo list
//	qbets-hypo run [-grid smoke|full] [-invariant name] [-json] [-out file]
//
// Exit status: 0 when every cell passes, 1 when any cell fails, 2 on
// usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/hypo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		os.Exit(run(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "qbets-hypo: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  qbets-hypo list                 show registered invariants and grid sizes
  qbets-hypo run [flags]          run a grid and report the verdict
    -grid smoke|full              grid tier (default smoke)
    -invariant name               run a single invariant (default all)
    -json                         emit the verdict JSON on stdout
    -out file                     also write the verdict JSON to file
`)
}

func list() {
	fmt.Printf("%-14s %-6s %-6s %s\n", "INVARIANT", "SMOKE", "FULL", "CLAIM")
	for _, inv := range hypo.Invariants() {
		fmt.Printf("%-14s %-6d %-6d %s\n",
			inv.Name(), len(inv.Cells(hypo.Smoke)), len(inv.Cells(hypo.Full)), inv.Doc())
	}
}

func run(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	gridName := fs.String("grid", "smoke", "grid tier: smoke or full")
	invName := fs.String("invariant", "", "run only this invariant")
	asJSON := fs.Bool("json", false, "emit verdict JSON on stdout")
	outPath := fs.String("out", "", "write verdict JSON to this file")
	fs.Usage = usage
	fs.Parse(args)

	grid, err := hypo.ParseGrid(*gridName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbets-hypo:", err)
		return 2
	}
	var only func(string) bool
	if *invName != "" {
		if _, ok := hypo.Get(*invName); !ok {
			fmt.Fprintf(os.Stderr, "qbets-hypo: unknown invariant %q (try: qbets-hypo list)\n", *invName)
			return 2
		}
		only = func(name string) bool { return name == *invName }
	}

	v := hypo.Run(grid, only)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, v.JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qbets-hypo:", err)
			return 2
		}
	}
	if *asJSON {
		os.Stdout.Write(v.JSON())
	} else {
		report(v)
	}
	if !v.Pass {
		return 1
	}
	return 0
}

// report prints the human-readable verdict table: one line per invariant,
// plus every failing cell with the check that sank it.
func report(v hypo.Verdict) {
	fmt.Printf("grid=%s cells=%d failed=%d\n", v.Grid, v.Cells, v.Failed)
	for _, iv := range v.Invariants {
		status := "PASS"
		if !iv.Pass {
			status = "FAIL"
		}
		fmt.Printf("  %-4s %-14s %3d cells", status, iv.Name, iv.Cells)
		if iv.Failed > 0 {
			fmt.Printf("  (%d failed)", iv.Failed)
		}
		fmt.Println()
		for _, r := range iv.Results {
			if r.Pass {
				continue
			}
			var why []string
			for _, ch := range r.Checks {
				if !ch.Pass {
					why = append(why, fmt.Sprintf("%s=%.4g (want %s %.4g)",
						ch.Name, ch.Observed, ch.Op, ch.Threshold))
				}
			}
			if r.Detail != "" {
				why = append(why, r.Detail)
			}
			fmt.Printf("       FAIL %s: %s\n", r.ID, strings.Join(why, "; "))
		}
	}
	if v.Pass {
		fmt.Println("PASS")
	} else {
		fmt.Println("FAIL")
	}
}
