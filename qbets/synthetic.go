package qbets

import (
	"fmt"
	"sort"

	"repro/internal/trace"
	"repro/internal/workload"
)

// Synthetic workload access: the calibrated 39-queue suite this repository
// evaluates on is available through the public API so downstream users can
// experiment without touching internal packages.

// SyntheticQueues lists the machine/queue names of the calibrated suite
// (the 39 traces of the paper's Table 1), sorted.
func SyntheticQueues() []string {
	out := make([]string, 0, len(trace.PaperQueues))
	for i := range trace.PaperQueues {
		out = append(out, trace.PaperQueues[i].Name())
	}
	sort.Strings(out)
	return out
}

// SyntheticTrace generates the calibrated synthetic trace for one
// machine/queue of the suite (e.g. "datastar/normal"). The result is
// deterministic in seed; job counts and wait-time statistics are matched
// to the paper's Table 1 as described in DESIGN.md.
func SyntheticTrace(name string, seed int64) (Trace, error) {
	for i := range trace.PaperQueues {
		p := &trace.PaperQueues[i]
		if p.Name() != name {
			continue
		}
		t := workload.ModelFor(p, seed).Generate()
		return fromInternal(t), nil
	}
	return Trace{}, fmt.Errorf("qbets: unknown synthetic queue %q (see SyntheticQueues)", name)
}
