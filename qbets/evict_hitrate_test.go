package qbets

import (
	"math/rand"
	"testing"
)

// TestEvictPreservesHitRateState pins the eviction × hit-rate interaction:
// the rolling/lifetime hit-rate counters are the paper's live correctness
// measure (empirical hit fraction vs. the q-quantile bound), and they are
// deliberately *not* part of the cold blob — they live on the stream
// struct across evict/rehydrate. A cold round-trip must neither reset nor
// perturb them: the cold stream must report exactly the pre-eviction
// stats, and a service that crosses many evict/rehydrate cycles must track
// a never-evicted oracle's hit accounting and bounds observation for
// observation.
func TestEvictPreservesHitRateState(t *testing.T) {
	svc := NewService(false, WithSeed(1))
	oracle := NewService(false, WithSeed(1))
	rng := rand.New(rand.NewSource(7))

	waits := make([]float64, 1500)
	for i := range waits {
		waits[i] = rng.ExpFloat64() * 600
	}
	feed := func(s *Service, w []float64) {
		for _, wait := range w {
			if err := s.Observe("q", 1, wait); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(svc, waits[:1000])
	feed(oracle, waits[:1000])

	before, ok := svc.StreamStats("q", 1)
	if !ok {
		t.Fatal("stream missing")
	}
	if before.LifetimeResolved == 0 || before.RollingResolved == 0 {
		t.Fatalf("test premise broken: no predictions resolved yet: %+v", before)
	}

	if n := svc.EvictIdle(0); n != 1 {
		t.Fatalf("evicted %d streams, want 1", n)
	}

	// Cold reads serve the exact pre-eviction monitoring state.
	cold, ok := svc.StreamStats("q", 1)
	if !ok {
		t.Fatal("cold stream stopped serving stats")
	}
	if cold.RollingHitRate != before.RollingHitRate ||
		cold.RollingResolved != before.RollingResolved ||
		cold.LifetimeHits != before.LifetimeHits ||
		cold.LifetimeResolved != before.LifetimeResolved {
		t.Fatalf("eviction perturbed hit-rate state:\n  before: %+v\n  cold:   %+v", before, cold)
	}

	// Keep observing across repeated evict/rehydrate cycles; the oracle
	// never evicts. Every counter that feeds the paper's correctness
	// story must agree at every step.
	for i, wait := range waits[1000:] {
		if i%100 == 50 {
			svc.EvictIdle(0)
		}
		if err := svc.Observe("q", 1, wait); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Observe("q", 1, wait); err != nil {
			t.Fatal(err)
		}
	}
	got, ok1 := svc.StreamStats("q", 1)
	want, ok2 := oracle.StreamStats("q", 1)
	if !ok1 || !ok2 {
		t.Fatal("stream stats missing after reload")
	}
	if got.LifetimeHits != want.LifetimeHits || got.LifetimeResolved != want.LifetimeResolved {
		t.Fatalf("lifetime hit accounting diverged: evicted (%d/%d) vs oracle (%d/%d)",
			got.LifetimeHits, got.LifetimeResolved, want.LifetimeHits, want.LifetimeResolved)
	}
	if got.RollingHitRate != want.RollingHitRate || got.RollingResolved != want.RollingResolved {
		t.Fatalf("rolling window diverged: evicted (%g over %d) vs oracle (%g over %d)",
			got.RollingHitRate, got.RollingResolved, want.RollingHitRate, want.RollingResolved)
	}
	if got.RollingResolved != hitRateWindow {
		t.Fatalf("rolling window not saturated: %d, want %d", got.RollingResolved, hitRateWindow)
	}
	if got.BoundSeconds != want.BoundSeconds || got.BoundOK != want.BoundOK {
		t.Fatalf("bound diverged: evicted (%g,%v) vs oracle (%g,%v)",
			got.BoundSeconds, got.BoundOK, want.BoundSeconds, want.BoundOK)
	}
	if got.Observations != want.Observations {
		t.Fatalf("observations diverged: %d vs %d", got.Observations, want.Observations)
	}
}
