package qbets

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestIndexChurnCoherence hammers stream creation across partitions while
// readers enumerate, asserting the enumeration invariants the k-way merge
// promises: ascending key order, no duplicates, and — once the dust
// settles — every created key present exactly once. Run under -race this
// also checks the copy-on-write publication discipline.
func TestIndexChurnCoherence(t *testing.T) {
	svc := NewService(false, WithSeed(7))
	const creators = 8
	perCreator := 400
	if testing.Short() {
		perCreator = 100
	}

	var creatorsWG, readersWG sync.WaitGroup
	stopReaders := make(chan struct{})
	for r := 0; r < 4; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				qs := svc.Queues()
				for i := 1; i < len(qs); i++ {
					if qs[i-1] >= qs[i] {
						t.Errorf("Queues() unsorted or duplicated at %d: %q >= %q", i, qs[i-1], qs[i])
						return
					}
				}
				stats := svc.Stats()
				for i := 1; i < len(stats); i++ {
					if stats[i-1].Stream >= stats[i].Stream {
						t.Errorf("Stats() unsorted or duplicated at %d: %q >= %q", i, stats[i-1].Stream, stats[i].Stream)
						return
					}
				}
			}
		}()
	}
	for c := 0; c < creators; c++ {
		creatorsWG.Add(1)
		go func(c int) {
			defer creatorsWG.Done()
			for i := 0; i < perCreator; i++ {
				q := fmt.Sprintf("c%d-q%05d", c, i)
				if err := svc.Observe(q, 1, float64(i%100)); err != nil {
					t.Errorf("observe %s: %v", q, err)
					return
				}
				// A created stream must be immediately resolvable through
				// the published index.
				if n := svc.Observations(q, 1); n < 1 {
					t.Errorf("stream %s invisible right after creation", q)
					return
				}
			}
		}(c)
	}
	// Wait for creators, then stop readers: enumeration correctness is
	// checked throughout, membership at the end.
	creatorsWG.Wait()
	close(stopReaders)
	readersWG.Wait()

	want := creators * perCreator
	if got := svc.NumStreams(); got != want {
		t.Fatalf("NumStreams = %d, want %d", got, want)
	}
	qs := svc.Queues()
	if len(qs) != want {
		t.Fatalf("Queues() returned %d keys, want %d", len(qs), want)
	}
	if !sort.StringsAreSorted(qs) {
		t.Fatal("final Queues() not sorted")
	}
	seen := make(map[string]bool, len(qs))
	for _, q := range qs {
		if seen[q] {
			t.Fatalf("duplicate key %q in enumeration", q)
		}
		seen[q] = true
	}
	for c := 0; c < creators; c++ {
		for i := 0; i < perCreator; i++ {
			if q := fmt.Sprintf("c%d-q%05d", c, i); !seen[q] {
				t.Fatalf("key %q lost from index", q)
			}
		}
	}
}

// TestIndexGrowth pushes the registry past the growth threshold and checks
// that the partition array actually grew and nothing was lost crossing the
// boundary.
func TestIndexGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("creates tens of thousands of streams")
	}
	svc := NewService(false, WithSeed(3))
	n := indexMaxLoad*indexInitialPartitions + 500 // just past the first growth
	for i := 0; i < n; i++ {
		svc.getOrCreate(fmt.Sprintf("grow-q%06d", i))
	}
	idx := svc.index.Load()
	if len(idx.keyParts) <= indexInitialPartitions {
		t.Fatalf("index did not grow: %d partitions with %d streams", len(idx.keyParts), n)
	}
	if got := idx.count(); got != n {
		t.Fatalf("index count = %d, want %d", got, n)
	}
	// Spot-check lookups across the whole key space post-growth.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("grow-q%06d", rng.Intn(n))
		if svc.lookup(k) == nil {
			t.Fatalf("key %q unresolvable after growth", k)
		}
	}
	if got := len(svc.Queues()); got != n {
		t.Fatalf("Queues() = %d keys after growth, want %d", got, n)
	}
}

// TestSplitKeyRoundTrip pins the key grammar the queue partitions rely on.
func TestSplitKeyRoundTrip(t *testing.T) {
	svc := NewService(true)
	for _, procs := range []int{1, 4, 8, 32, 128, 1024} {
		key := svc.key("normal", procs)
		queue, slot, ok := splitKey(key, true)
		if !ok || queue != "normal" || slot != svc.slotOf(procs) {
			t.Errorf("splitKey(%q) = (%q, %d, %v), want (normal, %d, true)", key, queue, slot, ok, svc.slotOf(procs))
		}
	}
	if q, slot, ok := splitKey("plain", false); !ok || q != "plain" || slot != cacheSlotWhole {
		t.Errorf("whole-queue splitKey = (%q, %d, %v)", q, slot, ok)
	}
	if _, _, ok := splitKey("nomarker", true); ok {
		t.Error("splitKey accepted a key without a bucket suffix in by-procs mode")
	}
}
