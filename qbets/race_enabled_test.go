//go:build race

package qbets

// raceEnabled reports whether this test binary was built with the race
// detector; wall-clock acceptance checks are skipped under its ~10x
// instrumentation slowdown.
const raceEnabled = true
