package qbets

import (
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// AutoService is a Service that learns its job categories from the
// workload instead of using the paper's fixed processor-count ranges —
// the direction the authors took in the QBETS follow-up system. During a
// warm-up phase it records job shapes; it then clusters them (k-means over
// log₂ processor count and, when provided, log runtime estimate) and gives
// each cluster its own Forecaster, replaying the warm-up waits into the
// right clusters so no history is lost.
//
// AutoService is safe for concurrent use and carries the same per-category
// self-monitoring the Service's streams do: each learned category tracks
// the rolling hit rate of its resolved predictions against the target
// confidence (see Stats).
type AutoService struct {
	mu sync.RWMutex

	opts   []Option
	k      int
	warmup int

	// Warm-up buffer.
	shapes [][]float64
	waits  []float64

	// Learned state.
	ready      bool
	clusters   cluster.Result
	means, sds []float64
	forecast   []*Forecaster
	hit        []*obs.RollingRate
}

// CategoryStatus is a point-in-time snapshot of one learned category's
// state and self-monitoring metrics (the AutoService analogue of
// StreamStatus).
type CategoryStatus struct {
	Category        int
	Observations    int
	MinObservations int
	BoundSeconds    float64
	BoundOK         bool
	RollingHitRate  float64
	RollingResolved int
	Trims           int
}

// NewAutoService returns an AutoService that learns k categories after
// warmup observations. Sensible values: k in 2..6, warmup a few hundred.
func NewAutoService(k, warmup int, opts ...Option) *AutoService {
	if k < 1 {
		k = 1
	}
	if warmup < k {
		warmup = k
	}
	return &AutoService{opts: opts, k: k, warmup: warmup}
}

// feature maps a job shape to clustering space. Runtime estimates are
// optional (0 = unknown) and enter as a second dimension only when the
// warm-up saw any. Callers hold at least a read lock.
func (a *AutoService) feature(procs int, estimate float64) []float64 {
	if procs < 1 {
		procs = 1
	}
	f := []float64{math.Log2(float64(procs))}
	if a.hasEstimates() {
		f = append(f, math.Log1p(math.Max(estimate, 0)))
	}
	return f
}

func (a *AutoService) hasEstimates() bool {
	if a.ready {
		return len(a.means) == 2
	}
	for _, s := range a.shapes {
		if len(s) == 2 && s[1] > 0 {
			return true
		}
	}
	return false
}

// Observe records a completed wait for a job shape. estimate is the job's
// requested runtime in seconds (0 if unknown).
func (a *AutoService) Observe(procs int, estimate, waitSeconds float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.ready {
		a.shapes = append(a.shapes, []float64{
			math.Log2(math.Max(float64(procs), 1)),
			math.Log1p(math.Max(estimate, 0)),
		})
		a.waits = append(a.waits, waitSeconds)
		if len(a.shapes) >= a.warmup {
			a.learn()
		}
		return
	}
	idx := a.route(procs, estimate)
	// Score the bound this job would have been quoted (the paper's online
	// correctness metric), then fold the wait in and refit eagerly so the
	// read paths under RLock never mutate forecaster state.
	if bound, ok := a.forecast[idx].Forecast(); ok {
		a.hit[idx].Record(waitSeconds <= bound)
	}
	a.forecast[idx].Observe(waitSeconds)
	a.forecast[idx].Forecast()
}

// learn clusters the warm-up shapes and replays the buffered waits.
// Called with the write lock held.
func (a *AutoService) learn() {
	raw := a.shapes
	// Drop the estimate dimension entirely if nobody supplied one.
	twoD := false
	for _, s := range raw {
		if s[1] > 0 {
			twoD = true
			break
		}
	}
	feats := make([][]float64, len(raw))
	for i, s := range raw {
		if twoD {
			feats[i] = s
		} else {
			feats[i] = s[:1]
		}
	}
	scaled, means, sds := cluster.Standardize(feats)
	a.clusters = cluster.KMeans(scaled, a.k, seedFromOpts(a.opts), 200)
	a.means, a.sds = means, sds

	a.forecast = make([]*Forecaster, len(a.clusters.Centers))
	a.hit = make([]*obs.RollingRate, len(a.forecast))
	for i := range a.forecast {
		opts := append([]Option{WithSeed(seedFromOpts(a.opts) + int64(i) + 1)}, a.opts...)
		a.forecast[i] = New(opts...)
		a.hit[i] = obs.NewRollingRate(hitRateWindow)
	}
	for i, w := range a.waits {
		a.forecast[a.clusters.Assign[i]].Observe(w)
	}
	// Settle every lazily-computed bound before readers arrive.
	for _, fc := range a.forecast {
		fc.Forecast()
	}
	a.shapes, a.waits = nil, nil
	a.ready = true
}

func (a *AutoService) route(procs int, estimate float64) int {
	f := a.feature(procs, estimate)
	return a.clusters.Nearest(cluster.Apply(f, a.means, a.sds))
}

// Forecast returns the learned category's bound for a job shape. ok is
// false during warm-up or while the category's history is too short.
func (a *AutoService) Forecast(procs int, estimate float64) (seconds float64, ok bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if !a.ready {
		return 0, false
	}
	return a.forecast[a.route(procs, estimate)].Forecast()
}

// Ready reports whether the warm-up has completed and categories exist.
func (a *AutoService) Ready() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.ready
}

// Categories returns the number of learned categories (0 during warm-up).
func (a *AutoService) Categories() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.forecast)
}

// CategoryOfJob returns the learned category a job shape routes to
// (-1 during warm-up).
func (a *AutoService) CategoryOfJob(procs int, estimate float64) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if !a.ready {
		return -1
	}
	return a.route(procs, estimate)
}

// Stats returns a status snapshot per learned category (nil during
// warm-up).
func (a *AutoService) Stats() []CategoryStatus {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if !a.ready {
		return nil
	}
	out := make([]CategoryStatus, len(a.forecast))
	for i, fc := range a.forecast {
		bound, ok := fc.Forecast()
		rate, n := a.hit[i].Rate()
		out[i] = CategoryStatus{
			Category:        i,
			Observations:    fc.Observations(),
			MinObservations: fc.MinObservations(),
			BoundSeconds:    bound,
			BoundOK:         ok,
			RollingHitRate:  rate,
			RollingResolved: n,
			Trims:           fc.ChangePoints(),
		}
	}
	return out
}

func seedFromOpts(opts []Option) int64 {
	c := config{}
	for _, o := range opts {
		o(&c)
	}
	return c.seed
}
