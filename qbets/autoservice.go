package qbets

import (
	"math"

	"repro/internal/cluster"
)

// AutoService is a Service that learns its job categories from the
// workload instead of using the paper's fixed processor-count ranges —
// the direction the authors took in the QBETS follow-up system. During a
// warm-up phase it records job shapes; it then clusters them (k-means over
// log₂ processor count and, when provided, log runtime estimate) and gives
// each cluster its own Forecaster, replaying the warm-up waits into the
// right clusters so no history is lost.
type AutoService struct {
	opts   []Option
	k      int
	warmup int

	// Warm-up buffer.
	shapes [][]float64
	waits  []float64

	// Learned state.
	ready      bool
	clusters   cluster.Result
	means, sds []float64
	forecast   []*Forecaster
}

// NewAutoService returns an AutoService that learns k categories after
// warmup observations. Sensible values: k in 2..6, warmup a few hundred.
func NewAutoService(k, warmup int, opts ...Option) *AutoService {
	if k < 1 {
		k = 1
	}
	if warmup < k {
		warmup = k
	}
	return &AutoService{opts: opts, k: k, warmup: warmup}
}

// feature maps a job shape to clustering space. Runtime estimates are
// optional (0 = unknown) and enter as a second dimension only when the
// warm-up saw any.
func (a *AutoService) feature(procs int, estimate float64) []float64 {
	if procs < 1 {
		procs = 1
	}
	f := []float64{math.Log2(float64(procs))}
	if a.hasEstimates() {
		f = append(f, math.Log1p(math.Max(estimate, 0)))
	}
	return f
}

func (a *AutoService) hasEstimates() bool {
	if a.ready {
		return len(a.means) == 2
	}
	for _, s := range a.shapes {
		if len(s) == 2 && s[1] > 0 {
			return true
		}
	}
	return false
}

// Observe records a completed wait for a job shape. estimate is the job's
// requested runtime in seconds (0 if unknown).
func (a *AutoService) Observe(procs int, estimate, waitSeconds float64) {
	if !a.ready {
		a.shapes = append(a.shapes, []float64{
			math.Log2(math.Max(float64(procs), 1)),
			math.Log1p(math.Max(estimate, 0)),
		})
		a.waits = append(a.waits, waitSeconds)
		if len(a.shapes) >= a.warmup {
			a.learn()
		}
		return
	}
	idx := a.route(procs, estimate)
	a.forecast[idx].Observe(waitSeconds)
}

// learn clusters the warm-up shapes and replays the buffered waits.
func (a *AutoService) learn() {
	raw := a.shapes
	// Drop the estimate dimension entirely if nobody supplied one.
	twoD := false
	for _, s := range raw {
		if s[1] > 0 {
			twoD = true
			break
		}
	}
	feats := make([][]float64, len(raw))
	for i, s := range raw {
		if twoD {
			feats[i] = s
		} else {
			feats[i] = s[:1]
		}
	}
	scaled, means, sds := cluster.Standardize(feats)
	a.clusters = cluster.KMeans(scaled, a.k, seedFromOpts(a.opts), 200)
	a.means, a.sds = means, sds

	a.forecast = make([]*Forecaster, len(a.clusters.Centers))
	for i := range a.forecast {
		opts := append([]Option{WithSeed(seedFromOpts(a.opts) + int64(i) + 1)}, a.opts...)
		a.forecast[i] = New(opts...)
	}
	for i, w := range a.waits {
		a.forecast[a.clusters.Assign[i]].Observe(w)
	}
	a.shapes, a.waits = nil, nil
	a.ready = true
}

func (a *AutoService) route(procs int, estimate float64) int {
	f := a.feature(procs, estimate)
	return a.clusters.Nearest(cluster.Apply(f, a.means, a.sds))
}

// Forecast returns the learned category's bound for a job shape. ok is
// false during warm-up or while the category's history is too short.
func (a *AutoService) Forecast(procs int, estimate float64) (seconds float64, ok bool) {
	if !a.ready {
		return 0, false
	}
	return a.forecast[a.route(procs, estimate)].Forecast()
}

// Ready reports whether the warm-up has completed and categories exist.
func (a *AutoService) Ready() bool { return a.ready }

// Categories returns the number of learned categories (0 during warm-up).
func (a *AutoService) Categories() int { return len(a.forecast) }

// CategoryOfJob returns the learned category a job shape routes to
// (-1 during warm-up).
func (a *AutoService) CategoryOfJob(procs int, estimate float64) int {
	if !a.ready {
		return -1
	}
	return a.route(procs, estimate)
}

func seedFromOpts(opts []Option) int64 {
	c := config{}
	for _, o := range opts {
		o(&c)
	}
	return c.seed
}
