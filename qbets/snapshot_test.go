package qbets

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The read plane serves RCU-published snapshots: these tests pin down the
// coherence contract — readers see whole ObserveBatch chunks or nothing,
// generations are monotone, restores leave no stale snapshot behind, and
// the whole read path holds no locks and allocates nothing.

// TestSnapshotChunkCoherence is the prefix-of-chunks oracle. With trimming
// off and every batch a single chunk of B records, a stream's published
// snapshot must always satisfy observations == B*(generation-1): gen 1 is
// the empty stream at creation, and each applied chunk adds exactly B
// observations and exactly one publication. Any reader who catches a
// partially applied chunk, or a snapshot whose fields mix two
// publications, breaks the equation.
func TestSnapshotChunkCoherence(t *testing.T) {
	const (
		B       = 64 // one chunk per ObserveBatch call (B <= observeBatchChunk)
		batches = 200
		readers = 4
	)
	if B > observeBatchChunk {
		t.Fatalf("B = %d must fit one chunk (%d)", B, observeBatchChunk)
	}
	svc := NewService(false, WithSeed(7), WithoutTrimming())

	batch := make([]ObserveRecord, B)
	for i := range batch {
		batch[i] = ObserveRecord{Queue: "q", Procs: 1, WaitSeconds: float64(10 + i)}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				st, ok := svc.StreamStats("q", 1)
				if !ok {
					continue
				}
				if st.Generation < lastGen {
					t.Errorf("generation went backwards: %d after %d", st.Generation, lastGen)
					return
				}
				lastGen = st.Generation
				if got, want := st.Observations, B*int(st.Generation-1); got != want {
					t.Errorf("snapshot gen %d has %d observations, want %d (torn chunk visible)",
						st.Generation, got, want)
					return
				}
			}
		}()
	}

	for i := 0; i < batches; i++ {
		if applied, err := svc.ObserveBatch(batch); err != nil || applied != B {
			t.Fatalf("batch %d: applied %d, err %v", i, applied, err)
		}
	}
	close(done)
	wg.Wait()

	st, ok := svc.StreamStats("q", 1)
	if !ok || st.Generation != batches+1 || st.Observations != batches*B {
		t.Fatalf("final state = %+v, ok %v; want gen %d, observations %d",
			st, ok, batches+1, batches*B)
	}
}

// TestSnapshotGenerationMonotoneUnderTrims exercises the same oracle's
// weaker form when change-point trims are live: observations may shrink,
// but the generation — and the trim counter riding in the same snapshot —
// must stay monotone, and a forecast must never pair with a generation
// that predates it.
func TestSnapshotGenerationMonotoneUnderTrims(t *testing.T) {
	svc := NewService(false, WithSeed(11), WithFixedChangeThreshold(20))
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			var lastTrims int
			for {
				select {
				case <-done:
					return
				default:
				}
				st, ok := svc.StreamStats("q", 1)
				if !ok {
					continue
				}
				if st.Generation < lastGen {
					t.Errorf("generation went backwards: %d after %d", st.Generation, lastGen)
					return
				}
				if st.Generation == lastGen && st.Trims < lastTrims {
					t.Errorf("same generation %d reported %d trims after %d", st.Generation, st.Trims, lastTrims)
					return
				}
				lastGen, lastTrims = st.Generation, st.Trims
			}
		}()
	}

	// Alternate regimes hard enough to force trims through the fixed
	// threshold: long stretches of small waits, then large.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4000; i++ {
		w := 10 + rng.Float64()
		if (i/500)%2 == 1 {
			w = 5000 + rng.Float64()
		}
		if err := svc.Observe("q", 1, w); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	if st, ok := svc.StreamStats("q", 1); !ok || st.Trims == 0 {
		t.Fatalf("regime flips produced no trims (status %+v, ok %v); the monotonicity check never fired", st, ok)
	}
}

// TestSnapshotCoherenceUnderRestoreChurn races lock-free readers against
// wholesale restores and stream creation. The assertions are the race
// detector itself plus two invariants: Queues() is always sorted, and a
// reader-visible stream always carries a published snapshot (StreamStats
// never tears).
func TestSnapshotCoherenceUnderRestoreChurn(t *testing.T) {
	seed := NewService(false, WithSeed(3), WithoutTrimming())
	for i := 0; i < 100; i++ {
		seed.Observe("restored", 1, float64(i))
	}
	blob, err := seed.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	svc := NewService(false, WithSeed(3), WithoutTrimming())
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // restorer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := svc.UnmarshalBinary(blob); err != nil {
				t.Errorf("restore %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // creator: churns new streams between restores
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			svc.Observe(fmt.Sprintf("fresh%d", i%17), 1, float64(i))
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				qs := svc.Queues()
				if !slices.IsSorted(qs) {
					t.Errorf("Queues() not sorted: %v", qs)
					return
				}
				for _, s := range svc.Stats() {
					if s.Generation == 0 {
						t.Errorf("stream %q visible without a published snapshot", s.Stream)
						return
					}
				}
				svc.Forecast("restored", 1)
				svc.Profile("restored", 1)
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(done)
	wg.Wait()
}

// TestRestoreWhileServing proves no stale snapshot survives a restore: the
// instant UnmarshalBinary returns, every read resolves against the
// restored stream set — pre-restore streams are gone and the restored
// stream's depth is served, even while readers hammer the whole time.
func TestRestoreWhileServing(t *testing.T) {
	archived := NewService(false, WithSeed(9), WithoutTrimming())
	for i := 0; i < 150; i++ {
		archived.Observe("shared", 1, 100+float64(i))
	}
	wantObs := archived.Observations("shared", 1)
	wantBound, wantOK := archived.Forecast("shared", 1)
	blob, err := archived.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	svc := NewService(false, WithSeed(9), WithoutTrimming())
	for i := 0; i < 30; i++ {
		svc.Observe("shared", 1, 1) // same key, different history
		svc.Observe("doomed", 1, 1) // must vanish on restore
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				svc.Forecast("shared", 1)
				svc.StreamStats("doomed", 1)
				svc.Stats()
			}
		}()
	}

	if err := svc.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// Immediately after return — readers still running — the restored
	// state must be the only state visible.
	if got := svc.Observations("shared", 1); got != wantObs {
		t.Errorf("post-restore observations = %d, want %d", got, wantObs)
	}
	if b, ok := svc.Forecast("shared", 1); ok != wantOK || b != wantBound {
		t.Errorf("post-restore forecast = (%v, %v), want (%v, %v)", b, ok, wantBound, wantOK)
	}
	if _, ok := svc.StreamStats("doomed", 1); ok {
		t.Error("pre-restore stream still resolvable after restore")
	}
	if qs := svc.Queues(); len(qs) != 1 || qs[0] != "shared" {
		t.Errorf("post-restore Queues() = %v, want [shared]", qs)
	}
	close(done)
	wg.Wait()
}

// TestReadPathLockFree holds a stream's write lock hostage and proves
// every read-plane entry point still answers: the reads run against the
// published snapshot and never touch st.mu.
func TestReadPathLockFree(t *testing.T) {
	svc := NewService(false, WithSeed(1), WithoutTrimming())
	for i := 0; i < 100; i++ {
		svc.Observe("q", 1, float64(i))
	}
	st := svc.lookup("q")
	if st == nil {
		t.Fatal("stream not in index")
	}
	// Surface the latest applied state before the lock is taken hostage:
	// publication is on-demand, so a read must run while the lock is free
	// for the final observations to be published. Once the writer holds
	// the lock, readers serve this (current) snapshot.
	svc.Observations("q", 1)
	svc.Profile("q", 1)
	st.mu.Lock()
	defer st.mu.Unlock()

	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		if _, ok := svc.Forecast("q", 1); !ok {
			t.Error("Forecast not ok")
		}
		if p := svc.Profile("q", 1); p == nil {
			t.Error("Profile nil")
		}
		if n := svc.Observations("q", 1); n != 100 {
			t.Errorf("Observations = %d", n)
		}
		if _, ok := svc.StreamStats("q", 1); !ok {
			t.Error("StreamStats not ok")
		}
		if n := len(svc.Stats()); n != 1 {
			t.Errorf("Stats len = %d", n)
		}
		if qs := svc.Queues(); len(qs) != 1 {
			t.Errorf("Queues = %v", qs)
		}
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("read path blocked behind a held stream write lock")
	}
}

// TestReadPathZeroAllocs pins the tentpole's allocation contract: the four
// per-shape read entry points allocate nothing in steady state.
func TestReadPathZeroAllocs(t *testing.T) {
	svc := NewService(true, WithSeed(1))
	for i := 0; i < 100; i++ {
		svc.Observe("q", 8, float64(i))
	}
	var sink float64
	var sinkB []Bound
	checks := []struct {
		name string
		fn   func()
	}{
		{"Forecast", func() { s, _ := svc.Forecast("q", 8); sink = s }},
		{"Profile", func() { sinkB = svc.Profile("q", 8) }},
		{"Observations", func() { sink = float64(svc.Observations("q", 8)) }},
		{"StreamStats", func() { st, _ := svc.StreamStats("q", 8); sink = st.BoundSeconds }},
		{"Forecast-unknown", func() { s, _ := svc.Forecast("ghost", 8); sink = s }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(200, c.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, n)
		}
	}
	_, _ = sink, sinkB
}

// TestProfileServesPublishedSnapshot verifies the documented sharing
// contract: two Profile calls with no intervening observation return the
// identical backing array (same snapshot), and an observation republishes
// — the old slice is never mutated in place.
func TestProfileServesPublishedSnapshot(t *testing.T) {
	svc := NewService(false, WithSeed(2))
	for i := 0; i < 100; i++ {
		svc.Observe("q", 1, float64(i))
	}
	p1 := svc.Profile("q", 1)
	p2 := svc.Profile("q", 1)
	if len(p1) == 0 || &p1[0] != &p2[0] {
		t.Fatalf("quiescent Profile calls returned different backing arrays")
	}
	old := slices.Clone(p1)
	svc.Observe("q", 1, 1e6) // forces a republish with a shifted profile
	if !slices.Equal(old, p1) {
		t.Error("published profile slice mutated in place after a new observation")
	}
	if p3 := svc.Profile("q", 1); len(p3) > 0 && &p3[0] == &p1[0] {
		t.Error("observation did not publish a fresh profile slice")
	}
}

// TestQueuesAndStatsSorted: insertion order must not leak into Queues() or
// Stats() — both are sorted by stream key, keeping /v1/status stable.
func TestQueuesAndStatsSorted(t *testing.T) {
	svc := NewService(false, WithSeed(1))
	for _, q := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		svc.Observe(q, 1, 1)
	}
	want := []string{"alpha", "beta", "mid", "omega", "zeta"}
	if got := svc.Queues(); !slices.Equal(got, want) {
		t.Errorf("Queues() = %v, want %v", got, want)
	}
	stats := svc.Stats()
	keys := make([]string, len(stats))
	for i, st := range stats {
		keys[i] = st.Stream
	}
	if !slices.Equal(keys, want) {
		t.Errorf("Stats() order = %v, want %v", keys, want)
	}
}

// TestGenerationCountsPerChunkNotPerRecord: a 1000-record batch crosses
// chunk boundaries; the generation must advance once per chunk (ceil(N/B)
// publications), not once per record — that is what bounds how often
// readers are invalidated under bulk ingest.
func TestGenerationCountsPerChunkNotPerRecord(t *testing.T) {
	svc := NewService(false, WithSeed(1), WithoutTrimming())
	const n = 1000
	batch := make([]ObserveRecord, n)
	for i := range batch {
		batch[i] = ObserveRecord{Queue: "q", Procs: 1, WaitSeconds: float64(i)}
	}
	if applied, err := svc.ObserveBatch(batch); err != nil || applied != n {
		t.Fatalf("applied %d, %v", applied, err)
	}
	st, ok := svc.StreamStats("q", 1)
	wantGen := uint64(1 + (n+observeBatchChunk-1)/observeBatchChunk)
	if !ok || st.Generation != wantGen {
		t.Fatalf("generation = %d (ok %v), want %d", st.Generation, ok, wantGen)
	}
}

// TestLookupIndexVisibility: a stream created through the write path is
// immediately visible to the lock-free index readers, per getOrCreate's
// rebuild-after-insert contract.
func TestLookupIndexVisibility(t *testing.T) {
	svc := NewService(true, WithSeed(1))
	var wg sync.WaitGroup
	var missing atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf("w%d-%d", g, i)
				svc.Observe(q, 8, 1)
				if _, ok := svc.StreamStats(q, 8); !ok {
					missing.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := missing.Load(); n != 0 {
		t.Errorf("%d streams invisible to the index immediately after their own creation", n)
	}
}
