package qbets

import (
	"hash/maphash"
	"maps"
	"slices"
	"sync/atomic"
)

// The stream index is the lock-free read plane's registry: it resolves a
// stream key (or a (queue, slot) shape) to its *stream with one or two
// atomic loads and a map probe, no locks. Through PR 5 it was a single
// immutable map rebuilt wholesale on every stream creation — O(total
// streams) per create, quadratic under stream-creation churn and hopeless
// at the million-stream scale the ROADMAP targets. It is now a two-level
// copy-on-write structure:
//
//   - the root (streamIndex) is an immutable array of partition slots,
//     swapped wholesale only when the partition count changes (growth or
//     wholesale restore);
//   - each slot holds an atomic pointer to an immutable partition — a
//     small map plus, for key partitions, a sorted key list. Creating a
//     stream clones and republishes only the one key partition and one
//     queue partition the new stream hashes into, O(partition load)
//     instead of O(total streams).
//
// Partition count doubles (well, quadruples) once the average load passes
// indexMaxLoad, amortizing growth rebuilds to O(1) per create. Sorted
// enumeration (Queues, Stats, /v1/status) k-way merges the per-partition
// sorted key lists at read time; each key belongs to exactly one partition
// of a given root, so the merge yields every key exactly once, in order.
const (
	// indexInitialPartitions is the partition count an empty service
	// starts with; must be a power of two.
	indexInitialPartitions = 256
	// indexMaxLoad is the average streams-per-partition that triggers
	// growth. It bounds the clone cost of a create: one map copy of about
	// this many entries.
	indexMaxLoad = 128
	// indexGrowthLoad is the average load a growth rebuild targets (a
	// quarter of the trigger), so consecutive growths are geometric and
	// their total cost stays linear in streams created.
	indexGrowthLoad = indexMaxLoad / 4
)

// keyPartition is one immutable slice of the key registry: the streams
// whose key hashes into this partition, plus their keys in sorted order.
type keyPartition struct {
	byKey map[string]*stream
	keys  []string
}

// queueEntry is one slot of a queuePartition's open-addressed table.
// arr == nil marks an empty slot (a present queue always has an array).
type queueEntry struct {
	hash  uint32
	queue string
	arr   *[cacheSlotWhole + 1]*stream
}

// queuePartition is one immutable slice of the (queue, slot) registry: a
// small open-addressed table probed with the same hash that selected the
// partition, so the forecast/ingest hot path hashes the queue exactly
// once. (A Go map here would rehash the key internally — profiled at a
// third of end-to-end forecast latency.) The per-queue slot arrays are
// immutable too: an insert clones the array before republishing, so a
// reader holding yesterday's pointer never sees a slot change under it.
type queuePartition struct {
	n    int
	mask uint32 // len(tab) - 1; table is power-of-two sized at load <= 0.5
	tab  []queueEntry
}

// lookup probes for a queue. Slot selection uses the hash's top half —
// every entry in this partition shares the low bits that routed it here,
// so the top bits are what still discriminate.
func (p *queuePartition) lookup(queue string, h uint32) *[cacheSlotWhole + 1]*stream {
	for i := (h >> 16) & p.mask; ; i = (i + 1) & p.mask {
		e := &p.tab[i]
		if e.arr == nil {
			return nil
		}
		if e.hash == h && e.queue == queue {
			return e.arr
		}
	}
}

// buildQueuePartition freezes a queue→slots map into the immutable probe
// table (load factor <= 0.5, linear probing).
func buildQueuePartition(m map[string]*[cacheSlotWhole + 1]*stream) *queuePartition {
	size := 4
	for size < 2*len(m) {
		size *= 2
	}
	p := &queuePartition{n: len(m), mask: uint32(size - 1), tab: make([]queueEntry, size)}
	for q, arr := range m {
		h := keyHash(q)
		i := (h >> 16) & p.mask
		for p.tab[i].arr != nil {
			i = (i + 1) & p.mask
		}
		p.tab[i] = queueEntry{hash: h, queue: q, arr: arr}
	}
	return p
}

// cloneInsert freezes a successor partition with queue's slot array set to
// arr. No scratch map and no rehashing: entries carry their hashes, so the
// clone (or a grow) is one pass of probe-inserts. Safe on a nil receiver
// (an empty slot).
func (p *queuePartition) cloneInsert(queue string, h uint32, arr *[cacheSlotWhole + 1]*stream) *queuePartition {
	n := 1
	if p != nil {
		n = p.n + 1
		if p.lookup(queue, h) != nil {
			n = p.n
		}
	}
	size := 4
	for size < 2*n {
		size *= 2
	}
	nq := &queuePartition{n: n, mask: uint32(size - 1), tab: make([]queueEntry, size)}
	ins := func(e queueEntry) {
		i := (e.hash >> 16) & nq.mask
		for nq.tab[i].arr != nil {
			i = (i + 1) & nq.mask
		}
		nq.tab[i] = e
	}
	if p != nil {
		for i := range p.tab {
			if e := p.tab[i]; e.arr != nil && (e.hash != h || e.queue != queue) {
				ins(e)
			}
		}
	}
	ins(queueEntry{hash: h, queue: queue, arr: arr})
	return nq
}

// streamIndex is one immutable root of the partitioned registry, published
// via Service.index. The partition slots themselves are atomic pointers:
// an insert republishes a single partition in place of its predecessor
// without touching the root. Once a new root is published (growth,
// restore), the old root's slots are never written again.
type streamIndex struct {
	mask       uint32
	keyParts   []atomic.Pointer[keyPartition]
	queueParts []atomic.Pointer[queuePartition]
}

func newStreamIndex(parts int) *streamIndex {
	return &streamIndex{
		mask:       uint32(parts - 1),
		keyParts:   make([]atomic.Pointer[keyPartition], parts),
		queueParts: make([]atomic.Pointer[queuePartition], parts),
	}
}

// hashSeed makes key hashes process-local; nothing on disk or on the wire
// depends on placement (the sharded state loader reads every shard file),
// so a fresh seed per process is free hash-flooding resistance.
var hashSeed = maphash.MakeSeed()

// keyHash is the hash shared by shard and partition placement. It is the
// runtime's string hash (hardware-accelerated, O(1)-ish for short keys) —
// a byte-serial FNV here costs more than the map probe it routes.
func keyHash(s string) uint32 {
	return uint32(maphash.String(hashSeed, s))
}

// lookupKey resolves a full stream key; nil partition means empty.
func (idx *streamIndex) lookupKey(key string) *stream {
	p := idx.keyParts[keyHash(key)&idx.mask].Load()
	if p == nil {
		return nil
	}
	return p.byKey[key]
}

// lookupQueue resolves a queue to its slot array (the ingest and forecast
// hot path: one hash, one atomic root load, one atomic partition load, one
// open-addressed probe).
func (idx *streamIndex) lookupQueue(queue string) *[cacheSlotWhole + 1]*stream {
	h := keyHash(queue)
	p := idx.queueParts[h&idx.mask].Load()
	if p == nil {
		return nil
	}
	return p.lookup(queue, h)
}

// count sums the partition sizes (the root is immutable but its partitions
// advance, so this is a point-in-time reading, like everything else here).
func (idx *streamIndex) count() int {
	n := 0
	for i := range idx.keyParts {
		if p := idx.keyParts[i].Load(); p != nil {
			n += len(p.keys)
		}
	}
	return n
}

// indexCursor is one partition's position in the enumeration merge.
type indexCursor struct {
	p *keyPartition
	i int
}

// forEachOrdered calls fn for every (key, stream) in ascending key order,
// k-way merging the per-partition sorted key lists through a binary heap.
// fn returning false stops the walk early (the limit path of /v1/status).
// Partition pointers are loaded once up front, so the walk sees a
// consistent snapshot of each partition; a concurrent insert is either
// wholly visible or wholly invisible, exactly like the pre-partitioned
// index's rebuild race.
func (idx *streamIndex) forEachOrdered(fn func(key string, st *stream) bool) {
	h := make([]indexCursor, 0, len(idx.keyParts))
	for i := range idx.keyParts {
		if p := idx.keyParts[i].Load(); p != nil && len(p.keys) > 0 {
			h = append(h, indexCursor{p: p})
		}
	}
	cursorLess := func(a, b indexCursor) bool {
		return a.p.keys[a.i] < b.p.keys[b.i]
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(h) && cursorLess(h[l], h[min]) {
				min = l
			}
			if r < len(h) && cursorLess(h[r], h[min]) {
				min = r
			}
			if min == i {
				return
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		c := &h[0]
		k := c.p.keys[c.i]
		if !fn(k, c.p.byKey[k]) {
			return
		}
		c.i++
		if c.i == len(c.p.keys) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
}

// indexInsert makes one newly created stream visible to lock-free readers
// by cloning and republishing the two partitions it hashes into. indexMu
// serializes all index mutation, so clone-and-swap never loses a
// concurrent insert. When the average load crosses indexMaxLoad the whole
// index is rebuilt at a larger partition count instead — the rebuild reads
// the shard maps, which already contain this key.
func (s *Service) indexInsert(key string, st *stream) {
	s.indexMu.Lock()
	defer s.indexMu.Unlock()
	idx := s.index.Load()
	if n := int(s.nStreams.Load()); n > indexMaxLoad*len(idx.keyParts) {
		s.rebuildIndexLocked()
		return
	}
	slot := keyHash(key) & idx.mask
	old := idx.keyParts[slot].Load()
	if old != nil {
		if _, ok := old.byKey[key]; ok {
			// Already indexed (a growth rebuild raced ahead of this insert
			// and picked the key up from the shard maps).
			return
		}
	}
	kp := &keyPartition{}
	if old != nil {
		kp.byKey = maps.Clone(old.byKey)
		kp.keys = make([]string, len(old.keys), len(old.keys)+1)
		copy(kp.keys, old.keys)
	} else {
		kp.byKey = make(map[string]*stream, 1)
	}
	kp.byKey[key] = st
	at, _ := slices.BinarySearch(kp.keys, key)
	kp.keys = slices.Insert(kp.keys, at, key)
	idx.keyParts[slot].Store(kp)
	s.indexRebuilds.Inc()

	if queue, qslot, ok := splitKey(key, s.byProcs.Load()); ok {
		h := keyHash(queue)
		qslotIdx := h & idx.mask
		oldq := idx.queueParts[qslotIdx].Load()
		var arr [cacheSlotWhole + 1]*stream
		if oldq != nil {
			if prev := oldq.lookup(queue, h); prev != nil {
				arr = *prev
			}
		}
		arr[qslot] = st
		idx.queueParts[qslotIdx].Store(oldq.cloneInsert(queue, h, &arr))
		s.indexRebuilds.Inc()
	}
}

// republishIndex rebuilds the whole index from the shard maps (wholesale
// restore, growth). O(n) — paid once per restore and amortized O(1) per
// create across growths.
func (s *Service) republishIndex() {
	s.indexMu.Lock()
	defer s.indexMu.Unlock()
	s.rebuildIndexLocked()
}

// rebuildIndexLocked builds and publishes a fresh root sized for the
// current stream count. Caller holds indexMu; shard maps are read under
// their own RLocks, so this runs concurrently with ingest on existing
// streams.
func (s *Service) rebuildIndexLocked() {
	n := int(s.nStreams.Load())
	parts := indexInitialPartitions
	for parts*indexGrowthLoad < n {
		parts *= 2
	}
	idx := newStreamIndex(parts)
	byProcs := s.byProcs.Load()
	// Queue tables are accumulated in mutable scratch maps and frozen into
	// probe tables at the end; key partitions are built in place (the root
	// is unpublished, so direct mutation is safe) and sorted once.
	tmpQ := make([]map[string]*[cacheSlotWhole + 1]*stream, parts)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, st := range sh.m {
			slot := keyHash(k) & idx.mask
			kp := idx.keyParts[slot].Load()
			if kp == nil {
				kp = &keyPartition{byKey: make(map[string]*stream)}
				idx.keyParts[slot].Store(kp)
			}
			kp.byKey[k] = st
			kp.keys = append(kp.keys, k)
			queue, qslot, ok := splitKey(k, byProcs)
			if !ok {
				// A key that does not parse under the current routing mode
				// (e.g. restored from a blob written in the other mode) is
				// unreachable through the (queue, procs) APIs but stays
				// listed in Queues/Stats via the key partitions.
				continue
			}
			qslotIdx := keyHash(queue) & idx.mask
			m := tmpQ[qslotIdx]
			if m == nil {
				m = make(map[string]*[cacheSlotWhole + 1]*stream)
				tmpQ[qslotIdx] = m
			}
			arr := m[queue]
			if arr == nil {
				arr = new([cacheSlotWhole + 1]*stream)
				m[queue] = arr
			}
			arr[qslot] = st
		}
		sh.mu.RUnlock()
	}
	for i := range idx.keyParts {
		if p := idx.keyParts[i].Load(); p != nil {
			slices.Sort(p.keys)
		}
	}
	for i, m := range tmpQ {
		if m != nil {
			idx.queueParts[i].Store(buildQueuePartition(m))
		}
	}
	s.indexRebuilds.Add(uint64(parts))
	s.index.Store(idx)
}
