package qbets

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"
)

func decodeWhatif(t *testing.T, resp *http.Response) WhatifResponse {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out WhatifResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWhatifUncalibratedScenarios(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/whatif", `{
		"workload_jobs": 500,
		"scenarios": [
			{"name": "base"},
			{"name": "surge", "rate_multiplier": 4},
			{"name": "no-backfill", "policy": "fcfs"}
		]
	}`)
	out := decodeWhatif(t, resp)
	if out.Calibrated || out.CalibrationScale != 1 {
		t.Fatalf("no live stream but calibrated: %+v", out)
	}
	if out.Live != nil {
		t.Fatal("live snapshot present without a queue")
	}
	if len(out.Scenarios) != 3 {
		t.Fatalf("got %d scenario results", len(out.Scenarios))
	}
	for _, sc := range out.Scenarios {
		if sc.Error != "" || !sc.BoundOK {
			t.Fatalf("scenario %q failed: %+v", sc.Scenario.Name, sc)
		}
		if sc.CalibratedBoundSeconds != sc.BoundSeconds {
			t.Errorf("scenario %q: calibrated %.1f != raw %.1f at scale 1",
				sc.Scenario.Name, sc.CalibratedBoundSeconds, sc.BoundSeconds)
		}
		if sc.DeltaVsLiveSeconds != nil {
			t.Errorf("scenario %q: delta without a live bound", sc.Scenario.Name)
		}
	}
	base, surge := out.Scenarios[0], out.Scenarios[1]
	if surge.BoundSeconds < base.BoundSeconds {
		t.Errorf("4x load lowered the bound: %.1f < %.1f", surge.BoundSeconds, base.BoundSeconds)
	}
}

func TestWhatifCalibratedAgainstLiveStream(t *testing.T) {
	s, ts := newTestServer(t)

	// Feed one stream enough observations for a live bound.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		if err := s.svc.Observe("normal", 8, 100+400*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	live, ok := s.svc.StreamStats("normal", 8)
	if !ok || !live.BoundOK {
		t.Fatalf("no live bound: %+v", live)
	}

	resp := postJSON(t, ts.URL+"/v1/whatif", `{
		"queue": "normal", "procs": 8, "workload_jobs": 500,
		"scenarios": [{"name": "base"}, {"name": "surge", "rate_multiplier": 3}]
	}`)
	out := decodeWhatif(t, resp)
	if out.Live == nil || !out.Live.BoundOK {
		t.Fatalf("live snapshot missing: %+v", out)
	}
	if out.Live.BoundSeconds != live.BoundSeconds {
		t.Errorf("live bound %.2f != service %.2f", out.Live.BoundSeconds, live.BoundSeconds)
	}
	if !out.Calibrated {
		t.Fatal("expected calibration against the live bound")
	}
	base := out.Scenarios[0]
	// The baseline's calibrated bound equals the live bound by construction,
	// so its delta is ~0.
	if base.DeltaVsLiveSeconds == nil {
		t.Fatal("baseline has no delta")
	}
	if d := *base.DeltaVsLiveSeconds; d > 1e-6 || d < -1e-6 {
		t.Errorf("baseline delta = %g, want ~0", d)
	}
	surge := out.Scenarios[1]
	if surge.DeltaVsLiveSeconds == nil || *surge.DeltaVsLiveSeconds < 0 {
		t.Errorf("3x load should raise the calibrated bound above live: %+v", surge)
	}

	// Unknown stream: 404.
	resp = postJSON(t, ts.URL+"/v1/whatif", `{"queue": "nope", "scenarios": [{}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stream: status = %d, want 404", resp.StatusCode)
	}
}

func TestWhatifSizingMode(t *testing.T) {
	_, ts := newTestServer(t)

	// Find the baseline bound first, then ask for an SLO above it: the
	// machine should absorb at least the base rate.
	resp := postJSON(t, ts.URL+"/v1/whatif", `{"workload_jobs": 500, "scenarios": [{}]}`)
	base := decodeWhatif(t, resp).Scenarios[0]
	if !base.BoundOK {
		t.Fatal("no baseline bound")
	}

	body := fmt.Sprintf(`{"workload_jobs": 500, "sizing": {"target_seconds": %g}}`, base.BoundSeconds*2)
	out := decodeWhatif(t, postJSON(t, ts.URL+"/v1/whatif", body))
	if out.Sizing == nil {
		t.Fatal("no sizing result")
	}
	if !out.Sizing.OK {
		t.Fatalf("sizing found no feasible rate: %+v", out.Sizing)
	}
	if out.Sizing.MaxRateMultiplier < 1 {
		t.Errorf("SLO at 2x the base bound should allow at least the base rate, got %.3f", out.Sizing.MaxRateMultiplier)
	}
	if out.Sizing.CalibratedBoundSeconds > base.BoundSeconds*2 {
		t.Errorf("sizing answer violates its own target: %.1f > %.1f",
			out.Sizing.CalibratedBoundSeconds, base.BoundSeconds*2)
	}

	// Validation.
	resp = postJSON(t, ts.URL+"/v1/whatif", `{"sizing": {"target_seconds": 0}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero target: status = %d, want 400", resp.StatusCode)
	}
}

func TestWhatifValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"bad-json", `{`, http.StatusBadRequest},
		{"jobs-too-small", `{"workload_jobs": 10, "scenarios": [{}]}`, http.StatusBadRequest},
		{"jobs-too-large", `{"workload_jobs": 100000, "scenarios": [{}]}`, http.StatusBadRequest},
		{"too-many-scenarios", `{"scenarios": [` + strings.Repeat(`{},`, 256) + `{}]}`, http.StatusBadRequest},
		{"get-method", ``, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var resp *http.Response
		if tc.name == "get-method" {
			r, err := http.Get(ts.URL + "/v1/whatif")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Body.Close() })
			resp = r
		} else {
			resp = postJSON(t, ts.URL+"/v1/whatif", tc.body)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

func TestWhatifCacheMetricsAndRefitInvalidation(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"workload_jobs": 500, "scenarios": [{"rate_multiplier": 1.5}]}`

	decodeWhatif(t, postJSON(t, ts.URL+"/v1/whatif", body))
	if got := s.whatifScenarios.Value(); got != 2 { // baseline + 1 scenario
		t.Fatalf("scenarios counter = %d, want 2", got)
	}
	first := s.whatifCacheHits.Value()

	out := decodeWhatif(t, postJSON(t, ts.URL+"/v1/whatif", body))
	if !out.Scenarios[0].Cached {
		t.Fatal("repeat scenario not served from cache")
	}
	if got := s.whatifCacheHits.Value(); got != first+2 {
		t.Fatalf("cache hits = %d, want %d", got, first+2)
	}

	// Now anchor to a live stream and refit it: the fingerprint moves with
	// the forecast generation, so the cached grid must be recomputed.
	rng := rand.New(rand.NewSource(3))
	observe := func(n int) {
		for i := 0; i < n; i++ {
			if err := s.svc.Observe("normal", 8, 50+100*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	observe(200)
	liveBody := `{"queue": "normal", "procs": 8, "workload_jobs": 500, "scenarios": [{"rate_multiplier": 1.5}]}`
	if out := decodeWhatif(t, postJSON(t, ts.URL+"/v1/whatif", liveBody)); out.Scenarios[0].Cached {
		t.Fatal("new fingerprint served stale cache")
	}
	out = decodeWhatif(t, postJSON(t, ts.URL+"/v1/whatif", liveBody))
	if !out.Scenarios[0].Cached {
		t.Fatal("same generation should hit the cache")
	}
	observe(1) // bump the stream generation: refit invalidates
	if out := decodeWhatif(t, postJSON(t, ts.URL+"/v1/whatif", liveBody)); out.Scenarios[0].Cached {
		t.Fatal("generation bump did not invalidate the scenario cache")
	}

	if s.whatifLatency.Count() == 0 {
		t.Error("whatif latency histogram never observed")
	}
}

// TestWhatifGridLatency is the acceptance check behind the benchmark: a
// 64-scenario grid over a 2000-job trace answers in under a second.
func TestWhatifGridLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	_, ts := newTestServer(t)
	var sb strings.Builder
	sb.WriteString(`{"scenarios": [`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"rate_multiplier": %.3f, "procs": %d}`, 0.25+float64(i%16)*0.25, []int{0, 96, 64, 32}[i/16])
	}
	sb.WriteString(`]}`)

	start := time.Now()
	out := decodeWhatif(t, postJSON(t, ts.URL+"/v1/whatif", sb.String()))
	elapsed := time.Since(start)
	if len(out.Scenarios) != 64 {
		t.Fatalf("got %d results", len(out.Scenarios))
	}
	for _, sc := range out.Scenarios {
		if sc.Error != "" {
			t.Fatalf("scenario failed: %+v", sc)
		}
	}
	if raceEnabled {
		t.Logf("64-scenario grid took %v under the race detector; the < 1s bar applies uninstrumented", elapsed)
	} else if elapsed > time.Second {
		t.Errorf("64-scenario grid took %v, want < 1s", elapsed)
	}
}
