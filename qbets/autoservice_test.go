package qbets

import (
	"math"
	"math/rand"
	"testing"
)

func TestAutoServiceLearnsSizeCategories(t *testing.T) {
	// Workload with two natural job classes: 1-2 processor jobs waiting
	// ~1 minute, 64-128 processor jobs waiting ~1 hour. The AutoService
	// should learn the split and quote very different bounds.
	a := NewAutoService(2, 400, WithSeed(3))
	rng := rand.New(rand.NewSource(3))
	obs := func() {
		if rng.Float64() < 0.5 {
			procs := 1 << rng.Intn(2)
			a.Observe(procs, 0, math.Round(60*math.Exp(0.5*rng.NormFloat64())))
		} else {
			procs := 64 << rng.Intn(2)
			a.Observe(procs, 0, math.Round(3600*math.Exp(0.5*rng.NormFloat64())))
		}
	}
	for i := 0; i < 300; i++ {
		obs()
		if a.Ready() {
			t.Fatal("ready before warmup completes")
		}
		if _, ok := a.Forecast(1, 0); ok {
			t.Fatal("forecast during warmup")
		}
	}
	for i := 0; i < 1500; i++ {
		obs()
	}
	if !a.Ready() || a.Categories() != 2 {
		t.Fatalf("ready=%v categories=%d", a.Ready(), a.Categories())
	}
	small, ok1 := a.Forecast(2, 0)
	large, ok2 := a.Forecast(128, 0)
	if !ok1 || !ok2 {
		t.Fatal("forecasts unavailable after warmup")
	}
	if large < 4*small {
		t.Errorf("learned categories not separated: small %g, large %g", small, large)
	}
	// Same shape routes to the same category.
	if a.CategoryOfJob(1, 0) != a.CategoryOfJob(2, 0) {
		t.Error("1 and 2 procs should share a category")
	}
	if a.CategoryOfJob(2, 0) == a.CategoryOfJob(128, 0) {
		t.Error("2 and 128 procs should differ")
	}
}

func TestAutoServiceWithEstimates(t *testing.T) {
	// Two classes distinguished only by runtime estimate (same procs):
	// clustering must use the second feature dimension.
	a := NewAutoService(2, 300, WithSeed(4))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			a.Observe(8, 600, math.Round(30*math.Exp(0.4*rng.NormFloat64())))
		} else {
			a.Observe(8, 86400, math.Round(7200*math.Exp(0.4*rng.NormFloat64())))
		}
	}
	if !a.Ready() {
		t.Fatal("not ready")
	}
	short, ok1 := a.Forecast(8, 600)
	long, ok2 := a.Forecast(8, 86400)
	if !ok1 || !ok2 {
		t.Fatal("forecasts unavailable")
	}
	if long < 5*short {
		t.Errorf("estimate-based split failed: short %g, long %g", short, long)
	}
}

func TestAutoServiceDegenerate(t *testing.T) {
	// k larger than distinct shapes collapses gracefully.
	a := NewAutoService(5, 10, WithSeed(5))
	for i := 0; i < 200; i++ {
		a.Observe(4, 0, 100)
	}
	if !a.Ready() {
		t.Fatal("not ready")
	}
	if a.Categories() != 1 {
		t.Errorf("categories = %d, want 1 (one distinct shape)", a.Categories())
	}
	if b, ok := a.Forecast(4, 0); !ok || b != 100 {
		t.Errorf("forecast = %g/%v", b, ok)
	}
	// CategoryOfJob before ready.
	b := NewAutoService(2, 100)
	if b.CategoryOfJob(1, 0) != -1 {
		t.Error("category before warmup should be -1")
	}
	// k < 1 clamps.
	c := NewAutoService(0, 0)
	if c.k != 1 {
		t.Errorf("k = %d", c.k)
	}
}
