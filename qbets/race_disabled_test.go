//go:build !race

package qbets

const raceEnabled = false
