package qbets

import "testing"

func TestSyntheticQueues(t *testing.T) {
	names := SyntheticQueues()
	if len(names) != 39 {
		t.Fatalf("queues = %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate %q", n)
		}
		seen[n] = true
	}
	if !seen["datastar/normal"] || !seen["tacc2/normal"] {
		t.Error("expected queues missing")
	}
}

func TestSyntheticTrace(t *testing.T) {
	tr, err := SyntheticTrace("nersc/debug", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 115105 {
		t.Fatalf("jobs = %d, want the Table 1 count", len(tr.Jobs))
	}
	if tr.Machine != "nersc" || tr.Queue != "debug" {
		t.Error("identity")
	}
	// Deterministic.
	tr2, _ := SyntheticTrace("nersc/debug", 7)
	if tr.Jobs[0] != tr2.Jobs[0] || tr.Jobs[1000] != tr2.Jobs[1000] {
		t.Error("not deterministic")
	}
	// Feeds straight into Evaluate.
	small := Trace{Machine: tr.Machine, Queue: tr.Queue, Jobs: tr.Jobs[:8000]}
	reports := Evaluate(small, EvalConfig{})
	if reports[0].Method != "bmbp" || reports[0].Scored == 0 {
		t.Fatalf("evaluate: %+v", reports[0])
	}
	if _, err := SyntheticTrace("nope/nope", 1); err == nil {
		t.Error("unknown queue should error")
	}
}
