package qbets

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// mustRetryAfter asserts the 503 contract: the header is present and
// parses as a valid delay-seconds integer (RFC 9110 §10.2.3), at least 1.
func mustRetryAfter(t *testing.T, resp *http.Response) int {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("503 without a Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not a delay-seconds integer: %v", ra, err)
	}
	if secs < 1 {
		t.Fatalf("Retry-After %d is not a positive delay", secs)
	}
	return secs
}

// TestFollowerServes503WithDerivedRetryAfter covers the follower write
// gate end to end: observes bounce with 503 + ErrNotLeader, the
// Retry-After is derived from the WAL's sync probe interval rather than
// the old fixed "1", and reads keep serving.
func TestFollowerServes503WithDerivedRetryAfter(t *testing.T) {
	svc := NewService(false, WithSeed(1))
	w, err := wal.Open("wal", wal.Options{FS: wal.NewMemFS(), Mode: wal.SyncInterval, Interval: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := svc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	// Seed state before flipping to follower so reads have something.
	for i := 0; i < 50; i++ {
		if err := svc.Observe("normal", 0, float64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	svc.SetFollower(true)
	s := NewServerWith(svc)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/observe", `{"queue":"normal","wait_seconds":12}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("observe on follower: status %d, want 503", resp.StatusCode)
	}
	if secs := mustRetryAfter(t, resp); secs != 3 {
		t.Fatalf("Retry-After = %d, want 3 (the WAL sync probe interval)", secs)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "not the leader") {
		t.Fatalf("error body should name the role problem, got %q", body)
	}

	// Follower reads still serve.
	get, err := http.Get(ts.URL + "/v1/forecast?queue=normal&procs=4")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("follower read: status %d, want 200", get.StatusCode)
	}
}

// TestHealthzDegradedReplication drives /healthz through the replState
// probes directly: healthy while replication keeps up, 503 with a
// Retry-After once the role degrades, healthy again when it recovers.
func TestHealthzDegradedReplication(t *testing.T) {
	s, ts := newTestServer(t)

	check := func(wantCode int) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		if resp.StatusCode != wantCode {
			t.Fatalf("/healthz status %d, want %d", resp.StatusCode, wantCode)
		}
		return resp
	}
	check(http.StatusOK)

	lagging := false
	s.repl.Store(&replState{
		role:       "follower",
		degraded:   func() bool { return lagging },
		retryAfter: func() time.Duration { return 7 * time.Second },
	})
	check(http.StatusOK)

	lagging = true
	resp := check(http.StatusServiceUnavailable)
	if secs := mustRetryAfter(t, resp); secs != 7 {
		t.Fatalf("Retry-After = %d, want 7 (the replication layer's estimate)", secs)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "degraded: follower replication") {
		t.Fatalf("degraded body = %q", body)
	}

	lagging = false
	check(http.StatusOK)
}

// TestReadOnly503RetryAfterFloor: with no replication and a
// sync-each-record WAL there is no probe interval, so the derived hint
// falls back to the 1-second floor — still a valid delay-seconds value.
func TestReadOnly503RetryAfterFloor(t *testing.T) {
	svc := NewService(false, WithSeed(1))
	svc.SetFollower(true) // any 503 path exercises the shared derivation
	s := NewServerWith(svc)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/observe", `{"queue":"normal","wait_seconds":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if secs := mustRetryAfter(t, resp); secs != 1 {
		t.Fatalf("Retry-After = %d, want the 1s floor", secs)
	}
}
