package qbets

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// The append encoder's whole contract is "the same bytes encoding/json
// would produce"; these tests enforce it differentially rather than
// against golden strings, so any divergence — escaping, float format,
// field order — fails loudly.

func TestAppendJSONStringDifferential(t *testing.T) {
	cases := []string{
		"",
		"normal",
		"with space",
		`quote " and backslash \`,
		"tab\tnewline\ncarriage\rreturn",
		"control\x00\x01\x1f",
		"html <b>&amp;</b>",
		"unicode: héllo wörld — naïve",
		"emoji: \U0001F680\U0001F9EA",
		"line seps: \u2028 and \u2029", // valid JSON but breaks JS eval; encoding/json escapes them
		"invalid utf8: \xff\xfe",
		"truncated rune: \xe2\x82",
		"mixed \xc3\x28 bad continuation",
		"\ufffd real replacement char",
		strings.Repeat("long/queue-name_", 100),
		"queue/512+",
	}
	// Every single byte value as a 1-byte string: covers the full ASCII
	// escape table and every invalid-UTF-8 lead byte.
	for b := 0; b < 256; b++ {
		cases = append(cases, string([]byte{byte(b)}))
	}
	// Random byte soup: arbitrary invalid sequences.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		buf := make([]byte, 1+rng.Intn(40))
		rng.Read(buf)
		cases = append(cases, string(buf))
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		if got := appendJSONString(nil, s); string(got) != string(want) {
			t.Errorf("appendJSONString(%q)\n got %s\nwant %s", s, got, want)
		}
	}
}

func TestAppendJSONFloatDifferential(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 1.5, 2.0 / 3.0,
		1e-5, 1e-6, 9.999999e-7, 1e-7, 1e-9, 5e-324,
		1e20, 9.99e20, 1e21, 1.0000001e21, 1e22, math.MaxFloat64,
		123456789.123456789, 0.95, 0.99, 86400, 3.14159265358979,
		-2.5e-8, -7.25e22, math.SmallestNonzeroFloat64,
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(50)-25))
		cases = append(cases, f)
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", f, err)
		}
		if got := appendJSONFloat(nil, f); string(got) != string(want) {
			t.Errorf("appendJSONFloat(%v) = %s, want %s", f, got, want)
		}
	}
	// NaN/Inf: encoding/json errors; the append encoder degrades to 0 by
	// documented design (they are unreachable from validated inputs).
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := appendJSONFloat(nil, f); string(got) != "0" {
			t.Errorf("appendJSONFloat(%v) = %s, want 0", f, got)
		}
	}
}

func TestAppendForecastResponseDifferential(t *testing.T) {
	cases := []ForecastResponse{
		{},
		{Queue: "normal", Procs: 8, Quantile: 0.95, Confidence: 0.95, BoundSeconds: 1234.5, OK: true, Observations: 200},
		{Queue: `we"ird/queue<&>`, Procs: 1, Quantile: 0.5, Confidence: 0.99, BoundSeconds: 1e-7, OK: false, Observations: 0},
		{Queue: "bad\xffutf8", Procs: 512, Quantile: 0.95, Confidence: 0.95, BoundSeconds: 2.5e21, OK: true, Observations: 1 << 30},
		{Queue: "sep\u2028arated", Procs: 64, Quantile: 0.75, Confidence: 0.9, BoundSeconds: 0, OK: true, Observations: 59},
	}
	for _, r := range cases {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendForecastResponse(nil, &r); string(got) != string(want) {
			t.Errorf("appendForecastResponse(%+v)\n got %s\nwant %s", r, got, want)
		}
	}
}

func TestAppendProfileEntriesDifferential(t *testing.T) {
	cases := [][]Bound{
		nil,
		{},
		{{Quantile: 0.95, Confidence: 0.95, Lower: false, Seconds: 4521.25, OK: true}},
		{
			{Quantile: 0.5, Confidence: 0.95, Lower: false, Seconds: 100, OK: true},
			{Quantile: 0.95, Confidence: 0.95, Lower: true, Seconds: 1e-8, OK: false},
			{Quantile: 0.99, Confidence: 0.99, Lower: false, Seconds: 3e21, OK: true},
		},
	}
	for _, bounds := range cases {
		entries := make([]ProfileEntry, len(bounds))
		for i, b := range bounds {
			side := "upper"
			if b.Lower {
				side = "lower"
			}
			entries[i] = ProfileEntry{Quantile: b.Quantile, Confidence: b.Confidence, Side: side, Seconds: b.Seconds, OK: b.OK}
		}
		want, err := json.Marshal(entries)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendProfileEntries(nil, bounds); string(got) != string(want) {
			t.Errorf("appendProfileEntries(%+v)\n got %s\nwant %s", bounds, got, want)
		}
	}
}

// TestResponseBufPoolBoundsRetention: oversized buffers are dropped, small
// ones are reset and reused.
func TestResponseBufPoolBoundsRetention(t *testing.T) {
	rb := getResponseBuf()
	rb.b = append(rb.b, make([]byte, maxPooledResponseBuf+1)...)
	rb.release()
	if rb.b != nil {
		t.Error("oversized buffer retained by the pool")
	}
	rb2 := getResponseBuf()
	rb2.b = append(rb2.b, "leftover"...)
	rb2.release()
	rb3 := getResponseBuf()
	if len(rb3.b) != 0 {
		t.Errorf("pooled buffer not reset: %q", rb3.b)
	}
	rb3.release()
}
