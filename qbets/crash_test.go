package qbets_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/crashprop"
	"repro/internal/wal"
	"repro/qbets"
)

// TestServiceCrashRecoveryMatchesOracle is the service-level crash-safety
// property: a service whose observations go through a write-ahead log,
// killed by a power cut at an arbitrary byte offset, recovers into exactly
// the state of an oracle service that was fed the surviving record prefix
// directly. The trial — workload, crash, recovery, oracle comparison —
// lives in internal/crashprop, shared verbatim with the H-Durability
// hypothesis grid (internal/hypo), so this tier and that one can never
// disagree about what the property means. Here it runs the historical
// 100 random trials, alternating sync policies.
func TestServiceCrashRecoveryMatchesOracle(t *testing.T) {
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%03d", trial), func(t *testing.T) {
			cfg := crashprop.TrialConfig{Seed: int64(trial), Mode: wal.SyncOff}
			if trial%2 == 0 {
				cfg.Mode = wal.SyncEachRecord
			}
			if _, err := crashprop.RunTrial(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashRecoverySnapshotPlusLogTail exercises the full durability story
// on real files: snapshot mid-stream (which compacts the log), keep
// observing, "crash" (drop the service), then recover snapshot + log tail
// and compare against a continuous oracle. The per-stream sequence anchors
// must make the merge exact — nothing double-applied across the snapshot
// boundary, nothing lost after it.
func TestCrashRecoverySnapshotPlusLogTail(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		dir := t.TempDir()
		statePath := filepath.Join(dir, "state.bin")
		walDir := filepath.Join(dir, "wal")

		w, err := wal.Open(walDir, wal.Options{Mode: wal.SyncEachRecord, SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		svc := qbets.NewService(false, qbets.WithSeed(1))
		if _, err := svc.RecoverWAL(w); err != nil {
			t.Fatal(err)
		}
		oracle := qbets.NewService(false, qbets.WithSeed(1))

		queues := []string{"normal", "high"}
		observe := func(k int) {
			for i := 0; i < k; i++ {
				q := queues[rng.Intn(len(queues))]
				wait := rng.ExpFloat64() * 300
				if err := svc.Observe(q, 1, wait); err != nil {
					t.Fatal(err)
				}
				if err := oracle.Observe(q, 1, wait); err != nil {
					t.Fatal(err)
				}
			}
		}

		observe(60 + rng.Intn(100))
		if err := svc.SaveFile(statePath); err != nil {
			t.Fatal(err)
		}
		observe(rng.Intn(120)) // the log tail the snapshot does not cover

		// Crash: the process dies. SyncEachRecord means every observe above
		// is on disk; a second snapshot never happens.
		restored, err := qbets.LoadServiceFile(statePath, false, qbets.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		w2, err := wal.Open(walDir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := restored.RecoverWAL(w2); err != nil {
			t.Fatal(err)
		}

		for _, q := range queues {
			if got, want := restored.Observations(q, 1), oracle.Observations(q, 1); got != want {
				t.Fatalf("trial %d queue %s: restored %d observations, oracle %d", trial, q, got, want)
			}
			gotB, gotOK := restored.Forecast(q, 1)
			wantB, wantOK := oracle.Forecast(q, 1)
			if gotOK != wantOK || gotB != wantB {
				t.Fatalf("trial %d queue %s: restored bound (%g,%v), oracle (%g,%v)", trial, q, gotB, gotOK, wantB, wantOK)
			}
		}
	}
}

// TestSaveFileCompactsWAL verifies the snapshot path actually deletes the
// log segments the snapshot covers, so the log's disk footprint is bounded
// by the save interval rather than process lifetime.
func TestSaveFileCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	w, err := wal.Open(walDir, wal.Options{Mode: wal.SyncEachRecord, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	svc := qbets.NewService(false, qbets.WithSeed(1))
	if _, err := svc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := svc.Observe("q", 1, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 2 {
		t.Fatalf("expected multiple segments before compaction, got %d", len(before))
	}
	if err := svc.SaveFile(filepath.Join(dir, "state.bin")); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	// Everything below the rotation cut is gone; only the fresh active
	// segment (created by the next append) or nothing remains.
	if len(after) > 1 {
		t.Fatalf("compaction left %d segments, want <= 1", len(after))
	}
	for _, e := range after {
		for _, b := range before {
			if e.Name() == b.Name() {
				t.Fatalf("segment %s survived compaction", e.Name())
			}
		}
	}
	if d := svc.Durability(); d.CompactionErrors != 0 {
		t.Fatalf("compaction errors: %d", d.CompactionErrors)
	}
}

// TestQuarantineStateFile covers the corrupt-snapshot startup path: the
// bad file is moved aside (evidence preserved), not deleted, and the
// original path is free for a fresh snapshot.
func TestQuarantineStateFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := qbets.LoadServiceFile(path, false); !errors.Is(err, qbets.ErrCorruptState) {
		t.Fatalf("corrupt state file: err = %v, want ErrCorruptState (it gates quarantine)", err)
	}
	// An I/O failure is not corruption: the startup path must fail fast on
	// it instead of quarantining a possibly intact file.
	if _, err := qbets.LoadServiceFile(dir, false); err == nil || errors.Is(err, qbets.ErrCorruptState) {
		t.Fatalf("read error misclassified as corruption: %v", err)
	}
	qpath, err := qbets.QuarantineStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qpath, ".corrupt-") {
		t.Fatalf("quarantine path %q missing .corrupt- marker", qpath)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("original path still occupied after quarantine: %v", err)
	}
	moved, err := os.ReadFile(qpath)
	if err != nil || string(moved) != "not json at all" {
		t.Fatalf("quarantined contents lost: %q, %v", moved, err)
	}
}

// TestServiceReadOnlyDegradation: when log appends fail, observes are
// refused with ErrReadOnly (never silently unlogged), forecasts keep
// serving, and the mode heals itself when the disk comes back.
func TestServiceReadOnlyDegradation(t *testing.T) {
	fs := wal.NewFaultFS(wal.NewMemFS())
	w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord})
	if err != nil {
		t.Fatal(err)
	}
	svc := qbets.NewService(false, qbets.WithSeed(1))
	if _, err := svc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := svc.Observe("q", 1, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	preBound, preOK := svc.Forecast("q", 1)

	fs.FailWritesAfter(0, errors.New("disk full"), false)
	if err := svc.Observe("q", 1, 1); !errors.Is(err, qbets.ErrReadOnly) {
		t.Fatalf("observe during write failure: err = %v, want ErrReadOnly", err)
	}
	if !svc.ReadOnly() {
		t.Fatal("service not read-only after append failure")
	}
	// Forecasts still serve, unchanged: the refused observation was not
	// folded in.
	if b, ok := svc.Forecast("q", 1); ok != preOK || b != preBound {
		t.Fatalf("forecast changed during read-only: (%g,%v) vs (%g,%v)", b, ok, preBound, preOK)
	}
	if svc.Observations("q", 1) != 50 {
		t.Fatalf("refused observation was applied: %d", svc.Observations("q", 1))
	}

	fs.Clear()
	if err := svc.Observe("q", 1, 2); err != nil {
		t.Fatalf("observe after heal: %v", err)
	}
	if svc.ReadOnly() {
		t.Fatal("read-only did not self-heal on successful append")
	}
	if d := svc.Durability(); d.AppendErrors == 0 || d.Appends == 0 {
		t.Fatalf("durability counters not tracking: %+v", d)
	}
}
