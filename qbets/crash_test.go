package qbets

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wal"
)

// TestServiceCrashRecoveryMatchesOracle is the service-level crash-safety
// property: a service whose observations go through a write-ahead log,
// killed by a power cut at an arbitrary byte offset, recovers into exactly
// the state of an oracle service that was fed the surviving record prefix
// directly. "Exactly" means per-stream observation counts and forecast
// bounds, not just totals — the replayed history drives the same order
// statistics the paper's predictor computes.
func TestServiceCrashRecoveryMatchesOracle(t *testing.T) {
	const trials = 100
	queues := []string{"normal", "high", "low", "debug"}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%03d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			fs := wal.NewMemFS()

			perRecordSync := trial%2 == 0
			opt := wal.Options{FS: fs, SegmentBytes: int64(256 + rng.Intn(4096))}
			if perRecordSync {
				opt.Mode = wal.SyncEachRecord
			} else {
				opt.Mode = wal.SyncOff
			}
			w, err := wal.Open("wal", opt)
			if err != nil {
				t.Fatal(err)
			}
			svc := NewService(false, WithSeed(1))
			if _, err := svc.RecoverWAL(w); err != nil {
				t.Fatal(err)
			}

			// Random workload mixing single observes and batches (the crash
			// can land mid-batch-frame); acked tracks the prefix the sync
			// policy has made durable — a successful ObserveBatch under
			// per-record sync acks all of its records.
			type obsRec struct {
				queue string
				wait  float64
			}
			n := 50 + rng.Intn(300)
			appended := make([]obsRec, 0, n)
			acked := 0
			for i := 0; i < n; {
				if rng.Intn(3) == 0 {
					m := 1 + rng.Intn(12)
					batch := make([]ObserveRecord, m)
					for j := range batch {
						batch[j] = ObserveRecord{
							Queue:       queues[rng.Intn(len(queues))],
							Procs:       1,
							WaitSeconds: rng.ExpFloat64() * 600,
						}
					}
					if applied, err := svc.ObserveBatch(batch); err != nil || applied != m {
						t.Fatalf("batch at %d: applied %d, %v", i, applied, err)
					}
					for _, r := range batch {
						appended = append(appended, obsRec{r.Queue, r.WaitSeconds})
					}
					i += m
				} else {
					q := queues[rng.Intn(len(queues))]
					wait := rng.ExpFloat64() * 600
					if err := svc.Observe(q, 1, wait); err != nil {
						t.Fatalf("observe %d: %v", i, err)
					}
					appended = append(appended, obsRec{q, wait})
					i++
				}
				if perRecordSync {
					acked = len(appended)
				}
			}

			// Power cut: only the synced prefix plus a random sliver of
			// unsynced bytes (possibly bit-flipped) survives.
			fs.Crash(rng)

			// Recover into a fresh service.
			w2, err := wal.Open("wal", wal.Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			recovered := NewService(false, WithSeed(1))
			stats, err := recovered.RecoverWAL(w2)
			if err != nil {
				t.Fatalf("recovery must never fail on a crashed log: %v", err)
			}
			if stats.Records < acked {
				t.Fatalf("replayed %d records, but %d were acked durable", stats.Records, acked)
			}
			if stats.Records > len(appended) {
				t.Fatalf("replayed %d records, only %d were observed", stats.Records, len(appended))
			}

			// Oracle: a never-crashed service fed the surviving prefix
			// directly, with the same seed so stream RNG assignment matches.
			oracle := NewService(false, WithSeed(1))
			for _, r := range appended[:stats.Records] {
				if err := oracle.Observe(r.queue, 1, r.wait); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := recovered.NumStreams(), oracle.NumStreams(); got != want {
				t.Fatalf("recovered %d streams, oracle has %d", got, want)
			}
			for _, q := range queues {
				gotN, wantN := recovered.Observations(q, 1), oracle.Observations(q, 1)
				if gotN != wantN {
					t.Fatalf("queue %s: recovered %d observations, oracle %d", q, gotN, wantN)
				}
				gotB, gotOK := recovered.Forecast(q, 1)
				wantB, wantOK := oracle.Forecast(q, 1)
				if gotOK != wantOK || gotB != wantB {
					t.Fatalf("queue %s: recovered bound (%g,%v), oracle (%g,%v)", q, gotB, gotOK, wantB, wantOK)
				}
			}

			// The recovered service keeps serving: appends resume cleanly.
			if err := recovered.Observe("post", 1, 1); err != nil {
				t.Fatalf("post-recovery observe: %v", err)
			}
		})
	}
}

// TestCrashRecoverySnapshotPlusLogTail exercises the full durability story
// on real files: snapshot mid-stream (which compacts the log), keep
// observing, "crash" (drop the service), then recover snapshot + log tail
// and compare against a continuous oracle. The per-stream sequence anchors
// must make the merge exact — nothing double-applied across the snapshot
// boundary, nothing lost after it.
func TestCrashRecoverySnapshotPlusLogTail(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		dir := t.TempDir()
		statePath := filepath.Join(dir, "state.bin")
		walDir := filepath.Join(dir, "wal")

		w, err := wal.Open(walDir, wal.Options{Mode: wal.SyncEachRecord, SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(false, WithSeed(1))
		if _, err := svc.RecoverWAL(w); err != nil {
			t.Fatal(err)
		}
		oracle := NewService(false, WithSeed(1))

		queues := []string{"normal", "high"}
		observe := func(k int) {
			for i := 0; i < k; i++ {
				q := queues[rng.Intn(len(queues))]
				wait := rng.ExpFloat64() * 300
				if err := svc.Observe(q, 1, wait); err != nil {
					t.Fatal(err)
				}
				if err := oracle.Observe(q, 1, wait); err != nil {
					t.Fatal(err)
				}
			}
		}

		observe(60 + rng.Intn(100))
		if err := svc.SaveFile(statePath); err != nil {
			t.Fatal(err)
		}
		observe(rng.Intn(120)) // the log tail the snapshot does not cover

		// Crash: the process dies. SyncEachRecord means every observe above
		// is on disk; a second snapshot never happens.
		restored, err := LoadServiceFile(statePath, false, WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		w2, err := wal.Open(walDir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := restored.RecoverWAL(w2); err != nil {
			t.Fatal(err)
		}

		for _, q := range queues {
			if got, want := restored.Observations(q, 1), oracle.Observations(q, 1); got != want {
				t.Fatalf("trial %d queue %s: restored %d observations, oracle %d", trial, q, got, want)
			}
			gotB, gotOK := restored.Forecast(q, 1)
			wantB, wantOK := oracle.Forecast(q, 1)
			if gotOK != wantOK || gotB != wantB {
				t.Fatalf("trial %d queue %s: restored bound (%g,%v), oracle (%g,%v)", trial, q, gotB, gotOK, wantB, wantOK)
			}
		}
	}
}

// TestSaveFileCompactsWAL verifies the snapshot path actually deletes the
// log segments the snapshot covers, so the log's disk footprint is bounded
// by the save interval rather than process lifetime.
func TestSaveFileCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	w, err := wal.Open(walDir, wal.Options{Mode: wal.SyncEachRecord, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(false, WithSeed(1))
	if _, err := svc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := svc.Observe("q", 1, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 2 {
		t.Fatalf("expected multiple segments before compaction, got %d", len(before))
	}
	if err := svc.SaveFile(filepath.Join(dir, "state.bin")); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	// Everything below the rotation cut is gone; only the fresh active
	// segment (created by the next append) or nothing remains.
	if len(after) > 1 {
		t.Fatalf("compaction left %d segments, want <= 1", len(after))
	}
	for _, e := range after {
		for _, b := range before {
			if e.Name() == b.Name() {
				t.Fatalf("segment %s survived compaction", e.Name())
			}
		}
	}
	if d := svc.Durability(); d.CompactionErrors != 0 {
		t.Fatalf("compaction errors: %d", d.CompactionErrors)
	}
}

// TestQuarantineStateFile covers the corrupt-snapshot startup path: the
// bad file is moved aside (evidence preserved), not deleted, and the
// original path is free for a fresh snapshot.
func TestQuarantineStateFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadServiceFile(path, false); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("corrupt state file: err = %v, want ErrCorruptState (it gates quarantine)", err)
	}
	// An I/O failure is not corruption: the startup path must fail fast on
	// it instead of quarantining a possibly intact file.
	if _, err := LoadServiceFile(dir, false); err == nil || errors.Is(err, ErrCorruptState) {
		t.Fatalf("read error misclassified as corruption: %v", err)
	}
	qpath, err := QuarantineStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qpath, ".corrupt-") {
		t.Fatalf("quarantine path %q missing .corrupt- marker", qpath)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("original path still occupied after quarantine: %v", err)
	}
	moved, err := os.ReadFile(qpath)
	if err != nil || string(moved) != "not json at all" {
		t.Fatalf("quarantined contents lost: %q, %v", moved, err)
	}
}

// TestServiceReadOnlyDegradation: when log appends fail, observes are
// refused with ErrReadOnly (never silently unlogged), forecasts keep
// serving, and the mode heals itself when the disk comes back.
func TestServiceReadOnlyDegradation(t *testing.T) {
	fs := wal.NewFaultFS(wal.NewMemFS())
	w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(false, WithSeed(1))
	if _, err := svc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := svc.Observe("q", 1, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	preBound, preOK := svc.Forecast("q", 1)

	fs.FailWritesAfter(0, errors.New("disk full"), false)
	if err := svc.Observe("q", 1, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("observe during write failure: err = %v, want ErrReadOnly", err)
	}
	if !svc.ReadOnly() {
		t.Fatal("service not read-only after append failure")
	}
	// Forecasts still serve, unchanged: the refused observation was not
	// folded in.
	if b, ok := svc.Forecast("q", 1); ok != preOK || b != preBound {
		t.Fatalf("forecast changed during read-only: (%g,%v) vs (%g,%v)", b, ok, preBound, preOK)
	}
	if svc.Observations("q", 1) != 50 {
		t.Fatalf("refused observation was applied: %d", svc.Observations("q", 1))
	}

	fs.Clear()
	if err := svc.Observe("q", 1, 2); err != nil {
		t.Fatalf("observe after heal: %v", err)
	}
	if svc.ReadOnly() {
		t.Fatal("read-only did not self-heal on successful append")
	}
	if d := svc.Durability(); d.AppendErrors == 0 || d.Appends == 0 {
		t.Fatalf("durability counters not tracking: %+v", d)
	}
}
