package qbets

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	f := New(WithQuantile(0.9), WithSeed(5))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		f.Observe(math.Exp(rng.NormFloat64()) * 60)
	}
	want, _ := f.Forecast()

	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g.Forecast()
	if !ok || got != want {
		t.Fatalf("restored forecast %g/%v, want %g", got, ok, want)
	}
	if g.Observations() != f.Observations() {
		t.Error("history length differs")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bmbp")
	f := New(WithSeed(6))
	for i := 0; i < 100; i++ {
		f.Observe(float64(10 + i%7))
	}
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := f.Forecast()
	b2, _ := g.Forecast()
	if b1 != b2 {
		t.Fatalf("%g vs %g", b1, b2)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a state blob"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestServiceSaveLoad(t *testing.T) {
	s := NewService(true, WithSeed(21))
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		s.Observe("normal", 2, math.Exp(rng.NormFloat64())*30)
		s.Observe("normal", 32, math.Exp(rng.NormFloat64())*3000)
		s.Observe("high", 4, math.Exp(rng.NormFloat64())*5)
	}
	wantSmall, _ := s.Forecast("normal", 2)
	wantLarge, _ := s.Forecast("normal", 32)

	path := filepath.Join(t.TempDir(), "svc.state")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadServiceFile(path, true, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Queues()) != 3 {
		t.Fatalf("streams = %v", g.Queues())
	}
	gotSmall, ok1 := g.Forecast("normal", 2)
	gotLarge, ok2 := g.Forecast("normal", 32)
	if !ok1 || !ok2 || gotSmall != wantSmall || gotLarge != wantLarge {
		t.Fatalf("restored forecasts %g/%g, want %g/%g", gotSmall, gotLarge, wantSmall, wantLarge)
	}
	// Restored service keeps evolving: new observations land in the right
	// stream.
	n := g.Observations("normal", 2)
	g.Observe("normal", 3, 10)
	if g.Observations("normal", 2) != n+1 {
		t.Error("restored stream not live")
	}
	// Garbage rejected.
	if err := g.UnmarshalBinary([]byte("}{")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadServiceFile(filepath.Join(t.TempDir(), "nope"), true); err == nil {
		t.Error("missing file accepted")
	}
}

func TestForecastInterval(t *testing.T) {
	f := New(WithSeed(7))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		f.Observe(math.Exp(rng.NormFloat64()))
	}
	iv := f.ForecastInterval(0.5, 0.95)
	if !iv.OK {
		t.Fatal("interval unavailable")
	}
	if iv.Low >= iv.High {
		t.Fatalf("degenerate interval [%g, %g]", iv.Low, iv.High)
	}
	// The true median of exp(N(0,1)) is 1; the interval should straddle it.
	if iv.Low > 1 || iv.High < 1 {
		t.Errorf("interval [%g, %g] misses the true median 1", iv.Low, iv.High)
	}
	// Higher confidence widens the interval.
	wide := f.ForecastInterval(0.5, 0.99)
	if wide.High-wide.Low <= iv.High-iv.Low {
		t.Errorf("0.99 interval [%g,%g] not wider than 0.95 [%g,%g]", wide.Low, wide.High, iv.Low, iv.High)
	}
}

func TestForecastIntervalCoverage(t *testing.T) {
	// Over repeated samples, the two-sided interval captures the true
	// quantile at least ~confidence of the time.
	rng := rand.New(rand.NewSource(8))
	trueMedian := math.Exp(stats.StdNormalQuantile(0.5)) // = 1
	const trials, n = 800, 200
	hit := 0
	for tr := 0; tr < trials; tr++ {
		f := New(WithoutTrimming(), WithSeed(int64(tr)))
		for i := 0; i < n; i++ {
			f.Observe(math.Exp(rng.NormFloat64()))
		}
		iv := f.ForecastInterval(0.5, 0.9)
		if iv.OK && iv.Low <= trueMedian && trueMedian <= iv.High {
			hit++
		}
	}
	if frac := float64(hit) / trials; frac < 0.9-0.03 {
		t.Errorf("interval coverage %.3f below 0.9", frac)
	}
}
