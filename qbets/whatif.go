package qbets

import (
	"encoding/json"
	"hash/fnv"
	"net/http"
	"time"

	"repro/internal/scheduler"
	"repro/internal/whatif"
)

// POST /v1/whatif — the capacity-planning endpoint. A request names an
// optional live stream (queue + procs) and either a list of scenarios to
// evaluate, an SLO sizing question, or both. Scenarios replay the
// calibrated simulation kernel (internal/whatif); the live stream's
// published bound — read lock-free from the same snapshot the forecast
// endpoint serves — anchors the simulation to reality:
//
//	scale = live bound / simulated baseline bound
//
// and every simulated bound is multiplied by that scale before it is
// compared against the live bound or an SLO target. When no live stream is
// named (or it has no bound yet), results are reported uncalibrated at
// scale 1.
//
// Simulation results are memoized per (model fingerprint, scenario): the
// fingerprint covers the live stream's identity and forecast generation,
// so any refit — trim, restore, or simply new observations — invalidates
// the cached grid wholesale.

const (
	maxWhatifBody      = 1 << 20
	maxWhatifScenarios = 256

	// whatifDefaultJobs is the base-trace length scenarios replay; 2000
	// jobs keeps a 64-scenario grid comfortably inside one second while
	// leaving the 0.95-quantile bound well determined (MinSampleSize at
	// 0.95/0.95 is 59).
	whatifDefaultJobs = 2000
	whatifMinJobs     = 200
	whatifMaxJobs     = 20000

	// maxWhatifPlanners caps the per-server planner registry (one planner
	// per distinct workload size × queue filter, each holding a base trace
	// and pooled kernels).
	maxWhatifPlanners = 8
)

// WhatifScenario aliases the planner's scenario type so API clients can
// build requests from the qbets package alone.
type WhatifScenario = whatif.Scenario

// WhatifRequest is the body of POST /v1/whatif.
type WhatifRequest struct {
	// Queue and Procs name the live stream to calibrate against and
	// compare with (optional).
	Queue string `json:"queue,omitempty"`
	Procs int    `json:"procs,omitempty"`
	// WorkloadJobs sizes the simulated base trace (default 2000).
	WorkloadJobs int `json:"workload_jobs,omitempty"`
	// Scenarios to evaluate (at most 256 per request).
	Scenarios []whatif.Scenario `json:"scenarios,omitempty"`
	// Sizing asks for the maximum sustainable arrival rate under an SLO.
	Sizing *WhatifSizingRequest `json:"sizing,omitempty"`
}

// WhatifSizingRequest is the SLO sizing mode: "how much load can this
// system take before the bound crosses target_seconds?"
type WhatifSizingRequest struct {
	// TargetSeconds is the SLO on the (calibrated) bound; required, > 0.
	TargetSeconds float64 `json:"target_seconds"`
	// Scenario fixes the non-rate parameters during the search (optional;
	// its RateMultiplier is ignored — the search owns that axis).
	Scenario whatif.Scenario `json:"scenario"`
}

// WhatifLive echoes the live-stream snapshot used for calibration.
type WhatifLive struct {
	Stream       string  `json:"stream"`
	BoundSeconds float64 `json:"bound_seconds"`
	BoundOK      bool    `json:"bound_ok"`
	Observations int     `json:"observations"`
	Generation   uint64  `json:"generation"`
}

// WhatifScenarioResult is one scenario's simulated outcome plus its
// calibrated comparison against the live bound.
type WhatifScenarioResult struct {
	whatif.Outcome
	// CalibratedBoundSeconds is BoundSeconds × the calibration scale.
	CalibratedBoundSeconds float64 `json:"calibrated_bound_seconds"`
	// DeltaVsLiveSeconds is CalibratedBoundSeconds − the live bound,
	// present only when a live bound anchored the request.
	DeltaVsLiveSeconds *float64 `json:"delta_vs_live_seconds,omitempty"`
}

// WhatifSizingResult reports the sizing answer in calibrated seconds.
type WhatifSizingResult struct {
	whatif.Sizing
	// CalibratedBoundSeconds is the simulated bound at the returned rate,
	// scaled into live seconds (equals BoundSeconds at scale 1).
	CalibratedBoundSeconds float64 `json:"calibrated_bound_seconds"`
}

// WhatifResponse is the body of a successful POST /v1/whatif.
type WhatifResponse struct {
	Quantile   float64 `json:"quantile"`
	Confidence float64 `json:"confidence"`
	// WorkloadJobs echoes the resolved base-trace length.
	WorkloadJobs int `json:"workload_jobs"`
	// Live is the calibration anchor (absent when none was named).
	Live *WhatifLive `json:"live,omitempty"`
	// Calibrated reports whether simulated bounds were anchored to the
	// live bound; CalibrationScale is 1 when not.
	Calibrated       bool    `json:"calibrated"`
	CalibrationScale float64 `json:"calibration_scale"`

	Scenarios []WhatifScenarioResult `json:"scenarios,omitempty"`
	Sizing    *WhatifSizingResult    `json:"sizing,omitempty"`
}

// whatifPlannerKey identifies one planner: base-trace length × queue
// filter (the queue filter only applies when the live queue names one of
// the simulated machine's queues).
type whatifPlannerKey struct {
	jobs  int
	queue string
}

// planner returns (creating on first use) the pooled planner for key. The
// registry is bounded; at capacity an arbitrary planner is evicted —
// planners are caches, losing one costs re-simulation, not correctness.
func (s *Server) planner(key whatifPlannerKey) *whatif.Planner {
	s.whatifMu.Lock()
	defer s.whatifMu.Unlock()
	if p, ok := s.whatifPlanners[key]; ok {
		return p
	}
	if len(s.whatifPlanners) >= maxWhatifPlanners {
		for k := range s.whatifPlanners {
			delete(s.whatifPlanners, k)
			break
		}
	}
	p := whatif.NewPlanner(whatif.Config{
		Workload:   scheduler.WorkloadConfig{Jobs: key.jobs, Seed: 42},
		Machine:    scheduler.DefaultMachine(),
		Queue:      key.queue,
		Quantile:   s.svc.Quantile(),
		Confidence: s.svc.Confidence(),
	})
	s.whatifPlanners[key] = p
	return p
}

// simQueueFilter maps a live queue name onto the simulated machine's
// queues: when they match, simulated bounds come from that queue's waits
// alone; otherwise all simulated waits feed the bound and the calibration
// scale absorbs the level difference.
func simQueueFilter(queue string) string {
	for _, q := range scheduler.DefaultMachine().Queues {
		if q.Name == queue {
			return queue
		}
	}
	return ""
}

// whatifFingerprint identifies the model snapshot a cached scenario grid
// was computed against.
func whatifFingerprint(live *WhatifLive) uint64 {
	h := fnv.New64a()
	if live != nil {
		_, _ = h.Write([]byte(live.Stream))
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(live.Generation >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req WhatifRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxWhatifBody))
	if err := dec.Decode(&req); err != nil {
		writeDecodeError(w, err, "bad JSON: %v")
		return
	}
	if len(req.Scenarios) == 0 && req.Sizing == nil {
		writeError(w, http.StatusBadRequest, "nothing to do: provide scenarios and/or sizing")
		return
	}
	if len(req.Scenarios) > maxWhatifScenarios {
		writeError(w, http.StatusBadRequest, "%d scenarios exceeds the per-request limit of %d", len(req.Scenarios), maxWhatifScenarios)
		return
	}
	if req.Sizing != nil && !(req.Sizing.TargetSeconds > 0) {
		writeError(w, http.StatusBadRequest, "sizing.target_seconds must be > 0")
		return
	}
	jobs := req.WorkloadJobs
	if jobs == 0 {
		jobs = whatifDefaultJobs
	}
	if jobs < whatifMinJobs || jobs > whatifMaxJobs {
		writeError(w, http.StatusBadRequest, "workload_jobs must be in [%d, %d]", whatifMinJobs, whatifMaxJobs)
		return
	}

	resp := WhatifResponse{
		Quantile:         s.svc.Quantile(),
		Confidence:       s.svc.Confidence(),
		WorkloadJobs:     jobs,
		CalibrationScale: 1,
	}
	key := whatifPlannerKey{jobs: jobs}
	if req.Queue != "" {
		st, ok := s.svc.StreamStats(req.Queue, req.Procs)
		if !ok {
			writeError(w, http.StatusNotFound, "no stream for queue %q procs %d", req.Queue, req.Procs)
			return
		}
		resp.Live = &WhatifLive{
			Stream:       st.Stream,
			BoundSeconds: st.BoundSeconds,
			BoundOK:      st.BoundOK,
			Observations: st.Observations,
			Generation:   st.Generation,
		}
		key.queue = simQueueFilter(req.Queue)
	}

	start := time.Now()
	p := s.planner(key)
	fp := whatifFingerprint(resp.Live)

	// The unperturbed baseline anchors calibration; evaluating it with the
	// request costs nothing extra once cached.
	grid := make([]whatif.Scenario, 0, len(req.Scenarios)+1)
	grid = append(grid, whatif.Scenario{})
	grid = append(grid, req.Scenarios...)
	outs := p.Evaluate(fp, grid)
	base, outs := outs[0], outs[1:]

	if resp.Live != nil && resp.Live.BoundOK && base.BoundOK && base.BoundSeconds > 0 {
		resp.Calibrated = true
		resp.CalibrationScale = resp.Live.BoundSeconds / base.BoundSeconds
	}

	cacheHits := 0
	if base.Cached {
		cacheHits++
	}
	if len(req.Scenarios) > 0 {
		resp.Scenarios = make([]WhatifScenarioResult, len(outs))
		for i, o := range outs {
			res := WhatifScenarioResult{Outcome: o}
			if o.BoundOK {
				res.CalibratedBoundSeconds = o.BoundSeconds * resp.CalibrationScale
				if resp.Calibrated {
					d := res.CalibratedBoundSeconds - resp.Live.BoundSeconds
					res.DeltaVsLiveSeconds = &d
				}
			}
			if o.Cached {
				cacheHits++
			}
			resp.Scenarios[i] = res
		}
	}

	if req.Sizing != nil {
		// The SLO is stated in live (calibrated) seconds; the search runs
		// in simulation seconds.
		simTarget := req.Sizing.TargetSeconds / resp.CalibrationScale
		siz := p.SizeToSLO(fp, req.Sizing.Scenario, simTarget)
		resp.Sizing = &WhatifSizingResult{
			Sizing:                 siz,
			CalibratedBoundSeconds: siz.BoundSeconds * resp.CalibrationScale,
		}
		resp.Sizing.TargetSeconds = req.Sizing.TargetSeconds
		s.whatifSizing.Inc()
	}

	s.whatifScenarios.Add(uint64(len(grid)))
	s.whatifCacheHits.Add(uint64(cacheHits))
	s.whatifLatency.Observe(time.Since(start).Seconds())
	writeJSON(w, &resp)
}
