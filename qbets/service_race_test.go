package qbets

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// The tests in this file exist to be run under the race detector
// (go test -race ./qbets/...): they mix observes, forecasts, profiles, and
// status reads across overlapping streams and assert only coarse
// invariants — the detector does the real checking.

func TestServiceConcurrentStress(t *testing.T) {
	svc := NewService(true, WithSeed(11))
	queues := []string{"normal", "high", "low"}
	procs := []int{1, 8, 32, 128}

	// Pre-warm a couple of streams past MinObservations so forecasts and
	// hit-rate accounting are active during the storm.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		svc.Observe("normal", 1, math.Exp(rng.NormFloat64())*60)
		svc.Observe("high", 8, math.Exp(rng.NormFloat64())*600)
	}

	const goroutines = 16
	const iters = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < iters; i++ {
				q := queues[(g+i)%len(queues)]
				p := procs[i%len(procs)]
				switch i % 5 {
				case 0, 1:
					svc.Observe(q, p, math.Exp(rng.NormFloat64())*60)
				case 2:
					svc.Forecast(q, p)
				case 3:
					svc.Profile(q, p)
				case 4:
					if i%20 == 4 {
						svc.Stats()
						svc.Queues()
					} else {
						svc.StreamStats(q, p)
						svc.Observations(q, p)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every (queue, bucket) combination observed must exist, and totals
	// must be conserved: observes = 2*200 prewarm + the per-goroutine share.
	stats := svc.Stats()
	if len(stats) == 0 || svc.NumStreams() != len(stats) {
		t.Fatalf("stats/NumStreams disagree: %d vs %d", len(stats), svc.NumStreams())
	}
	total := 0
	for _, st := range stats {
		total += st.Observations
		if st.RollingHitRate < 0 || st.RollingHitRate > 1 {
			t.Errorf("stream %s hit rate %g out of range", st.Stream, st.RollingHitRate)
		}
		if uint64(st.RollingResolved) > st.LifetimeResolved {
			t.Errorf("stream %s rolling resolved %d exceeds lifetime %d", st.Stream, st.RollingResolved, st.LifetimeResolved)
		}
	}
	// i%5 in {0,1} → 2 observes per 5 iterations exactly (iters divisible by 5).
	want := 400 + goroutines*iters*2/5
	if total != want {
		t.Errorf("total observations = %d, want %d", total, want)
	}
}

func TestServiceConcurrentSaveLoad(t *testing.T) {
	svc := NewService(true, WithSeed(13))
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		svc.Observe("normal", 2, math.Exp(rng.NormFloat64())*30)
	}
	blob, err := svc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				svc.Observe("normal", 2, float64(i))
				svc.Forecast("normal", 2)
				if _, err := svc.MarshalBinary(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// One goroutine restores state mid-traffic: in-flight requests must
	// finish cleanly against whichever stream set they started with.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := svc.UnmarshalBinary(blob); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if _, ok := svc.Forecast("normal", 2); !ok {
		t.Error("stream lost after concurrent save/load")
	}
}

func TestServerConcurrentBatchObserve(t *testing.T) {
	s := NewServer(true, WithSeed(17))
	ts := httptest.NewServer(s)
	defer ts.Close()

	const goroutines = 8
	const batches = 20
	const batchSize = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queue := fmt.Sprintf("q%d", g%3) // overlapping queues across goroutines
			for b := 0; b < batches; b++ {
				var records []ObserveRecord
				for i := 0; i < batchSize; i++ {
					records = append(records, ObserveRecord{
						Queue:       queue,
						Procs:       1 << (i % 8),
						WaitSeconds: float64(1 + i),
					})
				}
				body, _ := json.Marshal(records)
				resp, err := http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					t.Errorf("batch observe status %d", resp.StatusCode)
					return
				}
				// Interleave reads on the same and other queues.
				for _, path := range []string{
					"/v1/forecast?queue=" + queue + "&procs=4",
					"/v1/profile?queue=" + queue + "&procs=4",
					"/v1/status",
					"/metrics",
				} {
					get, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					get.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	// Conservation: every posted record was ingested exactly once.
	st, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var status StatusResponse
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, stream := range status.Streams {
		total += stream.Observations
	}
	if want := goroutines * batches * batchSize; total != want {
		t.Errorf("ingested %d observations, want %d", total, want)
	}
}
