package qbets

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/wal"
)

// The tests in this file exist to be run under the race detector
// (go test -race ./qbets/...): they mix observes, forecasts, profiles, and
// status reads across overlapping streams and assert only coarse
// invariants — the detector does the real checking.

func TestServiceConcurrentStress(t *testing.T) {
	svc := NewService(true, WithSeed(11))
	queues := []string{"normal", "high", "low"}
	procs := []int{1, 8, 32, 128}

	// Pre-warm a couple of streams past MinObservations so forecasts and
	// hit-rate accounting are active during the storm.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		svc.Observe("normal", 1, math.Exp(rng.NormFloat64())*60)
		svc.Observe("high", 8, math.Exp(rng.NormFloat64())*600)
	}

	const goroutines = 16
	const iters = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < iters; i++ {
				q := queues[(g+i)%len(queues)]
				p := procs[i%len(procs)]
				switch i % 5 {
				case 0, 1:
					svc.Observe(q, p, math.Exp(rng.NormFloat64())*60)
				case 2:
					svc.Forecast(q, p)
				case 3:
					svc.Profile(q, p)
				case 4:
					if i%20 == 4 {
						svc.Stats()
						svc.Queues()
					} else {
						svc.StreamStats(q, p)
						svc.Observations(q, p)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every (queue, bucket) combination observed must exist, and totals
	// must be conserved: observes = 2*200 prewarm + the per-goroutine share.
	stats := svc.Stats()
	if len(stats) == 0 || svc.NumStreams() != len(stats) {
		t.Fatalf("stats/NumStreams disagree: %d vs %d", len(stats), svc.NumStreams())
	}
	total, trims := 0, 0
	for _, st := range stats {
		total += st.Observations
		trims += st.Trims
		if st.RollingHitRate < 0 || st.RollingHitRate > 1 {
			t.Errorf("stream %s hit rate %g out of range", st.Stream, st.RollingHitRate)
		}
		if uint64(st.RollingResolved) > st.LifetimeResolved {
			t.Errorf("stream %s rolling resolved %d exceeds lifetime %d", st.Stream, st.RollingResolved, st.LifetimeResolved)
		}
	}
	// i%5 in {0,1} → 2 observes per 5 iterations exactly (iters divisible
	// by 5). Observations reports current history length, which shrinks
	// when a change-point trim fires — and whether one fires depends on
	// each stream's observation order, which the scheduler interleaving
	// decides. Exact conservation therefore only holds on trim-free runs;
	// with trims the count may only have gone down.
	want := 400 + goroutines*iters*2/5
	if trims == 0 && total != want {
		t.Errorf("total observations = %d, want %d", total, want)
	}
	if total > want {
		t.Errorf("total observations = %d exceeds %d ingested", total, want)
	}
}

func TestServiceConcurrentSaveLoad(t *testing.T) {
	svc := NewService(true, WithSeed(13))
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		svc.Observe("normal", 2, math.Exp(rng.NormFloat64())*30)
	}
	blob, err := svc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				svc.Observe("normal", 2, float64(i))
				svc.Forecast("normal", 2)
				if _, err := svc.MarshalBinary(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// One goroutine restores state mid-traffic: in-flight requests must
	// finish cleanly against whichever stream set they started with.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := svc.UnmarshalBinary(blob); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if _, ok := svc.Forecast("normal", 2); !ok {
		t.Error("stream lost after concurrent save/load")
	}
}

// TestServiceConcurrentSaveCompactWAL races WAL-logged observes against
// repeated snapshots (each of which rotates and compacts the log) and then
// checks conservation the hard way: a fresh process recovering from the
// last snapshot plus the surviving log must be byte-equivalent, per
// stream, to an oracle that observed the same data with no snapshots, no
// WAL, and no crash — whatever interleaving the scheduler produced. Each
// goroutine owns its queue so every stream's observation order is
// deterministic and the oracle is exact (history length alone would not
// be: change-point trims shrink it). Run under -race this also exercises
// the Rotate/Append and MarshalBinary/observe lock interplay.
func TestServiceConcurrentSaveCompactWAL(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.bin")
	walDir := filepath.Join(dir, "wal")

	w, err := wal.Open(walDir, wal.Options{Mode: wal.SyncEachRecord, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(false, WithSeed(19))
	if _, err := svc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 150
	waitFor := func(g, i int) float64 {
		return math.Exp(math.Sin(float64(g*perG+i))) * 60 // deterministic, stationary-ish
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := fmt.Sprintf("q%d", g)
			for i := 0; i < perG; i++ {
				if err := svc.Observe(q, 1, waitFor(g, i)); err != nil {
					t.Errorf("observe: %v", err)
					return
				}
			}
		}(g)
	}
	var saves atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if err := svc.SaveFile(statePath); err != nil {
				t.Errorf("save: %v", err)
				return
			}
			saves.Add(1)
		}
	}()
	wg.Wait()
	// A final quiescent save so the snapshot on disk plus the log tail is a
	// complete picture regardless of where the racing saves landed.
	if err := svc.SaveFile(statePath); err != nil {
		t.Fatal(err)
	}
	d := svc.Durability()
	if d.CompactionErrors != 0 || d.AppendErrors != 0 {
		t.Fatalf("durability errors under concurrency: %+v", d)
	}
	if want := uint64(goroutines * perG); d.Appends != want {
		t.Fatalf("WAL saw %d appends, want %d", d.Appends, want)
	}

	restored, err := LoadServiceFile(statePath, false, WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.RecoverWAL(w2); err != nil {
		t.Fatal(err)
	}

	oracle := NewService(false, WithSeed(19))
	for g := 0; g < goroutines; g++ {
		q := fmt.Sprintf("q%d", g)
		for i := 0; i < perG; i++ {
			if err := oracle.Observe(q, 1, waitFor(g, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if restored.NumStreams() != oracle.NumStreams() {
		t.Fatalf("restored %d streams, oracle %d", restored.NumStreams(), oracle.NumStreams())
	}
	for g := 0; g < goroutines; g++ {
		q := fmt.Sprintf("q%d", g)
		gotN, wantN := restored.Observations(q, 1), oracle.Observations(q, 1)
		if gotN != wantN {
			t.Fatalf("queue %s: restored %d observations, oracle %d (saves: %d)", q, gotN, wantN, saves.Load())
		}
		gotB, gotOK := restored.Forecast(q, 1)
		wantB, wantOK := oracle.Forecast(q, 1)
		if gotOK != wantOK || gotB != wantB {
			t.Fatalf("queue %s: restored bound (%g,%v), oracle (%g,%v)", q, gotB, gotOK, wantB, wantOK)
		}
	}
}

func TestServerConcurrentBatchObserve(t *testing.T) {
	s := NewServer(true, WithSeed(17))
	ts := httptest.NewServer(s)
	defer ts.Close()

	const goroutines = 8
	const batches = 20
	const batchSize = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queue := fmt.Sprintf("q%d", g%3) // overlapping queues across goroutines
			for b := 0; b < batches; b++ {
				var records []ObserveRecord
				for i := 0; i < batchSize; i++ {
					records = append(records, ObserveRecord{
						Queue:       queue,
						Procs:       1 << (i % 8),
						WaitSeconds: float64(1 + i),
					})
				}
				body, _ := json.Marshal(records)
				resp, err := http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					t.Errorf("batch observe status %d", resp.StatusCode)
					return
				}
				// Interleave reads on the same and other queues.
				for _, path := range []string{
					"/v1/forecast?queue=" + queue + "&procs=4",
					"/v1/profile?queue=" + queue + "&procs=4",
					"/v1/status",
					"/metrics",
				} {
					get, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					get.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	// Conservation: every posted record was ingested exactly once.
	st, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var status StatusResponse
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, stream := range status.Streams {
		total += stream.Observations
	}
	if want := goroutines * batches * batchSize; total != want {
		t.Errorf("ingested %d observations, want %d", total, want)
	}
}
