package qbets

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/repl"
)

// Chunked catch-up snapshots. The monolithic ReplicaSnapshot marshals the
// whole state into one blob — O(state) leader memory per catching-up
// follower. This file streams the same sharded per-stream cores in
// bounded chunks instead: OpenReplicaSnapshotStream captures the stream
// set (pointers, not state) and renders each chunk on demand under the
// per-stream read locks, so leader memory during catch-up is O(chunk),
// and several followers catching up concurrently share one captured
// generation. The follower side installs incrementally through the same
// cold-adoption machinery as InstallReplicaSnapshot: each chunk's streams
// are adopted cold into a pending set, and commit swaps the set in
// wholesale — a torn transfer aborts before any visible state changes.

// defaultSnapshotChunkStreams is how many streams one snapshot chunk
// carries when SetSnapshotChunkStreams has not been called.
const defaultSnapshotChunkStreams = 256

// SetSnapshotChunkStreams overrides the per-chunk stream count for
// outgoing catch-up streams. Call before serving; n <= 0 restores the
// default. Small values are useful in tests that need many chunks from a
// small state.
func (s *Service) SetSnapshotChunkStreams(n int) { s.snapChunkStreams.Store(int64(n)) }

// replicaSnapHeader rides in the snapBegin payload: everything the
// follower needs besides the per-stream cores.
type replicaSnapHeader struct {
	ByProcs  bool  `json:"by_procs"`
	NextSeed int64 `json:"next_seed"`
	Streams  int   `json:"streams"`
	Chunks   int   `json:"chunks"`
}

// replicaSnapStream implements repl.SnapshotStream over a captured stream
// set. AppendChunk is safe for concurrent use: each call renders its own
// chunk slice under per-stream read locks into the caller's buffer.
type replicaSnapStream struct {
	covered uint64
	header  []byte
	keys    []string
	sts     []*stream
	per     int
}

// OpenReplicaSnapshotStream captures the serving state for chunked
// follower catch-up. The covered sequence is read BEFORE the stream set
// is captured — the same discipline as ReplicaSnapshot, and for the same
// reason: a record at or below it was applied before the capture began,
// so the per-stream read locks taken while rendering chunks are
// guaranteed to observe it, and anything newer that leaks in is dropped
// by the follower's replay dedup.
func (s *Service) OpenReplicaSnapshotStream() (repl.SnapshotStream, error) {
	var covered uint64
	if s.wal != nil {
		covered = s.wal.SyncedSeq()
	}
	if ra := s.replApplied.Load(); ra > covered {
		covered = ra
	}
	streams := s.snapshotStreams()
	keys := make([]string, 0, len(streams))
	for k := range streams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sts := make([]*stream, len(keys))
	for i, k := range keys {
		sts[i] = streams[k]
	}
	per := int(s.snapChunkStreams.Load())
	if per <= 0 {
		per = defaultSnapshotChunkStreams
	}
	chunks := (len(keys) + per - 1) / per
	header, err := json.Marshal(replicaSnapHeader{
		ByProcs:  s.byProcs.Load(),
		NextSeed: s.nextSeed.Load(),
		Streams:  len(keys),
		Chunks:   chunks,
	})
	if err != nil {
		return nil, err
	}
	return &replicaSnapStream{covered: covered, header: header, keys: keys, sts: sts, per: per}, nil
}

func (r *replicaSnapStream) CoveredSeq() uint64 { return r.covered }
func (r *replicaSnapStream) Header() []byte     { return r.header }
func (r *replicaSnapStream) Chunks() int        { return (len(r.keys) + r.per - 1) / r.per }
func (r *replicaSnapStream) Close()             {}

// AppendChunk renders chunk i — a JSON object mapping stream keys to
// their shard cores, the same per-stream document the sharded save format
// uses — into dst. Transient memory is O(chunk): one core marshal at a
// time, appended straight into the caller's buffer.
func (r *replicaSnapStream) AppendChunk(i int, dst []byte) ([]byte, error) {
	lo, hi := i*r.per, (i+1)*r.per
	if hi > len(r.keys) {
		hi = len(r.keys)
	}
	if i < 0 || lo >= hi {
		return nil, fmt.Errorf("qbets: snapshot chunk %d out of range (%d chunks)", i, r.Chunks())
	}
	dst = append(dst, '{')
	for j := lo; j < hi; j++ {
		core, err := coreOf(r.keys[j], r.sts[j])
		if err != nil {
			return nil, err
		}
		doc, err := json.Marshal(core)
		if err != nil {
			return nil, err
		}
		if j > lo {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, r.keys[j])
		dst = append(dst, ':')
		dst = append(dst, doc...)
	}
	return append(dst, '}'), nil
}

// pendingReplicaSnapshot accumulates an incoming chunked install: streams
// adopted cold, chunk by chunk, invisible to readers until commit. The
// header's declared totals are kept so commit can refuse an incomplete
// transfer — a transport that reorders the end marker ahead of a chunk
// must not be able to install a truncated state.
type pendingReplicaSnapshot struct {
	byProcs      bool
	nextSeed     int64
	streams      map[string]*stream
	expectChunks int // chunk count the header declared
	next         int // next chunk index expected
}

// BeginReplicaSnapshot starts a chunked install, discarding any earlier
// partial one (a torn transfer superseded by a fresh attempt).
func (s *Service) BeginReplicaSnapshot(coveredSeq uint64, header []byte) error {
	if !s.follower.Load() {
		return fmt.Errorf("qbets: BeginReplicaSnapshot on a non-follower")
	}
	var h replicaSnapHeader
	if err := json.Unmarshal(header, &h); err != nil {
		return fmt.Errorf("qbets: %w: replica snapshot header: %v", ErrCorruptState, err)
	}
	if h.Chunks < 0 || h.Streams < 0 {
		return fmt.Errorf("qbets: %w: replica snapshot header declares %d chunks, %d streams", ErrCorruptState, h.Chunks, h.Streams)
	}
	s.pendingSnapMu.Lock()
	s.pendingSnap = &pendingReplicaSnapshot{
		byProcs:      h.ByProcs,
		nextSeed:     h.NextSeed,
		streams:      make(map[string]*stream, h.Streams),
		expectChunks: h.Chunks,
	}
	s.pendingSnapMu.Unlock()
	return nil
}

// ApplyReplicaSnapshotChunk folds one chunk into the pending install via
// the same cold adoption as a sharded restore — no forecaster history is
// decoded until a stream's first write.
func (s *Service) ApplyReplicaSnapshotChunk(index int, chunk []byte) error {
	var m map[string]shardStream
	if err := json.Unmarshal(chunk, &m); err != nil {
		return fmt.Errorf("qbets: %w: replica snapshot chunk %d: %v", ErrCorruptState, index, err)
	}
	s.pendingSnapMu.Lock()
	defer s.pendingSnapMu.Unlock()
	p := s.pendingSnap
	if p == nil {
		return fmt.Errorf("qbets: snapshot chunk %d without a pending install", index)
	}
	if index != p.next || index >= p.expectChunks {
		return fmt.Errorf("qbets: %w: snapshot chunk %d out of order (expected %d of %d)", ErrCorruptState, index, p.next, p.expectChunks)
	}
	for k, core := range m {
		p.streams[k] = s.adoptColdStream(k, core)
	}
	p.next++
	return nil
}

// CommitReplicaSnapshot atomically replaces the serving state with the
// pending install — the same wholesale swap as InstallReplicaSnapshot.
func (s *Service) CommitReplicaSnapshot(coveredSeq uint64) error {
	s.pendingSnapMu.Lock()
	p := s.pendingSnap
	s.pendingSnap = nil
	s.pendingSnapMu.Unlock()
	if p == nil {
		return fmt.Errorf("qbets: CommitReplicaSnapshot without a pending install")
	}
	if p.next != p.expectChunks {
		// A reordered or dropped chunk must not install truncated state:
		// the end marker commits only a transfer that delivered every
		// chunk the header declared.
		return fmt.Errorf("qbets: %w: chunked install committed with %d of %d chunks", ErrCorruptState, p.next, p.expectChunks)
	}
	s.byProcs.Store(p.byProcs)
	s.nextSeed.Store(p.nextSeed)
	s.replaceStreams(p.streams)
	// The installed state is authoritative: it replaced whatever was
	// applied before, so the position resets to what it covers.
	s.replApplied.Store(coveredSeq)
	return nil
}

// AbortReplicaSnapshot discards a partial chunked install; serving state
// is untouched.
func (s *Service) AbortReplicaSnapshot() {
	s.pendingSnapMu.Lock()
	s.pendingSnap = nil
	s.pendingSnapMu.Unlock()
}
